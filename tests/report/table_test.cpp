#include "report/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace qsnc::report {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"model", "acc"});
  t.add_row({"Lenet", "98.16%"});
  t.add_row({"A", "5%"});
  const std::string s = t.to_string();
  // Both data lines start at the same "acc" column offset.
  std::istringstream is(s);
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.find("acc"), row1.find("98.16%"));
  EXPECT_EQ(header.find("acc"), row2.find("5%"));
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(TableTest, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x,y", "said \"hi\""});
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_table.csv").string();
  t.write_csv(path);
  std::ifstream f(path);
  std::string header, row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "name,note");
  EXPECT_EQ(row, "\"x,y\",\"said \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(FmtTest, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 1), "3.0");
  EXPECT_EQ(fmt(-0.5, 2), "-0.50");
}

TEST(PctTest, FormatsFractions) {
  EXPECT_EQ(pct(0.9816), "98.16%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(HistogramTest, CountsFallInBins) {
  const std::vector<float> values{0.1f, 0.1f, 0.9f};
  const std::string h = ascii_histogram(values, 0.0f, 1.0f, 2, 10);
  // First bin has 2 entries (the peak, 10 chars), second has 1 (5 chars).
  EXPECT_NE(h.find("##########"), std::string::npos);
  EXPECT_NE(h.find("2"), std::string::npos);
  EXPECT_NE(h.find("1"), std::string::npos);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  const std::vector<float> values{-5.0f, 5.0f};
  const std::string h = ascii_histogram(values, 0.0f, 1.0f, 2, 4);
  std::istringstream is(h);
  std::string line1, line2;
  std::getline(is, line1);
  std::getline(is, line2);
  EXPECT_NE(line1.find("1"), std::string::npos);
  EXPECT_NE(line2.find("1"), std::string::npos);
}

TEST(HistogramTest, BadArgsThrow) {
  EXPECT_THROW(ascii_histogram({}, 0.0f, 1.0f, 0), std::invalid_argument);
  EXPECT_THROW(ascii_histogram({}, 1.0f, 0.0f, 4), std::invalid_argument);
}

}  // namespace
}  // namespace qsnc::report
