#include "core/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qsnc::core {
namespace {

TEST(SignalMaxTest, PowersOfTwoMinusOne) {
  EXPECT_EQ(signal_max(1), 1);
  EXPECT_EQ(signal_max(3), 7);
  EXPECT_EQ(signal_max(4), 15);
  EXPECT_EQ(signal_max(5), 31);
  EXPECT_EQ(signal_max(8), 255);
}

TEST(SignalRangeThresholdTest, HalfRange) {
  EXPECT_FLOAT_EQ(signal_range_threshold(4), 8.0f);
  EXPECT_FLOAT_EQ(signal_range_threshold(3), 4.0f);
  EXPECT_FLOAT_EQ(signal_range_threshold(2), 2.0f);
}

TEST(IntegerSignalQuantizerTest, RoundsToNearestInteger) {
  IntegerSignalQuantizer q(4);
  EXPECT_FLOAT_EQ(q.apply(3.2f), 3.0f);
  EXPECT_FLOAT_EQ(q.apply(3.5f), 4.0f);
  EXPECT_FLOAT_EQ(q.apply(0.49f), 0.0f);
}

TEST(IntegerSignalQuantizerTest, ClampsToWindow) {
  IntegerSignalQuantizer q(4);
  EXPECT_FLOAT_EQ(q.apply(99.0f), 15.0f);
  EXPECT_FLOAT_EQ(q.apply(-3.0f), 0.0f);
  EXPECT_FLOAT_EQ(q.max_value(), 15.0f);
}

TEST(IntegerSignalQuantizerTest, SteStopsAtCeiling) {
  IntegerSignalQuantizer q(3);  // ceiling 7
  EXPECT_TRUE(q.pass_through(3.0f));
  EXPECT_TRUE(q.pass_through(7.2f));
  EXPECT_FALSE(q.pass_through(7.6f));
  EXPECT_FALSE(q.pass_through(20.0f));
}

TEST(IntegerSignalQuantizerTest, BadBitsThrow) {
  EXPECT_THROW(IntegerSignalQuantizer(0), std::invalid_argument);
  EXPECT_THROW(IntegerSignalQuantizer(17), std::invalid_argument);
}

TEST(IntegerSignalQuantizerTest, OutputAlwaysIntegral) {
  IntegerSignalQuantizer q(5);
  for (float v = -2.0f; v < 40.0f; v += 0.13f) {
    const float o = q.apply(v);
    EXPECT_FLOAT_EQ(o, std::round(o));
    EXPECT_GE(o, 0.0f);
    EXPECT_LE(o, 31.0f);
  }
}

TEST(WeightGridTest, LevelsCount) {
  EXPECT_EQ(weight_grid_levels(3), 9);   // 0, ±1..±4 scaled
  EXPECT_EQ(weight_grid_levels(4), 17);
}

TEST(WeightGridTest, QuantizeSnapsToNearestLevel) {
  // bits=2, scale=1: step=0.25, levels {0, ±0.25, ±0.5}.
  EXPECT_FLOAT_EQ(quantize_weight_to_grid(0.3f, 2, 1.0f), 0.25f);
  EXPECT_FLOAT_EQ(quantize_weight_to_grid(0.1f, 2, 1.0f), 0.0f);
  EXPECT_FLOAT_EQ(quantize_weight_to_grid(-0.4f, 2, 1.0f), -0.5f);
}

TEST(WeightGridTest, ClampsToTopLevel) {
  EXPECT_FLOAT_EQ(quantize_weight_to_grid(9.0f, 2, 1.0f), 0.5f);
  EXPECT_FLOAT_EQ(quantize_weight_to_grid(-9.0f, 2, 1.0f), -0.5f);
}

TEST(WeightGridTest, ZeroIsAlwaysRepresentable) {
  for (int bits = 1; bits <= 8; ++bits) {
    EXPECT_FLOAT_EQ(quantize_weight_to_grid(0.0f, bits, 3.7f), 0.0f);
  }
}

TEST(WeightGridTest, IndexMatchesQuantize) {
  const float scale = 2.0f;
  for (int bits : {2, 3, 4}) {
    const float step = scale / static_cast<float>(1 << bits);
    for (float w = -1.5f; w <= 1.5f; w += 0.07f) {
      const int64_t k = weight_grid_index(w, bits, scale);
      EXPECT_FLOAT_EQ(quantize_weight_to_grid(w, bits, scale),
                      static_cast<float>(k) * step);
    }
  }
}

TEST(WeightGridTest, NonPositiveScaleThrows) {
  EXPECT_THROW(quantize_weight_to_grid(1.0f, 4, 0.0f), std::invalid_argument);
  EXPECT_THROW(weight_grid_index(1.0f, 4, -1.0f), std::invalid_argument);
}

TEST(InputSignalTest, QuantizesLikeEncoder) {
  EXPECT_FLOAT_EQ(quantize_input_signal(3.4f, 4), 3.0f);
  EXPECT_FLOAT_EQ(quantize_input_signal(15.7f, 4), 15.0f);
  EXPECT_FLOAT_EQ(quantize_input_signal(22.0f, 4), 15.0f);
  EXPECT_FLOAT_EQ(quantize_input_signal(-1.0f, 4), 0.0f);
  EXPECT_FLOAT_EQ(quantize_input_signal(6.0f, 3), 6.0f);
  EXPECT_FLOAT_EQ(quantize_input_signal(9.0f, 3), 7.0f);
}

TEST(RoundHalfUpTest, TiesGoUp) {
  EXPECT_EQ(round_half_up(0.5), 1);
  EXPECT_EQ(round_half_up(1.5), 2);
  EXPECT_EQ(round_half_up(2.5), 3);
  // std::llround would give -1 and -2 here; the SNC counter convention
  // (floor(v + 0.5)) sends negative halves up toward zero instead.
  EXPECT_EQ(round_half_up(-0.5), 0);
  EXPECT_EQ(round_half_up(-1.5), -1);
}

TEST(RoundHalfUpTest, NonTiesMatchNearest) {
  EXPECT_EQ(round_half_up(0.0), 0);
  EXPECT_EQ(round_half_up(0.49), 0);
  EXPECT_EQ(round_half_up(0.51), 1);
  EXPECT_EQ(round_half_up(-0.49), 0);
  EXPECT_EQ(round_half_up(-0.51), -1);
  EXPECT_EQ(round_half_up(7.0), 7);
  EXPECT_EQ(round_half_up(-7.0), -7);
}

}  // namespace
}  // namespace qsnc::core
