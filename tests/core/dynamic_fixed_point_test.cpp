#include "core/dynamic_fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/relu.h"
#include "nn/network.h"

namespace qsnc::core {
namespace {

TEST(DfpQuantizeTest, StepIsPowerOfTwo) {
  // 8 bits, fl=6 -> step 1/64, range +-127/64.
  EXPECT_FLOAT_EQ(dfp_quantize(0.02f, 8, 6), 0.015625f);
  EXPECT_FLOAT_EQ(dfp_quantize(-0.02f, 8, 6), -0.015625f);
  EXPECT_FLOAT_EQ(dfp_quantize(0.0f, 8, 6), 0.0f);
}

TEST(DfpQuantizeTest, SaturatesAtRange) {
  // fl=6: max = 127/64 = 1.984375.
  EXPECT_FLOAT_EQ(dfp_quantize(5.0f, 8, 6), 127.0f / 64.0f);
  EXPECT_FLOAT_EQ(dfp_quantize(-5.0f, 8, 6), -127.0f / 64.0f);
}

TEST(ChooseFractionBitsTest, CoversMaxAbs) {
  for (float max_abs : {0.1f, 0.9f, 1.5f, 3.0f, 100.0f}) {
    const int fl = choose_fraction_bits(max_abs, 8);
    const float range = (std::ldexp(1.0f, 7) - 1) * std::ldexp(1.0f, -fl);
    EXPECT_GE(range, max_abs * 0.99f) << "max_abs " << max_abs;
  }
}

TEST(ChooseFractionBitsTest, SmallValuesGetFineResolution) {
  EXPECT_GT(choose_fraction_bits(0.1f, 8), choose_fraction_bits(10.0f, 8));
}

TEST(DfpSignalQuantizerTest, RoundsAndClamps) {
  DynamicFixedPointSignalQuantizer q(8, 4);  // step 1/16, max 127/16
  EXPECT_FLOAT_EQ(q.apply(0.06f), 0.0625f);
  EXPECT_FLOAT_EQ(q.apply(100.0f), 127.0f / 16.0f);
  EXPECT_TRUE(q.pass_through(1.0f));
  EXPECT_FALSE(q.pass_through(100.0f));
}

TEST(ApplyDfpTest, EndToEndKeepsNetworkFunctional) {
  // Train-free check: quantizing an MLP to 8-bit DFP must leave outputs
  // close to the float outputs (8 bits is plenty for this range).
  nn::Rng rng(70);
  nn::Network net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(28 * 28, 16, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(16, 10, rng);

  data::SyntheticMnistConfig cfg;
  cfg.num_samples = 32;
  auto ds = data::make_synthetic_mnist(cfg);
  nn::Tensor batch = ds->batch_images(0, 8);

  const nn::Tensor before = net.forward(batch, false);
  DfpConfig dfp;
  dfp.calibration_samples = 16;
  dfp.input_scale = 1.0f;  // this test feeds raw [0,1] pixels
  auto quantizers = apply_dynamic_fixed_point(net, *ds, dfp);
  EXPECT_EQ(quantizers.size(), 1u);  // one ReLU boundary
  const nn::Tensor after = net.forward(batch, false);

  float max_rel = 0.0f;
  for (int64_t i = 0; i < before.numel(); ++i) {
    const float denom = std::max(1.0f, std::fabs(before[i]));
    max_rel = std::max(max_rel, std::fabs(before[i] - after[i]) / denom);
  }
  EXPECT_LT(max_rel, 0.05f);
}

}  // namespace
}  // namespace qsnc::core
