#include "core/weight_clustering.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fixed_point.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/relu.h"
#include "nn/network.h"
#include "nn/rng.h"

namespace qsnc::core {
namespace {

float tensor_mse(const nn::Tensor& a, const nn::Tensor& b) {
  float acc = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return acc / static_cast<float>(a.numel());
}

nn::Tensor random_weights(int64_t n, uint64_t seed, float scale = 0.3f) {
  nn::Rng rng(seed);
  nn::Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = rng.normal(0.0f, scale);
  return t;
}

TEST(ClusterTensorTest, OutputLiesOnGrid) {
  const nn::Tensor w = random_weights(500, 1);
  nn::Tensor q;
  const WeightClusterResult r = cluster_tensor(w, 4, true, &q);
  const float step = r.scale / 16.0f;
  for (int64_t i = 0; i < q.numel(); ++i) {
    const float k = q[i] / step;
    EXPECT_NEAR(k, std::round(k), 1e-3f) << "value " << q[i];
    EXPECT_LE(std::fabs(k), 8.001f);
  }
}

TEST(ClusterTensorTest, OptimizedBeatsNaiveMse) {
  const nn::Tensor w = random_weights(2000, 2);
  nn::Tensor q_naive, q_opt;
  cluster_tensor(w, 4, false, &q_naive);
  const WeightClusterResult r = cluster_tensor(w, 4, true, &q_opt);
  EXPECT_LE(tensor_mse(w, q_opt), tensor_mse(w, q_naive) + 1e-8f);
  EXPECT_GT(r.iterations, 0);
}

TEST(ClusterTensorTest, ReportedMseMatchesActual) {
  const nn::Tensor w = random_weights(800, 3);
  nn::Tensor q;
  const WeightClusterResult r = cluster_tensor(w, 3, true, &q);
  EXPECT_NEAR(r.mse, tensor_mse(w, q), 1e-5f);
}

TEST(ClusterTensorTest, MoreBitsNeverWorse) {
  const nn::Tensor w = random_weights(1000, 4);
  float prev = 1e9f;
  for (int bits : {2, 3, 4, 5, 6}) {
    nn::Tensor q;
    const WeightClusterResult r = cluster_tensor(w, bits, true, &q);
    EXPECT_LE(r.mse, prev * 1.02f) << "bits " << bits;
    prev = r.mse;
  }
}

TEST(ClusterTensorTest, GridValuesAreExactlyRepresentable) {
  // A tensor already on the grid must survive clustering unchanged.
  nn::Tensor w({5}, {0.0f, 0.25f, -0.25f, 0.5f, -0.5f});
  nn::Tensor q;
  const WeightClusterResult r = cluster_tensor(w, 2, true, &q);
  EXPECT_NEAR(r.mse, 0.0f, 1e-10f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_NEAR(q[i], w[i], 1e-6f);
}

TEST(ClusterTensorTest, AllZerosHandled) {
  nn::Tensor w({10}, 0.0f);
  nn::Tensor q;
  const WeightClusterResult r = cluster_tensor(w, 4, true, &q);
  EXPECT_FLOAT_EQ(r.mse, 0.0f);
  for (int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(q[i], 0.0f);
}

TEST(ClusterWeightSetTest, LloydMonotonicallyImproves) {
  // Sweep iteration caps; MSE must be non-increasing in the cap.
  nn::Tensor w = random_weights(3000, 5);
  float prev_mse = 1e9f;
  for (int cap : {1, 2, 5, 50}) {
    nn::Tensor copy = w;
    WeightClusterConfig cfg;
    cfg.bits = 3;
    cfg.max_iterations = cap;
    const WeightClusterResult r =
        cluster_weight_set({copy.data()}, {copy.numel()}, cfg);
    EXPECT_LE(r.mse, prev_mse + 1e-7f) << "cap " << cap;
    prev_mse = r.mse;
  }
}

TEST(ClusterWeightSetTest, SizeMismatchThrows) {
  nn::Tensor w({4});
  WeightClusterConfig cfg;
  EXPECT_THROW(cluster_weight_set({w.data()}, {4, 4}, cfg),
               std::invalid_argument);
}

TEST(ClusterWeightSetTest, BadBitsThrow) {
  nn::Tensor w({4});
  WeightClusterConfig cfg;
  cfg.bits = 0;
  EXPECT_THROW(cluster_weight_set({w.data()}, {4}, cfg),
               std::invalid_argument);
}

TEST(ApplyWeightClusteringTest, QuantizesOnlySynapses) {
  nn::Rng rng(6);
  nn::Network net;
  auto& fc = net.emplace<nn::Dense>(8, 4, rng);
  net.emplace<nn::ReLU>();
  fc.bias().value.fill(0.333f);  // not representable on typical grids

  WeightClusterConfig cfg;
  cfg.bits = 3;
  const auto results = apply_weight_clustering(net, cfg);
  ASSERT_EQ(results.size(), 1u);  // one synapse tensor (per-layer scope)
  // Bias untouched.
  EXPECT_FLOAT_EQ(fc.bias().value[0], 0.333f);
  // Weights on the grid.
  const float step = results[0].scale / 8.0f;
  for (int64_t i = 0; i < fc.weight().value.numel(); ++i) {
    const float k = fc.weight().value[i] / step;
    EXPECT_NEAR(k, std::round(k), 1e-3f);
  }
}

TEST(ApplyWeightClusteringTest, PerLayerGivesOneResultPerTensor) {
  nn::Rng rng(7);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(8, 4, rng);

  WeightClusterConfig cfg;
  cfg.scope = ClusterScope::kPerLayer;
  EXPECT_EQ(apply_weight_clustering(net, cfg).size(), 2u);

  nn::Rng rng2(7);
  nn::Network net2;
  net2.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng2);
  net2.emplace<nn::ReLU>();
  net2.emplace<nn::Dense>(8, 4, rng2);
  cfg.scope = ClusterScope::kPerNetwork;
  EXPECT_EQ(apply_weight_clustering(net2, cfg).size(), 1u);
}

TEST(ApplyWeightClusteringTest, PerLayerMseNotWorseThanPerNetwork) {
  // Two tensors with very different magnitudes: a shared grid must be at
  // least as lossy as per-tensor grids.
  nn::Tensor a = random_weights(500, 8, 0.05f);
  nn::Tensor b = random_weights(500, 9, 1.0f);

  nn::Tensor a1 = a, b1 = b;
  WeightClusterConfig cfg;
  cfg.bits = 4;
  const auto ra = cluster_weight_set({a1.data()}, {a1.numel()}, cfg);
  const auto rb = cluster_weight_set({b1.data()}, {b1.numel()}, cfg);
  const float per_layer_mse = (ra.mse + rb.mse) / 2.0f;

  nn::Tensor a2 = a, b2 = b;
  const auto rj = cluster_weight_set({a2.data(), b2.data()},
                                     {a2.numel(), b2.numel()}, cfg);
  EXPECT_GE(rj.mse, per_layer_mse * 0.999f);
}

}  // namespace
}  // namespace qsnc::core
