#include "core/related_baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/layers/dense.h"
#include "nn/layers/relu.h"
#include "nn/network.h"
#include "nn/rng.h"

namespace qsnc::core {
namespace {

nn::Tensor random_weights(int64_t n, uint64_t seed, float scale = 0.3f) {
  nn::Rng rng(seed);
  nn::Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = rng.normal(0.0f, scale);
  return t;
}

TEST(BinarizeTest, OutputHasExactlyTwoValues) {
  nn::Tensor w = random_weights(500, 1);
  const BaselineQuantResult r = binarize_tensor(&w);
  std::set<float> values;
  for (int64_t i = 0; i < w.numel(); ++i) values.insert(w[i]);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_GT(r.scale, 0.0f);
  EXPECT_FLOAT_EQ(*values.rbegin(), r.scale);
  EXPECT_FLOAT_EQ(*values.begin(), -r.scale);
}

TEST(BinarizeTest, ScaleIsMeanAbs) {
  nn::Tensor w({4}, {0.1f, -0.3f, 0.5f, -0.1f});
  const BaselineQuantResult r = binarize_tensor(&w);
  EXPECT_FLOAT_EQ(r.scale, 0.25f);
}

TEST(BinarizeTest, SignsPreserved) {
  nn::Tensor w({3}, {0.2f, -0.4f, 0.0f});
  binarize_tensor(&w);
  EXPECT_GT(w[0], 0.0f);
  EXPECT_LT(w[1], 0.0f);
  EXPECT_GE(w[2], 0.0f);  // zero binarizes to +s by convention
}

TEST(TernarizeTest, OutputHasAtMostThreeValues) {
  nn::Tensor w = random_weights(500, 2);
  const BaselineQuantResult r = ternarize_tensor(&w);
  std::set<float> values;
  for (int64_t i = 0; i < w.numel(); ++i) values.insert(w[i]);
  EXPECT_LE(values.size(), 3u);
  EXPECT_TRUE(values.count(0.0f) > 0);
  EXPECT_GT(r.scale, 0.0f);
}

TEST(TernarizeTest, DeadZoneZeroesSmallWeights) {
  // mean|w| = 0.25, threshold 0.175: the two 0.1s become 0.
  nn::Tensor w({4}, {0.1f, -0.1f, 0.4f, -0.4f});
  ternarize_tensor(&w);
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_FLOAT_EQ(w[1], 0.0f);
  EXPECT_FLOAT_EQ(w[2], 0.4f);
  EXPECT_FLOAT_EQ(w[3], -0.4f);
}

TEST(TernarizeTest, AllZeroTensorStaysZero) {
  nn::Tensor w({8}, 0.0f);
  const BaselineQuantResult r = ternarize_tensor(&w);
  EXPECT_FLOAT_EQ(r.scale, 0.0f);
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(w[i], 0.0f);
}

TEST(PowerOfTwoTest, OutputsArePowersOfTwo) {
  nn::Tensor w = random_weights(500, 3);
  power_of_two_tensor(&w, 4);
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (w[i] == 0.0f) continue;
    const float log = std::log2(std::fabs(w[i]));
    EXPECT_NEAR(log, std::round(log), 1e-5f) << "value " << w[i];
  }
}

TEST(PowerOfTwoTest, LevelsLimitExponentWindow) {
  nn::Tensor w = random_weights(500, 4);
  const float wmax = w.abs_max();
  power_of_two_tensor(&w, 3);
  const int k_max = static_cast<int>(std::ceil(std::log2(wmax)));
  float min_nonzero = 1e9f, max_abs = 0.0f;
  for (int64_t i = 0; i < w.numel(); ++i) {
    const float a = std::fabs(w[i]);
    max_abs = std::max(max_abs, a);
    if (a > 0.0f) min_nonzero = std::min(min_nonzero, a);
  }
  EXPECT_LE(max_abs, std::ldexp(1.0f, k_max) + 1e-6f);
  EXPECT_GE(min_nonzero, std::ldexp(1.0f, k_max - 2) - 1e-6f);
}

TEST(PowerOfTwoTest, MoreLevelsNeverWorseMse) {
  const nn::Tensor base = random_weights(2000, 5);
  float prev = 1e9f;
  for (int levels : {1, 2, 4, 8}) {
    nn::Tensor w = base;
    const BaselineQuantResult r = power_of_two_tensor(&w, levels);
    EXPECT_LE(r.mse, prev + 1e-7f) << "levels " << levels;
    prev = r.mse;
  }
}

TEST(PowerOfTwoTest, BadLevelsThrow) {
  nn::Tensor w({4});
  EXPECT_THROW(power_of_two_tensor(&w, 0), std::invalid_argument);
  EXPECT_THROW(power_of_two_tensor(&w, 64), std::invalid_argument);
  EXPECT_THROW(power_of_two_tensor(nullptr, 4), std::invalid_argument);
}

TEST(ApplyBaselinesTest, OnlySynapsesTouched) {
  nn::Rng rng(6);
  nn::Network net;
  auto& fc = net.emplace<nn::Dense>(8, 4, rng);
  net.emplace<nn::ReLU>();
  fc.bias().value.fill(0.777f);

  const auto results = apply_binary_weights(net);
  EXPECT_EQ(results.size(), 1u);
  EXPECT_FLOAT_EQ(fc.bias().value[0], 0.777f);
  std::set<float> values;
  for (int64_t i = 0; i < fc.weight().value.numel(); ++i) {
    values.insert(fc.weight().value[i]);
  }
  EXPECT_EQ(values.size(), 2u);
}

TEST(ApplyBaselinesTest, TernaryAndPo2CoverAllSynapses) {
  nn::Rng rng(7);
  nn::Network net;
  net.emplace<nn::Dense>(8, 8, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(8, 4, rng);
  EXPECT_EQ(apply_ternary_weights(net).size(), 2u);
  nn::Rng rng2(7);
  nn::Network net2;
  net2.emplace<nn::Dense>(8, 8, rng2);
  net2.emplace<nn::ReLU>();
  net2.emplace<nn::Dense>(8, 4, rng2);
  EXPECT_EQ(apply_power_of_two_weights(net2, 4).size(), 2u);
}

}  // namespace
}  // namespace qsnc::core
