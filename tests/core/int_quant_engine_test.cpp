#include "core/int_quant_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/fixed_point.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "serve/backend.h"
#include "util/thread_pool.h"

namespace qsnc::core {
namespace {

constexpr int kBits = 4;
const nn::Shape kInputShape{1, 12, 12};

// Conv -> ReLU -> Pool -> Conv -> ReLU -> Flatten -> Dense with every
// weight snapped to the dyadic 1/16 grid, which is what the deployed
// fixed-point models look like and what the engine's exactness checks
// require. Biases stay arbitrary floats — the epilogue adds them in fp32
// either way.
nn::Network make_dyadic_net(uint64_t seed) {
  nn::Rng rng(seed);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2d>(2, 2);
  net.emplace<nn::Conv2d>(4, 6, 3, 1, 0, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(96, 10, rng);
  for (nn::Param* p : net.params()) {
    if (p->value.shape().size() >= 2) {
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] = std::round(p->value[i] * 16.0f) / 16.0f;
      }
    } else {
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] = rng.uniform(-0.5f, 0.5f);
      }
    }
  }
  return net;
}

// Pixel batch in [0, 1], encoded the way QuantBackend encodes before
// handing to either execution path.
nn::Tensor random_pixels(int64_t n, uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor batch({n, kInputShape[0], kInputShape[1], kInputShape[2]});
  for (int64_t i = 0; i < batch.numel(); ++i) batch[i] = rng.uniform();
  return batch;
}

nn::Tensor encode(const nn::Tensor& pixels) {
  const float scale =
      std::min(16.0f, static_cast<float>(signal_max(kBits)));
  nn::Tensor encoded = pixels;
  encoded *= scale;
  for (int64_t i = 0; i < encoded.numel(); ++i) {
    encoded[i] = quantize_input_signal(encoded[i], kBits);
  }
  return encoded;
}

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "logit " << i << " diverged";
    // Same bits, not just same value: rule out -0.0 vs +0.0 drift in the
    // bias/ReLU epilogue.
    ASSERT_EQ(std::signbit(a[i]), std::signbit(b[i])) << "sign bit " << i;
  }
}

class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force)
      : prev_(nn::simd::set_force_scalar(force)) {}
  ~ForceScalarGuard() { nn::simd::set_force_scalar(prev_); }

 private:
  bool prev_;
};

TEST(IntQuantEngineTest, CompilesDyadicNet) {
  nn::Network net = make_dyadic_net(11);
  auto engine = IntQuantEngine::build(net, kInputShape, kBits);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->signal_bits(), kBits);
  EXPECT_EQ(engine->crossbar_layers(), 3u);
}

TEST(IntQuantEngineTest, LogitsBitIdenticalToFakeQuantFloatPath) {
  nn::Network net = make_dyadic_net(23);
  auto engine = IntQuantEngine::build(net, kInputShape, kBits);
  ASSERT_NE(engine, nullptr);

  const nn::Tensor encoded = encode(random_pixels(5, 99));

  IntegerSignalQuantizer quantizer(kBits);
  net.set_signal_quantizer(&quantizer);
  const nn::Tensor want = net.forward(encoded, false);
  net.set_signal_quantizer(nullptr);

  const nn::Tensor got = engine->forward(encoded);
  expect_bitwise_equal(got, want);
}

TEST(IntQuantEngineTest, PredictMatchesNetworkArgmaxIncludingTies) {
  nn::Network net = make_dyadic_net(31);
  auto engine = IntQuantEngine::build(net, kInputShape, kBits);
  ASSERT_NE(engine, nullptr);

  const nn::Tensor encoded = encode(random_pixels(8, 5));

  IntegerSignalQuantizer quantizer(kBits);
  net.set_signal_quantizer(&quantizer);
  const std::vector<int64_t> want = net.predict(encoded);
  net.set_signal_quantizer(nullptr);

  EXPECT_EQ(engine->predict(encoded), want);
}

TEST(IntQuantEngineTest, RejectsUnclusteredFloatWeights) {
  // He-normal floats are essentially never exact multiples of a dyadic
  // step, so the exactness proof does not apply and build() must decline.
  nn::Rng rng(7);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(4 * 12 * 12, 10, rng);
  EXPECT_EQ(IntQuantEngine::build(net, kInputShape, kBits), nullptr);
}

TEST(IntQuantEngineTest, RejectsUnsupportedLayerTypes) {
  nn::Rng rng(7);
  // AvgPool emits fractional averages between crossbar layers, which the
  // integer domain tracking does not model.
  nn::Network with_avg;
  with_avg.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  for (nn::Param* p : with_avg.params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] = std::round(p->value[i] * 16.0f) / 16.0f;
    }
  }
  with_avg.emplace<nn::ReLU>();
  with_avg.emplace<nn::AvgPool2d>(2, 2);
  with_avg.emplace<nn::Flatten>();
  with_avg.emplace<nn::Dense>(4 * 6 * 6, 10, rng);
  EXPECT_EQ(IntQuantEngine::build(with_avg, kInputShape, kBits), nullptr);
}

TEST(IntQuantEngineTest, RejectsOutOfRangeSignalBits) {
  nn::Network net = make_dyadic_net(11);
  EXPECT_EQ(IntQuantEngine::build(net, kInputShape, 0), nullptr);
  EXPECT_EQ(IntQuantEngine::build(net, kInputShape, 16), nullptr);
}

TEST(IntQuantEngineTest, BitIdenticalAcrossThreadCountsAndDispatch) {
  nn::Network net = make_dyadic_net(47);
  auto engine = IntQuantEngine::build(net, kInputShape, kBits);
  ASSERT_NE(engine, nullptr);
  const nn::Tensor encoded = encode(random_pixels(6, 13));

  const int original = util::num_threads();
  util::set_num_threads(1);
  const nn::Tensor reference = engine->forward(encoded);
  for (int threads : {1, 2, 8}) {
    util::set_num_threads(threads);
    expect_bitwise_equal(engine->forward(encoded), reference);
    ForceScalarGuard guard(true);
    expect_bitwise_equal(engine->forward(encoded), reference);
  }
  util::set_num_threads(original);
}

// QuantBackend must serve identical predictions whether the integer
// engine is active or disabled via QSNC_QUANT_INT=0 — the engine is a
// pure execution-path swap, never a behavior change.
TEST(IntQuantEngineTest, QuantBackendPathSwapIsInvisible) {
  const nn::Tensor pixels = random_pixels(7, 21);

  nn::Network net_int = make_dyadic_net(59);
  serve::QuantBackend with_engine(net_int, kInputShape, kBits);
  EXPECT_TRUE(with_engine.integer_engine_active());
  const std::vector<int64_t> got = with_engine.infer_batch(pixels);

  ASSERT_EQ(setenv("QSNC_QUANT_INT", "0", 1), 0);
  nn::Network net_float = make_dyadic_net(59);
  serve::QuantBackend without_engine(net_float, kInputShape, kBits);
  ASSERT_EQ(unsetenv("QSNC_QUANT_INT"), 0);
  EXPECT_FALSE(without_engine.integer_engine_active());

  EXPECT_EQ(got, without_engine.infer_batch(pixels));
}

TEST(IntQuantEngineTest, QuantBackendStaysOnFloatPathForFloatWeights) {
  nn::Rng rng(3);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(4 * 12 * 12, 10, rng);
  serve::QuantBackend backend(net, kInputShape, kBits);
  EXPECT_FALSE(backend.integer_engine_active());
  // Still serves correctly shaped predictions through the float path.
  const auto preds = backend.infer_batch(random_pixels(3, 1));
  EXPECT_EQ(preds.size(), 3u);
}

}  // namespace
}  // namespace qsnc::core
