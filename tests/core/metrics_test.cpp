#include "core/metrics.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/network.h"

namespace qsnc::core {
namespace {

// Dataset where the label equals the index of the brightest pixel, and a
// hand-built "identity" network that solves it exactly.
data::DatasetPtr make_argmax_dataset(int64_t n) {
  nn::Tensor images({n, 1, 1, 3});
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cls = i % 3;
    labels[static_cast<size_t>(i)] = cls;
    images[i * 3 + cls] = 1.0f;
  }
  return std::make_shared<data::InMemoryDataset>("argmax", std::move(images),
                                                 std::move(labels), 3);
}

nn::Network make_identity_net() {
  nn::Rng rng(1);
  nn::Network net;
  net.emplace<nn::Flatten>();
  auto& fc = net.emplace<nn::Dense>(3, 3, rng);
  fc.weight().value = nn::Tensor({3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  fc.bias().value.fill(0.0f);
  return net;
}

nn::Network make_constant_net(int64_t cls) {
  nn::Network net = make_identity_net();
  // Kill the weights; bias selects one class forever.
  for (nn::Param* p : net.params()) p->value.fill(0.0f);
  auto* fc = dynamic_cast<nn::Dense*>(&net.layer(1));
  fc->bias().value[cls] = 1.0f;
  return net;
}

TEST(MetricsTest, PerfectClassifierScoresOne) {
  auto ds = make_argmax_dataset(30);
  nn::Network net = make_identity_net();
  EXPECT_DOUBLE_EQ(evaluate_accuracy(net, *ds), 1.0);
}

TEST(MetricsTest, ConstantClassifierScoresClassFraction) {
  auto ds = make_argmax_dataset(30);
  nn::Network net = make_constant_net(1);
  EXPECT_NEAR(evaluate_accuracy(net, *ds), 1.0 / 3.0, 1e-9);
}

TEST(MetricsTest, BatchSizeDoesNotChangeResult) {
  auto ds = make_argmax_dataset(31);  // odd size exercises the tail batch
  nn::Network net = make_identity_net();
  for (int64_t batch : {1, 7, 31, 64}) {
    EXPECT_DOUBLE_EQ(evaluate_accuracy(net, *ds, 1.0f, 0, batch), 1.0);
  }
}

TEST(MetricsTest, DetailedConfusionDiagonalForPerfect) {
  auto ds = make_argmax_dataset(30);
  nn::Network net = make_identity_net();
  const EvalResult r = evaluate_detailed(net, *ds);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t p = 0; p < 3; ++p) {
      EXPECT_EQ(r.at(t, p), t == p ? 10 : 0);
    }
    EXPECT_DOUBLE_EQ(r.recall(t), 1.0);
  }
}

TEST(MetricsTest, DetailedConfusionColumnForConstant) {
  auto ds = make_argmax_dataset(30);
  nn::Network net = make_constant_net(2);
  const EvalResult r = evaluate_detailed(net, *ds);
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_EQ(r.at(t, 2), 10);  // everything predicted as class 2
    EXPECT_EQ(r.at(t, 0), 0);
  }
  EXPECT_DOUBLE_EQ(r.recall(2), 1.0);
  EXPECT_DOUBLE_EQ(r.recall(0), 0.0);
}

TEST(MetricsTest, ConfusionTotalEqualsDatasetSize) {
  auto ds = make_argmax_dataset(29);
  nn::Network net = make_identity_net();
  const EvalResult r = evaluate_detailed(net, *ds);
  int64_t total = 0;
  for (int64_t v : r.confusion) total += v;
  EXPECT_EQ(total, 29);
}

}  // namespace
}  // namespace qsnc::core
