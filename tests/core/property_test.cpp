// Cross-module property tests: idempotence, monotonicity, and consistency
// invariants that hold for any input, checked over parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_fixed_point.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace qsnc::core {
namespace {

class SignalQuantizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SignalQuantizerProperty, Idempotent) {
  const int bits = GetParam();
  IntegerSignalQuantizer q(bits);
  nn::Rng rng(bits);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.uniform(-10.0f, 80.0f);
    const float once = q.apply(x);
    EXPECT_FLOAT_EQ(q.apply(once), once) << "x=" << x;
  }
}

TEST_P(SignalQuantizerProperty, Monotone) {
  const int bits = GetParam();
  IntegerSignalQuantizer q(bits);
  nn::Rng rng(bits + 100);
  for (int i = 0; i < 500; ++i) {
    const float a = rng.uniform(-5.0f, 50.0f);
    const float b = rng.uniform(-5.0f, 50.0f);
    if (a <= b) {
      EXPECT_LE(q.apply(a), q.apply(b));
    } else {
      EXPECT_GE(q.apply(a), q.apply(b));
    }
  }
}

TEST_P(SignalQuantizerProperty, ErrorBoundedByHalfStepInRange) {
  const int bits = GetParam();
  IntegerSignalQuantizer q(bits);
  nn::Rng rng(bits + 200);
  const float max_v = static_cast<float>(signal_max(bits));
  for (int i = 0; i < 500; ++i) {
    const float x = rng.uniform(0.0f, max_v);
    EXPECT_LE(std::fabs(q.apply(x) - x), 0.5f + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, SignalQuantizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

class WeightGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(WeightGridProperty, QuantizeIdempotent) {
  const int bits = GetParam();
  nn::Rng rng(bits);
  for (int i = 0; i < 300; ++i) {
    const float scale = rng.uniform(0.1f, 4.0f);
    const float w = rng.uniform(-3.0f, 3.0f);
    const float once = quantize_weight_to_grid(w, bits, scale);
    EXPECT_NEAR(quantize_weight_to_grid(once, bits, scale), once,
                1e-6f * scale);
  }
}

TEST_P(WeightGridProperty, OddSymmetry) {
  const int bits = GetParam();
  nn::Rng rng(bits + 50);
  for (int i = 0; i < 300; ++i) {
    const float scale = rng.uniform(0.1f, 4.0f);
    const float w = rng.uniform(0.0f, 3.0f);
    EXPECT_NEAR(quantize_weight_to_grid(-w, bits, scale),
                -quantize_weight_to_grid(w, bits, scale), 1e-6f * scale);
  }
}

TEST_P(WeightGridProperty, ErrorBoundedByHalfStepInRange) {
  const int bits = GetParam();
  const float scale = 2.0f;
  const float step = scale / static_cast<float>(1 << bits);
  nn::Rng rng(bits + 75);
  for (int i = 0; i < 300; ++i) {
    // Stay strictly inside the grid's covered range [-scale/2, scale/2].
    const float w = rng.uniform(-scale / 2.0f, scale / 2.0f);
    EXPECT_LE(std::fabs(quantize_weight_to_grid(w, bits, scale) - w),
              step / 2.0f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, WeightGridProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(ClusteringProperty, IdempotentOnItsOwnOutput) {
  nn::Rng rng(9);
  nn::Tensor w({1000});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0f, 0.4f);

  nn::Tensor q1;
  const WeightClusterResult r1 = cluster_tensor(w, 4, true, &q1);
  nn::Tensor q2;
  const WeightClusterResult r2 = cluster_tensor(q1, 4, true, &q2);
  EXPECT_TRUE(q2.allclose(q1, 1e-5f));
  EXPECT_NEAR(r2.mse, 0.0f, 1e-9f);
  (void)r1;
}

TEST(ClusteringProperty, ScaleEquivariance) {
  // Clustering commutes with a global rescale of the weights.
  nn::Rng rng(10);
  nn::Tensor w({500});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0f, 0.4f);
  nn::Tensor w2 = w;
  w2 *= 3.0f;

  nn::Tensor q1, q2;
  cluster_tensor(w, 4, true, &q1);
  cluster_tensor(w2, 4, true, &q2);
  q1 *= 3.0f;
  EXPECT_TRUE(q2.allclose(q1, 1e-4f));
}

TEST(DfpProperty, QuantizeIdempotent) {
  nn::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const int fl = static_cast<int>(rng.uniform_int(0, 10));
    const float v = rng.uniform(-4.0f, 4.0f);
    const float once = dfp_quantize(v, 8, fl);
    EXPECT_FLOAT_EQ(dfp_quantize(once, 8, fl), once);
  }
}

TEST(DfpProperty, WiderIsNeverWorse) {
  nn::Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const float v = rng.uniform(-1.0f, 1.0f);
    float prev_err = 1e9f;
    for (int bits : {4, 6, 8, 12}) {
      const int fl = choose_fraction_bits(1.0f, bits);
      const float err = std::fabs(dfp_quantize(v, bits, fl) - v);
      EXPECT_LE(err, prev_err + 1e-6f) << "v=" << v << " bits=" << bits;
      prev_err = err;
    }
  }
}

}  // namespace
}  // namespace qsnc::core
