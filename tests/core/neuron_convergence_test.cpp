#include "core/neuron_convergence.h"

#include <gtest/gtest.h>

#include "nn/layers/relu.h"
#include "nn/network.h"
#include "nn/layers/dense.h"

namespace qsnc::core {
namespace {

TEST(NeuronConvergenceTest, Eq3PenaltyInsideRange) {
  // M=4 -> threshold 8; inside: alpha*|o|.
  NeuronConvergenceRegularizer reg(4, 1.0f, 0.1f);
  EXPECT_FLOAT_EQ(reg.penalty(0.0f), 0.0f);
  EXPECT_FLOAT_EQ(reg.penalty(5.0f), 0.5f);
  EXPECT_FLOAT_EQ(reg.penalty(-5.0f), 0.5f);
}

TEST(NeuronConvergenceTest, Eq3PenaltyBeyondRange) {
  // Beyond: (|o| - 8) + alpha*|o|.
  NeuronConvergenceRegularizer reg(4, 1.0f, 0.1f);
  EXPECT_FLOAT_EQ(reg.penalty(10.0f), 2.0f + 1.0f);
  EXPECT_FLOAT_EQ(reg.penalty(-10.0f), 2.0f + 1.0f);
  EXPECT_FLOAT_EQ(reg.penalty(8.0f), 0.8f);  // kink point
}

TEST(NeuronConvergenceTest, PenaltyIsContinuousAtKink) {
  NeuronConvergenceRegularizer reg(3, 1.0f, 0.1f);  // threshold 4
  const float below = reg.penalty(4.0f - 1e-4f);
  const float above = reg.penalty(4.0f + 1e-4f);
  EXPECT_NEAR(below, above, 1e-3f);
}

TEST(NeuronConvergenceTest, GradientMatchesSlopes) {
  NeuronConvergenceRegularizer reg(4, 1.0f, 0.1f);
  EXPECT_FLOAT_EQ(reg.grad(5.0f), 0.1f);
  EXPECT_FLOAT_EQ(reg.grad(-5.0f), -0.1f);
  EXPECT_FLOAT_EQ(reg.grad(10.0f), 1.1f);
  EXPECT_FLOAT_EQ(reg.grad(-10.0f), -1.1f);
  EXPECT_FLOAT_EQ(reg.grad(0.0f), 0.0f);  // subgradient choice at 0
}

TEST(NeuronConvergenceTest, GradientMatchesFiniteDifference) {
  NeuronConvergenceRegularizer reg(4, 1.0f, 0.1f);
  const float eps = 1e-3f;
  for (float o : {0.5f, 3.0f, 7.5f, 9.0f, 20.0f, -2.0f, -12.0f}) {
    const float numeric =
        (reg.penalty(o + eps) - reg.penalty(o - eps)) / (2 * eps);
    EXPECT_NEAR(numeric, reg.grad(o), 1e-2f) << "at o=" << o;
  }
}

TEST(NeuronConvergenceTest, ThresholdTracksBits) {
  EXPECT_FLOAT_EQ(NeuronConvergenceRegularizer(3, 1.0f).threshold(), 4.0f);
  EXPECT_FLOAT_EQ(NeuronConvergenceRegularizer(5, 1.0f).threshold(), 16.0f);
}

TEST(NeuronConvergenceTest, InvalidArgsThrow) {
  EXPECT_THROW(NeuronConvergenceRegularizer(0, 1.0f), std::invalid_argument);
  EXPECT_THROW(NeuronConvergenceRegularizer(4, -1.0f), std::invalid_argument);
  EXPECT_THROW(NeuronConvergenceRegularizer(4, 1.0f, -0.1f),
               std::invalid_argument);
}

TEST(L1RegularizerTest, AbsoluteValueForm) {
  L1SignalRegularizer reg(0.5f);
  EXPECT_FLOAT_EQ(reg.penalty(3.0f), 3.0f);
  EXPECT_FLOAT_EQ(reg.penalty(-3.0f), 3.0f);
  EXPECT_FLOAT_EQ(reg.grad(2.0f), 1.0f);
  EXPECT_FLOAT_EQ(reg.grad(-2.0f), -1.0f);
  EXPECT_FLOAT_EQ(reg.lambda(), 0.5f);
}

TEST(TruncatedL1Test, ZeroInsideRange) {
  TruncatedL1Regularizer reg(4, 1.0f);  // threshold 8
  EXPECT_FLOAT_EQ(reg.penalty(5.0f), 0.0f);
  EXPECT_FLOAT_EQ(reg.grad(5.0f), 0.0f);
  EXPECT_FLOAT_EQ(reg.penalty(10.0f), 2.0f);
  EXPECT_FLOAT_EQ(reg.grad(10.0f), 1.0f);
  EXPECT_FLOAT_EQ(reg.grad(-10.0f), -1.0f);
}

TEST(ReluRegularizerHookTest, PenaltyAccumulatesMeanNormalized) {
  nn::ReLU relu;
  NeuronConvergenceRegularizer reg(4, 2.0f, 0.1f);
  relu.set_regularizer(&reg);
  // Signals: 10 (beyond, penalty 3.0) and 5 (inside, penalty 0.5);
  // mean over 2 elements, lambda 2 -> 2 * 3.5 / 2 = 3.5.
  nn::Tensor x({2}, {10.0f, 5.0f});
  relu.forward(x, /*train=*/true);
  EXPECT_NEAR(relu.last_penalty(), 3.5f, 1e-5f);
}

TEST(ReluRegularizerHookTest, BackwardAddsRegGradient) {
  nn::ReLU relu;
  NeuronConvergenceRegularizer reg(4, 2.0f, 0.1f);
  relu.set_regularizer(&reg);
  nn::Tensor x({2}, {10.0f, -1.0f});
  relu.forward(x, true);
  nn::Tensor g({2}, {0.0f, 0.0f});
  nn::Tensor gi = relu.backward(g);
  // Element 0: reg grad 1.1 * lambda 2 / numel 2 = 1.1, times relu mask 1.
  EXPECT_NEAR(gi[0], 1.1f, 1e-5f);
  // Element 1: masked by ReLU.
  EXPECT_FLOAT_EQ(gi[1], 0.0f);
}

TEST(ReluRegularizerHookTest, TrainingShrinksSignalsIntoRange) {
  // A 1-layer toy: with a strong NC regularizer and zero data loss,
  // gradient descent must pull an out-of-range activation below threshold.
  nn::Rng rng(60);
  nn::Dense fc(1, 1, rng);
  fc.weight().value[0] = 20.0f;  // activation = 20 * input
  fc.bias().value[0] = 0.0f;
  nn::ReLU relu;
  NeuronConvergenceRegularizer reg(4, 5.0f, 0.1f);
  relu.set_regularizer(&reg);

  nn::Tensor x({1, 1}, {1.0f});
  for (int step = 0; step < 200; ++step) {
    for (nn::Param* p : fc.params()) p->zero_grad();
    nn::Tensor h = fc.forward(x, true);
    relu.forward(h, true);
    nn::Tensor zero({1, 1}, 0.0f);
    nn::Tensor g = relu.backward(zero);
    fc.backward(g);
    fc.weight().value[0] -= 0.05f * fc.weight().grad[0];
  }
  EXPECT_LT(fc.weight().value[0], 8.5f);  // pulled to the 2^{M-1} boundary
}

}  // namespace
}  // namespace qsnc::core
