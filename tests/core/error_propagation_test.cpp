#include "core/error_propagation.h"

#include <gtest/gtest.h>

#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"

namespace qsnc::core {
namespace {

class ErrorPropagationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticMnistConfig cfg;
    cfg.num_samples = 400;
    data_ = data::make_synthetic_mnist(cfg);
  }
  static data::DatasetPtr data_;
};

data::DatasetPtr ErrorPropagationTest::data_;

TEST_F(ErrorPropagationTest, ReportsOneEntryPerSignalLayer) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  const auto stats = analyze_error_propagation(net, *data_, 4, 16.0f, 16);
  EXPECT_EQ(stats.size(), net.signal_layers().size());
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].layer_index, static_cast<int>(i));
    EXPECT_GE(stats[i].mean_abs_error, 0.0);
    EXPECT_GE(stats[i].sparsity, 0.0);
    EXPECT_LE(stats[i].sparsity, 1.0);
  }
}

TEST_F(ErrorPropagationTest, HooksDetachedAfterAnalysis) {
  nn::Rng rng(2);
  nn::Network net = models::make_lenet(rng);
  analyze_error_propagation(net, *data_, 4, 16.0f, 8);
  for (nn::ReLU* r : net.signal_layers()) {
    EXPECT_EQ(r->quantizer(), nullptr);
  }
}

TEST_F(ErrorPropagationTest, WiderBitsGiveSmallerError) {
  nn::Rng rng(3);
  nn::Network net = models::make_lenet(rng);
  core::TrainConfig cfg;
  cfg.epochs = 4;
  core::train(net, *data_, cfg);

  const auto e3 = analyze_error_propagation(net, *data_, 3, 16.0f, 32);
  const auto e6 = analyze_error_propagation(net, *data_, 6, 16.0f, 32);
  // Compare the final layer's accumulated error.
  EXPECT_LT(e6.back().mean_abs_error, e3.back().mean_abs_error);
}

TEST_F(ErrorPropagationTest, NcTrainingReducesFinalLayerError) {
  // The Eq 4 claim as an assertion: the NC-trained network's deepest
  // signal layer carries less relative quantization error.
  core::TrainConfig cfg;
  cfg.epochs = 6;
  auto run = [&](bool with_nc) {
    nn::Rng rng(cfg.seed);
    nn::Network net = models::make_lenet(rng);
    core::NeuronConvergenceRegularizer reg(4, 0.1f);
    core::train(net, *data_, cfg, with_nc ? &reg : nullptr,
                with_nc ? 4 : 0, cfg.epochs - 2);
    return analyze_error_propagation(net, *data_, 4, 16.0f, 32);
  };
  const auto plain = run(false);
  const auto nc = run(true);
  EXPECT_LT(nc.back().relative_error, plain.back().relative_error);
}

TEST_F(ErrorPropagationTest, EmptyDatasetThrows) {
  nn::Rng rng(4);
  nn::Network net = models::make_lenet(rng);
  nn::Tensor none({0, 1, 28, 28});
  data::InMemoryDataset empty("empty", none, {}, 10);
  EXPECT_THROW(analyze_error_propagation(net, empty, 4, 16.0f),
               std::invalid_argument);
}

}  // namespace
}  // namespace qsnc::core
