#include "core/bn_folding.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"
#include "models/model_zoo.h"

namespace qsnc::core {
namespace {

using test::randomize;

// Builds conv+BN+ReLU and feeds training batches so BN has running stats.
nn::Network make_conv_bn(nn::Rng& rng) {
  nn::Network net;
  net.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng, /*use_bias=*/false);
  net.emplace<nn::BatchNorm2d>(4);
  net.emplace<nn::ReLU>();
  return net;
}

void warm_up(nn::Network& net, nn::Rng& rng, const nn::Shape& shape) {
  for (int i = 0; i < 30; ++i) {
    nn::Tensor x(shape);
    randomize(x, rng, -2.0f, 2.0f);
    net.forward(x, true);
  }
}

TEST(BnFoldingTest, FoldedNetworkMatchesOriginalInference) {
  nn::Rng rng(80);
  nn::Network net = make_conv_bn(rng);
  warm_up(net, rng, {4, 2, 6, 6});

  nn::Tensor x({2, 2, 6, 6});
  randomize(x, rng);
  const nn::Tensor before = net.forward(x, false);

  EXPECT_EQ(fold_batchnorm(net), 1);
  const nn::Tensor after = net.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-4f));
}

TEST(BnFoldingTest, FoldedBnIsExactIdentity) {
  nn::Rng rng(81);
  nn::Network net = make_conv_bn(rng);
  warm_up(net, rng, {4, 2, 6, 6});
  auto* bn = dynamic_cast<nn::BatchNorm2d*>(&net.layer(1));
  EXPECT_FALSE(is_identity_batchnorm(*bn));
  fold_batchnorm(net);
  EXPECT_TRUE(is_identity_batchnorm(*bn));
}

TEST(BnFoldingTest, ResidualBlockFoldPreservesInference) {
  nn::Rng rng(82);
  nn::Network net;
  net.emplace<nn::ResidualBlock>(3, 6, 2, rng);
  warm_up(net, rng, {4, 3, 8, 8});

  nn::Tensor x({2, 3, 8, 8});
  randomize(x, rng);
  const nn::Tensor before = net.forward(x, false);
  EXPECT_EQ(fold_batchnorm(net), 2);
  const nn::Tensor after = net.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-4f));
}

TEST(BnFoldingTest, ProjectionBlockFoldsAllThreeBns) {
  nn::Rng rng(83);
  nn::Network net;
  net.emplace<nn::ResidualBlock>(3, 6, 2, rng,
                                 nn::ShortcutKind::kProjection);
  warm_up(net, rng, {4, 3, 8, 8});
  nn::Tensor x({2, 3, 8, 8});
  randomize(x, rng);
  const nn::Tensor before = net.forward(x, false);
  EXPECT_EQ(fold_batchnorm(net), 3);
  const nn::Tensor after = net.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-4f));
}

TEST(BnFoldingTest, FullResnetFoldPreservesPredictions) {
  nn::Rng rng(84);
  nn::Network net = models::make_resnet_mini(rng);
  warm_up(net, rng, {4, 3, 32, 32});

  nn::Tensor x({4, 3, 32, 32});
  randomize(x, rng, 0.0f, 1.0f);
  const nn::Tensor before = net.forward(x, false);
  // 17 conv-BN pairs: 1 stem + 8 blocks x 2.
  EXPECT_EQ(fold_batchnorm(net), 17);
  const nn::Tensor after = net.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 2e-3f));
}

TEST(BnFoldingTest, OrphanBnThrows) {
  nn::Rng rng(85);
  nn::Network net;
  net.emplace<nn::BatchNorm2d>(4);
  EXPECT_THROW(fold_batchnorm(net), std::invalid_argument);

  // ReLU between conv and BN breaks the foldable pair.
  nn::Network net2;
  net2.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  net2.emplace<nn::ReLU>();
  net2.emplace<nn::BatchNorm2d>(4);
  EXPECT_THROW(fold_batchnorm(net2), std::invalid_argument);
}

TEST(BnFoldingTest, FoldIsIdempotent) {
  nn::Rng rng(86);
  nn::Network net = make_conv_bn(rng);
  warm_up(net, rng, {4, 2, 6, 6});
  fold_batchnorm(net);
  nn::Tensor x({1, 2, 6, 6});
  randomize(x, rng);
  const nn::Tensor once = net.forward(x, false);
  fold_batchnorm(net);  // folding an identity BN changes nothing
  const nn::Tensor twice = net.forward(x, false);
  EXPECT_TRUE(twice.allclose(once, 1e-6f));
}

}  // namespace
}  // namespace qsnc::core
