// Integration tests of the experiment pipeline on a down-scaled LeNet /
// synthetic-MNIST workload. These assert the *shape* invariants the paper's
// Tables 2-4 rest on; the bench binaries rerun the same flows at full size.
#include "core/qat_pipeline.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"

namespace qsnc::core {
namespace {

class QatPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticMnistConfig tc;
    tc.num_samples = 1000;
    tc.seed = 1;
    data::SyntheticMnistConfig ec = tc;
    ec.num_samples = 250;
    ec.seed = 99;
    train_ = data::make_synthetic_mnist(tc);
    test_ = data::make_synthetic_mnist(ec);
  }

  static TrainConfig fast_config() {
    TrainConfig cfg;
    cfg.epochs = 10;
    return cfg;
  }

  static data::DatasetPtr train_;
  static data::DatasetPtr test_;
};

data::DatasetPtr QatPipelineTest::train_;
data::DatasetPtr QatPipelineTest::test_;

TEST_F(QatPipelineTest, PlainTrainingLearns) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  const TrainConfig cfg = fast_config();
  const TrainResult r = train(net, *train_, cfg);
  ASSERT_EQ(r.history.size(), static_cast<size_t>(cfg.epochs));
  EXPECT_LT(r.history.back().loss, r.history.front().loss * 0.6f);
  EXPECT_GT(evaluate_accuracy(net, *test_, cfg.input_scale), 0.6);
}

TEST_F(QatPipelineTest, RegularizerConstrainsSignalRange) {
  // Train one net plainly and one with Neuron Convergence; the NC-trained
  // net must keep a far smaller fraction of its inter-layer signals above
  // the 2^{M-1} range threshold (the Fig 4 comparison).
  class MaxRecorder final : public nn::SignalQuantizer {
   public:
    float apply(float o) const override {
      ++total_;
      if (o >= 8.0f) ++above_;  // threshold for M=4
      return o;
    }
    bool pass_through(float) const override { return true; }
    double fraction_above() const {
      return total_ > 0 ? static_cast<double>(above_) / total_ : 0.0;
    }

   private:
    mutable int64_t above_ = 0;
    mutable int64_t total_ = 0;
  };

  const TrainConfig cfg = fast_config();
  auto measure = [&](bool with_nc) {
    nn::Rng rng(cfg.seed);
    nn::Network net = models::make_lenet(rng);
    NeuronConvergenceRegularizer reg(4, 0.1f);
    TrainResult r = train(net, *train_, cfg, with_nc ? &reg : nullptr);
    if (with_nc) EXPECT_GT(r.history.front().penalty, 0.0f);
    MaxRecorder recorder;
    net.set_signal_quantizer(&recorder);
    nn::Tensor batch = test_->batch_images(0, 64);
    batch *= cfg.input_scale;
    net.forward(batch, false);
    net.set_signal_quantizer(nullptr);
    return recorder.fraction_above();
  };

  const double plain_above = measure(false);
  const double nc_above = measure(true);
  EXPECT_LT(nc_above, plain_above * 0.5 + 1e-9);
  EXPECT_LT(nc_above, 0.10);
}

TEST_F(QatPipelineTest, HooksDetachedAfterTraining) {
  nn::Rng rng(3);
  nn::Network net = models::make_lenet(rng);
  TrainConfig cfg = fast_config();
  cfg.epochs = 1;
  NeuronConvergenceRegularizer reg(4, 0.1f);
  train(net, *train_, cfg, &reg, 4, 0);
  for (nn::ReLU* r : net.signal_layers()) {
    EXPECT_EQ(r->quantizer(), nullptr);
  }
  // Forward in train mode reports zero penalty (regularizer detached).
  nn::Tensor x({1, 1, 28, 28});
  net.forward(x, true);
  EXPECT_EQ(net.signal_penalty(), 0.0f);
}

TEST_F(QatPipelineTest, SignalExperimentShapeInvariants) {
  nn::Rng dummy(0);
  const ExperimentResult r = run_signal_experiment(
      models::make_lenet, "Lenet", *train_, *test_, {4, 3}, fast_config(),
      NcOptions{});
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_GT(r.ideal_acc, 0.6);
  for (size_t i = 0; i < r.rows.size(); ++i) {
    // (i) the proposed method never hurts...
    EXPECT_GE(r.rows[i].acc_with, r.rows[i].acc_without - 0.02)
        << "bits " << r.rows[i].bits;
  }
  // (ii) ...and direct quantization degrades as bits shrink (4 -> 3).
  EXPECT_GE(r.rows[0].acc_without, r.rows[1].acc_without - 0.02);
  // (iii) at 3 bits the recovery is substantial (Table 2's key claim).
  EXPECT_GT(r.recovered_pp(1), 2.0);
}

TEST_F(QatPipelineTest, WeightExperimentShapeInvariants) {
  const ExperimentResult r = run_weight_experiment(
      models::make_lenet, "Lenet", *train_, *test_, {4, 3}, fast_config());
  ASSERT_EQ(r.rows.size(), 2u);
  for (size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i].acc_with, r.rows[i].acc_without - 0.02)
        << "bits " << r.rows[i].bits;
  }
  // Clustering plus fine-tune keeps 4-bit weights near the ideal.
  EXPECT_LT(r.drop_pp(0), 10.0);
}

TEST_F(QatPipelineTest, CombinedExperimentShapeInvariants) {
  const ExperimentResult r = run_combined_experiment(
      models::make_lenet, "Lenet", *train_, *test_, {4}, fast_config(),
      NcOptions{}, /*fine_tune_epochs=*/1);
  ASSERT_EQ(r.rows.size(), 1u);
  // The DFP-8 baseline retains the fp32 accuracy (it is the easy regime).
  EXPECT_GT(r.dfp8_acc, r.ideal_acc - 0.05);
  // Combined 4-bit with the proposed method recovers over direct quant.
  EXPECT_GE(r.rows[0].acc_with, r.rows[0].acc_without - 0.02);
}

TEST_F(QatPipelineTest, FineTuneKeepsWeightsOnGrid) {
  nn::Rng rng(4);
  nn::Network net = models::make_lenet(rng);
  TrainConfig cfg = fast_config();
  cfg.epochs = 2;
  train(net, *train_, cfg);

  WeightClusterConfig wc;
  wc.bits = 4;
  const auto wcr = apply_weight_clustering(net, wc);
  TrainConfig ft = cfg;
  ft.epochs = 1;
  fine_tune_quantized(net, *train_, ft, 4, wc, wcr);

  // All synapse weights still on their per-layer grids.
  size_t synapse_idx = 0;
  for (nn::Param* p : net.params()) {
    if (p->value.rank() < 2) continue;
    const float step =
        wcr[synapse_idx].scale / 16.0f;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float k = p->value[i] / step;
      EXPECT_NEAR(k, std::round(k), 1e-3f);
    }
    ++synapse_idx;
  }
}

TEST_F(QatPipelineTest, DeterministicAcrossRuns) {
  const TrainConfig cfg = fast_config();
  nn::Rng rng_a(cfg.seed), rng_b(cfg.seed);
  nn::Network a = models::make_lenet(rng_a);
  nn::Network b = models::make_lenet(rng_b);
  train(a, *train_, cfg);
  train(b, *train_, cfg);
  const double acc_a = evaluate_accuracy(a, *test_, cfg.input_scale);
  const double acc_b = evaluate_accuracy(b, *test_, cfg.input_scale);
  EXPECT_EQ(acc_a, acc_b);
}

TEST(MetricsTest, AccuracyDropHelper) {
  EXPECT_DOUBLE_EQ(accuracy_drop_pp(0.98, 0.96), 2.0);
  EXPECT_DOUBLE_EQ(accuracy_drop_pp(0.5, 0.6), -10.0);
}

}  // namespace
}  // namespace qsnc::core
