// Properties the router leans on: deterministic placement, stable
// clockwise fallback order, minimal remap under membership churn, and a
// roughly balanced key split.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "router/hash_ring.h"

namespace qsnc::router {
namespace {

std::vector<std::string> fleet(int n) {
  std::vector<std::string> labels;
  for (int i = 0; i < n; ++i) {
    labels.push_back("tcp:127.0.0.1:" + std::to_string(7601 + i));
  }
  return labels;
}

TEST(RouteHashTest, SeparatesModelAndKey) {
  // (model, key) concatenation ambiguity must not collide: "ab"+"c" and
  // "a"+"bc" are different routes.
  EXPECT_NE(route_hash("ab", "c"), route_hash("a", "bc"));
  EXPECT_NE(route_hash("m", ""), route_hash("", "m"));
  // Deterministic across calls.
  EXPECT_EQ(route_hash("lenet-mini", "s7"), route_hash("lenet-mini", "s7"));
  // Distinct sessions spread.
  EXPECT_NE(route_hash("lenet-mini", "s7"), route_hash("lenet-mini", "s8"));
}

TEST(HashRingTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(HashRing({}, 64), std::invalid_argument);
  EXPECT_THROW(HashRing(fleet(2), 0), std::invalid_argument);
}

TEST(HashRingTest, PickIsDeterministicAndInRange) {
  const HashRing a(fleet(4), 64);
  const HashRing b(fleet(4), 64);
  for (uint64_t k = 0; k < 500; ++k) {
    const uint64_t h = route_hash("m", std::to_string(k));
    const size_t owner = a.pick(h);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, b.pick(h));
  }
}

TEST(HashRingTest, PickNGivesDistinctNodesWithOwnerFirst) {
  const HashRing ring(fleet(5), 64);
  for (uint64_t k = 0; k < 200; ++k) {
    const uint64_t h = route_hash("m", std::to_string(k));
    const std::vector<size_t> cands = ring.pick_n(h, 3);
    ASSERT_EQ(cands.size(), 3u);
    EXPECT_EQ(cands[0], ring.pick(h));
    EXPECT_EQ(std::set<size_t>(cands.begin(), cands.end()).size(), 3u);
    // Asking for more than the fleet returns every node exactly once.
    const std::vector<size_t> all = ring.pick_n(h, 99);
    EXPECT_EQ(all.size(), 5u);
    EXPECT_EQ(std::set<size_t>(all.begin(), all.end()).size(), 5u);
    // The shorter list is a prefix of the longer one (stable order).
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_EQ(cands[i], all[i]);
    }
  }
}

TEST(HashRingTest, RemovingANodeOnlyRemapsItsOwnKeys) {
  const auto labels = fleet(5);
  const HashRing full(labels, 64);

  // Drop node 2; survivors keep their labels (label-hashed points mean
  // their ring positions are unchanged).
  std::vector<std::string> reduced = labels;
  reduced.erase(reduced.begin() + 2);
  const HashRing shrunk(reduced, 64);

  int moved_from_survivor = 0;
  int keys_on_removed = 0;
  for (uint64_t k = 0; k < 2000; ++k) {
    const uint64_t h = route_hash("m", std::to_string(k));
    const size_t before = full.pick(h);
    const std::string& owner_after = reduced[shrunk.pick(h)];
    if (before == 2) {
      ++keys_on_removed;  // must remap somewhere; any survivor is fine
    } else if (labels[before] != owner_after) {
      ++moved_from_survivor;
    }
  }
  EXPECT_GT(keys_on_removed, 0);  // node 2 owned a nonzero share
  EXPECT_EQ(moved_from_survivor, 0);
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  const HashRing ring(fleet(4), 128);
  std::map<size_t, int> counts;
  const int kKeys = 8000;
  for (int k = 0; k < kKeys; ++k) {
    ++counts[ring.pick(route_hash("m", std::to_string(k)))];
  }
  ASSERT_EQ(counts.size(), 4u);  // every node owns some keys
  for (const auto& [node, count] : counts) {
    // Within a generous factor of the fair share (vnode variance).
    EXPECT_GT(count, kKeys / 4 / 3) << "node " << node << " starved";
    EXPECT_LT(count, kKeys / 4 * 3) << "node " << node << " overloaded";
  }
}

}  // namespace
}  // namespace qsnc::router
