// Multi-process fleet chaos: two real backend processes (fork + exec-free
// in-child servers) under the soak chaos profile, a router over them, and
// a SIGKILL of one backend mid-load. The contract under test is the
// router's zero-drop guarantee: every client request eventually resolves
// kOk — chaos and the kill cost retries/latency, never a lost request.
//
// fork() happens before the parent or child create any threads (servers
// and the router spawn theirs afterwards), so this test must stay out of
// the tsan suite.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "router/hash_ring.h"
#include "router/router_config.h"
#include "router/router_server.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace qsnc::router {
namespace {

using serve::Response;
using serve::Status;

struct ChildBackend {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// Forks a backend serving process under the soak chaos profile (or,
/// with `versioned_rollout`, chaos-free with a versioned registry and a
/// fast-deciding rollout controller). The child binds an ephemeral TCP
/// port, reports it over a pipe, and serves until SIGTERM (or SIGKILL).
/// Must be called before the parent creates any threads.
ChildBackend spawn_backend(uint64_t chaos_seed,
                           bool versioned_rollout = false) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return {};
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    {
      serve::ChaosInjector chaos(serve::chaos_profile("soak", chaos_seed));
      serve::ModelConfig cfg;
      cfg.architecture = "lenet-mini";
      cfg.backend = serve::BackendKind::kFp32;
      cfg.init_seed = 5;
      serve::ModelRegistry registry;
      registry.add(versioned_rollout ? "lenet-mini@v1" : "lenet-mini", cfg);
      serve::BatchOptions opts;
      opts.max_batch = 4;
      opts.batch_timeout_us = 500;
      if (!versioned_rollout) opts.chaos = &chaos;
      serve::RolloutOptions rollout;
      rollout.shadow_fraction = 1.0;
      rollout.observe_requests = 2;
      rollout.canary_interval_ms = 5;
      serve::ServeCore core(registry, opts, rollout);
      serve::SocketServerOptions sopts;
      if (!versioned_rollout) sopts.chaos = &chaos;
      serve::SocketServer server(core, "tcp:127.0.0.1:0", sopts);
      const uint16_t port = static_cast<uint16_t>(server.endpoint().port);
      if (::write(pipefd[1], &port, sizeof(port)) != sizeof(port)) {
        ::_exit(2);
      }
      ::close(pipefd[1]);
      server.run_until_signal();
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  ChildBackend child;
  child.pid = pid;
  ssize_t n = 0;
  while (n < static_cast<ssize_t>(sizeof(child.port))) {
    const ssize_t got =
        ::read(pipefd[0], reinterpret_cast<char*>(&child.port) + n,
               sizeof(child.port) - n);
    if (got <= 0) break;
    n += got;
  }
  ::close(pipefd[0]);
  if (n != sizeof(child.port) || child.port == 0) {
    ADD_FAILURE() << "backend child never reported its port";
  }
  return child;
}

void reap(ChildBackend& child, int sig) {
  if (child.pid <= 0) return;
  ::kill(child.pid, sig);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  child.pid = -1;
}

TEST(FleetChaosTest, SigkillUnderSoakLosesNoAcceptedRequests) {
  // Fork both backends before anything in this process starts a thread.
  ChildBackend b0 = spawn_backend(101);
  ChildBackend b1 = spawn_backend(202);
  ASSERT_GT(b0.port, 0);
  ASSERT_GT(b1.port, 0);

  RouterOptions options;
  options.backends = {
      serve::parse_endpoint("tcp:127.0.0.1:" + std::to_string(b0.port)),
      serve::parse_endpoint("tcp:127.0.0.1:" + std::to_string(b1.port)),
  };
  options.listen = serve::parse_endpoint("tcp:127.0.0.1:0");
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 500;
  options.probe_down_after = 2;
  options.forward_timeout_ms = 3000;
  RouterServer router(options);

  // Reference predictions from an in-process copy of the same model.
  serve::ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = serve::BackendKind::kFp32;
  cfg.init_seed = 5;
  serve::ModelRegistry reference_registry;
  reference_registry.add("lenet-mini", cfg);
  serve::ServeCore reference(reference_registry, serve::BatchOptions{});

  nn::Rng rng(77);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < 45; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }

  // A session whose ring owner is backend 1 (the one we will kill): the
  // first pinned request after the SIGKILL must hit the corpse and
  // reroute, making the reroute counter deterministic.
  const HashRing ring(
      {options.backends[0].str(), options.backends[1].str()},
      options.vnodes);
  std::string doomed_session;
  for (int i = 0; i < 1000 && doomed_session.empty(); ++i) {
    const std::string s = "s" + std::to_string(i);
    if (ring.pick(route_hash("lenet-mini", s)) == 1) doomed_session = s;
  }
  ASSERT_FALSE(doomed_session.empty());

  auto client = std::make_unique<serve::SocketClient>(router.endpoint());
  uint64_t retries = 0;
  int dropped = 0;
  for (size_t i = 0; i < images.size(); ++i) {
    if (i == 15) {
      // SIGKILL one backend mid-load: no drain, no goodbye frame.
      ::kill(b1.pid, SIGKILL);
      int status = 0;
      ::waitpid(b1.pid, &status, 0);
      b1.pid = -1;
    }
    const Response expect = reference.infer("lenet-mini", images[i]);
    ASSERT_EQ(expect.status, Status::kOk) << expect.error;

    // Requests 15..24 pin to the killed backend's ring position; the
    // rest spread.
    const std::string session =
        (i >= 15 && i < 25) ? doomed_session : std::string();
    bool ok = false;
    for (int attempt = 0; attempt < 30 && !ok; ++attempt) {
      if (attempt > 0) {
        ++retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      try {
        const Response r =
            client->infer("lenet-mini", images[i], /*deadline_us=*/0,
                          serve::Priority::kInteractive, session);
        if (r.status == Status::kOk) {
          EXPECT_EQ(r.prediction, expect.prediction) << "request " << i;
          ok = true;
        }
        // kError (injected backend fault / all-candidates-failed),
        // kRejected, kShedded: structured rejections, retried above.
      } catch (const std::exception&) {
        // Router connection lost (should not happen — the front runs
        // without chaos); reconnect and retry.
        client = std::make_unique<serve::SocketClient>(router.endpoint());
      }
    }
    if (!ok) ++dropped;
  }

  // The zero-drop contract: chaos + SIGKILL cost retries, never a
  // permanently failed request.
  EXPECT_EQ(dropped, 0);
  EXPECT_GT(router.router().requests(), 0u);
  // The router actually moved traffic off the killed backend (requests
  // pinned to its ring position resolved elsewhere).
  const auto stats = router.pool().stats();
  EXPECT_GT(stats[1].reroutes_away, 0u);

  // And the prober flips its verdict (connect refused = instant probe
  // failure, down after probe_down_after consecutive misses).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.pool().up(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(router.pool().up(1)) << "prober never marked backend down";

  reap(b0, SIGTERM);
  reap(b1, SIGKILL);
}

TEST(FleetChaosTest, SigkillMidRolloutLosesNoRequestsAndRolloutCompletes) {
  // Two versioned backends serving lenet-mini@v1; backend 0 will run a
  // blue/green rollout while backend 1 gets SIGKILLed under live load.
  ChildBackend b0 = spawn_backend(0, /*versioned_rollout=*/true);
  ChildBackend b1 = spawn_backend(0, /*versioned_rollout=*/true);
  ASSERT_GT(b0.port, 0);
  ASSERT_GT(b1.port, 0);

  RouterOptions options;
  options.backends = {
      serve::parse_endpoint("tcp:127.0.0.1:" + std::to_string(b0.port)),
      serve::parse_endpoint("tcp:127.0.0.1:" + std::to_string(b1.port)),
  };
  options.listen = serve::parse_endpoint("tcp:127.0.0.1:0");
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 500;
  options.probe_down_after = 2;
  options.forward_timeout_ms = 3000;
  RouterServer router(options);

  serve::ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = serve::BackendKind::kFp32;
  cfg.init_seed = 5;
  serve::ModelRegistry reference_registry;
  reference_registry.add("lenet-mini", cfg);
  serve::ServeCore reference(reference_registry, serve::BatchOptions{});

  nn::Rng rng(78);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < 40; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }

  // Hot-load a bit-identical v2 onto backend 0 over its control socket:
  // the rollout shadows every request backend 0 serves from here on.
  serve::SocketClient control("tcp:127.0.0.1:" + std::to_string(b0.port));
  serve::LoadVersionRequest load;
  load.name = "lenet-mini@v2";
  load.init_seed = 5;  // same seed as v1: every prediction agrees
  const serve::RolloutReply loaded = control.load_version(load);
  ASSERT_TRUE(loaded.ok) << loaded.message;

  auto client = std::make_unique<serve::SocketClient>(router.endpoint());
  uint64_t retries = 0;
  int dropped = 0;
  for (size_t i = 0; i < images.size(); ++i) {
    if (i == 12) {
      // SIGKILL the *other* backend mid-rollout: the fleet keeps serving
      // and backend 0's rollout keeps judging, undisturbed.
      ::kill(b1.pid, SIGKILL);
      int status = 0;
      ::waitpid(b1.pid, &status, 0);
      b1.pid = -1;
    }
    const Response expect = reference.infer("lenet-mini", images[i]);
    ASSERT_EQ(expect.status, Status::kOk) << expect.error;
    bool ok = false;
    for (int attempt = 0; attempt < 30 && !ok; ++attempt) {
      if (attempt > 0) {
        ++retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      try {
        const Response r = client->infer("lenet-mini", images[i]);
        if (r.status == Status::kOk) {
          EXPECT_EQ(r.prediction, expect.prediction) << "request " << i;
          ok = true;
        }
      } catch (const std::exception&) {
        client = std::make_unique<serve::SocketClient>(router.endpoint());
      }
    }
    if (!ok) ++dropped;
  }
  EXPECT_EQ(dropped, 0);

  // The rollout auto-promotes from the shadowed traffic + canary battery
  // (same seed: nothing can diverge).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  std::string status_text;
  while (std::chrono::steady_clock::now() < deadline) {
    status_text = control.rollout_status("lenet-mini").message;
    if (status_text.find("promoted") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(status_text.find("promoted"), std::string::npos) << status_text;

  // Bare-name traffic now serves v2 with identical predictions, and v1
  // stays reachable by its explicit name as a standby.
  const Response via_v2 = control.infer("lenet-mini", images[0]);
  EXPECT_EQ(via_v2.status, Status::kOk) << via_v2.error;
  const Response via_v1 = control.infer("lenet-mini@v1", images[0]);
  EXPECT_EQ(via_v1.status, Status::kOk) << via_v1.error;
  EXPECT_EQ(via_v1.prediction, via_v2.prediction);

  // The router's prober learns the flip from the health acks: backend 0
  // now advertises lenet-mini@v2.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool labeled = false;
  while (!labeled && std::chrono::steady_clock::now() < deadline) {
    for (const BackendSnapshot& s : router.pool().stats()) {
      for (const serve::ModelVersionLabel& label : s.versions) {
        if (label.model == "lenet-mini" && label.version == "v2") {
          labeled = true;
        }
      }
    }
    if (!labeled) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(labeled) << "prober never saw the promoted version label";

  reap(b0, SIGTERM);
  reap(b1, SIGKILL);
}

}  // namespace
}  // namespace qsnc::router
