// End-to-end router tier over in-process backend servers: bit-exact
// passthrough, session stickiness, reroute-on-death with zero dropped
// requests, and hedging around a chaos-slowed backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "router/hash_ring.h"
#include "router/router_config.h"
#include "router/router_server.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace qsnc::router {
namespace {

using serve::BatchOptions;
using serve::Response;
using serve::SocketClient;
using serve::Status;

/// One in-process backend serving node on an ephemeral TCP port.
struct BackendNode {
  serve::ModelRegistry registry;
  std::unique_ptr<serve::ServeCore> core;
  std::unique_ptr<serve::SocketServer> server;

  explicit BackendNode(const BatchOptions& opts = default_opts()) {
    serve::ModelConfig cfg;
    cfg.architecture = "lenet-mini";
    cfg.backend = serve::BackendKind::kFp32;
    cfg.init_seed = 5;
    registry.add("lenet-mini", cfg);
    core = std::make_unique<serve::ServeCore>(registry, opts);
    server = std::make_unique<serve::SocketServer>(*core, "tcp:127.0.0.1:0");
  }

  static BatchOptions default_opts() {
    BatchOptions opts;
    opts.max_batch = 4;
    opts.batch_timeout_us = 500;
    return opts;
  }

  const serve::Endpoint& endpoint() const { return server->endpoint(); }
};

std::vector<nn::Tensor> random_images(int n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

RouterOptions fast_probe_options(
    const std::vector<const BackendNode*>& nodes) {
  RouterOptions options;
  for (const BackendNode* node : nodes) {
    options.backends.push_back(node->endpoint());
  }
  options.listen = serve::parse_endpoint("tcp:127.0.0.1:0");
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 250;
  options.probe_down_after = 2;
  options.forward_timeout_ms = 3000;
  return options;
}

/// A session key whose ring owner is backend `want` (the ring is a pure
/// function of (labels, vnodes), so the test can precompute ownership).
std::string session_owned_by(const RouterOptions& options, size_t want) {
  std::vector<std::string> labels;
  for (const auto& ep : options.backends) labels.push_back(ep.str());
  const HashRing ring(labels, options.vnodes);
  for (int i = 0; i < 1000; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (ring.pick(route_hash("lenet-mini", session)) == want) {
      return session;
    }
  }
  ADD_FAILURE() << "no session hashed to backend " << want;
  return "s0";
}

// Regression: candidate ordering polls usable() for every backend on
// every request, and that poll must not consume the breaker's half-open
// probe slot — otherwise a backend that tripped its breaker once is
// permanently wedged out of the usable set (only reachable as a
// last-resort) even though it recovered.
TEST(BackendPoolTest, TrippedBreakerRejoinsDespiteRepeatedUsablePolls) {
  RouterOptions options;
  options.backends.push_back(serve::parse_endpoint("unix:/tmp/qsnc-bp-a"));
  options.backends.push_back(serve::parse_endpoint("unix:/tmp/qsnc-bp-b"));
  options.breaker_threshold = 1;
  options.breaker_open_ms = 1;  // 1000us on the synthetic clock below
  BackendPool pool(options);

  pool.record_failure(0, /*now_us=*/0);
  EXPECT_FALSE(pool.usable(0, 500));  // open, timer running
  // Ordering-style polls after the open window: all true, none of them
  // transitions the breaker or takes the probe slot.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.usable(0, 1000 + i));
  }
  EXPECT_EQ(pool.stats()[0].breaker, serve::CircuitBreaker::State::kOpen);
  // The real forward attempt becomes the probe; its success closes the
  // breaker and the backend is fully back.
  EXPECT_TRUE(pool.admit(0, 2000));
  EXPECT_EQ(pool.stats()[0].breaker,
            serve::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(pool.usable(0, 2001));  // probe slot held by the attempt
  pool.record_success(0);
  EXPECT_TRUE(pool.usable(0, 2002));
  EXPECT_EQ(pool.stats()[0].breaker, serve::CircuitBreaker::State::kClosed);
}

// Regression: when the HealthProber revives a backend (probe flips it
// up), its breaker must reset too. Before, a backend whose breaker
// opened during the outage stayed breaker-open for the rest of its
// timer even though a probe just proved it serves again — fast-failing
// live traffic at a healthy backend.
TEST(BackendPoolTest, ProbeReviveResetsBreaker) {
  RouterOptions options;
  options.backends.push_back(serve::parse_endpoint("unix:/tmp/qsnc-bp-a"));
  options.backends.push_back(serve::parse_endpoint("unix:/tmp/qsnc-bp-b"));
  options.breaker_threshold = 1;
  options.breaker_open_ms = 60'000;  // would hold open for 60s of now_us
  options.probe_down_after = 2;
  BackendPool pool(options);

  // Forward failures open the breaker; probe failures mark it down.
  pool.record_failure(0, /*now_us=*/0);
  EXPECT_FALSE(pool.usable(0, 1000));
  pool.record_probe(0, false, 0);
  pool.record_probe(0, false, 0);
  EXPECT_FALSE(pool.up(0));

  // The revival probe flips it up AND closes the breaker — well inside
  // the 60s open window, so only the reset explains usable() here.
  pool.record_probe(0, true, 0);
  EXPECT_TRUE(pool.up(0));
  EXPECT_EQ(pool.stats()[0].breaker, serve::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(pool.usable(0, 2000));

  // A routine ok-probe on an already-up backend is not a revival: it
  // must not reset a breaker that live forwards just opened.
  pool.record_failure(0, 3000);
  EXPECT_FALSE(pool.usable(0, 4000));
  pool.record_probe(0, true, 0);
  EXPECT_FALSE(pool.usable(0, 4001));
  EXPECT_EQ(pool.stats()[0].breaker, serve::CircuitBreaker::State::kOpen);
}

TEST(RouterE2ETest, PredictionsThroughRouterAreBitExact) {
  BackendNode a;
  BackendNode b;
  RouterServer router(fast_probe_options({&a, &b}));

  SocketClient client(router.endpoint());
  const auto images = random_images(16, 123);
  for (size_t i = 0; i < images.size(); ++i) {
    const Response direct = a.core->infer("lenet-mini", images[i]);
    ASSERT_EQ(direct.status, Status::kOk) << direct.error;
    const Response routed = client.infer("lenet-mini", images[i]);
    ASSERT_EQ(routed.status, Status::kOk) << routed.error;
    EXPECT_EQ(routed.prediction, direct.prediction) << "image " << i;
  }
  EXPECT_EQ(router.router().requests(), images.size());
  EXPECT_EQ(router.router().exhausted(), 0u);

  // Sessionless requests spread: both backends saw traffic.
  const auto stats = router.pool().stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].forwards + stats[1].forwards, 0u);

  // The front answers the stats protocol with the router health table.
  const std::string table = client.stats();
  EXPECT_NE(table.find("router:"), std::string::npos);
  EXPECT_NE(table.find(a.endpoint().str()), std::string::npos);
}

TEST(RouterE2ETest, SessionsStickToOneBackend) {
  BackendNode a;
  BackendNode b;
  const RouterOptions options = fast_probe_options({&a, &b});
  RouterServer router(options);
  const std::string session = session_owned_by(options, 1);

  SocketClient client(router.endpoint());
  const auto images = random_images(20, 7);
  for (const auto& image : images) {
    const Response r = client.infer("lenet-mini", image, /*deadline_us=*/0,
                                    serve::Priority::kInteractive, session);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
  }

  const auto stats = router.pool().stats();
  EXPECT_EQ(stats[1].forwards, images.size());
  EXPECT_EQ(stats[0].forwards, 0u);
  EXPECT_EQ(router.router().rerouted(), 0u);
}

TEST(RouterE2ETest, ReroutesAroundADeadBackendWithZeroDrops) {
  BackendNode a;
  BackendNode b;
  RouterServer router(fast_probe_options({&a, &b}));
  SocketClient client(router.endpoint());

  const auto images = random_images(30, 55);
  // Warm both backends.
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(client.infer("lenet-mini", images[i]).status, Status::kOk);
  }

  // Kill backend b mid-fleet. Every subsequent request must still
  // resolve kOk — a dead candidate costs a reroute, never a drop.
  b.server->stop();
  for (size_t i = 6; i < images.size(); ++i) {
    const Response direct = a.core->infer("lenet-mini", images[i]);
    const Response routed = client.infer("lenet-mini", images[i]);
    ASSERT_EQ(routed.status, Status::kOk) << "request " << i << ": "
                                          << routed.error;
    EXPECT_EQ(routed.prediction, direct.prediction);
  }
  EXPECT_EQ(router.router().exhausted(), 0u);

  // The prober marks the dead backend down (wait for its verdict), and
  // the health table reflects the reroute.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.pool().up(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(router.pool().up(1)) << "prober never marked backend down";
  const auto stats = router.pool().stats();
  EXPECT_GT(stats[1].probes_failed, 0u);
  const std::string table = router.router().stats_report();
  EXPECT_NE(table.find(" NO "), std::string::npos)  // the up column
      << table;

  // Once marked down, fresh traffic skips the corpse entirely: no new
  // reroutes accumulate.
  const uint64_t rerouted_before = router.router().rerouted();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(client.infer("lenet-mini", images[i]).status, Status::kOk);
  }
  EXPECT_EQ(router.router().rerouted(), rerouted_before);
}

TEST(RouterE2ETest, HedgingCutsTailLatencyOfASlowBackend) {
  // Backend 0 is chaos-slowed: every batch sleeps 80ms before execution.
  serve::ChaosConfig chaos_cfg;
  chaos_cfg.backend_latency_rate = 1.0;
  chaos_cfg.backend_latency_us = 80'000;
  serve::ChaosInjector chaos(chaos_cfg);
  BatchOptions slow_opts = BackendNode::default_opts();
  slow_opts.chaos = &chaos;
  BackendNode slow(slow_opts);
  BackendNode fast;

  // Two routers over the same fleet: hedging on vs off.
  RouterOptions hedged_options = fast_probe_options({&slow, &fast});
  hedged_options.hedge_after_us = 5'000;
  RouterOptions unhedged_options = fast_probe_options({&slow, &fast});
  RouterServer hedged(hedged_options);
  RouterServer unhedged(unhedged_options);

  // Pin every request to the slow backend so the hedge (next ring
  // candidate = the fast one) is what saves the tail.
  const std::string session = session_owned_by(hedged_options, 0);
  const auto images = random_images(10, 2024);

  auto run = [&](RouterServer& router) {
    SocketClient client(router.endpoint());
    std::vector<int64_t> latencies_us;
    for (const auto& image : images) {
      const auto start = std::chrono::steady_clock::now();
      const Response r =
          client.infer("lenet-mini", image, /*deadline_us=*/0,
                       serve::Priority::kInteractive, session);
      EXPECT_EQ(r.status, Status::kOk) << r.error;
      latencies_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    return latencies_us;  // sorted; back() is the max ~ p99 at this n
  };

  const auto unhedged_lat = run(unhedged);
  const auto hedged_lat = run(hedged);

  // Without hedging every pinned request eats the injected 80ms.
  EXPECT_GE(unhedged_lat.front(), 80'000);
  // With hedging the duplicate on the fast backend wins the race; the
  // whole distribution lands far below the injected latency.
  EXPECT_LT(hedged_lat.back(), unhedged_lat.front());
  EXPECT_GT(hedged.router().hedged(), 0u);
  EXPECT_GT(hedged.router().hedge_wins(), 0u);
  EXPECT_EQ(unhedged.router().hedged(), 0u);
}

TEST(RouterE2ETest, CrossHopDeadlineIsDecrementedAndExhaustsStructurally) {
  // Every backend is chaos-slowed (80ms before every batch), so a 30ms
  // total budget can never be met: the first attempt times out at the
  // remaining-budget clamp, and a later attempt finds the budget spent —
  // the router answers kDeadlineExceeded itself instead of burning more
  // backend slots on an answer the client has given up on. Three lanes,
  // not two: an attempt's read can time out a poll-tick *under* the
  // clamp, leaving microseconds of budget at the next check; with a
  // third candidate the loop is guaranteed one more budget check after
  // that sliver is spent, so the deadline branch (never the exhausted
  // branch) always answers.
  serve::ChaosConfig chaos_cfg;
  chaos_cfg.backend_latency_rate = 1.0;
  chaos_cfg.backend_latency_us = 80'000;
  serve::ChaosInjector chaos(chaos_cfg);
  BatchOptions slow_opts = BackendNode::default_opts();
  slow_opts.chaos = &chaos;
  BackendNode a(slow_opts);
  BackendNode b(slow_opts);
  BackendNode c(slow_opts);
  RouterServer router(fast_probe_options({&a, &b, &c}));
  SocketClient client(router.endpoint());

  const auto images = random_images(3, 99);

  // A deadline-less request rides the slow fleet fine (80ms << the 3s
  // forward timeout), as does a generous budget — deadline propagation
  // must cost correct requests nothing.
  ASSERT_EQ(client.infer("lenet-mini", images[0]).status, Status::kOk);
  const Response roomy =
      client.infer("lenet-mini", images[1], /*deadline_us=*/2'000'000);
  ASSERT_EQ(roomy.status, Status::kOk) << roomy.error;

  // 30ms of budget against 80ms backends: structured exhaustion.
  const Response tight =
      client.infer("lenet-mini", images[2], /*deadline_us=*/30'000);
  EXPECT_EQ(tight.status, Status::kDeadlineExceeded) << tight.error;
  EXPECT_NE(tight.error.find("deadline exhausted"), std::string::npos)
      << tight.error;
  EXPECT_GE(router.router().deadline_exceeded(), 1u);
  EXPECT_EQ(router.router().exhausted(), 0u);
  // The health table surfaces the new counter.
  EXPECT_NE(router.router().stats_report().find("deadline"),
            std::string::npos);
}

TEST(RouterE2ETest, DryRetryBudgetShedsInsteadOfAmplifying) {
  BackendNode dead;
  BackendNode alive;
  RouterOptions options = fast_probe_options({&dead, &alive});
  // Keep the prober and breaker out of the picture so every pinned
  // request genuinely attempts the corpse: the retry budget is the only
  // mechanism under test.
  options.probe_interval_ms = 100'000;
  options.probe_down_after = 1000;
  options.breaker_threshold = 0;
  // One reroute of burst, a refill rate that adds nothing in-test.
  options.retry_tokens_per_sec = 0.001;
  options.retry_burst = 1.0;
  RouterServer router(options);
  const std::string doomed = session_owned_by(options, 0);
  const std::string safe = session_owned_by(options, 1);
  dead.server->stop();

  SocketClient client(router.endpoint());
  const auto images = random_images(4, 321);

  // Request 1 spends backend 0's only token on the reroute and succeeds.
  const Response first =
      client.infer("lenet-mini", images[0], /*deadline_us=*/0,
                   serve::Priority::kInteractive, doomed);
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  EXPECT_EQ(router.router().rerouted(), 1u);

  // Request 2 finds the bucket dry: shed with a retry-after hint, no
  // second reroute amplified onto the healthy neighbor.
  const Response second =
      client.infer("lenet-mini", images[1], /*deadline_us=*/0,
                   serve::Priority::kInteractive, doomed);
  EXPECT_EQ(second.status, Status::kShedded) << second.error;
  EXPECT_GT(second.retry_after_us, 0u);
  EXPECT_NE(second.error.find("retry budget exhausted"), std::string::npos)
      << second.error;
  EXPECT_EQ(router.router().rerouted(), 1u);
  EXPECT_EQ(router.router().budget_shed(), 1u);
  EXPECT_EQ(router.pool().stats()[0].retry_sheds, 1u);

  // Collateral check: traffic owned by the healthy backend is untouched
  // by its neighbor's dry budget.
  const Response other =
      client.infer("lenet-mini", images[2], /*deadline_us=*/0,
                   serve::Priority::kInteractive, safe);
  EXPECT_EQ(other.status, Status::kOk) << other.error;
  // And the shed shows up in the health table ("rshed" column).
  EXPECT_NE(router.router().stats_report().find("rshed"),
            std::string::npos);
}

}  // namespace
}  // namespace qsnc::router
