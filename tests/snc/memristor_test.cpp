#include "snc/memristor.h"

#include <gtest/gtest.h>

namespace qsnc::snc {
namespace {

TEST(MemristorConfigTest, DefaultMatchesPaper) {
  // Paper Sec 4.1: resistance range [50 kOhm, 1 MOhm].
  MemristorConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.r_on_ohm, 50e3);
  EXPECT_DOUBLE_EQ(cfg.r_off_ohm, 1e6);
  EXPECT_DOUBLE_EQ(g_min(cfg), 1e-6);
  EXPECT_DOUBLE_EQ(g_max(cfg), 2e-5);
}

TEST(MemristorTest, InvalidConfigThrows) {
  MemristorConfig cfg;
  cfg.r_on_ohm = 0;
  EXPECT_THROW(Memristor{cfg}, std::invalid_argument);
  cfg.r_on_ohm = 2e6;  // R_on > R_off
  EXPECT_THROW(Memristor{cfg}, std::invalid_argument);
}

TEST(LevelConductanceTest, LinearInterpolation) {
  MemristorConfig cfg;
  EXPECT_DOUBLE_EQ(level_conductance(0, 8, cfg), g_min(cfg));
  EXPECT_DOUBLE_EQ(level_conductance(8, 8, cfg), g_max(cfg));
  EXPECT_DOUBLE_EQ(level_conductance(4, 8, cfg),
                   (g_min(cfg) + g_max(cfg)) / 2.0);
}

TEST(LevelConductanceTest, BadLevelThrows) {
  MemristorConfig cfg;
  EXPECT_THROW(level_conductance(-1, 8, cfg), std::invalid_argument);
  EXPECT_THROW(level_conductance(9, 8, cfg), std::invalid_argument);
  EXPECT_THROW(level_conductance(1, 0, cfg), std::invalid_argument);
}

TEST(NearestLevelTest, RoundTripsAllLevels) {
  MemristorConfig cfg;
  for (int64_t max_level : {1, 4, 8, 16}) {
    for (int64_t k = 0; k <= max_level; ++k) {
      const double g = level_conductance(k, max_level, cfg);
      EXPECT_EQ(nearest_level(g, max_level, cfg), k);
    }
  }
}

TEST(NearestLevelTest, ClampsOutOfRangeConductance) {
  MemristorConfig cfg;
  EXPECT_EQ(nearest_level(0.0, 8, cfg), 0);
  EXPECT_EQ(nearest_level(1.0, 8, cfg), 8);
}

TEST(MemristorTest, ProgramsAndReads) {
  MemristorConfig cfg;
  Memristor m(cfg);
  EXPECT_DOUBLE_EQ(m.conductance(), g_min(cfg));  // powers up at off-state
  m.program(8, 8);
  EXPECT_DOUBLE_EQ(m.conductance(), g_max(cfg));
  EXPECT_DOUBLE_EQ(m.read_current(0.5), 0.5 * g_max(cfg));
}

TEST(MemristorTest, VariationStaysWithinPhysicalBounds) {
  MemristorConfig cfg;
  cfg.variation_sigma = 0.5;  // huge variation
  Memristor m(cfg);
  nn::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    m.program(4, 8, &rng);
    EXPECT_GE(m.conductance(), g_min(cfg));
    EXPECT_LE(m.conductance(), g_max(cfg));
  }
}

TEST(MemristorTest, VariationIsZeroMeanIsh) {
  MemristorConfig cfg;
  cfg.variation_sigma = 0.05;
  Memristor m(cfg);
  nn::Rng rng(2);
  const double ideal = level_conductance(4, 8, cfg);
  double acc = 0.0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    m.program(4, 8, &rng);
    acc += m.conductance();
  }
  EXPECT_NEAR(acc / kN, ideal, ideal * 0.02);
}

}  // namespace
}  // namespace qsnc::snc
