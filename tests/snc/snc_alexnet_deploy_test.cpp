// End-to-end SNC deployment of the AlexNet-mini topology: exercises the
// multi-stage conv + maxpool + 3-FC path on the crossbar simulator (LeNet
// covers the small case, ResNet the residual case; this covers the deep
// sequential case with repeated pooling).
#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

namespace qsnc::snc {
namespace {

TEST(SncAlexnetDeployTest, AgreementAndStats) {
  data::SyntheticCifarConfig dc;
  dc.num_samples = 250;
  auto train_set = data::make_synthetic_cifar(dc);
  data::SyntheticCifarConfig ec = dc;
  ec.num_samples = 30;
  ec.seed = 77;
  auto test_set = data::make_synthetic_cifar(ec);

  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lr = 1e-3f;
  tcfg.input_scale = 15.0f;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_alexnet_mini(rng);
  core::NeuronConvergenceRegularizer reg(4, 0.1f);
  core::train(net, *train_set, tcfg, &reg, 4, tcfg.epochs - 2);

  core::WeightClusterConfig wc;
  wc.bits = 4;
  const auto wcr = core::apply_weight_clustering(net, wc);
  ASSERT_EQ(wcr.size(), 8u);  // 5 conv + 3 fc synapse tensors

  SncConfig cfg;
  cfg.signal_bits = 4;
  cfg.weight_bits = 4;
  cfg.weight_scales.clear();
  for (const auto& r : wcr) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale = tcfg.input_scale;
  SncSystem sys(net, {3, 32, 32}, cfg);
  // 8 crossbar stages + 3 max pools.
  EXPECT_EQ(sys.stage_count(), 11u);

  core::IntegerSignalQuantizer q(4);
  net.set_signal_quantizer(&q);
  int agree = 0;
  SncStats stats;
  for (int64_t i = 0; i < test_set->size(); ++i) {
    const data::Sample s = test_set->get(i);
    const int64_t snc_pred = sys.infer(s.image, &stats);
    nn::Tensor batch = s.image.reshape({1, 3, 32, 32});
    batch *= tcfg.input_scale;
    for (int64_t j = 0; j < batch.numel(); ++j) {
      batch[j] = core::quantize_input_signal(batch[j], 4);
    }
    if (net.predict(batch)[0] == snc_pred) ++agree;
    EXPECT_EQ(stats.layers, 8);
    EXPECT_EQ(stats.window_slots, 15);
    EXPECT_GT(stats.total_spikes, 0);
  }
  net.set_signal_quantizer(nullptr);
  EXPECT_GE(agree, test_set->size() * 3 / 5);
}

}  // namespace
}  // namespace qsnc::snc
