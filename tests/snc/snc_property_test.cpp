// Property tests across the SNC substrate: mapper arithmetic, conductance
// mappings, and cost-model scaling laws.
#include <gtest/gtest.h>

#include "snc/cost_model.h"
#include "snc/mapper.h"
#include "snc/memristor.h"
#include "snc/spike.h"

namespace qsnc::snc {
namespace {

TEST(MapperProperty, TilingCoversLogicalMatrix) {
  // ceil arithmetic: tiles * t^2 >= rows * cols, and removing one tile row
  // or column would not cover.
  for (int64_t rows : {1, 31, 32, 33, 150, 300, 1024}) {
    for (int64_t cols : {1, 10, 32, 64, 100}) {
      for (int64_t t : {8, 32, 128}) {
        const int64_t tiles = crossbars_for(rows, cols, t);
        const int64_t row_tiles = (rows + t - 1) / t;
        const int64_t col_tiles = (cols + t - 1) / t;
        EXPECT_EQ(tiles, row_tiles * col_tiles);
        EXPECT_GE(row_tiles * t, rows);
        EXPECT_GE(col_tiles * t, cols);
        EXPECT_LT((row_tiles - 1) * t, rows);
        EXPECT_LT((col_tiles - 1) * t, cols);
      }
    }
  }
}

TEST(MapperProperty, TilesMonotoneInMatrixSize) {
  for (int64_t rows = 1; rows < 100; rows += 7) {
    EXPECT_LE(crossbars_for(rows, 16, 32), crossbars_for(rows + 32, 16, 32));
    EXPECT_LE(crossbars_for(16, rows, 32), crossbars_for(16, rows + 32, 32));
  }
}

TEST(ConductanceProperty, LevelMappingIsMonotone) {
  MemristorConfig cfg;
  for (int64_t max_level : {1, 7, 8, 15, 63}) {
    double prev = -1.0;
    for (int64_t k = 0; k <= max_level; ++k) {
      const double g = level_conductance(k, max_level, cfg);
      EXPECT_GT(g, prev);
      prev = g;
    }
  }
}

TEST(ConductanceProperty, RoundTripForAnyRange) {
  for (double r_on : {25e3, 50e3, 100e3}) {
    MemristorConfig cfg;
    cfg.r_on_ohm = r_on;
    for (int64_t k = 0; k <= 15; ++k) {
      EXPECT_EQ(nearest_level(level_conductance(k, 15, cfg), 15, cfg), k);
    }
  }
}

TEST(CostProperty, EnergyAdditiveOverLayers) {
  // A mapping with one layer duplicated costs exactly one layer more.
  LayerMapping layer;
  layer.desc.kind = LayerKind::kConv;
  layer.desc.out_h = layer.desc.out_w = 4;
  layer.rows = 64;
  layer.cols = 16;
  layer.crossbars = crossbars_for(64, 16, 32);

  ModelMapping one;
  one.layers = {layer};
  ModelMapping two;
  two.layers = {layer, layer};

  const SystemCost c1 = evaluate_cost(one, 4, 4);
  const SystemCost c2 = evaluate_cost(two, 4, 4);
  EXPECT_NEAR(c2.energy_uj, 2.0 * c1.energy_uj, 1e-9);
  EXPECT_NEAR(c2.area_mm2, 2.0 * c1.area_mm2, 1e-9);
  // Speed halves at fixed bits: twice the pipeline stages.
  EXPECT_NEAR(c2.speed_mhz, c1.speed_mhz / 2.0, 1e-9);
}

TEST(CostProperty, SpeedDependsOnlyOnLayersAndBits) {
  // The paper's speed model is window x pipeline depth; layer widths only
  // affect energy/area.
  LayerMapping narrow;
  narrow.desc.out_h = narrow.desc.out_w = 1;
  narrow.rows = 8;
  narrow.cols = 8;
  narrow.crossbars = 1;
  LayerMapping wide = narrow;
  wide.rows = 512;
  wide.cols = 256;
  wide.crossbars = crossbars_for(512, 256, 32);

  ModelMapping a, b;
  a.layers = {narrow, narrow};
  b.layers = {wide, wide};
  EXPECT_DOUBLE_EQ(evaluate_cost(a, 4, 4).speed_mhz,
                   evaluate_cost(b, 4, 4).speed_mhz);
  EXPECT_LT(evaluate_cost(a, 4, 4).energy_uj,
            evaluate_cost(b, 4, 4).energy_uj);
}

TEST(SpikeProperty, WindowDoublesPlusOnePerBit) {
  for (int bits = 1; bits < 12; ++bits) {
    EXPECT_EQ(window_slots(bits + 1), 2 * window_slots(bits) + 1);
  }
}

TEST(SpikeProperty, EncodeIsDeterministic) {
  for (int64_t v = 0; v <= 15; ++v) {
    EXPECT_EQ(rate_encode(v, 4), rate_encode(v, 4));
  }
}

TEST(SpikeProperty, HigherValuesAreSupersetsInCount) {
  // Monotone coding: more value, never fewer spikes in any prefix window.
  for (int64_t v = 0; v < 15; ++v) {
    const auto a = rate_encode(v, 4);
    const auto b = rate_encode(v + 1, 4);
    int64_t ca = 0, cb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      ca += a[i];
      cb += b[i];
      EXPECT_GE(cb, ca) << "prefix " << i << " value " << v;
    }
  }
}

}  // namespace
}  // namespace qsnc::snc
