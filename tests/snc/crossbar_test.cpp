#include "snc/crossbar.h"

#include <gtest/gtest.h>

namespace qsnc::snc {
namespace {

TEST(CrossbarTest, PowersUpAtMinimumConductance) {
  MemristorConfig cfg;
  Crossbar xb(4, 4, cfg);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(xb.conductance(r, c), g_min(cfg));
    }
  }
}

TEST(CrossbarTest, BadGeometryThrows) {
  MemristorConfig cfg;
  EXPECT_THROW(Crossbar(0, 4, cfg), std::invalid_argument);
  EXPECT_THROW(Crossbar(4, -1, cfg), std::invalid_argument);
}

TEST(CrossbarTest, OutOfRangeCellThrows) {
  MemristorConfig cfg;
  Crossbar xb(2, 2, cfg);
  EXPECT_THROW(xb.program_cell(2, 0, 1, 8), std::out_of_range);
  EXPECT_THROW(xb.conductance(0, 5), std::out_of_range);
}

TEST(CrossbarTest, ColumnCurrentIsDotProduct) {
  MemristorConfig cfg;
  Crossbar xb(3, 2, cfg);
  xb.program_cell(0, 0, 8, 8);  // g_max
  xb.program_cell(1, 0, 4, 8);  // midpoint
  xb.program_cell(2, 1, 8, 8);
  const std::vector<double> volts{1.0, 2.0, 0.5};
  const std::vector<double> currents = xb.read_columns(volts);
  const double g_mid = (g_min(cfg) + g_max(cfg)) / 2.0;
  EXPECT_NEAR(currents[0],
              1.0 * g_max(cfg) + 2.0 * g_mid + 0.5 * g_min(cfg), 1e-12);
  EXPECT_NEAR(currents[1],
              1.0 * g_min(cfg) + 2.0 * g_min(cfg) + 0.5 * g_max(cfg), 1e-12);
}

TEST(CrossbarTest, SpikingReadDrivesOnlyFiringRows) {
  MemristorConfig cfg;
  Crossbar xb(3, 1, cfg);
  xb.program_cell(0, 0, 8, 8);
  xb.program_cell(1, 0, 8, 8);
  xb.program_cell(2, 0, 8, 8);
  const std::vector<uint8_t> spikes{1, 0, 1};
  const std::vector<double> currents = xb.read_columns_spiking(spikes, 1.0);
  EXPECT_NEAR(currents[0], 2.0 * g_max(cfg), 1e-12);
}

TEST(CrossbarTest, WrongInputSizeThrows) {
  MemristorConfig cfg;
  Crossbar xb(3, 1, cfg);
  EXPECT_THROW(xb.read_columns({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(xb.read_columns_spiking({1, 1}, 1.0), std::invalid_argument);
}

TEST(DifferentialCrossbarTest, SignedLevelsRoundTrip) {
  MemristorConfig cfg;
  DifferentialCrossbar xb(4, 4, cfg);
  for (int64_t k = -8; k <= 8; ++k) {
    xb.program_cell(0, 0, k, 8);
    EXPECT_EQ(xb.read_level(0, 0, 8), k) << "level " << k;
  }
}

TEST(DifferentialCrossbarTest, DifferentialCurrentCancelsLeak) {
  // A zero weight (both cells at g_min) contributes zero differential
  // current even though each array leaks.
  MemristorConfig cfg;
  DifferentialCrossbar xb(2, 1, cfg);
  xb.program_cell(0, 0, 0, 8);
  xb.program_cell(1, 0, 0, 8);
  const std::vector<uint8_t> spikes{1, 1};
  const std::vector<double> diff = xb.read_columns_spiking(spikes, 1.0);
  EXPECT_NEAR(diff[0], 0.0, 1e-15);
}

TEST(DifferentialCrossbarTest, SignedWeightedSum) {
  MemristorConfig cfg;
  DifferentialCrossbar xb(2, 1, cfg);
  xb.program_cell(0, 0, 3, 8);
  xb.program_cell(1, 0, -5, 8);
  const std::vector<uint8_t> spikes{1, 1};
  const std::vector<double> diff = xb.read_columns_spiking(spikes, 1.0);
  const double dg = (g_max(cfg) - g_min(cfg)) / 8.0;
  EXPECT_NEAR(diff[0], (3.0 - 5.0) * dg, 1e-15);
}

TEST(DefectTest, ZeroRatesLeaveProgrammingExact) {
  MemristorConfig cfg;
  Crossbar xb(4, 4, cfg);
  nn::Rng rng(1);
  xb.program_cell(0, 0, 5, 8, &rng);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), level_conductance(5, 8, cfg));
}

TEST(DefectTest, StuckOffForcesMinConductance) {
  MemristorConfig cfg;
  cfg.stuck_off_rate = 1.0;  // every cell defective
  Crossbar xb(2, 2, cfg);
  nn::Rng rng(2);
  xb.program_cell(0, 0, 8, 8, &rng);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), g_min(cfg));
}

TEST(DefectTest, StuckOnForcesMaxConductance) {
  MemristorConfig cfg;
  cfg.stuck_on_rate = 1.0;
  Crossbar xb(2, 2, cfg);
  nn::Rng rng(3);
  xb.program_cell(0, 0, 0, 8, &rng);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), g_max(cfg));
}

TEST(DefectTest, NoRngMeansIdealProgramming) {
  // Defects only strike when a generator is supplied (deterministic
  // programming path stays ideal).
  MemristorConfig cfg;
  cfg.stuck_off_rate = 1.0;
  Crossbar xb(2, 2, cfg);
  xb.program_cell(0, 0, 8, 8, nullptr);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), g_max(cfg));
}

TEST(DefectTest, RateIsApproximatelyRespected) {
  MemristorConfig cfg;
  cfg.stuck_off_rate = 0.25;
  Crossbar xb(32, 32, cfg);
  nn::Rng rng(4);
  int64_t stuck = 0;
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 32; ++c) {
      xb.program_cell(r, c, 8, 8, &rng);
      if (xb.conductance(r, c) == g_min(cfg)) ++stuck;
    }
  }
  EXPECT_NEAR(static_cast<double>(stuck) / 1024.0, 0.25, 0.06);
}

TEST(IrDropTest, ZeroWireResistanceIsIdeal) {
  MemristorConfig cfg;
  Crossbar xb(4, 4, cfg);
  xb.program_cell(3, 3, 8, 8);
  EXPECT_DOUBLE_EQ(xb.effective_conductance(3, 3), xb.conductance(3, 3));
}

TEST(IrDropTest, AttenuatesCurrents) {
  MemristorConfig ideal;
  MemristorConfig lossy = ideal;
  lossy.wire_resistance_ohm = 2000.0;
  Crossbar a(4, 4, ideal), b(4, 4, lossy);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      a.program_cell(r, c, 8, 8);
      b.program_cell(r, c, 8, 8);
    }
  }
  const std::vector<double> volts(4, 1.0);
  const auto ia = a.read_columns(volts);
  const auto ib = b.read_columns(volts);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_LT(ib[c], ia[c]);
    EXPECT_GT(ib[c], 0.0);
  }
}

TEST(IrDropTest, FarCellsSufferMore) {
  MemristorConfig cfg;
  cfg.wire_resistance_ohm = 2000.0;
  Crossbar xb(8, 8, cfg);
  xb.program_cell(0, 0, 8, 8);
  xb.program_cell(7, 7, 8, 8);
  EXPECT_GT(xb.effective_conductance(0, 0), xb.effective_conductance(7, 7));
}

TEST(IrDropTest, LargerArraysLoseMoreRelativeCurrent) {
  // The justification for tiling at t=32 (Eq 1): relative IR loss grows
  // with array extent.
  MemristorConfig cfg;
  cfg.wire_resistance_ohm = 1000.0;
  auto relative_loss = [&cfg](int64_t t) {
    Crossbar xb(t, t, cfg);
    for (int64_t r = 0; r < t; ++r) xb.program_cell(r, t - 1, 8, 8);
    const std::vector<double> volts(static_cast<size_t>(t), 1.0);
    const double got = xb.read_columns(volts)[static_cast<size_t>(t - 1)];
    const double ideal = static_cast<double>(t) * g_max(cfg);
    return 1.0 - got / ideal;
  };
  EXPECT_LT(relative_loss(8), relative_loss(32));
  EXPECT_LT(relative_loss(32), relative_loss(128));
}

}  // namespace
}  // namespace qsnc::snc
