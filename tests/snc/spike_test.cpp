#include "snc/spike.h"

#include <gtest/gtest.h>

namespace qsnc::snc {
namespace {

TEST(WindowSlotsTest, PowersOfTwoMinusOne) {
  EXPECT_EQ(window_slots(3), 7);
  EXPECT_EQ(window_slots(4), 15);
  EXPECT_EQ(window_slots(8), 255);
}

class RateCodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RateCodeRoundTrip, EveryValueRoundTrips) {
  const int bits = GetParam();
  for (int64_t v = 0; v <= window_slots(bits); ++v) {
    const std::vector<uint8_t> train = rate_encode(v, bits);
    EXPECT_EQ(static_cast<int64_t>(train.size()), window_slots(bits));
    EXPECT_EQ(rate_decode(train), v) << "bits " << bits << " value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, RateCodeRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(RateEncodeTest, ClampsOutOfRange) {
  EXPECT_EQ(rate_decode(rate_encode(99, 3)), 7);
  EXPECT_EQ(rate_decode(rate_encode(-5, 3)), 0);
}

TEST(RateEncodeTest, SpikesAreEvenlySpread) {
  // With n = T/2 the gaps between spikes never exceed 3 slots.
  const std::vector<uint8_t> train = rate_encode(7, 4);  // 7 of 15
  int gap = 0, max_gap = 0;
  for (uint8_t s : train) {
    if (s) {
      max_gap = std::max(max_gap, gap);
      gap = 0;
    } else {
      ++gap;
    }
  }
  EXPECT_LE(max_gap, 2);
}

TEST(RateEncodeStochasticTest, MeanApproachesValue) {
  nn::Rng rng(1);
  double acc = 0.0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    acc += static_cast<double>(rate_decode(rate_encode_stochastic(10, 4, rng)));
  }
  EXPECT_NEAR(acc / kN, 10.0, 0.3);
}

TEST(IntegrateFireTest, FiresOnThresholdCross) {
  IntegrateFire ifc(1.0);
  EXPECT_EQ(ifc.integrate(0.4), 0);
  EXPECT_EQ(ifc.integrate(0.4), 0);
  EXPECT_EQ(ifc.integrate(0.4), 1);  // 1.2 crosses once
  EXPECT_NEAR(ifc.membrane(), 0.2, 1e-12);
}

TEST(IntegrateFireTest, LargeChargeFiresMultiple) {
  IntegrateFire ifc(1.0);
  EXPECT_EQ(ifc.integrate(3.7), 3);
  EXPECT_NEAR(ifc.membrane(), 0.7, 1e-12);
}

TEST(IntegrateFireTest, NegativeChargeNeverFires) {
  IntegrateFire ifc(1.0);
  EXPECT_EQ(ifc.integrate(-5.0), 0);
  EXPECT_EQ(ifc.integrate(4.0), 0);  // membrane still below threshold
  EXPECT_EQ(ifc.integrate(2.5), 1);
}

TEST(IntegrateFireTest, ResetClearsMembrane) {
  IntegrateFire ifc(1.0);
  ifc.integrate(0.9);
  ifc.reset();
  EXPECT_EQ(ifc.membrane(), 0.0);
}

TEST(IntegrateFireTest, NonPositiveThresholdThrows) {
  EXPECT_THROW(IntegrateFire(0.0), std::invalid_argument);
  EXPECT_THROW(IntegrateFire(-1.0), std::invalid_argument);
}

TEST(SpikeCounterTest, CountsAndSaturates) {
  SpikeCounter counter(3);  // ceiling 7
  counter.count(3);
  EXPECT_EQ(counter.value(), 3);
  counter.count(10);
  EXPECT_EQ(counter.value(), 7);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(SpikeCounterTest, BadBitsThrow) {
  EXPECT_THROW(SpikeCounter(0), std::invalid_argument);
  EXPECT_THROW(SpikeCounter(31), std::invalid_argument);
}

TEST(IfcChainTest, DeterministicTrainThroughIfcReproducesProduct) {
  // A single synapse of weight 1 (threshold 1): n input spikes, each of
  // charge 1, produce exactly n output spikes.
  for (int64_t n = 0; n <= 15; ++n) {
    const std::vector<uint8_t> train = rate_encode(n, 4);
    IntegrateFire ifc(1.0);
    SpikeCounter counter(4);
    for (uint8_t s : train) {
      counter.count(ifc.integrate(s ? 1.0 : 0.0));
    }
    EXPECT_EQ(counter.value(), n);
  }
}

}  // namespace
}  // namespace qsnc::snc
