#include "snc/cost_model.h"

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "nn/rng.h"

namespace qsnc::snc {
namespace {

ModelMapping lenet_mapping() {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  return map_network(net, "Lenet", {1, 28, 28}, 32);
}

TEST(WeightSlicesTest, CeilDivision) {
  EXPECT_EQ(weight_slices(8, 4), 2);  // 8-bit weights on 4-bit devices
  EXPECT_EQ(weight_slices(4, 4), 1);
  EXPECT_EQ(weight_slices(3, 4), 1);
  EXPECT_EQ(weight_slices(6, 4), 2);
  EXPECT_THROW(weight_slices(0, 4), std::invalid_argument);
}

TEST(CostModelTest, LenetBaselineMatchesTable5Calibration) {
  // The constants are calibrated on this row (Table 5: 0.64 MHz, 4.7 uJ,
  // 1.48 mm^2); the test pins the calibration.
  const SystemCost c = evaluate_cost(lenet_mapping(), 8, 8);
  EXPECT_NEAR(c.speed_mhz, 0.64, 0.02);
  EXPECT_NEAR(c.energy_uj, 4.7, 0.15);
  EXPECT_NEAR(c.area_mm2, 1.48, 0.05);
  EXPECT_EQ(c.layers, 4);
  EXPECT_EQ(c.window_slots, 255);
  EXPECT_EQ(c.crossbars, 17 * 2);  // bit-sliced 8-bit weights
}

TEST(CostModelTest, Lenet4BitReproducesTable5Shape) {
  const ModelMapping m = lenet_mapping();
  const SystemCost base = evaluate_cost(m, 8, 8);
  const SystemCost prop = evaluate_cost(m, 4, 4);
  const CostComparison cmp = compare_cost(base, prop);
  // Paper row: 13.9x speedup, 87.9% energy saving, 29.7% area saving.
  EXPECT_NEAR(cmp.speedup, 13.9, 1.0);
  EXPECT_GT(cmp.energy_saving_pct, 85.0);
  EXPECT_LT(cmp.energy_saving_pct, 97.0);
  EXPECT_NEAR(cmp.area_saving_pct, 30.0, 5.0);
}

TEST(CostModelTest, Lenet3BitSavesMore) {
  const ModelMapping m = lenet_mapping();
  const SystemCost base = evaluate_cost(m, 8, 8);
  const SystemCost p4 = evaluate_cost(m, 4, 4);
  const SystemCost p3 = evaluate_cost(m, 3, 3);
  // Monotonic orderings of Table 5.
  EXPECT_GT(p3.speed_mhz, p4.speed_mhz);
  EXPECT_LT(p3.energy_uj, p4.energy_uj);
  EXPECT_LT(p3.area_mm2, p4.area_mm2);
  const CostComparison cmp3 = compare_cost(base, p3);
  EXPECT_NEAR(cmp3.speedup, 24.4, 2.0);
  EXPECT_NEAR(cmp3.area_saving_pct, 37.2, 5.0);
}

TEST(CostModelTest, SpeedScalesInverselyWithLayers) {
  // More pipeline stages -> slower inference at equal bit width.
  nn::Rng rng(1);
  nn::Network alex = models::make_alexnet(rng);
  const ModelMapping ma = map_network(alex, "Alexnet", {3, 32, 32}, 32);
  const SystemCost lenet = evaluate_cost(lenet_mapping(), 4, 4);
  const SystemCost alexc = evaluate_cost(ma, 4, 4);
  EXPECT_GT(lenet.speed_mhz, alexc.speed_mhz);
}

TEST(CostModelTest, EnergyGrowsWithModelSize) {
  nn::Rng rng(1);
  nn::Network alex = models::make_alexnet(rng);
  const ModelMapping ma = map_network(alex, "Alexnet", {3, 32, 32}, 32);
  EXPECT_GT(evaluate_cost(ma, 4, 4).energy_uj,
            evaluate_cost(lenet_mapping(), 4, 4).energy_uj);
  EXPECT_GT(evaluate_cost(ma, 4, 4).area_mm2,
            evaluate_cost(lenet_mapping(), 4, 4).area_mm2);
}

TEST(CostModelTest, EmptyMappingThrows) {
  ModelMapping empty;
  EXPECT_THROW(evaluate_cost(empty, 4, 4), std::invalid_argument);
}

TEST(CostModelTest, RefreshDutyShrinksWithLongerInterval) {
  const ModelMapping m = lenet_mapping();
  const RefreshOverhead frequent = evaluate_refresh(m, 4, 4, 1e6);
  const RefreshOverhead rare = evaluate_refresh(m, 4, 4, 1e9);
  EXPECT_GT(frequent.duty, rare.duty);
  EXPECT_LT(frequent.effective_speed_mhz, rare.effective_speed_mhz);
  // Duty is a proper fraction and effective speed never exceeds raw speed.
  const SystemCost raw = evaluate_cost(m, 4, 4);
  EXPECT_GT(rare.duty, 0.0);
  EXPECT_LT(frequent.duty, 1.0);
  EXPECT_LE(rare.effective_speed_mhz, raw.speed_mhz);
  // Consistency: effective = raw * (1 - duty).
  EXPECT_NEAR(rare.effective_speed_mhz, raw.speed_mhz * (1.0 - rare.duty),
              1e-9);
}

TEST(CostModelTest, RefreshTimeMatchesProgrammingModel) {
  const ModelMapping m = lenet_mapping();
  const RefreshOverhead o = evaluate_refresh(m, 4, 4, 1e6);
  EXPECT_DOUBLE_EQ(o.refresh_time_ms, evaluate_programming(m, 4).time_ms);
  EXPECT_THROW(evaluate_refresh(m, 4, 4, 0.0), std::invalid_argument);
}

class CostMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotonicity, FewerSignalBitsNeverSlower) {
  const int bits = GetParam();
  const ModelMapping m = lenet_mapping();
  const SystemCost lo = evaluate_cost(m, bits, 4);
  const SystemCost hi = evaluate_cost(m, bits + 1, 4);
  EXPECT_GT(lo.speed_mhz, hi.speed_mhz);
  EXPECT_LT(lo.energy_uj, hi.energy_uj);
  EXPECT_LT(lo.area_mm2, hi.area_mm2);
}

INSTANTIATE_TEST_SUITE_P(Bits, CostMonotonicity,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace qsnc::snc
