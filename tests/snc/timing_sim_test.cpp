#include "snc/timing_sim.h"

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "snc/cost_model.h"
#include "snc/mapper.h"
#include "snc/spike.h"

namespace qsnc::snc {
namespace {

TEST(TimingSimTest, SequentialWaveMatchesClosedForm) {
  // period = T*L*t_prop + L*t_setup.
  TimingConfig cfg;
  for (int64_t layers : {1, 4, 8, 18}) {
    for (int64_t slots : {1, 7, 15, 255}) {
      const TimingResult r = simulate_window(layers, slots, cfg);
      const double expected = static_cast<double>(slots * layers) *
                                  cfg.t_prop_ns +
                              static_cast<double>(layers) * cfg.t_setup_ns;
      EXPECT_NEAR(r.period_ns, expected, 1e-6)
          << "L=" << layers << " T=" << slots;
    }
  }
}

TEST(TimingSimTest, AgreesWithAnalyticCostModel) {
  // The DES and evaluate_cost must produce the same speed for every model
  // in the zoo — the cross-validation this module exists for.
  nn::Rng rng(1);
  nn::Network lenet = models::make_lenet(rng);
  const ModelMapping m = map_network(lenet, "Lenet", {1, 28, 28}, 32);
  const CostParams params;
  for (int bits : {3, 4, 8}) {
    const SystemCost analytic = evaluate_cost(m, bits, 4, params);
    TimingConfig cfg;
    cfg.t_prop_ns = params.t_prop_ns;
    cfg.t_setup_ns = params.t_setup_ns;
    const TimingResult sim =
        simulate_window(m.layer_count(), window_slots(bits), cfg);
    EXPECT_NEAR(sim.speed_mhz, analytic.speed_mhz,
                analytic.speed_mhz * 1e-6)
        << "bits " << bits;
  }
}

TEST(TimingSimTest, PipelinedMatchesClosedForm) {
  // period ~ (T + L - 1)*t_prop + L*t_setup.
  TimingConfig cfg;
  cfg.discipline = PipelineDiscipline::kSlotPipelined;
  for (int64_t layers : {1, 4, 18}) {
    for (int64_t slots : {1, 15, 255}) {
      const TimingResult r = simulate_window(layers, slots, cfg);
      const double expected =
          static_cast<double>(slots + layers - 1) * cfg.t_prop_ns +
          static_cast<double>(layers) * cfg.t_setup_ns;
      EXPECT_NEAR(r.period_ns, expected, 1e-6)
          << "L=" << layers << " T=" << slots;
    }
  }
}

TEST(TimingSimTest, PipeliningHelpsLongWindows) {
  TimingConfig seq;
  TimingConfig pipe;
  pipe.discipline = PipelineDiscipline::kSlotPipelined;
  const TimingResult s = simulate_window(8, 255, seq);
  const TimingResult p = simulate_window(8, 255, pipe);
  // ~L-fold speedup for T >> L.
  EXPECT_GT(p.speed_mhz / s.speed_mhz, 6.0);
}

TEST(TimingSimTest, EventCountIsSlotsTimesStages) {
  const TimingResult r = simulate_window(5, 7, {});
  EXPECT_EQ(r.events, 35);
}

TEST(TimingSimTest, UtilizationHigherWhenPipelined) {
  TimingConfig seq;
  TimingConfig pipe;
  pipe.discipline = PipelineDiscipline::kSlotPipelined;
  EXPECT_GT(simulate_window(8, 63, pipe).utilization,
            simulate_window(8, 63, seq).utilization * 4.0);
}

TEST(TimingSimTest, BusyTimeIsExactPerStage) {
  const TimingConfig cfg;
  const TimingResult r = simulate_window(3, 15, cfg);
  ASSERT_EQ(r.stage_busy_ns.size(), 3u);
  for (double b : r.stage_busy_ns) {
    EXPECT_NEAR(b, 15 * cfg.t_prop_ns, 1e-9);
  }
}

TEST(TimingSimTest, InvalidArgsThrow) {
  EXPECT_THROW(simulate_window(0, 15, {}), std::invalid_argument);
  EXPECT_THROW(simulate_window(4, 0, {}), std::invalid_argument);
}

TEST(TimingSimTest, ActiveSlotsDefaultIsDense) {
  const TimingResult dense = simulate_window(5, 15, {});
  const TimingResult all_active = simulate_window(5, 15, {}, 15);
  EXPECT_EQ(dense.events, all_active.events);
  EXPECT_DOUBLE_EQ(dense.period_ns, all_active.period_ns);
}

TEST(TimingSimTest, ActiveSlotsShrinkTheWindow) {
  // An event-driven sequencer issuing only 5 of 15 slots behaves exactly
  // like a dense 5-slot window: skipped slots cost nothing.
  const TimingResult sparse = simulate_window(5, 15, {}, 5);
  const TimingResult small = simulate_window(5, 5, {});
  EXPECT_EQ(sparse.events, small.events);
  EXPECT_DOUBLE_EQ(sparse.period_ns, small.period_ns);
  EXPECT_LT(sparse.period_ns, simulate_window(5, 15, {}).period_ns);
}

TEST(TimingSimTest, ActiveSlotsClampToWindow) {
  const TimingResult dense = simulate_window(3, 7, {});
  const TimingResult over = simulate_window(3, 7, {}, 100);
  EXPECT_DOUBLE_EQ(dense.period_ns, over.period_ns);
}

TEST(TimingSimTest, AllQuietWindowIsPureSetup) {
  const TimingConfig cfg;
  const TimingResult r = simulate_window(4, 15, cfg, 0);
  EXPECT_EQ(r.events, 0);
  EXPECT_DOUBLE_EQ(r.period_ns, 4 * cfg.t_setup_ns);
  EXPECT_GT(r.speed_mhz, 0.0);
}

TEST(TimingSimTest, RefreshPauseStretchesPeriod) {
  const TimingResult base = simulate_window(5, 15, {});
  // 1000 ns pause every 100 windows -> +10 ns amortized per window.
  const TimingResult r =
      simulate_window_with_refresh(5, 15, {}, -1, 100.0, 1000.0);
  EXPECT_DOUBLE_EQ(r.period_ns, base.period_ns + 10.0);
  EXPECT_LT(r.speed_mhz, base.speed_mhz);
  EXPECT_LT(r.utilization, base.utilization);
  EXPECT_EQ(r.events, base.events);
  // Busy-time accounting is untouched by the pause.
  EXPECT_EQ(r.stage_busy_ns, base.stage_busy_ns);
}

TEST(TimingSimTest, NoRefreshDegeneratesToPlainWindow) {
  const TimingResult base = simulate_window(4, 7, {});
  const TimingResult no_pause =
      simulate_window_with_refresh(4, 7, {}, -1, 100.0, 0.0);
  const TimingResult no_interval =
      simulate_window_with_refresh(4, 7, {}, -1, 0.0, 500.0);
  EXPECT_DOUBLE_EQ(no_pause.period_ns, base.period_ns);
  EXPECT_DOUBLE_EQ(no_interval.period_ns, base.period_ns);
  EXPECT_DOUBLE_EQ(no_pause.utilization, base.utilization);
}

TEST(TimingSimTest, BatchHonorsActiveSlots) {
  std::vector<WindowSpec> specs(3);
  specs[0] = {5, 15, -1, {}};
  specs[1] = {5, 15, 5, {}};
  specs[2] = {5, 15, 0, {}};
  const std::vector<TimingResult> results = simulate_windows(specs);
  EXPECT_DOUBLE_EQ(results[0].period_ns, simulate_window(5, 15, {}).period_ns);
  EXPECT_DOUBLE_EQ(results[1].period_ns,
                   simulate_window(5, 15, {}, 5).period_ns);
  EXPECT_DOUBLE_EQ(results[2].period_ns,
                   simulate_window(5, 15, {}, 0).period_ns);
}

}  // namespace
}  // namespace qsnc::snc
