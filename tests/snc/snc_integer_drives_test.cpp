// SncConfig::integer_row_drives equivalence.
//
// With an ideal device model the integer row-drive path accumulates spike
// counts against the signed int16 level panel (nn::iaccumulate_rows)
// instead of the double conductance panel. The integer column sum is
// exact, so the only admissible deviation from the analog path is the
// final y = step * sum + bias double rounding — predictions and activity
// statistics must match exactly and logits to double-epsilon scale.
// When the device is non-ideal or drift recovery is on, the flag must be
// ignored and the system stay byte-identical to a flag-off system.
//
// Deterministic inference runs positions through the thread pool, so this
// test carries the `tsan` label (registered via qsnc_tsan_test).
#include "snc/snc_system.h"

#include <cmath>
#include <string>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "gtest/gtest.h"
#include "models/model_zoo.h"
#include "nn/rng.h"
#include "util/thread_pool.h"

namespace qsnc {
namespace {

snc::SncConfig deploy_config(nn::Network& net, int bits) {
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto results = core::apply_weight_clustering(net, wc);
  snc::SncConfig cfg;
  cfg.signal_bits = bits;
  cfg.weight_bits = bits;
  cfg.weight_scales.clear();
  for (const auto& r : results) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(bits)));
  return cfg;
}

nn::Tensor random_image(const nn::Shape& chw, uint64_t seed) {
  nn::Tensor image(chw);
  nn::Rng rng(seed);
  for (int64_t i = 0; i < image.numel(); ++i) {
    image[i] = rng.uniform(0.0f, 1.0f);
  }
  return image;
}

struct SystemPair {
  snc::SncSystem integer;
  snc::SncSystem analog;
};

void expect_stats_equal(const snc::SncStats& a, const snc::SncStats& b,
                        const std::string& ctx) {
  EXPECT_EQ(a.total_spikes, b.total_spikes) << ctx;
  EXPECT_EQ(a.layers, b.layers) << ctx;
  ASSERT_EQ(a.stage.size(), b.stage.size()) << ctx;
  for (size_t s = 0; s < a.stage.size(); ++s) {
    const std::string stage_ctx = ctx + " stage " + std::to_string(s);
    EXPECT_EQ(a.stage[s].input_events, b.stage[s].input_events) << stage_ctx;
    EXPECT_EQ(a.stage[s].spikes, b.stage[s].spikes) << stage_ctx;
  }
}

// Integer-drive system vs analog system over `images`: equal predictions
// and stats, logits within double-rounding distance.
void check_integer_drive_equivalence(snc::SncSystem& integer_system,
                                     snc::SncSystem& analog_system,
                                     const std::vector<nn::Tensor>& images,
                                     const std::string& base_ctx) {
  for (size_t i = 0; i < images.size(); ++i) {
    const std::string ctx = base_ctx + " image " + std::to_string(i);
    snc::SncStats int_stats;
    snc::SncStats analog_stats;
    const int64_t int_pred = integer_system.infer(images[i], &int_stats);
    const int64_t analog_pred = analog_system.infer(images[i], &analog_stats);
    EXPECT_EQ(int_pred, analog_pred) << ctx;
    expect_stats_equal(int_stats, analog_stats, ctx);
    ASSERT_EQ(integer_system.last_logits().size(),
              analog_system.last_logits().size())
        << ctx;
    for (size_t j = 0; j < integer_system.last_logits().size(); ++j) {
      const double ref = analog_system.last_logits()[j];
      EXPECT_NEAR(integer_system.last_logits()[j], ref,
                  std::max(1e-9, 1e-9 * std::abs(ref)))
          << ctx << " logit " << j;
    }
  }
}

TEST(SncIntegerDrivesTest, IdealDeviceMatchesAnalogPath) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = models::make_lenet_mini(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.integer_row_drives = true;
  snc::SncSystem integer_system(net_a, {1, 28, 28}, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = models::make_lenet_mini(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  snc::SncSystem analog_system(net_b, {1, 28, 28}, cfg_b);

  // The flag plus the ideal device must actually arm the integer panels —
  // otherwise this test compares the analog path against itself.
  EXPECT_GT(integer_system.integer_drive_stage_count(), 0u);
  EXPECT_EQ(analog_system.integer_drive_stage_count(), 0u);

  std::vector<nn::Tensor> images{random_image({1, 28, 28}, 61),
                                 random_image({1, 28, 28}, 62),
                                 nn::Tensor({1, 28, 28}),          // all-zero
                                 nn::Tensor({1, 28, 28}, 1.0f)};   // saturated
  check_integer_drive_equivalence(integer_system, analog_system, images,
                                  "lenet ideal");
}

TEST(SncIntegerDrivesTest, AlexnetIdealDeviceMatchesAnalogPath) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = models::make_alexnet_mini(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.integer_row_drives = true;
  snc::SncSystem integer_system(net_a, {3, 32, 32}, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = models::make_alexnet_mini(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  snc::SncSystem analog_system(net_b, {3, 32, 32}, cfg_b);

  check_integer_drive_equivalence(integer_system, analog_system,
                                  {random_image({3, 32, 32}, 63)},
                                  "alexnet ideal");
}

// A non-ideal device must disable the integer path: the flag-on system
// stays byte-identical (exact double logits) to a flag-off system with
// the same seed, because both run the same analog code.
TEST(SncIntegerDrivesTest, NonIdealDeviceKeepsAnalogPathExactly) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = models::make_lenet_mini(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.device.variation_sigma = 0.05;
  cfg.seed = 99;
  cfg.integer_row_drives = true;
  snc::SncSystem flag_on(net_a, {1, 28, 28}, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = models::make_lenet_mini(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  cfg_b.device.variation_sigma = 0.05;
  cfg_b.seed = 99;
  snc::SncSystem flag_off(net_b, {1, 28, 28}, cfg_b);

  EXPECT_EQ(flag_on.integer_drive_stage_count(), 0u);

  const nn::Tensor image = random_image({1, 28, 28}, 71);
  EXPECT_EQ(flag_on.infer(image), flag_off.infer(image));
  ASSERT_EQ(flag_on.last_logits().size(), flag_off.last_logits().size());
  for (size_t j = 0; j < flag_on.last_logits().size(); ++j) {
    EXPECT_EQ(flag_on.last_logits()[j], flag_off.last_logits()[j])
        << "logit " << j;
  }
}

TEST(SncIntegerDrivesTest, DriftRecoveryKeepsAnalogPathExactly) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = models::make_lenet_mini(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.recovery.drift_rate_per_window = 1e-4;
  cfg.integer_row_drives = true;
  snc::SncSystem flag_on(net_a, {1, 28, 28}, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = models::make_lenet_mini(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  cfg_b.recovery.drift_rate_per_window = 1e-4;
  snc::SncSystem flag_off(net_b, {1, 28, 28}, cfg_b);

  const nn::Tensor image = random_image({1, 28, 28}, 73);
  EXPECT_EQ(flag_on.infer(image), flag_off.infer(image));
  for (size_t j = 0; j < flag_on.last_logits().size(); ++j) {
    EXPECT_EQ(flag_on.last_logits()[j], flag_off.last_logits()[j])
        << "logit " << j;
  }
}

TEST(SncIntegerDrivesTest, BitIdenticalAcrossThreadCounts) {
  const int bits = 4;
  nn::Rng rng(3);
  nn::Network net = models::make_lenet_mini(rng);
  snc::SncConfig cfg = deploy_config(net, bits);
  cfg.integer_row_drives = true;
  snc::SncSystem system(net, {1, 28, 28}, cfg);

  const nn::Tensor image = random_image({1, 28, 28}, 81);
  const int original = util::num_threads();
  util::set_num_threads(1);
  const int64_t reference_pred = system.infer(image);
  const std::vector<double> reference_logits = system.last_logits();
  for (int threads : {2, 8}) {
    util::set_num_threads(threads);
    EXPECT_EQ(system.infer(image), reference_pred) << threads << " threads";
    ASSERT_EQ(system.last_logits().size(), reference_logits.size());
    for (size_t j = 0; j < reference_logits.size(); ++j) {
      EXPECT_EQ(system.last_logits()[j], reference_logits[j])
          << threads << " threads, logit " << j;
    }
  }
  util::set_num_threads(original);
}

}  // namespace
}  // namespace qsnc
