// Closed-loop fault tolerance: write-verify programming, differential
// compensation, spare-column remapping, and retention drift + refresh.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/rng.h"
#include "snc/crossbar.h"
#include "snc/programming.h"
#include "snc/snc_system.h"

namespace qsnc::snc {
namespace {

constexpr int64_t kImageHW = 28;

/// Clustered model-zoo lenet + the matching deploy config (grid-aligned
/// weights are a precondition of SncSystem).
nn::Network make_deployable_lenet(uint64_t seed, SncConfig& config) {
  nn::Rng rng(seed);
  nn::Network net = models::make_lenet_mini(rng);
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = config.weight_bits;
  const auto results = core::apply_weight_clustering(net, wc);
  config.weight_scales.clear();
  for (const auto& r : results) config.weight_scales.push_back(r.scale);
  config.input_scale = std::min(
      16.0f, static_cast<float>(core::signal_max(config.signal_bits)));
  return net;
}

nn::Tensor random_image(uint64_t seed) {
  nn::Tensor image({1, kImageHW, kImageHW});
  nn::Rng pix(seed);
  for (int64_t i = 0; i < image.numel(); ++i) {
    image[i] = pix.uniform(0.0f, 1.0f);
  }
  return image;
}

std::vector<int64_t> make_levels(int64_t rows, int64_t cols, int64_t kmax) {
  // Deterministic small signed levels, like clustered weights.
  std::vector<int64_t> levels(static_cast<size_t>(rows * cols));
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t r = 0; r < rows; ++r) {
      levels[static_cast<size_t>(c * rows + r)] = ((r + 2 * c) % (2 * kmax + 1)) - kmax;
    }
  }
  return levels;
}

TEST(WriteVerifyTest, IdealDevicesProgramFirstTry) {
  MemristorConfig cfg;
  DifferentialCrossbar xbar(8, 4, cfg);
  nn::Rng rng(1);
  const int64_t kmax = 8;
  const auto levels = make_levels(8, 4, kmax);
  const FaultReport report =
      program_verified(xbar, levels, kmax, WriteVerifyConfig{}, rng);
  EXPECT_EQ(report.cells, 32);
  EXPECT_EQ(report.write_retries, 0);
  EXPECT_EQ(report.faults_detected, 0);
  EXPECT_EQ(report.residual_faults, 0);
  EXPECT_LT(worst_level_error(xbar, levels, kmax), 1e-9);
  // Programmed levels round-trip exactly.
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t r = 0; r < 8; ++r) {
      EXPECT_EQ(xbar.read_level(r, c, kmax),
                levels[static_cast<size_t>(c * 8 + r)]);
    }
  }
}

TEST(WriteVerifyTest, CompensatesStuckOnCellThroughPartner) {
  MemristorConfig cfg;
  DifferentialCrossbar xbar(4, 2, cfg);
  const int64_t kmax = 8;
  // Target k = +2 at (1, 0); plus cell stuck at g_max (level 8). The
  // controller should re-aim minus to 8 - 2 = 6 so the pair still reads 2.
  xbar.set_defect(1, 0, /*minus_array=*/false, DefectKind::kStuckOn);
  nn::Rng rng(1);
  std::vector<int64_t> levels(8, 0);
  levels[0 * 4 + 1] = 2;
  const FaultReport report =
      program_verified(xbar, levels, kmax, WriteVerifyConfig{}, rng);
  EXPECT_EQ(report.faults_detected, 1);
  EXPECT_EQ(report.faults_compensated, 1);
  EXPECT_EQ(report.residual_faults, 0);
  EXPECT_EQ(xbar.read_level(1, 0, kmax), 2);
  EXPECT_LT(worst_level_error(xbar, levels, kmax), 0.5);
}

TEST(WriteVerifyTest, StuckFaultPersistsAcrossRetries) {
  MemristorConfig cfg;
  Crossbar xbar(2, 2, cfg);
  xbar.set_defect(0, 0, DefectKind::kStuckOff);
  nn::Rng rng(3);
  // Retrying the same write against a mapped defect never helps: the cell
  // reads g_min regardless of the target level, on every attempt.
  for (int attempt = 0; attempt < 4; ++attempt) {
    xbar.program_cell(0, 0, 8, 8, &rng);
    EXPECT_DOUBLE_EQ(xbar.conductance(0, 0), g_min(cfg));
  }
}

TEST(WriteVerifyTest, DoubleStuckPairRemapsOntoSpare) {
  MemristorConfig cfg;
  const int64_t kmax = 8;
  DifferentialCrossbar xbar(4, 2, cfg, /*spare_cols=*/1);
  // Both cells of pair (2, 1) pinned: compensation has no healthy partner,
  // so the column must reroute to the spare.
  xbar.set_defect(2, 1, /*minus_array=*/false, DefectKind::kStuckOn);
  xbar.set_defect(2, 1, /*minus_array=*/true, DefectKind::kStuckOn);
  nn::Rng rng(1);
  auto levels = make_levels(4, 2, kmax);
  levels[1 * 4 + 2] = -3;
  const FaultReport report =
      program_verified(xbar, levels, kmax, WriteVerifyConfig{}, rng);
  EXPECT_EQ(report.remapped_cols, 1);
  EXPECT_EQ(report.residual_faults, 0);
  EXPECT_EQ(report.spare_cols_left, 0);
  EXPECT_EQ(xbar.physical_column(1), 2);  // home cols are 0..1, spare is 2
  EXPECT_EQ(xbar.remapped_cols(), 1);
  EXPECT_LT(worst_level_error(xbar, levels, kmax), 0.5);
  // The logical panel reads come from the spare now.
  EXPECT_EQ(xbar.read_level(2, 1, kmax), -3);
}

TEST(WriteVerifyTest, ResidualFaultRecordedWhenSparesExhausted) {
  MemristorConfig cfg;
  const int64_t kmax = 8;
  DifferentialCrossbar xbar(4, 2, cfg, /*spare_cols=*/0);
  xbar.set_defect(2, 1, /*minus_array=*/false, DefectKind::kStuckOn);
  xbar.set_defect(2, 1, /*minus_array=*/true, DefectKind::kStuckOn);
  nn::Rng rng(1);
  std::vector<int64_t> levels(8, 0);
  levels[1 * 4 + 2] = -3;
  const FaultReport report =
      program_verified(xbar, levels, kmax, WriteVerifyConfig{}, rng);
  EXPECT_EQ(report.remapped_cols, 0);
  EXPECT_EQ(report.faults_detected, 1);
  EXPECT_EQ(report.residual_faults, 1);
}

TEST(DriftTest, ConductanceDecaysTowardGmin) {
  MemristorConfig cfg;
  Crossbar xbar(2, 2, cfg);
  xbar.program_cell(0, 0, 8, 8);
  const double g0 = xbar.conductance(0, 0);
  xbar.apply_drift(/*dt=*/10.0, /*rate=*/0.01, /*sigma=*/0.0, /*seed=*/1);
  const double g1 = xbar.conductance(0, 0);
  EXPECT_LT(g1, g0);
  EXPECT_GT(g1, g_min(cfg));
  EXPECT_NEAR(g1, g_min(cfg) + (g0 - g_min(cfg)) * std::exp(-0.1), 1e-15);
}

TEST(DriftTest, DriftIsDeterministicInSeed) {
  MemristorConfig cfg;
  Crossbar a(4, 4, cfg);
  Crossbar b(4, 4, cfg);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      a.program_cell(r, c, (r + c) % 9, 8);
      b.program_cell(r, c, (r + c) % 9, 8);
    }
  }
  a.apply_drift(5.0, 0.01, 0.5, 42);
  b.apply_drift(5.0, 0.01, 0.5, 42);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(a.conductance(r, c), b.conductance(r, c));
    }
  }
}

SncConfig drifting_config() {
  SncConfig config;
  config.recovery.write_verify = true;
  config.recovery.drift_rate_per_window = 0.002;
  config.recovery.drift_sigma = 0.3;
  return config;
}

TEST(DriftTest, RefreshRestoresDriftedSystem) {
  SncConfig config = drifting_config();
  nn::Network net = make_deployable_lenet(5, config);
  SncSystem system(net, {1, kImageHW, kImageHW}, config);

  EXPECT_EQ(system.refresh(), 0);  // freshly programmed: nothing to do

  system.advance_time(400.0);
  EXPECT_DOUBLE_EQ(system.elapsed_windows(), 400.0);
  // Enough decay to push at least one stage past the refresh tolerance.
  const int64_t refreshed = system.refresh();
  EXPECT_GT(refreshed, 0);
  EXPECT_GT(system.fault_report().refreshes, 0);
  // Reprogrammed: a second refresh right away finds nothing to do.
  EXPECT_EQ(system.refresh(), 0);
}

TEST(DriftTest, AutoRefreshFiresOnSchedule) {
  SncConfig config = drifting_config();
  config.recovery.refresh_interval_windows = 100.0;
  nn::Network net = make_deployable_lenet(5, config);
  SncSystem system(net, {1, kImageHW, kImageHW}, config);
  system.advance_time(400.0);  // crosses the interval: refresh runs inline
  EXPECT_GT(system.fault_report().refreshes, 0);
}

TEST(FaultToleranceSystemTest, RecoveryIsDeterministicInSeed) {
  SncConfig config;
  config.device.stuck_on_rate = 0.02;
  config.device.stuck_off_rate = 0.01;
  config.device.variation_sigma = 0.02;
  config.recovery.write_verify = true;
  config.recovery.spare_cols = 2;
  nn::Network net_a = make_deployable_lenet(5, config);
  nn::Network net_b = make_deployable_lenet(5, config);
  SncSystem a(net_a, {1, kImageHW, kImageHW}, config);
  SncSystem b(net_b, {1, kImageHW, kImageHW}, config);

  const FaultReport ra = a.fault_report();
  const FaultReport rb = b.fault_report();
  EXPECT_EQ(ra.faults_detected, rb.faults_detected);
  EXPECT_EQ(ra.faults_compensated, rb.faults_compensated);
  EXPECT_EQ(ra.residual_faults, rb.residual_faults);
  EXPECT_EQ(ra.remapped_cols, rb.remapped_cols);
  EXPECT_EQ(ra.write_retries, rb.write_retries);
  EXPECT_GT(ra.faults_detected, 0);
}

TEST(FaultToleranceSystemTest, FaultMapsIdenticalAcrossEngines) {
  // Identical seeds must yield identical fault maps and recovery actions
  // whether inference later runs event-driven or dense — programming
  // happens before either engine is selected.
  for (const bool stochastic : {false, true}) {
    SncConfig config;
    config.device.stuck_on_rate = 0.02;
    config.recovery.write_verify = true;
    config.recovery.spare_cols = 1;
    config.stochastic_coding = stochastic;
    nn::Network net_a = make_deployable_lenet(9, config);
    nn::Network net_b = make_deployable_lenet(9, config);
    config.engine = SncEngine::kEventDriven;
    SncSystem event_system(net_a, {1, kImageHW, kImageHW}, config);
    config.engine = SncEngine::kDenseReference;
    SncSystem dense_system(net_b, {1, kImageHW, kImageHW}, config);

    const nn::Tensor image = random_image(3);
    SncStats event_stats;
    SncStats dense_stats;
    const int64_t event_pred = event_system.infer(image, &event_stats);
    const int64_t dense_pred = dense_system.infer(image, &dense_stats);
    EXPECT_EQ(event_pred, dense_pred);
    ASSERT_EQ(event_stats.stage.size(), dense_stats.stage.size());
    for (size_t s = 0; s < event_stats.stage.size(); ++s) {
      EXPECT_EQ(event_stats.stage[s].faults_detected,
                dense_stats.stage[s].faults_detected);
      EXPECT_EQ(event_stats.stage[s].faults_compensated,
                dense_stats.stage[s].faults_compensated);
      EXPECT_EQ(event_stats.stage[s].residual_faults,
                dense_stats.stage[s].residual_faults);
      EXPECT_EQ(event_stats.stage[s].remapped_cols,
                dense_stats.stage[s].remapped_cols);
      EXPECT_EQ(event_stats.stage[s].write_retries,
                dense_stats.stage[s].write_retries);
      EXPECT_EQ(event_stats.stage[s].spikes, dense_stats.stage[s].spikes);
    }
  }
}

TEST(FaultToleranceSystemTest, LegacyPathUnchangedWhenRecoveryDisabled) {
  // SncConfig{} with default recovery must reproduce the pre-recovery
  // simulator draw-for-draw: same rng stream, same programmed state.
  SncConfig config;
  config.device.variation_sigma = 0.05;
  config.device.stuck_on_rate = 0.01;
  nn::Network net_a = make_deployable_lenet(5, config);
  nn::Network net_b = make_deployable_lenet(5, config);
  SncSystem sys(net_a, {1, kImageHW, kImageHW}, config);
  SncSystem sys2(net_b, {1, kImageHW, kImageHW}, config);
  const nn::Tensor image = random_image(3);
  EXPECT_EQ(sys.infer(image), sys2.infer(image));
  const FaultReport report = sys.fault_report();
  EXPECT_EQ(report.cells, 0);  // no recovery bookkeeping in legacy mode
  EXPECT_EQ(report.faults_detected, 0);
}

TEST(FaultToleranceSystemTest, AgreementDegradesMonotonicallyInStuckRate) {
  // Property: prediction agreement with the fault-free system is
  // non-increasing (within a seed-noise tolerance) as the stuck-on rate
  // grows — more defective cells can only corrupt more columns. Agreement
  // over random images stands in for labelled accuracy here.
  SncConfig base;
  nn::Network net = make_deployable_lenet(11, base);
  constexpr int kImages = 12;
  std::vector<nn::Tensor> images;
  std::vector<int64_t> clean_predictions;
  {
    SncSystem clean(net, {1, kImageHW, kImageHW}, base);
    for (int i = 0; i < kImages; ++i) {
      images.push_back(random_image(400 + static_cast<uint64_t>(i)));
      clean_predictions.push_back(clean.infer(images.back()));
    }
  }

  const auto agreement = [&](double rate, bool recovered) {
    double total = 0.0;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      SncConfig cfg = base;
      cfg.device.stuck_on_rate = rate;
      cfg.seed = 7 + static_cast<uint64_t>(s);
      if (recovered) {
        cfg.recovery.write_verify = true;
        cfg.recovery.spare_cols = 2;
      }
      SncSystem sys(net, {1, kImageHW, kImageHW}, cfg);
      int match = 0;
      for (int i = 0; i < kImages; ++i) {
        if (sys.infer(images[static_cast<size_t>(i)]) ==
            clean_predictions[static_cast<size_t>(i)]) {
          ++match;
        }
      }
      total += static_cast<double>(match) / kImages;
    }
    return total / seeds;
  };

  const double rates[] = {0.0, 0.02, 0.06, 0.15};
  constexpr double kTolerance = 0.15;  // 3 seeds x 12 images is noisy
  double prev = 2.0;
  for (double rate : rates) {
    const double a = agreement(rate, /*recovered=*/false);
    if (rate == 0.0) {
      EXPECT_EQ(a, 1.0);  // no faults: byte-identical
    }
    EXPECT_LE(a, prev + kTolerance) << "rate " << rate;
    prev = std::min(prev, a);
  }
  // And the closed loop is the cure: at 2% stuck-on, recovery must agree
  // with the fault-free system strictly better than passive injection.
  EXPECT_GT(agreement(0.02, true), agreement(0.02, false));
}

}  // namespace
}  // namespace qsnc::snc
