// Event-driven vs dense-reference engine equivalence.
//
// The event engine (SncEngine::kEventDriven) must be bit-identical to the
// dense reference on every supported configuration: same predictions,
// same analog logits (exact double equality — the accumulation order per
// column is identical), and the same activity statistics (which describe
// the signals, not the execution strategy). The matrix covers all three
// model-zoo networks x {ideal, online} integration x {deterministic,
// stochastic} coding, plus the all-zero and all-saturated worst-case
// signals where the event list is empty / fully dense.
//
// Deterministic variants run positions through the thread pool, so this
// test carries the `tsan` label (registered via qsnc_tsan_test).
#include "snc/snc_system.h"

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "gtest/gtest.h"
#include "models/model_zoo.h"
#include "nn/rng.h"

namespace qsnc {
namespace {

struct ModelSpec {
  const char* name;
  std::function<nn::Network(nn::Rng&)> factory;
  nn::Shape input;
};

std::vector<ModelSpec> model_specs() {
  return {
      {"lenet", models::make_lenet_mini, {1, 28, 28}},
      {"alexnet", models::make_alexnet_mini, {3, 32, 32}},
      {"resnet", models::make_resnet_mini, {3, 32, 32}},
  };
}

snc::SncConfig deploy_config(nn::Network& net, int bits) {
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto results = core::apply_weight_clustering(net, wc);
  snc::SncConfig cfg;
  cfg.signal_bits = bits;
  cfg.weight_bits = bits;
  cfg.weight_scales.clear();
  for (const auto& r : results) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(bits)));
  return cfg;
}

nn::Tensor random_image(const nn::Shape& chw, uint64_t seed) {
  nn::Tensor image(chw);
  nn::Rng rng(seed);
  for (int64_t i = 0; i < image.numel(); ++i) {
    image[i] = rng.uniform(0.0f, 1.0f);
  }
  return image;
}

void expect_stats_equal(const snc::SncStats& event,
                        const snc::SncStats& dense, const std::string& ctx) {
  EXPECT_EQ(event.total_spikes, dense.total_spikes) << ctx;
  EXPECT_EQ(event.window_slots, dense.window_slots) << ctx;
  EXPECT_EQ(event.layers, dense.layers) << ctx;
  ASSERT_EQ(event.stage.size(), dense.stage.size()) << ctx;
  for (size_t s = 0; s < event.stage.size(); ++s) {
    const std::string stage_ctx = ctx + " stage " + std::to_string(s);
    EXPECT_EQ(event.stage[s].rows, dense.stage[s].rows) << stage_ctx;
    EXPECT_EQ(event.stage[s].cols, dense.stage[s].cols) << stage_ctx;
    EXPECT_EQ(event.stage[s].positions, dense.stage[s].positions)
        << stage_ctx;
    EXPECT_EQ(event.stage[s].input_events, dense.stage[s].input_events)
        << stage_ctx;
    EXPECT_EQ(event.stage[s].spikes, dense.stage[s].spikes) << stage_ctx;
    EXPECT_EQ(event.stage[s].occupied_slots, dense.stage[s].occupied_slots)
        << stage_ctx;
  }
}

// Runs `images` through both engines (separate, identically configured
// systems so stochastic draws see the same RNG stream) and asserts
// bitwise-equal predictions, logits, and statistics.
void check_equivalence(const ModelSpec& spec, snc::IntegrationMode mode,
                       bool stochastic,
                       const std::vector<nn::Tensor>& images) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = spec.factory(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.mode = mode;
  cfg.stochastic_coding = stochastic;

  cfg.engine = snc::SncEngine::kEventDriven;
  snc::SncSystem event_system(net_a, spec.input, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = spec.factory(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  cfg_b.mode = mode;
  cfg_b.stochastic_coding = stochastic;
  cfg_b.engine = snc::SncEngine::kDenseReference;
  snc::SncSystem dense_system(net_b, spec.input, cfg_b);

  const std::string base_ctx =
      std::string(spec.name) +
      (mode == snc::IntegrationMode::kOnline ? " online" : " ideal") +
      (stochastic ? " stochastic" : " deterministic");
  for (size_t i = 0; i < images.size(); ++i) {
    const std::string ctx = base_ctx + " image " + std::to_string(i);
    snc::SncStats event_stats;
    snc::SncStats dense_stats;
    const int64_t event_pred =
        event_system.infer(images[i], &event_stats);
    const int64_t dense_pred =
        dense_system.infer(images[i], &dense_stats);
    EXPECT_EQ(event_pred, dense_pred) << ctx;
    ASSERT_EQ(event_system.last_logits().size(),
              dense_system.last_logits().size())
        << ctx;
    for (size_t j = 0; j < event_system.last_logits().size(); ++j) {
      // Exact double equality: the engines must accumulate in the same
      // order, not merely approximate one another.
      EXPECT_EQ(event_system.last_logits()[j],
                dense_system.last_logits()[j])
          << ctx << " logit " << j;
    }
    expect_stats_equal(event_stats, dense_stats, ctx);
  }
}

TEST(SncEngineEquivalenceTest, ModelZooIdealDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kIdealIntegration, false,
                      {random_image(spec.input, 21),
                       random_image(spec.input, 22)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooOnlineDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kOnline, false,
                      {random_image(spec.input, 23)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooIdealStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kIdealIntegration, true,
                      {random_image(spec.input, 24)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooOnlineStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kOnline, true,
                      {random_image(spec.input, 25)});
  }
}

// Worst-case signals. All-zero: the event list is empty at the first
// stage (the engine must still produce the bias-driven outputs and pay
// zero row drives). All-saturated: every input row is an event, so the
// event engine degenerates to dense work yet must stay bit-identical.
TEST(SncEngineEquivalenceTest, AllZeroImage) {
  for (const ModelSpec& spec : model_specs()) {
    nn::Tensor zero(spec.input);  // zero-initialized
    for (snc::IntegrationMode mode :
         {snc::IntegrationMode::kIdealIntegration,
          snc::IntegrationMode::kOnline}) {
      check_equivalence(spec, mode, false, {zero});
    }
  }
}

TEST(SncEngineEquivalenceTest, AllSaturatedImage) {
  for (const ModelSpec& spec : model_specs()) {
    nn::Tensor ones(spec.input, 1.0f);
    for (snc::IntegrationMode mode :
         {snc::IntegrationMode::kIdealIntegration,
          snc::IntegrationMode::kOnline}) {
      check_equivalence(spec, mode, false, {ones});
    }
  }
}

TEST(SncEngineEquivalenceTest, AllZeroImageDrivesNoFirstStageRows) {
  const ModelSpec spec = model_specs().front();  // lenet
  nn::Rng rng(3);
  nn::Network net = spec.factory(rng);
  snc::SncConfig cfg = deploy_config(net, 4);
  snc::SncSystem system(net, spec.input, cfg);
  snc::SncStats stats;
  system.infer(nn::Tensor(spec.input), &stats);
  ASSERT_FALSE(stats.stage.empty());
  EXPECT_EQ(stats.stage[0].input_events, 0);
  EXPECT_DOUBLE_EQ(stats.stage[0].input_sparsity(), 1.0);
  EXPECT_GT(stats.dense_row_drives(), 0);
}

TEST(SncEngineEquivalenceTest, StatsExposeWorkReduction) {
  const ModelSpec spec = model_specs().front();  // lenet
  nn::Rng rng(3);
  nn::Network net = spec.factory(rng);
  snc::SncConfig cfg = deploy_config(net, 4);
  snc::SncSystem system(net, spec.input, cfg);
  snc::SncStats stats;
  system.infer(random_image(spec.input, 40), &stats);
  // ReLU + quantization make hidden signals sparse (Eq 3 convergence), so
  // the event engine must be doing strictly less row-drive work.
  EXPECT_GT(stats.input_events(), 0);
  EXPECT_LT(stats.input_events(), stats.dense_row_drives());
  EXPECT_GT(stats.input_sparsity(), 0.0);
  EXPECT_LT(stats.input_sparsity(), 1.0);
}

}  // namespace
}  // namespace qsnc
