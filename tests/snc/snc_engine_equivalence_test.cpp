// Event-driven vs dense-reference engine equivalence.
//
// The event engine (SncEngine::kEventDriven) must be bit-identical to the
// dense reference on every supported configuration: same predictions,
// same analog logits (exact double equality — the accumulation order per
// column is identical), and the same activity statistics (which describe
// the signals, not the execution strategy). The matrix covers all three
// model-zoo networks x {ideal, online} integration x {deterministic,
// stochastic} coding, plus the all-zero and all-saturated worst-case
// signals where the event list is empty / fully dense.
//
// Deterministic variants run positions through the thread pool, so this
// test carries the `tsan` label (registered via qsnc_tsan_test).
#include "snc/snc_system.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "gtest/gtest.h"
#include "models/model_zoo.h"
#include "nn/rng.h"

namespace qsnc {
namespace {

struct ModelSpec {
  const char* name;
  std::function<nn::Network(nn::Rng&)> factory;
  nn::Shape input;
};

std::vector<ModelSpec> model_specs() {
  return {
      {"lenet", models::make_lenet_mini, {1, 28, 28}},
      {"alexnet", models::make_alexnet_mini, {3, 32, 32}},
      {"resnet", models::make_resnet_mini, {3, 32, 32}},
  };
}

snc::SncConfig deploy_config(nn::Network& net, int bits) {
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto results = core::apply_weight_clustering(net, wc);
  snc::SncConfig cfg;
  cfg.signal_bits = bits;
  cfg.weight_bits = bits;
  cfg.weight_scales.clear();
  for (const auto& r : results) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(bits)));
  return cfg;
}

nn::Tensor random_image(const nn::Shape& chw, uint64_t seed) {
  nn::Tensor image(chw);
  nn::Rng rng(seed);
  for (int64_t i = 0; i < image.numel(); ++i) {
    image[i] = rng.uniform(0.0f, 1.0f);
  }
  return image;
}

void expect_stats_equal(const snc::SncStats& event,
                        const snc::SncStats& dense, const std::string& ctx) {
  EXPECT_EQ(event.total_spikes, dense.total_spikes) << ctx;
  EXPECT_EQ(event.window_slots, dense.window_slots) << ctx;
  EXPECT_EQ(event.layers, dense.layers) << ctx;
  ASSERT_EQ(event.stage.size(), dense.stage.size()) << ctx;
  for (size_t s = 0; s < event.stage.size(); ++s) {
    const std::string stage_ctx = ctx + " stage " + std::to_string(s);
    EXPECT_EQ(event.stage[s].rows, dense.stage[s].rows) << stage_ctx;
    EXPECT_EQ(event.stage[s].cols, dense.stage[s].cols) << stage_ctx;
    EXPECT_EQ(event.stage[s].positions, dense.stage[s].positions)
        << stage_ctx;
    EXPECT_EQ(event.stage[s].input_events, dense.stage[s].input_events)
        << stage_ctx;
    EXPECT_EQ(event.stage[s].spikes, dense.stage[s].spikes) << stage_ctx;
    EXPECT_EQ(event.stage[s].occupied_slots, dense.stage[s].occupied_slots)
        << stage_ctx;
  }
}

// Runs `images` through both engines (separate, identically configured
// systems so stochastic draws see the same RNG stream) and asserts
// bitwise-equal predictions, logits, and statistics.
void check_equivalence(const ModelSpec& spec, snc::IntegrationMode mode,
                       bool stochastic,
                       const std::vector<nn::Tensor>& images) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = spec.factory(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.mode = mode;
  cfg.stochastic_coding = stochastic;

  cfg.engine = snc::SncEngine::kEventDriven;
  snc::SncSystem event_system(net_a, spec.input, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = spec.factory(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  cfg_b.mode = mode;
  cfg_b.stochastic_coding = stochastic;
  cfg_b.engine = snc::SncEngine::kDenseReference;
  snc::SncSystem dense_system(net_b, spec.input, cfg_b);

  const std::string base_ctx =
      std::string(spec.name) +
      (mode == snc::IntegrationMode::kOnline ? " online" : " ideal") +
      (stochastic ? " stochastic" : " deterministic");
  for (size_t i = 0; i < images.size(); ++i) {
    const std::string ctx = base_ctx + " image " + std::to_string(i);
    snc::SncStats event_stats;
    snc::SncStats dense_stats;
    const int64_t event_pred =
        event_system.infer(images[i], &event_stats);
    const int64_t dense_pred =
        dense_system.infer(images[i], &dense_stats);
    EXPECT_EQ(event_pred, dense_pred) << ctx;
    ASSERT_EQ(event_system.last_logits().size(),
              dense_system.last_logits().size())
        << ctx;
    for (size_t j = 0; j < event_system.last_logits().size(); ++j) {
      // Exact double equality: the engines must accumulate in the same
      // order, not merely approximate one another.
      EXPECT_EQ(event_system.last_logits()[j],
                dense_system.last_logits()[j])
          << ctx << " logit " << j;
    }
    expect_stats_equal(event_stats, dense_stats, ctx);
  }
}

TEST(SncEngineEquivalenceTest, ModelZooIdealDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kIdealIntegration, false,
                      {random_image(spec.input, 21),
                       random_image(spec.input, 22)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooOnlineDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kOnline, false,
                      {random_image(spec.input, 23)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooIdealStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kIdealIntegration, true,
                      {random_image(spec.input, 24)});
  }
}

TEST(SncEngineEquivalenceTest, ModelZooOnlineStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_equivalence(spec, snc::IntegrationMode::kOnline, true,
                      {random_image(spec.input, 25)});
  }
}

// Worst-case signals. All-zero: the event list is empty at the first
// stage (the engine must still produce the bias-driven outputs and pay
// zero row drives). All-saturated: every input row is an event, so the
// event engine degenerates to dense work yet must stay bit-identical.
TEST(SncEngineEquivalenceTest, AllZeroImage) {
  for (const ModelSpec& spec : model_specs()) {
    nn::Tensor zero(spec.input);  // zero-initialized
    for (snc::IntegrationMode mode :
         {snc::IntegrationMode::kIdealIntegration,
          snc::IntegrationMode::kOnline}) {
      check_equivalence(spec, mode, false, {zero});
    }
  }
}

TEST(SncEngineEquivalenceTest, AllSaturatedImage) {
  for (const ModelSpec& spec : model_specs()) {
    nn::Tensor ones(spec.input, 1.0f);
    for (snc::IntegrationMode mode :
         {snc::IntegrationMode::kIdealIntegration,
          snc::IntegrationMode::kOnline}) {
      check_equivalence(spec, mode, false, {ones});
    }
  }
}

TEST(SncEngineEquivalenceTest, AllZeroImageDrivesNoFirstStageRows) {
  const ModelSpec spec = model_specs().front();  // lenet
  nn::Rng rng(3);
  nn::Network net = spec.factory(rng);
  snc::SncConfig cfg = deploy_config(net, 4);
  snc::SncSystem system(net, spec.input, cfg);
  snc::SncStats stats;
  system.infer(nn::Tensor(spec.input), &stats);
  ASSERT_FALSE(stats.stage.empty());
  EXPECT_EQ(stats.stage[0].input_events, 0);
  EXPECT_DOUBLE_EQ(stats.stage[0].input_sparsity(), 1.0);
  EXPECT_GT(stats.dense_row_drives(), 0);
}

// ---------------------------------------------------------------------
// Batch-native engine equivalence: SncSystem::infer_batch must be
// bit-identical to running the same images one at a time — same
// predictions, same analog logits (exact double equality), and the same
// per-image statistics — at every batch size, on both engines, with
// deterministic and stochastic coding, and on the integer_row_drives
// fast path. Stochastic coding draws a dedicated RNG stream per image
// (stream-per-image seeding), which is what makes the guarantee hold
// regardless of how images are grouped into batches.
// ---------------------------------------------------------------------

nn::Tensor stack_images(const std::vector<nn::Tensor>& images) {
  const nn::Shape& chw = images.front().shape();
  nn::Tensor batch({static_cast<int64_t>(images.size()), chw[0], chw[1],
                    chw[2]});
  const int64_t numel = images.front().numel();
  for (size_t b = 0; b < images.size(); ++b) {
    std::copy(images[b].data(), images[b].data() + numel,
              batch.data() + static_cast<int64_t>(b) * numel);
  }
  return batch;
}

// Builds two identically configured systems, runs `images` one at a time
// on the first and grouped per `batch_sizes` on the second, and asserts
// per-image bitwise equality of predictions, logits, and stats.
void check_batch_equivalence(const ModelSpec& spec, snc::IntegrationMode mode,
                             bool stochastic, snc::SncEngine engine,
                             bool integer_drives,
                             const std::vector<nn::Tensor>& images,
                             const std::vector<int64_t>& batch_sizes,
                             const std::string& ctx_tag) {
  const int bits = 4;
  nn::Rng rng_a(3);
  nn::Network net_a = spec.factory(rng_a);
  snc::SncConfig cfg = deploy_config(net_a, bits);
  cfg.mode = mode;
  cfg.stochastic_coding = stochastic;
  cfg.engine = engine;
  cfg.integer_row_drives = integer_drives;
  snc::SncSystem single_system(net_a, spec.input, cfg);

  nn::Rng rng_b(3);
  nn::Network net_b = spec.factory(rng_b);
  snc::SncConfig cfg_b = deploy_config(net_b, bits);
  cfg_b.mode = mode;
  cfg_b.stochastic_coding = stochastic;
  cfg_b.engine = engine;
  cfg_b.integer_row_drives = integer_drives;
  snc::SncSystem batch_system(net_b, spec.input, cfg_b);

  std::vector<int64_t> single_preds;
  std::vector<std::vector<double>> single_logits;
  std::vector<snc::SncStats> single_stats;
  for (const nn::Tensor& image : images) {
    snc::SncStats stats;
    single_preds.push_back(single_system.infer(image, &stats));
    single_logits.push_back(single_system.last_logits());
    single_stats.push_back(stats);
  }

  size_t next = 0;
  for (const int64_t batch_size : batch_sizes) {
    ASSERT_LE(next + static_cast<size_t>(batch_size), images.size())
        << ctx_tag;
    std::vector<nn::Tensor> group(
        images.begin() + static_cast<int64_t>(next),
        images.begin() + static_cast<int64_t>(next) + batch_size);
    std::vector<snc::SncStats> batch_stats;
    const std::vector<int64_t> preds =
        batch_system.infer_batch(stack_images(group), &batch_stats);
    ASSERT_EQ(preds.size(), static_cast<size_t>(batch_size)) << ctx_tag;
    ASSERT_EQ(batch_stats.size(), static_cast<size_t>(batch_size))
        << ctx_tag;
    for (int64_t b = 0; b < batch_size; ++b) {
      const size_t i = next + static_cast<size_t>(b);
      const std::string ctx = ctx_tag + " image " + std::to_string(i) +
                              " (batch " + std::to_string(batch_size) +
                              " slot " + std::to_string(b) + ")";
      EXPECT_EQ(preds[static_cast<size_t>(b)], single_preds[i]) << ctx;
      const std::vector<double>& logits =
          batch_system.last_batch_logits()[static_cast<size_t>(b)];
      ASSERT_EQ(logits.size(), single_logits[i].size()) << ctx;
      for (size_t j = 0; j < logits.size(); ++j) {
        // Exact double equality: batching must not change the
        // accumulation order within any column.
        EXPECT_EQ(logits[j], single_logits[i][j]) << ctx << " logit " << j;
      }
      expect_stats_equal(batch_stats[static_cast<size_t>(b)],
                         single_stats[i], ctx);
    }
    next += static_cast<size_t>(batch_size);
  }
  EXPECT_EQ(next, images.size()) << ctx_tag;
}

std::vector<nn::Tensor> image_run(const nn::Shape& chw, uint64_t seed0,
                                  int64_t count) {
  std::vector<nn::Tensor> images;
  for (int64_t i = 0; i < count; ++i) {
    images.push_back(random_image(chw, seed0 + static_cast<uint64_t>(i)));
  }
  return images;
}

// Each model-zoo net, deterministic coding, ideal integration, batch
// sizes 1 / 3 / 8 against the same 12 images run singly.
TEST(SncBatchEquivalenceTest, ModelZooIdealDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_batch_equivalence(
        spec, snc::IntegrationMode::kIdealIntegration, false,
        snc::SncEngine::kEventDriven, false, image_run(spec.input, 50, 12),
        {1, 3, 8}, std::string(spec.name) + " ideal deterministic");
  }
}

// Stochastic coding across the same batch-size matrix: per-image RNG
// streams make grouping unobservable.
TEST(SncBatchEquivalenceTest, ModelZooIdealStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_batch_equivalence(
        spec, snc::IntegrationMode::kIdealIntegration, true,
        snc::SncEngine::kEventDriven, false, image_run(spec.input, 70, 12),
        {1, 3, 8}, std::string(spec.name) + " ideal stochastic");
  }
}

// Online (slot-by-slot) integration exercises the per-slot union pass and
// the per-image IntegrateFire banks.
TEST(SncBatchEquivalenceTest, ModelZooOnlineDeterministic) {
  for (const ModelSpec& spec : model_specs()) {
    check_batch_equivalence(
        spec, snc::IntegrationMode::kOnline, false,
        snc::SncEngine::kEventDriven, false, image_run(spec.input, 90, 4),
        {1, 3}, std::string(spec.name) + " online deterministic");
  }
}

TEST(SncBatchEquivalenceTest, ModelZooOnlineStochastic) {
  for (const ModelSpec& spec : model_specs()) {
    check_batch_equivalence(
        spec, snc::IntegrationMode::kOnline, true,
        snc::SncEngine::kEventDriven, false, image_run(spec.input, 110, 4),
        {1, 3}, std::string(spec.name) + " online stochastic");
  }
}

// The dense reference engine runs the same unified batch runner with the
// union forced to every row; it must stay bit-identical to per-image
// dense execution too.
TEST(SncBatchEquivalenceTest, DenseReferenceBatched) {
  const ModelSpec spec = model_specs().front();  // lenet
  for (snc::IntegrationMode mode :
       {snc::IntegrationMode::kIdealIntegration,
        snc::IntegrationMode::kOnline}) {
    check_batch_equivalence(
        spec, mode, false, snc::SncEngine::kDenseReference, false,
        image_run(spec.input, 130, 4), {1, 3},
        mode == snc::IntegrationMode::kOnline ? "dense online"
                                              : "dense ideal");
  }
}

// integer_row_drives routes collapsed accumulation through the int16
// panel + int32 GEMM kernels (batched: iaccumulate_rows_batch); integer
// accumulation is exact, so batching must again be unobservable.
TEST(SncBatchEquivalenceTest, IntegerRowDrivesBatched) {
  for (const ModelSpec& spec : model_specs()) {
    check_batch_equivalence(
        spec, snc::IntegrationMode::kIdealIntegration, false,
        snc::SncEngine::kEventDriven, true, image_run(spec.input, 150, 12),
        {1, 3, 8}, std::string(spec.name) + " integer ideal");
  }
}

// Regression for stream-per-image seeding: the b-th image of any batch
// must consume exactly the RNG stream that the b-th sequential infer()
// would have, so re-grouping a stochastic run ({3, 2, 1} vs six singles)
// changes nothing. A batch-scoped (rather than image-scoped) RNG would
// fail this for every group after the first.
TEST(SncBatchEquivalenceTest, StochasticStreamsFollowImageOrder) {
  const ModelSpec spec = model_specs().front();  // lenet
  check_batch_equivalence(
      spec, snc::IntegrationMode::kIdealIntegration, true,
      snc::SncEngine::kEventDriven, false, image_run(spec.input, 170, 6),
      {3, 2, 1}, "stochastic regrouping");
}

// Shape contract: a batch whose trailing dims disagree with the model
// input must throw, and an empty batch is a no-op returning no
// predictions.
TEST(SncBatchEquivalenceTest, RejectsBadBatchShapes) {
  const ModelSpec spec = model_specs().front();  // lenet
  nn::Rng rng(3);
  nn::Network net = spec.factory(rng);
  snc::SncConfig cfg = deploy_config(net, 4);
  snc::SncSystem system(net, spec.input, cfg);
  EXPECT_THROW(system.infer_batch(nn::Tensor({2, 1, 28, 27})),
               std::invalid_argument);
  EXPECT_THROW(system.infer_batch(nn::Tensor({1, 28, 28})),
               std::invalid_argument);
  EXPECT_TRUE(system.infer_batch(nn::Tensor({0, 1, 28, 28})).empty());
}

TEST(SncEngineEquivalenceTest, StatsExposeWorkReduction) {
  const ModelSpec spec = model_specs().front();  // lenet
  nn::Rng rng(3);
  nn::Network net = spec.factory(rng);
  snc::SncConfig cfg = deploy_config(net, 4);
  snc::SncSystem system(net, spec.input, cfg);
  snc::SncStats stats;
  system.infer(random_image(spec.input, 40), &stats);
  // ReLU + quantization make hidden signals sparse (Eq 3 convergence), so
  // the event engine must be doing strictly less row-drive work.
  EXPECT_GT(stats.input_events(), 0);
  EXPECT_LT(stats.input_events(), stats.dense_row_drives());
  EXPECT_GT(stats.input_sparsity(), 0.0);
  EXPECT_LT(stats.input_sparsity(), 1.0);
}

}  // namespace
}  // namespace qsnc
