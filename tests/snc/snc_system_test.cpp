#include "snc/snc_system.h"

#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "core/bn_folding.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_cifar.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/relu.h"

namespace qsnc::snc {
namespace {

// A 2-layer integer MLP with hand-placed grid weights:
//   scale 2, bits 2 -> step 0.5, levels {0, +-0.5, +-1}.
nn::Network make_hand_net(nn::Rng& rng) {
  nn::Network net;
  net.emplace<nn::Flatten>();
  auto& fc1 = net.emplace<nn::Dense>(4, 2, rng);
  net.emplace<nn::ReLU>();
  auto& fc2 = net.emplace<nn::Dense>(2, 2, rng);
  fc1.weight().value = nn::Tensor({2, 4}, {1.0f, 0.5f, 0.0f, -0.5f,
                                           0.5f, 0.5f, 0.5f, 0.5f});
  fc1.bias().value = nn::Tensor({2}, {0.0f, -1.0f});
  fc2.weight().value = nn::Tensor({2, 2}, {1.0f, -0.5f,
                                           0.5f, 1.0f});
  fc2.bias().value = nn::Tensor({2}, {0.25f, 0.0f});
  return net;
}

SncConfig hand_config() {
  SncConfig cfg;
  cfg.signal_bits = 3;  // window 7
  cfg.weight_bits = 2;
  cfg.weight_scales = {2.0f, 2.0f};
  cfg.input_scale = 7.0f;  // pixels in [0,1] -> full window
  return cfg;
}

TEST(SncSystemTest, HandComputedIntegerInference) {
  nn::Rng rng(1);
  nn::Network net = make_hand_net(rng);
  SncSystem sys(net, {1, 2, 2}, hand_config());
  ASSERT_EQ(sys.stage_count(), 2u);

  // Pixels chosen so scaled values are exact integers: x = [7, 4, 2, 0].
  nn::Tensor img({1, 2, 2}, {1.0f, 4.0f / 7.0f, 2.0f / 7.0f, 0.0f});
  SncStats stats;
  const int64_t pred = sys.infer(img, &stats);

  // Layer 1: h0 = 7*1 + 4*0.5 + 2*0 + 0*(-0.5) = 9 -> clamp 7.
  //          h1 = (7+4+2+0)*0.5 - 1 = 5.5 -> round 6 (round half up).
  // Layer 2 (analog WTA readout): y0 = 7*1 + 6*(-0.5) + 0.25 = 4.25.
  //          y1 = 7*0.5 + 6*1 = 9.5.
  EXPECT_NEAR(sys.last_logits()[0], 4.25, 1e-9);
  EXPECT_NEAR(sys.last_logits()[1], 9.5, 1e-9);
  EXPECT_EQ(pred, 1);
  EXPECT_EQ(stats.window_slots, 7);
  EXPECT_EQ(stats.layers, 2);
  // Input spikes 13, hidden 7+6=13, logit counters round to 4+10=14.
  EXPECT_EQ(stats.total_spikes, 13 + 13 + 14);
}

TEST(SncSystemTest, MatchesQuantizedNetworkOnRandomIntegers) {
  nn::Rng rng(2);
  nn::Network net = make_hand_net(rng);
  SncSystem sys(net, {1, 2, 2}, hand_config());

  core::IntegerSignalQuantizer q(3);
  net.set_signal_quantizer(&q);

  nn::Rng img_rng(3);
  int agree = 0;
  for (int trial = 0; trial < 50; ++trial) {
    nn::Tensor img({1, 2, 2});
    for (int64_t i = 0; i < 4; ++i) {
      img[i] = static_cast<float>(img_rng.uniform_int(0, 7)) / 7.0f;
    }
    const int64_t snc_pred = sys.infer(img);
    nn::Tensor batch = img.reshape({1, 1, 2, 2});
    batch *= 7.0f;
    for (int64_t i = 0; i < 4; ++i) {
      batch[i] = core::quantize_input_signal(batch[i], 3);
    }
    if (net.predict(batch)[0] == snc_pred) ++agree;
  }
  net.set_signal_quantizer(nullptr);
  EXPECT_GE(agree, 48);  // near-tie argmax flips are the only divergence
}

TEST(SncSystemTest, OnlineModeCloseToIdeal) {
  nn::Rng rng(4);
  nn::Network net = make_hand_net(rng);
  SncConfig ideal_cfg = hand_config();
  SncConfig online_cfg = ideal_cfg;
  online_cfg.mode = IntegrationMode::kOnline;

  SncSystem ideal(net, {1, 2, 2}, ideal_cfg);
  SncSystem online(net, {1, 2, 2}, online_cfg);

  nn::Rng img_rng(5);
  double max_dev = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    nn::Tensor img({1, 2, 2});
    for (int64_t i = 0; i < 4; ++i) {
      img[i] = static_cast<float>(img_rng.uniform_int(0, 7)) / 7.0f;
    }
    ideal.infer(img);
    online.infer(img);
    for (size_t j = 0; j < 2; ++j) {
      max_dev = std::max(max_dev, std::fabs(ideal.last_logits()[j] -
                                            online.last_logits()[j]));
    }
  }
  // Physical IFC semantics may differ by a spike or two, not more.
  EXPECT_LE(max_dev, 2.0);
}

TEST(SncSystemTest, OffGridWeightsRejected) {
  nn::Rng rng(6);
  nn::Network net = make_hand_net(rng);
  // Perturb one weight off the 2-bit grid.
  auto params = net.params();
  for (nn::Param* p : params) {
    if (p->value.rank() == 2) {
      p->value[0] = 0.3333f;
      break;
    }
  }
  EXPECT_THROW(SncSystem(net, {1, 2, 2}, hand_config()),
               std::invalid_argument);
}

TEST(SncSystemTest, UnfoldedResnetRejected) {
  nn::Rng rng(7);
  nn::Network net = models::make_resnet_mini(rng);
  SncConfig cfg;
  // Residual networks deploy only after batch-norm folding.
  EXPECT_THROW(SncSystem(net, {3, 32, 32}, cfg), std::invalid_argument);
}

TEST(SncSystemTest, FoldedResnetDeploysWithHighAgreement) {
  // The full residual path: NC training, BN folding, clustering, SNC
  // deployment with pad-identity skip adds in the counter domain.
  data::SyntheticCifarConfig dc;
  dc.num_samples = 300;
  auto train_set = data::make_synthetic_cifar(dc);
  data::SyntheticCifarConfig ec = dc;
  ec.num_samples = 40;
  ec.seed = 77;
  auto test_set = data::make_synthetic_cifar(ec);

  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lr = 1e-2f;
  tcfg.input_scale = 15.0f;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_resnet_mini(rng);
  core::NeuronConvergenceRegularizer reg(4, 0.1f);
  core::train(net, *train_set, tcfg, &reg, 4, tcfg.epochs - 2);

  ASSERT_EQ(core::fold_batchnorm(net), 17);
  core::WeightClusterConfig wc;
  wc.bits = 4;
  const auto wcr = core::apply_weight_clustering(net, wc);

  SncConfig cfg;
  cfg.signal_bits = 4;
  cfg.weight_bits = 4;
  cfg.weight_scales.clear();
  for (const auto& r : wcr) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale = tcfg.input_scale;
  SncSystem sys(net, {3, 32, 32}, cfg);
  // 17 conv + 1 fc crossbar stages + 1 global-avg-pool stage.
  EXPECT_EQ(sys.stage_count(), 19u);

  core::IntegerSignalQuantizer q(4);
  net.set_signal_quantizer(&q);
  int agree = 0;
  int64_t correct_snc = 0, correct_net = 0;
  for (int64_t i = 0; i < test_set->size(); ++i) {
    const data::Sample s = test_set->get(i);
    const int64_t snc_pred = sys.infer(s.image);
    nn::Tensor batch = s.image.reshape({1, 3, 32, 32});
    batch *= tcfg.input_scale;
    for (int64_t j = 0; j < batch.numel(); ++j) {
      batch[j] = core::quantize_input_signal(batch[j], 4);
    }
    const int64_t net_pred = net.predict(batch)[0];
    if (snc_pred == net_pred) ++agree;
    if (snc_pred == s.label) ++correct_snc;
    if (net_pred == s.label) ++correct_net;
  }
  net.set_signal_quantizer(nullptr);
  // The deep residual path accumulates an extra rounding per block (the
  // conv2 counters digitize before the skip add), so exact agreement is
  // not expected — prediction-level agreement and comparable accuracy are.
  EXPECT_GE(agree, test_set->size() / 2);
  EXPECT_GE(correct_snc, correct_net - test_set->size() / 5);
}

TEST(SncSystemTest, WrongImageShapeRejected) {
  nn::Rng rng(8);
  nn::Network net = make_hand_net(rng);
  SncSystem sys(net, {1, 2, 2}, hand_config());
  nn::Tensor img({1, 3, 3});
  EXPECT_THROW(sys.infer(img), std::invalid_argument);
}

TEST(SncSystemTest, ReadBackWeightRoundTrips) {
  nn::Rng rng(9);
  nn::Network net = make_hand_net(rng);
  SncSystem sys(net, {1, 2, 2}, hand_config());
  // fc1 weight (out 0, in 0) = 1.0; layout row=in, col=out.
  EXPECT_FLOAT_EQ(sys.read_back_weight(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(sys.read_back_weight(0, 3, 0), -0.5f);
  EXPECT_FLOAT_EQ(sys.read_back_weight(1, 1, 0), -0.5f);
  EXPECT_THROW(sys.read_back_weight(5, 0, 0), std::out_of_range);
}

TEST(SncSystemTest, DeviceVariationDegradesGracefully) {
  nn::Rng rng(10);
  nn::Network clean_net = make_hand_net(rng);
  SncConfig cfg = hand_config();
  cfg.device.variation_sigma = 0.02;  // small programming noise
  SncSystem noisy(clean_net, {1, 2, 2}, cfg);
  SncSystem clean(clean_net, {1, 2, 2}, hand_config());

  nn::Rng img_rng(11);
  int agree = 0;
  for (int trial = 0; trial < 40; ++trial) {
    nn::Tensor img({1, 2, 2});
    for (int64_t i = 0; i < 4; ++i) {
      img[i] = static_cast<float>(img_rng.uniform_int(0, 7)) / 7.0f;
    }
    if (noisy.infer(img) == clean.infer(img)) ++agree;
  }
  EXPECT_GE(agree, 30);  // small variation rarely flips predictions
}

TEST(SncSystemIntegrationTest, TrainedLenetDeploysWithHighAgreement) {
  // Neuron-Convergence LeNet training, clustering, deployment: the SNC
  // must agree with the quantized network on the vast majority of images.
  // (The NC training matters: a *plain*-trained net drives most signals
  // outside / below the integer grid, its logits collapse toward bias
  // noise, and argmax agreement becomes a coin flip on quantized ties —
  // the deployment flow the paper proposes always deploys the
  // quantization-aware network. Full-scale flow: examples/quickstart.)
  data::SyntheticMnistConfig dc;
  dc.num_samples = 400;
  auto train_set = data::make_synthetic_mnist(dc);
  data::SyntheticMnistConfig ec = dc;
  ec.num_samples = 60;
  ec.seed = 77;
  auto test_set = data::make_synthetic_mnist(ec);

  core::TrainConfig tcfg;
  tcfg.epochs = 8;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(4, 0.1f);
  core::train(net, *train_set, tcfg, &reg, 4, tcfg.epochs - 2);

  core::WeightClusterConfig wc;
  wc.bits = 4;
  const auto wcr = core::apply_weight_clustering(net, wc);

  SncConfig cfg;
  cfg.signal_bits = 4;
  cfg.weight_bits = 4;
  cfg.weight_scales.clear();
  for (const auto& r : wcr) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale = tcfg.input_scale;
  SncSystem sys(net, {1, 28, 28}, cfg);

  core::IntegerSignalQuantizer q(4);
  net.set_signal_quantizer(&q);
  int agree = 0;
  for (int64_t i = 0; i < test_set->size(); ++i) {
    const data::Sample s = test_set->get(i);
    const int64_t snc_pred = sys.infer(s.image);
    nn::Tensor batch = s.image.reshape({1, 1, 28, 28});
    batch *= tcfg.input_scale;
    for (int64_t j = 0; j < batch.numel(); ++j) {
      batch[j] = core::quantize_input_signal(batch[j], 4);
    }
    if (net.predict(batch)[0] == snc_pred) ++agree;
  }
  net.set_signal_quantizer(nullptr);
  // fp32-vs-analog associativity can flip near-tie argmaxes; anything
  // below ~75% agreement indicates a real deployment bug.
  EXPECT_GE(agree, test_set->size() * 3 / 4);
}

}  // namespace
}  // namespace qsnc::snc
