#include "snc/mapper.h"

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "nn/rng.h"

namespace qsnc::snc {
namespace {

TEST(Eq1Test, KnownTilings) {
  // Eq 1: ceil(cols/t) * ceil(rows/t).
  EXPECT_EQ(crossbars_for(32, 32, 32), 1);
  EXPECT_EQ(crossbars_for(33, 32, 32), 2);
  EXPECT_EQ(crossbars_for(150, 12, 32), 5);
  EXPECT_EQ(crossbars_for(300, 16, 32), 10);
  EXPECT_EQ(crossbars_for(1, 1, 32), 1);
  EXPECT_EQ(crossbars_for(64, 64, 32), 4);
}

TEST(Eq1Test, InvalidArgsThrow) {
  EXPECT_THROW(crossbars_for(0, 4, 32), std::invalid_argument);
  EXPECT_THROW(crossbars_for(4, 4, 0), std::invalid_argument);
}

TEST(MapperTest, LenetLayerGeometry) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  const ModelMapping m = map_network(net, "Lenet", {1, 28, 28}, 32);

  // Paper convention: conv + FC layers are crossbar stages. LeNet has 4.
  ASSERT_EQ(m.layer_count(), 4);

  // conv1: 5x5x1 = 25 rows, 6 filters.
  EXPECT_EQ(m.layers[0].rows, 25);
  EXPECT_EQ(m.layers[0].cols, 6);
  EXPECT_EQ(m.layers[0].crossbars, 1);
  EXPECT_EQ(m.layers[0].desc.out_h, 28);  // same padding

  // conv2: 5x5x6 = 150 rows, 12 filters -> ceil(150/32)*1 = 5.
  EXPECT_EQ(m.layers[1].rows, 150);
  EXPECT_EQ(m.layers[1].cols, 12);
  EXPECT_EQ(m.layers[1].crossbars, 5);
  EXPECT_EQ(m.layers[1].desc.out_h, 10);  // 14 -> valid 5x5

  // fc1: 300 -> 16: ceil(300/32)*ceil(16/32) = 10.
  EXPECT_EQ(m.layers[2].rows, 300);
  EXPECT_EQ(m.layers[2].crossbars, 10);

  // fc2: 16 -> 10: 1 crossbar.
  EXPECT_EQ(m.layers[3].crossbars, 1);

  EXPECT_EQ(m.total_crossbars(), 17);
}

TEST(MapperTest, AlexnetLayerCount) {
  nn::Rng rng(1);
  nn::Network net = models::make_alexnet(rng);
  const ModelMapping m = map_network(net, "Alexnet", {3, 32, 32}, 32);
  // Table 1/5: 5 conv + 3 FC = 8 stages.
  EXPECT_EQ(m.layer_count(), 8);
  // conv1: 5x5x3 = 75 rows, 32 cols -> ceil(75/32)*1 = 3.
  EXPECT_EQ(m.layers[0].rows, 75);
  EXPECT_EQ(m.layers[0].crossbars, 3);
}

TEST(MapperTest, ResnetHas18CrossbarLayers) {
  nn::Rng rng(1);
  nn::Network net = models::make_resnet_mini(rng);
  const ModelMapping m = map_network(net, "Resnet", {3, 32, 32}, 32);
  // 17 conv (option-A shortcuts are parameter-free) + 1 FC = 18 stages,
  // matching Table 5's "Layer Num." of 18.
  EXPECT_EQ(m.layer_count(), 18);
}

TEST(MapperTest, StridedConvTracksSpatialExtent) {
  nn::Rng rng(1);
  nn::Network net = models::make_resnet_mini(rng);
  const ModelMapping m = map_network(net, "Resnet", {3, 32, 32}, 32);
  // First conv keeps 32x32; later stages shrink to 16, 8, 4.
  EXPECT_EQ(m.layers[0].desc.out_h, 32);
  int64_t min_extent = 32;
  for (const LayerMapping& l : m.layers) {
    if (l.desc.kind == LayerKind::kConv) {
      min_extent = std::min(min_extent, l.desc.out_h);
    }
  }
  EXPECT_EQ(min_extent, 4);
}

TEST(MapperTest, CrossbarSizeChangesTiling) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  const ModelMapping m64 = map_network(net, "Lenet", {1, 28, 28}, 64);
  nn::Rng rng2(1);
  nn::Network net2 = models::make_lenet(rng2);
  const ModelMapping m16 = map_network(net2, "Lenet", {1, 28, 28}, 16);
  EXPECT_LT(m64.total_crossbars(), m16.total_crossbars());
}

TEST(MapperTest, BadInputShapeThrows) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  EXPECT_THROW(map_network(net, "x", {28, 28}, 32), std::invalid_argument);
}

TEST(MapperTest, SpareColumnsShrinkUsableTileWidth) {
  // 64 columns fit in 2 tiles of 32, but reserving 2 spares per tile
  // leaves 30 usable columns -> 3 column tiles.
  EXPECT_EQ(crossbars_for(32, 64, 32), 2);
  EXPECT_EQ(crossbars_for(32, 64, 32, 2), 3);
  // Sparing never reduces the tile count.
  for (int64_t s = 0; s < 8; ++s) {
    EXPECT_GE(crossbars_for(100, 100, 32, s + 1),
              crossbars_for(100, 100, 32, s));
  }
}

TEST(MapperTest, SpareColumnsMustLeaveUsableColumn) {
  EXPECT_THROW(crossbars_for(32, 32, 32, 32), std::invalid_argument);
  EXPECT_THROW(crossbars_for(32, 32, 32, -1), std::invalid_argument);
}

TEST(MapperTest, MapNetworkPropagatesSpareBudget) {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  const ModelMapping plain = map_network(net, "Lenet", {1, 28, 28}, 32);
  nn::Rng rng2(1);
  nn::Network net2 = models::make_lenet(rng2);
  const ModelMapping spared = map_network(net2, "Lenet", {1, 28, 28}, 32, 4);
  EXPECT_EQ(spared.spare_cols, 4);
  EXPECT_GE(spared.total_crossbars(), plain.total_crossbars());
  for (size_t i = 0; i < plain.layers.size(); ++i) {
    EXPECT_EQ(spared.layers[i].crossbars,
              crossbars_for(plain.layers[i].rows, plain.layers[i].cols, 32,
                            4));
  }
}

}  // namespace
}  // namespace qsnc::snc
