#include "snc/programming.h"

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "nn/rng.h"

namespace qsnc::snc {
namespace {

ModelMapping lenet_mapping() {
  nn::Rng rng(1);
  nn::Network net = models::make_lenet(rng);
  return map_network(net, "Lenet", {1, 28, 28}, 32);
}

TEST(PulsesPerCellTest, DoublesPerBit) {
  ProgrammingParams p;
  EXPECT_DOUBLE_EQ(pulses_per_cell(1, p), 2.0);
  EXPECT_DOUBLE_EQ(pulses_per_cell(2, p), 4.0);
  EXPECT_DOUBLE_EQ(pulses_per_cell(3, p), 8.0);
  EXPECT_DOUBLE_EQ(pulses_per_cell(4, p), 16.0);
}

TEST(PulsesPerCellTest, CapsAtDevicePrecision) {
  // 8-bit weights on 4-bit devices: each slice programs at 4-bit cost.
  ProgrammingParams p;
  EXPECT_DOUBLE_EQ(pulses_per_cell(8, p), pulses_per_cell(4, p));
}

TEST(PulsesPerCellTest, BadBitsThrow) {
  EXPECT_THROW(pulses_per_cell(0, {}), std::invalid_argument);
  EXPECT_THROW(pulses_per_cell(17, {}), std::invalid_argument);
}

TEST(ProgrammingCostTest, CellsCountDifferentialPairs) {
  const ModelMapping m = lenet_mapping();
  const ProgrammingCost c4 = evaluate_programming(m, 4);
  // 2 cells per logical weight position, 1 slice.
  EXPECT_EQ(c4.cells, 2 * (25 * 6 + 150 * 12 + 300 * 16 + 16 * 10));
}

TEST(ProgrammingCostTest, EightBitPaysTwoSlices) {
  const ModelMapping m = lenet_mapping();
  const ProgrammingCost c4 = evaluate_programming(m, 4);
  const ProgrammingCost c8 = evaluate_programming(m, 8);
  EXPECT_EQ(c8.cells, 2 * c4.cells);
  EXPECT_GT(c8.energy_uj, c4.energy_uj * 1.9);
  EXPECT_GT(c8.time_ms, c4.time_ms * 1.9);
}

TEST(ProgrammingCostTest, CostGrowsSuperlinearlyWithDeviceBits) {
  // The paper's motivation: 6-bit devices exist but programming cost
  // explodes. Per-cell pulses at 6-bit vs 3-bit on 6-bit-capable devices.
  const ModelMapping m = lenet_mapping();
  ProgrammingParams p6;
  p6.device_bits = 6;
  const ProgrammingCost c3 = evaluate_programming(m, 3, p6);
  const ProgrammingCost c6 = evaluate_programming(m, 6, p6);
  EXPECT_GT(c6.energy_uj, c3.energy_uj * 7.0);  // 2^5 / 2^2 = 8x pulses
}

TEST(ProgrammingCostTest, RowParallelismShortensTime) {
  const ModelMapping m = lenet_mapping();
  ProgrammingParams serial;
  ProgrammingParams parallel = serial;
  parallel.parallel_rows = 32;
  const ProgrammingCost cs = evaluate_programming(m, 4, serial);
  const ProgrammingCost cp = evaluate_programming(m, 4, parallel);
  EXPECT_GT(cs.time_ms, cp.time_ms * 10.0);
  EXPECT_DOUBLE_EQ(cs.energy_uj, cp.energy_uj);  // same pulse count
}

TEST(ProgrammingCostTest, EmptyMappingThrows) {
  ModelMapping empty;
  EXPECT_THROW(evaluate_programming(empty, 4), std::invalid_argument);
}

}  // namespace
}  // namespace qsnc::snc
