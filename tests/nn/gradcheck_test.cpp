// Numerical gradient verification for every differentiable layer.
//
// Each test compares the analytic backward pass against central
// differences of the scalar loss 0.5*||forward(x)||^2 (so dLoss/dOut =
// Out). float32 arithmetic bounds achievable precision; tolerances are
// scaled to layer fan-in.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"

namespace qsnc::nn {
namespace {

using test::gradcheck_input;
using test::gradcheck_params;
using test::randomize;

TEST(GradCheck, DenseInput) {
  Rng rng(21);
  Dense fc(6, 4, rng);
  Tensor x({3, 6});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(fc, x), 2e-2f);
}

TEST(GradCheck, DenseParams) {
  Rng rng(22);
  Dense fc(5, 3, rng);
  Tensor x({2, 5});
  randomize(x, rng);
  EXPECT_LT(gradcheck_params(fc, x), 2e-2f);
}

TEST(GradCheck, Conv2dInput) {
  Rng rng(23);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x({2, 2, 5, 5});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(conv, x), 3e-2f);
}

TEST(GradCheck, Conv2dParams) {
  Rng rng(24);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  Tensor x({1, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_params(conv, x), 3e-2f);
}

TEST(GradCheck, Conv2dStridedNoBias) {
  Rng rng(25);
  Conv2d conv(1, 2, 3, 2, 0, rng, /*use_bias=*/false);
  Tensor x({2, 1, 7, 7});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(conv, x), 3e-2f);
  EXPECT_LT(gradcheck_params(conv, x), 3e-2f);
}

TEST(GradCheck, ReLUInput) {
  Rng rng(26);
  ReLU relu;
  Tensor x({4, 7});
  randomize(x, rng);
  // Keep values away from the kink for the finite-difference step.
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.1f;
  }
  EXPECT_LT(gradcheck_input(relu, x), 1e-2f);
}

TEST(GradCheck, MaxPoolInput) {
  Rng rng(27);
  MaxPool2d pool(2, 2);
  Tensor x({1, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(pool, x), 1e-2f);
}

TEST(GradCheck, AvgPoolInput) {
  Rng rng(28);
  AvgPool2d pool(2, 2);
  Tensor x({1, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(pool, x), 1e-2f);
}

TEST(GradCheck, GlobalAvgPoolInput) {
  Rng rng(29);
  GlobalAvgPool pool;
  Tensor x({2, 3, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(pool, x), 1e-2f);
}

TEST(GradCheck, BatchNormInput) {
  Rng rng(30);
  BatchNorm2d bn(2);
  Tensor x({4, 2, 3, 3});
  randomize(x, rng, -2.0f, 2.0f);
  EXPECT_LT(gradcheck_input(bn, x), 5e-2f);
}

TEST(GradCheck, BatchNormParams) {
  Rng rng(31);
  BatchNorm2d bn(2);
  Tensor x({4, 2, 3, 3});
  randomize(x, rng, -2.0f, 2.0f);
  EXPECT_LT(gradcheck_params(bn, x), 5e-2f);
}

TEST(GradCheck, ResidualIdentityInput) {
  Rng rng(32);
  ResidualBlock block(2, 2, 1, rng);
  Tensor x({2, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(block, x), 8e-2f);
}

TEST(GradCheck, ResidualPadIdentityInput) {
  Rng rng(33);
  ResidualBlock block(2, 4, 2, rng, ShortcutKind::kPadIdentity);
  Tensor x({2, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(block, x), 8e-2f);
}

TEST(GradCheck, ResidualProjectionInput) {
  Rng rng(34);
  ResidualBlock block(2, 4, 2, rng, ShortcutKind::kProjection);
  Tensor x({2, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_input(block, x), 8e-2f);
}

TEST(GradCheck, ResidualParams) {
  Rng rng(35);
  ResidualBlock block(2, 2, 1, rng);
  Tensor x({2, 2, 4, 4});
  randomize(x, rng);
  EXPECT_LT(gradcheck_params(block, x), 1e-1f);
}

}  // namespace
}  // namespace qsnc::nn
