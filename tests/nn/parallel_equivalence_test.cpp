// Bit-equivalence of the threaded hot paths across thread counts.
//
// Every parallel kernel in qsnc schedules work by problem shape, never by
// thread count, so results must be *exactly* equal — not merely close — at
// 1, 2, and 8 threads. These tests pin that contract for the GEMM variants,
// conv2d forward/backward, the timing-simulator batch API, dropout masks,
// and the prefetching batcher.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/gemm.h"
#include "nn/igemm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dropout.h"
#include "nn/rng.h"
#include "nn/tensor.h"
#include "snc/timing_sim.h"
#include "util/thread_pool.h"

namespace qsnc {
namespace {

using nn::Rng;
using nn::Tensor;

const std::vector<int> kThreadCounts = {1, 2, 8};

std::vector<float> random_vec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

template <typename VecA, typename VecB>
void expect_bitwise_equal(const VecA& a, const VecB& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(float)), 0)
        << what << " diverges at element " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = util::num_threads(); }
  void TearDown() override { util::set_num_threads(original_); }

  // Runs `kernel` (which writes its result into a fresh vector) at every
  // thread count and asserts all outputs are bit-identical to 1 thread.
  template <typename Kernel>
  void check_invariant(Kernel&& kernel, const char* what) {
    util::set_num_threads(1);
    const auto reference = kernel();
    for (int threads : kThreadCounts) {
      util::set_num_threads(threads);
      const auto got = kernel();
      expect_bitwise_equal(reference, got, what);
    }
  }

  int original_ = 1;
};

TEST_F(ParallelEquivalenceTest, Gemm) {
  Rng rng(11);
  const int64_t m = 96, k = 160, n = 130;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  check_invariant(
      [&] {
        std::vector<float> c(static_cast<size_t>(m * n), 7.0f);  // overwritten
        nn::gemm(a.data(), b.data(), c.data(), m, k, n);
        return c;
      },
      "gemm");
}

TEST_F(ParallelEquivalenceTest, GemmAcc) {
  Rng rng(12);
  const int64_t m = 96, k = 160, n = 130;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);
  check_invariant(
      [&] {
        std::vector<float> c = c0;
        nn::gemm_acc(a.data(), b.data(), c.data(), m, k, n);
        return c;
      },
      "gemm_acc");
}

TEST_F(ParallelEquivalenceTest, GemmAtBAccWideM) {
  // m >= 32 takes the row-partitioned path.
  Rng rng(13);
  const int64_t m = 128, k = 96, n = 64;
  const auto a = random_vec(k * m, rng);  // A stored [k x m]
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);
  check_invariant(
      [&] {
        std::vector<float> c = c0;
        nn::gemm_at_b_acc(a.data(), b.data(), c.data(), m, k, n);
        return c;
      },
      "gemm_at_b_acc (wide m)");
}

TEST_F(ParallelEquivalenceTest, GemmAtBAccSplitK) {
  // Small m with deep k takes the split-k tree-reduction path.
  Rng rng(14);
  const int64_t m = 8, k = 512, n = 33;
  const auto a = random_vec(k * m, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);
  check_invariant(
      [&] {
        std::vector<float> c = c0;
        nn::gemm_at_b_acc(a.data(), b.data(), c.data(), m, k, n);
        return c;
      },
      "gemm_at_b_acc (split k)");
}

TEST_F(ParallelEquivalenceTest, GemmABtAcc) {
  Rng rng(15);
  const int64_t m = 96, k = 160, n = 72;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(n * k, rng);  // B stored [n x k]
  const auto c0 = random_vec(m * n, rng);
  check_invariant(
      [&] {
        std::vector<float> c = c0;
        nn::gemm_a_bt_acc(a.data(), b.data(), c.data(), m, k, n);
        return c;
      },
      "gemm_a_bt_acc");
}

TEST_F(ParallelEquivalenceTest, IGemm) {
  // Integer accumulation is associative, so this holds by construction —
  // pinned anyway so a future fixed-width blocking change can't break it.
  Rng rng(16);
  const int64_t m = 96, k = 160, n = 130;
  std::vector<int16_t> a(static_cast<size_t>(m * k));
  std::vector<int16_t> b(static_cast<size_t>(k * n));
  for (auto& x : a) {
    x = static_cast<int16_t>(std::lround(rng.uniform(-64.0f, 64.0f)));
  }
  for (auto& x : b) {
    x = static_cast<int16_t>(std::lround(rng.uniform(-64.0f, 64.0f)));
  }
  util::set_num_threads(1);
  std::vector<int32_t> reference(static_cast<size_t>(m * n));
  nn::igemm(a.data(), b.data(), reference.data(), m, k, n);
  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    std::vector<int32_t> c(static_cast<size_t>(m * n), -7);
    nn::igemm(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(c, reference) << threads << " threads";

    nn::IGemmPackedB packed(b.data(), k, n);
    std::vector<int32_t> pre(static_cast<size_t>(m * n), -7);
    nn::igemm_prepacked(a.data(), packed, pre.data(), m);
    EXPECT_EQ(pre, reference) << threads << " threads (prepacked)";
  }
}

TEST_F(ParallelEquivalenceTest, Conv2dForwardAndBackward) {
  const int64_t batch = 6, ic = 3, oc = 8, hw = 14;
  Rng data_rng(21);
  Tensor input({batch, ic, hw, hw}, random_vec(batch * ic * hw * hw, data_rng));
  Tensor grad_out;  // shaped after the first forward

  struct Result {
    nn::FloatBuffer output, grad_input, wgrad, bgrad;
  };
  auto run = [&](int threads) {
    util::set_num_threads(threads);
    Rng init_rng(22);  // fresh identical weights per run
    nn::Conv2d conv(ic, oc, 3, 1, 1, init_rng);
    Tensor out = conv.forward(input, /*train=*/true);
    if (grad_out.empty()) {
      Rng grad_rng(23);
      grad_out = Tensor(out.shape(), random_vec(out.numel(), grad_rng));
    }
    conv.weight().zero_grad();
    conv.bias().zero_grad();
    Tensor gin = conv.backward(grad_out);
    return Result{out.vec(), gin.vec(), conv.weight().grad.vec(),
                  conv.bias().grad.vec()};
  };

  const Result reference = run(1);
  for (int threads : kThreadCounts) {
    const Result got = run(threads);
    expect_bitwise_equal(reference.output, got.output, "conv2d output");
    expect_bitwise_equal(reference.grad_input, got.grad_input,
                         "conv2d grad_input");
    expect_bitwise_equal(reference.wgrad, got.wgrad, "conv2d weight grad");
    expect_bitwise_equal(reference.bgrad, got.bgrad, "conv2d bias grad");
  }
}

TEST_F(ParallelEquivalenceTest, SimulateWindowsMatchesSerial) {
  std::vector<snc::WindowSpec> specs;
  for (int64_t layers : {2, 5, 7}) {
    for (int64_t slots : {1, 16, 255}) {
      snc::WindowSpec spec;
      spec.layers = layers;
      spec.window_slots = slots;
      specs.push_back(spec);
      spec.config.discipline = snc::PipelineDiscipline::kSlotPipelined;
      specs.push_back(spec);
    }
  }

  util::set_num_threads(1);
  std::vector<snc::TimingResult> serial;
  serial.reserve(specs.size());
  for (const auto& spec : specs) {
    serial.push_back(
        snc::simulate_window(spec.layers, spec.window_slots, spec.config));
  }

  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    const auto batch = snc::simulate_windows(specs);
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(batch[i].period_ns, serial[i].period_ns) << "spec " << i;
      EXPECT_EQ(batch[i].speed_mhz, serial[i].speed_mhz) << "spec " << i;
      EXPECT_EQ(batch[i].events, serial[i].events) << "spec " << i;
      EXPECT_EQ(batch[i].utilization, serial[i].utilization) << "spec " << i;
      ASSERT_EQ(batch[i].stage_busy_ns, serial[i].stage_busy_ns)
          << "spec " << i;
    }
  }
}

TEST_F(ParallelEquivalenceTest, DropoutMaskIsThreadCountInvariant) {
  const int64_t numel = 3 * 4096 + 517;  // spans several mask chunks
  Rng data_rng(31);
  Tensor input({numel}, random_vec(numel, data_rng));

  auto run = [&](int threads) {
    util::set_num_threads(threads);
    nn::Dropout drop(0.4f, /*seed=*/99);
    // Two rounds: the per-pass counter must also replay identically.
    nn::FloatBuffer out = drop.forward(input, /*train=*/true).vec();
    const nn::FloatBuffer second =
        drop.forward(input, /*train=*/true).vec();
    out.insert(out.end(), second.begin(), second.end());
    return out;
  };

  const nn::FloatBuffer reference = run(1);
  for (int threads : kThreadCounts) {
    expect_bitwise_equal(reference, run(threads), "dropout masks");
  }
}

TEST_F(ParallelEquivalenceTest, BatcherPrefetchMatchesSynchronous) {
  const int64_t n = 23, batch_size = 5;
  Rng data_rng(41);
  Tensor images({n, 1, 4, 4}, random_vec(n * 16, data_rng));
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = i % 7;
  auto dataset = std::make_shared<data::InMemoryDataset>(
      "toy", images, labels, /*num_classes=*/7);

  auto drain = [&](bool prefetch) {
    data::Batcher batcher(dataset, batch_size, /*seed=*/5, prefetch);
    EXPECT_EQ(batcher.prefetching(), prefetch);
    std::vector<float> pixels;
    std::vector<int64_t> seen_labels;
    std::vector<int64_t> epochs;
    const int64_t steps = batcher.batches_per_epoch() * 3 + 2;
    for (int64_t s = 0; s < steps; ++s) {
      data::Batch batch = batcher.next();
      pixels.insert(pixels.end(), batch.images.vec().begin(),
                    batch.images.vec().end());
      seen_labels.insert(seen_labels.end(), batch.labels.begin(),
                         batch.labels.end());
      epochs.push_back(batcher.epoch());
    }
    return std::make_tuple(pixels, seen_labels, epochs);
  };

  const auto sync = drain(false);
  const auto pre = drain(true);
  expect_bitwise_equal(std::get<0>(sync), std::get<0>(pre), "batch pixels");
  EXPECT_EQ(std::get<1>(sync), std::get<1>(pre));
  EXPECT_EQ(std::get<2>(sync), std::get<2>(pre));
}

}  // namespace
}  // namespace qsnc
