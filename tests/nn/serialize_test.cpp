#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "../test_util.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"

namespace qsnc::nn {
namespace {

using test::randomize;

Network make_net(Rng& rng) {
  Network net;
  net.emplace<Conv2d>(1, 3, 3, 1, 1, rng);
  net.emplace<BatchNorm2d>(3);
  net.emplace<ReLU>();
  net.emplace<ResidualBlock>(3, 3, 1, rng);
  net.emplace<Flatten>();
  net.emplace<Dense>(3 * 4 * 4, 2, rng);
  return net;
}

TEST(SerializeTest, SnapshotRestoreRoundTrip) {
  Rng rng(50);
  Network net = make_net(rng);

  // Run a training forward so BN builds running stats.
  Tensor x({4, 1, 4, 4});
  randomize(x, rng);
  net.forward(x, true);

  const NetworkState state = snapshot(net);
  const Tensor before = net.forward(x, false);

  // Clobber the parameters, then restore.
  for (Param* p : net.params()) p->value.fill(0.123f);
  const Tensor clobbered = net.forward(x, false);
  EXPECT_FALSE(clobbered.allclose(before));

  restore(net, state);
  const Tensor after = net.forward(x, false);
  EXPECT_TRUE(after.allclose(before));
}

TEST(SerializeTest, RestoreCoversBatchNormRunningStats) {
  Rng rng(51);
  Network net;
  auto& bn = net.emplace<BatchNorm2d>(2);
  Tensor x({4, 2, 2, 2});
  randomize(x, rng, 1.0f, 3.0f);
  net.forward(x, true);
  const NetworkState state = snapshot(net);
  const float mean_before = bn.running_mean()[0];

  // More training shifts running stats.
  Tensor x2({4, 2, 2, 2});
  randomize(x2, rng, -9.0f, -5.0f);
  for (int i = 0; i < 10; ++i) net.forward(x2, true);
  EXPECT_NE(bn.running_mean()[0], mean_before);

  restore(net, state);
  EXPECT_EQ(bn.running_mean()[0], mean_before);
}

TEST(SerializeTest, RestoreShapeMismatchThrows) {
  Rng rng(52);
  Network a = make_net(rng);
  Network small;
  small.emplace<Dense>(2, 2, rng);
  const NetworkState state = snapshot(a);
  EXPECT_THROW(restore(small, state), std::invalid_argument);
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(53);
  Network net = make_net(rng);
  Tensor x({2, 1, 4, 4});
  randomize(x, rng);
  net.forward(x, true);
  const Tensor before = net.forward(x, false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_serialize_test.bin")
          .string();
  save_state(net, path);

  Rng rng2(53);
  Network net2 = make_net(rng2);
  for (Param* p : net2.params()) p->value.fill(0.0f);
  load_state(net2, path);
  const Tensor after = net2.forward(x, false);
  EXPECT_TRUE(after.allclose(before));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileThrows) {
  Rng rng(54);
  Network net = make_net(rng);
  EXPECT_THROW(load_state(net, "/nonexistent/qsnc.bin"), std::runtime_error);
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(f)),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SerializeTest, BitFlippedCheckpointFailsChecksum) {
  Rng rng(56);
  Network net = make_net(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_bitflip.bin").string();
  save_state(net, path);

  const std::vector<char> good = read_file(path);
  // Flip one bit in every region past the 12-byte header (count, dims,
  // tensor data): each corruption must be caught by the checksum, with
  // an error message that names the cause.
  for (size_t pos : {size_t{12}, size_t{20}, good.size() / 2,
                     good.size() - 1}) {
    std::vector<char> bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    write_file(path, bad);
    try {
      load_state(net, path);
      FAIL() << "bit flip at " << pos << " not detected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedCheckpointThrows) {
  Rng rng(57);
  Network net = make_net(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_truncated.bin")
          .string();
  save_state(net, path);

  const std::vector<char> good = read_file(path);
  // Cut inside the header, inside the dims, and inside the tensor data:
  // all must throw cleanly, never read past the end.
  for (size_t cut : {size_t{2}, size_t{6}, size_t{13}, size_t{25},
                     good.size() - 4}) {
    write_file(path, std::vector<char>(good.begin(),
                                       good.begin() +
                                           static_cast<ptrdiff_t>(cut)));
    EXPECT_THROW(load_state(net, path), std::runtime_error)
        << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyV1CheckpointStillLoads) {
  Rng rng(58);
  Network net = make_net(rng);
  Tensor x({2, 1, 4, 4});
  randomize(x, rng);
  net.forward(x, true);
  const Tensor before = net.forward(x, false);

  // Hand-write the v1 format: magic | version=1 | payload, no checksum.
  const NetworkState state = snapshot(net);
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_legacy_v1.bin")
          .string();
  {
    std::ofstream f(path, std::ios::binary);
    auto put_u32 = [&f](uint32_t v) {
      f.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put_u32(0x51534e43);
    put_u32(1);
    put_u32(static_cast<uint32_t>(state.tensors.size()));
    for (const Tensor& t : state.tensors) {
      put_u32(static_cast<uint32_t>(t.rank()));
      for (int64_t d : t.shape()) {
        f.write(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      f.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
    }
  }

  Rng rng2(58);
  Network net2 = make_net(rng2);
  for (Param* p : net2.params()) p->value.fill(0.0f);
  load_state(net2, path);
  EXPECT_TRUE(net2.forward(x, false).allclose(before));
  std::remove(path.c_str());
}

TEST(SerializeTest, UnsupportedVersionThrows) {
  Rng rng(59);
  Network net = make_net(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_future_version.bin")
          .string();
  save_state(net, path);
  std::vector<char> bytes = read_file(path);
  bytes[4] = 99;  // version field right after the magic
  write_file(path, bytes);
  try {
    load_state(net, path);
    FAIL() << "future version not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadCorruptMagicThrows) {
  Rng rng(55);
  Network net = make_net(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "qsnc_corrupt.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a qsnc file";
  }
  EXPECT_THROW(load_state(net, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qsnc::nn
