#include "nn/network.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace qsnc::nn {
namespace {

using test::randomize;

Network make_tiny_mlp(Rng& rng) {
  Network net;
  net.emplace<Dense>(4, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 3, rng);
  return net;
}

TEST(NetworkTest, ForwardShape) {
  Rng rng(40);
  Network net = make_tiny_mlp(rng);
  Tensor x({5, 4});
  randomize(x, rng);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(NetworkTest, ParamsCollectsLeaves) {
  Rng rng(41);
  Network net = make_tiny_mlp(rng);
  EXPECT_EQ(net.params().size(), 4u);  // 2 x (weight + bias)
}

TEST(NetworkTest, ParamsNoDuplicatesWithComposites) {
  Rng rng(42);
  Network net;
  net.emplace<Conv2d>(3, 4, 3, 1, 1, rng, false);
  net.emplace<ResidualBlock>(4, 4, 1, rng);
  std::vector<Param*> params = net.params();
  for (size_t i = 0; i < params.size(); ++i) {
    for (size_t j = i + 1; j < params.size(); ++j) {
      EXPECT_NE(params[i], params[j]);
    }
  }
  // conv w + block(conv1 w, bn1 g/b, conv2 w, bn2 g/b) = 7.
  EXPECT_EQ(params.size(), 7u);
}

TEST(NetworkTest, NumWeightsCountsScalars) {
  Rng rng(43);
  Network net = make_tiny_mlp(rng);
  EXPECT_EQ(net.num_weights(), 4 * 16 + 16 + 16 * 3 + 3);
}

TEST(NetworkTest, SignalLayersFoundAtDepth) {
  Rng rng(44);
  Network net;
  net.emplace<Conv2d>(3, 4, 3, 1, 1, rng, false);
  net.emplace<ReLU>();
  net.emplace<ResidualBlock>(4, 4, 1, rng);
  // Top-level ReLU + 2 nested in the block.
  EXPECT_EQ(net.signal_layers().size(), 3u);
}

TEST(NetworkTest, PredictReturnsArgmax) {
  Rng rng(45);
  Network net = make_tiny_mlp(rng);
  Tensor x({3, 4});
  randomize(x, rng);
  Tensor logits = net.forward(x);
  std::vector<int64_t> pred = net.predict(x);
  for (int64_t i = 0; i < 3; ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < 3; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    }
    EXPECT_EQ(pred[static_cast<size_t>(i)], best);
  }
}

TEST(NetworkTest, TrainingReducesLossOnToyProblem) {
  // Learn a linearly separable 3-class problem.
  Rng rng(46);
  Network net = make_tiny_mlp(rng);
  Sgd opt(net.params(), {0.1f, 0.9f, 0.0f});

  Tensor x({30, 4});
  std::vector<int64_t> labels(30);
  for (int64_t i = 0; i < 30; ++i) {
    const int64_t cls = i % 3;
    labels[static_cast<size_t>(i)] = cls;
    for (int64_t j = 0; j < 4; ++j) {
      x.at(i, j) = rng.normal(static_cast<float>(cls) * 2.0f, 0.3f);
    }
  }

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 60; ++step) {
    opt.zero_grad();
    Tensor logits = net.forward(x, true);
    LossResult loss = softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step();
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);

  // The trained network classifies the training set perfectly.
  std::vector<int64_t> pred = net.predict(x);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  EXPECT_EQ(correct, 30);
}

TEST(LossTest, SoftmaxSumsToOne) {
  const float logits[3] = {1.0f, 2.0f, 3.0f};
  std::vector<float> p = softmax(logits, 3);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-6f);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(LossTest, SoftmaxStableUnderLargeLogits) {
  const float logits[2] = {1000.0f, 999.0f};
  std::vector<float> p = softmax(logits, 2);
  EXPECT_NEAR(p[0], 0.731f, 1e-3f);
}

TEST(LossTest, CrossEntropyKnownValue) {
  // Uniform logits -> loss = log(K).
  Tensor logits({1, 4}, 0.0f);
  LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
  // Gradient: p - onehot, scaled 1/N.
  EXPECT_NEAR(r.grad.at(0, 0), 0.25f, 1e-5f);
  EXPECT_NEAR(r.grad.at(0, 2), -0.75f, 1e-5f);
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  Rng rng(47);
  Tensor logits({2, 5});
  randomize(logits, rng);
  const std::vector<int64_t> labels{1, 3};
  LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float numeric = (softmax_cross_entropy(lp, labels).loss -
                           softmax_cross_entropy(lm, labels).loss) /
                          (2 * eps);
    EXPECT_NEAR(numeric, r.grad[i], 1e-3f);
  }
}

TEST(LossTest, BadLabelThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(SgdTest, StepMovesAgainstGradient) {
  Param p("w", Tensor({2}, {1.0f, -1.0f}));
  p.grad = Tensor({2}, {0.5f, -0.5f});
  Sgd opt({&p}, {0.1f, 0.0f, 0.0f});
  opt.step();
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.95f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  Param p("w", Tensor({1}, {0.0f}));
  Sgd opt({&p}, {0.1f, 0.5f, 0.0f});
  p.grad[0] = 1.0f;
  opt.step();  // v = -0.1, w = -0.1
  opt.step();  // v = -0.5*0.1 - 0.1 = -0.15, w = -0.25
  EXPECT_NEAR(p.value[0], -0.25f, 1e-6f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  Param p("w", Tensor({1}, {2.0f}));
  p.grad[0] = 0.0f;
  Sgd opt({&p}, {0.1f, 0.0f, 0.5f});
  opt.step();
  EXPECT_NEAR(p.value[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

}  // namespace
}  // namespace qsnc::nn
