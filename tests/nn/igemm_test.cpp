#include "nn/igemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "nn/simd.h"

namespace qsnc::nn {
namespace {

// Reference triple loop, accumulating onto existing C.
void naive_igemm_acc(const int16_t* a, const int16_t* b, int32_t* c,
                     int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const int32_t av = a[i * k + kk];
      if (av == 0) continue;
      for (int64_t j = 0; j < n; ++j) {
        c[i * n + j] += av * static_cast<int32_t>(b[kk * n + j]);
      }
    }
  }
}

std::vector<int16_t> random_i16(int64_t n, int16_t max_abs, Rng& rng) {
  std::vector<int16_t> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = static_cast<int16_t>(std::lround(
        rng.uniform(-static_cast<float>(max_abs),
                    static_cast<float>(max_abs))));
  }
  return v;
}

std::vector<int32_t> random_i32(int64_t n, int32_t max_abs, Rng& rng) {
  std::vector<int32_t> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = static_cast<int32_t>(std::lround(
        rng.uniform(-static_cast<float>(max_abs),
                    static_cast<float>(max_abs))));
  }
  return v;
}

class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force)
      : prev_(simd::set_force_scalar(force)) {}
  ~ForceScalarGuard() { simd::set_force_scalar(prev_); }

 private:
  bool prev_;
};

struct IGemmShape {
  int64_t m, k, n;
};

// Degenerate / odd extents plus quant-serving zoo shapes. Magnitudes are
// capped at 64 so the largest dot product (64 * 64 * 769) stays far below
// the int32 overflow contract.
class IGemmShapeTest : public ::testing::TestWithParam<IGemmShape> {};

TEST_P(IGemmShapeTest, MatchesNaiveAndScalarBitExact) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7919 + k * 37 + n + 3);
  auto a = random_i16(m * k, 64, rng);
  const auto b = random_i16(k * n, 64, rng);
  const auto c0 = random_i32(m * n, 1000, rng);
  // Zero a third of A to exercise the zero-skip path.
  for (size_t i = 0; i < a.size(); i += 3) a[i] = 0;

  // igemm_acc vs the naive reference.
  std::vector<int32_t> want = c0;
  naive_igemm_acc(a.data(), b.data(), want.data(), m, k, n);
  std::vector<int32_t> got = c0;
  igemm_acc(a.data(), b.data(), got.data(), m, k, n);
  EXPECT_EQ(got, want) << "igemm_acc";

  // igemm overwrites C.
  std::vector<int32_t> from_zero(static_cast<size_t>(m * n), 0);
  naive_igemm_acc(a.data(), b.data(), from_zero.data(), m, k, n);
  std::vector<int32_t> overwrite = c0;  // garbage that must be ignored
  igemm(a.data(), b.data(), overwrite.data(), m, k, n);
  EXPECT_EQ(overwrite, from_zero) << "igemm";

  // SIMD dispatch must be bit-identical to the forced scalar path.
  std::vector<int32_t> scalar_c = c0;
  {
    ForceScalarGuard guard(true);
    igemm_acc(a.data(), b.data(), scalar_c.data(), m, k, n);
  }
  std::vector<int32_t> simd_c = c0;
  igemm_acc(a.data(), b.data(), simd_c.data(), m, k, n);
  EXPECT_EQ(simd_c, scalar_c) << "scalar/simd divergence";

  // Prepacked B agrees with the unpacked entry point on both paths.
  IGemmPackedB packed(b.data(), k, n);
  EXPECT_EQ(packed.k(), k);
  EXPECT_EQ(packed.n(), n);
  std::vector<int32_t> pre(static_cast<size_t>(m * n), -1);
  igemm_prepacked(a.data(), packed, pre.data(), m);
  EXPECT_EQ(pre, from_zero) << "igemm_prepacked";
  {
    ForceScalarGuard guard(true);
    std::vector<int32_t> pre_scalar(static_cast<size_t>(m * n), -1);
    igemm_prepacked(a.data(), packed, pre_scalar.data(), m);
    EXPECT_EQ(pre_scalar, from_zero) << "igemm_prepacked scalar";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegenerateAndOddShapes, IGemmShapeTest,
    ::testing::Values(IGemmShape{0, 0, 0}, IGemmShape{0, 5, 3},
                      IGemmShape{5, 0, 3}, IGemmShape{5, 3, 0},
                      IGemmShape{1, 1, 1}, IGemmShape{1, 7, 1},
                      IGemmShape{7, 1, 13}, IGemmShape{3, 5, 7},
                      IGemmShape{5, 129, 33}, IGemmShape{13, 131, 17},
                      IGemmShape{31, 257, 47}, IGemmShape{67, 97, 101}),
    [](const ::testing::TestParamInfo<IGemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

INSTANTIATE_TEST_SUITE_P(
    ModelZooShapes, IGemmShapeTest,
    ::testing::Values(IGemmShape{6, 25, 784},    // lenet conv1 im2col
                      IGemmShape{12, 150, 100},  // lenet conv2 im2col
                      IGemmShape{64, 288, 64},   // alexnet conv3 im2col
                      IGemmShape{64, 300, 16},   // dense head batch
                      IGemmShape{128, 96, 64}),
    [](const ::testing::TestParamInfo<IGemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

TEST(IGemmTest, TinyKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<int16_t> a{1, 2, 3, 4};
  const std::vector<int16_t> b{5, 6, 7, 8};
  std::vector<int32_t> c(4, 99);
  igemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c, (std::vector<int32_t>{19, 22, 43, 50}));
}

TEST(IGemmTest, HandlesExtremeInt16ValuesWithinContract) {
  // max|A| * max|B| * k = 32767 * 32767 * 2 < 2^31: the accumulator must
  // not saturate or wrap even at full int16 range when k is small.
  const std::vector<int16_t> a{32767, -32768};
  const std::vector<int16_t> b{32767, -32768, -32768, 32767};
  std::vector<int32_t> c(2, 0);
  igemm(a.data(), b.data(), c.data(), 1, 2, 2);
  EXPECT_EQ(c[0], 32767 * 32767 + (-32768) * (-32768));
  EXPECT_EQ(c[1], 32767 * (-32768) + (-32768) * 32767);
}

TEST(IGemmTest, MostlySparseSignalsStayExact) {
  // Quant-serving signals are mostly zero after ReLU + M-bit rounding;
  // the zero-skip fast path must not change results.
  Rng rng(77);
  const int64_t m = 24, k = 96, n = 40;
  auto a = random_i16(m * k, 15, rng);
  for (size_t i = 0; i < a.size(); ++i) {
    if (i % 5 != 0) a[i] = 0;  // 80% sparse
  }
  const auto b = random_i16(k * n, 8, rng);
  std::vector<int32_t> want(static_cast<size_t>(m * n), 0);
  naive_igemm_acc(a.data(), b.data(), want.data(), m, k, n);
  std::vector<int32_t> got(static_cast<size_t>(m * n), 0);
  igemm(a.data(), b.data(), got.data(), m, k, n);
  EXPECT_EQ(got, want);
}

TEST(IAccumulateRowsTest, MatchesNaiveAndScalarBitExact) {
  Rng rng(91);
  const int64_t rows = 150, cols = 37;
  const auto panel = random_i16(rows * cols, 8, rng);

  // Sparse event list over ~half the rows, spike counts in [1, 15].
  std::vector<int32_t> event_rows;
  std::vector<int32_t> event_vals;
  for (int64_t r = 0; r < rows; ++r) {
    if (r % 2 == 1 && r % 7 != 0) continue;
    event_rows.push_back(static_cast<int32_t>(r));
    event_vals.push_back(
        static_cast<int32_t>(std::lround(rng.uniform(1.0f, 15.0f))));
  }
  const int64_t nnz = static_cast<int64_t>(event_rows.size());

  std::vector<int32_t> want(static_cast<size_t>(cols), 5);
  for (int64_t e = 0; e < nnz; ++e) {
    for (int64_t c = 0; c < cols; ++c) {
      want[static_cast<size_t>(c)] +=
          event_vals[static_cast<size_t>(e)] *
          static_cast<int32_t>(
              panel[event_rows[static_cast<size_t>(e)] * cols + c]);
    }
  }

  std::vector<int32_t> got(static_cast<size_t>(cols), 5);
  iaccumulate_rows(event_rows.data(), event_vals.data(), nnz, panel.data(),
                   cols, got.data());
  EXPECT_EQ(got, want);

  std::vector<int32_t> scalar(static_cast<size_t>(cols), 5);
  {
    ForceScalarGuard guard(true);
    iaccumulate_rows(event_rows.data(), event_vals.data(), nnz, panel.data(),
                     cols, scalar.data());
  }
  EXPECT_EQ(scalar, want);
}

TEST(IAccumulateRowsTest, EmptyEventListLeavesAccumulatorUntouched) {
  const std::vector<int16_t> panel(4 * 3, 7);
  std::vector<int32_t> acc{1, 2, 3};
  iaccumulate_rows(nullptr, nullptr, 0, panel.data(), 3, acc.data());
  EXPECT_EQ(acc, (std::vector<int32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace qsnc::nn
