// Batched-vs-single forward equivalence: Network::forward on a batch of N
// must BIT-MATCH the N single-image forwards concatenated. This is the
// correctness precondition for the serving runtime's dynamic micro-batcher
// (serve/micro_batcher.h): coalescing requests into one forward call must
// never change any individual answer. Exact float equality on purpose —
// allclose would hide order-dependent accumulation sneaking into a kernel.
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace qsnc::nn {
namespace {

Tensor random_batch(const Shape& chw, int64_t n, uint64_t seed) {
  Tensor batch({n, chw[0], chw[1], chw[2]});
  Rng rng(seed);
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch[i] = rng.uniform(0.0f, 16.0f);  // signal-unit input convention
  }
  return batch;
}

Tensor single_image(const Tensor& batch, int64_t index) {
  const Shape& s = batch.shape();
  const int64_t numel = s[1] * s[2] * s[3];
  Tensor image({1, s[1], s[2], s[3]});
  const float* src = batch.data() + index * numel;
  std::copy(src, src + numel, image.data());
  return image;
}

void expect_bitwise_batch_equivalence(Network& net, const Shape& chw,
                                      int64_t n, uint64_t seed) {
  const Tensor batch = random_batch(chw, n, seed);
  const Tensor batched_out = net.forward(batch, /*train=*/false);
  ASSERT_EQ(batched_out.dim(0), n);
  const int64_t out_numel = batched_out.numel() / n;

  for (int64_t i = 0; i < n; ++i) {
    const Tensor single_out = net.forward(single_image(batch, i), false);
    ASSERT_EQ(single_out.numel(), out_numel) << "image " << i;
    for (int64_t j = 0; j < out_numel; ++j) {
      // Bitwise: EXPECT_EQ on floats, not EXPECT_NEAR.
      ASSERT_EQ(batched_out[i * out_numel + j], single_out[j])
          << "image " << i << " logit " << j;
    }
  }
}

TEST(BatchEquivalenceTest, LenetMini) {
  Rng rng(7);
  Network net = models::make_lenet_mini(rng);
  expect_bitwise_batch_equivalence(net, {1, 28, 28}, 5, 11);
}

TEST(BatchEquivalenceTest, AlexnetMini) {
  Rng rng(7);
  Network net = models::make_alexnet_mini(rng);
  expect_bitwise_batch_equivalence(net, {3, 32, 32}, 4, 13);
}

// ResNet covers residual composites and (unfolded) batch-norm inference
// statistics in the batched path.
TEST(BatchEquivalenceTest, ResnetMini) {
  Rng rng(7);
  Network net = models::make_resnet_mini(rng);
  expect_bitwise_batch_equivalence(net, {3, 32, 32}, 3, 17);
}

// Predictions (argmax) must agree too — that is what serving returns.
TEST(BatchEquivalenceTest, PredictMatchesSinglePredicts) {
  Rng rng(3);
  Network net = models::make_lenet_mini(rng);
  const Tensor batch = random_batch({1, 28, 28}, 8, 23);
  const std::vector<int64_t> batched = net.predict(batch);
  ASSERT_EQ(batched.size(), 8u);
  for (int64_t i = 0; i < 8; ++i) {
    const std::vector<int64_t> single =
        net.predict(single_image(batch, i));
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(batched[static_cast<size_t>(i)], single[0]) << "image " << i;
  }
}

}  // namespace
}  // namespace qsnc::nn
