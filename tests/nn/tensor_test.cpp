#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qsnc::nn {
namespace {

TEST(ShapeTest, NumelOfEmptyShapeIsOne) {
  EXPECT_EQ(shape_numel({}), 1);
}

TEST(ShapeTest, NumelMultipliesExtents) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({7}), 7);
  EXPECT_EQ(shape_numel({5, 0, 3}), 0);
}

TEST(ShapeTest, NegativeExtentThrows) {
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, StorageIsCachePanelAligned) {
  // Tensor storage backs the GEMM packing buffers, which assume 64-byte
  // (cache line / aligned-load) panels — see util/aligned.h.
  for (int64_t n : {1, 7, 64, 1000}) {
    Tensor t({n});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) %
                  util::kPanelAlignment,
              0u)
        << "numel " << n;
  }
}

TEST(TensorTest, AdoptValues) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, AdoptValuesSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f}),
               std::invalid_argument);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.numel(), 3);
  EXPECT_EQ(t[2], 3.0f);
}

TEST(TensorTest, DimNegativeIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_THROW(t.dim(-4), std::out_of_range);
}

TEST(TensorTest, FourDimAccessRowMajorNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(TensorTest, WrongRankAccessorThrows) {
  Tensor r3({2, 3, 4});
  EXPECT_THROW(r3.at(0, 0, 0, 0), std::logic_error);
  EXPECT_THROW(r3.at(0, 0), std::logic_error);
  Tensor r2({2, 3});
  EXPECT_THROW(r2.at(0, 0, 0, 0), std::logic_error);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at(0, 1), 2.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, ReshapeInfersAxis) {
  Tensor t({2, 6});
  Tensor r = t.reshape({4, -1});
  EXPECT_EQ(r.dim(1), 3);
}

TEST(TensorTest, ReshapeBadNumelThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, 4}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  Tensor c = a + b;
  EXPECT_EQ(c[1], 24.0f);
  Tensor d = b - a;
  EXPECT_EQ(d[0], 8.0f);
  Tensor e = a * 0.5f;
  EXPECT_EQ(e[2], 3.0f);
}

TEST(TensorTest, MismatchedShapesThrow) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {-3, 1, 2, 4});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_EQ(t.argmax(), 3);
  EXPECT_FLOAT_EQ(t.squared_norm(), 9 + 1 + 4 + 16);
}

TEST(TensorTest, ReductionsOnEmptyThrow) {
  Tensor t;
  EXPECT_THROW(t.min(), std::logic_error);
  EXPECT_THROW(t.max(), std::logic_error);
  EXPECT_THROW(t.mean(), std::logic_error);
  EXPECT_THROW(t.argmax(), std::logic_error);
}

TEST(TensorTest, ArgmaxFirstOnTies) {
  Tensor t({4}, {1, 5, 5, 2});
  EXPECT_EQ(t.argmax(), 1);
}

TEST(TensorTest, Allclose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(a.allclose(b));
  EXPECT_FALSE(a.allclose(b, 1e-7f));
  Tensor c({3});
  EXPECT_FALSE(a.allclose(c));
}

TEST(TensorTest, FillOverwrites) {
  Tensor t({3}, {1, 2, 3});
  t.fill(7.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 7.0f);
}

}  // namespace
}  // namespace qsnc::nn
