#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"

namespace qsnc::nn {
namespace {

TEST(SgdClipTest, LargeGradientIsScaledToMaxNorm) {
  Param p("w", Tensor({2}, {0.0f, 0.0f}));
  p.grad = Tensor({2}, {30.0f, 40.0f});  // norm 50
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 5.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  // Effective gradient = grad * (5/50) = (3, 4).
  EXPECT_NEAR(p.value[0], -3.0f, 1e-5f);
  EXPECT_NEAR(p.value[1], -4.0f, 1e-5f);
}

TEST(SgdClipTest, SmallGradientUntouched) {
  Param p("w", Tensor({2}, {0.0f, 0.0f}));
  p.grad = Tensor({2}, {0.3f, 0.4f});  // norm 0.5 < 5
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.3f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.4f, 1e-6f);
}

TEST(SgdClipTest, ClipSpansAllParams) {
  // Norm is global: two params of norm 30 and 40 -> total 50.
  Param a("a", Tensor({1}, {0.0f}));
  Param b("b", Tensor({1}, {0.0f}));
  a.grad[0] = 30.0f;
  b.grad[0] = 40.0f;
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 5.0f;
  Sgd opt({&a, &b}, cfg);
  opt.step();
  EXPECT_NEAR(a.value[0], -3.0f, 1e-5f);
  EXPECT_NEAR(b.value[0], -4.0f, 1e-5f);
}

TEST(SgdClipTest, ZeroDisablesClipping) {
  Param p("w", Tensor({1}, {0.0f}));
  p.grad[0] = 100.0f;
  SgdConfig cfg;
  cfg.lr = 0.01f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 0.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], -1.0f, 1e-5f);
}

TEST(SgdClipTest, WeightDecayAppliedAfterClip) {
  // Clipping scales the loss gradient only, not the decay term.
  Param p("w", Tensor({1}, {10.0f}));
  p.grad[0] = 50.0f;
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.1f;
  cfg.max_grad_norm = 5.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  // Update = -(5 + 0.1*10) = -6.
  EXPECT_NEAR(p.value[0], 4.0f, 1e-5f);
}

}  // namespace
}  // namespace qsnc::nn
