#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/rng.h"
#include "nn/simd.h"

namespace qsnc::nn {
namespace {

// Reference triple loop.
void naive_gemm(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

std::vector<float> random_vec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

TEST(GemmTest, TinyKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

struct GemmShape {
  int64_t m, k, n;
};

class GemmShapeTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> got(static_cast<size_t>(m * n));
  std::vector<float> want(static_cast<size_t>(m * n));
  gemm(a.data(), b.data(), got.data(), m, k, n);
  naive_gemm(a.data(), b.data(), want.data(), m, k, n);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 2},
                      GemmShape{16, 16, 16}, GemmShape{65, 129, 33},
                      GemmShape{128, 64, 300}, GemmShape{1, 500, 7},
                      GemmShape{70, 1, 70}));

TEST(GemmTest, AccAccumulatesOntoExisting) {
  const std::vector<float> a{1, 0, 0, 1};  // identity
  const std::vector<float> b{2, 3, 4, 5};
  std::vector<float> c{10, 10, 10, 10};
  gemm_acc(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 12);
  EXPECT_FLOAT_EQ(c[3], 15);
}

TEST(GemmTest, SkipsZeroActivationRows) {
  // Correctness with many zeros (the sparse-signal fast path).
  Rng rng(5);
  std::vector<float> a = random_vec(8 * 16, rng);
  for (size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;
  const auto b = random_vec(16 * 8, rng);
  std::vector<float> got(64), want(64);
  gemm(a.data(), b.data(), got.data(), 8, 16, 8);
  naive_gemm(a.data(), b.data(), want.data(), 8, 16, 8);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4f);
}

TEST(GemmTest, AtBMatchesExplicitTranspose) {
  Rng rng(9);
  const int64_t m = 13, k = 7, n = 11;
  const auto a_t = random_vec(k * m, rng);  // stored [k x m]
  const auto b = random_vec(k * n, rng);
  // Build A = (a_t)^T explicitly.
  std::vector<float> a(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) a[i * k + kk] = a_t[kk * m + i];
  }
  std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> want(static_cast<size_t>(m * n));
  gemm_at_b_acc(a_t.data(), b.data(), got.data(), m, k, n);
  naive_gemm(a.data(), b.data(), want.data(), m, k, n);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4f);
}

TEST(GemmTest, ABtMatchesExplicitTranspose) {
  Rng rng(10);
  const int64_t m = 6, k = 9, n = 4;
  const auto a = random_vec(m * k, rng);
  const auto b_t = random_vec(n * k, rng);  // stored [n x k]
  std::vector<float> b(static_cast<size_t>(k * n));
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) b[kk * n + j] = b_t[j * k + kk];
  }
  std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> want(static_cast<size_t>(m * n));
  gemm_a_bt_acc(a.data(), b_t.data(), got.data(), m, k, n);
  naive_gemm(a.data(), b.data(), want.data(), m, k, n);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4f);
}

// ---------------------------------------------------------------------------
// SIMD vs scalar bit-exactness.
//
// The AVX2 micro-kernels must reproduce the scalar reference loops
// bit-for-bit (gemm_kernels.h documents why that is possible). Each case
// below runs every GEMM variant twice — once with the scalar path forced,
// once with normal dispatch — and memcmps the outputs. On hosts without
// AVX2 (or under QSNC_FORCE_SCALAR=1; see the *_forced_scalar ctest
// registration) both runs take the scalar path and the comparison is
// trivially exact, so the suite is portable.
// ---------------------------------------------------------------------------

class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) : prev_(simd::set_force_scalar(force)) {}
  ~ForceScalarGuard() { simd::set_force_scalar(prev_); }

 private:
  bool prev_;
};

void expect_bits_equal(const std::vector<float>& a,
                       const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(float)), 0)
        << what << " diverges at element " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// Degenerate and odd extents: empty, single, primes off the 4x16 register
// block and the 128/256 cache blocks, plus representative zoo-like shapes.
class GemmSimdExactTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSimdExactTest, AllVariantsMatchScalarBitExactly) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131071 + k * 8191 + n * 31 + 1);
  auto a = random_vec(m * k, rng);
  auto at = random_vec(k * m, rng);
  auto b = random_vec(k * n, rng);
  auto bt = random_vec(n * k, rng);
  const auto c0 = random_vec(m * n, rng);
  // Zero out a third of A so the zero-skip branches are exercised.
  for (size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  for (size_t i = 0; i < at.size(); i += 3) at[i] = 0.0f;

  struct Variant {
    const char* name;
    void (*fn)(const float*, const float*, float*, int64_t, int64_t, int64_t);
    const float* a;
    const float* b;
    bool overwrite;
  };
  const Variant variants[] = {
      {"gemm", &gemm, a.data(), b.data(), true},
      {"gemm_acc", &gemm_acc, a.data(), b.data(), false},
      {"gemm_at_b_acc", &gemm_at_b_acc, at.data(), b.data(), false},
      {"gemm_a_bt_acc", &gemm_a_bt_acc, a.data(), bt.data(), false},
  };
  for (const Variant& v : variants) {
    std::vector<float> scalar_c = c0;
    {
      ForceScalarGuard guard(true);
      v.fn(v.a, v.b, scalar_c.data(), m, k, n);
    }
    std::vector<float> simd_c = c0;
    v.fn(v.a, v.b, simd_c.data(), m, k, n);
    expect_bits_equal(scalar_c, simd_c, v.name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegenerateAndOddShapes, GemmSimdExactTest,
    ::testing::Values(GemmShape{0, 0, 0}, GemmShape{0, 5, 3},
                      GemmShape{5, 0, 3}, GemmShape{5, 3, 0},
                      GemmShape{1, 1, 1}, GemmShape{1, 7, 1},
                      GemmShape{7, 1, 13}, GemmShape{3, 5, 7},
                      GemmShape{5, 129, 33}, GemmShape{13, 131, 17},
                      GemmShape{31, 257, 47}, GemmShape{67, 97, 101},
                      GemmShape{97, 193, 259}),
    [](const ::testing::TestParamInfo<GemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

INSTANTIATE_TEST_SUITE_P(
    ModelZooShapes, GemmSimdExactTest,
    ::testing::Values(GemmShape{6, 25, 784},    // lenet conv1 im2col
                      GemmShape{12, 150, 100},  // lenet conv2 im2col
                      GemmShape{64, 288, 64},   // alexnet conv3 im2col
                      GemmShape{64, 300, 16},   // dense head batch
                      GemmShape{8, 512, 33},    // split-k dW shape
                      GemmShape{128, 96, 64}),  // wide-M dW shape
    [](const ::testing::TestParamInfo<GemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

TEST(GemmSimdDispatchTest, EnvForcedScalarDisablesAvx2) {
  if (simd::env_forced_scalar()) {
    EXPECT_FALSE(simd::use_avx2());
  } else if (simd::cpu_has_avx2()) {
    EXPECT_TRUE(simd::use_avx2());
  } else {
    EXPECT_FALSE(simd::use_avx2());
  }
}

TEST(GemmSimdDispatchTest, ForceScalarOverrideWinsAndRestores) {
  const bool before = simd::use_avx2();
  {
    ForceScalarGuard guard(true);
    EXPECT_FALSE(simd::use_avx2());
  }
  EXPECT_EQ(simd::use_avx2(), before);
}

}  // namespace
}  // namespace qsnc::nn
