// Property tests of the softmax cross-entropy loss.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/rng.h"

namespace qsnc::nn {
namespace {

class LossProperty : public ::testing::TestWithParam<int> {};

TEST_P(LossProperty, SoftmaxInvariantUnderLogitShift) {
  const int k = GetParam();
  Rng rng(k);
  std::vector<float> logits(static_cast<size_t>(k));
  for (auto& v : logits) v = rng.uniform(-3.0f, 3.0f);
  std::vector<float> shifted = logits;
  for (auto& v : shifted) v += 100.0f;
  const auto p = softmax(logits.data(), k);
  const auto q = softmax(shifted.data(), k);
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(p[static_cast<size_t>(i)], q[static_cast<size_t>(i)], 1e-5f);
  }
}

TEST_P(LossProperty, GradientRowsSumToZero) {
  // d/dlogits of CE sums to zero per sample (softmax simplex constraint).
  const int k = GetParam();
  Rng rng(k + 7);
  Tensor logits({3, k});
  for (int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = rng.uniform(-2.0f, 2.0f);
  }
  const LossResult r = softmax_cross_entropy(logits, {0, 1 % k, 2 % k});
  for (int64_t n = 0; n < 3; ++n) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < k; ++j) row_sum += r.grad.at(n, j);
    EXPECT_NEAR(row_sum, 0.0f, 1e-5f);
  }
}

TEST_P(LossProperty, LossNonNegativeAndFinite) {
  const int k = GetParam();
  Rng rng(k + 13);
  Tensor logits({4, k});
  for (int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = rng.uniform(-50.0f, 50.0f);
  }
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < 4; ++i) labels.push_back(i % k);
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_GE(r.loss, 0.0f);
  EXPECT_TRUE(std::isfinite(r.loss));
  for (int64_t i = 0; i < r.grad.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(r.grad[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, LossProperty,
                         ::testing::Values(2, 3, 10, 100));

TEST(LossPropertyTest, PerfectPredictionHasNearZeroLoss) {
  Tensor logits({1, 3}, {50.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-5f);
}

TEST(LossPropertyTest, ConfidentWrongPredictionCostsLinearly) {
  // CE of a wrong class with margin m is ~m for large m.
  for (float margin : {10.0f, 20.0f, 40.0f}) {
    Tensor logits({1, 2}, {margin, 0.0f});
    const LossResult r = softmax_cross_entropy(logits, {1});
    EXPECT_NEAR(r.loss, margin, 0.01f);
  }
}

}  // namespace
}  // namespace qsnc::nn
