#include <gtest/gtest.h>

#include <stdexcept>

#include "../test_util.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"

namespace qsnc::nn {
namespace {

using test::randomize;

TEST(Conv2dTest, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Tensor x({2, 3, 16, 16});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
}

TEST(Conv2dTest, OutputShapeStridedValid) {
  Rng rng(1);
  Conv2d conv(1, 4, 5, 2, 0, rng);
  Tensor x({1, 1, 13, 13});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 5, 5}));
}

TEST(Conv2dTest, KnownValueSingleTap) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.weight().value[0] = 2.0f;
  conv.bias().value[0] = 0.5f;
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[3], 8.5f);
}

TEST(Conv2dTest, WrongChannelCountThrows) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Tensor x({1, 4, 8, 8});
  EXPECT_THROW(conv.forward(x, false), std::invalid_argument);
}

TEST(Conv2dTest, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  Tensor g({1, 1, 4, 4});
  EXPECT_THROW(conv.backward(g), std::logic_error);
}

TEST(Conv2dTest, InvalidGeometryThrows) {
  Rng rng(1);
  EXPECT_THROW(Conv2d(0, 1, 3, 1, 1, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 3, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 3, 1, -1, rng), std::invalid_argument);
}

TEST(DenseTest, ComputesAffine) {
  Rng rng(2);
  Dense fc(3, 2, rng);
  fc.weight().value = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  fc.bias().value = Tensor({2}, {0.5f, -0.5f});
  Tensor x({1, 3}, {3, 4, 5});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.5f);
}

TEST(DenseTest, BatchIndependence) {
  Rng rng(2);
  Dense fc(4, 3, rng);
  Tensor x({2, 4});
  randomize(x, rng);
  Tensor y2 = fc.forward(x, false);
  // Row 0 alone must equal row 0 of the batch result.
  Tensor x0({1, 4});
  for (int64_t i = 0; i < 4; ++i) x0[i] = x[i];
  Tensor y0 = fc.forward(x0, false);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(y0.at(0, j), y2.at(0, j), 1e-5f);
  }
}

TEST(ReLUTest, ClampsNegatives) {
  ReLU relu;
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({3}, {-1.0f, 1.0f, 3.0f});
  relu.forward(x, true);
  Tensor g({3}, {5.0f, 5.0f, 5.0f});
  Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 5.0f);
  EXPECT_FLOAT_EQ(gi[2], 5.0f);
}

TEST(ReLUTest, IsSignalBoundary) {
  ReLU relu;
  EXPECT_TRUE(relu.is_signal());
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  EXPECT_FALSE(conv.is_signal());
}

TEST(MaxPoolTest, SelectsWindowMax) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4}, {1, 2, 3, 4,
                          5, 6, 7, 8,
                          9, 10, 11, 12,
                          13, 14, 15, 16});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 6);
  EXPECT_FLOAT_EQ(y[1], 8);
  EXPECT_FLOAT_EQ(y[2], 14);
  EXPECT_FLOAT_EQ(y[3], 16);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, {1, 9, 2, 3});
  pool.forward(x, true);
  Tensor g({1, 1, 1, 1}, {7.0f});
  Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0);
  EXPECT_FLOAT_EQ(gi[1], 7);
  EXPECT_FLOAT_EQ(gi[2], 0);
  EXPECT_FLOAT_EQ(gi[3], 0);
}

TEST(AvgPoolTest, Averages) {
  AvgPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(GlobalAvgPoolTest, ReducesToChannelMeans) {
  GlobalAvgPool pool;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0f);
}

TEST(FlattenTest, RoundTrip) {
  Flatten flat;
  Tensor x({2, 3, 4, 5});
  Rng rng(4);
  randomize(x, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor back = flat.backward(y);
  EXPECT_TRUE(back.allclose(x));
}

TEST(BatchNormTest, NormalizesTrainingBatch) {
  BatchNorm2d bn(2);
  Rng rng(5);
  Tensor x({4, 2, 3, 3});
  randomize(x, rng, -3.0f, 5.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0 and var ~1 after normalization (gamma=1, beta=0).
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t i = 0; i < 9; ++i) {
        const float v = y[(n * 2 + c) * 9 + i];
        sum += v;
        sq += v * v;
      }
    }
    const double mean = sum / 36.0;
    const double var = sq / 36.0 - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(6);
  // Feed several training batches to build running stats.
  for (int i = 0; i < 50; ++i) {
    Tensor x({8, 1, 2, 2});
    for (int64_t j = 0; j < x.numel(); ++j) x[j] = rng.normal(3.0f, 2.0f);
    bn.forward(x, true);
  }
  // A constant eval input equal to the running mean maps near beta = 0.
  Tensor x({1, 1, 2, 2}, bn.running_mean()[0]);
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 0.0f, 0.15f);
}

TEST(BatchNormTest, InferenceAffineFoldsCorrectly) {
  BatchNorm2d bn(1);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Tensor x({4, 1, 2, 2});
    randomize(x, rng, -2.0f, 6.0f);
    bn.forward(x, true);
  }
  float scale = 0.0f, shift = 0.0f;
  bn.inference_affine(0, &scale, &shift);
  Tensor x({1, 1, 1, 1}, {1.7f});
  Tensor x4({1, 1, 2, 2}, 1.7f);
  Tensor y = bn.forward(x4, false);
  EXPECT_NEAR(y[0], scale * 1.7f + shift, 1e-5f);
}

TEST(ResidualBlockTest, IdentityShortcutShape) {
  Rng rng(8);
  ResidualBlock block(4, 4, 1, rng);
  Tensor x({2, 4, 8, 8});
  randomize(x, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FALSE(block.has_projection());
}

TEST(ResidualBlockTest, PadIdentityDownsample) {
  Rng rng(8);
  ResidualBlock block(4, 8, 2, rng, ShortcutKind::kPadIdentity);
  Tensor x({2, 4, 8, 8});
  randomize(x, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
  EXPECT_FALSE(block.has_projection());
}

TEST(ResidualBlockTest, ProjectionDownsample) {
  Rng rng(8);
  ResidualBlock block(4, 8, 2, rng, ShortcutKind::kProjection);
  Tensor x({2, 4, 8, 8});
  randomize(x, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
  EXPECT_TRUE(block.has_projection());
}

TEST(ResidualBlockTest, ChildrenExposeNestedSignals) {
  Rng rng(8);
  ResidualBlock block(4, 4, 1, rng);
  int relus = 0;
  visit_layers(&block, [&relus](Layer* l) {
    if (dynamic_cast<ReLU*>(l) != nullptr) ++relus;
  });
  EXPECT_EQ(relus, 2);
}

TEST(ResidualBlockTest, ParamsAggregatesChildren) {
  Rng rng(8);
  ResidualBlock block(4, 8, 2, rng, ShortcutKind::kProjection);
  // conv1 w, bn1 (g,b), conv2 w, bn2 (g,b), proj w, proj bn (g,b) = 9.
  EXPECT_EQ(block.params().size(), 9u);
}

}  // namespace
}  // namespace qsnc::nn
