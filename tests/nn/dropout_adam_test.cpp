#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "nn/adam.h"
#include "nn/layers/dense.h"
#include "nn/layers/dropout.h"
#include "nn/layers/relu.h"
#include "nn/loss.h"
#include "nn/network.h"

namespace qsnc::nn {
namespace {

using test::randomize;

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout drop(0.5f, 1);
  Tensor x({4, 8});
  Rng rng(2);
  randomize(x, rng);
  Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_TRUE(y.allclose(x));
}

TEST(DropoutTest, TrainingDropsApproximatelyRate) {
  Dropout drop(0.3f, 3);
  Tensor x({1, 10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  int64_t dropped = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / 10000.0, 0.3, 0.03);
}

TEST(DropoutTest, SurvivorsScaledToPreserveExpectation) {
  Dropout drop(0.25f, 4);
  Tensor x({1, 20000}, 2.0f);
  Tensor y = drop.forward(x, true);
  // E[y] = x: survivors carry 2.0 / 0.75.
  EXPECT_NEAR(y.mean(), 2.0f, 0.1f);
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] != 0.0f) EXPECT_NEAR(y[i], 2.0f / 0.75f, 1e-5f);
  }
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.5f, 5);
  Tensor x({1, 100}, 1.0f);
  Tensor y = drop.forward(x, true);
  Tensor g({1, 100}, 1.0f);
  Tensor gi = drop.backward(g);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(gi[i], y[i]);  // identical mask * scale on ones
  }
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Dropout drop(0.0f, 6);
  Tensor x({2, 3});
  Rng rng(7);
  randomize(x, rng);
  EXPECT_TRUE(drop.forward(x, true).allclose(x));
  Tensor g({2, 3}, 1.0f);
  EXPECT_TRUE(drop.backward(g).allclose(g));
}

TEST(DropoutTest, InvalidRateThrows) {
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
}

TEST(AdamTest, StepMovesAgainstGradient) {
  Param p("w", Tensor({1}, {1.0f}));
  p.grad[0] = 1.0f;
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.max_grad_norm = 0.0f;
  Adam opt({&p}, cfg);
  opt.step();
  // First Adam step moves by ~lr regardless of gradient magnitude.
  EXPECT_NEAR(p.value[0], 0.9f, 1e-3f);
  EXPECT_EQ(opt.steps_taken(), 1);
}

TEST(AdamTest, StepSizeInvariantToGradientScale) {
  Param a("a", Tensor({1}, {0.0f}));
  Param b("b", Tensor({1}, {0.0f}));
  AdamConfig cfg;
  cfg.lr = 0.01f;
  cfg.max_grad_norm = 0.0f;
  Adam oa({&a}, cfg), ob({&b}, cfg);
  a.grad[0] = 1e-3f;
  b.grad[0] = 1e3f;
  oa.step();
  ob.step();
  EXPECT_NEAR(a.value[0], b.value[0], 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2.
  Param p("w", Tensor({1}, {0.0f}));
  AdamConfig cfg;
  cfg.lr = 0.1f;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, TrainsToyClassifier) {
  Rng rng(8);
  Network net;
  net.emplace<Dense>(4, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 3, rng);
  AdamConfig cfg;
  cfg.lr = 0.05f;
  Adam opt(net.params(), cfg);

  Tensor x({30, 4});
  std::vector<int64_t> labels(30);
  for (int64_t i = 0; i < 30; ++i) {
    const int64_t cls = i % 3;
    labels[static_cast<size_t>(i)] = cls;
    for (int64_t j = 0; j < 4; ++j) {
      x.at(i, j) = rng.normal(static_cast<float>(cls) * 2.0f, 0.3f);
    }
  }
  float last = 0.0f;
  for (int step = 0; step < 80; ++step) {
    opt.zero_grad();
    Tensor logits = net.forward(x, true);
    LossResult loss = softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step();
    last = loss.loss;
  }
  EXPECT_LT(last, 0.1f);
}

TEST(DropoutNetworkTest, RegularizesWithoutBreakingEval) {
  Rng rng(9);
  Network net;
  net.emplace<Dense>(8, 32, rng);
  net.emplace<ReLU>();
  net.emplace<Dropout>(0.5f, 10);
  net.emplace<Dense>(32, 2, rng);

  Tensor x({4, 8});
  randomize(x, rng);
  // Two inference passes agree exactly (dropout inert).
  Tensor a = net.forward(x, false);
  Tensor b = net.forward(x, false);
  EXPECT_TRUE(a.allclose(b));
  // Training passes differ (mask resampled).
  Tensor c = net.forward(x, true);
  Tensor d = net.forward(x, true);
  EXPECT_FALSE(c.allclose(d));
}

}  // namespace
}  // namespace qsnc::nn
