#include "nn/rng.h"

#include <gtest/gtest.h>

namespace qsnc::nn {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedDifferentSequence) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform() != b.uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const float v = rng.normal(2.0f, 0.5f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  // Out-of-range p is clamped rather than UB.
  EXPECT_TRUE(rng.bernoulli(2.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
}

}  // namespace
}  // namespace qsnc::nn
