// Parameterized convolution sweep: forward-vs-reference and gradient
// checks across a grid of geometries (kernel, stride, padding, channels).
#include <gtest/gtest.h>

#include "../test_util.h"
#include "nn/im2col.h"
#include "nn/layers/conv2d.h"

namespace qsnc::nn {
namespace {

struct ConvCase {
  int64_t in_c, out_c, kernel, stride, pad, size;
};

void PrintTo(const ConvCase& c, std::ostream* os) {
  *os << c.in_c << "->" << c.out_c << " k" << c.kernel << " s" << c.stride
      << " p" << c.pad << " in" << c.size;
}

// Direct (non-im2col) reference convolution.
Tensor reference_conv(const Tensor& x, Conv2d& conv) {
  const int64_t batch = x.dim(0);
  const int64_t in_c = conv.in_channels();
  const int64_t out_c = conv.out_channels();
  const int64_t k = conv.kernel();
  const int64_t stride = conv.stride();
  const int64_t pad = conv.pad();
  const int64_t in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = conv_out_extent(in_h, k, stride, pad);
  const int64_t out_w = conv_out_extent(in_w, k, stride, pad);

  Tensor y({batch, out_c, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < out_c; ++oc) {
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          float acc = conv.uses_bias() ? conv.bias().value[oc] : 0.0f;
          for (int64_t ic = 0; ic < in_c; ++ic) {
            for (int64_t ky = 0; ky < k; ++ky) {
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = oy * stride - pad + ky;
                const int64_t ix = ox * stride - pad + kx;
                if (iy < 0 || iy >= in_h || ix < 0 || ix >= in_w) continue;
                acc += x.at(n, ic, iy, ix) *
                       conv.weight().value[((oc * in_c + ic) * k + ky) * k +
                                           kx];
              }
            }
          }
          y.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  return y;
}

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ForwardMatchesDirectReference) {
  const ConvCase c = GetParam();
  Rng rng(c.in_c * 131 + c.kernel);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, rng);
  Tensor x({2, c.in_c, c.size, c.size});
  test::randomize(x, rng);
  const Tensor got = conv.forward(x, false);
  const Tensor want = reference_conv(x, conv);
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
  }
}

TEST_P(ConvSweep, GradientsCheckNumerically) {
  const ConvCase c = GetParam();
  Rng rng(c.out_c * 17 + c.stride);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, rng);
  Tensor x({1, c.in_c, c.size, c.size});
  test::randomize(x, rng);
  EXPECT_LT(test::gradcheck_input(conv, x), 5e-2f);
  EXPECT_LT(test::gradcheck_params(conv, x), 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5},   // pointwise
                      ConvCase{1, 2, 3, 1, 1, 6},   // same padding
                      ConvCase{2, 3, 3, 2, 1, 7},   // strided odd input
                      ConvCase{3, 2, 5, 1, 2, 8},   // 5x5 same
                      ConvCase{2, 2, 5, 1, 0, 9},   // 5x5 valid
                      ConvCase{1, 4, 3, 3, 0, 9},   // stride == kernel
                      ConvCase{4, 1, 2, 2, 0, 8},   // even kernel
                      ConvCase{2, 2, 3, 1, 2, 5})); // pad > kernel/2

}  // namespace
}  // namespace qsnc::nn
