// Focused tests of the signal-hook plumbing: attach/detach semantics,
// nested-layer reach, penalty aggregation, and STE gradient behaviour.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/fixed_point.h"
#include "core/neuron_convergence.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"
#include "nn/network.h"

namespace qsnc::nn {
namespace {

Network make_nested(Rng& rng) {
  Network net;
  net.emplace<Conv2d>(2, 4, 3, 1, 1, rng, false);
  net.emplace<ReLU>();
  net.emplace<ResidualBlock>(4, 4, 1, rng);
  net.emplace<Flatten>();
  net.emplace<Dense>(4 * 4 * 4, 3, rng);
  return net;
}

TEST(SignalHooksTest, QuantizerReachesNestedRelus) {
  Rng rng(90);
  Network net = make_nested(rng);
  core::IntegerSignalQuantizer q(4);
  net.set_signal_quantizer(&q);
  for (ReLU* r : net.signal_layers()) {
    EXPECT_EQ(r->quantizer(), &q);
  }
  EXPECT_EQ(net.signal_layers().size(), 3u);  // top + 2 nested
  net.set_signal_quantizer(nullptr);
  for (ReLU* r : net.signal_layers()) {
    EXPECT_EQ(r->quantizer(), nullptr);
  }
}

TEST(SignalHooksTest, QuantizedForwardProducesIntegerSignals) {
  Rng rng(91);
  Network net = make_nested(rng);
  core::IntegerSignalQuantizer q(4);

  // Tap the last signal layer's output through the Dense input: quantized
  // activations flattened into the classifier must all be integers <= 15.
  net.set_signal_quantizer(&q);
  Tensor x({2, 2, 4, 4});
  test::randomize(x, rng, 0.0f, 16.0f);
  net.forward(x, false);

  // Verify via a collecting hook on the final ReLU.
  class Collect final : public SignalQuantizer {
   public:
    explicit Collect(const SignalQuantizer* inner) : inner_(inner) {}
    float apply(float o) const override {
      const float q = inner_->apply(o);
      values_.push_back(q);
      return q;
    }
    bool pass_through(float o) const override {
      return inner_->pass_through(o);
    }
    const std::vector<float>& values() const { return values_; }

   private:
    const SignalQuantizer* inner_;
    mutable std::vector<float> values_;
  };
  Collect collect(&q);
  net.signal_layers().back()->set_quantizer(&collect);
  net.forward(x, false);
  ASSERT_FALSE(collect.values().empty());
  for (float v : collect.values()) {
    EXPECT_FLOAT_EQ(v, std::round(v));
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 15.0f);
  }
  net.set_signal_quantizer(nullptr);
}

TEST(SignalHooksTest, PenaltyAggregatesAcrossLayers) {
  Rng rng(92);
  Network net = make_nested(rng);
  core::NeuronConvergenceRegularizer reg(4, 1.0f, 0.1f);
  net.set_signal_regularizer(&reg);
  Tensor x({1, 2, 4, 4});
  test::randomize(x, rng, 0.0f, 20.0f);
  net.forward(x, true);
  const float total = net.signal_penalty();
  float manual = 0.0f;
  for (ReLU* r : net.signal_layers()) manual += r->last_penalty();
  EXPECT_FLOAT_EQ(total, manual);
  EXPECT_GT(total, 0.0f);
  net.set_signal_regularizer(nullptr);
}

TEST(SignalHooksTest, SteBlocksGradientAtSaturation) {
  // A ReLU with a 3-bit quantizer: values beyond the ceiling (7) pass no
  // gradient; in-range values pass it unchanged.
  ReLU relu;
  core::IntegerSignalQuantizer q(3);
  relu.set_quantizer(&q);
  Tensor x({3}, {2.0f, 20.0f, -1.0f});
  relu.forward(x, true);
  Tensor g({3}, {1.0f, 1.0f, 1.0f});
  Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 1.0f);  // in range
  EXPECT_FLOAT_EQ(gi[1], 0.0f);  // saturated: STE stops it
  EXPECT_FLOAT_EQ(gi[2], 0.0f);  // ReLU mask
}

TEST(SignalHooksTest, RegularizerAndQuantizerCompose) {
  // Fake quantization and the NC penalty can be active simultaneously
  // (the QAT phase); the penalty is computed on pre-quantization values.
  ReLU relu;
  core::IntegerSignalQuantizer q(3);
  core::NeuronConvergenceRegularizer reg(3, 1.0f, 0.1f);
  relu.set_quantizer(&q);
  relu.set_regularizer(&reg);
  Tensor x({2}, {6.2f, 1.0f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 6.0f);  // quantized output
  // Penalty on 6.2 (beyond threshold 4): (6.2-4) + 0.62 = 2.82;
  // on 1.0: 0.1. Mean over 2 elements, lambda 1.
  EXPECT_NEAR(relu.last_penalty(), (2.82f + 0.1f) / 2.0f, 1e-4f);
}

}  // namespace
}  // namespace qsnc::nn
