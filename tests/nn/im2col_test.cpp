#include "nn/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "nn/rng.h"

namespace qsnc::nn {
namespace {

TEST(ConvOutExtentTest, BasicCases) {
  EXPECT_EQ(conv_out_extent(28, 5, 1, 2), 28);  // same-padding 5x5
  EXPECT_EQ(conv_out_extent(28, 5, 1, 0), 24);  // valid
  EXPECT_EQ(conv_out_extent(32, 3, 2, 1), 16);  // strided downsample
  EXPECT_EQ(conv_out_extent(4, 2, 2, 0), 2);    // pooling geometry
}

TEST(ConvOutExtentTest, NonPositiveOutputThrows) {
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), std::invalid_argument);
}

TEST(Im2ColTest, IdentityKernelIsCopy) {
  // 1x1 kernel, stride 1, no pad: cols equal the image rows.
  const std::vector<float> img{1, 2, 3, 4, 5, 6};
  std::vector<float> cols(6);
  im2col(img.data(), 1, 2, 3, 1, 1, 1, 0, cols.data());
  for (size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2ColTest, ExtractsReceptiveFields) {
  // 1 channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 cols of 4 taps.
  const std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4);
  im2col(img.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  // Column for output (0,0): taps (0,0),(0,1),(1,0),(1,1) = 1,2,4,5 across
  // rows; cols layout is [patch_row][out_pos].
  EXPECT_EQ(cols[0 * 4 + 0], 1);
  EXPECT_EQ(cols[1 * 4 + 0], 2);
  EXPECT_EQ(cols[2 * 4 + 0], 4);
  EXPECT_EQ(cols[3 * 4 + 0], 5);
  // Output (1,1): 5,6,8,9.
  EXPECT_EQ(cols[0 * 4 + 3], 5);
  EXPECT_EQ(cols[1 * 4 + 3], 6);
  EXPECT_EQ(cols[2 * 4 + 3], 8);
  EXPECT_EQ(cols[3 * 4 + 3], 9);
}

TEST(Im2ColTest, PaddingReadsZero) {
  const std::vector<float> img{1, 2, 3, 4};
  // 2x2 image, 3x3 kernel, pad 1 -> 2x2 output, 9 rows.
  std::vector<float> cols(9 * 4);
  im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
  // Output (0,0) top-left tap is padding.
  EXPECT_EQ(cols[0 * 4 + 0], 0.0f);
  // Center tap of output (0,0) is pixel (0,0) = 1.
  EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
}

TEST(Im2ColTest, MultiChannelRowOrderIsChannelMajor) {
  // 2 channels of 2x2, 1x1 kernel: rows are [c0, c1].
  const std::vector<float> img{1, 2, 3, 4, 10, 20, 30, 40};
  std::vector<float> cols(2 * 4);
  im2col(img.data(), 2, 2, 2, 1, 1, 1, 0, cols.data());
  EXPECT_EQ(cols[0 * 4 + 3], 4);
  EXPECT_EQ(cols[1 * 4 + 3], 40);
}

TEST(Col2ImTest, RoundTripAccumulatesOverlaps) {
  // col2im(im2col(x)) multiplies each pixel by its receptive-field
  // multiplicity; with a 2x2 kernel stride 1 on 3x3, the center pixel is
  // touched 4 times, corners once.
  const std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4);
  im2col(img.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  std::vector<float> back(9, 0.0f);
  col2im(cols.data(), 1, 3, 3, 2, 2, 1, 0, back.data());
  EXPECT_FLOAT_EQ(back[0], 1.0f * 1);   // corner
  EXPECT_FLOAT_EQ(back[4], 5.0f * 4);   // center
  EXPECT_FLOAT_EQ(back[1], 2.0f * 2);   // edge
}

TEST(Col2ImTest, StridedNoOverlapRoundTripIsExact) {
  Rng rng(3);
  std::vector<float> img(2 * 4 * 4);
  for (auto& v : img) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> cols(2 * 2 * 2 * 4);  // 2ch * 2x2 kernel, 2x2 out
  im2col(img.data(), 2, 4, 4, 2, 2, 2, 0, cols.data());
  std::vector<float> back(img.size(), 0.0f);
  col2im(cols.data(), 2, 4, 4, 2, 2, 2, 0, back.data());
  for (size_t i = 0; i < img.size(); ++i) EXPECT_FLOAT_EQ(back[i], img[i]);
}

}  // namespace
}  // namespace qsnc::nn
