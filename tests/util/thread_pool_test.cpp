// Unit tests of the work-stealing pool: coverage, grain partitioning,
// nesting, exception propagation, and reconfiguration.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace qsnc::util {
namespace {

// Restores the global pool size after each test so thread-count choices
// cannot leak into other tests in this binary.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = num_threads(); }
  void TearDown() override { set_num_threads(original_); }
  int original_ = 1;
};

TEST_F(ThreadPoolTest, ZeroLengthRangeNeverInvokes) {
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  parallel_for(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  set_num_threads(8);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kN, 64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_F(ThreadPoolTest, ChunkBoundariesFollowGrainNotThreadCount) {
  // Same range, same grain, different pool sizes: identical chunk set.
  auto chunks_at = [&](int threads) {
    set_num_threads(threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    parallel_for(3, 103, 10, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  const auto at2 = chunks_at(2);
  const auto at8 = chunks_at(8);
  EXPECT_EQ(at2, at8);
  EXPECT_EQ(at2.size(), 10u);
  EXPECT_TRUE(at2.count({3, 13}) == 1);
  EXPECT_TRUE(at2.count({93, 103}) == 1);
}

TEST_F(ThreadPoolTest, SerialPoolRunsInlineAsOneChunk) {
  set_num_threads(1);
  std::vector<std::pair<int64_t, int64_t>> calls;
  parallel_for(0, 100, 10, [&](int64_t b, int64_t e) {
    calls.emplace_back(b, e);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<int64_t, int64_t>{0, 100}));
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInlineAndCompletes) {
  set_num_threads(4);
  std::atomic<int64_t> total{0};
  parallel_for(0, 16, 1, [&](int64_t b, int64_t e) {
    EXPECT_FALSE(b == e);
    // Inner call from inside a distributed task must execute inline
    // (single chunk, same thread) instead of re-entering the pool.
    for (int64_t i = b; i < e; ++i) {
      std::atomic<int> inner_calls{0};
      int64_t inner_sum = 0;
      parallel_for(0, 100, 10, [&](int64_t ib, int64_t ie) {
        ++inner_calls;
        for (int64_t j = ib; j < ie; ++j) inner_sum += j;
      });
      if (ThreadPool::in_parallel_region()) {
        EXPECT_EQ(inner_calls.load(), 1);
      }
      EXPECT_EQ(inner_sum, 4950);
      total += inner_sum;
    }
  });
  EXPECT_EQ(total.load(), 16 * 4950);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 64, 1,
                   [&](int64_t b, int64_t) {
                     if (b == 33) throw std::runtime_error("chunk 33");
                   }),
      std::runtime_error);
  // The pool must stay serviceable after a failed job.
  std::atomic<int64_t> sum{0};
  parallel_for(0, 1000, 10, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 499500);
}

TEST_F(ThreadPoolTest, SetThreadsReconfigures) {
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  set_num_threads(8);
  EXPECT_EQ(num_threads(), 8);
  set_num_threads(0);  // clamped
  EXPECT_EQ(num_threads(), 1);
}

TEST_F(ThreadPoolTest, ManySmallJobsDrainCleanly) {
  set_num_threads(8);
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<int64_t> sum{0};
    parallel_for(0, 64, 4, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum += i;
    });
    ASSERT_EQ(sum.load(), 2016);
  }
}

TEST_F(ThreadPoolTest, DefaultThreadsHonorsEnvFormat) {
  // default_threads() is pinned by QSNC_THREADS when valid; here we only
  // assert it always reports at least one thread.
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

}  // namespace
}  // namespace qsnc::util
