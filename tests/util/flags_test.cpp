#include "util/flags.h"

#include <gtest/gtest.h>

namespace qsnc::util {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

Flags make_with_bools(std::vector<const char*> args,
                      const std::vector<std::string>& boolean_keys) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data(), boolean_keys);
}

TEST(FlagsTest, KeyValuePairs) {
  Flags f = make({"--model", "lenet", "--epochs", "12"});
  EXPECT_EQ(f.get("model", ""), "lenet");
  EXPECT_EQ(f.get_int("epochs", 0), 12);
}

TEST(FlagsTest, EqualsForm) {
  Flags f = make({"--model=resnet", "--lr=0.01"});
  EXPECT_EQ(f.get("model", ""), "resnet");
  EXPECT_DOUBLE_EQ(f.get_double("lr", 0.0), 0.01);
}

TEST(FlagsTest, BareBoolean) {
  Flags f = make({"--verbose", "--nc"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.get_bool("nc", false));
  EXPECT_FALSE(f.get_bool("absent", false));
}

TEST(FlagsTest, BooleanExplicitValues) {
  Flags f = make({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(FlagsTest, BooleanFollowedByFlagStaysBoolean) {
  Flags f = make({"--verbose", "--epochs", "3"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("epochs", 0), 3);
}

TEST(FlagsTest, NegativeNumberAsValue) {
  Flags f = make({"--offset", "-0.5"});
  EXPECT_DOUBLE_EQ(f.get_double("offset", 0.0), -0.5);
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = make({"train", "--epochs=2", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "train");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags f = make({});
  EXPECT_EQ(f.get("x", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
}

TEST(FlagsTest, MalformedThrows) {
  EXPECT_THROW(make({"-x"}), std::invalid_argument);
  EXPECT_THROW(make({"--"}), std::invalid_argument);
  Flags f = make({"--n=abc"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  Flags g = make({"--n=1.5x"});
  EXPECT_THROW(g.get_double("n", 0), std::invalid_argument);
  Flags h = make({"--n=maybe"});
  EXPECT_THROW(h.get_bool("n", false), std::invalid_argument);
}

// Historical (undeclared-flag) behavior, kept on purpose: a bare flag
// greedily eats a following non-flag token as its value, so the
// positional disappears and get_bool throws on the stolen value. Tools
// with boolean flags must declare them (next test).
TEST(FlagsTest, UndeclaredBareFlagEatsFollowingPositional) {
  Flags f = make({"serve", "--verbose", "mymodel"});
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "serve");
  EXPECT_EQ(f.get("verbose", ""), "mymodel");
  EXPECT_THROW(f.get_bool("verbose", false), std::invalid_argument);
}

TEST(FlagsTest, DeclaredBooleanKeepsFollowingPositional) {
  Flags f = make_with_bools({"serve", "--verbose", "mymodel"}, {"verbose"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "serve");
  EXPECT_EQ(f.positional()[1], "mymodel");
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(FlagsTest, DeclaredBooleanStillConsumesBooleanSpellings) {
  Flags f = make_with_bools({"--verbose", "false", "mymodel"}, {"verbose"});
  EXPECT_FALSE(f.get_bool("verbose", true));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "mymodel");

  Flags g = make_with_bools({"--verbose", "1"}, {"verbose"});
  EXPECT_TRUE(g.get_bool("verbose", false));

  Flags h = make_with_bools({"--verbose", "0"}, {"verbose"});
  EXPECT_FALSE(h.get_bool("verbose", true));
}

TEST(FlagsTest, DeclaredBooleanEqualsFormUnchanged) {
  Flags f = make_with_bools({"--verbose=false", "mymodel"}, {"verbose"});
  EXPECT_FALSE(f.get_bool("verbose", true));
  ASSERT_EQ(f.positional().size(), 1u);
}

TEST(FlagsTest, DeclaredBooleanAtEndOfArgv) {
  Flags f = make_with_bools({"serve", "--verbose"}, {"verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
}

TEST(FlagsTest, UnusedTracksUntouchedKeys) {
  Flags f = make({"--used=1", "--typo=2"});
  EXPECT_EQ(f.get_int("used", 0), 1);
  const std::vector<std::string> unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, HasMarksTouched) {
  Flags f = make({"--k=v"});
  EXPECT_TRUE(f.has("k"));
  EXPECT_TRUE(f.unused().empty());
}

}  // namespace
}  // namespace qsnc::util
