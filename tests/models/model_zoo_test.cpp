#include "models/model_zoo.h"

#include <gtest/gtest.h>

#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"

namespace qsnc::models {
namespace {

struct LayerCounts {
  int conv = 0;
  int fc = 0;
};

LayerCounts count_layers(nn::Network& net) {
  LayerCounts counts;
  for (size_t i = 0; i < net.size(); ++i) {
    nn::visit_layers(&net.layer(i), [&counts](nn::Layer* l) {
      if (dynamic_cast<nn::Conv2d*>(l) != nullptr) ++counts.conv;
      if (dynamic_cast<nn::Dense*>(l) != nullptr) ++counts.fc;
    });
  }
  return counts;
}

TEST(ModelZooTest, LenetMatchesTable1Structure) {
  nn::Rng rng(1);
  nn::Network net = make_lenet(rng);
  const LayerCounts c = count_layers(net);
  EXPECT_EQ(c.conv, 2);
  EXPECT_EQ(c.fc, 2);
  // Table 1: ~7e3 weights.
  EXPECT_NEAR(static_cast<double>(net.num_weights()), 7e3, 1e3);
}

TEST(ModelZooTest, LenetForwardShape) {
  nn::Rng rng(1);
  nn::Network net = make_lenet(rng);
  nn::Tensor x({2, 1, 28, 28});
  EXPECT_EQ(net.forward(x).shape(), (nn::Shape{2, 10}));
}

TEST(ModelZooTest, AlexnetMatchesTable1Structure) {
  nn::Rng rng(1);
  nn::Network net = make_alexnet(rng);
  const LayerCounts c = count_layers(net);
  EXPECT_EQ(c.conv, 5);  // 1x 5x5 + 4x 3x3
  EXPECT_EQ(c.fc, 3);
  // Table 1: ~3.4e5 weights.
  EXPECT_NEAR(static_cast<double>(net.num_weights()), 3.4e5, 0.6e5);
}

TEST(ModelZooTest, AlexnetForwardShape) {
  nn::Rng rng(1);
  nn::Network net = make_alexnet(rng);
  nn::Tensor x({1, 3, 32, 32});
  EXPECT_EQ(net.forward(x).shape(), (nn::Shape{1, 10}));
}

TEST(ModelZooTest, AlexnetFirstConvIs5x5) {
  nn::Rng rng(1);
  nn::Network net = make_alexnet(rng);
  auto* conv = dynamic_cast<nn::Conv2d*>(&net.layer(0));
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->kernel(), 5);
}

TEST(ModelZooTest, ResnetMatchesTable1Structure) {
  nn::Rng rng(1);
  nn::Network net = make_resnet(rng);
  const LayerCounts c = count_layers(net);
  EXPECT_EQ(c.conv, 17);  // option-A shortcuts: no projection convs
  EXPECT_EQ(c.fc, 1);
  // Table 1: ~1.2e7 weights (ResNet-18 CIFAR shape gives ~1.1e7).
  EXPECT_NEAR(static_cast<double>(net.num_weights()), 1.2e7, 0.15e7);
}

TEST(ModelZooTest, ResnetMiniSameStructureFewerWeights) {
  nn::Rng rng(1);
  nn::Network mini = make_resnet_mini(rng);
  const LayerCounts c = count_layers(mini);
  EXPECT_EQ(c.conv, 17);
  EXPECT_EQ(c.fc, 1);
  nn::Rng rng2(1);
  nn::Network full = make_resnet(rng2);
  EXPECT_LT(mini.num_weights(), full.num_weights() / 50);
}

TEST(ModelZooTest, ResnetMiniForwardShape) {
  nn::Rng rng(1);
  nn::Network net = make_resnet_mini(rng);
  nn::Tensor x({2, 3, 32, 32});
  EXPECT_EQ(net.forward(x, true).shape(), (nn::Shape{2, 10}));
}

TEST(ModelZooTest, AlexnetMiniSameStructure) {
  nn::Rng rng(1);
  nn::Network mini = make_alexnet_mini(rng);
  const LayerCounts c = count_layers(mini);
  EXPECT_EQ(c.conv, 5);
  EXPECT_EQ(c.fc, 3);
  nn::Tensor x({1, 3, 32, 32});
  EXPECT_EQ(mini.forward(x).shape(), (nn::Shape{1, 10}));
}

TEST(ModelZooTest, SpecsMatchPaperTable1) {
  EXPECT_EQ(lenet_spec().dataset, "MNIST");
  EXPECT_EQ(lenet_spec().conv_layers, 2);
  EXPECT_EQ(lenet_spec().fc_layers, 2);
  EXPECT_EQ(alexnet_spec().conv_layers, 5);
  EXPECT_EQ(alexnet_spec().fc_layers, 3);
  EXPECT_EQ(resnet_spec().conv_layers, 17);
  EXPECT_EQ(resnet_spec().fc_layers, 1);
  EXPECT_EQ(alexnet_spec().input_shape, (nn::Shape{3, 32, 32}));
}

TEST(ModelZooTest, DeterministicInitForSeed) {
  nn::Rng a(7), b(7);
  nn::Network na = make_lenet(a);
  nn::Network nb = make_lenet(b);
  auto pa = na.params(), pb = nb.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.allclose(pb[i]->value));
  }
}

}  // namespace
}  // namespace qsnc::models
