// Supervisor unit coverage: the CrashLoopTracker state machine over a
// synthetic clock (backoff growth, healthy reset, the exact sliding
// window quarantine boundary, release), spec parsing, and the real
// Supervisor's drain-before-kill discipline over forked children.
//
// The Supervisor tests fork() real children, so this suite must stay out
// of the tsan build (the fleet_chaos_test precedent).
#include "supervise/crash_loop.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/backoff.h"
#include "supervise/spec.h"
#include "supervise/supervisor.h"

namespace qsnc::supervise {
namespace {

constexpr int64_t kSec = 1'000'000;

CrashLoopOptions test_options() {
  CrashLoopOptions options;
  options.backoff = serve::BackoffConfig{/*base_us=*/100000,
                                         /*max_us=*/5'000'000,
                                         /*multiplier=*/2.0, /*seed=*/1};
  options.quarantine_exits = 3;
  options.window_us = 10 * kSec;
  options.healthy_reset_us = 5 * kSec;
  return options;
}

TEST(CrashLoopTrackerTest, BackoffGrowsPerConsecutiveCrash) {
  CrashLoopOptions options = test_options();
  options.quarantine_exits = 100;  // stay out of quarantine here
  CrashLoopTracker tracker(options);
  const serve::Backoff backoff(options.backoff);

  int64_t now = 0;
  std::vector<int64_t> delays;
  for (int i = 0; i < 4; ++i) {
    tracker.on_start(now);
    now += 1;  // instant crash
    const auto restart_at = tracker.on_exit(now, "exit 1");
    ASSERT_TRUE(restart_at.has_value());
    delays.push_back(*restart_at - now);
    // The delay is exactly the shared backoff schedule at this attempt.
    EXPECT_EQ(*restart_at - now,
              static_cast<int64_t>(backoff.delay_us(i)))
        << "attempt " << i;
    now = *restart_at;
  }
  // Exponential: each consecutive crash waits longer than the last
  // (jitter is within [0.5, 1.0) of a doubling curve, so strict growth
  // holds for the first few attempts of this config).
  EXPECT_GT(delays[1], delays[0]);
  EXPECT_GT(delays[2], delays[1]);
}

TEST(CrashLoopTrackerTest, HealthyRunResetsTheAttemptCounter) {
  CrashLoopOptions options = test_options();
  options.quarantine_exits = 100;
  CrashLoopTracker tracker(options);
  const serve::Backoff backoff(options.backoff);

  int64_t now = 0;
  tracker.on_start(now);
  now += 1;
  tracker.on_exit(now, "exit 1");
  tracker.on_start(now);
  now += 1;
  tracker.on_exit(now, "exit 1");
  EXPECT_EQ(tracker.attempt(), 2);

  // A run that stays up past healthy_reset_us forgets the streak: the
  // next crash restarts on the attempt-0 delay again.
  tracker.on_start(now);
  now += options.healthy_reset_us + kSec;
  const auto restart_at = tracker.on_exit(now, "signal 9");
  ASSERT_TRUE(restart_at.has_value());
  EXPECT_EQ(*restart_at - now, static_cast<int64_t>(backoff.delay_us(0)));
  EXPECT_EQ(tracker.attempt(), 1);
}

TEST(CrashLoopTrackerTest, QuarantineTripsExactlyAtTheWindowBoundary) {
  // quarantine_exits = 3 in a 10 s window. Two exits at t=0s and t=1s,
  // then a third: inside the window it quarantines, outside it does not.
  {
    CrashLoopTracker tracker(test_options());
    tracker.on_start(0);
    tracker.on_exit(0, "exit 1");
    tracker.on_start(0);
    tracker.on_exit(1 * kSec, "exit 1");
    tracker.on_start(1 * kSec);
    // Third exit just inside the window: the t=0 exit still counts, so
    // this quarantines.
    const auto restart_at = tracker.on_exit(10 * kSec - 1, "exit 1");
    EXPECT_FALSE(restart_at.has_value());
    EXPECT_TRUE(tracker.quarantined());
    EXPECT_NE(tracker.quarantine_reason().find("3 exit(s)"),
              std::string::npos)
        << tracker.quarantine_reason();
    EXPECT_NE(tracker.quarantine_reason().find("exit 1"), std::string::npos)
        << tracker.quarantine_reason();
    // Once quarantined, further exits never schedule a restart.
    EXPECT_FALSE(tracker.on_exit(20 * kSec, "exit 1").has_value());
  }
  {
    CrashLoopTracker tracker(test_options());
    tracker.on_start(0);
    tracker.on_exit(0, "exit 1");
    tracker.on_start(0);
    tracker.on_exit(1 * kSec, "exit 1");
    tracker.on_start(1 * kSec);
    // Third exit exactly window_us after the first: the t=0 exit has
    // aged out (the window is a half-open interval), only two exits
    // remain — backoff, not quarantine.
    const auto restart_at = tracker.on_exit(10 * kSec, "exit 1");
    EXPECT_TRUE(restart_at.has_value());
    EXPECT_FALSE(tracker.quarantined());
  }
}

TEST(CrashLoopTrackerTest, ReleaseClearsQuarantineAndHistory) {
  CrashLoopTracker tracker(test_options());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) {
    tracker.on_start(now);
    now += 1;
    tracker.on_exit(now, "exit 1");
  }
  ASSERT_TRUE(tracker.quarantined());

  tracker.release();
  EXPECT_FALSE(tracker.quarantined());
  EXPECT_TRUE(tracker.quarantine_reason().empty());
  EXPECT_EQ(tracker.attempt(), 0);

  // The exit history is forgotten: it takes a fresh quarantine_exits
  // crashes to trip again.
  tracker.on_start(now);
  now += 1;
  EXPECT_TRUE(tracker.on_exit(now, "exit 1").has_value());
  EXPECT_FALSE(tracker.quarantined());
}

// ---------------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------------

TEST(SupervisorSpecTest, ParsesLanesCommentsAndBlanks) {
  const SupervisorSpec spec = parse_supervisor_spec(
      "# fleet of two\n"
      "\n"
      "lane backend-a = ./qsnc serve --listen tcp:127.0.0.1:7101\n"
      "lane backend-b = /bin/sleep 30\n");
  ASSERT_EQ(spec.lanes.size(), 2u);
  EXPECT_EQ(spec.lanes[0].name, "backend-a");
  ASSERT_EQ(spec.lanes[0].argv.size(), 4u);
  EXPECT_EQ(spec.lanes[0].argv[0], "./qsnc");
  EXPECT_EQ(spec.lanes[0].argv[3], "tcp:127.0.0.1:7101");
  EXPECT_EQ(spec.lanes[1].name, "backend-b");
  ASSERT_EQ(spec.lanes[1].argv.size(), 2u);
}

TEST(SupervisorSpecTest, MalformedLinesThrowWithLineNumbers) {
  EXPECT_THROW(parse_supervisor_spec("not a lane line\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_supervisor_spec("lane nameonly\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_supervisor_spec("lane empty =\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_supervisor_spec("lane a = /bin/true\n"
                                     "lane a = /bin/false\n"),
               std::invalid_argument);
  try {
    parse_supervisor_spec("lane ok = /bin/true\nbogus\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(load_supervisor_spec("/nonexistent/qsnc-spec"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Real children: restart, quarantine, drain ordering.
// ---------------------------------------------------------------------------

SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.crash_loop.backoff =
      serve::BackoffConfig{/*base_us=*/20000, /*max_us=*/100000,
                          /*multiplier=*/2.0, /*seed=*/1};
  options.crash_loop.quarantine_exits = 3;
  options.crash_loop.window_us = 30 * kSec;
  options.crash_loop.healthy_reset_us = 10 * kSec;
  options.drain_timeout_ms = 300;
  options.poll_interval_ms = 5;
  return options;
}

LaneStatus wait_for_state(Supervisor& supervisor, const std::string& lane,
                          const std::string& state, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  LaneStatus last;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const LaneStatus& s : supervisor.status()) {
      if (s.name == lane) last = s;
    }
    if (last.state == state) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return last;
}

TEST(SupervisorTest, CrashLoopingLaneIsQuarantinedAndReleasable) {
  SupervisorSpec spec =
      parse_supervisor_spec("lane crasher = /bin/false\n");
  Supervisor supervisor(spec, fast_options());
  supervisor.start();

  const LaneStatus quarantined =
      wait_for_state(supervisor, "crasher", "quarantined");
  EXPECT_EQ(quarantined.state, "quarantined");
  EXPECT_EQ(quarantined.pid, -1);
  EXPECT_NE(quarantined.quarantine_reason.find("crash loop"),
            std::string::npos)
      << quarantined.quarantine_reason;
  EXPECT_EQ(quarantined.last_exit, "exit 1");
  EXPECT_GE(quarantined.restarts, 2);  // 3 exits = 2 restarts before trip

  // The status table carries the structured reason.
  EXPECT_NE(supervisor.status_report().find("crash loop"),
            std::string::npos)
      << supervisor.status_report();

  // release() revives it; /bin/false crash-loops straight back into
  // quarantine, proving the fresh window is armed.
  std::string message;
  EXPECT_TRUE(supervisor.release("crasher", &message));
  const LaneStatus again =
      wait_for_state(supervisor, "crasher", "quarantined");
  EXPECT_EQ(again.state, "quarantined");
  EXPECT_GT(again.restarts, quarantined.restarts);

  // Release of unknown / non-quarantined lanes refuses with a message.
  EXPECT_FALSE(supervisor.release("ghost", &message));
  EXPECT_FALSE(message.empty());
  supervisor.stop();
}

TEST(SupervisorTest, SigtermDrainBeatsSigkillForCooperativeChildren) {
  // sleep(1) exits on SIGTERM by default: stop() must record a signal 15
  // death, never an escalated signal 9.
  SupervisorSpec spec =
      parse_supervisor_spec("lane sleeper = /bin/sleep 30\n");
  Supervisor supervisor(spec, fast_options());
  supervisor.start();
  const LaneStatus running = wait_for_state(supervisor, "sleeper", "running");
  ASSERT_EQ(running.state, "running");
  ASSERT_GT(running.pid, 0);

  supervisor.stop();
  const std::vector<LaneStatus> status = supervisor.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, "stopped");
  EXPECT_EQ(status[0].pid, -1);
  EXPECT_EQ(status[0].last_exit, "signal 15");
  // The child is really gone (its pid no longer accepts signal 0, or is
  // a reaped zombie we cannot address).
  EXPECT_NE(::kill(running.pid, 0), 0);
}

TEST(SupervisorTest, StubbornChildEscalatesToSigkillAfterDrainTimeout) {
  // A shell trapping SIGTERM and sleeping on: only SIGKILL ends it, and
  // only after the drain budget expires. The spec parser whitespace-splits
  // argv (no quoting), so this lane is built directly.
  SupervisorSpec spec;
  spec.lanes.push_back(
      {"stubborn",
       {"/bin/sh", "-c", "trap '' TERM; while :; do sleep 0.05; done"}});
  Supervisor supervisor(spec, fast_options());
  supervisor.start();
  const LaneStatus running =
      wait_for_state(supervisor, "stubborn", "running");
  ASSERT_EQ(running.state, "running");

  const auto t0 = std::chrono::steady_clock::now();
  supervisor.stop();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const std::vector<LaneStatus> status = supervisor.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, "stopped");
  EXPECT_EQ(status[0].last_exit, "signal 9");
  // The SIGTERM grace period was actually honored before escalation.
  EXPECT_GE(elapsed_ms, fast_options().drain_timeout_ms);
}

TEST(SupervisorTest, StartTwiceThrowsAndStopIsIdempotent) {
  SupervisorSpec spec = parse_supervisor_spec("lane t = /bin/sleep 30\n");
  Supervisor supervisor(spec, fast_options());
  supervisor.start();
  EXPECT_THROW(supervisor.start(), std::runtime_error);
  supervisor.stop();
  supervisor.stop();  // idempotent
}

}  // namespace
}  // namespace qsnc::supervise
