// Fleet self-healing end to end: a real Supervisor running the real
// `qsnc` binary (env QSNC_BIN, wired by CMake) as a journaled serving
// lane. SIGKILL the backend three times under live traffic and the
// contract is: every request eventually resolves kOk (zero drops), and
// the hot-loaded version comes back bit-exact after every restart —
// rebuilt purely from the state journal, since the boot flags never
// mention it. A second test drives the crash-loop quarantine + release
// verbs over the protocol v6 control endpoint.
//
// fork()+exec from a threaded parent is safe (unlike the in-child
// servers of fleet_chaos_test), but the children are real processes, so
// this suite also stays out of the tsan build.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "nn/tensor.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "supervise/supervisor.h"

namespace qsnc::supervise {
namespace {

using serve::Response;
using serve::Status;

/// Reserves a free TCP port by binding an ephemeral socket, reading the
/// kernel's choice, and closing it. The supervised child rebinds the same
/// port on every restart (an ephemeral port would move).
uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

nn::Tensor test_image(uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor t({1, 28, 28});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(0.0f, 1.0f);
  return t;
}

SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.crash_loop.backoff =
      serve::BackoffConfig{/*base_us=*/20000, /*max_us=*/200000,
                          /*multiplier=*/2.0, /*seed=*/1};
  options.crash_loop.quarantine_exits = 3;
  options.crash_loop.window_us = 30'000'000;
  options.drain_timeout_ms = 3000;
  options.poll_interval_ms = 5;
  return options;
}

bool wait_until_serving(const std::string& endpoint, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      serve::SocketClient probe(endpoint);
      if (probe.probe().healthy) return true;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

TEST(SupervisorE2ETest, TripleSigkillUnderLoadZeroDropsJournalReconciled) {
  const char* bin = std::getenv("QSNC_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "QSNC_BIN not set (run via ctest)";
  }
  const uint16_t port = free_port();
  ASSERT_GT(port, 0);
  const std::string endpoint = "tcp:127.0.0.1:" + std::to_string(port);
  const std::string journal_path =
      (std::filesystem::temp_directory_path() /
       ("qsnc_e2e_" + std::to_string(::getpid()) + ".jrnl"))
          .string();
  std::filesystem::remove(journal_path);

  SupervisorSpec spec;
  spec.lanes.push_back(
      {"backend",
       {bin, "serve", "--listen", endpoint, "--model", "lenet-mini",
        "--seed", "5", "--max-batch", "4", "--batch-timeout-us", "500",
        "--journal", journal_path, "--threads", "2"}});
  SupervisorOptions options = fast_options();
  // Three SIGKILLs are deliberate surgery, not a crash loop: keep the
  // quarantine threshold out of the way for this test.
  options.crash_loop.quarantine_exits = 20;
  Supervisor supervisor(spec, options);
  supervisor.start();
  ASSERT_TRUE(wait_until_serving(endpoint, 20000))
      << "supervised backend never came up";

  // Hot-load a second base over the wire: it exists *only* in the
  // journal — the boot flags rebuild lenet-mini, never tiny.
  {
    serve::SocketClient control(endpoint);
    serve::LoadVersionRequest load;
    load.name = "tiny@v1";
    load.architecture = "lenet-mini";
    load.backend_kind = "fp32";
    load.init_seed = 9;
    const serve::RolloutReply loaded = control.load_version(load);
    ASSERT_TRUE(loaded.ok) << loaded.message;
  }

  // In-process references for bit-exactness (same seeds, same configs).
  serve::ModelConfig boot_cfg;
  boot_cfg.architecture = "lenet-mini";
  boot_cfg.init_seed = 5;
  serve::ModelConfig tiny_cfg;
  tiny_cfg.architecture = "lenet-mini";
  tiny_cfg.init_seed = 9;
  serve::ModelRegistry reference_registry;
  reference_registry.add("lenet-mini", boot_cfg);
  reference_registry.add("tiny", tiny_cfg);
  serve::ServeCore reference(reference_registry, serve::BatchOptions{});

  auto backend_pid = [&]() -> pid_t {
    for (const LaneStatus& s : supervisor.status()) {
      if (s.name == "backend") return s.pid;
    }
    return -1;
  };

  std::unique_ptr<serve::SocketClient> client;
  int kills = 0;
  int dropped = 0;
  uint64_t retries = 0;
  for (int i = 0; i < 30; ++i) {
    if (i == 5 || i == 13 || i == 21) {
      // SIGKILL mid-load: no drain, no journal flush beyond what every
      // acknowledged transition already fsynced.
      const pid_t pid = backend_pid();
      ASSERT_GT(pid, 0) << "backend not running before kill " << kills;
      ::kill(pid, SIGKILL);
      ++kills;
    }
    const std::string model = (i % 2 == 0) ? "lenet-mini" : "tiny";
    const nn::Tensor image = test_image(100 + static_cast<uint64_t>(i));
    const Response expect = reference.infer(model, image);
    ASSERT_EQ(expect.status, Status::kOk) << expect.error;

    bool ok = false;
    for (int attempt = 0; attempt < 400 && !ok; ++attempt) {
      if (attempt > 0) {
        ++retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
      try {
        if (client == nullptr) {
          client = std::make_unique<serve::SocketClient>(endpoint);
        }
        const Response r = client->infer(model, image);
        if (r.status == Status::kOk) {
          // Bit-exact across restarts: "tiny" can only answer like the
          // reference if journal replay rebuilt it from the same
          // (architecture, seed, checkpoint) the pre-crash load had.
          EXPECT_EQ(r.prediction, expect.prediction)
              << model << " request " << i;
          ok = true;
        }
      } catch (const std::exception&) {
        client.reset();  // connection died (kill window); reconnect
      }
    }
    if (!ok) ++dropped;
  }

  EXPECT_EQ(kills, 3);
  EXPECT_EQ(dropped, 0) << "the zero-drop contract broke under SIGKILL";
  EXPECT_GT(retries, 0u) << "the kills were expected to cost retries";

  // The supervisor really restarted the lane once per kill.
  int restarts = 0;
  for (const LaneStatus& s : supervisor.status()) {
    if (s.name == "backend") restarts = s.restarts;
  }
  EXPECT_GE(restarts, 3);

  supervisor.stop();
  // Stopped supervisor leaves no child behind: the port closes.
  EXPECT_FALSE(wait_until_serving(endpoint, 200));
  std::filesystem::remove(journal_path);
}

TEST(SupervisorE2ETest, QuarantineAndReleaseOverControlEndpoint) {
  SupervisorSpec spec;
  spec.lanes.push_back({"crasher", {"/bin/false"}});
  Supervisor supervisor(spec, fast_options());
  supervisor.start();

  SupervisorFrameHandler handler(supervisor);
  serve::SocketServer control(handler,
                              serve::parse_endpoint("tcp:127.0.0.1:0"));
  serve::SocketClient client(control.endpoint());

  // /bin/false crash-loops into quarantine within a few fast backoffs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool quarantined = false;
  while (!quarantined && std::chrono::steady_clock::now() < deadline) {
    for (const LaneStatus& s : supervisor.status()) {
      if (s.name == "crasher" && s.state == "quarantined") {
        quarantined = true;
      }
    }
    if (!quarantined) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(quarantined);

  // The standard probes work against a supervisor control endpoint.
  EXPECT_TRUE(client.probe().healthy);
  EXPECT_NE(client.stats().find("crasher"), std::string::npos);

  // status verb: the structured quarantine reason crosses the wire.
  const serve::RolloutReply status = client.supervise("status");
  EXPECT_TRUE(status.ok) << status.message;
  EXPECT_NE(status.message.find("quarantined"), std::string::npos)
      << status.message;
  EXPECT_NE(status.message.find("crash loop"), std::string::npos)
      << status.message;

  // release verb: refuses unknown lanes, lifts real quarantines.
  const serve::RolloutReply bad = client.supervise("release", "ghost");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.message.find("ghost"), std::string::npos) << bad.message;

  const serve::RolloutReply released = client.supervise("release", "crasher");
  EXPECT_TRUE(released.ok) << released.message;

  // Unknown verbs answer structurally instead of dropping the line.
  const serve::RolloutReply bogus = client.supervise("bogus");
  EXPECT_FALSE(bogus.ok);
  EXPECT_NE(bogus.message.find("unknown supervise verb"), std::string::npos)
      << bogus.message;

  control.stop();
  supervisor.stop();
}

}  // namespace
}  // namespace qsnc::supervise
