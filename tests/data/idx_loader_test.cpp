#include "data/idx_loader.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace qsnc::data {
namespace {

namespace fs = std::filesystem;

// ctest runs each TEST_F as its own process in parallel; a shared fixture
// directory lets one process's TearDown delete another's files mid-test.
// PID + counter makes every test instance's directory unique.
fs::path unique_test_dir() {
  static std::atomic<uint64_t> counter{0};
  return fs::temp_directory_path() /
         ("qsnc_idx_test-" + std::to_string(::getpid()) + "-" +
          std::to_string(counter.fetch_add(1)));
}

void write_be32(std::ofstream& f, uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                              static_cast<unsigned char>(v >> 16),
                              static_cast<unsigned char>(v >> 8),
                              static_cast<unsigned char>(v)};
  f.write(reinterpret_cast<const char*>(b), 4);
}

class IdxLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = unique_test_dir();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_mnist_pair(uint32_t n) {
    std::ofstream img(dir_ / "t10k-images-idx3-ubyte", std::ios::binary);
    write_be32(img, 0x803);
    write_be32(img, n);
    write_be32(img, 28);
    write_be32(img, 28);
    for (uint32_t i = 0; i < n * 28 * 28; ++i) {
      const unsigned char px = static_cast<unsigned char>(i % 256);
      img.write(reinterpret_cast<const char*>(&px), 1);
    }
    std::ofstream lbl(dir_ / "t10k-labels-idx1-ubyte", std::ios::binary);
    write_be32(lbl, 0x801);
    write_be32(lbl, n);
    for (uint32_t i = 0; i < n; ++i) {
      const unsigned char y = static_cast<unsigned char>(i % 10);
      lbl.write(reinterpret_cast<const char*>(&y), 1);
    }
  }

  fs::path dir_;
};

TEST_F(IdxLoaderTest, MissingFilesReturnNullopt) {
  EXPECT_FALSE(try_load_mnist(dir_.string(), false).has_value());
  EXPECT_FALSE(try_load_mnist(dir_.string(), true).has_value());
  EXPECT_FALSE(try_load_cifar10(dir_.string(), false).has_value());
}

TEST_F(IdxLoaderTest, LoadsValidMnist) {
  write_mnist_pair(6);
  auto ds = try_load_mnist(dir_.string(), false);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ((*ds)->size(), 6);
  EXPECT_EQ((*ds)->image_shape(), (Shape{1, 28, 28}));
  EXPECT_EQ((*ds)->get(3).label, 3);
  // Pixel 1 of image 0 is raw value 1 -> 1/255.
  EXPECT_NEAR((*ds)->get(0).image[1], 1.0f / 255.0f, 1e-6f);
}

TEST_F(IdxLoaderTest, BadMagicThrows) {
  write_mnist_pair(2);
  {
    std::ofstream img(dir_ / "t10k-images-idx3-ubyte", std::ios::binary);
    write_be32(img, 0xdead);
    write_be32(img, 2);
    write_be32(img, 28);
    write_be32(img, 28);
  }
  EXPECT_THROW(try_load_mnist(dir_.string(), false), std::runtime_error);
}

TEST_F(IdxLoaderTest, LoadsValidCifarTestBatch) {
  {
    std::ofstream f(dir_ / "test_batch.bin", std::ios::binary);
    for (int i = 0; i < 10000; ++i) {
      unsigned char rec[1 + 3 * 32 * 32];
      rec[0] = static_cast<unsigned char>(i % 10);
      for (size_t j = 1; j < sizeof(rec); ++j) {
        rec[j] = static_cast<unsigned char>((i + j) % 256);
      }
      f.write(reinterpret_cast<const char*>(rec), sizeof(rec));
    }
  }
  auto ds = try_load_cifar10(dir_.string(), false);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ((*ds)->size(), 10000);
  EXPECT_EQ((*ds)->image_shape(), (Shape{3, 32, 32}));
  EXPECT_EQ((*ds)->get(7).label, 7);
}

TEST_F(IdxLoaderTest, TruncatedCifarThrows) {
  {
    std::ofstream f(dir_ / "test_batch.bin", std::ios::binary);
    f << "short";
  }
  EXPECT_THROW(try_load_cifar10(dir_.string(), false), std::runtime_error);
}

}  // namespace
}  // namespace qsnc::data
