#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic_cifar.h"
#include "data/synthetic_mnist.h"

namespace qsnc::data {
namespace {

TEST(SyntheticMnistTest, ShapeAndRange) {
  SyntheticMnistConfig cfg;
  cfg.num_samples = 50;
  auto ds = make_synthetic_mnist(cfg);
  EXPECT_EQ(ds->size(), 50);
  EXPECT_EQ(ds->image_shape(), (Shape{1, 28, 28}));
  EXPECT_EQ(ds->num_classes(), 10);
  const Tensor& imgs = ds->images();
  EXPECT_GE(imgs.min(), 0.0f);
  EXPECT_LE(imgs.max(), 1.0f);
}

TEST(SyntheticMnistTest, RoundRobinLabels) {
  SyntheticMnistConfig cfg;
  cfg.num_samples = 25;
  auto ds = make_synthetic_mnist(cfg);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(ds->get(i).label, i % 10);
  }
}

TEST(SyntheticMnistTest, DeterministicForSeed) {
  SyntheticMnistConfig cfg;
  cfg.num_samples = 20;
  cfg.seed = 5;
  auto a = make_synthetic_mnist(cfg);
  auto b = make_synthetic_mnist(cfg);
  EXPECT_TRUE(a->images().allclose(b->images()));
}

TEST(SyntheticMnistTest, DifferentSeedsDiffer) {
  SyntheticMnistConfig a_cfg, b_cfg;
  a_cfg.num_samples = b_cfg.num_samples = 20;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  auto a = make_synthetic_mnist(a_cfg);
  auto b = make_synthetic_mnist(b_cfg);
  EXPECT_FALSE(a->images().allclose(b->images()));
}

TEST(SyntheticMnistTest, DigitsHaveInk) {
  nn::Rng rng(3);
  SyntheticMnistConfig cfg;
  for (int64_t d = 0; d < 10; ++d) {
    const Tensor img = render_digit(d, rng, cfg);
    // Every digit has a visible stroke mass but is far from solid.
    float ink = 0.0f;
    for (int64_t i = 0; i < img.numel(); ++i) ink += img[i] > 0.5f ? 1 : 0;
    EXPECT_GT(ink, 20.0f) << "digit " << d;
    EXPECT_LT(ink, 400.0f) << "digit " << d;
  }
}

TEST(SyntheticMnistTest, ClassesAreVisuallyDistinct) {
  // Mean images of different digits should differ substantially more than
  // two samples of the same digit rendered with different jitter.
  SyntheticMnistConfig cfg;
  cfg.num_samples = 200;
  auto ds = make_synthetic_mnist(cfg);
  std::vector<Tensor> means(10, Tensor({28 * 28}));
  std::vector<int> counts(10, 0);
  for (int64_t i = 0; i < ds->size(); ++i) {
    const Sample s = ds->get(i);
    for (int64_t j = 0; j < 28 * 28; ++j) {
      means[static_cast<size_t>(s.label)][j] += s.image[j];
    }
    ++counts[static_cast<size_t>(s.label)];
  }
  for (int64_t d = 0; d < 10; ++d) {
    means[static_cast<size_t>(d)] *= 1.0f / counts[static_cast<size_t>(d)];
  }
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = a + 1; b < 10; ++b) {
      const float dist =
          (means[static_cast<size_t>(a)] - means[static_cast<size_t>(b)])
              .squared_norm();
      EXPECT_GT(dist, 1.0f) << "digits " << a << " vs " << b;
    }
  }
}

TEST(SyntheticMnistTest, BadConfigThrows) {
  SyntheticMnistConfig cfg;
  cfg.num_samples = 0;
  EXPECT_THROW(make_synthetic_mnist(cfg), std::invalid_argument);
}

TEST(SyntheticCifarTest, ShapeAndRange) {
  SyntheticCifarConfig cfg;
  cfg.num_samples = 40;
  auto ds = make_synthetic_cifar(cfg);
  EXPECT_EQ(ds->size(), 40);
  EXPECT_EQ(ds->image_shape(), (Shape{3, 32, 32}));
  EXPECT_EQ(ds->num_classes(), 10);
  EXPECT_GE(ds->images().min(), 0.0f);
  EXPECT_LE(ds->images().max(), 1.0f);
}

TEST(SyntheticCifarTest, DeterministicForSeed) {
  SyntheticCifarConfig cfg;
  cfg.num_samples = 20;
  auto a = make_synthetic_cifar(cfg);
  auto b = make_synthetic_cifar(cfg);
  EXPECT_TRUE(a->images().allclose(b->images()));
}

TEST(SyntheticCifarTest, AllClassesRenderable) {
  nn::Rng rng(4);
  SyntheticCifarConfig cfg;
  for (int64_t cls = 0; cls < 10; ++cls) {
    const Tensor img = render_cifar_class(cls, rng, cfg);
    EXPECT_EQ(img.shape(), (Shape{3, 32, 32}));
    // Non-degenerate: some within-image variance.
    const float mean = img.mean();
    float var = 0.0f;
    for (int64_t i = 0; i < img.numel(); ++i) {
      var += (img[i] - mean) * (img[i] - mean);
    }
    EXPECT_GT(var / static_cast<float>(img.numel()), 1e-3f)
        << "class " << cls;
  }
  EXPECT_THROW(render_cifar_class(10, rng, cfg), std::invalid_argument);
}

TEST(SyntheticCifarTest, StripesHaveOrientation) {
  // Horizontal stripes vary along y but little along x (per row constant);
  // vertical stripes the other way around. Use noise-free renders.
  nn::Rng rng(5);
  SyntheticCifarConfig cfg;
  cfg.noise_std = 0.0f;
  const Tensor h = render_cifar_class(0, rng, cfg);
  const Tensor v = render_cifar_class(1, rng, cfg);
  auto row_var = [](const Tensor& img) {
    // Mean within-row variance of the red channel.
    float acc = 0.0f;
    for (int64_t y = 0; y < 32; ++y) {
      float mean = 0.0f;
      for (int64_t x = 0; x < 32; ++x) mean += img[y * 32 + x];
      mean /= 32.0f;
      float var = 0.0f;
      for (int64_t x = 0; x < 32; ++x) {
        var += (img[y * 32 + x] - mean) * (img[y * 32 + x] - mean);
      }
      acc += var / 32.0f;
    }
    return acc / 32.0f;
  };
  auto col_var = [](const Tensor& img) {
    float acc = 0.0f;
    for (int64_t x = 0; x < 32; ++x) {
      float mean = 0.0f;
      for (int64_t y = 0; y < 32; ++y) mean += img[y * 32 + x];
      mean /= 32.0f;
      float var = 0.0f;
      for (int64_t y = 0; y < 32; ++y) {
        var += (img[y * 32 + x] - mean) * (img[y * 32 + x] - mean);
      }
      acc += var / 32.0f;
    }
    return acc / 32.0f;
  };
  EXPECT_LT(row_var(h), col_var(h));
  EXPECT_LT(col_var(v), row_var(v));
}

}  // namespace
}  // namespace qsnc::data
