#include "data/dataset.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/batcher.h"

namespace qsnc::data {
namespace {

DatasetPtr make_tiny(int64_t n = 10) {
  Tensor images({n, 1, 2, 2});
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 3;
    for (int64_t j = 0; j < 4; ++j) {
      images[i * 4 + j] = static_cast<float>(i * 4 + j);
    }
  }
  return std::make_shared<InMemoryDataset>("tiny", std::move(images),
                                           std::move(labels), 3);
}

TEST(InMemoryDatasetTest, BasicAccessors) {
  auto ds = make_tiny();
  EXPECT_EQ(ds->size(), 10);
  EXPECT_EQ(ds->num_classes(), 3);
  EXPECT_EQ(ds->name(), "tiny");
  EXPECT_EQ(ds->image_shape(), (Shape{1, 2, 2}));
}

TEST(InMemoryDatasetTest, GetReturnsCorrectSlice) {
  auto ds = make_tiny();
  const Sample s = ds->get(2);
  EXPECT_EQ(s.label, 2);
  EXPECT_EQ(s.image.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(s.image[0], 8.0f);
  EXPECT_FLOAT_EQ(s.image[3], 11.0f);
}

TEST(InMemoryDatasetTest, GetOutOfRangeThrows) {
  auto ds = make_tiny();
  EXPECT_THROW(ds->get(-1), std::out_of_range);
  EXPECT_THROW(ds->get(10), std::out_of_range);
}

TEST(InMemoryDatasetTest, CountMismatchThrows) {
  Tensor images({3, 1, 2, 2});
  EXPECT_THROW(
      InMemoryDataset("bad", images, {0, 1}, 2),
      std::invalid_argument);
}

TEST(InMemoryDatasetTest, LabelOutOfRangeThrows) {
  Tensor images({2, 1, 2, 2});
  EXPECT_THROW(InMemoryDataset("bad", images, {0, 5}, 3),
               std::invalid_argument);
}

TEST(InMemoryDatasetTest, BatchImagesCopiesRange) {
  auto ds = make_tiny();
  Tensor b = ds->batch_images(1, 2);
  EXPECT_EQ(b.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(b[0], 4.0f);
  EXPECT_FLOAT_EQ(b[7], 11.0f);
  EXPECT_THROW(ds->batch_images(9, 2), std::out_of_range);
}

TEST(InMemoryDatasetTest, GatherRespectsIndexOrder) {
  auto ds = make_tiny();
  Tensor g = ds->gather_images({3, 0});
  EXPECT_FLOAT_EQ(g[0], 12.0f);
  EXPECT_FLOAT_EQ(g[4], 0.0f);
  std::vector<int64_t> labels = ds->gather_labels({3, 0});
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_THROW(ds->gather_images({42}), std::out_of_range);
}

TEST(BatcherTest, CoversEpochExactlyOnce) {
  auto ds = make_tiny(10);
  Batcher batcher(ds, 3, 7);
  std::vector<int> seen(10, 0);
  for (int b = 0; b < 4; ++b) {  // 3+3+3+1
    Batch batch = batcher.next();
    for (int64_t i = 0; i < batch.images.dim(0); ++i) {
      // Recover the source index from the first pixel (i*4).
      const int64_t idx = static_cast<int64_t>(batch.images[i * 4]) / 4;
      ++seen[static_cast<size_t>(idx)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(batcher.epoch(), 0);
  batcher.next();  // rolls into epoch 1
  EXPECT_EQ(batcher.epoch(), 1);
}

TEST(BatcherTest, BatchesPerEpochRoundsUp) {
  auto ds = make_tiny(10);
  EXPECT_EQ(Batcher(ds, 3, 1).batches_per_epoch(), 4);
  EXPECT_EQ(Batcher(ds, 5, 1).batches_per_epoch(), 2);
  EXPECT_EQ(Batcher(ds, 16, 1).batches_per_epoch(), 1);
}

TEST(BatcherTest, LabelsTravelWithImages) {
  auto ds = make_tiny(9);
  Batcher batcher(ds, 4, 3);
  for (int b = 0; b < 3; ++b) {
    Batch batch = batcher.next();
    for (int64_t i = 0; i < batch.images.dim(0); ++i) {
      const int64_t idx = static_cast<int64_t>(batch.images[i * 4]) / 4;
      EXPECT_EQ(batch.labels[static_cast<size_t>(i)], idx % 3);
    }
  }
}

TEST(BatcherTest, InvalidArgumentsThrow) {
  auto ds = make_tiny();
  EXPECT_THROW(Batcher(nullptr, 4, 1), std::invalid_argument);
  EXPECT_THROW(Batcher(ds, 0, 1), std::invalid_argument);
}

TEST(BatcherTest, DeterministicForSeed) {
  auto ds = make_tiny(10);
  Batcher a(ds, 4, 99), b(ds, 4, 99);
  for (int i = 0; i < 5; ++i) {
    Batch ba = a.next(), bb = b.next();
    EXPECT_TRUE(ba.images.allclose(bb.images));
    EXPECT_EQ(ba.labels, bb.labels);
  }
}

}  // namespace
}  // namespace qsnc::data
