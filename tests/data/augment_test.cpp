#include "data/augment.h"

#include <gtest/gtest.h>

namespace qsnc::data {
namespace {

// Flat index of (c, y, x) in a [C, 4, 4] image.
constexpr int64_t idx(int64_t c, int64_t y, int64_t x) {
  return (c * 4 + y) * 4 + x;
}

Tensor marker_image() {
  // 1x4x4 with a single bright pixel at (y=1, x=2).
  Tensor img({1, 4, 4});
  img[idx(0, 1, 2)] = 1.0f;
  return img;
}

TEST(AugmenterTest, NoOpConfigLeavesImageUntouched) {
  AugmentConfig cfg;
  cfg.max_shift_px = 0;
  cfg.horizontal_flip = false;
  Augmenter aug(cfg);
  Tensor img = marker_image();
  const Tensor before = img;
  aug.apply_image(&img);
  EXPECT_TRUE(img.allclose(before));
}

TEST(AugmenterTest, MassIsNeverCreated) {
  AugmentConfig cfg;
  cfg.max_shift_px = 2;
  Augmenter aug(cfg);
  for (int trial = 0; trial < 50; ++trial) {
    Tensor img = marker_image();
    aug.apply_image(&img);
    // The marker either survives (sum 1) or shifted out (sum 0).
    EXPECT_TRUE(img.sum() == 0.0f || img.sum() == 1.0f);
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LE(img.max(), 1.0f);
  }
}

TEST(AugmenterTest, ShiftsActuallyMoveContent) {
  AugmentConfig cfg;
  cfg.max_shift_px = 1;
  cfg.horizontal_flip = false;
  Augmenter aug(cfg);
  int moved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Tensor img = marker_image();
    aug.apply_image(&img);
    if (img[idx(0, 1, 2)] != 1.0f) ++moved;
  }
  EXPECT_GT(moved, 10);  // 8/9 shift combos move the marker
}

TEST(AugmenterTest, FlipMirrorsColumns) {
  AugmentConfig cfg;
  cfg.max_shift_px = 0;
  cfg.horizontal_flip = true;
  cfg.seed = 3;
  Augmenter aug(cfg);
  // Run until a flip occurs; the marker at x=2 of width 4 lands at x=1.
  bool saw_flip = false;
  for (int trial = 0; trial < 50 && !saw_flip; ++trial) {
    Tensor img = marker_image();
    aug.apply_image(&img);
    if (img[idx(0, 1, 1)] == 1.0f) saw_flip = true;
  }
  EXPECT_TRUE(saw_flip);
}

TEST(AugmenterTest, BatchAppliesPerImage) {
  AugmentConfig cfg;
  cfg.max_shift_px = 1;
  Augmenter aug(cfg);
  Tensor batch({8, 1, 4, 4});
  for (int64_t i = 0; i < 8; ++i) batch.at(i, 0, 1, 2) = 1.0f;
  aug.apply(&batch);
  // Images are augmented independently: they should not all be identical.
  bool any_differs = false;
  for (int64_t i = 1; i < 8 && !any_differs; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      if (batch[i * 16 + j] != batch[j]) {
        any_differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(AugmenterTest, MultiChannelShiftsTogether) {
  AugmentConfig cfg;
  cfg.max_shift_px = 1;
  cfg.horizontal_flip = false;
  cfg.seed = 9;
  Augmenter aug(cfg);
  Tensor img({3, 4, 4});
  for (int64_t c = 0; c < 3; ++c) img[idx(c, 1, 2)] = 1.0f;
  aug.apply_image(&img);
  // All channels must show the marker at the same location.
  for (int64_t y = 0; y < 4; ++y) {
    for (int64_t x = 0; x < 4; ++x) {
      const float r = img[0 * 16 + y * 4 + x];
      EXPECT_EQ(r, img[1 * 16 + y * 4 + x]);
      EXPECT_EQ(r, img[2 * 16 + y * 4 + x]);
    }
  }
}

TEST(AugmenterTest, BadInputsThrow) {
  Augmenter aug(AugmentConfig{});
  Tensor wrong({4, 4});
  EXPECT_THROW(aug.apply_image(&wrong), std::invalid_argument);
  EXPECT_THROW(aug.apply(&wrong), std::invalid_argument);
  EXPECT_THROW(aug.apply_image(nullptr), std::invalid_argument);
  AugmentConfig bad;
  bad.max_shift_px = -1;
  EXPECT_THROW(Augmenter{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace qsnc::data
