// ModelRegistry + backend correctness: serving through the full
// queue -> batcher -> backend pipeline must return bit-identical
// predictions to the direct execution path for all three backends
// (ISSUE 2 acceptance). The "direct" references rebuild the same network
// from the same seed, replaying exactly the transforms the registry
// applies.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

constexpr uint64_t kSeed = 21;
constexpr int kBits = 4;
constexpr int kImages = 12;

std::vector<nn::Tensor> test_images(const nn::Shape& chw, int n) {
  nn::Rng rng(555);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t(chw);
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

nn::Tensor as_batch(const std::vector<nn::Tensor>& images) {
  const nn::Shape& chw = images[0].shape();
  nn::Tensor batch({static_cast<int64_t>(images.size()), chw[0], chw[1],
                    chw[2]});
  const int64_t numel = images[0].numel();
  for (size_t i = 0; i < images.size(); ++i) {
    std::copy(images[i].data(), images[i].data() + numel,
              batch.data() + static_cast<int64_t>(i) * numel);
  }
  return batch;
}

/// Serves all images concurrently so real multi-request batches form.
std::vector<int64_t> serve_predictions(ServeCore& core,
                                       const std::string& model,
                                       const std::vector<nn::Tensor>& imgs) {
  ServeClient client(core);
  std::vector<std::future<Response>> futures;
  for (const nn::Tensor& img : imgs) {
    futures.push_back(client.infer_async(model, img));
  }
  std::vector<int64_t> out;
  bool saw_multi_batch = false;
  for (auto& f : futures) {
    Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk) << r.error;
    if (r.batch_size > 1) saw_multi_batch = true;
    out.push_back(r.prediction);
  }
  EXPECT_TRUE(saw_multi_batch)
      << "async burst should have produced at least one multi-image batch";
  return out;
}

TEST(RegistryBackendTest, Fp32MatchesDirectForward) {
  ModelRegistry registry;
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kFp32;
  cfg.init_seed = kSeed;
  registry.add("m", cfg);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 20000;  // wide window: the async burst must
                                  // coalesce even under sanitizers
  ServeCore core(registry, opts);

  const auto images = test_images({1, 28, 28}, kImages);
  const std::vector<int64_t> served =
      serve_predictions(core, "m", images);

  // Direct reference: same architecture + seed, scaled input, predict.
  nn::Rng rng(kSeed);
  nn::Network net = models::make_lenet_mini(rng);
  nn::Tensor batch = as_batch(images);
  batch *= 16.0f;
  const std::vector<int64_t> direct = net.predict(batch);
  EXPECT_EQ(served, direct);
}

TEST(RegistryBackendTest, QuantMatchesDirectFakeQuantPath) {
  ModelRegistry registry;
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kQuant;
  cfg.bits = kBits;
  cfg.init_seed = kSeed;
  registry.add("m", cfg);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 20000;  // wide window: the async burst must
                                  // coalesce even under sanitizers
  ServeCore core(registry, opts);

  const auto images = test_images({1, 28, 28}, kImages);
  const std::vector<int64_t> served =
      serve_predictions(core, "m", images);

  // Direct reference: quantizer attached, SNC-style input encoding.
  nn::Rng rng(kSeed);
  nn::Network net = models::make_lenet_mini(rng);
  core::IntegerSignalQuantizer quantizer(kBits);
  net.set_signal_quantizer(&quantizer);
  nn::Tensor batch = as_batch(images);
  const float scale =
      std::min(16.0f, static_cast<float>(core::signal_max(kBits)));
  batch *= scale;
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch[i] = core::quantize_input_signal(batch[i], kBits);
  }
  const std::vector<int64_t> direct = net.predict(batch);
  net.set_signal_quantizer(nullptr);
  EXPECT_EQ(served, direct);
}

TEST(RegistryBackendTest, SncMatchesDirectSpikeInference) {
  ModelRegistry registry;
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kSnc;
  cfg.bits = kBits;
  cfg.init_seed = kSeed;
  cfg.snc_replicas = 2;  // exercise the replica pool
  registry.add("m", cfg);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 20000;  // wide window: the async burst must
                                  // coalesce even under sanitizers
  ServeCore core(registry, opts);

  const auto images = test_images({1, 28, 28}, 6);
  const std::vector<int64_t> served =
      serve_predictions(core, "m", images);

  // Direct reference: fold, cluster, program one SncSystem, infer per
  // image — the deployment recipe from core/bn_folding.h.
  nn::Rng rng(kSeed);
  nn::Network net = models::make_lenet_mini(rng);
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = kBits;
  const auto results = core::apply_weight_clustering(net, wc);
  snc::SncConfig snc_cfg;
  snc_cfg.signal_bits = kBits;
  snc_cfg.weight_bits = kBits;
  snc_cfg.weight_scales.clear();
  for (const auto& r : results) snc_cfg.weight_scales.push_back(r.scale);
  snc_cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(kBits)));
  snc::SncSystem system(net, {1, 28, 28}, snc_cfg);
  std::vector<int64_t> direct;
  for (const nn::Tensor& img : images) direct.push_back(system.infer(img));
  EXPECT_EQ(served, direct);
}

// Batch-native serving (one replica runs the whole window through
// SncSystem::infer_batch) vs the per-image replica fan-out must be
// bit-identical, and both must fold activity stats per image — a batched
// window of 6 images counts as 6 images in activity_totals, not 1.
TEST(RegistryBackendTest, SncBatchNativeMatchesFanOutAndFoldsPerImage) {
  const auto images = test_images({1, 28, 28}, 6);
  std::vector<int64_t> preds[2];
  for (const bool batch_native : {false, true}) {
    ModelRegistry registry;
    ModelConfig cfg;
    cfg.architecture = "lenet-mini";
    cfg.backend = BackendKind::kSnc;
    cfg.bits = kBits;
    cfg.init_seed = kSeed;
    cfg.snc_replicas = 2;
    cfg.snc_batch_native = batch_native;
    registry.add("m", cfg);
    Backend& backend = registry.backend("m");
    preds[batch_native ? 1 : 0] = backend.infer_batch(as_batch(images));

    auto* snc = dynamic_cast<SncBackend*>(&backend);
    ASSERT_NE(snc, nullptr);
    int64_t folded = 0;
    const snc::SncStats totals = snc->activity_totals(&folded);
    EXPECT_EQ(folded, 6);
    EXPECT_FALSE(totals.stage.empty());
    EXPECT_GT(totals.total_spikes, 0);
  }
  EXPECT_EQ(preds[0], preds[1]);
}

TEST(RegistryBackendTest, RegistryValidation) {
  ModelRegistry registry;
  EXPECT_THROW(registry.backend("nope"), std::invalid_argument);
  ModelConfig cfg;
  cfg.architecture = "not-a-model";
  EXPECT_THROW(registry.add("m", cfg), std::invalid_argument);
  cfg.architecture = "lenet-mini";
  registry.add("m", cfg);
  EXPECT_THROW(registry.add("m", cfg), std::invalid_argument);
  EXPECT_TRUE(registry.contains("m"));
  EXPECT_EQ(registry.input_shape("m"), (nn::Shape{1, 28, 28}));
  EXPECT_THROW(parse_backend_kind("tpu"), std::invalid_argument);
}

TEST(RegistryBackendTest, UnknownModelInferIsImmediateError) {
  ModelRegistry registry;
  ModelConfig cfg;
  registry.add("m", cfg);
  ServeCore core(registry, BatchOptions{});
  nn::Tensor img({1, 28, 28});
  const Response r = core.infer("ghost", img);
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("unknown model"), std::string::npos);
}

}  // namespace
}  // namespace qsnc::serve
