// Overload-protection contracts: circuit-breaker state machine on a
// synthetic clock, the pure shed-set selector, and the end-to-end
// shedding-order property — lowest-priority-first, bit-deterministic,
// zero accepted requests dropped — driven through a gated fake backend so
// shed decisions depend only on queue contents, never on scheduling.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/micro_batcher.h"

namespace qsnc::serve {
namespace {

// ---------------------------------------------------------------------------
// CircuitBreaker on a synthetic microsecond clock
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker b(/*threshold=*/3, /*open_us=*/1000);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(0));
  b.on_failure(10);
  b.on_failure(20);
  EXPECT_TRUE(b.allow(25));  // 2 failures < threshold: still closed
  b.on_failure(30);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.allow(40));
  EXPECT_EQ(b.retry_after_us(40), 990);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker b(3, 1000);
  b.on_failure(10);
  b.on_failure(20);
  b.on_success();  // streak broken
  b.on_failure(30);
  b.on_failure(40);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(50));
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker b(1, 1000);
  b.on_failure(0);
  EXPECT_FALSE(b.allow(999));  // timer not yet elapsed
  EXPECT_TRUE(b.allow(1000));  // the probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.allow(1001));  // second caller is not admitted
  b.on_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(1002));
}

TEST(CircuitBreakerTest, FailedProbeReopensForAFullTimer) {
  CircuitBreaker b(1, 1000);
  b.on_failure(0);
  EXPECT_TRUE(b.allow(1000));
  b.on_failure(1100);  // probe failed
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.allow(2000));  // timer restarts at the probe failure
  EXPECT_TRUE(b.allow(2100));
}

TEST(CircuitBreakerTest, ReleaseProbeFreesTheSlotWithoutAnOutcome) {
  CircuitBreaker b(1, 1000);
  b.on_failure(0);
  EXPECT_TRUE(b.allow(1000));   // probe admitted...
  EXPECT_FALSE(b.allow(1001));  // ...slot taken...
  b.release_probe();            // ...but the probe was shed, not executed
  EXPECT_TRUE(b.allow(1002));   // next request becomes the probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, WouldAllowNeverMutatesState) {
  CircuitBreaker b(1, 1000);
  b.on_failure(0);
  EXPECT_FALSE(b.would_allow(999));  // open, timer running
  // Any number of previews past the timer neither transitions to
  // half-open nor consumes the probe slot (the router polls this for
  // every candidate while ordering — a tripped backend must still rejoin
  // via a real attempt afterwards).
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.would_allow(1000 + i));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(b.allow(1010));  // the real attempt is still the probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.would_allow(1011));  // slot taken: preview says so...
  EXPECT_FALSE(b.allow(1011));        // ...and agrees with allow()
  b.on_success();
  EXPECT_TRUE(b.would_allow(1012));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesEverything) {
  CircuitBreaker b(0, 0);
  for (int i = 0; i < 10; ++i) b.on_failure(i);
  EXPECT_TRUE(b.allow(100));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.retry_after_us(100), 0);
}

// ---------------------------------------------------------------------------
// select_sheds: the pure shed-set function
// ---------------------------------------------------------------------------

TEST(SelectShedsTest, NoExcessMeansNoSheds) {
  const int64_t depths[kNumPriorities] = {2, 3, 4};
  int64_t sheds[kNumPriorities];
  select_sheds(depths, /*allowed=*/9, sheds);
  EXPECT_EQ(sheds[0], 0);
  EXPECT_EQ(sheds[1], 0);
  EXPECT_EQ(sheds[2], 0);
}

TEST(SelectShedsTest, ShedsLowestClassFirst) {
  const int64_t depths[kNumPriorities] = {5, 5, 5};
  int64_t sheds[kNumPriorities];
  select_sheds(depths, /*allowed=*/12, sheds);  // excess 3
  EXPECT_EQ(sheds[static_cast<int>(Priority::kBatch)], 3);
  EXPECT_EQ(sheds[static_cast<int>(Priority::kCanary)], 0);
  EXPECT_EQ(sheds[static_cast<int>(Priority::kInteractive)], 0);
}

TEST(SelectShedsTest, SpillsIntoHigherClassesOnlyWhenLowerIsExhausted) {
  const int64_t depths[kNumPriorities] = {2, 3, 6};
  int64_t sheds[kNumPriorities];
  select_sheds(depths, /*allowed=*/4, sheds);  // excess 7
  EXPECT_EQ(sheds[static_cast<int>(Priority::kBatch)], 2);
  EXPECT_EQ(sheds[static_cast<int>(Priority::kCanary)], 3);
  EXPECT_EQ(sheds[static_cast<int>(Priority::kInteractive)], 2);
}

TEST(SelectShedsTest, NeverShedsMoreThanQueuedAndHandlesZeroAllowed) {
  const int64_t depths[kNumPriorities] = {1, 0, 2};
  int64_t sheds[kNumPriorities];
  select_sheds(depths, /*allowed=*/0, sheds);
  EXPECT_EQ(sheds[0], 1);
  EXPECT_EQ(sheds[1], 0);
  EXPECT_EQ(sheds[2], 2);
  select_sheds(depths, /*allowed=*/-5, sheds);  // clamped like 0
  EXPECT_EQ(sheds[0] + sheds[1] + sheds[2], 3);
}

// ---------------------------------------------------------------------------
// End-to-end shedding through the MicroBatcher
// ---------------------------------------------------------------------------

// Predicts floor(first pixel); when gated, infer_batch blocks until
// release() so tests can pile requests up behind a known in-flight batch.
class FakeBackend final : public Backend {
 public:
  explicit FakeBackend(bool gated = false) : gated_(gated) {}

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return shape_; }

  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override {
    if (gated_) {
      std::unique_lock<std::mutex> lock(mu_);
      ++blocked_batches_;
      cv_blocked_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    if (fail_.load()) throw std::runtime_error("backend down");
    const int64_t n = batch.dim(0);
    const int64_t numel = batch.numel() / n;
    std::vector<int64_t> out;
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(static_cast<int64_t>(batch[i * numel]));
    }
    return out;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait_until_blocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_blocked_.wait(lock, [&] { return blocked_batches_ > 0; });
  }

  void set_fail(bool fail) { fail_.store(fail); }

 private:
  std::string kind_ = "fake";
  nn::Shape shape_ = {1, 2, 2};
  bool gated_;
  std::atomic<bool> fail_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_blocked_;
  bool open_ = false;
  int blocked_batches_ = 0;
};

nn::Tensor image_with_value(float v) {
  nn::Tensor t({1, 2, 2});
  t.fill(v);
  return t;
}

struct ShedOutcome {
  std::set<int> shed_ids;
  std::set<int> ok_ids;
};

// The workload: ids 0..23 interleaved over the three classes, enqueued
// while the backend is gated behind a sacrificial request, so the whole
// mix is queued (and well over the delay target) before the batcher makes
// any shed decision. Shed sets are then a pure function of queue contents.
Priority scenario_priority(int id) {
  return static_cast<Priority>(id % kNumPriorities);
}

ShedOutcome run_shed_scenario() {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 0;
  opts.queue_capacity = 256;
  opts.admission.delay_target_us = 1000;
  opts.admission.delay_window_us = 0;
  MicroBatcher batcher(backend, opts);

  std::future<Response> gate =
      batcher.submit(image_with_value(100.0f));
  backend.wait_until_blocked();

  constexpr int kRequests = 24;
  std::vector<std::future<Response>> futures;
  for (int id = 0; id < kRequests; ++id) {
    futures.push_back(batcher.submit(
        image_with_value(static_cast<float>(id)), /*deadline_us=*/0,
        scenario_priority(id)));
  }
  // Everything queued is now far older than the 1 ms delay target.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  backend.release();

  EXPECT_EQ(gate.get().status, Status::kOk);
  ShedOutcome outcome;
  for (int id = 0; id < kRequests; ++id) {
    // EXPECT (not ASSERT): gtest fatal assertions need a void-returning
    // function. A dropped future still fails via the id-count invariant.
    const std::future_status ready =
        futures[static_cast<size_t>(id)].wait_for(std::chrono::seconds(10));
    EXPECT_EQ(ready, std::future_status::ready)
        << "request " << id << " was dropped";
    if (ready != std::future_status::ready) continue;
    const Response r = futures[static_cast<size_t>(id)].get();
    if (r.status == Status::kOk) {
      outcome.ok_ids.insert(id);
    } else {
      EXPECT_EQ(r.status, Status::kShedded) << "request " << id;
      EXPECT_GT(r.retry_after_us, 0u);
      EXPECT_NE(r.error.find("shed"), std::string::npos);
      outcome.shed_ids.insert(id);
    }
  }
  return outcome;
}

TEST(SheddingPropertyTest, ShedsLowestPriorityFirstAndDropsNothing) {
  const ShedOutcome outcome = run_shed_scenario();
  // Every request resolved one way or the other.
  EXPECT_EQ(outcome.shed_ids.size() + outcome.ok_ids.size(), 24u);
  EXPECT_FALSE(outcome.shed_ids.empty());  // overload really shed
  EXPECT_FALSE(outcome.ok_ids.empty());    // and really served
  // Ladder invariant: a shed request in class c implies every request of
  // every lower class was also shed (served lower-class alongside shed
  // higher-class would be an inversion).
  int highest_shed = -1;
  for (int id : outcome.shed_ids) {
    highest_shed =
        std::max(highest_shed, static_cast<int>(scenario_priority(id)));
  }
  for (int id = 0; id < 24; ++id) {
    if (static_cast<int>(scenario_priority(id)) < highest_shed) {
      EXPECT_TRUE(outcome.shed_ids.count(id))
          << "request " << id << " (class below the shed watermark) "
          << "was served while a higher class was shed";
    }
  }
}

TEST(SheddingPropertyTest, ShedSetIsDeterministic) {
  const ShedOutcome a = run_shed_scenario();
  const ShedOutcome b = run_shed_scenario();
  EXPECT_EQ(a.shed_ids, b.shed_ids);
  EXPECT_EQ(a.ok_ids, b.ok_ids);
}

TEST(AdmissionTest, ConcurrencyLimitShedsAtSubmit) {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 1;
  opts.batch_timeout_us = 0;
  opts.admission.max_concurrency = 2;
  MicroBatcher batcher(backend, opts);

  std::future<Response> a = batcher.submit(image_with_value(1.0f));
  backend.wait_until_blocked();
  std::future<Response> b = batcher.submit(image_with_value(2.0f));
  // in-flight = 2 (one executing, one queued): the third is shed now.
  std::future<Response> c = batcher.submit(image_with_value(3.0f));
  ASSERT_EQ(c.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const Response rc = c.get();
  EXPECT_EQ(rc.status, Status::kShedded);
  EXPECT_GT(rc.retry_after_us, 0u);
  EXPECT_NE(rc.error.find("concurrency"), std::string::npos);

  backend.release();
  EXPECT_EQ(a.get().status, Status::kOk);
  EXPECT_EQ(b.get().status, Status::kOk);
  EXPECT_EQ(batcher.stats().shed, 1u);
}

TEST(AdmissionTest, BreakerOpensOnBackendFailuresThenRecovers) {
  FakeBackend backend;
  backend.set_fail(true);
  BatchOptions opts;
  opts.max_batch = 1;
  opts.batch_timeout_us = 0;
  opts.admission.breaker_threshold = 2;
  // Generous timer so a descheduled test process cannot slip past the
  // open window and turn the expected fast-fail into a probe.
  opts.admission.breaker_open_us = 200000;  // 200 ms
  MicroBatcher batcher(backend, opts);

  EXPECT_EQ(batcher.submit(image_with_value(1.0f)).get().status,
            Status::kError);
  EXPECT_EQ(batcher.submit(image_with_value(2.0f)).get().status,
            Status::kError);
  EXPECT_EQ(batcher.breaker_state(), CircuitBreaker::State::kOpen);

  // Fast fail while open: resolved immediately with a retry hint.
  const Response shed = batcher.submit(image_with_value(3.0f)).get();
  EXPECT_EQ(shed.status, Status::kShedded);
  EXPECT_NE(shed.error.find("breaker"), std::string::npos);
  EXPECT_EQ(batcher.stats().breaker_shed, 1u);

  // Backend heals; after the open timer the probe closes the breaker and
  // traffic flows again.
  backend.set_fail(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(batcher.submit(image_with_value(4.0f)).get().status,
            Status::kOk);
  EXPECT_EQ(batcher.breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(batcher.submit(image_with_value(5.0f)).get().status,
            Status::kOk);
}

TEST(AdmissionTest, PriorityNamesRoundTrip) {
  for (int c = 0; c < kNumPriorities; ++c) {
    const Priority p = static_cast<Priority>(c);
    EXPECT_EQ(parse_priority(priority_name(p)), p);
  }
  EXPECT_THROW(parse_priority("vip"), std::invalid_argument);
}

TEST(AdmissionTest, DefaultOptionsPreserveHistoricalBehavior) {
  // All-zero admission options: no sheds, no breaker, just the bounded
  // queue — the exact pre-overload-protection contract.
  FakeBackend backend;
  BatchOptions opts;
  MicroBatcher batcher(backend, opts);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(batcher.submit(image_with_value(1.0f)).get().status,
              Status::kOk);
  }
  const ModelStatsSnapshot s = batcher.stats();
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.breaker_shed, 0u);
  EXPECT_EQ(s.breaker_state, CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace qsnc::serve
