// Model-lifecycle correctness: the versioned registry's resolution and
// immutability rules, the corrupt-checkpoint contract (a bad image over
// the hot-load path must fail structurally and leave the registry
// untouched), and the blue/green rollout state machine — shadow ->
// auto-promote on agreement, shadow -> auto-rollback on injected
// divergence, and the rejected operator transitions (double-promote,
// rollback-after-promote).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "nn/serialize.h"
#include "serve/model_registry.h"
#include "serve/rollout.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

ModelConfig lenet_config(uint64_t seed) {
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kFp32;
  cfg.init_seed = seed;
  return cfg;
}

std::vector<nn::Tensor> random_images(int n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

std::vector<uint8_t> lenet_checkpoint_bytes(uint64_t seed) {
  nn::Rng rng(seed);
  nn::Network net = models::make_lenet_mini(rng);
  return nn::save_state_bytes(net);
}

/// Polls the controller until the rollout leaves kShadow (or times out —
/// the caller then fails on the state assertion with the full report).
RolloutReport await_decision(RolloutController& rollout,
                             int64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const RolloutReport r = rollout.report();
    if (r.state == RolloutState::kPromoted ||
        r.state == RolloutState::kRolledBack ||
        std::chrono::steady_clock::now() >= deadline) {
      return r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Versioned registry
// ---------------------------------------------------------------------------

TEST(VersionedRegistryTest, BareNamesResolveToTheActiveVersion) {
  ModelRegistry registry;
  registry.add("lenet-mini@v1", lenet_config(5));
  registry.add("lenet-mini@v2", lenet_config(5));

  // First registered version of a base is active; later ones standby.
  EXPECT_EQ(registry.resolve("lenet-mini"), "lenet-mini@v1");
  EXPECT_EQ(registry.resolve("lenet-mini@v1"), "lenet-mini@v1");
  EXPECT_EQ(registry.resolve("lenet-mini@v2"), "lenet-mini@v2");
  EXPECT_EQ(registry.resolve("lenet-mini@v9"), "");
  EXPECT_EQ(registry.resolve("unknown"), "");
  EXPECT_EQ(registry.state("lenet-mini@v1"), VersionState::kActive);
  EXPECT_EQ(registry.state("lenet-mini@v2"), VersionState::kStandby);
  EXPECT_EQ(registry.active_key("lenet-mini"), "lenet-mini@v1");
}

TEST(VersionedRegistryTest, VersionsAreImmutableOnceRegistered) {
  ModelRegistry registry;
  registry.add("lenet-mini@v1", lenet_config(5));
  EXPECT_THROW(registry.add("lenet-mini@v1", lenet_config(6)),
               std::invalid_argument);
  // The failed re-register did not clobber the original entry.
  EXPECT_EQ(registry.config("lenet-mini@v1").init_seed, 5u);
}

TEST(VersionedRegistryTest, SetActiveFlipsThePointerAndDemotesBlue) {
  ModelRegistry registry;
  registry.add("lenet-mini@v1", lenet_config(5));
  registry.add("lenet-mini@v2", lenet_config(5));

  registry.set_active("lenet-mini", "lenet-mini@v2");
  EXPECT_EQ(registry.resolve("lenet-mini"), "lenet-mini@v2");
  EXPECT_EQ(registry.state("lenet-mini@v2"), VersionState::kActive);
  EXPECT_EQ(registry.state("lenet-mini@v1"), VersionState::kStandby);

  const std::vector<ModelVersionLabel> labels = registry.active_versions();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].model, "lenet-mini");
  EXPECT_EQ(labels[0].version, "v2");

  // Bad flips are rejected with the registry unchanged.
  EXPECT_THROW(registry.set_active("lenet-mini", "lenet-mini@v9"),
               std::invalid_argument);
  registry.set_state("lenet-mini@v1", VersionState::kQuarantined);
  EXPECT_THROW(registry.set_active("lenet-mini", "lenet-mini@v1"),
               std::invalid_argument);
  EXPECT_EQ(registry.resolve("lenet-mini"), "lenet-mini@v2");
}

// ---------------------------------------------------------------------------
// Corrupt / truncated checkpoints (the hot-load safety contract)
// ---------------------------------------------------------------------------

TEST(VersionedRegistryTest, CorruptCheckpointBytesLeaveTheRegistryUntouched) {
  ModelRegistry registry;
  registry.add("lenet-mini@v1", lenet_config(5));
  const std::vector<uint8_t> good = lenet_checkpoint_bytes(21);

  // Flipped payload byte: the CRC catches it before any tensor loads.
  std::vector<uint8_t> corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0xff;
  try {
    registry.add_from_bytes("lenet-mini@v2", lenet_config(21), corrupt);
    FAIL() << "corrupt checkpoint registered";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(registry.contains("lenet-mini@v2"));

  // Truncations at every interesting depth: header, CRC field, payload.
  for (const size_t cut : {size_t{0}, size_t{3}, size_t{10},
                           good.size() / 2, good.size() - 1}) {
    const std::vector<uint8_t> truncated(
        good.begin(), good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW(registry.add_from_bytes("lenet-mini@v2", lenet_config(21),
                                         truncated),
                 std::runtime_error)
        << "cut at " << cut;
    EXPECT_FALSE(registry.contains("lenet-mini@v2")) << "cut at " << cut;
  }

  // Bad magic is distinguished from a bad checksum.
  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  try {
    registry.add_from_bytes("lenet-mini@v2", lenet_config(21), bad_magic);
    FAIL() << "bad-magic checkpoint registered";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }

  // The same name still registers fine from the intact image: nothing
  // was half-registered by the failures above.
  registry.add_from_bytes("lenet-mini@v2", lenet_config(21), good);
  EXPECT_TRUE(registry.contains("lenet-mini@v2"));
  EXPECT_EQ(registry.state("lenet-mini@v2"), VersionState::kStandby);
  // And the restored weights are the saved ones: v2 predicts exactly as
  // a fresh seed-21 network would.
  ModelRegistry reference;
  reference.add("ref", lenet_config(21));
  for (const nn::Tensor& img : random_images(4, 77)) {
    nn::Tensor batch({1, 1, 28, 28});
    std::copy(img.data(), img.data() + img.numel(), batch.data());
    nn::Tensor batch2 = batch;
    const auto a = registry.backend("lenet-mini@v2").infer_batch(batch);
    const auto b = reference.backend("ref").infer_batch(batch2);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a[0], b[0]);
  }
}

// ---------------------------------------------------------------------------
// Rollout state machine
// ---------------------------------------------------------------------------

struct RolloutFixtureOptions {
  RolloutOptions rollout;
  uint64_t green_seed = 5;
};

class RolloutFixture : public ::testing::Test {
 protected:
  /// Blue = lenet-mini@v1 from seed 5. Tests pick green's seed: 5 makes
  /// a bit-identical twin (every prediction agrees), anything else makes
  /// an honestly divergent candidate (fresh random init).
  void start_core(const RolloutOptions& rollout) {
    registry_.add("lenet-mini@v1", lenet_config(5));
    BatchOptions opts;
    opts.max_batch = 4;
    opts.batch_timeout_us = 200;
    opts.queue_capacity = 4096;
    core_ = std::make_unique<ServeCore>(registry_, opts, rollout);
  }

  RolloutReply load_green(uint64_t seed, const std::string& name =
                                             "lenet-mini@v2") {
    LoadVersionRequest request;
    request.name = name;
    request.init_seed = seed;
    return core_->load_version(request);
  }

  void drive_traffic(int n) {
    std::vector<std::future<Response>> futures;
    for (const nn::Tensor& img : random_images(n, 4242)) {
      futures.push_back(core_->infer_async("lenet-mini", img));
    }
    for (auto& f : futures) {
      const Response r = f.get();
      EXPECT_EQ(r.status, Status::kOk) << r.error;
    }
  }

  ModelRegistry registry_;
  std::unique_ptr<ServeCore> core_;
};

TEST_F(RolloutFixture, ShadowThenAutoPromoteOnAgreement) {
  RolloutOptions rollout;
  rollout.shadow_fraction = 1.0;
  rollout.observe_requests = 8;
  rollout.canary_rounds = 1;
  rollout.canary_interval_ms = 2;
  start_core(rollout);

  const RolloutReply loaded = load_green(/*seed=*/5);
  ASSERT_TRUE(loaded.ok) << loaded.message;
  EXPECT_EQ(registry_.state("lenet-mini@v2"), VersionState::kShadow);

  drive_traffic(16);
  const RolloutReport report = await_decision(core_->rollout());
  ASSERT_EQ(report.state, RolloutState::kPromoted) << report.reason;
  EXPECT_GE(report.compared, 8u);
  EXPECT_EQ(report.diverged, 0u);
  EXPECT_GE(report.canary_rounds_ok, 1u);
  EXPECT_NE(report.reason.find("auto-promoted"), std::string::npos)
      << report.reason;

  // The flip is visible to new bare-name traffic; blue stays reachable
  // by its explicit name as a standby.
  EXPECT_EQ(registry_.resolve("lenet-mini"), "lenet-mini@v2");
  EXPECT_EQ(registry_.state("lenet-mini@v1"), VersionState::kStandby);
  EXPECT_EQ(core_->infer("lenet-mini@v1", random_images(1, 9)[0]).status,
            Status::kOk);
}

TEST_F(RolloutFixture, CanaryDivergenceAutoRollsBackWithoutTraffic) {
  RolloutOptions rollout;
  rollout.canary_interval_ms = 2;
  rollout.canary_images = 4;
  start_core(rollout);

  // Different seed = genuinely different weights: the deterministic
  // canary battery alone must catch it, with zero live requests shadowed.
  const RolloutReply loaded = load_green(/*seed=*/7);
  ASSERT_TRUE(loaded.ok) << loaded.message;

  const RolloutReport report = await_decision(core_->rollout());
  ASSERT_EQ(report.state, RolloutState::kRolledBack) << report.reason;
  EXPECT_GT(report.canary_diverged, 0u);
  EXPECT_NE(report.reason.find("canary"), std::string::npos) << report.reason;
  EXPECT_EQ(registry_.state("lenet-mini@v2"), VersionState::kQuarantined);

  // Blue is untouched and still active; the quarantined version refuses
  // explicit requests with a structured error.
  EXPECT_EQ(registry_.resolve("lenet-mini"), "lenet-mini@v1");
  EXPECT_EQ(core_->infer("lenet-mini", random_images(1, 9)[0]).status,
            Status::kOk);
  const Response refused =
      core_->infer("lenet-mini@v2", random_images(1, 9)[0]);
  EXPECT_EQ(refused.status, Status::kError);
  EXPECT_NE(refused.error.find("quarantined"), std::string::npos)
      << refused.error;
}

TEST_F(RolloutFixture, ShadowDivergenceOnLiveTrafficRollsBack) {
  RolloutOptions rollout;
  rollout.shadow_fraction = 1.0;
  rollout.min_compared_for_rollback = 4;
  rollout.observe_requests = 1000000;       // promote can never win
  rollout.canary_interval_ms = 600000;      // park the canary battery
  start_core(rollout);

  ASSERT_TRUE(load_green(/*seed=*/7).ok);
  // Fresh random-init networks disagree on most images; with
  // max_divergence 0 a single disagreement past min_compared decides.
  for (int round = 0; round < 50; ++round) {
    if (core_->rollout().report().state != RolloutState::kShadow) break;
    drive_traffic(8);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const RolloutReport report = await_decision(core_->rollout());
  ASSERT_EQ(report.state, RolloutState::kRolledBack) << report.reason;
  EXPECT_GT(report.diverged, 0u);
  EXPECT_EQ(report.canary_diverged, 0u);  // the battery never ran
  EXPECT_NE(report.reason.find("shadow divergence"), std::string::npos)
      << report.reason;
}

TEST_F(RolloutFixture, OperatorPromoteThenDoublePromoteIsRejected) {
  RolloutOptions rollout;
  rollout.auto_decide = false;  // observation only; the operator decides
  rollout.canary_interval_ms = 2;
  start_core(rollout);

  ASSERT_TRUE(load_green(/*seed=*/5).ok);
  RolloutController& ctl = core_->rollout();

  const RolloutReply promoted = ctl.promote("");
  ASSERT_TRUE(promoted.ok) << promoted.message;
  EXPECT_EQ(registry_.resolve("lenet-mini"), "lenet-mini@v2");

  const RolloutReply again = ctl.promote("lenet-mini");
  EXPECT_FALSE(again.ok);
  EXPECT_NE(again.message.find("double-promote"), std::string::npos)
      << again.message;

  const RolloutReply rollback = ctl.rollback("lenet-mini", "too late");
  EXPECT_FALSE(rollback.ok);
  EXPECT_NE(rollback.message.find("rollback-after-promote"),
            std::string::npos)
      << rollback.message;
  // The rejected transitions changed nothing.
  EXPECT_EQ(registry_.resolve("lenet-mini"), "lenet-mini@v2");
  EXPECT_EQ(registry_.state("lenet-mini@v2"), VersionState::kActive);
}

TEST_F(RolloutFixture, OperatorRollbackQuarantinesGreenWithTheGivenReason) {
  RolloutOptions rollout;
  rollout.auto_decide = false;
  start_core(rollout);

  ASSERT_TRUE(load_green(/*seed=*/5).ok);
  RolloutController& ctl = core_->rollout();

  const RolloutReply rolled = ctl.rollback("lenet-mini@v2", "operator veto");
  ASSERT_TRUE(rolled.ok) << rolled.message;
  EXPECT_EQ(registry_.state("lenet-mini@v2"), VersionState::kQuarantined);
  EXPECT_EQ(core_->rollout().report().reason, "operator veto");

  const RolloutReply promote = ctl.promote("");
  EXPECT_FALSE(promote.ok);
  EXPECT_NE(promote.message.find("rolled back"), std::string::npos)
      << promote.message;
  EXPECT_EQ(registry_.resolve("lenet-mini"), "lenet-mini@v1");
}

TEST_F(RolloutFixture, BeginRejectsBadCandidatesWithStructuredReasons) {
  RolloutOptions rollout;
  rollout.auto_decide = false;
  start_core(rollout);
  RolloutController& ctl = core_->rollout();

  EXPECT_FALSE(ctl.begin("lenet-mini@v9").ok);   // unknown
  EXPECT_FALSE(ctl.begin("lenet-mini@v1").ok);   // already active
  EXPECT_FALSE(ctl.promote("").ok);              // nothing started
  EXPECT_FALSE(ctl.rollback("", "").ok);

  // A second candidate cannot start while one is shadowing.
  ASSERT_TRUE(load_green(/*seed=*/5, "lenet-mini@v2").ok);
  const RolloutReply overlapped = load_green(/*seed=*/5, "lenet-mini@v3");
  ASSERT_TRUE(overlapped.ok);  // the load lands (standby)...
  EXPECT_NE(overlapped.message.find("rollout not started"),
            std::string::npos)
      << overlapped.message;  // ...but no second rollout begins
  EXPECT_EQ(registry_.state("lenet-mini@v3"), VersionState::kStandby);

  // A quarantined version can never be a candidate again.
  ASSERT_TRUE(ctl.rollback("", "clearing the deck").ok);
  EXPECT_FALSE(ctl.begin("lenet-mini@v2").ok);
}

// ---------------------------------------------------------------------------
// The socket hot-load path (kLoadVersion end to end)
// ---------------------------------------------------------------------------

TEST(RolloutSocketTest, CorruptCheckpointOverTheSocketIsAStructuredError) {
  ModelRegistry registry;
  registry.add("lenet-mini@v1", lenet_config(5));
  BatchOptions opts;
  opts.batch_timeout_us = 200;
  RolloutOptions rollout;
  rollout.auto_decide = false;
  ServeCore core(registry, opts, rollout);
  SocketServer server(core, "tcp:127.0.0.1:0");
  SocketClient client(server.endpoint());

  const std::vector<uint8_t> good = lenet_checkpoint_bytes(21);
  std::vector<uint8_t> corrupt = good;
  corrupt[corrupt.size() - 5] ^= 0x01;

  LoadVersionRequest request;
  request.name = "lenet-mini@v2";
  request.init_seed = 21;
  request.state = corrupt;
  const RolloutReply refused = client.load_version(request);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.message.find("load:"), std::string::npos)
      << refused.message;
  EXPECT_NE(refused.message.find("checksum"), std::string::npos)
      << refused.message;
  // Nothing registered, nothing serving: the registry was untouched.
  EXPECT_FALSE(registry.contains("lenet-mini@v2"));
  EXPECT_EQ(client.rollout_status("").message, "no rollout in progress");

  // Truncated image: same contract.
  request.state.assign(good.begin(), good.begin() + 7);
  EXPECT_FALSE(client.load_version(request).ok);
  EXPECT_FALSE(registry.contains("lenet-mini@v2"));

  // The intact image hot-loads, shadows, and an operator promote flips
  // the active version — the full lifecycle over one connection.
  request.state = good;
  const RolloutReply loaded = client.load_version(request);
  ASSERT_TRUE(loaded.ok) << loaded.message;
  EXPECT_EQ(registry.state("lenet-mini@v2"), VersionState::kShadow);
  EXPECT_NE(client.rollout_status("lenet-mini").message.find("shadow"),
            std::string::npos);
  const RolloutReply promoted = client.promote("lenet-mini");
  ASSERT_TRUE(promoted.ok) << promoted.message;
  EXPECT_EQ(registry.resolve("lenet-mini"), "lenet-mini@v2");

  const nn::Tensor image = random_images(1, 3)[0];
  EXPECT_EQ(client.infer("lenet-mini", image).status, Status::kOk);
  server.stop();
}

}  // namespace
}  // namespace qsnc::serve
