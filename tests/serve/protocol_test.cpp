// Wire-protocol framing: round trips, incremental (byte-dribble) reads,
// and rejection of malformed, truncated, and oversized frames.
#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace qsnc::serve {
namespace {

nn::Tensor sample_image() {
  nn::Tensor t({2, 3, 3});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i) * 0.25f;
  }
  return t;
}

TEST(ProtocolTest, InferRequestRoundTrip) {
  InferRequest request;
  request.id = 42;
  request.deadline_us = 250000;
  request.model = "lenet-mini";
  request.image = sample_image();

  const std::vector<uint8_t> wire = encode_infer_request(request);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kInferRequest);

  const InferRequest decoded = decode_infer_request(frame->body);
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.deadline_us, 250000u);
  EXPECT_EQ(decoded.model, "lenet-mini");
  ASSERT_EQ(decoded.image.shape(), request.image.shape());
  for (int64_t i = 0; i < decoded.image.numel(); ++i) {
    EXPECT_EQ(decoded.image[i], request.image[i]);
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ProtocolTest, InferResponseRoundTrip) {
  InferResponse response;
  response.id = 7;
  response.response.status = Status::kRejected;
  response.response.prediction = -1;
  response.response.latency_us = 1234;
  response.response.retry_after_us = 5678;
  response.response.batch_size = 3;
  response.response.error = "queue full";

  const std::vector<uint8_t> wire = encode_infer_response(response);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::kInferResponse);
  const InferResponse decoded = decode_infer_response(frame->body);
  EXPECT_EQ(decoded.id, 7u);
  EXPECT_EQ(decoded.response.status, Status::kRejected);
  EXPECT_EQ(decoded.response.retry_after_us, 5678u);
  EXPECT_EQ(decoded.response.batch_size, 3u);
  EXPECT_EQ(decoded.response.error, "queue full");
  EXPECT_FALSE(decoded.response.degraded);
}

TEST(ProtocolTest, DegradedFlagAndDeadlineStatusRoundTrip) {
  InferResponse response;
  response.id = 9;
  response.response.status = Status::kDeadlineExceeded;
  response.response.degraded = true;
  response.response.error = "deadline of 10 us expired before execution";

  const std::vector<uint8_t> wire = encode_infer_response(response);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  const InferResponse decoded = decode_infer_response(frame->body);
  EXPECT_EQ(decoded.response.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(decoded.response.degraded);
  EXPECT_EQ(decoded.response.error, response.response.error);
}

TEST(ProtocolTest, ZeroDeadlineMeansNone) {
  InferRequest request;
  request.id = 1;
  request.model = "m";
  request.image = sample_image();
  const std::vector<uint8_t> wire = encode_infer_request(request);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_EQ(decode_infer_request(reader.next()->body).deadline_us, 0u);
}

TEST(ProtocolTest, StatsRoundTrip) {
  const std::string text = "model  QPS\nm      123.4\n";
  const std::vector<uint8_t> wire = encode_stats_response(text);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::kStatsResponse);
  EXPECT_EQ(decode_stats_response(frame->body), text);
}

TEST(ProtocolTest, ByteDribbleReassembles) {
  InferRequest request;
  request.id = 1;
  request.model = "m";
  request.image = sample_image();
  const std::vector<uint8_t> wire = encode_infer_request(request);

  FrameReader reader;
  for (size_t i = 0; i < wire.size(); ++i) {
    // One byte at a time; the frame must complete exactly at the end.
    EXPECT_FALSE(reader.next().has_value());
    reader.feed(&wire[i], 1);
  }
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_infer_request(frame->body).model, "m");
}

TEST(ProtocolTest, MultipleFramesInOneFeed) {
  std::vector<uint8_t> wire = encode_stats_request();
  const std::vector<uint8_t> second = encode_stats_response("x");
  wire.insert(wire.end(), second.begin(), second.end());
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  ASSERT_EQ(reader.next()->type, MsgType::kStatsRequest);
  ASSERT_EQ(reader.next()->type, MsgType::kStatsResponse);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ProtocolTest, OversizedFrameThrows) {
  // A corrupt length prefix claiming a 1 GB payload must throw, not
  // allocate.
  std::vector<uint8_t> wire = {0x00, 0x00, 0x00, 0x40, 0x01};  // 2^30
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(ProtocolTest, ZeroLengthFrameThrows) {
  std::vector<uint8_t> wire = {0x00, 0x00, 0x00, 0x00};
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(ProtocolTest, TruncatedBodiesThrow) {
  InferRequest request;
  request.id = 1;
  request.model = "lenet";
  request.image = sample_image();
  const std::vector<uint8_t> wire = encode_infer_request(request);
  // Drop the length prefix and type tag, then truncate the body at
  // several points: every cut must throw, never read out of bounds.
  const std::vector<uint8_t> body(wire.begin() + 5, wire.end());
  for (size_t cut : {size_t{0}, size_t{4}, size_t{9}, body.size() - 3}) {
    const std::vector<uint8_t> truncated(body.begin(),
                                         body.begin() +
                                             static_cast<ptrdiff_t>(cut));
    EXPECT_THROW(decode_infer_request(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_THROW(decode_infer_response(body), ProtocolError);
}

TEST(ProtocolTest, TrailingBytesThrow) {
  InferResponse response;
  response.id = 1;
  response.response.status = Status::kOk;
  std::vector<uint8_t> wire = encode_infer_response(response);
  std::vector<uint8_t> body(wire.begin() + 5, wire.end());
  body.push_back(0xAB);
  EXPECT_THROW(decode_infer_response(body), ProtocolError);
}

TEST(ProtocolTest, SuperviseFramesRoundTrip) {
  // v6 supervisor control: command (verb + lane) and reply (the
  // kRolloutReply shape under its own frame type).
  const std::vector<uint8_t> cwire =
      encode_supervise_command(SuperviseCommand{"release", "backend-a"});
  EXPECT_EQ(static_cast<MsgType>(cwire[4]), MsgType::kSuperviseCommand);
  const SuperviseCommand command = decode_supervise_command(
      std::vector<uint8_t>(cwire.begin() + 5, cwire.end()));
  EXPECT_EQ(command.verb, "release");
  EXPECT_EQ(command.lane, "backend-a");

  const std::vector<uint8_t> rwire =
      encode_supervise_reply(RolloutReply{false, "no such lane 'x'"});
  EXPECT_EQ(static_cast<MsgType>(rwire[4]), MsgType::kSuperviseReply);
  const RolloutReply reply = decode_supervise_reply(
      std::vector<uint8_t>(rwire.begin() + 5, rwire.end()));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.message, "no such lane 'x'");

  // An empty lane ("status") survives the round trip too.
  const std::vector<uint8_t> swire =
      encode_supervise_command(SuperviseCommand{"status", ""});
  const SuperviseCommand status = decode_supervise_command(
      std::vector<uint8_t>(swire.begin() + 5, swire.end()));
  EXPECT_EQ(status.verb, "status");
  EXPECT_TRUE(status.lane.empty());
}

TEST(ProtocolTest, UnknownStatusCodeThrows) {
  InferResponse response;
  response.id = 1;
  response.response.status = Status::kOk;
  const std::vector<uint8_t> wire = encode_infer_response(response);
  std::vector<uint8_t> body(wire.begin() + 5, wire.end());
  body[8] = 200;  // status byte right after the u64 id
  EXPECT_THROW(decode_infer_response(body), ProtocolError);
}

}  // namespace
}  // namespace qsnc::serve
