// Seeded chaos soak: the full socket serving stack under the "soak"
// profile (torn frames, I/O stalls, mid-frame disconnects, queue spikes,
// injected backend errors) with overload protection on. The contract:
// no crash, no hang, no silent drop — every request either gets a
// structured response or dies with its (chaos-cut) connection, clients
// reconnect and make progress, and shutdown stays prompt. Runtime is
// QSNC_SOAK_MS (default 3000; CI's smoke step runs 30000).
//
// Determinism of the injector itself is pinned separately: two injectors
// with the same seed must produce bit-identical fault sequences.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

using Clock = std::chrono::steady_clock;

int64_t soak_ms() {
  if (const char* env = std::getenv("QSNC_SOAK_MS")) {
    const int64_t ms = std::atoll(env);
    if (ms > 0) return ms;
  }
  return 3000;
}

std::string temp_socket_path(const char* tag) {
  return "/tmp/qsnc-chaos-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ChaosDeterminismTest, SameSeedSameFaultSequence) {
  const ChaosConfig cfg = chaos_profile("soak", 1234);
  ChaosInjector a(cfg);
  ChaosInjector b(cfg);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.read_stall_us(), b.read_stall_us()) << "draw " << i;
    EXPECT_EQ(a.queue_spike_us(), b.queue_spike_us()) << "draw " << i;
    EXPECT_EQ(a.backend_latency_us(), b.backend_latency_us())
        << "draw " << i;
    EXPECT_EQ(a.backend_error(), b.backend_error()) << "draw " << i;
    const WritePlan pa = a.plan_write(777);
    const WritePlan pb = b.plan_write(777);
    EXPECT_EQ(pa.chunks, pb.chunks) << "draw " << i;
    EXPECT_EQ(pa.inter_chunk_stall_us, pb.inter_chunk_stall_us);
    EXPECT_EQ(pa.disconnect_after_first, pb.disconnect_after_first);
  }
  const ChaosStats sa = a.stats();
  const ChaosStats sb = b.stats();
  EXPECT_EQ(sa.torn_writes, sb.torn_writes);
  EXPECT_EQ(sa.disconnects, sb.disconnects);
  EXPECT_EQ(sa.backend_errors, sb.backend_errors);
}

TEST(ChaosDeterminismTest, SitesDrawFromIndependentStreams) {
  const ChaosConfig cfg = chaos_profile("soak", 99);
  ChaosInjector a(cfg);
  ChaosInjector b(cfg);
  // Interleave extra draws at one site of `a` only: the other sites'
  // sequences must not shift.
  std::vector<uint64_t> spikes_a, spikes_b;
  for (int i = 0; i < 500; ++i) {
    (void)a.read_stall_us();
    (void)a.read_stall_us();  // extra draw at the read site
    (void)b.read_stall_us();
    spikes_a.push_back(a.queue_spike_us());
    spikes_b.push_back(b.queue_spike_us());
  }
  EXPECT_EQ(spikes_a, spikes_b);
}

TEST(ChaosDeterminismTest, ProfilesParseAndNoneIsAllQuiet) {
  EXPECT_FALSE(chaos_profile("none", 1).any_enabled());
  EXPECT_TRUE(chaos_profile("torn", 1).any_enabled());
  EXPECT_TRUE(chaos_profile("backend", 1).any_enabled());
  EXPECT_TRUE(chaos_profile("queue", 1).any_enabled());
  EXPECT_TRUE(chaos_profile("soak", 1).any_enabled());
  EXPECT_THROW(chaos_profile("earthquake", 1), std::invalid_argument);
}

TEST(ChaosSoakTest, InProcessBatcherSoakResolvesEveryFuture) {
  // Backend-facing chaos only (no sockets): every submitted future must
  // resolve with a structured status even while the breaker flaps on
  // injected errors. This is the "zero accepted requests dropped" half.
  ChaosConfig cfg = chaos_profile("backend", 7);
  cfg.backend_latency_us = 200;  // keep the soak brisk
  ChaosInjector chaos(cfg);

  ModelRegistry registry;
  ModelConfig mc;
  mc.architecture = "lenet-mini";
  mc.backend = BackendKind::kFp32;
  mc.init_seed = 5;
  registry.add("m", mc);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 512;
  opts.admission.delay_target_us = 50000;
  opts.admission.breaker_threshold = 3;
  opts.admission.breaker_open_us = 5000;
  opts.chaos = &chaos;
  ServeCore core(registry, opts);

  nn::Rng rng(3);
  nn::Tensor image({1, 28, 28});
  for (int64_t j = 0; j < image.numel(); ++j) {
    image[j] = rng.uniform(0.0f, 1.0f);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(std::min<int64_t>(
                         soak_ms(), 5000));
  uint64_t counts[6] = {0, 0, 0, 0, 0, 0};
  uint64_t submitted = 0;
  std::vector<std::future<Response>> window;
  while (Clock::now() < deadline) {
    window.push_back(core.infer_async(
        "m", image, 0,
        static_cast<Priority>(submitted % kNumPriorities)));
    ++submitted;
    if (window.size() >= 64) {
      for (auto& f : window) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "a future was silently dropped";
        ++counts[static_cast<size_t>(f.get().status)];
      }
      window.clear();
    }
  }
  for (auto& f : window) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    ++counts[static_cast<size_t>(f.get().status)];
  }
  core.drain();

  uint64_t resolved = 0;
  for (uint64_t c : counts) resolved += c;
  EXPECT_EQ(resolved, submitted);
  EXPECT_GT(counts[static_cast<size_t>(Status::kOk)], 0u);
  // Injected backend errors really happened and were structured.
  EXPECT_GT(chaos.stats().backend_errors, 0u);
  EXPECT_GT(counts[static_cast<size_t>(Status::kError)], 0u);
}

TEST(ChaosSoakTest, SocketSoakSurvivesTornWritesAndDisconnects) {
  ChaosConfig cfg = chaos_profile("soak", 42);
  cfg.io_stall_us = 500;       // keep injected stalls short so the short
  cfg.queue_spike_us = 500;    // default soak still sees many events
  cfg.backend_latency_us = 500;
  ChaosInjector chaos(cfg);

  ModelRegistry registry;
  ModelConfig mc;
  mc.architecture = "lenet-mini";
  mc.backend = BackendKind::kFp32;
  mc.init_seed = 5;
  registry.add("lenet-mini", mc);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 500;
  opts.queue_capacity = 512;
  opts.admission.delay_target_us = 100000;
  opts.admission.breaker_threshold = 8;
  opts.admission.breaker_open_us = 20000;
  opts.chaos = &chaos;
  ServeCore core(registry, opts);

  SocketServerOptions sopts;
  sopts.read_timeout_ms = 2000;
  sopts.write_timeout_ms = 2000;
  sopts.idle_timeout_ms = 10000;
  sopts.chaos = &chaos;
  const std::string path = temp_socket_path("soak");
  SocketServer server(core, path, sopts);

  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(soak_ms());
  constexpr int kClients = 3;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> structured_backpressure{0};
  std::atomic<uint64_t> structured_errors{0};
  std::atomic<uint64_t> reconnects{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      nn::Rng rng(100 + static_cast<uint64_t>(c));
      nn::Tensor image({1, 28, 28});
      for (int64_t j = 0; j < image.numel(); ++j) {
        image[j] = rng.uniform(0.0f, 1.0f);
      }
      uint64_t i = 0;
      while (Clock::now() < deadline) {
        try {
          SocketClient client(path);
          while (Clock::now() < deadline) {
            const Response r = client.infer(
                "lenet-mini", image, /*deadline_us=*/0,
                static_cast<Priority>(i++ % kNumPriorities));
            switch (r.status) {
              case Status::kOk:
                ++ok;
                break;
              case Status::kRejected:
              case Status::kShedded:
                ++structured_backpressure;
                break;
              default:
                ++structured_errors;
                break;
            }
          }
        } catch (const std::exception&) {
          // Chaos cut the connection (torn write, injected disconnect,
          // reap): reconnect and continue — the protocol guarantees a
          // fresh connection starts clean.
          ++reconnects;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const Clock::time_point stop_start = Clock::now();
  server.stop();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(
                Clock::now() - stop_start)
                .count(),
            15)
      << "shutdown hung under chaos";

  // Progress despite the chaos, and the chaos actually fired.
  EXPECT_GT(ok.load(), 0u);
  const ChaosStats stats = chaos.stats();
  EXPECT_GT(stats.torn_writes + stats.disconnects + stats.read_stalls,
            0u);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace qsnc::serve
