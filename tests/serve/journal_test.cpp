// Durable state journal: record codecs, torn-tail recovery at every
// truncation offset, CRC discipline, seeded crash-during-append chaos,
// compaction atomics, and ServeCore::attach_journal reconciliation
// (the restart half of the supervisor's crash-recovery contract).
#include "serve/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/rng.h"
#include "nn/tensor.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/crc32.h"

namespace qsnc::serve {
namespace {

std::string fresh_path(const char* tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("qsnc_journal_" + std::string(tag) + "_" +
        std::to_string(::getpid()) + ".jrnl"))
          .string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

std::vector<uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

LoadVersionRequest tiny_load(const std::string& name, uint64_t seed = 5) {
  LoadVersionRequest request;
  request.name = name;
  request.architecture = "lenet-mini";
  request.backend_kind = "fp32";
  request.bits = 4;
  request.init_seed = seed;
  return request;
}

nn::Tensor test_image(uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor t({1, 28, 28});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(0.0f, 1.0f);
  return t;
}

TEST(JournalCodecTest, LoadVersionRoundTrips) {
  LoadVersionRequest request = tiny_load("lenet-mini@v2", 11);
  request.state = {1, 2, 3, 4, 5};
  const LoadVersionRequest back =
      decode_journal_load_version(encode_journal_load_version(request));
  EXPECT_EQ(back.name, request.name);
  EXPECT_EQ(back.architecture, request.architecture);
  EXPECT_EQ(back.backend_kind, request.backend_kind);
  EXPECT_EQ(back.bits, request.bits);
  EXPECT_EQ(back.init_seed, request.init_seed);
  EXPECT_EQ(back.state, request.state);
}

TEST(JournalCodecTest, PromoteRollbackQuarantineRoundTrip) {
  const JournalPromote promote =
      decode_journal_promote(encode_journal_promote({"lenet", "lenet@v3"}));
  EXPECT_EQ(promote.base, "lenet");
  EXPECT_EQ(promote.key, "lenet@v3");

  const JournalRollback rollback = decode_journal_rollback(
      encode_journal_rollback({"lenet@v3", "canary deviation"}));
  EXPECT_EQ(rollback.key, "lenet@v3");
  EXPECT_EQ(rollback.reason, "canary deviation");

  const JournalReplicaQuarantine quarantine =
      decode_journal_replica_quarantine(
          encode_journal_replica_quarantine({"lenet@v3", 7, "stuck column"}));
  EXPECT_EQ(quarantine.model, "lenet@v3");
  EXPECT_EQ(quarantine.replica, 7u);
  EXPECT_EQ(quarantine.reason, "stuck column");
}

TEST(JournalCodecTest, TruncatedPayloadThrows) {
  std::vector<uint8_t> payload =
      encode_journal_promote({"lenet", "lenet@v3"});
  payload.pop_back();
  EXPECT_THROW(decode_journal_promote(payload), ProtocolError);
  // Trailing garbage on a CRC-clean payload is corruption, not a tail.
  payload = encode_journal_rollback({"k", "r"});
  payload.push_back(0);
  EXPECT_THROW(decode_journal_rollback(payload), ProtocolError);
}

TEST(JournalTest, AppendAndReplayRoundTrip) {
  const std::string path = fresh_path("roundtrip");
  {
    Journal journal(path);
    EXPECT_TRUE(journal.append(
        JournalRecordType::kLoadVersion,
        encode_journal_load_version(tiny_load("tiny@v1"))));
    EXPECT_TRUE(journal.append(JournalRecordType::kPromote,
                               encode_journal_promote({"tiny", "tiny@v1"})));
    EXPECT_TRUE(journal.append(
        JournalRecordType::kReplicaQuarantine,
        encode_journal_replica_quarantine({"tiny@v1", 2, "canary"})));
    EXPECT_EQ(journal.appended(), 3u);
    EXPECT_FALSE(journal.failed());
  }
  const JournalReplayResult result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_FALSE(result.tail_dropped);
  EXPECT_EQ(result.records[0].type, JournalRecordType::kLoadVersion);
  EXPECT_EQ(result.records[1].type, JournalRecordType::kPromote);
  EXPECT_EQ(result.records[2].type, JournalRecordType::kReplicaQuarantine);
  EXPECT_EQ(result.records[0].seq, 1u);
  EXPECT_EQ(result.records[2].seq, 3u);
  const JournalPromote promote =
      decode_journal_promote(result.records[1].payload);
  EXPECT_EQ(promote.key, "tiny@v1");
  std::filesystem::remove(path);
}

TEST(JournalTest, ReopenResumesSequenceNumbers) {
  const std::string path = fresh_path("reopen");
  {
    Journal journal(path);
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"a", "a@v1"}));
  }
  {
    Journal journal(path);
    EXPECT_EQ(journal.next_seq(), 2u);
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"a", "a@v2"}));
  }
  const JournalReplayResult result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[1].seq, 2u);
  std::filesystem::remove(path);
}

TEST(JournalTest, MissingFileReplaysEmpty) {
  const JournalReplayResult result =
      Journal::replay(fresh_path("missing"));
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.tail_dropped);
}

TEST(JournalTest, NonJournalFileRefusedByCtorAndReplay) {
  const std::string path = fresh_path("garbage");
  write_bytes(path, {'n', 'o', 't', ' ', 'a', ' ', 'j', 'r', 'n', 'l'});
  EXPECT_THROW(Journal::replay(path), std::runtime_error);
  EXPECT_THROW(Journal journal(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(JournalTest, UnsupportedFormatVersionThrows) {
  const std::string path = fresh_path("future");
  std::vector<uint8_t> bytes = {'Q', 'S', 'N', 'C', 'J', 'R', 'N', 'L',
                                99,  0,   0,   0};
  write_bytes(path, bytes);
  EXPECT_THROW(Journal::replay(path), std::runtime_error);
  std::filesystem::remove(path);
}

// The torn-tail discipline, exhaustively: truncating the file at every
// byte offset inside the final record must drop exactly that record and
// keep the clean prefix — no truncation point may crash the replayer or
// smuggle a partial record through.
TEST(JournalTest, TornTailAtEveryTruncationOffsetDropsOnlyTheTail) {
  const std::string path = fresh_path("torn");
  size_t first_record_end = 0;
  {
    Journal journal(path);
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"tiny", "tiny@v1"}));
    first_record_end = static_cast<size_t>(
        std::filesystem::file_size(path));
    journal.append(JournalRecordType::kRollback,
                   encode_journal_rollback({"tiny@v1", "bad canary"}));
  }
  const std::vector<uint8_t> full = file_bytes(path);
  ASSERT_GT(full.size(), first_record_end);

  for (size_t cut = first_record_end; cut < full.size(); ++cut) {
    write_bytes(path, std::vector<uint8_t>(full.begin(),
                                           full.begin() +
                                               static_cast<ptrdiff_t>(cut)));
    const JournalReplayResult result = Journal::replay(path);
    ASSERT_EQ(result.records.size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ(result.tail_dropped, cut != first_record_end)
        << "cut at byte " << cut;
    EXPECT_EQ(result.valid_bytes, first_record_end) << "cut at byte " << cut;
  }
  std::filesystem::remove(path);
}

TEST(JournalTest, CrcFlipDropsTheCorruptRecord) {
  const std::string path = fresh_path("crcflip");
  {
    Journal journal(path);
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"tiny", "tiny@v1"}));
    journal.append(JournalRecordType::kRollback,
                   encode_journal_rollback({"tiny@v1", "bad canary"}));
  }
  std::vector<uint8_t> bytes = file_bytes(path);
  bytes.back() ^= 0xFF;  // flip inside the final record's body
  write_bytes(path, bytes);
  const JournalReplayResult result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_TRUE(result.tail_dropped);
  EXPECT_NE(result.tail_reason.find("CRC mismatch"), std::string::npos)
      << result.tail_reason;
  std::filesystem::remove(path);
}

TEST(JournalTest, UnknownRecordTypeDropsTail) {
  const std::string path = fresh_path("unknowntype");
  std::vector<uint8_t> bytes;
  {
    Journal journal(path);
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"tiny", "tiny@v1"}));
  }
  // Hand-craft a CRC-clean record with an unknown type byte: body is
  // type 200 + an 8-byte seq.
  bytes = file_bytes(path);
  std::vector<uint8_t> body = {200, 9, 0, 0, 0, 0, 0, 0, 0};
  const uint32_t crc = util::crc32(body.data(), body.size());
  const uint32_t len = static_cast<uint32_t>(body.size());
  for (size_t i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  for (size_t i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  bytes.insert(bytes.end(), body.begin(), body.end());
  write_bytes(path, bytes);
  const JournalReplayResult result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_TRUE(result.tail_dropped);
  EXPECT_NE(result.tail_reason.find("unknown record type"),
            std::string::npos)
      << result.tail_reason;
  std::filesystem::remove(path);
}

// The seeded chaos spelling of a crash mid-append: the record is cut
// partway through its bytes, the journal fails closed, and replay drops
// exactly the torn record.
TEST(JournalTest, SeededChaosTornAppendIsDroppedOnReplay) {
  const std::string path = fresh_path("chaos");
  ChaosConfig config;
  config.seed = 42;
  config.journal_torn_rate = 1.0;
  ChaosInjector chaos(config);
  {
    Journal journal(path, &chaos);
    EXPECT_FALSE(journal.append(
        JournalRecordType::kPromote,
        encode_journal_promote({"tiny", "tiny@v1"})));
    EXPECT_TRUE(journal.failed());
    // A failed journal refuses further appends (fail closed, serve on).
    EXPECT_FALSE(journal.append(
        JournalRecordType::kRollback,
        encode_journal_rollback({"tiny@v1", "x"})));
  }
  EXPECT_EQ(chaos.stats().journal_torn, 1u);
  const JournalReplayResult result = Journal::replay(path);
  EXPECT_TRUE(result.records.empty());
  EXPECT_TRUE(result.tail_dropped);
  // The torn bytes are a strict prefix of a record: more than the bare
  // header survives only sometimes, but never the whole record.
  EXPECT_GT(std::filesystem::file_size(path), 12u);  // header + >= 1 byte
  std::filesystem::remove(path);
}

TEST(JournalTest, CompactRewritesSnapshotAndReassignsSeqs) {
  const std::string path = fresh_path("compact");
  Journal journal(path);
  journal.append(JournalRecordType::kPromote,
                 encode_journal_promote({"a", "a@v1"}));
  journal.append(JournalRecordType::kPromote,
                 encode_journal_promote({"a", "a@v2"}));
  journal.append(JournalRecordType::kRollback,
                 encode_journal_rollback({"a@v1", "old"}));

  // Compact down to one surviving record: the snapshot replaces history.
  JournalRecord keep;
  keep.type = JournalRecordType::kPromote;
  keep.seq = 99;  // ignored: compaction reassigns contiguously from 1
  keep.payload = encode_journal_promote({"a", "a@v2"});
  ASSERT_TRUE(journal.compact({keep}));
  EXPECT_EQ(journal.next_seq(), 2u);

  // The compacted file replays to exactly the snapshot, and the journal
  // keeps appending cleanly after the rename.
  JournalReplayResult result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].seq, 1u);
  EXPECT_FALSE(result.tail_dropped);

  EXPECT_TRUE(journal.append(JournalRecordType::kRollback,
                             encode_journal_rollback({"a@v2", "later"})));
  result = Journal::replay(path);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[1].seq, 2u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// attach_journal: the restart-reconciliation half.
// ---------------------------------------------------------------------------

TEST(JournalReconcileTest, FreshJournalAttachesEmpty) {
  const std::string path = fresh_path("attach_fresh");
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.init_seed = 5;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  ServeCore core(registry, BatchOptions{});
  const JournalReconcileReport report = core.attach_journal(path);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.applied, 0u);
  ASSERT_NE(core.journal(), nullptr);
  std::filesystem::remove(path);
}

TEST(JournalReconcileTest, ReplayRebuildsActiveVersionsBitExact) {
  const std::string path = fresh_path("attach_replay");
  // Pre-crash history, written directly: two hot-loaded versions of base
  // "tiny", v2 promoted, v1 rolled back with a reason.
  {
    Journal journal(path);
    journal.append(JournalRecordType::kLoadVersion,
                   encode_journal_load_version(tiny_load("tiny@v1", 5)));
    journal.append(JournalRecordType::kLoadVersion,
                   encode_journal_load_version(tiny_load("tiny@v2", 5)));
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"tiny", "tiny@v2"}));
    journal.append(
        JournalRecordType::kRollback,
        encode_journal_rollback({"tiny@v1", "operator rollback"}));
  }

  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.init_seed = 5;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  ServeCore core(registry, BatchOptions{});
  const JournalReconcileReport report = core.attach_journal(path);
  EXPECT_EQ(report.records_replayed, 4u);
  EXPECT_EQ(report.applied, 4u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.errors.empty())
      << (report.errors.empty() ? "" : report.errors[0]);

  // The registry is back to its pre-crash shape: v2 active, v1
  // quarantined, bare-name traffic serving v2.
  EXPECT_EQ(registry.active_key("tiny"), "tiny@v2");
  EXPECT_EQ(registry.state("tiny@v1"), VersionState::kQuarantined);
  const Response served = core.infer("tiny", test_image(77));
  ASSERT_EQ(served.status, Status::kOk) << served.error;

  // Bit-exact: a reference build from the same seed agrees.
  ModelConfig ref_cfg;
  ref_cfg.architecture = "lenet-mini";
  ref_cfg.init_seed = 5;
  ModelRegistry ref_registry;
  ref_registry.add("ref", ref_cfg);
  ServeCore reference(ref_registry, BatchOptions{});
  const Response expect = reference.infer("ref", test_image(77));
  ASSERT_EQ(expect.status, Status::kOk) << expect.error;
  EXPECT_EQ(served.prediction, expect.prediction);

  // attach_journal compacted the file to the canonical snapshot: the
  // same four transitions, reconstructible on the *next* restart too.
  const JournalReplayResult compacted = Journal::replay(path);
  EXPECT_EQ(compacted.records.size(), 4u);
  EXPECT_FALSE(compacted.tail_dropped);
  std::filesystem::remove(path);
}

TEST(JournalReconcileTest, BootRegisteredKeysSkipAndTornTailReported) {
  const std::string path = fresh_path("attach_skip");
  {
    Journal journal(path);
    // Same key the boot flags will register: replay must defer to boot.
    journal.append(JournalRecordType::kLoadVersion,
                   encode_journal_load_version(tiny_load("lenet-mini", 5)));
    // Promote referencing a key nothing registers: a reported error.
    journal.append(JournalRecordType::kPromote,
                   encode_journal_promote({"ghost", "ghost@v1"}));
    // Replica quarantine: audit-only on replay.
    journal.append(
        JournalRecordType::kReplicaQuarantine,
        encode_journal_replica_quarantine({"lenet-mini", 1, "canary"}));
  }
  // Torn tail on top: half a record of garbage.
  std::vector<uint8_t> bytes = file_bytes(path);
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  write_bytes(path, bytes);

  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.init_seed = 5;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  ServeCore core(registry, BatchOptions{});
  const JournalReconcileReport report = core.attach_journal(path);
  EXPECT_EQ(report.records_replayed, 3u);
  EXPECT_EQ(report.skipped, 2u);  // boot-registered load + replica audit
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("ghost"), std::string::npos)
      << report.errors[0];
  EXPECT_TRUE(report.tail_dropped);
  EXPECT_FALSE(report.tail_reason.empty());
  // The report renders without throwing.
  EXPECT_FALSE(report.to_string().empty());

  // Compaction scrubbed both the torn tail and the dead records: the
  // node serves, and the next replay is clean.
  const JournalReplayResult compacted = Journal::replay(path);
  EXPECT_FALSE(compacted.tail_dropped);
  std::filesystem::remove(path);
}

// A live hot-load journals through the core hooks, and a second core
// recovers it — the in-process spelling of kill -9 + restart.
TEST(JournalReconcileTest, LiveHotLoadSurvivesRestartBitExact) {
  const std::string path = fresh_path("attach_live");
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.init_seed = 5;
  int pre_crash_prediction = -1;
  {
    ModelRegistry registry;
    registry.add("lenet-mini", cfg);
    ServeCore core(registry, BatchOptions{});
    core.attach_journal(path);
    // Hot-load a new base: the first version of a new base activates
    // immediately, no rollout to wait on.
    const RolloutReply loaded = core.load_version(tiny_load("tiny@v1", 9));
    ASSERT_TRUE(loaded.ok) << loaded.message;
    const Response served = core.infer("tiny", test_image(31));
    ASSERT_EQ(served.status, Status::kOk) << served.error;
    pre_crash_prediction = served.prediction;
    // No clean shutdown: the journal simply stops getting writes, like a
    // SIGKILL would leave it.
  }
  ModelRegistry registry2;
  registry2.add("lenet-mini", cfg);
  ServeCore core2(registry2, BatchOptions{});
  const JournalReconcileReport report = core2.attach_journal(path);
  EXPECT_EQ(report.records_replayed, 1u);
  EXPECT_EQ(report.applied, 1u);
  ASSERT_TRUE(registry2.contains("tiny@v1"));
  EXPECT_EQ(registry2.resolve("tiny"), "tiny@v1");
  const Response served = core2.infer("tiny", test_image(31));
  ASSERT_EQ(served.status, Status::kOk) << served.error;
  EXPECT_EQ(served.prediction, pre_crash_prediction);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace qsnc::serve
