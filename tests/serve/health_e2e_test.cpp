// End-to-end replica health monitoring: canary checks, quarantine, the
// quant degradation ladder, and reprogram-based recovery.
//
// The quarantine contract under test: a replica that deviates from the
// ideal-device canary reference is removed from the free list *before*
// any request of the batch is dispatched, so zero requests are ever
// served from a quarantined replica — every answer comes either from a
// healthy replica or from the quant fallback (flagged degraded).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

constexpr int kBits = 4;

nn::Tensor random_image(uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor image({1, 28, 28});
  for (int64_t i = 0; i < image.numel(); ++i) image[i] = rng.uniform();
  return image;
}

/// The registry's kSnc deployment recipe (fold, cluster, scales), applied
/// in place; returns the matching SncConfig.
snc::SncConfig deploy(nn::Network& net) {
  core::fold_batchnorm(net);
  core::WeightClusterConfig wc;
  wc.bits = kBits;
  const auto results = core::apply_weight_clustering(net, wc);
  snc::SncConfig cfg;
  cfg.signal_bits = kBits;
  cfg.weight_bits = kBits;
  cfg.weight_scales.clear();
  for (const auto& r : results) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(kBits)));
  return cfg;
}

TEST(HealthE2ETest, QuarantineFallsBackToQuantWithDegradedFlag) {
  // Heavily faulted passive replicas (no write-verify) with independent
  // per-replica fault draws: the canary check must quarantine them at the
  // first batch and serve everything from the quant fallback.
  ModelRegistry registry;
  ModelConfig config;
  config.architecture = "lenet-mini";
  config.backend = BackendKind::kSnc;
  config.bits = kBits;
  config.snc_replicas = 2;
  config.snc_stuck_on_rate = 0.15;
  config.snc_health.enabled = true;
  config.snc_health.check_interval_batches = 1;
  config.snc_health.canary_images = 3;
  config.snc_health.min_healthy_fraction = 1.0;
  config.snc_health.max_reprogram_attempts = 1;
  config.snc_health.per_replica_seeds = true;
  registry.add("m", config);

  // Known-good answers: the quant path over an identically deployed
  // network (same init seed, same fold + cluster transforms).
  nn::Rng rng(config.init_seed);
  nn::Network reference_net = models::make_lenet_mini(rng);
  core::fold_batchnorm(reference_net);
  core::WeightClusterConfig wc;
  wc.bits = kBits;
  core::apply_weight_clustering(reference_net, wc);
  QuantBackend reference(reference_net, {1, 28, 28}, kBits);

  BatchOptions opts;
  opts.batch_timeout_us = 0;
  ServeCore core(registry, opts);
  const int kRequests = 6;
  int degraded_ok = 0;
  for (int i = 0; i < kRequests; ++i) {
    const nn::Tensor image = random_image(100 + static_cast<uint64_t>(i));
    const Response r = core.infer("m", image);
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_TRUE(r.degraded);
    nn::Tensor batch({1, 1, 28, 28});
    std::copy(image.data(), image.data() + image.numel(), batch.data());
    EXPECT_EQ(r.prediction, reference.infer_batch(batch)[0])
        << "request " << i << " not served by the quant fallback";
    if (r.degraded && r.status == Status::kOk) ++degraded_ok;
  }
  EXPECT_EQ(degraded_ok, kRequests);

  auto& backend = dynamic_cast<SncBackend&>(registry.backend("m"));
  const ReplicaHealthSnapshot h = backend.health_snapshot();
  EXPECT_TRUE(h.enabled);
  EXPECT_EQ(h.replicas, 2);
  EXPECT_GE(h.quarantine_events, 1);
  EXPECT_EQ(h.healthy + h.quarantined, h.replicas);
  // Reprogramming re-draws the same deterministic faults, so it cannot
  // rescue a passive replica: every attempt must have been spent.
  EXPECT_EQ(h.reprogram_attempts, h.quarantine_events);
  EXPECT_EQ(h.recoveries, 0);
  EXPECT_GE(h.degraded_batches, static_cast<int64_t>(kRequests));

  const ModelStatsSnapshot stats = core.stats().at(0);
  EXPECT_EQ(stats.degraded, static_cast<uint64_t>(kRequests));
  const std::string report = core.stats_report();
  EXPECT_NE(report.find("replica health"), std::string::npos);
}

TEST(HealthE2ETest, DriftedReplicaRecoversByReprogramming) {
  // Ideal devices + write-verify: after severe retention drift the canary
  // deviates, but a reprogram restores the replica — no quarantine, no
  // degradation.
  nn::Rng rng(1);
  nn::Network net = models::make_lenet_mini(rng);
  snc::SncConfig cfg = deploy(net);
  cfg.recovery.write_verify = true;
  cfg.recovery.drift_rate_per_window = 0.01;
  cfg.recovery.drift_sigma = 0.3;

  ReplicaHealthConfig health;
  health.enabled = true;
  health.check_interval_batches = 1;
  health.canary_images = 2;
  health.min_healthy_fraction = 0.5;
  health.max_reprogram_attempts = 2;
  SncBackend backend(net, {1, 28, 28}, cfg, /*replicas=*/2, health);

  nn::Tensor batch({2, 1, 28, 28});
  for (int i = 0; i < 2; ++i) {
    const nn::Tensor image = random_image(200 + static_cast<uint64_t>(i));
    std::copy(image.data(), image.data() + image.numel(),
              batch.data() + static_cast<int64_t>(i) * image.numel());
  }
  const std::vector<int64_t> fresh = backend.infer_batch(batch);
  EXPECT_FALSE(backend.last_batch_degraded());

  // Decay every conductance essentially to g_min on both replicas.
  backend.replica(0).advance_time(5000.0);
  backend.replica(1).advance_time(5000.0);

  const std::vector<int64_t> recovered = backend.infer_batch(batch);
  EXPECT_FALSE(backend.last_batch_degraded());
  EXPECT_EQ(recovered, fresh);

  const ReplicaHealthSnapshot h = backend.health_snapshot();
  EXPECT_EQ(h.quarantined, 0);
  EXPECT_EQ(h.healthy, 2);
  EXPECT_GE(h.recoveries, 2);
  EXPECT_EQ(h.degraded_batches, 0);
}

TEST(HealthE2ETest, HealthyPoolServesUndegradedWithHealthOn) {
  // Health monitoring on ideal devices is a no-op: canaries pass, nothing
  // is quarantined, nothing degrades, and snc predictions flow as before.
  nn::Rng rng(1);
  nn::Network net = models::make_lenet_mini(rng);
  const snc::SncConfig cfg = deploy(net);

  ReplicaHealthConfig health;
  health.enabled = true;
  health.check_interval_batches = 1;
  SncBackend backend(net, {1, 28, 28}, cfg, /*replicas=*/2, health);

  nn::Tensor batch({1, 1, 28, 28});
  const nn::Tensor image = random_image(300);
  std::copy(image.data(), image.data() + image.numel(), batch.data());
  backend.infer_batch(batch);
  EXPECT_FALSE(backend.last_batch_degraded());
  const ReplicaHealthSnapshot h = backend.health_snapshot();
  EXPECT_EQ(h.quarantined, 0);
  EXPECT_EQ(h.quarantine_events, 0);
  EXPECT_EQ(h.degraded_batches, 0);
  EXPECT_GE(h.canary_runs, 2);
}

}  // namespace
}  // namespace qsnc::serve
