// Endpoint parsing plus the transport-independence guarantee: the same
// ServeCore answering over unix and TCP listeners returns predictions
// bit-identical to the direct in-process forward path, sharded or not —
// the acceptance pin for the TCP transport and shard-pool work.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace qsnc::serve {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/qsnc-transport-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

std::vector<nn::Tensor> random_images(int n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

TEST(EndpointTest, ParsesTheThreeSpellings) {
  const Endpoint u = parse_endpoint("unix:/tmp/a.sock");
  EXPECT_EQ(u.kind, EndpointKind::kUnix);
  EXPECT_EQ(u.path, "/tmp/a.sock");
  EXPECT_EQ(u.str(), "unix:/tmp/a.sock");

  const Endpoint bare = parse_endpoint("/tmp/b.sock");
  EXPECT_EQ(bare.kind, EndpointKind::kUnix);
  EXPECT_EQ(bare.path, "/tmp/b.sock");

  const Endpoint t = parse_endpoint("tcp:127.0.0.1:7601");
  EXPECT_EQ(t.kind, EndpointKind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7601);
  EXPECT_EQ(t.str(), "tcp:127.0.0.1:7601");

  // Port 0 = ephemeral, resolved at bind time.
  EXPECT_EQ(parse_endpoint("tcp:localhost:0").port, 0);
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("unix:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("tcp:hostonly"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("tcp::7601"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("tcp:h:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("tcp:h:notaport"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("tcp:h:70000"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("http:h:80"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("relative/path"), std::invalid_argument);
}

TEST(EndpointTest, ParsesLists) {
  const std::vector<Endpoint> eps =
      parse_endpoint_list("tcp:127.0.0.1:1,unix:/a,/b");
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].kind, EndpointKind::kTcp);
  EXPECT_EQ(eps[1].path, "/a");
  EXPECT_EQ(eps[2].path, "/b");
  EXPECT_THROW(parse_endpoint_list(""), std::invalid_argument);
  EXPECT_THROW(parse_endpoint_list("tcp:a:1,junk"), std::invalid_argument);
}

TEST(TransportTest, ReadDeadlinesShorterThanThePollTickAreHonored) {
  // A hedge trigger of a few ms must time out on schedule; the internal
  // poll tick (tens of ms) must never mask a shorter deadline.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameReader reader;
  const auto start = std::chrono::steady_clock::now();
  const auto frame = read_frame_with_deadline(fds[0], reader, /*timeout_ms=*/2);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(frame.has_value());
  EXPECT_LT(elapsed_ms, 40) << "deadline slept a full poll tick";
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(TransportTest, TcpAndUnixServingAreBitIdenticalToDirect) {
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kFp32;
  cfg.init_seed = 5;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 500;
  ServeCore core(registry, opts);

  const std::string unix_path = temp_socket_path("bitexact");
  SocketServer unix_server(core, "unix:" + unix_path);
  SocketServer tcp_server(core, "tcp:127.0.0.1:0");
  ASSERT_NE(tcp_server.endpoint().port, 0);  // ephemeral port resolved

  // A second registry+core with a shard pool: shards are rebuilt from the
  // same seed, so predictions must not depend on which lane serves.
  ModelConfig sharded_cfg = cfg;
  sharded_cfg.shards = 3;
  ModelRegistry sharded_registry;
  sharded_registry.add("lenet-mini", sharded_cfg);
  ServeCore sharded_core(sharded_registry, opts);
  ASSERT_EQ(sharded_core.num_lanes("lenet-mini"), 3u);

  SocketClient unix_client("unix:" + unix_path);
  SocketClient tcp_client(tcp_server.endpoint());

  const auto images = random_images(12, 99);
  for (size_t i = 0; i < images.size(); ++i) {
    const Response direct = core.infer("lenet-mini", images[i]);
    ASSERT_EQ(direct.status, Status::kOk) << direct.error;
    const Response via_unix = unix_client.infer("lenet-mini", images[i]);
    ASSERT_EQ(via_unix.status, Status::kOk) << via_unix.error;
    const Response via_tcp = tcp_client.infer("lenet-mini", images[i]);
    ASSERT_EQ(via_tcp.status, Status::kOk) << via_tcp.error;
    const Response via_shard = sharded_core.infer("lenet-mini", images[i]);
    ASSERT_EQ(via_shard.status, Status::kOk) << via_shard.error;

    EXPECT_EQ(via_unix.prediction, direct.prediction) << "image " << i;
    EXPECT_EQ(via_tcp.prediction, direct.prediction) << "image " << i;
    EXPECT_EQ(via_shard.prediction, direct.prediction) << "image " << i;
  }

  // Sharded stats label lanes model#k.
  const auto stats = sharded_core.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].model, "lenet-mini#0");
  EXPECT_EQ(stats[2].model, "lenet-mini#2");
}

TEST(TransportTest, HelloHandshakeAndHealthProbeOverTcp) {
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kFp32;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  ServeCore core(registry, BatchOptions{});
  SocketServer server(core, "tcp:127.0.0.1:0");

  SocketClient client(server.endpoint());
  EXPECT_TRUE(client.handshake());
  EXPECT_TRUE(client.handshake(PeerRole::kRouter));
  const HealthAck ack = client.probe();
  EXPECT_TRUE(ack.healthy);
  EXPECT_EQ(ack.queue_depth, 0u);

  // A mismatched version must be refused (raw frames: SocketClient only
  // speaks the current version).
  const int fd = connect_to(server.endpoint());
  Hello old_version;
  old_version.version = 2;
  ASSERT_TRUE(
      write_with_deadline(fd, encode_hello(old_version), 2000));
  FrameReader reader;
  const std::optional<Frame> frame =
      read_frame_with_deadline(fd, reader, 2000);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::kHelloAck);
  const HelloAck refused = decode_hello_ack(frame->body);
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.version, kProtocolVersion);
  ::close(fd);
}

// Infer frames carry the version-sensitive request layout, so a server
// must drop them on un-handshaken connections (fail fast) instead of
// decoding what might be another version's bytes.
TEST(TransportTest, InferBeforeHandshakeDropsTheConnection) {
  ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = BackendKind::kFp32;
  ModelRegistry registry;
  registry.add("lenet-mini", cfg);
  ServeCore core(registry, BatchOptions{});
  SocketServer server(core, "tcp:127.0.0.1:0");

  InferRequest request;
  request.id = 1;
  request.model = "lenet-mini";
  request.image = nn::Tensor({1, 28, 28}, 0.5f);

  // Raw infer with no kHello: no response, connection dropped.
  const int fd = connect_to(server.endpoint());
  ASSERT_TRUE(
      write_with_deadline(fd, encode_infer_request(request), 2000));
  FrameReader reader;
  EXPECT_FALSE(read_frame_with_deadline(fd, reader, 2000).has_value());
  ::close(fd);

  // Version-stable frames stay reachable without a handshake.
  const int probe_fd = connect_to(server.endpoint());
  HealthProbe probe;
  probe.nonce = 7;
  ASSERT_TRUE(
      write_with_deadline(probe_fd, encode_health_probe(probe), 2000));
  FrameReader probe_reader;
  const std::optional<Frame> ack =
      read_frame_with_deadline(probe_fd, probe_reader, 2000);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, MsgType::kHealthAck);
  ::close(probe_fd);

  // SocketClient::infer handshakes implicitly, so it still round-trips.
  SocketClient client(server.endpoint());
  const Response response =
      client.infer("lenet-mini", nn::Tensor({1, 28, 28}, 0.5f));
  EXPECT_EQ(response.status, Status::kOk) << response.error;
}

}  // namespace
}  // namespace qsnc::serve
