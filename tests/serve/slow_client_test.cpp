// Slow-client defense: one stalled, malicious, or dead peer must never
// wedge the serving drain path. Covers the read deadline (half a frame
// then silence), the idle deadline, the write deadline (a peer that
// pipelines requests but never reads responses — the case that used to
// block send() forever and with it stop()), the connection cap, and
// SIGINT-driven drain with a stalled peer attached.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::string temp_socket_path(const char* tag) {
  return "/tmp/qsnc-slow-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// True once recv() reports EOF (the server closed this connection),
/// polling up to `ms`.
bool reaped_within_ms(int fd, int ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(ms);
  uint8_t buf[256];
  while (Clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) > 0) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        return true;  // reset also counts as "server cut us off"
      }
    }
  }
  return false;
}

nn::Tensor test_image() {
  nn::Tensor t({1, 28, 28});
  t.fill(0.25f);
  return t;
}

class SlowClientFixture : public ::testing::Test {
 protected:
  void start(const char* tag, const SocketServerOptions& options) {
    ModelConfig cfg;
    cfg.architecture = "lenet-mini";
    cfg.backend = BackendKind::kFp32;
    cfg.init_seed = 5;
    registry_.add("lenet-mini", cfg);
    BatchOptions opts;
    opts.max_batch = 4;
    opts.batch_timeout_us = 500;
    core_ = std::make_unique<ServeCore>(registry_, opts);
    path_ = temp_socket_path(tag);
    server_ = std::make_unique<SocketServer>(*core_, path_, options);
  }

  ModelRegistry registry_;
  std::unique_ptr<ServeCore> core_;
  std::unique_ptr<SocketServer> server_;
  std::string path_;
};

TEST_F(SlowClientFixture, HalfFrameStallIsReapedWhileGoodClientsProceed) {
  SocketServerOptions options;
  options.read_timeout_ms = 200;
  options.idle_timeout_ms = 60000;
  start("halfframe", options);

  // The attacker: a length prefix promising a frame that never arrives.
  const int stalled = raw_connect(path_);
  const uint32_t promised = 1024;
  uint8_t partial[6];
  std::memcpy(partial, &promised, 4);
  partial[4] = 1;  // kInferRequest type tag
  partial[5] = 0;  // one body byte, then silence
  ASSERT_EQ(::send(stalled, partial, sizeof(partial), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(partial)));

  // A well-behaved client keeps getting answers while the stall ages out.
  SocketClient good(path_);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(good.infer("lenet-mini", test_image()).status, Status::kOk);
  }

  EXPECT_TRUE(reaped_within_ms(stalled, 5000));
  EXPECT_GE(server_->connections_reaped(), 1u);
  // And the good client is still alive afterwards.
  EXPECT_EQ(good.infer("lenet-mini", test_image()).status, Status::kOk);
  ::close(stalled);
  server_->stop();
}

TEST_F(SlowClientFixture, IdleConnectionIsReapedOnTheIdleDeadline) {
  SocketServerOptions options;
  options.read_timeout_ms = 60000;
  options.idle_timeout_ms = 200;  // idle reap, not mid-frame reap
  start("idle", options);

  const int idle = raw_connect(path_);
  EXPECT_TRUE(reaped_within_ms(idle, 5000));
  EXPECT_GE(server_->connections_reaped(), 1u);
  ::close(idle);
  server_->stop();
}

TEST_F(SlowClientFixture, NonReadingPeerHitsWriteDeadlineAndStopIsBounded) {
  SocketServerOptions options;
  options.read_timeout_ms = 60000;
  options.idle_timeout_ms = 60000;
  options.write_timeout_ms = 300;
  start("noread", options);

  // The attacker pipelines stats requests but never reads a byte of the
  // responses: the server's socket buffer fills and every further write
  // stalls. Before write deadlines existed, this blocked the handler in
  // send() forever — and stop() behind it.
  const int hog = raw_connect(path_);
  const std::vector<uint8_t> stats_frame = encode_stats_request();
  int sent_frames = 0;
  for (int i = 0; i < 200000; ++i) {
    const ssize_t n = ::send(hog, stats_frame.data(), stats_frame.size(),
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n <= 0) break;  // our own buffer is full: plenty in flight
    ++sent_frames;
  }
  ASSERT_GT(sent_frames, 100);

  // The server must cut the hog loose at the write deadline...
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(10);
  while (server_->connections_reaped() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server_->connections_reaped(), 1u);

  // ...while good traffic flows and shutdown stays prompt.
  SocketClient good(path_);
  EXPECT_EQ(good.infer("lenet-mini", test_image()).status, Status::kOk);
  const Clock::time_point stop_start = Clock::now();
  server_->stop();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(
                Clock::now() - stop_start)
                .count(),
            10);
  ::close(hog);
}

TEST_F(SlowClientFixture, ConnectionCapRejectsTheExcessConnection) {
  SocketServerOptions options;
  options.max_connections = 2;
  start("cap", options);

  // Two live connections, each proven registered by a served request.
  SocketClient a(path_);
  SocketClient b(path_);
  EXPECT_EQ(a.infer("lenet-mini", test_image()).status, Status::kOk);
  EXPECT_EQ(b.infer("lenet-mini", test_image()).status, Status::kOk);

  // The third is accepted and immediately closed.
  const int excess = raw_connect(path_);
  EXPECT_TRUE(reaped_within_ms(excess, 5000));
  EXPECT_EQ(server_->connections_rejected(), 1u);
  ::close(excess);

  // The two under the cap still work.
  EXPECT_EQ(a.infer("lenet-mini", test_image()).status, Status::kOk);
  server_->stop();
}

TEST_F(SlowClientFixture, SigintDrainsAndTerminatesWithAStalledPeer) {
  SocketServerOptions options;
  options.read_timeout_ms = 60000;  // the stall outlives the whole test:
                                    // only stop() can clear it
  options.idle_timeout_ms = 60000;
  options.write_timeout_ms = 500;
  start("sigint", options);

  const int stalled = raw_connect(path_);
  const uint32_t promised = 512;
  uint8_t partial[5];
  std::memcpy(partial, &promised, 4);
  partial[4] = 1;
  ASSERT_EQ(::send(stalled, partial, sizeof(partial), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(partial)));

  std::atomic<bool> returned{false};
  std::thread serving([&] {
    server_->run_until_signal();
    returned.store(true);
  });
  // Wait until run_until_signal has installed its SIGINT handler before
  // raising, so the signal cannot hit the default disposition.
  for (int i = 0; i < 500; ++i) {
    struct sigaction current {};
    ::sigaction(SIGINT, nullptr, &current);
    if (current.sa_handler != SIG_DFL && current.sa_handler != SIG_IGN) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  SocketClient good(path_);
  EXPECT_EQ(good.infer("lenet-mini", test_image()).status, Status::kOk);

  ::raise(SIGINT);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(10);
  while (!returned.load() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(returned.load())
      << "SIGINT drain hung behind the stalled peer";
  serving.join();
  ::close(stalled);
}

}  // namespace
}  // namespace qsnc::serve
