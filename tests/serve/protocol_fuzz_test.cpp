// Protocol robustness fuzz: thousands of seeded adversarial byte streams
// against the FrameReader and every decoder. The contract under attack:
// arbitrary peer bytes may produce ProtocolError, never a crash, never
// another exception type, never an unbounded allocation. Deterministic
// (fixed SplitMix64 seed), so a failure reproduces exactly; the asan CI
// job runs this same binary to promote "no crash" to "no UB".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace qsnc::serve {
namespace {

// Local counter-mode SplitMix64: the test's only randomness source, fully
// determined by kFuzzSeed.
constexpr uint64_t kFuzzSeed = 0x5eedf00dULL;

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class FuzzRng {
 public:
  explicit FuzzRng(uint64_t stream) : stream_(splitmix64(kFuzzSeed ^ stream)) {}

  uint64_t next() { return splitmix64(stream_ ^ counter_++); }
  /// Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  std::vector<uint8_t> bytes(size_t n) {
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(next());
    }
    return out;
  }

 private:
  uint64_t stream_;
  uint64_t counter_ = 0;
};

/// Runs one decoder over a body, asserting the only escape is
/// ProtocolError. Returns true when the body decoded cleanly.
template <typename Fn>
bool only_protocol_error(Fn&& decode, const std::string& what) {
  try {
    decode();
    return true;
  } catch (const ProtocolError&) {
    return false;  // the allowed outcome for garbage
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << " escaped with non-ProtocolError: " << e.what();
    return false;
  }
}

InferRequest valid_request() {
  InferRequest request;
  request.id = 77;
  request.deadline_us = 1234;
  request.priority = Priority::kCanary;
  request.model = "lenet-mini";
  request.image = nn::Tensor({1, 4, 4}, 0.5f);
  return request;
}

InferResponse valid_response() {
  InferResponse response;
  response.id = 77;
  response.response.status = Status::kShedded;
  response.response.prediction = 3;
  response.response.latency_us = 100;
  response.response.retry_after_us = 50;
  response.response.batch_size = 4;
  response.response.error = "shed: queue delay over target";
  return response;
}

TEST(ProtocolFuzzTest, RandomBodiesNeverEscapeTheDecoders) {
  int decoded_ok = 0;
  for (uint64_t i = 0; i < 1500; ++i) {
    FuzzRng rng(i);
    const std::vector<uint8_t> body =
        rng.bytes(static_cast<size_t>(rng.below(200)));
    if (only_protocol_error([&] { (void)decode_infer_request(body); },
                            "decode_infer_request")) {
      ++decoded_ok;
    }
    only_protocol_error([&] { (void)decode_infer_response(body); },
                        "decode_infer_response");
    only_protocol_error([&] { (void)decode_stats_response(body); },
                        "decode_stats_response");
  }
  // Pure noise parsing as a full InferRequest would be suspicious.
  EXPECT_EQ(decoded_ok, 0);
}

TEST(ProtocolFuzzTest, EveryTruncationOfAValidBodyIsAProtocolError) {
  const std::vector<uint8_t> frame = encode_infer_request(valid_request());
  // Strip the 4-byte length prefix and 1-byte type tag: what decoders see.
  const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    const std::vector<uint8_t> truncated(body.begin(),
                                         body.begin() +
                                             static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_infer_request(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_infer_request(body).id, 77u);  // the untruncated body

  const std::vector<uint8_t> rframe =
      encode_infer_response(valid_response());
  const std::vector<uint8_t> rbody(rframe.begin() + 5, rframe.end());
  for (size_t cut = 0; cut < rbody.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        rbody.begin(), rbody.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_infer_response(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_infer_response(rbody).response.status, Status::kShedded);
}

TEST(ProtocolFuzzTest, MutatedValidFramesNeverEscape) {
  const std::vector<uint8_t> frame = encode_infer_request(valid_request());
  for (uint64_t i = 0; i < 1000; ++i) {
    FuzzRng rng(0x1000 + i);
    std::vector<uint8_t> mutated = frame;
    const size_t flips = 1 + static_cast<size_t>(rng.below(8));
    for (size_t f = 0; f < flips; ++f) {
      mutated[static_cast<size_t>(rng.below(mutated.size()))] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    FrameReader reader;
    only_protocol_error(
        [&] {
          reader.feed(mutated.data(), mutated.size());
          while (auto f = reader.next()) {
            switch (f->type) {
              case MsgType::kInferRequest:
                (void)decode_infer_request(f->body);
                break;
              case MsgType::kInferResponse:
                (void)decode_infer_response(f->body);
                break;
              case MsgType::kStatsResponse:
                (void)decode_stats_response(f->body);
                break;
              default:
                break;  // unknown type: the server drops the connection
            }
          }
        },
        "mutated frame");
  }
}

TEST(ProtocolFuzzTest, RandomStreamsThroughTheFrameReaderInRandomChunks) {
  for (uint64_t i = 0; i < 1000; ++i) {
    FuzzRng rng(0x2000 + i);
    const std::vector<uint8_t> blob =
        rng.bytes(16 + static_cast<size_t>(rng.below(400)));
    FrameReader reader;
    only_protocol_error(
        [&] {
          size_t at = 0;
          while (at < blob.size()) {
            const size_t chunk = std::min<size_t>(
                1 + static_cast<size_t>(rng.below(64)), blob.size() - at);
            reader.feed(blob.data() + at, chunk);
            at += chunk;
            while (auto f = reader.next()) {
              (void)f;
            }
          }
        },
        "random stream");
  }
}

TEST(ProtocolFuzzTest, OversizeAndZeroLengthPrefixesAreRejected) {
  {
    // Length prefix far beyond kMaxFrameBytes: must throw before any
    // gigabyte allocation happens.
    FrameReader reader;
    const uint32_t huge = kMaxFrameBytes + 1;
    uint8_t prefix[5] = {0, 0, 0, 0, 1};
    std::memcpy(prefix, &huge, 4);
    reader.feed(prefix, sizeof(prefix));
    EXPECT_THROW((void)reader.next(), ProtocolError);
  }
  {
    FrameReader reader;
    const uint8_t zeros[4] = {0, 0, 0, 0};
    reader.feed(zeros, sizeof(zeros));
    EXPECT_THROW((void)reader.next(), ProtocolError);
  }
}

TEST(ProtocolFuzzTest, OverflowingTensorDimsAreRejectedNotAllocated) {
  // rank 2 with ~2^31 x 2^31 dims: numel * sizeof(float) wraps u64 to a
  // small number; the per-dim bound must catch it before the allocation.
  std::vector<uint8_t> body;
  const auto put_u = [&](auto v) {
    const size_t at = body.size();
    body.resize(at + sizeof(v));
    std::memcpy(body.data() + at, &v, sizeof(v));
  };
  put_u(static_cast<uint64_t>(1));   // id
  put_u(static_cast<uint64_t>(0));   // deadline_us
  put_u(static_cast<uint8_t>(2));    // priority (interactive)
  put_u(static_cast<uint16_t>(1));   // model_len
  body.push_back('m');
  put_u(static_cast<uint8_t>(2));    // rank
  put_u(static_cast<uint32_t>(1u << 31));
  put_u(static_cast<uint32_t>(1u << 31));
  EXPECT_THROW((void)decode_infer_request(body), ProtocolError);
}

TEST(ProtocolFuzzTest, FrameReaderBoundsItsBufferAgainstPipelineSpam) {
  FrameReader reader;
  // A peer that streams one enormous "frame" the reader can never
  // complete: feed() must throw at the buffer cap, not grow forever.
  const std::vector<uint8_t> chunk(1u << 20, 0x41);
  uint32_t len = kMaxFrameBytes;  // a maximal (but legal) length prefix
  std::vector<uint8_t> first(chunk);
  std::memcpy(first.data(), &len, 4);
  EXPECT_THROW(
      {
        reader.feed(first.data(), first.size());
        for (int i = 0; i < 80; ++i) {
          reader.feed(chunk.data(), chunk.size());
          (void)reader.next();
        }
      },
      ProtocolError);
}

TEST(ProtocolFuzzTest, PriorityAndStatusRangeChecks) {
  // Out-of-range priority byte in an otherwise valid request.
  std::vector<uint8_t> frame = encode_infer_request(valid_request());
  frame[4 + 1 + 8 + 8] = 7;  // header | id | deadline -> priority byte
  const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
  EXPECT_THROW((void)decode_infer_request(body), ProtocolError);

  std::vector<uint8_t> rframe = encode_infer_response(valid_response());
  rframe[4 + 1 + 8] = 99;  // header | id -> status byte
  const std::vector<uint8_t> rbody(rframe.begin() + 5, rframe.end());
  EXPECT_THROW((void)decode_infer_response(rbody), ProtocolError);
}

}  // namespace
}  // namespace qsnc::serve
