// Protocol robustness fuzz: thousands of seeded adversarial byte streams
// against the FrameReader and every decoder. The contract under attack:
// arbitrary peer bytes may produce ProtocolError, never a crash, never
// another exception type, never an unbounded allocation. Deterministic
// (fixed SplitMix64 seed), so a failure reproduces exactly; the asan CI
// job runs this same binary to promote "no crash" to "no UB".
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace qsnc::serve {
namespace {

// Local counter-mode SplitMix64: the test's only randomness source, fully
// determined by kFuzzSeed.
constexpr uint64_t kFuzzSeed = 0x5eedf00dULL;

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class FuzzRng {
 public:
  explicit FuzzRng(uint64_t stream) : stream_(splitmix64(kFuzzSeed ^ stream)) {}

  uint64_t next() { return splitmix64(stream_ ^ counter_++); }
  /// Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  std::vector<uint8_t> bytes(size_t n) {
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(next());
    }
    return out;
  }

 private:
  uint64_t stream_;
  uint64_t counter_ = 0;
};

/// Runs one decoder over a body, asserting the only escape is
/// ProtocolError. Returns true when the body decoded cleanly.
template <typename Fn>
bool only_protocol_error(Fn&& decode, const std::string& what) {
  try {
    decode();
    return true;
  } catch (const ProtocolError&) {
    return false;  // the allowed outcome for garbage
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << " escaped with non-ProtocolError: " << e.what();
    return false;
  }
}

InferRequest valid_request() {
  InferRequest request;
  request.id = 77;
  request.deadline_us = 1234;
  request.priority = Priority::kCanary;
  request.model = "lenet-mini";
  request.image = nn::Tensor({1, 4, 4}, 0.5f);
  return request;
}

InferResponse valid_response() {
  InferResponse response;
  response.id = 77;
  response.response.status = Status::kShedded;
  response.response.prediction = 3;
  response.response.latency_us = 100;
  response.response.retry_after_us = 50;
  response.response.batch_size = 4;
  response.response.error = "shed: queue delay over target";
  return response;
}

ForwardedInfer valid_forward() {
  ForwardedInfer forward;
  forward.route_hash = 0xdeadbeefcafef00dULL;
  forward.request = valid_request();
  forward.request.session = "session-9";
  return forward;
}

LoadVersionRequest valid_load() {
  LoadVersionRequest load;
  load.name = "lenet-mini@v2";
  load.architecture = "lenet-mini";
  load.backend_kind = "fp32";
  load.bits = 4;
  load.init_seed = 99;
  load.state = {1, 2, 3, 4, 5, 6, 7, 8};
  return load;
}

HealthAck valid_versioned_ack() {
  HealthAck ack;
  ack.nonce = 4242;
  ack.healthy = true;
  ack.queue_depth = 3;
  ack.versions = {{"lenet-mini", "v2"}, {"alexnet-mini", ""}};
  return ack;
}

/// Dispatches a decoded frame to its body decoder, mirroring what the
/// serving and router handlers do (unknown types drop the connection).
void decode_by_type(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kInferRequest:
      (void)decode_infer_request(frame.body);
      break;
    case MsgType::kInferResponse:
      (void)decode_infer_response(frame.body);
      break;
    case MsgType::kStatsResponse:
      (void)decode_stats_response(frame.body);
      break;
    case MsgType::kHello:
      (void)decode_hello(frame.body);
      break;
    case MsgType::kHelloAck:
      (void)decode_hello_ack(frame.body);
      break;
    case MsgType::kHealthProbe:
      (void)decode_health_probe(frame.body);
      break;
    case MsgType::kHealthAck:
      (void)decode_health_ack(frame.body);
      break;
    case MsgType::kForwardInfer:
      (void)decode_forward_infer(frame.body);
      break;
    case MsgType::kLoadVersion:
      (void)decode_load_version(frame.body);
      break;
    case MsgType::kPromote:
      (void)decode_promote(frame.body);
      break;
    case MsgType::kRollback:
      (void)decode_rollback(frame.body);
      break;
    case MsgType::kRolloutStatus:
      (void)decode_rollout_status(frame.body);
      break;
    case MsgType::kRolloutReply:
      (void)decode_rollout_reply(frame.body);
      break;
    case MsgType::kSuperviseCommand:
      (void)decode_supervise_command(frame.body);
      break;
    case MsgType::kSuperviseReply:
      (void)decode_supervise_reply(frame.body);
      break;
    default:
      break;
  }
}

TEST(ProtocolFuzzTest, RandomBodiesNeverEscapeTheDecoders) {
  int decoded_ok = 0;
  for (uint64_t i = 0; i < 1500; ++i) {
    FuzzRng rng(i);
    const std::vector<uint8_t> body =
        rng.bytes(static_cast<size_t>(rng.below(200)));
    if (only_protocol_error([&] { (void)decode_infer_request(body); },
                            "decode_infer_request")) {
      ++decoded_ok;
    }
    only_protocol_error([&] { (void)decode_infer_response(body); },
                        "decode_infer_response");
    only_protocol_error([&] { (void)decode_stats_response(body); },
                        "decode_stats_response");
    only_protocol_error([&] { (void)decode_hello(body); }, "decode_hello");
    only_protocol_error([&] { (void)decode_hello_ack(body); },
                        "decode_hello_ack");
    only_protocol_error([&] { (void)decode_health_probe(body); },
                        "decode_health_probe");
    only_protocol_error([&] { (void)decode_health_ack(body); },
                        "decode_health_ack");
    only_protocol_error([&] { (void)decode_forward_infer(body); },
                        "decode_forward_infer");
    only_protocol_error([&] { (void)decode_load_version(body); },
                        "decode_load_version");
    only_protocol_error([&] { (void)decode_promote(body); },
                        "decode_promote");
    only_protocol_error([&] { (void)decode_rollback(body); },
                        "decode_rollback");
    only_protocol_error([&] { (void)decode_rollout_status(body); },
                        "decode_rollout_status");
    only_protocol_error([&] { (void)decode_rollout_reply(body); },
                        "decode_rollout_reply");
  }
  // Pure noise parsing as a full InferRequest would be suspicious.
  EXPECT_EQ(decoded_ok, 0);
}

TEST(ProtocolFuzzTest, EveryTruncationOfAValidBodyIsAProtocolError) {
  const std::vector<uint8_t> frame = encode_infer_request(valid_request());
  // Strip the 4-byte length prefix and 1-byte type tag: what decoders see.
  const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    const std::vector<uint8_t> truncated(body.begin(),
                                         body.begin() +
                                             static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_infer_request(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_infer_request(body).id, 77u);  // the untruncated body

  const std::vector<uint8_t> rframe =
      encode_infer_response(valid_response());
  const std::vector<uint8_t> rbody(rframe.begin() + 5, rframe.end());
  for (size_t cut = 0; cut < rbody.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        rbody.begin(), rbody.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_infer_response(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_infer_response(rbody).response.status, Status::kShedded);

  // The v4 frames obey the same contract.
  const std::vector<uint8_t> fframe = encode_forward_infer(valid_forward());
  const std::vector<uint8_t> fbody(fframe.begin() + 5, fframe.end());
  for (size_t cut = 0; cut < fbody.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        fbody.begin(), fbody.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_forward_infer(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_forward_infer(fbody).request.session, "session-9");

  HealthAck ack;
  ack.nonce = 42;
  ack.healthy = true;
  ack.queue_depth = 9;
  const std::vector<uint8_t> aframe = encode_health_ack(ack);
  const std::vector<uint8_t> abody(aframe.begin() + 5, aframe.end());
  for (size_t cut = 0; cut < abody.size(); ++cut) {
    // Cutting exactly before the v5 version list is legal: a v4-style
    // ack without the trailing list decodes as an empty list.
    if (cut == 8 + 1 + 4) continue;
    const std::vector<uint8_t> truncated(
        abody.begin(), abody.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_health_ack(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_health_ack(abody).queue_depth, 9u);
  {
    const std::vector<uint8_t> v4_style(abody.begin(), abody.begin() + 13);
    const HealthAck compat = decode_health_ack(v4_style);
    EXPECT_EQ(compat.queue_depth, 9u);
    EXPECT_TRUE(compat.versions.empty());
  }

  const std::vector<uint8_t> hframe = encode_hello(Hello{});
  const std::vector<uint8_t> hbody(hframe.begin() + 5, hframe.end());
  for (size_t cut = 0; cut < hbody.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        hbody.begin(), hbody.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_hello(truncated), ProtocolError)
        << "cut at " << cut;
  }
  EXPECT_EQ(decode_hello(hbody).version, kProtocolVersion);
}

TEST(ProtocolFuzzTest, MutatedValidFramesNeverEscape) {
  // One exemplar per frame family, including the v4 additions.
  const std::vector<std::vector<uint8_t>> exemplars = {
      encode_infer_request(valid_request()),
      encode_infer_response(valid_response()),
      encode_forward_infer(valid_forward()),
      encode_hello(Hello{}),
      encode_hello_ack(HelloAck{kProtocolVersion, true}),
      encode_health_probe(HealthProbe{123}),
      encode_health_ack(HealthAck{123, true, 7}),
      // The v5 model-lifecycle frames (mutations hit the version strings,
      // the state length, and the checkpoint bytes alike).
      encode_load_version(valid_load()),
      encode_promote(RolloutCommand{"lenet-mini@v2", ""}),
      encode_rollback(RolloutCommand{"lenet-mini@v2", "operator says no"}),
      encode_rollout_status(RolloutCommand{"", ""}),
      encode_rollout_reply(RolloutReply{true, "rollout: promoted"}),
      encode_health_ack(valid_versioned_ack()),
      encode_supervise_command(SuperviseCommand{"release", "backend-a"}),
      encode_supervise_reply(RolloutReply{true, "lane released"}),
  };
  for (uint64_t i = 0; i < 1000; ++i) {
    FuzzRng rng(0x1000 + i);
    std::vector<uint8_t> mutated =
        exemplars[static_cast<size_t>(rng.below(exemplars.size()))];
    const size_t flips = 1 + static_cast<size_t>(rng.below(8));
    for (size_t f = 0; f < flips; ++f) {
      mutated[static_cast<size_t>(rng.below(mutated.size()))] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    FrameReader reader;
    only_protocol_error(
        [&] {
          reader.feed(mutated.data(), mutated.size());
          while (auto f = reader.next()) {
            decode_by_type(*f);
          }
        },
        "mutated frame");
  }
}

TEST(ProtocolFuzzTest, RandomStreamsThroughTheFrameReaderInRandomChunks) {
  for (uint64_t i = 0; i < 1000; ++i) {
    FuzzRng rng(0x2000 + i);
    const std::vector<uint8_t> blob =
        rng.bytes(16 + static_cast<size_t>(rng.below(400)));
    FrameReader reader;
    only_protocol_error(
        [&] {
          size_t at = 0;
          while (at < blob.size()) {
            const size_t chunk = std::min<size_t>(
                1 + static_cast<size_t>(rng.below(64)), blob.size() - at);
            reader.feed(blob.data() + at, chunk);
            at += chunk;
            while (auto f = reader.next()) {
              (void)f;
            }
          }
        },
        "random stream");
  }
}

TEST(ProtocolFuzzTest, OversizeAndZeroLengthPrefixesAreRejected) {
  {
    // Length prefix far beyond kMaxFrameBytes: must throw before any
    // gigabyte allocation happens.
    FrameReader reader;
    const uint32_t huge = kMaxFrameBytes + 1;
    uint8_t prefix[5] = {0, 0, 0, 0, 1};
    std::memcpy(prefix, &huge, 4);
    reader.feed(prefix, sizeof(prefix));
    EXPECT_THROW((void)reader.next(), ProtocolError);
  }
  {
    FrameReader reader;
    const uint8_t zeros[4] = {0, 0, 0, 0};
    reader.feed(zeros, sizeof(zeros));
    EXPECT_THROW((void)reader.next(), ProtocolError);
  }
}

TEST(ProtocolFuzzTest, OverflowingTensorDimsAreRejectedNotAllocated) {
  // rank 2 with ~2^31 x 2^31 dims: numel * sizeof(float) wraps u64 to a
  // small number; the per-dim bound must catch it before the allocation.
  std::vector<uint8_t> body;
  const auto put_u = [&](auto v) {
    const size_t at = body.size();
    body.resize(at + sizeof(v));
    std::memcpy(body.data() + at, &v, sizeof(v));
  };
  put_u(static_cast<uint64_t>(1));   // id
  put_u(static_cast<uint64_t>(0));   // deadline_us
  put_u(static_cast<uint8_t>(2));    // priority (interactive)
  put_u(static_cast<uint16_t>(0));   // session_len (v4, empty)
  put_u(static_cast<uint16_t>(1));   // model_len
  body.push_back('m');
  put_u(static_cast<uint8_t>(2));    // rank
  put_u(static_cast<uint32_t>(1u << 31));
  put_u(static_cast<uint32_t>(1u << 31));
  EXPECT_THROW((void)decode_infer_request(body), ProtocolError);
}

TEST(ProtocolFuzzTest, FrameReaderBoundsItsBufferAgainstPipelineSpam) {
  FrameReader reader;
  // A peer that streams one enormous "frame" the reader can never
  // complete: feed() must throw at the buffer cap, not grow forever.
  const std::vector<uint8_t> chunk(1u << 20, 0x41);
  uint32_t len = kMaxFrameBytes;  // a maximal (but legal) length prefix
  std::vector<uint8_t> first(chunk);
  std::memcpy(first.data(), &len, 4);
  EXPECT_THROW(
      {
        reader.feed(first.data(), first.size());
        for (int i = 0; i < 80; ++i) {
          reader.feed(chunk.data(), chunk.size());
          (void)reader.next();
        }
      },
      ProtocolError);
}

TEST(ProtocolFuzzTest, TcpLoopbackFramingObeysTheSameContract) {
  // The framing contract must hold over a real TCP stream, where the
  // kernel re-chunks writes arbitrarily: valid frames survive byte-exact,
  // and garbage after them still only ever raises ProtocolError.
  const Endpoint requested = parse_endpoint("tcp:127.0.0.1:0");
  const int listen_fd = listen_on(requested, 4);
  const Endpoint bound = local_endpoint(listen_fd, requested);
  ASSERT_NE(bound.port, 0);
  const int client = connect_to(bound);
  const int server = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(server, 0);

  const std::vector<uint8_t> request_frame =
      encode_infer_request(valid_request());
  const std::vector<uint8_t> forward_frame =
      encode_forward_infer(valid_forward());
  FuzzRng rng(0x7c9);
  std::vector<uint8_t> garbage = rng.bytes(64);
  garbage[4] = 200;  // certainly not a known MsgType

  ASSERT_TRUE(write_with_deadline(client, request_frame, 2000));
  ASSERT_TRUE(write_with_deadline(client, forward_frame, 2000));
  ASSERT_TRUE(write_with_deadline(client, garbage, 2000));

  FrameReader reader;
  const std::optional<Frame> first =
      read_frame_with_deadline(server, reader, 2000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kInferRequest);
  // Byte-exact: re-encoding the decoded request reproduces the frame.
  EXPECT_EQ(encode_infer_request(decode_infer_request(first->body)),
            request_frame);
  const std::optional<Frame> second =
      read_frame_with_deadline(server, reader, 2000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kForwardInfer);
  EXPECT_EQ(encode_forward_infer(decode_forward_infer(second->body)),
            forward_frame);
  // The garbage tail: whatever happens, only ProtocolError may escape.
  only_protocol_error(
      [&] {
        for (int i = 0; i < 4; ++i) {
          if (auto f = read_frame_with_deadline(server, reader, 200)) {
            decode_by_type(*f);
          } else {
            break;
          }
        }
      },
      "tcp garbage tail");

  ::close(client);
  ::close(server);
  ::close(listen_fd);
}

TEST(ProtocolFuzzTest, EveryTruncationOfAV5FrameIsAProtocolError) {
  const std::vector<std::vector<uint8_t>> frames = {
      encode_load_version(valid_load()),
      encode_promote(RolloutCommand{"lenet-mini@v2", ""}),
      encode_rollback(RolloutCommand{"lenet-mini@v2", "divergence"}),
      encode_rollout_status(RolloutCommand{"lenet-mini", ""}),
      encode_rollout_reply(RolloutReply{false, "load: checksum mismatch"}),
      encode_health_ack(valid_versioned_ack()),
      // v6 supervisor control frames ride the same discipline.
      encode_supervise_command(SuperviseCommand{"release", "backend-a"}),
      encode_supervise_reply(
          RolloutReply{false, "lane 'backend-a' is not quarantined"}),
  };
  for (const std::vector<uint8_t>& frame : frames) {
    const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
    const MsgType type = static_cast<MsgType>(frame[4]);
    for (size_t cut = 0; cut < body.size(); ++cut) {
      const std::vector<uint8_t> truncated(
          body.begin(), body.begin() + static_cast<ptrdiff_t>(cut));
      // The health ack's trailing version list is the one legal
      // truncation point (v4 compat: the list may be absent entirely).
      if (type == MsgType::kHealthAck && cut == 8 + 1 + 4) continue;
      Frame f{type, truncated};
      EXPECT_THROW(decode_by_type(f), ProtocolError)
          << "type " << static_cast<int>(type) << " cut at " << cut;
    }
    Frame whole{type, body};
    decode_by_type(whole);  // the untruncated body must decode
  }
  // Round-trip spot checks on the untruncated bodies.
  {
    const std::vector<uint8_t> frame = encode_load_version(valid_load());
    const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
    const LoadVersionRequest decoded = decode_load_version(body);
    EXPECT_EQ(decoded.name, "lenet-mini@v2");
    EXPECT_EQ(decoded.state, valid_load().state);
  }
  {
    const std::vector<uint8_t> frame =
        encode_health_ack(valid_versioned_ack());
    const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
    EXPECT_EQ(decode_health_ack(body).versions,
              valid_versioned_ack().versions);
  }
}

TEST(ProtocolFuzzTest, MutatedVersionStringsNeverEscapeTheDecoders) {
  // Concentrated fire on the string fields of the lifecycle frames: every
  // byte of the name/reason regions xored through all 255 alternatives.
  const std::vector<uint8_t> lframe = encode_load_version(valid_load());
  const std::vector<uint8_t> rframe =
      encode_rollback(RolloutCommand{"lenet-mini@v2", "why"});
  for (const std::vector<uint8_t>* frame : {&lframe, &rframe}) {
    for (size_t at = 5; at < frame->size(); ++at) {
      for (uint64_t x = 1; x < 256; x += 37) {  // sampled, deterministic
        std::vector<uint8_t> body(frame->begin() + 5, frame->end());
        body[at - 5] ^= static_cast<uint8_t>(x);
        const MsgType type = static_cast<MsgType>((*frame)[4]);
        Frame f{type, body};
        only_protocol_error([&] { decode_by_type(f); },
                            "mutated version string");
      }
    }
  }
}

TEST(ProtocolFuzzTest, UnhandshakenControlFramesDropTheConnection) {
  // The handshake gate lives in SocketServer::handle_connection, so a
  // no-op handler suffices: a control frame before kHello must raise
  // ProtocolError server-side, observed here as a dropped connection.
  struct NopHandler : FrameHandler {
    bool handle(const Frame&, FrameSink&) override { return true; }
  };
  NopHandler handler;
  SocketServer server(handler, parse_endpoint("tcp:127.0.0.1:0"),
                      SocketServerOptions{});
  const std::vector<std::vector<uint8_t>> control = {
      encode_load_version(valid_load()),
      encode_promote(RolloutCommand{"m@v2", ""}),
      encode_rollback(RolloutCommand{"m@v2", "r"}),
      encode_rollout_status(RolloutCommand{"", ""}),
      encode_supervise_command(SuperviseCommand{"status", ""}),
  };
  for (const std::vector<uint8_t>& frame : control) {
    const int fd = connect_to(server.endpoint());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_with_deadline(fd, frame, 2000));
    // The server must close on us without answering.
    uint8_t byte = 0;
    pollfd pfd{fd, POLLIN, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "expected EOF, got a reply";
    ::close(fd);
  }
  // Control: the same frame after a handshake is accepted (the no-op
  // handler swallows it; the connection stays open).
  {
    const int fd = connect_to(server.endpoint());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_with_deadline(fd, encode_hello(Hello{}), 2000));
    ASSERT_TRUE(write_with_deadline(
        fd, encode_rollout_status(RolloutCommand{"", ""}), 2000));
    pollfd pfd{fd, POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 300), 0) << "connection unexpectedly closed";
    ::close(fd);
  }
}

TEST(ProtocolFuzzTest, PriorityAndStatusRangeChecks) {
  // Out-of-range priority byte in an otherwise valid request.
  std::vector<uint8_t> frame = encode_infer_request(valid_request());
  frame[4 + 1 + 8 + 8] = 7;  // header | id | deadline -> priority byte
  const std::vector<uint8_t> body(frame.begin() + 5, frame.end());
  EXPECT_THROW((void)decode_infer_request(body), ProtocolError);

  std::vector<uint8_t> rframe = encode_infer_response(valid_response());
  rframe[4 + 1 + 8] = 99;  // header | id -> status byte
  const std::vector<uint8_t> rbody(rframe.begin() + 5, rframe.end());
  EXPECT_THROW((void)decode_infer_response(rbody), ProtocolError);
}

}  // namespace
}  // namespace qsnc::serve
