// Retry-backoff schedule: exponential growth, [0.5, 1.0) jitter window,
// hard cap, determinism across instances, and server-hint combination.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/backoff.h"

namespace qsnc::serve {
namespace {

TEST(BackoffTest, DelaysStayInsideJitteredExponentialEnvelope) {
  BackoffConfig config;
  config.base_us = 1000;
  config.max_us = 64000;
  config.multiplier = 2.0;
  const Backoff backoff(config);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double ideal =
        std::min(1000.0 * std::pow(2.0, attempt), 64000.0);
    const uint64_t d = backoff.delay_us(attempt);
    EXPECT_GE(d, static_cast<uint64_t>(ideal * 0.5)) << attempt;
    EXPECT_LT(d, static_cast<uint64_t>(ideal)) << attempt;
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffConfig config;
  config.seed = 42;
  const Backoff a(config);
  const Backoff b(config);
  for (int attempt = 0; attempt < 20; ++attempt) {
    EXPECT_EQ(a.delay_us(attempt), b.delay_us(attempt));
  }
}

TEST(BackoffTest, DifferentSeedsDesynchronize) {
  BackoffConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const Backoff a(a_cfg);
  const Backoff b(b_cfg);
  int differing = 0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (a.delay_us(attempt) != b.delay_us(attempt)) ++differing;
  }
  // Jitter exists to spread retry storms; identical schedules would
  // defeat it. (Pure functions of the seed: exact count is stable.)
  EXPECT_GE(differing, 15);
}

TEST(BackoffTest, CapBoundsLateAttempts) {
  BackoffConfig config;
  config.base_us = 1000;
  config.max_us = 8000;
  const Backoff backoff(config);
  for (int attempt = 10; attempt < 64; ++attempt) {
    EXPECT_LE(backoff.delay_us(attempt), config.max_us);
    EXPECT_GE(backoff.delay_us(attempt), config.max_us / 2);
  }
}

TEST(BackoffTest, ServerHintFloorsButNeverExceedsCap) {
  BackoffConfig config;
  config.base_us = 100;
  config.max_us = 50000;
  const Backoff backoff(config);
  // Early attempt, big honest hint: the hint wins.
  EXPECT_EQ(backoff.delay_us(0, 20000), 20000u);
  // A wild hint is capped.
  EXPECT_EQ(backoff.delay_us(0, 10'000'000), 50000u);
  // A tiny hint never shrinks the schedule.
  EXPECT_GE(backoff.delay_us(5, 1), backoff.delay_us(5));
}

TEST(BackoffTest, InvalidConfigsThrow) {
  BackoffConfig zero_base;
  zero_base.base_us = 0;
  EXPECT_THROW(Backoff{zero_base}, std::invalid_argument);
  BackoffConfig cap_below_base;
  cap_below_base.base_us = 10;
  cap_below_base.max_us = 5;
  EXPECT_THROW(Backoff{cap_below_base}, std::invalid_argument);
  BackoffConfig shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_THROW(Backoff{shrinking}, std::invalid_argument);
  const Backoff ok{BackoffConfig{}};
  EXPECT_THROW(ok.delay_us(-1), std::invalid_argument);
}

}  // namespace
}  // namespace qsnc::serve
