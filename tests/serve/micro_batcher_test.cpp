// MicroBatcher contracts: coalescing, timeout flush, bounded-queue
// backpressure (reject, never block), and drain-then-shutdown with zero
// dropped requests. Uses a gateable fake backend so batch boundaries are
// deterministic regardless of scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"

namespace qsnc::serve {
namespace {

// Predicts floor(first pixel) and records every batch size. When gated,
// infer_batch blocks until release() — letting tests pile requests into
// the queue behind a known in-flight batch.
class FakeBackend final : public Backend {
 public:
  explicit FakeBackend(bool gated = false) : gated_(gated) {}

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return shape_; }

  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override {
    if (gated_) {
      std::unique_lock<std::mutex> lock(mu_);
      ++blocked_batches_;
      cv_blocked_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    const int64_t n = batch.dim(0);
    const int64_t numel = batch.numel() / n;
    std::vector<int64_t> out;
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(static_cast<int64_t>(batch[i * numel]));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_sizes_.push_back(n);
    }
    return out;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until the batcher thread is parked inside infer_batch.
  void wait_until_blocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_blocked_.wait(lock, [&] { return blocked_batches_ > 0; });
  }

  std::vector<int64_t> batch_sizes() {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }

 private:
  std::string kind_ = "fake";
  nn::Shape shape_ = {1, 2, 2};
  bool gated_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_blocked_;
  bool open_ = false;
  int blocked_batches_ = 0;
  std::vector<int64_t> batch_sizes_;
};

nn::Tensor image_with_value(float v) {
  nn::Tensor t({1, 2, 2});
  t.fill(v);
  return t;
}

TEST(MicroBatcherTest, SingleRequestRoundTrip) {
  FakeBackend backend;
  BatchOptions opts;
  opts.batch_timeout_us = 100;
  MicroBatcher batcher(backend, opts);
  Response r = batcher.submit(image_with_value(7.0f)).get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.prediction, 7);
  EXPECT_EQ(r.batch_size, 1u);
}

TEST(MicroBatcherTest, CoalescesQueuedRequestsIntoOneBatch) {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 4;
  opts.batch_timeout_us = 0;  // flush immediately: batching comes from
                              // the queue backlog, not the timer
  MicroBatcher batcher(backend, opts);

  // First request occupies the (gated) backend...
  std::future<Response> first = batcher.submit(image_with_value(0.0f));
  backend.wait_until_blocked();
  // ...so these four pile up and must ride in one max_batch=4 batch.
  std::vector<std::future<Response>> rest;
  for (int i = 1; i <= 4; ++i) {
    rest.push_back(batcher.submit(image_with_value(static_cast<float>(i))));
  }
  backend.release();

  EXPECT_EQ(first.get().prediction, 0);
  for (int i = 0; i < 4; ++i) {
    const Response r = rest[static_cast<size_t>(i)].get();
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.prediction, i + 1);
    EXPECT_EQ(r.batch_size, 4u);
  }
  const std::vector<int64_t> sizes = backend.batch_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 4);
}

TEST(MicroBatcherTest, TimeoutFlushesPartialBatch) {
  FakeBackend backend;
  BatchOptions opts;
  opts.max_batch = 64;
  opts.batch_timeout_us = 2000;
  MicroBatcher batcher(backend, opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.submit(image_with_value(1.0f)));
  }
  // Far fewer than max_batch: only the timeout can flush these.
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_LE(r.batch_size, 3u);
  }
}

TEST(MicroBatcherTest, BackpressureRejectsWithRetryHintAndNeverBlocks) {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 1;
  opts.queue_capacity = 2;
  opts.batch_timeout_us = 0;
  MicroBatcher batcher(backend, opts);

  std::future<Response> in_flight = batcher.submit(image_with_value(1.0f));
  backend.wait_until_blocked();
  std::future<Response> q1 = batcher.submit(image_with_value(2.0f));
  std::future<Response> q2 = batcher.submit(image_with_value(3.0f));
  EXPECT_EQ(batcher.queue_depth(), 2u);

  // Queue full: the next submits must resolve immediately with kRejected
  // (bounded wait proves submit didn't block on the gated backend).
  for (int i = 0; i < 3; ++i) {
    std::future<Response> rejected =
        batcher.submit(image_with_value(9.0f));
    ASSERT_EQ(rejected.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    const Response r = rejected.get();
    EXPECT_EQ(r.status, Status::kRejected);
    EXPECT_GT(r.retry_after_us, 0u);
  }

  backend.release();
  EXPECT_EQ(in_flight.get().status, Status::kOk);
  EXPECT_EQ(q1.get().status, Status::kOk);
  EXPECT_EQ(q2.get().status, Status::kOk);

  const ModelStatsSnapshot stats = batcher.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 3u);
}

TEST(MicroBatcherTest, DrainCompletesAllAcceptedRequests) {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 2;
  opts.queue_capacity = 64;
  MicroBatcher batcher(backend, opts);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 17; ++i) {
    futures.push_back(batcher.submit(image_with_value(1.0f)));
  }
  backend.wait_until_blocked();
  std::thread drainer([&] { batcher.drain(); });
  backend.release();
  drainer.join();

  // Zero dropped: every accepted request completed with kOk.
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, Status::kOk);
  }
  // And post-drain submissions are refused as kShutdown.
  const Response late = batcher.submit(image_with_value(1.0f)).get();
  EXPECT_EQ(late.status, Status::kShutdown);
}

TEST(MicroBatcherTest, ShapeMismatchIsImmediateError) {
  FakeBackend backend;
  MicroBatcher batcher(backend, BatchOptions{});
  nn::Tensor wrong({3, 4, 4});
  const Response r = batcher.submit(wrong).get();
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("shape"), std::string::npos);
}

TEST(MicroBatcherTest, ManyProducersAllComplete) {
  FakeBackend backend;
  BatchOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 4096;
  MicroBatcher batcher(backend, opts);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (batcher.submit(image_with_value(1.0f)).get().status ==
            Status::kOk) {
          ++ok;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ok.load(), kProducers * kPerProducer);
  const ModelStatsSnapshot stats = batcher.stats();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_GT(stats.p50_us, 0u);
  EXPECT_GE(stats.p99_us, stats.p50_us);
}

TEST(MicroBatcherTest, ExpiredDeadlineIsStructuredRejection) {
  FakeBackend backend(/*gated=*/true);
  BatchOptions opts;
  opts.max_batch = 1;
  opts.batch_timeout_us = 0;
  MicroBatcher batcher(backend, opts);

  // Request A occupies the backend; B waits in the queue with a 1 us
  // budget that is long gone by the time A's batch completes and B's
  // batch forms.
  std::future<Response> a = batcher.submit(image_with_value(3.0f));
  backend.wait_until_blocked();
  std::future<Response> b =
      batcher.submit(image_with_value(4.0f), /*deadline_us=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  backend.release();

  EXPECT_EQ(a.get().status, Status::kOk);
  const Response rb = b.get();
  EXPECT_EQ(rb.status, Status::kDeadlineExceeded);
  EXPECT_NE(rb.error.find("deadline"), std::string::npos);
  EXPECT_GT(rb.latency_us, 0u);
  // The expired request never reached the backend.
  for (int64_t n : backend.batch_sizes()) EXPECT_EQ(n, 1);
  EXPECT_EQ(batcher.stats().deadline_exceeded, 1u);
  EXPECT_EQ(batcher.stats().completed, 1u);
}

TEST(MicroBatcherTest, GenerousAndZeroDeadlinesComplete) {
  FakeBackend backend;
  BatchOptions opts;
  opts.max_batch = 2;
  opts.batch_timeout_us = 100;
  MicroBatcher batcher(backend, opts);
  std::future<Response> none = batcher.submit(image_with_value(1.0f));
  std::future<Response> generous =
      batcher.submit(image_with_value(2.0f), /*deadline_us=*/60'000'000);
  EXPECT_EQ(none.get().status, Status::kOk);
  EXPECT_EQ(generous.get().status, Status::kOk);
  EXPECT_EQ(batcher.stats().deadline_exceeded, 0u);
}

TEST(MicroBatcherTest, DegradedFlagPropagatesToResponses) {
  class Degraded final : public Backend {
   public:
    const std::string& kind() const override { return kind_; }
    const nn::Shape& input_shape() const override { return shape_; }
    std::vector<int64_t> infer_batch(const nn::Tensor& batch) override {
      return std::vector<int64_t>(static_cast<size_t>(batch.dim(0)), 9);
    }
    bool last_batch_degraded() const override { return true; }

   private:
    std::string kind_ = "fake";
    nn::Shape shape_ = {1, 2, 2};
  };
  Degraded backend;
  MicroBatcher batcher(backend, BatchOptions{});
  const Response r = batcher.submit(image_with_value(1.0f)).get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.prediction, 9);
  EXPECT_EQ(batcher.stats().degraded, 1u);
}

}  // namespace
}  // namespace qsnc::serve
