// End-to-end socket serving: SocketServer + SocketClient over a unix
// socket must return the same predictions as the direct forward path,
// survive concurrent client connections, answer stats requests, and shut
// down gracefully with zero dropped requests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace qsnc::serve {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/qsnc-serve-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

std::vector<nn::Tensor> random_images(int n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

class SocketServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ModelConfig cfg;
    cfg.architecture = "lenet-mini";
    cfg.backend = BackendKind::kFp32;
    cfg.init_seed = 5;
    registry_.add("lenet-mini", cfg);
    BatchOptions opts;
    opts.max_batch = 4;
    opts.batch_timeout_us = 500;
    opts.queue_capacity = 1024;
    core_ = std::make_unique<ServeCore>(registry_, opts);
  }

  ModelRegistry registry_;
  std::unique_ptr<ServeCore> core_;
};

TEST_F(SocketServeFixture, PredictionsMatchDirectForward) {
  const std::string path = temp_socket_path("match");
  SocketServer server(*core_, path);

  const auto images = random_images(8, 99);
  SocketClient client(path);
  std::vector<int64_t> served;
  for (const nn::Tensor& img : images) {
    const Response r = client.infer("lenet-mini", img);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_GT(r.latency_us, 0u);
    served.push_back(r.prediction);
  }
  server.stop();

  nn::Rng rng(5);
  nn::Network net = models::make_lenet_mini(rng);
  for (size_t i = 0; i < images.size(); ++i) {
    nn::Tensor scaled({1, 1, 28, 28});
    std::copy(images[i].data(), images[i].data() + images[i].numel(),
              scaled.data());
    scaled *= 16.0f;
    EXPECT_EQ(served[i], net.predict(scaled)[0]) << "image " << i;
  }
}

TEST_F(SocketServeFixture, ConcurrentClientsZeroDrops) {
  const std::string path = temp_socket_path("conc");
  SocketServer server(*core_, path);

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SocketClient client(path);
      const auto images =
          random_images(kPerClient, 1000 + static_cast<uint64_t>(c));
      for (const nn::Tensor& img : images) {
        Response r = client.infer("lenet-mini", img);
        // Bounded retry on backpressure, per the serving contract.
        for (int retry = 0; retry < 64 && r.status == Status::kRejected;
             ++retry) {
          ++rejected;
          std::this_thread::sleep_for(
              std::chrono::microseconds(std::min<uint64_t>(
                  r.retry_after_us, 20000)));
          r = client.infer("lenet-mini", img);
        }
        if (r.status == Status::kOk) {
          ++ok;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kClients));
}

TEST_F(SocketServeFixture, StatsRequestReturnsTable) {
  const std::string path = temp_socket_path("stats");
  SocketServer server(*core_, path);
  SocketClient client(path);
  const auto images = random_images(3, 4);
  for (const nn::Tensor& img : images) {
    ASSERT_EQ(client.infer("lenet-mini", img).status, Status::kOk);
  }
  const std::string table = client.stats();
  EXPECT_NE(table.find("lenet-mini"), std::string::npos);
  EXPECT_NE(table.find("fp32"), std::string::npos);
  server.stop();
}

TEST_F(SocketServeFixture, UnknownModelOverSocketIsError) {
  const std::string path = temp_socket_path("ghost");
  SocketServer server(*core_, path);
  SocketClient client(path);
  nn::Tensor img({1, 28, 28});
  const Response r = client.infer("ghost", img);
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("unknown model"), std::string::npos);
  server.stop();
}

TEST_F(SocketServeFixture, StopIsIdempotentAndDrains) {
  const std::string path = temp_socket_path("stop");
  auto server = std::make_unique<SocketServer>(*core_, path);
  {
    SocketClient client(path);
    const auto images = random_images(2, 8);
    for (const nn::Tensor& img : images) {
      ASSERT_EQ(client.infer("lenet-mini", img).status, Status::kOk);
    }
  }
  server->stop();
  server->stop();  // idempotent
  server.reset();  // dtor after explicit stop is fine too

  // The socket file is gone and the core is drained: late in-process
  // submissions report shutdown rather than hanging.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  nn::Tensor img({1, 28, 28});
  EXPECT_EQ(core_->infer("lenet-mini", img).status, Status::kShutdown);
}

}  // namespace
}  // namespace qsnc::serve
