// Shared helpers for the qsnc test suites.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "nn/layer.h"
#include "nn/network.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace qsnc::test {

/// Fills a tensor with deterministic pseudo-random values in [-1, 1].
inline void randomize(nn::Tensor& t, nn::Rng& rng, float lo = -1.0f,
                      float hi = 1.0f) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
}

/// Scalar loss used by gradient checks: 0.5 * sum(y^2), dLoss/dy = y.
inline float half_sq(const nn::Tensor& y) { return 0.5f * y.squared_norm(); }

/// Checks the analytic input gradient of `layer` against central
/// differences. Returns the max absolute deviation.
inline float gradcheck_input(nn::Layer& layer, nn::Tensor input,
                             float eps = 1e-3f) {
  nn::Tensor out = layer.forward(input, /*train=*/true);
  nn::Tensor grad_in = layer.backward(out);  // dLoss/dOut = out for half_sq

  float max_dev = 0.0f;
  for (int64_t i = 0; i < input.numel(); ++i) {
    const float saved = input[i];
    input[i] = saved + eps;
    const float lp = half_sq(layer.forward(input, true));
    input[i] = saved - eps;
    const float lm = half_sq(layer.forward(input, true));
    input[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    max_dev = std::max(max_dev, std::fabs(numeric - grad_in[i]));
  }
  // Restore the cached state for the caller.
  layer.forward(input, true);
  return max_dev;
}

/// Checks the analytic parameter gradients of `layer` against central
/// differences on a fixed input. Returns the max absolute deviation over
/// all parameters.
inline float gradcheck_params(nn::Layer& layer, const nn::Tensor& input,
                              float eps = 1e-3f) {
  for (nn::Param* p : layer.params()) p->zero_grad();
  nn::Tensor out = layer.forward(input, /*train=*/true);
  layer.backward(out);

  float max_dev = 0.0f;
  for (nn::Param* p : layer.params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float lp = half_sq(layer.forward(input, true));
      p->value[i] = saved - eps;
      const float lm = half_sq(layer.forward(input, true));
      p->value[i] = saved;
      const float numeric = (lp - lm) / (2.0f * eps);
      max_dev = std::max(max_dev, std::fabs(numeric - p->grad[i]));
    }
  }
  return max_dev;
}

}  // namespace qsnc::test
