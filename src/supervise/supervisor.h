// Process supervisor for the serving fleet: spawn, monitor, restart,
// quarantine.
//
// One Supervisor owns the lanes of a SupervisorSpec. start() forks and
// execs every lane and launches a monitor thread that
//
//  * reaps exited children (per-lane waitpid WNOHANG poll),
//  * schedules restarts on the CrashLoopTracker's exponential-jitter
//    delay, and
//  * quarantines lanes the tracker flags as crash-looping — the lane
//    stays down, its structured reason surfaces in the status table, and
//    only release() (the `qsnc supervisor release` verb over the control
//    endpoint) revives it.
//
// stop() drains gracefully: SIGTERM to every child, a bounded wait for
// voluntary exit (serving nodes flush their journals and close sockets
// on SIGTERM), then SIGKILL escalation for anything still alive — the
// supervisor never leaks children. The monitor thread is the only place
// that forks or reaps, so pid bookkeeping has a single writer; status()
// and release() synchronize with it through one mutex.
//
// The control endpoint is plain protocol v6 over a serve::SocketServer:
// SupervisorFrameHandler answers kHello, kHealthProbe, kStatsRequest
// (the status table), and kSuperviseCommand ("status" | "release
// <lane>").
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "supervise/crash_loop.h"
#include "supervise/spec.h"

namespace qsnc::supervise {

struct SupervisorOptions {
  CrashLoopOptions crash_loop;
  /// SIGTERM -> SIGKILL escalation budget on stop().
  int64_t drain_timeout_ms = 2000;
  /// Monitor thread reap/restart poll cadence.
  int64_t poll_interval_ms = 20;
};

/// Point-in-time view of one lane (status table row).
struct LaneStatus {
  std::string name;
  pid_t pid = -1;  // -1 when not running
  std::string state;  // "running" | "backoff" | "quarantined" | "stopped"
  int restarts = 0;
  std::string last_exit;  // "exit N" | "signal N" | "" before first exit
  std::string quarantine_reason;
};

class Supervisor {
 public:
  Supervisor(const SupervisorSpec& spec,
             const SupervisorOptions& options = {});
  ~Supervisor();  // stop()s
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every lane and starts the monitor thread. Throws
  /// std::runtime_error if called twice.
  void start();

  /// Graceful drain: SIGTERM all children, wait up to drain_timeout_ms,
  /// SIGKILL the rest, reap everything, join the monitor. Idempotent.
  void stop();

  /// Lifts a crash-loop quarantine; the lane restarts on the next
  /// monitor tick. Returns false when no such lane exists or the lane is
  /// not quarantined (message explains which).
  bool release(const std::string& lane, std::string* message = nullptr);

  std::vector<LaneStatus> status() const;

  /// Status table rendering (one row per lane).
  std::string status_report() const;

  /// Blocks until SIGINT/SIGTERM, then stop()s. Installs its handlers
  /// for the call's duration; only one instance may run this at a time.
  void run_until_signal();

 private:
  struct Lane {
    LaneSpec spec;
    CrashLoopTracker tracker;
    pid_t pid = -1;
    int restarts = 0;
    int64_t restart_at_us = -1;  // >= 0: restart pending at this time
    std::string last_exit;
    bool release_pending = false;
  };

  static int64_t now_us();
  void monitor_loop();
  /// Forks/execs `lane`'s argv. Caller holds mu_. Returns false (lane
  /// left down, scheduled per tracker) when fork itself fails.
  bool spawn_locked(Lane& lane);
  void reap_locked(Lane& lane, int wait_status);

  SupervisorOptions options_;
  mutable std::mutex mu_;
  std::vector<Lane> lanes_;
  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

/// Protocol v6 control endpoint semantics for a Supervisor (see
/// serve/protocol.h): kSuperviseCommand verbs "status" and "release
/// <lane>", answered by kSuperviseReply; plus kHello, kHealthProbe and
/// kStatsRequest so the standard probes work against a supervisor.
class SupervisorFrameHandler : public serve::FrameHandler {
 public:
  explicit SupervisorFrameHandler(Supervisor& supervisor)
      : supervisor_(supervisor) {}
  bool handle(const serve::Frame& frame, serve::FrameSink& sink) override;

 private:
  Supervisor& supervisor_;
};

}  // namespace qsnc::supervise
