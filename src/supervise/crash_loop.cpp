#include "supervise/crash_loop.h"

namespace qsnc::supervise {

CrashLoopTracker::CrashLoopTracker(const CrashLoopOptions& options)
    : options_(options), backoff_(options.backoff) {}

void CrashLoopTracker::on_start(int64_t now_us) { last_start_us_ = now_us; }

std::optional<int64_t> CrashLoopTracker::on_exit(int64_t now_us,
                                                 const std::string& why) {
  if (quarantined_) return std::nullopt;
  if (last_start_us_ >= 0 &&
      now_us - last_start_us_ >= options_.healthy_reset_us) {
    attempt_ = 0;  // the run was healthy; forgive earlier crashes
  }
  exits_.push_back(now_us);
  while (!exits_.empty() && exits_.front() <= now_us - options_.window_us) {
    exits_.pop_front();
  }
  if (options_.quarantine_exits > 0 &&
      exits_.size() >= static_cast<size_t>(options_.quarantine_exits)) {
    quarantined_ = true;
    quarantine_reason_ =
        "crash loop: " + std::to_string(exits_.size()) + " exit(s) within " +
        std::to_string(options_.window_us / 1000000) + "s (last: " + why +
        ")";
    return std::nullopt;
  }
  const uint64_t delay = backoff_.delay_us(attempt_);
  ++attempt_;
  return now_us + static_cast<int64_t>(delay);
}

void CrashLoopTracker::release() {
  quarantined_ = false;
  quarantine_reason_.clear();
  exits_.clear();
  attempt_ = 0;
}

}  // namespace qsnc::supervise
