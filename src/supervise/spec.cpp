#include "supervise/spec.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace qsnc::supervise {

namespace {

std::string trim(const std::string& s) {
  const size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return std::string();
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::invalid_argument("supervisor spec line " +
                              std::to_string(line_no) + ": " + why);
}

}  // namespace

SupervisorSpec parse_supervisor_spec(const std::string& text) {
  SupervisorSpec spec;
  std::set<std::string> names;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("lane ", 0) != 0) {
      fail(line_no, "expected 'lane <name> = <argv...>'");
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_no, "missing '=' after lane name");
    }
    LaneSpec lane;
    lane.name = trim(line.substr(5, eq - 5));
    if (lane.name.empty() ||
        lane.name.find_first_of(" \t") != std::string::npos) {
      fail(line_no, "lane name must be one non-empty word");
    }
    lane.argv = split_words(line.substr(eq + 1));
    if (lane.argv.empty()) {
      fail(line_no, "lane '" + lane.name + "' has an empty command");
    }
    if (!names.insert(lane.name).second) {
      fail(line_no, "duplicate lane name '" + lane.name + "'");
    }
    spec.lanes.push_back(std::move(lane));
  }
  return spec;
}

SupervisorSpec load_supervisor_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("supervisor: cannot read spec file '" + path +
                             "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_supervisor_spec(text.str());
}

}  // namespace qsnc::supervise
