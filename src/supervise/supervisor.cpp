#include "supervise/supervisor.h"

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "report/table.h"

namespace qsnc::supervise {

namespace {

std::string describe_exit(int wait_status) {
  if (WIFEXITED(wait_status)) {
    return "exit " + std::to_string(WEXITSTATUS(wait_status));
  }
  if (WIFSIGNALED(wait_status)) {
    return "signal " + std::to_string(WTERMSIG(wait_status));
  }
  return "status " + std::to_string(wait_status);
}

std::atomic<bool> g_signal_stop{false};

void handle_stop_signal(int) { g_signal_stop.store(true); }

}  // namespace

Supervisor::Supervisor(const SupervisorSpec& spec,
                       const SupervisorOptions& options)
    : options_(options) {
  for (const LaneSpec& lane_spec : spec.lanes) {
    Lane lane;
    lane.spec = lane_spec;
    lane.tracker = CrashLoopTracker(options_.crash_loop);
    lanes_.push_back(std::move(lane));
  }
}

Supervisor::~Supervisor() { stop(); }

int64_t Supervisor::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Supervisor::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) throw std::runtime_error("supervisor: already started");
    started_ = true;
    for (Lane& lane : lanes_) spawn_locked(lane);
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

bool Supervisor::spawn_locked(Lane& lane) {
  std::vector<char*> argv;
  argv.reserve(lane.spec.argv.size() + 1);
  for (const std::string& arg : lane.spec.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    // fork failure is transient (EAGAIN/ENOMEM): treat it like a crash so
    // the backoff schedule paces the retries.
    lane.last_exit = "fork failed";
    const auto retry = lane.tracker.on_exit(now_us(), lane.last_exit);
    lane.restart_at_us = retry.value_or(-1);
    return false;
  }
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    // exec failed; nothing sensible to do in the child but vanish with a
    // recognizable status (127, the shell's command-not-found).
    _exit(127);
  }
  lane.pid = pid;
  lane.restart_at_us = -1;
  lane.tracker.on_start(now_us());
  return true;
}

void Supervisor::reap_locked(Lane& lane, int wait_status) {
  lane.pid = -1;
  lane.last_exit = describe_exit(wait_status);
  const auto retry = lane.tracker.on_exit(now_us(), lane.last_exit);
  lane.restart_at_us = retry.value_or(-1);
}

void Supervisor::monitor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const int64_t now = now_us();
      for (Lane& lane : lanes_) {
        if (lane.pid > 0) {
          int wait_status = 0;
          const pid_t reaped = ::waitpid(lane.pid, &wait_status, WNOHANG);
          if (reaped == lane.pid) reap_locked(lane, wait_status);
        }
        if (lane.release_pending) {
          lane.release_pending = false;
          lane.tracker.release();
          lane.restart_at_us = now;
        }
        if (lane.pid < 0 && lane.restart_at_us >= 0 &&
            lane.restart_at_us <= now && !lane.tracker.quarantined()) {
          if (spawn_locked(lane)) ++lane.restarts;
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  // Past this point the monitor is gone; this thread owns the pids.
  std::lock_guard<std::mutex> lock(mu_);
  for (Lane& lane : lanes_) {
    if (lane.pid > 0) ::kill(lane.pid, SIGTERM);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  bool any_alive = true;
  while (any_alive && std::chrono::steady_clock::now() < deadline) {
    any_alive = false;
    for (Lane& lane : lanes_) {
      if (lane.pid <= 0) continue;
      int wait_status = 0;
      const pid_t reaped = ::waitpid(lane.pid, &wait_status, WNOHANG);
      if (reaped == lane.pid) {
        lane.last_exit = describe_exit(wait_status);
        lane.pid = -1;
      } else {
        any_alive = true;
      }
    }
    if (any_alive) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (Lane& lane : lanes_) {
    if (lane.pid <= 0) continue;
    // The drain budget is spent; escalate.
    ::kill(lane.pid, SIGKILL);
    int wait_status = 0;
    ::waitpid(lane.pid, &wait_status, 0);
    lane.last_exit = describe_exit(wait_status);
    lane.pid = -1;
  }
}

bool Supervisor::release(const std::string& lane_name, std::string* message) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Lane& lane : lanes_) {
    if (lane.spec.name != lane_name) continue;
    if (!lane.tracker.quarantined()) {
      if (message) *message = "lane '" + lane_name + "' is not quarantined";
      return false;
    }
    // The monitor thread applies the release on its next tick so all
    // tracker mutation stays on one thread.
    lane.release_pending = true;
    if (message) *message = "lane '" + lane_name + "' released";
    return true;
  }
  if (message) *message = "no such lane '" + lane_name + "'";
  return false;
}

std::vector<LaneStatus> Supervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LaneStatus> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    LaneStatus s;
    s.name = lane.spec.name;
    s.pid = lane.pid;
    s.restarts = lane.restarts;
    s.last_exit = lane.last_exit;
    if (lane.tracker.quarantined() && !lane.release_pending) {
      s.state = "quarantined";
      s.quarantine_reason = lane.tracker.quarantine_reason();
    } else if (lane.pid > 0) {
      s.state = "running";
    } else if (lane.restart_at_us >= 0 || lane.release_pending) {
      s.state = "backoff";
    } else {
      s.state = "stopped";
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Supervisor::status_report() const {
  report::Table t({"lane", "state", "pid", "restarts", "last exit",
                   "detail"});
  for (const LaneStatus& s : status()) {
    t.add_row({s.name, s.state, s.pid > 0 ? std::to_string(s.pid) : "-",
               std::to_string(s.restarts),
               s.last_exit.empty() ? "-" : s.last_exit,
               s.quarantine_reason.empty() ? "-" : s.quarantine_reason});
  }
  return t.to_string();
}

void Supervisor::run_until_signal() {
  g_signal_stop.store(false);
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int {}, old_term {};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);
  while (!g_signal_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  stop();
}

bool SupervisorFrameHandler::handle(const serve::Frame& frame,
                                    serve::FrameSink& sink) {
  using serve::MsgType;
  switch (frame.type) {
    case MsgType::kHello: {
      const serve::Hello hello = serve::decode_hello(frame.body);
      serve::HelloAck ack;
      ack.version = serve::kProtocolVersion;
      ack.accepted = hello.version == serve::kProtocolVersion;
      return sink.send(serve::encode_hello_ack(ack));
    }
    case MsgType::kHealthProbe: {
      const serve::HealthProbe probe =
          serve::decode_health_probe(frame.body);
      serve::HealthAck ack;
      ack.nonce = probe.nonce;
      ack.healthy = true;
      return sink.send(serve::encode_health_ack(ack));
    }
    case MsgType::kStatsRequest:
      return sink.send(
          serve::encode_stats_response(supervisor_.status_report()));
    case MsgType::kSuperviseCommand: {
      const serve::SuperviseCommand command =
          serve::decode_supervise_command(frame.body);
      serve::RolloutReply reply;
      if (command.verb == "status") {
        reply.ok = true;
        reply.message = supervisor_.status_report();
      } else if (command.verb == "release") {
        reply.ok = supervisor_.release(command.lane, &reply.message);
      } else {
        reply.ok = false;
        reply.message = "unknown supervise verb '" + command.verb +
                        "' (status|release)";
      }
      return sink.send(serve::encode_supervise_reply(reply));
    }
    default:
      throw serve::ProtocolError("unexpected frame type for supervisor");
  }
}

}  // namespace qsnc::supervise
