// Declarative lane spec for the fleet supervisor.
//
// A spec file names the long-running processes one supervisor owns, one
// lane per line:
//
//   # comments and blank lines are skipped
//   lane backend-a = ./qsnc serve --listen tcp:127.0.0.1:7101 --model lenet
//   lane backend-b = ./qsnc serve --listen tcp:127.0.0.1:7102 --model lenet
//
// A lane is "lane <name> = <argv...>": the name keys restart tracking,
// quarantine, and the status table; everything after the '=' is the
// whitespace-split argv (argv[0] resolved through PATH at spawn time).
// Parsing is strict — malformed lines, empty argv, and duplicate lane
// names all throw std::invalid_argument with the offending line number,
// so a typo'd spec fails at startup instead of spawning half a fleet.
#pragma once

#include <string>
#include <vector>

namespace qsnc::supervise {

struct LaneSpec {
  std::string name;
  std::vector<std::string> argv;
};

struct SupervisorSpec {
  std::vector<LaneSpec> lanes;
};

/// Parses spec text (see header comment). Throws std::invalid_argument
/// on malformed lines, empty argv, or duplicate lane names.
SupervisorSpec parse_supervisor_spec(const std::string& text);

/// Reads and parses a spec file. Throws std::runtime_error when the file
/// cannot be read, std::invalid_argument on parse errors.
SupervisorSpec load_supervisor_spec(const std::string& path);

}  // namespace qsnc::supervise
