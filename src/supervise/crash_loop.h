// Crash-loop detection for one supervised lane, as a pure state machine
// over an injected microsecond clock.
//
// The supervisor feeds it lifecycle events — on_start when the child is
// spawned, on_exit when waitpid reaps it — and it answers the one policy
// question: *when* may this lane restart, or never (quarantine)?
//
//  * Restart delays follow the serve/backoff exponential-jitter schedule
//    (the same curve clients use for kRejected retries), so a flapping
//    process backs off instead of hot-spinning fork/exec.
//  * A run that stays up at least healthy_reset_us counts as healthy and
//    resets the backoff attempt counter — one crash after a week of
//    uptime restarts fast again.
//  * quarantine_exits exits inside a sliding window_us window trip the
//    crash-loop detector: the lane is quarantined with a structured
//    reason (exit count, window, last exit description) and never
//    restarts until an operator calls release() (`qsnc supervisor
//    release <lane>`).
//
// Everything is a pure function of (options, event times): unit tests
// drive it with a synthetic clock and pin the exact quarantine boundary
// without sleeping.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "serve/backoff.h"

namespace qsnc::supervise {

struct CrashLoopOptions {
  /// Restart-delay schedule (attempt 0 after the first healthy-period
  /// crash, growing per consecutive crash).
  serve::BackoffConfig backoff{/*base_us=*/200000, /*max_us=*/5000000,
                               /*multiplier=*/2.0, /*seed=*/1};
  /// This many exits inside `window_us` quarantine the lane.
  int quarantine_exits = 5;
  /// Sliding window for the exit counter.
  int64_t window_us = 30'000'000;
  /// A run alive at least this long resets the backoff attempt counter.
  int64_t healthy_reset_us = 10'000'000;
};

class CrashLoopTracker {
 public:
  explicit CrashLoopTracker(const CrashLoopOptions& options = {});

  /// The child was spawned at `now_us`.
  void on_start(int64_t now_us);

  /// The child exited at `now_us`; `why` is the exit description
  /// ("exit 0", "signal 9") folded into the quarantine reason. Returns
  /// the earliest time the lane may restart, or nullopt when this exit
  /// tripped the crash-loop detector (the lane is now quarantined).
  std::optional<int64_t> on_exit(int64_t now_us, const std::string& why);

  bool quarantined() const { return quarantined_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// Lifts a quarantine and forgets the exit history; the next on_exit
  /// starts a fresh window. No-op when not quarantined.
  void release();

  /// Consecutive-crash counter feeding the backoff schedule.
  int attempt() const { return attempt_; }

 private:
  CrashLoopOptions options_;
  serve::Backoff backoff_;
  std::deque<int64_t> exits_;  // exit times still inside the window
  int attempt_ = 0;
  int64_t last_start_us_ = -1;
  bool quarantined_ = false;
  std::string quarantine_reason_;
};

}  // namespace qsnc::supervise
