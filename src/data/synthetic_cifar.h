// Procedural CIFAR-10 stand-in: 32x32x3 color images of ten parametric
// texture/shape classes with randomized colors, phase, scale, and noise.
//
// The classes are deliberately harder than the digit set (color instead of
// intensity cues, texture frequencies that alias under augmentation) so that
// the accuracy-vs-bit-width curves show the same qualitative gap the paper
// reports between MNIST (robust) and CIFAR-10 (sensitive).
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/rng.h"

namespace qsnc::data {

struct SyntheticCifarConfig {
  int64_t num_samples = 2000;
  uint64_t seed = 2;
  float noise_std = 0.07f;      // additive Gaussian pixel noise
  float color_jitter = 0.35f;   // random fg/bg color spread
};

/// Class ids: 0 h-stripes, 1 v-stripes, 2 diagonal stripes, 3 checkerboard,
/// 4 disc, 5 ring, 6 triangle, 7 radial gradient, 8 blobs, 9 cross.
DatasetPtr make_synthetic_cifar(const SyntheticCifarConfig& config);

/// Renders one sample of the given class (exposed for tests and examples).
Tensor render_cifar_class(int64_t cls, nn::Rng& rng,
                          const SyntheticCifarConfig& config);

}  // namespace qsnc::data
