#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace qsnc::data {

InMemoryDataset::InMemoryDataset(std::string name, Tensor images,
                                 std::vector<int64_t> labels,
                                 int64_t num_classes)
    : name_(std::move(name)),
      images_(std::move(images)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  if (images_.rank() != 4) {
    throw std::invalid_argument("InMemoryDataset: images must be [N,C,H,W]");
  }
  if (images_.dim(0) != static_cast<int64_t>(labels_.size())) {
    throw std::invalid_argument("InMemoryDataset: image/label count mismatch");
  }
  for (int64_t y : labels_) {
    if (y < 0 || y >= num_classes_) {
      throw std::invalid_argument("InMemoryDataset: label out of range");
    }
  }
}

Sample InMemoryDataset::get(int64_t index) const {
  if (index < 0 || index >= size()) {
    throw std::out_of_range("InMemoryDataset::get: index out of range");
  }
  const int64_t chw = images_.dim(1) * images_.dim(2) * images_.dim(3);
  Tensor img({images_.dim(1), images_.dim(2), images_.dim(3)});
  std::memcpy(img.data(), images_.data() + index * chw,
              static_cast<size_t>(chw) * sizeof(float));
  return Sample{std::move(img), labels_[static_cast<size_t>(index)]};
}

Shape InMemoryDataset::image_shape() const {
  return {images_.dim(1), images_.dim(2), images_.dim(3)};
}

Tensor InMemoryDataset::batch_images(int64_t first, int64_t count) const {
  if (first < 0 || count < 0 || first + count > size()) {
    throw std::out_of_range("InMemoryDataset::batch_images: bad range");
  }
  const int64_t chw = images_.dim(1) * images_.dim(2) * images_.dim(3);
  Tensor out({count, images_.dim(1), images_.dim(2), images_.dim(3)});
  std::memcpy(out.data(), images_.data() + first * chw,
              static_cast<size_t>(count * chw) * sizeof(float));
  return out;
}

Tensor InMemoryDataset::gather_images(
    const std::vector<int64_t>& indices) const {
  const int64_t chw = images_.dim(1) * images_.dim(2) * images_.dim(3);
  Tensor out({static_cast<int64_t>(indices.size()), images_.dim(1),
              images_.dim(2), images_.dim(3)});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    if (idx < 0 || idx >= size()) {
      throw std::out_of_range("InMemoryDataset::gather_images: bad index");
    }
    std::memcpy(out.data() + static_cast<int64_t>(i) * chw,
                images_.data() + idx * chw,
                static_cast<size_t>(chw) * sizeof(float));
  }
  return out;
}

std::vector<int64_t> InMemoryDataset::gather_labels(
    const std::vector<int64_t>& indices) const {
  std::vector<int64_t> out;
  out.reserve(indices.size());
  for (int64_t idx : indices) {
    if (idx < 0 || idx >= size()) {
      throw std::out_of_range("InMemoryDataset::gather_labels: bad index");
    }
    out.push_back(labels_[static_cast<size_t>(idx)]);
  }
  return out;
}

}  // namespace qsnc::data
