// Procedural MNIST stand-in: 28x28x1 grayscale images of the ten digits,
// rendered from per-digit stroke skeletons with random affine jitter, pen
// thickness variation, and additive noise.
//
// Substitution rationale (see DESIGN.md): the paper's experiments measure
// *relative* accuracy between the ideal fp32 network and its quantized
// deployments. That relationship is a property of the quantization path,
// not of the specific natural-image distribution, so a controllable
// procedural digit set preserves the experiments' shape while keeping the
// repository fully self-contained and offline.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/rng.h"

namespace qsnc::data {

struct SyntheticMnistConfig {
  int64_t num_samples = 2000;
  uint64_t seed = 1;
  float rotation_deg = 12.0f;   // max |rotation| applied per sample
  float scale_jitter = 0.15f;   // relative scale jitter
  float shift_px = 2.0f;        // max |translation| in pixels
  float noise_std = 0.05f;      // additive Gaussian pixel noise
  float pen_sigma = 0.9f;       // Gaussian pen radius in pixels
};

/// Generates a labelled digit dataset. Class balance is uniform
/// (round-robin), pixel values lie in [0, 1].
DatasetPtr make_synthetic_mnist(const SyntheticMnistConfig& config);

/// Renders a single digit image (exposed for tests and examples).
Tensor render_digit(int64_t digit, nn::Rng& rng,
                    const SyntheticMnistConfig& config);

}  // namespace qsnc::data
