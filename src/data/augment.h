// Training-time data augmentation: random shifts (with zero padding) and
// horizontal flips, the standard recipe for the CIFAR-style workloads.
// Augmentation operates on batches so it can slot between Batcher::next()
// and the forward pass without touching the dataset.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/rng.h"

namespace qsnc::data {

struct AugmentConfig {
  int64_t max_shift_px = 2;    // uniform shift in [-max, +max] per axis
  bool horizontal_flip = true; // 50% probability per image
  uint64_t seed = 21;
};

class Augmenter {
 public:
  explicit Augmenter(const AugmentConfig& config);

  /// Augments a batch [N, C, H, W] in place (each image independently).
  void apply(Tensor* batch);

  /// Augments one image [C, H, W] in place (exposed for tests).
  void apply_image(Tensor* image);

 private:
  AugmentConfig config_;
  nn::Rng rng_;
};

}  // namespace qsnc::data
