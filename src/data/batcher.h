// Mini-batch iteration with per-epoch shuffling and double-buffered
// prefetch: a background thread prepares batch n+1 (shuffle bookkeeping +
// gather copies) while the trainer computes on batch n. Production is
// strictly serialized on the one prefetch thread, so the delivered batch
// sequence — including the shuffle RNG stream and epoch boundaries — is
// bit-identical to the synchronous path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "nn/rng.h"

namespace qsnc::data {

/// One training mini-batch.
struct Batch {
  Tensor images;                // [N, C, H, W]
  std::vector<int64_t> labels;  // N entries
};

/// Iterates a dataset in shuffled mini-batches. Each call to next() returns
/// the next batch of the current epoch; when the epoch is exhausted the
/// index order is reshuffled and a new epoch begins transparently.
class Batcher {
 public:
  /// `prefetch` overlaps the next batch's preparation with the caller's
  /// compute. Sequence and epoch accounting are identical either way.
  Batcher(DatasetPtr dataset, int64_t batch_size, uint64_t seed,
          bool prefetch = true);
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Next mini-batch (the final batch of an epoch may be smaller).
  Batch next();

  /// Number of batches per epoch.
  int64_t batches_per_epoch() const;

  /// Completed epochs so far, as of the last batch handed out by next().
  int64_t epoch() const { return epoch_; }

  /// True when the background prefetch thread is active.
  bool prefetching() const { return prefetch_; }

 private:
  void reshuffle();
  Batch produce();  // synchronous single-batch preparation
  void prefetch_loop();

  DatasetPtr dataset_;
  int64_t batch_size_;
  nn::Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  int64_t epoch_ = 0;          // published to the consumer by next()
  int64_t produced_epoch_ = 0; // producer-side counter (prefetch thread)

  // Double buffer: the prefetch thread fills `slot_`, next() drains it.
  bool prefetch_ = false;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool slot_full_ = false;
  bool request_ = false;
  bool stop_ = false;
  Batch slot_;
  int64_t slot_epoch_ = 0;
  std::exception_ptr error_;
};

}  // namespace qsnc::data
