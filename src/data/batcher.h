// Mini-batch iteration with per-epoch shuffling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/rng.h"

namespace qsnc::data {

/// One training mini-batch.
struct Batch {
  Tensor images;                // [N, C, H, W]
  std::vector<int64_t> labels;  // N entries
};

/// Iterates a dataset in shuffled mini-batches. Each call to next() returns
/// the next batch of the current epoch; when the epoch is exhausted the
/// index order is reshuffled and a new epoch begins transparently.
class Batcher {
 public:
  Batcher(DatasetPtr dataset, int64_t batch_size, uint64_t seed);

  /// Next mini-batch (the final batch of an epoch may be smaller).
  Batch next();

  /// Number of batches per epoch.
  int64_t batches_per_epoch() const;

  /// Completed epochs so far.
  int64_t epoch() const { return epoch_; }

 private:
  void reshuffle();

  DatasetPtr dataset_;
  int64_t batch_size_;
  nn::Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  int64_t epoch_ = 0;
};

}  // namespace qsnc::data
