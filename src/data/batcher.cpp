#include "data/batcher.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace qsnc::data {

Batcher::Batcher(DatasetPtr dataset, int64_t batch_size, uint64_t seed,
                 bool prefetch)
    : dataset_(std::move(dataset)), batch_size_(batch_size), rng_(seed) {
  if (!dataset_) throw std::invalid_argument("Batcher: null dataset");
  if (batch_size_ <= 0) throw std::invalid_argument("Batcher: batch_size <= 0");
  order_.resize(static_cast<size_t>(dataset_->size()));
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
  prefetch_ = prefetch;
  if (prefetch_) {
    request_ = true;  // pre-produce the first batch immediately
    worker_ = std::thread([this] { prefetch_loop(); });
  }
}

Batcher::~Batcher() {
  if (prefetch_) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void Batcher::reshuffle() {
  std::shuffle(order_.begin(), order_.end(), rng_.engine());
  cursor_ = 0;
}

Batch Batcher::produce() {
  if (cursor_ >= dataset_->size()) {
    ++produced_epoch_;
    reshuffle();
  }
  const int64_t count =
      std::min(batch_size_, dataset_->size() - cursor_);
  std::vector<int64_t> indices(order_.begin() + cursor_,
                               order_.begin() + cursor_ + count);
  cursor_ += count;
  return Batch{dataset_->gather_images(indices),
               dataset_->gather_labels(indices)};
}

void Batcher::prefetch_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || (request_ && !slot_full_); });
      if (stop_) return;
      request_ = false;
    }
    // Produce outside the lock: the consumer only blocks on slot_full_,
    // and all producer state (rng_, order_, cursor_) is touched by this
    // thread alone once the worker is running.
    Batch batch;
    std::exception_ptr error;
    try {
      batch = produce();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      slot_ = std::move(batch);
      slot_epoch_ = produced_epoch_;
      error_ = error;
      slot_full_ = true;
    }
    cv_.notify_all();
  }
}

Batch Batcher::next() {
  if (!prefetch_) {
    Batch batch = produce();
    epoch_ = produced_epoch_;
    return batch;
  }
  Batch batch;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return slot_full_; });
    if (error_) {
      // Leave the slot consumed so a retry requests a fresh batch.
      std::exception_ptr error = error_;
      error_ = nullptr;
      slot_full_ = false;
      request_ = true;
      cv_.notify_all();
      std::rethrow_exception(error);
    }
    batch = std::move(slot_);
    // Epoch accounting matches the synchronous path: the epoch counter the
    // producer saw when preparing *this* batch becomes visible only now.
    epoch_ = slot_epoch_;
    slot_full_ = false;
    request_ = true;  // overlap the next batch with the caller's compute
  }
  cv_.notify_all();
  return batch;
}

int64_t Batcher::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace qsnc::data
