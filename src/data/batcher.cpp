#include "data/batcher.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace qsnc::data {

Batcher::Batcher(DatasetPtr dataset, int64_t batch_size, uint64_t seed)
    : dataset_(std::move(dataset)), batch_size_(batch_size), rng_(seed) {
  if (!dataset_) throw std::invalid_argument("Batcher: null dataset");
  if (batch_size_ <= 0) throw std::invalid_argument("Batcher: batch_size <= 0");
  order_.resize(static_cast<size_t>(dataset_->size()));
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void Batcher::reshuffle() {
  std::shuffle(order_.begin(), order_.end(), rng_.engine());
  cursor_ = 0;
}

Batch Batcher::next() {
  if (cursor_ >= dataset_->size()) {
    ++epoch_;
    reshuffle();
  }
  const int64_t count =
      std::min(batch_size_, dataset_->size() - cursor_);
  std::vector<int64_t> indices(order_.begin() + cursor_,
                               order_.begin() + cursor_ + count);
  cursor_ += count;
  return Batch{dataset_->gather_images(indices),
               dataset_->gather_labels(indices)};
}

int64_t Batcher::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace qsnc::data
