#include "data/synthetic_cifar.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qsnc::data {

namespace {

constexpr int64_t kSize = 32;

struct Rgb {
  float r;
  float g;
  float b;
};

Rgb random_color(nn::Rng& rng, float base, float jitter) {
  return {std::clamp(base + rng.uniform(-jitter, jitter), 0.0f, 1.0f),
          std::clamp(base + rng.uniform(-jitter, jitter), 0.0f, 1.0f),
          std::clamp(base + rng.uniform(-jitter, jitter), 0.0f, 1.0f)};
}

void put(Tensor& img, int64_t y, int64_t x, const Rgb& c, float alpha) {
  const int64_t hw = kSize * kSize;
  const int64_t idx = y * kSize + x;
  img[idx] = img[idx] * (1.0f - alpha) + c.r * alpha;
  img[hw + idx] = img[hw + idx] * (1.0f - alpha) + c.g * alpha;
  img[2 * hw + idx] = img[2 * hw + idx] * (1.0f - alpha) + c.b * alpha;
}

void fill_bg(Tensor& img, const Rgb& c) {
  const int64_t hw = kSize * kSize;
  for (int64_t i = 0; i < hw; ++i) {
    img[i] = c.r;
    img[hw + i] = c.g;
    img[2 * hw + i] = c.b;
  }
}

}  // namespace

Tensor render_cifar_class(int64_t cls, nn::Rng& rng,
                          const SyntheticCifarConfig& config) {
  Tensor img({3, kSize, kSize});
  const Rgb bg = random_color(rng, 0.3f, config.color_jitter);
  const Rgb fg = random_color(rng, 0.75f, config.color_jitter);
  fill_bg(img, bg);

  const float cx = 16.0f + rng.uniform(-3.0f, 3.0f);
  const float cy = 16.0f + rng.uniform(-3.0f, 3.0f);

  switch (cls) {
    case 0: {  // horizontal stripes
      const float period = rng.uniform(4.0f, 8.0f);
      const float phase = rng.uniform(0.0f, period);
      for (int64_t y = 0; y < kSize; ++y) {
        const bool on =
            std::fmod(static_cast<float>(y) + phase, period) < period / 2.0f;
        if (!on) continue;
        for (int64_t x = 0; x < kSize; ++x) put(img, y, x, fg, 1.0f);
      }
      break;
    }
    case 1: {  // vertical stripes
      const float period = rng.uniform(4.0f, 8.0f);
      const float phase = rng.uniform(0.0f, period);
      for (int64_t x = 0; x < kSize; ++x) {
        const bool on =
            std::fmod(static_cast<float>(x) + phase, period) < period / 2.0f;
        if (!on) continue;
        for (int64_t y = 0; y < kSize; ++y) put(img, y, x, fg, 1.0f);
      }
      break;
    }
    case 2: {  // diagonal stripes
      const float period = rng.uniform(5.0f, 9.0f);
      const float phase = rng.uniform(0.0f, period);
      const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float d = static_cast<float>(x) + sign * static_cast<float>(y);
          if (std::fmod(std::fabs(d + phase), period) < period / 2.0f) {
            put(img, y, x, fg, 1.0f);
          }
        }
      }
      break;
    }
    case 3: {  // checkerboard
      const int64_t cell = rng.uniform_int(3, 6);
      const int64_t off = rng.uniform_int(0, cell - 1);
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          if ((((y + off) / cell) + ((x + off) / cell)) % 2 == 0) {
            put(img, y, x, fg, 1.0f);
          }
        }
      }
      break;
    }
    case 4: {  // filled disc
      const float radius = rng.uniform(6.0f, 11.0f);
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          if (d < radius) put(img, y, x, fg, 1.0f);
        }
      }
      break;
    }
    case 5: {  // ring
      const float radius = rng.uniform(7.0f, 11.0f);
      const float width = rng.uniform(2.0f, 3.5f);
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          if (std::fabs(d - radius) < width) put(img, y, x, fg, 1.0f);
        }
      }
      break;
    }
    case 6: {  // filled triangle (barycentric inside test)
      const float half = rng.uniform(8.0f, 12.0f);
      const float x0 = cx, y0 = cy - half;
      const float x1 = cx - half, y1 = cy + half;
      const float x2 = cx + half, y2 = cy + half;
      auto edge = [](float ax, float ay, float bx, float by, float px,
                     float py) {
        return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
      };
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float px = static_cast<float>(x), py = static_cast<float>(y);
          const float e0 = edge(x0, y0, x1, y1, px, py);
          const float e1 = edge(x1, y1, x2, y2, px, py);
          const float e2 = edge(x2, y2, x0, y0, px, py);
          if ((e0 >= 0 && e1 >= 0 && e2 >= 0) ||
              (e0 <= 0 && e1 <= 0 && e2 <= 0)) {
            put(img, y, x, fg, 1.0f);
          }
        }
      }
      break;
    }
    case 7: {  // radial gradient
      const float spread = rng.uniform(10.0f, 18.0f);
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          const float a = std::clamp(1.0f - d / spread, 0.0f, 1.0f);
          put(img, y, x, fg, a);
        }
      }
      break;
    }
    case 8: {  // smoothed random blobs
      std::array<float, kSize * kSize> noise{};
      for (float& v : noise) v = rng.uniform(0.0f, 1.0f);
      // Three box-blur passes approximate a Gaussian; threshold yields blobs.
      std::array<float, kSize * kSize> tmp{};
      for (int pass = 0; pass < 3; ++pass) {
        for (int64_t y = 0; y < kSize; ++y) {
          for (int64_t x = 0; x < kSize; ++x) {
            float acc = 0.0f;
            int count = 0;
            for (int64_t ky = -2; ky <= 2; ++ky) {
              for (int64_t kx = -2; kx <= 2; ++kx) {
                const int64_t yy = y + ky, xx = x + kx;
                if (yy < 0 || yy >= kSize || xx < 0 || xx >= kSize) continue;
                acc += noise[static_cast<size_t>(yy * kSize + xx)];
                ++count;
              }
            }
            tmp[static_cast<size_t>(y * kSize + x)] =
                acc / static_cast<float>(count);
          }
        }
        noise = tmp;
      }
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          if (noise[static_cast<size_t>(y * kSize + x)] > 0.52f) {
            put(img, y, x, fg, 1.0f);
          }
        }
      }
      break;
    }
    case 9: {  // cross / plus sign
      const float arm = rng.uniform(3.0f, 5.0f);
      const float span = rng.uniform(10.0f, 14.0f);
      for (int64_t y = 0; y < kSize; ++y) {
        for (int64_t x = 0; x < kSize; ++x) {
          const float ax = std::fabs(static_cast<float>(x) - cx);
          const float ay = std::fabs(static_cast<float>(y) - cy);
          if ((ax < arm && ay < span) || (ay < arm && ax < span)) {
            put(img, y, x, fg, 1.0f);
          }
        }
      }
      break;
    }
    default:
      throw std::invalid_argument("render_cifar_class: class out of range");
  }

  if (config.noise_std > 0.0f) {
    for (int64_t i = 0; i < img.numel(); ++i) {
      img[i] = std::clamp(img[i] + rng.normal(0.0f, config.noise_std), 0.0f,
                          1.0f);
    }
  }
  return img;
}

DatasetPtr make_synthetic_cifar(const SyntheticCifarConfig& config) {
  if (config.num_samples <= 0) {
    throw std::invalid_argument("make_synthetic_cifar: num_samples <= 0");
  }
  nn::Rng rng(config.seed);
  Tensor images({config.num_samples, 3, kSize, kSize});
  std::vector<int64_t> labels(static_cast<size_t>(config.num_samples));

  const int64_t chw = 3 * kSize * kSize;
  for (int64_t i = 0; i < config.num_samples; ++i) {
    const int64_t cls = i % 10;
    const Tensor img = render_cifar_class(cls, rng, config);
    std::copy(img.data(), img.data() + chw, images.data() + i * chw);
    labels[static_cast<size_t>(i)] = cls;
  }
  return std::make_shared<InMemoryDataset>("synthetic-cifar",
                                           std::move(images),
                                           std::move(labels), 10);
}

}  // namespace qsnc::data
