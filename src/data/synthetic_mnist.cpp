#include "data/synthetic_mnist.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace qsnc::data {

namespace {

constexpr int64_t kSize = 28;

struct Point {
  float x;
  float y;
};

using Polyline = std::vector<Point>;

// Appends a circular arc (degrees, counter-clockwise in image coordinates
// where y grows downward) approximated by short segments.
Polyline arc(float cx, float cy, float rx, float ry, float deg0, float deg1,
             int steps = 24) {
  Polyline line;
  line.reserve(static_cast<size_t>(steps) + 1);
  for (int i = 0; i <= steps; ++i) {
    const float t = deg0 + (deg1 - deg0) * static_cast<float>(i) /
                              static_cast<float>(steps);
    const float rad = t * std::numbers::pi_v<float> / 180.0f;
    line.push_back({cx + rx * std::cos(rad), cy + ry * std::sin(rad)});
  }
  return line;
}

// Stroke skeletons in a [0,1]x[0,1] box (x right, y down), hand-tuned to
// read as the ten digits.
std::vector<Polyline> digit_strokes(int64_t digit) {
  switch (digit) {
    case 0:
      return {arc(0.5f, 0.5f, 0.28f, 0.38f, 0.0f, 360.0f)};
    case 1:
      return {{{0.35f, 0.3f}, {0.55f, 0.12f}, {0.55f, 0.88f}},
              {{0.35f, 0.88f}, {0.75f, 0.88f}}};
    case 2: {
      Polyline top = arc(0.5f, 0.32f, 0.26f, 0.2f, 180.0f, 380.0f);
      top.push_back({0.25f, 0.88f});
      return {top, {{0.25f, 0.88f}, {0.78f, 0.88f}}};
    }
    case 3: {
      Polyline upper = arc(0.45f, 0.3f, 0.26f, 0.18f, 150.0f, 360.0f);
      Polyline lower = arc(0.45f, 0.68f, 0.28f, 0.2f, 0.0f, 210.0f);
      upper.push_back({0.45f, 0.48f});
      lower.insert(lower.begin(), {0.45f, 0.48f});
      return {upper, lower};
    }
    case 4:
      return {{{0.62f, 0.12f}, {0.22f, 0.62f}, {0.8f, 0.62f}},
              {{0.62f, 0.12f}, {0.62f, 0.88f}}};
    case 5: {
      Polyline belly = arc(0.48f, 0.66f, 0.28f, 0.22f, 270.0f, 90.0f);
      belly.insert(belly.begin(), {0.28f, 0.45f});
      belly.push_back({0.26f, 0.85f});
      return {{{0.75f, 0.12f}, {0.3f, 0.12f}, {0.28f, 0.45f}}, belly};
    }
    case 6: {
      Polyline hook = arc(0.52f, 0.3f, 0.3f, 0.25f, 200.0f, 290.0f);
      std::reverse(hook.begin(), hook.end());
      hook.push_back({0.26f, 0.62f});
      return {hook, arc(0.5f, 0.66f, 0.24f, 0.22f, 0.0f, 360.0f)};
    }
    case 7:
      return {{{0.24f, 0.14f}, {0.78f, 0.14f}, {0.42f, 0.88f}},
              {{0.35f, 0.5f}, {0.68f, 0.5f}}};
    case 8:
      return {arc(0.5f, 0.3f, 0.22f, 0.18f, 0.0f, 360.0f),
              arc(0.5f, 0.68f, 0.26f, 0.2f, 0.0f, 360.0f)};
    case 9: {
      Polyline tail = arc(0.5f, 0.34f, 0.24f, 0.22f, 0.0f, 60.0f);
      tail.push_back({0.6f, 0.88f});
      return {arc(0.5f, 0.34f, 0.24f, 0.22f, 0.0f, 360.0f), tail};
    }
    default:
      throw std::invalid_argument("digit_strokes: digit out of range");
  }
}

// Stamps a Gaussian pen dab centered at (px, py) in pixel coordinates.
void stamp(Tensor& img, float px, float py, float sigma, float intensity) {
  const int64_t radius = static_cast<int64_t>(std::ceil(3.0f * sigma));
  const int64_t x0 = std::max<int64_t>(0, static_cast<int64_t>(px) - radius);
  const int64_t x1 =
      std::min<int64_t>(kSize - 1, static_cast<int64_t>(px) + radius);
  const int64_t y0 = std::max<int64_t>(0, static_cast<int64_t>(py) - radius);
  const int64_t y1 =
      std::min<int64_t>(kSize - 1, static_cast<int64_t>(py) + radius);
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);
  for (int64_t y = y0; y <= y1; ++y) {
    for (int64_t x = x0; x <= x1; ++x) {
      const float dx = static_cast<float>(x) - px;
      const float dy = static_cast<float>(y) - py;
      const float v = intensity * std::exp(-(dx * dx + dy * dy) * inv2s2);
      float& pixel = img[y * kSize + x];
      pixel = std::max(pixel, v);
    }
  }
}

}  // namespace

Tensor render_digit(int64_t digit, nn::Rng& rng,
                    const SyntheticMnistConfig& config) {
  Tensor img({1, kSize, kSize});

  const float rot = rng.uniform(-config.rotation_deg, config.rotation_deg) *
                    std::numbers::pi_v<float> / 180.0f;
  const float scale =
      1.0f + rng.uniform(-config.scale_jitter, config.scale_jitter);
  const float dx = rng.uniform(-config.shift_px, config.shift_px);
  const float dy = rng.uniform(-config.shift_px, config.shift_px);
  const float sigma =
      config.pen_sigma * (1.0f + rng.uniform(-0.2f, 0.2f));
  const float cos_r = std::cos(rot);
  const float sin_r = std::sin(rot);

  auto to_pixel = [&](Point p) -> Point {
    // Center, rotate, scale, translate, then map to the 28x28 canvas with a
    // 4-pixel margin.
    const float cx = p.x - 0.5f;
    const float cy = p.y - 0.5f;
    const float rx = (cx * cos_r - cy * sin_r) * scale;
    const float ry = (cx * sin_r + cy * cos_r) * scale;
    return {(rx + 0.5f) * 20.0f + 4.0f + dx, (ry + 0.5f) * 20.0f + 4.0f + dy};
  };

  for (const Polyline& stroke : digit_strokes(digit)) {
    for (size_t i = 0; i + 1 < stroke.size(); ++i) {
      const Point a = to_pixel(stroke[i]);
      const Point b = to_pixel(stroke[i + 1]);
      const float len = std::hypot(b.x - a.x, b.y - a.y);
      const int steps = std::max(1, static_cast<int>(std::ceil(len * 2.0f)));
      for (int s = 0; s <= steps; ++s) {
        const float t = static_cast<float>(s) / static_cast<float>(steps);
        stamp(img, a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t, sigma, 1.0f);
      }
    }
  }

  if (config.noise_std > 0.0f) {
    for (int64_t i = 0; i < img.numel(); ++i) {
      img[i] = std::clamp(img[i] + rng.normal(0.0f, config.noise_std), 0.0f,
                          1.0f);
    }
  }
  return img;
}

DatasetPtr make_synthetic_mnist(const SyntheticMnistConfig& config) {
  if (config.num_samples <= 0) {
    throw std::invalid_argument("make_synthetic_mnist: num_samples <= 0");
  }
  nn::Rng rng(config.seed);
  Tensor images({config.num_samples, 1, kSize, kSize});
  std::vector<int64_t> labels(static_cast<size_t>(config.num_samples));

  const int64_t chw = kSize * kSize;
  for (int64_t i = 0; i < config.num_samples; ++i) {
    const int64_t digit = i % 10;
    const Tensor img = render_digit(digit, rng, config);
    std::copy(img.data(), img.data() + chw, images.data() + i * chw);
    labels[static_cast<size_t>(i)] = digit;
  }
  return std::make_shared<InMemoryDataset>("synthetic-mnist",
                                           std::move(images),
                                           std::move(labels), 10);
}

}  // namespace qsnc::data
