#include "data/augment.h"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace qsnc::data {

Augmenter::Augmenter(const AugmentConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.max_shift_px < 0) {
    throw std::invalid_argument("Augmenter: negative shift");
  }
}

void Augmenter::apply_image(Tensor* image) {
  if (image == nullptr || image->rank() != 3) {
    throw std::invalid_argument("Augmenter::apply_image: need [C,H,W]");
  }
  const int64_t c = image->dim(0);
  const int64_t h = image->dim(1);
  const int64_t w = image->dim(2);

  const int64_t dy = config_.max_shift_px > 0
                         ? rng_.uniform_int(-config_.max_shift_px,
                                            config_.max_shift_px)
                         : 0;
  const int64_t dx = config_.max_shift_px > 0
                         ? rng_.uniform_int(-config_.max_shift_px,
                                            config_.max_shift_px)
                         : 0;
  const bool flip = config_.horizontal_flip && rng_.bernoulli(0.5);

  if (dy == 0 && dx == 0 && !flip) return;

  std::vector<float> out(static_cast<size_t>(image->numel()), 0.0f);
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = image->data() + ch * h * w;
    float* dst = out.data() + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      const int64_t sy = y - dy;
      if (sy < 0 || sy >= h) continue;
      for (int64_t x = 0; x < w; ++x) {
        int64_t sx = x - dx;
        if (flip) sx = w - 1 - sx;
        if (sx < 0 || sx >= w) continue;
        dst[y * w + x] = src[sy * w + sx];
      }
    }
  }
  std::memcpy(image->data(), out.data(),
              static_cast<size_t>(image->numel()) * sizeof(float));
}

void Augmenter::apply(Tensor* batch) {
  if (batch == nullptr || batch->rank() != 4) {
    throw std::invalid_argument("Augmenter::apply: need [N,C,H,W]");
  }
  const int64_t n = batch->dim(0);
  const int64_t chw = batch->dim(1) * batch->dim(2) * batch->dim(3);
  for (int64_t i = 0; i < n; ++i) {
    Tensor view({batch->dim(1), batch->dim(2), batch->dim(3)});
    std::memcpy(view.data(), batch->data() + i * chw,
                static_cast<size_t>(chw) * sizeof(float));
    apply_image(&view);
    std::memcpy(batch->data() + i * chw, view.data(),
                static_cast<size_t>(chw) * sizeof(float));
  }
}

}  // namespace qsnc::data
