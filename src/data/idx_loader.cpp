#include "data/idx_loader.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace qsnc::data {

namespace {

uint32_t read_be32(std::ifstream& f) {
  unsigned char b[4];
  f.read(reinterpret_cast<char*>(b), 4);
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

std::vector<uint8_t> read_all(std::ifstream& f, size_t count) {
  std::vector<uint8_t> buf(count);
  f.read(reinterpret_cast<char*>(buf.data()),
         static_cast<std::streamsize>(count));
  if (!f) throw std::runtime_error("idx_loader: truncated file");
  return buf;
}

}  // namespace

std::optional<DatasetPtr> try_load_mnist(const std::string& dir, bool train) {
  namespace fs = std::filesystem;
  const std::string prefix = train ? "train" : "t10k";
  const fs::path img_path = fs::path(dir) / (prefix + "-images-idx3-ubyte");
  const fs::path lbl_path = fs::path(dir) / (prefix + "-labels-idx1-ubyte");
  if (!fs::exists(img_path) || !fs::exists(lbl_path)) return std::nullopt;

  std::ifstream img_f(img_path, std::ios::binary);
  std::ifstream lbl_f(lbl_path, std::ios::binary);
  if (!img_f || !lbl_f) return std::nullopt;

  if (read_be32(img_f) != 0x00000803) {
    throw std::runtime_error("try_load_mnist: bad image magic");
  }
  const uint32_t n = read_be32(img_f);
  const uint32_t rows = read_be32(img_f);
  const uint32_t cols = read_be32(img_f);
  if (rows != 28 || cols != 28) {
    throw std::runtime_error("try_load_mnist: unexpected image size");
  }
  if (read_be32(lbl_f) != 0x00000801) {
    throw std::runtime_error("try_load_mnist: bad label magic");
  }
  if (read_be32(lbl_f) != n) {
    throw std::runtime_error("try_load_mnist: image/label count mismatch");
  }

  const std::vector<uint8_t> pixels = read_all(img_f, size_t{n} * 28 * 28);
  const std::vector<uint8_t> raw_labels = read_all(lbl_f, n);

  Tensor images({static_cast<int64_t>(n), 1, 28, 28});
  for (size_t i = 0; i < pixels.size(); ++i) {
    images[static_cast<int64_t>(i)] = static_cast<float>(pixels[i]) / 255.0f;
  }
  std::vector<int64_t> labels(raw_labels.begin(), raw_labels.end());
  return std::make_shared<InMemoryDataset>("mnist", std::move(images),
                                           std::move(labels), 10);
}

std::optional<DatasetPtr> try_load_cifar10(const std::string& dir,
                                           bool train) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  if (train) {
    for (int i = 1; i <= 5; ++i) {
      files.push_back(fs::path(dir) /
                      ("data_batch_" + std::to_string(i) + ".bin"));
    }
  } else {
    files.push_back(fs::path(dir) / "test_batch.bin");
  }
  for (const auto& p : files) {
    if (!fs::exists(p)) return std::nullopt;
  }

  constexpr int64_t kRecord = 1 + 3 * 32 * 32;
  constexpr int64_t kPerFile = 10000;
  const int64_t total = kPerFile * static_cast<int64_t>(files.size());

  Tensor images({total, 3, 32, 32});
  std::vector<int64_t> labels(static_cast<size_t>(total));

  int64_t sample = 0;
  for (const auto& p : files) {
    std::ifstream f(p, std::ios::binary);
    if (!f) return std::nullopt;
    for (int64_t i = 0; i < kPerFile; ++i, ++sample) {
      unsigned char rec[kRecord];
      f.read(reinterpret_cast<char*>(rec), kRecord);
      if (!f) throw std::runtime_error("try_load_cifar10: truncated file");
      labels[static_cast<size_t>(sample)] = rec[0];
      float* dst = images.data() + sample * 3 * 32 * 32;
      for (int64_t j = 0; j < 3 * 32 * 32; ++j) {
        dst[j] = static_cast<float>(rec[1 + j]) / 255.0f;
      }
    }
  }
  return std::make_shared<InMemoryDataset>("cifar10", std::move(images),
                                           std::move(labels), 10);
}

}  // namespace qsnc::data
