// Loaders for the real MNIST (IDX) and CIFAR-10 (binary) file formats.
//
// The repository ships no data; these loaders exist so that a user with the
// real datasets on disk can rerun every experiment on them. All benches and
// examples call try_load_* first and fall back to the synthetic generators.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.h"

namespace qsnc::data {

/// Loads `<dir>/train-images-idx3-ubyte` + `<dir>/train-labels-idx1-ubyte`
/// (or the t10k pair when `train` is false). Returns nullopt when the files
/// are absent; throws std::runtime_error on malformed files.
std::optional<DatasetPtr> try_load_mnist(const std::string& dir, bool train);

/// Loads the CIFAR-10 binary batches data_batch_1..5.bin (train) or
/// test_batch.bin from `dir`. Returns nullopt when absent.
std::optional<DatasetPtr> try_load_cifar10(const std::string& dir, bool train);

}  // namespace qsnc::data
