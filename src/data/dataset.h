// Dataset abstraction and the in-memory implementation every loader and
// generator in qsnc produces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace qsnc::data {

using nn::Shape;
using nn::Tensor;

/// One labelled image in CHW layout.
struct Sample {
  Tensor image;   // [C, H, W]
  int64_t label;  // in [0, num_classes)
};

/// Read-only labelled image dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int64_t size() const = 0;
  virtual Sample get(int64_t index) const = 0;

  /// Per-image shape [C, H, W].
  virtual Shape image_shape() const = 0;
  virtual int64_t num_classes() const = 0;
  virtual std::string name() const = 0;
};

/// Dataset holding all images contiguously in memory.
class InMemoryDataset : public Dataset {
 public:
  /// `images` has shape [N, C, H, W]; `labels` has N entries.
  InMemoryDataset(std::string name, Tensor images,
                  std::vector<int64_t> labels, int64_t num_classes);

  int64_t size() const override { return static_cast<int64_t>(labels_.size()); }
  Sample get(int64_t index) const override;
  Shape image_shape() const override;
  int64_t num_classes() const override { return num_classes_; }
  std::string name() const override { return name_; }

  /// Zero-copy access to the full image block [N, C, H, W].
  const Tensor& images() const { return images_; }
  const std::vector<int64_t>& labels() const { return labels_; }

  /// Copies rows `first..first+count` into a batch tensor [count, C, H, W].
  Tensor batch_images(int64_t first, int64_t count) const;

  /// Gathers an arbitrary index set into a batch tensor.
  Tensor gather_images(const std::vector<int64_t>& indices) const;
  std::vector<int64_t> gather_labels(const std::vector<int64_t>& indices) const;

 private:
  std::string name_;
  Tensor images_;
  std::vector<int64_t> labels_;
  int64_t num_classes_;
};

using DatasetPtr = std::shared_ptr<InMemoryDataset>;

}  // namespace qsnc::data
