#include "core/weight_clustering.h"

#include <cmath>
#include <stdexcept>

#include "core/fixed_point.h"

namespace qsnc::core {

namespace {

// Applies one assignment + update sweep; returns the updated scale and the
// squared error under the *previous* scale's assignment.
struct SweepResult {
  double numerator = 0.0;    // sum w_i * k_i
  double denominator = 0.0;  // sum k_i^2
  double sq_error = 0.0;
  int64_t count = 0;
};

SweepResult assign_sweep(const std::vector<float*>& values,
                         const std::vector<int64_t>& counts, int bits,
                         float scale) {
  SweepResult r;
  const float step = scale / static_cast<float>(int64_t{1} << bits);
  for (size_t t = 0; t < values.size(); ++t) {
    const float* w = values[t];
    for (int64_t i = 0; i < counts[t]; ++i) {
      const int64_t k = weight_grid_index(w[i], bits, scale);
      const double q = static_cast<double>(k) * step;
      const double e = w[i] - q;
      r.numerator += static_cast<double>(w[i]) * static_cast<double>(k);
      r.denominator += static_cast<double>(k) * static_cast<double>(k);
      r.sq_error += e * e;
      ++r.count;
    }
  }
  return r;
}

float max_abs(const std::vector<float*>& values,
              const std::vector<int64_t>& counts) {
  float m = 0.0f;
  for (size_t t = 0; t < values.size(); ++t) {
    for (int64_t i = 0; i < counts[t]; ++i) {
      m = std::max(m, std::fabs(values[t][i]));
    }
  }
  return m;
}

void write_quantized(const std::vector<float*>& values,
                     const std::vector<int64_t>& counts, int bits,
                     float scale) {
  for (size_t t = 0; t < values.size(); ++t) {
    for (int64_t i = 0; i < counts[t]; ++i) {
      values[t][i] = quantize_weight_to_grid(values[t][i], bits, scale);
    }
  }
}

}  // namespace

WeightClusterResult cluster_weight_set(const std::vector<float*>& values,
                                       const std::vector<int64_t>& counts,
                                       const WeightClusterConfig& config) {
  if (values.size() != counts.size()) {
    throw std::invalid_argument("cluster_weight_set: size mismatch");
  }
  if (config.bits < 1 || config.bits > 16) {
    throw std::invalid_argument("cluster_weight_set: bits out of range");
  }

  WeightClusterResult result;
  const float wmax = max_abs(values, counts);
  if (wmax == 0.0f) {
    // All-zero weights are already on the grid.
    result.scale = 1.0f;
    return result;
  }

  // Naive scale: map max|W| onto the top level 2^{N-1} * s / 2^N = s/2.
  float scale = 2.0f * wmax;

  if (config.optimize_scale) {
    double prev_err = -1.0;
    for (int it = 0; it < config.max_iterations; ++it) {
      const SweepResult sweep =
          assign_sweep(values, counts, config.bits, scale);
      ++result.iterations;
      if (sweep.denominator <= 0.0) break;  // everything assigned to 0
      const float new_scale = static_cast<float>(
          sweep.numerator / sweep.denominator *
          static_cast<double>(int64_t{1} << config.bits));
      if (new_scale <= 0.0f) break;
      const bool converged =
          prev_err >= 0.0 &&
          std::fabs(prev_err - sweep.sq_error) <= 1e-12 * (prev_err + 1.0);
      prev_err = sweep.sq_error;
      scale = new_scale;
      if (converged) break;
    }
  }

  const SweepResult final_sweep =
      assign_sweep(values, counts, config.bits, scale);
  result.scale = scale;
  result.mse = final_sweep.count > 0
                   ? static_cast<float>(final_sweep.sq_error /
                                        static_cast<double>(final_sweep.count))
                   : 0.0f;
  write_quantized(values, counts, config.bits, scale);
  return result;
}

std::vector<WeightClusterResult> apply_weight_clustering(
    nn::Network& net, const WeightClusterConfig& config) {
  std::vector<WeightClusterResult> results;
  std::vector<nn::Param*> synapses;
  for (nn::Param* p : net.params()) {
    if (p->value.rank() >= 2) synapses.push_back(p);
  }

  if (config.scope == ClusterScope::kPerNetwork) {
    std::vector<float*> values;
    std::vector<int64_t> counts;
    for (nn::Param* p : synapses) {
      values.push_back(p->value.data());
      counts.push_back(p->value.numel());
    }
    results.push_back(cluster_weight_set(values, counts, config));
  } else {
    for (nn::Param* p : synapses) {
      results.push_back(cluster_weight_set({p->value.data()},
                                           {p->value.numel()}, config));
    }
  }
  return results;
}

WeightClusterResult cluster_tensor(const nn::Tensor& weights, int bits,
                                   bool optimize_scale, nn::Tensor* out) {
  if (out == nullptr) {
    throw std::invalid_argument("cluster_tensor: out must not be null");
  }
  *out = weights;
  WeightClusterConfig config;
  config.bits = bits;
  config.optimize_scale = optimize_scale;
  return cluster_weight_set({out->data()}, {out->numel()}, config);
}

}  // namespace qsnc::core
