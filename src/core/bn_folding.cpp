#include "core/bn_folding.h"

#include <cmath>
#include <stdexcept>

#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/residual.h"

namespace qsnc::core {

namespace {

// Absorbs bn's inference affine into conv, then neutralizes bn.
void fold_pair(nn::Conv2d& conv, nn::BatchNorm2d& bn) {
  if (conv.out_channels() != bn.channels()) {
    throw std::invalid_argument("fold_batchnorm: channel mismatch");
  }
  const int64_t per_filter = conv.in_channels() * conv.kernel() * conv.kernel();
  conv.enable_bias();
  for (int64_t oc = 0; oc < conv.out_channels(); ++oc) {
    float scale = 0.0f, shift = 0.0f;
    bn.inference_affine(oc, &scale, &shift);
    float* w = conv.weight().value.data() + oc * per_filter;
    for (int64_t i = 0; i < per_filter; ++i) w[i] *= scale;
    conv.bias().value[oc] = scale * conv.bias().value[oc] + shift;
  }
  bn.reset_to_identity();
}

}  // namespace

bool is_identity_batchnorm(const nn::BatchNorm2d& bn, float tol) {
  for (int64_t c = 0; c < bn.channels(); ++c) {
    if (std::fabs(bn.gamma()[c] - 1.0f) > tol) return false;
    if (std::fabs(bn.beta()[c]) > tol) return false;
    if (std::fabs(bn.running_mean()[c]) > tol) return false;
    if (std::fabs(bn.running_var()[c] - (1.0f - bn.eps())) > tol) {
      return false;
    }
  }
  return true;
}

int fold_batchnorm(nn::Network& net) {
  int folded = 0;
  nn::Conv2d* pending_conv = nullptr;

  for (size_t i = 0; i < net.size(); ++i) {
    nn::Layer* layer = &net.layer(i);
    if (auto* block = dynamic_cast<nn::ResidualBlock*>(layer)) {
      fold_pair(block->conv1(), block->bn1());
      fold_pair(block->conv2(), block->bn2());
      if (block->proj_conv() != nullptr) {
        fold_pair(*block->proj_conv(), *block->proj_bn());
        ++folded;
      }
      folded += 2;
      pending_conv = nullptr;
      continue;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(layer)) {
      pending_conv = conv;
      continue;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(layer)) {
      if (pending_conv == nullptr) {
        throw std::invalid_argument(
            "fold_batchnorm: BatchNorm2d without a preceding Conv2d");
      }
      fold_pair(*pending_conv, *bn);
      ++folded;
      pending_conv = nullptr;
      continue;
    }
    pending_conv = nullptr;
  }
  return folded;
}

}  // namespace qsnc::core
