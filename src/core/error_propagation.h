// Empirical check of the paper's error-propagation argument (Eq 4 / Eq 5).
//
// Sec 3.1 argues that after Neuron Convergence the quantization error
// introduced at one layer barely propagates: the error transmitted to
// layer i is a weighted sum of upstream errors (Eq 4), and with sparse,
// range-confined signals (and correspondingly small weights) that sum
// stays below the rounding threshold. Sec 3.2 makes the symmetric argument
// for weight error against sparse signals (Eq 5).
//
// This module measures the claim directly: it runs the same batch through
// the float network and the signal-quantized network, captures every
// inter-layer signal via the hook interface, and reports per-layer error
// and sparsity statistics. The proposed training should show flat (non-
// amplifying) error depth profiles; plain training shows compounding
// error — the fig_eq4 bench prints both side by side.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/network.h"

namespace qsnc::core {

struct LayerErrorStats {
  int layer_index = 0;           // position among signal layers
  double mean_signal = 0.0;      // mean |float signal|
  double mean_abs_error = 0.0;   // mean |quantized - float|
  double relative_error = 0.0;   // mean_abs_error / max(mean_signal, eps)
  double sparsity = 0.0;         // fraction of float signals below 0.5
};

/// Runs `batch_size` images from `data` through `net` twice — once in
/// fp32, once with an M-bit integer signal quantizer (and input encoder)
/// attached — and returns per-signal-layer error statistics in forward
/// order. The network is left with hooks detached.
std::vector<LayerErrorStats> analyze_error_propagation(
    nn::Network& net, const data::InMemoryDataset& data, int bits,
    float input_scale, int64_t batch_size = 64);

}  // namespace qsnc::core
