#include "core/related_baselines.h"

#include <cmath>
#include <stdexcept>

namespace qsnc::core {

namespace {

float mean_abs(const nn::Tensor& w) {
  if (w.numel() == 0) return 0.0f;
  double acc = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) acc += std::fabs(w[i]);
  return static_cast<float>(acc / static_cast<double>(w.numel()));
}

float mse_against(const nn::Tensor& a, const nn::Tensor& b) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

template <typename Fn>
std::vector<BaselineQuantResult> apply_to_synapses(nn::Network& net, Fn fn) {
  std::vector<BaselineQuantResult> results;
  for (nn::Param* p : net.params()) {
    if (p->value.rank() >= 2) results.push_back(fn(&p->value));
  }
  return results;
}

}  // namespace

BaselineQuantResult binarize_tensor(nn::Tensor* w) {
  if (w == nullptr) throw std::invalid_argument("binarize_tensor: null");
  const nn::Tensor original = *w;
  const float s = mean_abs(*w);
  for (int64_t i = 0; i < w->numel(); ++i) {
    (*w)[i] = (*w)[i] >= 0.0f ? s : -s;
  }
  return {s, mse_against(original, *w)};
}

BaselineQuantResult ternarize_tensor(nn::Tensor* w) {
  if (w == nullptr) throw std::invalid_argument("ternarize_tensor: null");
  const nn::Tensor original = *w;
  const float threshold = 0.7f * mean_abs(*w);

  // Scale: mean magnitude over the weights that survive the dead zone.
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < w->numel(); ++i) {
    const float a = std::fabs((*w)[i]);
    if (a > threshold) {
      acc += a;
      ++count;
    }
  }
  const float s =
      count > 0 ? static_cast<float>(acc / static_cast<double>(count)) : 0.0f;

  for (int64_t i = 0; i < w->numel(); ++i) {
    const float v = (*w)[i];
    (*w)[i] = std::fabs(v) > threshold ? (v > 0.0f ? s : -s) : 0.0f;
  }
  return {s, mse_against(original, *w)};
}

BaselineQuantResult power_of_two_tensor(nn::Tensor* w, int levels) {
  if (w == nullptr) throw std::invalid_argument("power_of_two_tensor: null");
  if (levels < 1 || levels > 32) {
    throw std::invalid_argument("power_of_two_tensor: bad level count");
  }
  const nn::Tensor original = *w;
  const float wmax = w->abs_max();
  if (wmax == 0.0f) return {0.0f, 0.0f};

  const int k_max = static_cast<int>(std::ceil(std::log2(wmax)));
  const int k_min = k_max - levels + 1;
  const float min_mag = std::ldexp(1.0f, k_min);

  for (int64_t i = 0; i < w->numel(); ++i) {
    const float v = (*w)[i];
    const float a = std::fabs(v);
    float q;
    if (a < min_mag * 0.5f) {
      q = 0.0f;  // nearer to zero than to the smallest magnitude
    } else {
      // Round the exponent to the nearest representable power.
      int k = static_cast<int>(std::lround(std::log2(a)));
      k = std::min(std::max(k, k_min), k_max);
      q = std::ldexp(1.0f, k);
    }
    (*w)[i] = v >= 0.0f ? q : -q;
  }
  return {std::ldexp(1.0f, k_max), mse_against(original, *w)};
}

std::vector<BaselineQuantResult> apply_binary_weights(nn::Network& net) {
  return apply_to_synapses(net,
                           [](nn::Tensor* w) { return binarize_tensor(w); });
}

std::vector<BaselineQuantResult> apply_ternary_weights(nn::Network& net) {
  return apply_to_synapses(net,
                           [](nn::Tensor* w) { return ternarize_tensor(w); });
}

std::vector<BaselineQuantResult> apply_power_of_two_weights(nn::Network& net,
                                                            int levels) {
  return apply_to_synapses(net, [levels](nn::Tensor* w) {
    return power_of_two_tensor(w, levels);
  });
}

}  // namespace qsnc::core
