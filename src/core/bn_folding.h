// Batch-norm folding for deployment.
//
// Crossbars realize only the linear map y = Wx (+ IFC bias offsets), so a
// trained network's batch-norm layers must be folded into their preceding
// convolutions before Weight Clustering and SNC programming:
//
//   BN(conv(x))_c = scale_c * (W_c * x + b_c) + shift_c
//                 = (scale_c * W_c) * x + (scale_c * b_c + shift_c)
//
// with (scale, shift) taken from the BN inference affine (running stats).
// After folding, the BN layer is reduced to the exact identity (gamma = 1,
// beta = 0, mean = 0, var = 1 - eps) so the network still evaluates
// normally and the SNC deployment can verify-and-skip it.
//
// Deployment order matters: fold FIRST, then cluster, then program — the
// folded weights are what must land on the conductance grid.
#pragma once

#include "nn/layers/batchnorm.h"
#include "nn/network.h"

namespace qsnc::core {

/// Folds every BatchNorm2d that directly follows a Conv2d — at the top
/// level of `net` and inside ResidualBlock composites (conv1/bn1, conv2/
/// bn2, and projection pairs). Returns the number of BN layers folded.
/// Throws std::invalid_argument if a BatchNorm2d has no preceding conv to
/// absorb it.
int fold_batchnorm(nn::Network& net);

/// True when the given BN layer is the exact identity a fold leaves
/// behind (used by the SNC deployment to verify-and-skip).
bool is_identity_batchnorm(const nn::BatchNorm2d& bn, float tol = 1e-5f);

}  // namespace qsnc::core
