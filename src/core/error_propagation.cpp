#include "core/error_propagation.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/fixed_point.h"
#include "nn/layers/relu.h"

namespace qsnc::core {

namespace {

/// Hook that optionally quantizes and always records the values flowing
/// through one signal layer.
class Tap final : public nn::SignalQuantizer {
 public:
  explicit Tap(const nn::SignalQuantizer* inner) : inner_(inner) {}

  float apply(float o) const override {
    const float out = inner_ != nullptr ? inner_->apply(o) : o;
    values_.push_back(out);
    return out;
  }
  bool pass_through(float o) const override {
    return inner_ == nullptr || inner_->pass_through(o);
  }

  const std::vector<float>& values() const { return values_; }
  void reset() { values_.clear(); }

 private:
  const nn::SignalQuantizer* inner_;
  mutable std::vector<float> values_;
};

}  // namespace

std::vector<LayerErrorStats> analyze_error_propagation(
    nn::Network& net, const data::InMemoryDataset& data, int bits,
    float input_scale, int64_t batch_size) {
  if (data.size() == 0) {
    throw std::invalid_argument("analyze_error_propagation: empty dataset");
  }
  const int64_t count = std::min<int64_t>(batch_size, data.size());
  std::vector<nn::ReLU*> signals = net.signal_layers();

  // Pass 1: fp32 reference.
  std::vector<std::unique_ptr<Tap>> float_taps;
  for (nn::ReLU* r : signals) {
    float_taps.push_back(std::make_unique<Tap>(nullptr));
    r->set_quantizer(float_taps.back().get());
  }
  {
    nn::Tensor batch = data.batch_images(0, count);
    batch *= input_scale;
    net.forward(batch, false);
  }

  // Pass 2: quantized signals + input encoder.
  IntegerSignalQuantizer q(bits);
  std::vector<std::unique_ptr<Tap>> quant_taps;
  for (size_t i = 0; i < signals.size(); ++i) {
    quant_taps.push_back(std::make_unique<Tap>(&q));
    signals[i]->set_quantizer(quant_taps.back().get());
  }
  {
    nn::Tensor batch = data.batch_images(0, count);
    batch *= input_scale;
    for (int64_t i = 0; i < batch.numel(); ++i) {
      batch[i] = quantize_input_signal(batch[i], bits);
    }
    net.forward(batch, false);
  }
  for (nn::ReLU* r : signals) r->set_quantizer(nullptr);

  std::vector<LayerErrorStats> stats;
  stats.reserve(signals.size());
  for (size_t i = 0; i < signals.size(); ++i) {
    const std::vector<float>& ref = float_taps[i]->values();
    const std::vector<float>& got = quant_taps[i]->values();
    if (ref.size() != got.size()) {
      throw std::logic_error(
          "analyze_error_propagation: tap size mismatch (network not "
          "deterministic across passes?)");
    }
    LayerErrorStats s;
    s.layer_index = static_cast<int>(i);
    double sum_signal = 0.0, sum_err = 0.0;
    int64_t sparse = 0;
    for (size_t j = 0; j < ref.size(); ++j) {
      sum_signal += std::fabs(ref[j]);
      sum_err += std::fabs(got[j] - ref[j]);
      if (ref[j] < 0.5f) ++sparse;
    }
    const double n = static_cast<double>(ref.size());
    s.mean_signal = sum_signal / n;
    s.mean_abs_error = sum_err / n;
    s.relative_error = s.mean_abs_error / std::max(s.mean_signal, 1e-9);
    s.sparsity = static_cast<double>(sparse) / n;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace qsnc::core
