// Weight Clustering (paper Sec 3.2): quantize all weights of a network to
// the N-bit linear fixed-point grid  D/2^N, D in {0, ±1, ..., ±2^{N-1}},
// by solving  D* = argmin ‖ s·D/2^N − W ‖²  (Eq 6 with an explicit scale s).
//
// The optimization alternates the two classic Lloyd steps the paper
// attributes to "k-nearest neighbors":
//   assignment:  k_i = nearest grid index of w_i given s   (1-NN on a line)
//   update:      s*  = 2^N · Σ w_i k_i / Σ k_i²            (closed form)
// which monotonically decreases the squared error.
//
// The "without" baseline quantizes in one shot with the naive scale that
// maps max|W| onto the top grid level — the straightforward deployment the
// paper's Tables 3/4 "w/o" rows represent.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "nn/tensor.h"

namespace qsnc::core {

/// Result of clustering one weight set.
struct WeightClusterResult {
  float scale = 0.0f;       // optimized s of Eq 6
  float mse = 0.0f;         // mean squared quantization error
  int iterations = 0;       // Lloyd iterations actually run
};

/// Scope of the shared grid scale.
enum class ClusterScope {
  kPerNetwork,  // one scale for all layers (paper default: uniform values)
  kPerLayer,    // one scale per parameter tensor (ablation)
};

struct WeightClusterConfig {
  int bits = 4;                         // N
  int max_iterations = 50;              // Lloyd cap (converges much earlier)
  ClusterScope scope = ClusterScope::kPerLayer;
  bool optimize_scale = true;           // false = naive one-shot ("w/o")
};

/// Clusters a flat list of weight pointers sharing one scale; writes the
/// quantized values back through the pointers.
WeightClusterResult cluster_weight_set(const std::vector<float*>& values,
                                       const std::vector<int64_t>& counts,
                                       const WeightClusterConfig& config);

/// Quantizes every *synaptic* weight tensor of `net` (rank >= 2: conv
/// kernels and dense matrices) in place per `config`. Returns one result
/// per scale group (1 for kPerNetwork, #tensors for kPerLayer).
///
/// Biases and batch-norm affine parameters stay in float: on the SNC
/// substrate they are not memristor conductances — they fold into the IFC
/// firing thresholds and counter offsets, which are digital (see snc/).
/// Mixing them into the shared conductance grid would also let the
/// O(1)-magnitude BN gammas dominate the scale and collapse the much
/// smaller conv weights onto a single level.
std::vector<WeightClusterResult> apply_weight_clustering(
    nn::Network& net, const WeightClusterConfig& config);

/// Pure-function form for a single tensor (used by tests/benches): returns
/// the quantized copy and the cluster stats.
WeightClusterResult cluster_tensor(const nn::Tensor& weights, int bits,
                                   bool optimize_scale, nn::Tensor* out);

}  // namespace qsnc::core
