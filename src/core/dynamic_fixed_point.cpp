#include "core/dynamic_fixed_point.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::core {

namespace {

/// Pass-through "quantizer" that records the max magnitude flowing through
/// a signal boundary; used for range calibration.
class RangeRecorder final : public nn::SignalQuantizer {
 public:
  float apply(float o) const override {
    max_abs_ = std::max(max_abs_, std::fabs(o));
    return o;
  }
  bool pass_through(float) const override { return true; }
  float max_abs() const { return max_abs_; }

 private:
  mutable float max_abs_ = 0.0f;
};

}  // namespace

DynamicFixedPointSignalQuantizer::DynamicFixedPointSignalQuantizer(
    int total_bits, int frac_bits)
    : step_(std::ldexp(1.0f, -frac_bits)),
      max_value_((std::ldexp(1.0f, total_bits - 1) - 1.0f) *
                 std::ldexp(1.0f, -frac_bits)) {
  if (total_bits < 2 || total_bits > 32) {
    throw std::invalid_argument("DFP signal quantizer: bad total_bits");
  }
  frac_bits_ = frac_bits;
}

float DynamicFixedPointSignalQuantizer::apply(float o) const {
  const float q = std::round(o / step_) * step_;
  return std::clamp(q, -max_value_, max_value_);
}

bool DynamicFixedPointSignalQuantizer::pass_through(float o) const {
  return std::fabs(o) < max_value_ + 0.5f * step_;
}

int choose_fraction_bits(float max_abs, int total_bits) {
  if (max_abs <= 0.0f) return total_bits - 1;
  // Integer length covers ceil(log2(max_abs)) magnitude bits plus sign.
  const int il = static_cast<int>(std::ceil(std::log2(max_abs)));
  return total_bits - 1 - il;
}

float dfp_quantize(float v, int total_bits, int frac_bits) {
  const float step = std::ldexp(1.0f, -frac_bits);
  const float max_v =
      (std::ldexp(1.0f, total_bits - 1) - 1.0f) * step;
  return std::clamp(std::round(v / step) * step, -max_v, max_v);
}

std::vector<std::unique_ptr<DynamicFixedPointSignalQuantizer>>
apply_dynamic_fixed_point(nn::Network& net, const data::InMemoryDataset& calib,
                          const DfpConfig& config) {
  // 1. Per-tensor weight quantization.
  for (nn::Param* p : net.params()) {
    if (p->value.rank() < 2) continue;
    const int fl = choose_fraction_bits(p->value.abs_max(), config.total_bits);
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] = dfp_quantize(p->value[i], config.total_bits, fl);
    }
  }

  // 2. Signal range calibration via recording hooks.
  std::vector<nn::ReLU*> signals = net.signal_layers();
  std::vector<std::unique_ptr<RangeRecorder>> recorders;
  recorders.reserve(signals.size());
  for (nn::ReLU* r : signals) {
    recorders.push_back(std::make_unique<RangeRecorder>());
    r->set_quantizer(recorders.back().get());
  }
  const int64_t n = std::min<int64_t>(config.calibration_samples,
                                      calib.size());
  constexpr int64_t kBatch = 32;
  for (int64_t first = 0; first < n; first += kBatch) {
    const int64_t count = std::min<int64_t>(kBatch, n - first);
    nn::Tensor batch = calib.batch_images(first, count);
    if (config.input_scale != 1.0f) batch *= config.input_scale;
    net.forward(batch, /*train=*/false);
  }

  // 3. Attach per-layer DFP quantizers.
  std::vector<std::unique_ptr<DynamicFixedPointSignalQuantizer>> quantizers;
  quantizers.reserve(signals.size());
  for (size_t i = 0; i < signals.size(); ++i) {
    const int fl =
        choose_fraction_bits(recorders[i]->max_abs(), config.total_bits);
    quantizers.push_back(std::make_unique<DynamicFixedPointSignalQuantizer>(
        config.total_bits, fl));
    signals[i]->set_quantizer(quantizers[i].get());
  }
  return quantizers;
}

}  // namespace qsnc::core
