// End-to-end experiment pipeline: training, quantization-aware training
// (Neuron Convergence + fake quantization), weight clustering, and the
// with/without comparisons behind the paper's Tables 2, 3, and 4.
//
// Input convention. The SNC operates on integer spike counts end to end, so
// the experiments feed networks inputs in *signal units*: pixel values in
// [0, 1] are scaled by TrainConfig::input_scale (default 16, i.e. the
// natural magnitude of a 4-bit spike window). At deployment the input
// encoder rounds and clamps those values to the M-bit window exactly like
// any hidden signal (core/fixed_point.h::quantize_input_signal). The ideal
// fp32 reference uses the same scale without quantization, which keeps the
// reference accuracy comparable across bit widths (a pure input rescale is
// absorbed by first-layer weights during training).
//
// Arms of each experiment (mirroring the paper's tables):
//   ideal : plain training, fp32 evaluation.
//   w/o   : the *same* plain-trained network, quantized directly.
//   w/    : the proposed method — Neuron Convergence regularized training
//           with a fake-quantization phase (signals), optimized Weight
//           Clustering (weights), or both (combined).
// All arms start from an identical parameter initialization (snapshot /
// restore) so differences are attributable to the method alone.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/neuron_convergence.h"
#include "core/weight_clustering.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/rng.h"

namespace qsnc::core {

/// Builds a fresh model instance from a seeded RNG.
using ModelFactory = std::function<nn::Network(nn::Rng&)>;

struct TrainConfig {
  int epochs = 15;
  int64_t batch_size = 32;
  float lr = 5e-4f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;  // the R(W) term of Eq 2
  float lr_decay = 0.9f;       // multiplicative per-epoch decay
  float input_scale = 16.0f;   // signal-units input convention (see above)
  uint64_t seed = 42;
  bool verbose = false;
  /// Apply random shift/flip augmentation to each training batch
  /// (data::Augmenter with its defaults). Off by default so experiment
  /// arms stay directly comparable.
  bool augment = false;
};

/// Neuron Convergence arm options.
struct NcOptions {
  float lambda = 0.1f;  // loss weight of Rg (mean-normalized per layer)
  float alpha = 0.1f;   // Eq 3 alpha
  /// Epochs (out of TrainConfig::epochs) trained with fake quantization
  /// active on signals and inputs; the preceding epochs train with the
  /// regularizer only. 0 reproduces the paper's train-then-discretize
  /// reading literally (ablation bench covers both).
  int qat_epochs = 2;
};

struct EpochStats {
  float loss = 0.0f;     // mean data loss over the epoch
  float penalty = 0.0f;  // mean signal-regularizer penalty over the epoch
};

struct TrainResult {
  std::vector<EpochStats> history;
};

/// Trains `net` on `train_set`. Optional hooks:
///  * `reg` — signal regularizer attached for the whole run.
///  * `fake_quant_bits` > 0 — signals and inputs fake-quantized to that many
///    bits starting at epoch `fake_quant_from_epoch` (STE backward).
/// All hooks are detached before returning.
TrainResult train(nn::Network& net, const data::InMemoryDataset& train_set,
                  const TrainConfig& config,
                  const nn::SignalRegularizer* reg = nullptr,
                  int fake_quant_bits = 0, int fake_quant_from_epoch = 0);

/// Fine-tunes a network whose weights must stay on the N-bit cluster grid:
/// float shadow weights receive the updates, the forward/backward always
/// sees grid-snapped weights (weight-side STE), and signals are
/// fake-quantized to `signal_bits` (0 = leave signals in fp32). The grid
/// scales are frozen from a prior apply_weight_clustering run — pass its
/// result vector (one entry for kPerNetwork scope, one per synapse tensor
/// for kPerLayer).
TrainResult fine_tune_quantized(nn::Network& net,
                                const data::InMemoryDataset& train_set,
                                const TrainConfig& config, int signal_bits,
                                const WeightClusterConfig& wc,
                                const std::vector<WeightClusterResult>& scales);

/// One with/without accuracy pair at a given bit width.
struct BitRow {
  int bits = 0;
  double acc_without = 0.0;
  double acc_with = 0.0;
};

/// A full experiment table for one model/dataset.
struct ExperimentResult {
  std::string model;
  std::string dataset;
  double ideal_acc = 0.0;
  double dfp8_acc = 0.0;  // populated by the combined experiment only
  std::vector<BitRow> rows;

  double recovered_pp(size_t i) const {
    return (rows[i].acc_with - rows[i].acc_without) * 100.0;
  }
  double drop_pp(size_t i) const {
    return (ideal_acc - rows[i].acc_with) * 100.0;
  }
};

/// Paper Table 2: inter-layer signal quantization, weights stay fp32.
ExperimentResult run_signal_experiment(const ModelFactory& factory,
                                       const std::string& model_name,
                                       const data::InMemoryDataset& train_set,
                                       const data::InMemoryDataset& test_set,
                                       const std::vector<int>& bit_widths,
                                       const TrainConfig& tcfg,
                                       const NcOptions& nc);

/// Paper Table 3: weight quantization, signals stay fp32.
ExperimentResult run_weight_experiment(const ModelFactory& factory,
                                       const std::string& model_name,
                                       const data::InMemoryDataset& train_set,
                                       const data::InMemoryDataset& test_set,
                                       const std::vector<int>& bit_widths,
                                       const TrainConfig& tcfg);

/// Paper Table 4: both quantizations combined, plus the 8-bit dynamic
/// fixed point baseline of [23].
ExperimentResult run_combined_experiment(
    const ModelFactory& factory, const std::string& model_name,
    const data::InMemoryDataset& train_set,
    const data::InMemoryDataset& test_set,
    const std::vector<int>& bit_widths, const TrainConfig& tcfg,
    const NcOptions& nc, int fine_tune_epochs = 2);

}  // namespace qsnc::core
