// Accuracy evaluation helpers shared by the experiment pipeline, tests,
// and benches.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/network.h"

namespace qsnc::core {

/// Top-1 accuracy of `net` on `dataset` in [0, 1], evaluated in inference
/// mode with whatever signal quantizers are currently attached.
/// `input_scale` multiplies pixel values before the forward pass (the
/// experiments feed inputs in signal units, see qat_pipeline.h); set
/// `input_bits` > 0 to round-and-clamp scaled inputs like an SNC input
/// encoder would.
double evaluate_accuracy(nn::Network& net, const data::InMemoryDataset& dataset,
                         float input_scale = 1.0f, int input_bits = 0,
                         int64_t batch_size = 64);

/// Accuracy drop a - b expressed in percentage points (positive = b worse).
double accuracy_drop_pp(double a, double b);

/// Detailed evaluation: top-1 accuracy plus the full confusion matrix.
struct EvalResult {
  double accuracy = 0.0;
  int64_t num_classes = 0;
  /// Row-major [num_classes x num_classes]: confusion[truth][predicted].
  std::vector<int64_t> confusion;

  int64_t at(int64_t truth, int64_t predicted) const {
    return confusion[static_cast<size_t>(truth * num_classes + predicted)];
  }
  /// Per-class recall: correct / total of that true class (0 if absent).
  double recall(int64_t cls) const;
};

/// Like evaluate_accuracy but also fills the confusion matrix.
EvalResult evaluate_detailed(nn::Network& net,
                             const data::InMemoryDataset& dataset,
                             float input_scale = 1.0f, int input_bits = 0,
                             int64_t batch_size = 64);

}  // namespace qsnc::core
