#include "core/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::core {

IntegerSignalQuantizer::IntegerSignalQuantizer(int bits)
    : bits_(bits), max_value_(static_cast<float>(signal_max(bits))) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("IntegerSignalQuantizer: bits out of range");
  }
}

float IntegerSignalQuantizer::apply(float o) const {
  const float r = std::round(o);
  return std::clamp(r, 0.0f, max_value_);
}

bool IntegerSignalQuantizer::pass_through(float o) const {
  // STE passes gradient where rounding is locally identity-like; values at
  // or beyond the clip ceiling are saturated and receive no gradient.
  return o < max_value_ + 0.5f;
}

float quantize_weight_to_grid(float w, int bits, float scale) {
  if (scale <= 0.0f) {
    throw std::invalid_argument("quantize_weight_to_grid: scale <= 0");
  }
  const float step = scale / static_cast<float>(int64_t{1} << bits);
  const float kmax = static_cast<float>(int64_t{1} << (bits - 1));
  const float k = std::clamp(std::round(w / step), -kmax, kmax);
  return k * step;
}

int64_t weight_grid_index(float w, int bits, float scale) {
  if (scale <= 0.0f) {
    throw std::invalid_argument("weight_grid_index: scale <= 0");
  }
  const float step = scale / static_cast<float>(int64_t{1} << bits);
  const int64_t kmax = int64_t{1} << (bits - 1);
  const int64_t k = static_cast<int64_t>(std::llround(w / step));
  return std::clamp(k, -kmax, kmax);
}

int64_t round_half_up(double v) {
  return static_cast<int64_t>(std::floor(v + 0.5));
}

float quantize_input_signal(float x, int bits) {
  const float max_v = static_cast<float>(signal_max(bits));
  return std::clamp(std::round(x), 0.0f, max_v);
}

}  // namespace qsnc::core
