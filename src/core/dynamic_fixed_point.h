// 8-bit dynamic fixed point baseline (Gysel et al., "Hardware-oriented
// approximation of convolutional neural networks", ICLR'16 workshop — the
// paper's comparison [23]).
//
// Dynamic fixed point keeps a *per-layer* binary point: each layer l stores
// values as  +/- mantissa * 2^{-fl_l}  where the fractional length fl_l is
// chosen from the observed range of that layer's weights / activations.
// This recovers most fp32 accuracy at 8 bits but is exactly what the paper
// argues is expensive on a spiking substrate: 8-bit signals need 255-slot
// spike windows, and per-layer ranges break the uniform-hardware property.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/network.h"
#include "nn/signal.h"

namespace qsnc::core {

/// Per-layer signal quantizer in dynamic fixed point.
class DynamicFixedPointSignalQuantizer final : public nn::SignalQuantizer {
 public:
  /// `total_bits` includes the sign bit; `frac_bits` is the binary point.
  DynamicFixedPointSignalQuantizer(int total_bits, int frac_bits);

  float apply(float o) const override;
  bool pass_through(float o) const override;

  int frac_bits() const { return frac_bits_; }

 private:
  float step_;
  float max_value_;
  int frac_bits_ = 0;
};

/// Chooses the fractional length for `total_bits` so the largest observed
/// magnitude fits: fl = total_bits - 1 - ceil(log2(max_abs)).
int choose_fraction_bits(float max_abs, int total_bits);

/// Quantizes one value to dynamic fixed point with the given lengths.
float dfp_quantize(float v, int total_bits, int frac_bits);

struct DfpConfig {
  int total_bits = 8;
  int64_t calibration_samples = 128;  // forward passes used to range signals
  /// Pixel -> signal-unit scale applied to calibration batches; must match
  /// the input convention the network was trained with (see
  /// core/qat_pipeline.h), otherwise the calibrated ranges are off by the
  /// same factor and every signal saturates at deployment.
  float input_scale = 16.0f;
};

/// Applies the full Gysel-style conversion to a trained float network:
///  1. per-layer weight quantization (each rank>=2 tensor gets its own fl),
///  2. signal range calibration on `calib` samples,
///  3. per-signal-layer quantizer attachment.
/// The returned quantizer objects must outlive the network's use of them.
std::vector<std::unique_ptr<DynamicFixedPointSignalQuantizer>>
apply_dynamic_fixed_point(nn::Network& net, const data::InMemoryDataset& calib,
                          const DfpConfig& config);

}  // namespace qsnc::core
