// Fixed-point / fixed-integer number formats of the paper.
//
// Two representations appear throughout:
//  * M-bit fixed **integer** inter-layer signals: plain non-negative
//    integers 0..2^M-1, identical range in every layer. These are exactly
//    the spike counts an SNC transmits in one rate-coding window.
//  * N-bit fixed-**point** weights on the linear grid  k * s / 2^N  for
//    integer k in [-2^{N-1}, 2^{N-1}] and a network-wide scale s (Eq 6).
#pragma once

#include <cstdint>

#include "nn/signal.h"

namespace qsnc::core {

/// Maximum integer value representable by an M-bit unsigned signal.
constexpr int64_t signal_max(int bits) { return (int64_t{1} << bits) - 1; }

/// Eq 3's range threshold 2^{M-1} — the value above which the Neuron
/// Convergence regularizer applies its strong range penalty.
constexpr float signal_range_threshold(int bits) {
  return static_cast<float>(int64_t{1} << (bits - 1));
}

/// Quantizes inter-layer signals to M-bit fixed integers: round to the
/// nearest integer, clamp to [0, 2^M - 1]. Signals are post-ReLU, hence
/// non-negative. Attach to a network via Network::set_signal_quantizer.
class IntegerSignalQuantizer final : public nn::SignalQuantizer {
 public:
  explicit IntegerSignalQuantizer(int bits);

  float apply(float o) const override;
  bool pass_through(float o) const override;

  int bits() const { return bits_; }
  float max_value() const { return max_value_; }

 private:
  int bits_;
  float max_value_;
};

/// Rounds a float to the nearest weight-grid level k*s/2^N,
/// k in [-2^{N-1}, 2^{N-1}], returning the quantized value.
float quantize_weight_to_grid(float w, int bits, float scale);

/// Integer grid index k of the nearest level (clamped to the grid).
int64_t weight_grid_index(float w, int bits, float scale);

/// Number of distinct levels on the N-bit weight grid: 2^N + 1
/// ({0, ±1, ..., ±2^{N-1}} scaled).
constexpr int64_t weight_grid_levels(int bits) {
  return (int64_t{1} << bits) + 1;
}

/// Quantizes an input pixel (already scaled to signal units) exactly like a
/// hidden-layer signal; the SNC input encoder performs this when converting
/// analog pixel intensities to spike counts.
float quantize_input_signal(float x, int bits);

/// Rounds to the nearest integer with ties going up (the SNC counter
/// convention: a column sum of exactly x.5 level units digitizes to x+1,
/// matching std::round for positive values but not for negative halves,
/// where std::round goes away from zero).
int64_t round_half_up(double v);

}  // namespace qsnc::core
