#include "core/qat_pipeline.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/dynamic_fixed_point.h"
#include "core/fixed_point.h"
#include "core/metrics.h"
#include "data/augment.h"
#include "data/batcher.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace qsnc::core {

namespace {

void scale_and_maybe_quantize_input(nn::Tensor& batch, float scale,
                                    int input_bits) {
  if (scale != 1.0f) batch *= scale;
  if (input_bits > 0) {
    for (int64_t i = 0; i < batch.numel(); ++i) {
      batch[i] = quantize_input_signal(batch[i], input_bits);
    }
  }
}

// Input-encoder scale for a proposed-method arm targeting M-bit signals:
// the SNC input encoder maps pixel in [0, 1] onto the spike window, so the
// natural scale is 2^M - 1 — capped at the reference scale so wide windows
// (M >= 5) keep the training convention of the fp32 baseline.
float proposed_input_scale(const TrainConfig& tcfg, int bits) {
  return std::min(tcfg.input_scale,
                  static_cast<float>(signal_max(bits)));
}

}  // namespace

TrainResult train(nn::Network& net, const data::InMemoryDataset& train_set,
                  const TrainConfig& config, const nn::SignalRegularizer* reg,
                  int fake_quant_bits, int fake_quant_from_epoch) {
  TrainResult result;
  data::Batcher batcher(
      std::make_shared<data::InMemoryDataset>(train_set), config.batch_size,
      config.seed + 17);
  nn::Sgd opt(net.params(), {config.lr, config.momentum, config.weight_decay});
  std::unique_ptr<data::Augmenter> augmenter;
  if (config.augment) {
    data::AugmentConfig acfg;
    acfg.seed = config.seed + 53;
    augmenter = std::make_unique<data::Augmenter>(acfg);
  }

  std::unique_ptr<IntegerSignalQuantizer> fq;
  if (fake_quant_bits > 0) {
    fq = std::make_unique<IntegerSignalQuantizer>(fake_quant_bits);
  }
  if (reg != nullptr) net.set_signal_regularizer(reg);

  const int64_t steps = batcher.batches_per_epoch();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const bool quantizing = fq && epoch >= fake_quant_from_epoch;
    net.set_signal_quantizer(quantizing ? fq.get() : nullptr);

    double loss_acc = 0.0;
    double penalty_acc = 0.0;
    for (int64_t s = 0; s < steps; ++s) {
      data::Batch batch = batcher.next();
      if (augmenter) augmenter->apply(&batch.images);
      scale_and_maybe_quantize_input(batch.images, config.input_scale,
                                     quantizing ? fake_quant_bits : 0);

      opt.zero_grad();
      const nn::Tensor logits = net.forward(batch.images, /*train=*/true);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits,
                                                            batch.labels);
      net.backward(loss.grad);
      opt.step();

      loss_acc += loss.loss;
      penalty_acc += net.signal_penalty();
    }
    result.history.push_back(
        {static_cast<float>(loss_acc / static_cast<double>(steps)),
         static_cast<float>(penalty_acc / static_cast<double>(steps))});
    if (config.verbose) {
      std::printf("  epoch %d: loss %.4f penalty %.4f\n", epoch,
                  result.history.back().loss, result.history.back().penalty);
    }
    opt.set_lr(opt.lr() * config.lr_decay);
  }

  net.set_signal_regularizer(nullptr);
  net.set_signal_quantizer(nullptr);
  return result;
}

TrainResult fine_tune_quantized(
    nn::Network& net, const data::InMemoryDataset& train_set,
    const TrainConfig& config, int signal_bits, const WeightClusterConfig& wc,
    const std::vector<WeightClusterResult>& scales) {
  TrainResult result;
  data::Batcher batcher(
      std::make_shared<data::InMemoryDataset>(train_set), config.batch_size,
      config.seed + 31);

  // Shadow copies hold the float master weights; the live network always
  // carries grid-snapped values during forward/backward.
  std::vector<nn::Param*> params = net.params();
  std::vector<nn::Tensor> shadow;
  std::vector<nn::Tensor> velocity;
  shadow.reserve(params.size());
  velocity.reserve(params.size());
  for (nn::Param* p : params) {
    shadow.push_back(p->value);
    velocity.emplace_back(p->value.shape());
  }

  // Frozen grid scale per synapse tensor, matching the iteration order of
  // apply_weight_clustering (rank >= 2 params in network order).
  std::vector<float> scale_of(params.size(), 0.0f);
  {
    size_t synapse_idx = 0;
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i]->value.rank() < 2) continue;
      const size_t s =
          wc.scope == ClusterScope::kPerNetwork ? 0 : synapse_idx;
      if (s >= scales.size()) {
        throw std::invalid_argument(
            "fine_tune_quantized: scale count does not match synapse count");
      }
      scale_of[i] = scales[s].scale;
      ++synapse_idx;
    }
  }

  auto snap_weights = [&]() {
    for (size_t i = 0; i < params.size(); ++i) {
      nn::Param& p = *params[i];
      if (p.value.rank() >= 2) {
        for (int64_t j = 0; j < p.value.numel(); ++j) {
          p.value[j] =
              quantize_weight_to_grid(shadow[i][j], wc.bits, scale_of[i]);
        }
      } else {
        p.value = shadow[i];
      }
    }
  };

  std::unique_ptr<IntegerSignalQuantizer> fq;
  if (signal_bits > 0) {
    fq = std::make_unique<IntegerSignalQuantizer>(signal_bits);
    net.set_signal_quantizer(fq.get());
  }

  float lr = config.lr;
  const int64_t steps = batcher.batches_per_epoch();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_acc = 0.0;
    for (int64_t s = 0; s < steps; ++s) {
      data::Batch batch = batcher.next();
      scale_and_maybe_quantize_input(batch.images, config.input_scale,
                                     signal_bits);

      snap_weights();
      net.zero_grad();
      const nn::Tensor logits = net.forward(batch.images, /*train=*/true);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits,
                                                            batch.labels);
      net.backward(loss.grad);
      loss_acc += loss.loss;

      // Weight-side STE: the gradient computed at the snapped point updates
      // the float shadow (with the same global norm clip as Sgd).
      double sq = 0.0;
      for (nn::Param* p : params) sq += p->grad.squared_norm();
      const float norm = static_cast<float>(std::sqrt(sq));
      const float clip = norm > 5.0f ? 5.0f / norm : 1.0f;
      for (size_t i = 0; i < params.size(); ++i) {
        nn::Param& p = *params[i];
        for (int64_t j = 0; j < p.value.numel(); ++j) {
          const float g =
              p.grad[j] * clip + config.weight_decay * shadow[i][j];
          velocity[i][j] = config.momentum * velocity[i][j] - lr * g;
          shadow[i][j] += velocity[i][j];
        }
      }
    }
    result.history.push_back(
        {static_cast<float>(loss_acc / static_cast<double>(steps)), 0.0f});
    lr *= config.lr_decay;
  }

  snap_weights();  // leave the network deployed on the grid
  net.set_signal_quantizer(nullptr);
  return result;
}

ExperimentResult run_signal_experiment(const ModelFactory& factory,
                                       const std::string& model_name,
                                       const data::InMemoryDataset& train_set,
                                       const data::InMemoryDataset& test_set,
                                       const std::vector<int>& bit_widths,
                                       const TrainConfig& tcfg,
                                       const NcOptions& nc) {
  ExperimentResult result;
  result.model = model_name;
  result.dataset = test_set.name();

  nn::Rng init_rng(tcfg.seed);
  nn::Network net = factory(init_rng);
  const nn::NetworkState init = nn::snapshot(net);

  // Ideal arm (plain training, fp32 eval). The same trained weights feed
  // every "w/o" row: traditional training followed by direct discretize.
  train(net, train_set, tcfg);
  result.ideal_acc = evaluate_accuracy(net, test_set, tcfg.input_scale);
  const nn::NetworkState plain = nn::snapshot(net);

  for (int bits : bit_widths) {
    BitRow row;
    row.bits = bits;

    // w/o: direct quantization of the plain network.
    nn::restore(net, plain);
    IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    row.acc_without =
        evaluate_accuracy(net, test_set, tcfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);

    // w/: Neuron Convergence training from the identical init, with a
    // trailing fake-quantization phase, then the same deployment quantizer.
    // The proposed arm trains with its input encoder matched to the M-bit
    // window (part of the method: the network is designed for the target
    // hardware), so narrow windows are not half-wasted on clipped pixels.
    nn::restore(net, init);
    TrainConfig nc_cfg = tcfg;
    nc_cfg.input_scale = proposed_input_scale(tcfg, bits);
    NeuronConvergenceRegularizer reg(bits, nc.lambda, nc.alpha);
    const int fq_from = std::max(0, tcfg.epochs - nc.qat_epochs);
    train(net, train_set, nc_cfg, &reg, nc.qat_epochs > 0 ? bits : 0,
          fq_from);
    net.set_signal_quantizer(&q);
    row.acc_with =
        evaluate_accuracy(net, test_set, nc_cfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);

    result.rows.push_back(row);
  }
  return result;
}

ExperimentResult run_weight_experiment(const ModelFactory& factory,
                                       const std::string& model_name,
                                       const data::InMemoryDataset& train_set,
                                       const data::InMemoryDataset& test_set,
                                       const std::vector<int>& bit_widths,
                                       const TrainConfig& tcfg) {
  ExperimentResult result;
  result.model = model_name;
  result.dataset = test_set.name();

  nn::Rng init_rng(tcfg.seed);
  nn::Network net = factory(init_rng);

  train(net, train_set, tcfg);
  result.ideal_acc = evaluate_accuracy(net, test_set, tcfg.input_scale);
  const nn::NetworkState plain = nn::snapshot(net);

  for (int bits : bit_widths) {
    BitRow row;
    row.bits = bits;

    WeightClusterConfig wc;
    wc.bits = bits;

    // w/o: one-shot naive grid quantization.
    nn::restore(net, plain);
    wc.optimize_scale = false;
    apply_weight_clustering(net, wc);
    row.acc_without = evaluate_accuracy(net, test_set, tcfg.input_scale);

    // w/: optimized clustering (Eq 6) from the same trained weights, plus a
    // short grid-frozen fine-tune (the "train a cluster" step).
    nn::restore(net, plain);
    wc.optimize_scale = true;
    const std::vector<WeightClusterResult> wcr =
        apply_weight_clustering(net, wc);
    TrainConfig ft = tcfg;
    ft.epochs = 2;
    ft.lr = tcfg.lr * 0.1f;
    fine_tune_quantized(net, train_set, ft, /*signal_bits=*/0, wc, wcr);
    row.acc_with = evaluate_accuracy(net, test_set, tcfg.input_scale);

    result.rows.push_back(row);
  }
  return result;
}

ExperimentResult run_combined_experiment(
    const ModelFactory& factory, const std::string& model_name,
    const data::InMemoryDataset& train_set,
    const data::InMemoryDataset& test_set, const std::vector<int>& bit_widths,
    const TrainConfig& tcfg, const NcOptions& nc, int fine_tune_epochs) {
  ExperimentResult result;
  result.model = model_name;
  result.dataset = test_set.name();

  nn::Rng init_rng(tcfg.seed);
  nn::Network net = factory(init_rng);
  const nn::NetworkState init = nn::snapshot(net);

  train(net, train_set, tcfg);
  result.ideal_acc = evaluate_accuracy(net, test_set, tcfg.input_scale);
  const nn::NetworkState plain = nn::snapshot(net);

  // 8-bit dynamic fixed point baseline [23] from the same plain weights.
  {
    nn::restore(net, plain);
    DfpConfig dfp;
    dfp.input_scale = tcfg.input_scale;
    auto quantizers = apply_dynamic_fixed_point(net, train_set, dfp);
    result.dfp8_acc = evaluate_accuracy(net, test_set, tcfg.input_scale);
    net.set_signal_quantizer(nullptr);
  }

  for (int bits : bit_widths) {
    BitRow row;
    row.bits = bits;

    WeightClusterConfig wc;
    wc.bits = bits;

    // w/o: plain training, naive weight grid, direct signal rounding.
    nn::restore(net, plain);
    wc.optimize_scale = false;
    apply_weight_clustering(net, wc);
    IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    row.acc_without =
        evaluate_accuracy(net, test_set, tcfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);

    // w/: NC training, optimized clustering, short quantized fine-tune —
    // all with the input encoder matched to the M-bit window (see
    // run_signal_experiment).
    nn::restore(net, init);
    TrainConfig nc_cfg = tcfg;
    nc_cfg.input_scale = proposed_input_scale(tcfg, bits);
    NeuronConvergenceRegularizer reg(bits, nc.lambda, nc.alpha);
    const int fq_from = std::max(0, tcfg.epochs - nc.qat_epochs);
    train(net, train_set, nc_cfg, &reg, nc.qat_epochs > 0 ? bits : 0,
          fq_from);

    wc.optimize_scale = true;
    const std::vector<WeightClusterResult> wcr =
        apply_weight_clustering(net, wc);
    if (fine_tune_epochs > 0) {
      TrainConfig ft = nc_cfg;
      ft.epochs = fine_tune_epochs;
      ft.lr = tcfg.lr * 0.1f;
      fine_tune_quantized(net, train_set, ft, bits, wc, wcr);
    }
    net.set_signal_quantizer(&q);
    row.acc_with =
        evaluate_accuracy(net, test_set, nc_cfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);

    result.rows.push_back(row);
  }
  return result;
}

}  // namespace qsnc::core
