// Related-work weight quantization baselines the paper positions itself
// against (Sec 1-2):
//
//  * Binary weights (Hubara et al., "Binarized neural networks" [18]; the
//    TrueNorth deployment of [9]): w -> sign(w) * s with one scale per
//    tensor (XNOR-net style s = mean|w|).
//  * One-level precision synapses (Wang et al., ASP-DAC'17 [17]): ternary
//    {-s, 0, +s} with a dead-zone threshold.
//  * Integer power-of-two weights (Tann et al., DAC'17 [24]): w ->
//    sign(w) * 2^k for integer k in a window chosen from the tensor range
//    (multiplier-free hardware: shifts instead of multiplies).
//
// Each converts a trained float network in place, mirroring
// apply_weight_clustering so the baseline bench can compare all grids under
// identical conditions.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "nn/tensor.h"

namespace qsnc::core {

/// Result of one baseline conversion (per synapse tensor).
struct BaselineQuantResult {
  float scale = 0.0f;  // s (binary/ternary) or top power-of-two magnitude
  float mse = 0.0f;    // mean squared weight error
};

/// Binary: w -> sign(w) * s, s = mean|w| of the tensor (XNOR-net scale,
/// which minimizes the L2 error for the sign pattern).
BaselineQuantResult binarize_tensor(nn::Tensor* w);

/// Ternary: w -> {-s, 0, +s}. The dead-zone threshold t = 0.7 * mean|w|
/// and s = mean of |w| over the surviving weights (Ternary Weight Networks
/// heuristic, matching [17]'s one-level synapse).
BaselineQuantResult ternarize_tensor(nn::Tensor* w);

/// Power-of-two: w -> sign(w) * 2^k, k integer in [k_max - levels + 1,
/// k_max] where 2^{k_max} is the smallest power covering max|w|; values
/// below the smallest representable magnitude round to zero when that is
/// nearer. `levels` is the number of exponent steps (paper [24] uses the
/// 8-bit dynamic fixed point activations with such weights).
BaselineQuantResult power_of_two_tensor(nn::Tensor* w, int levels);

/// Network-level application (rank >= 2 tensors only, like
/// apply_weight_clustering). Returns one result per synapse tensor.
std::vector<BaselineQuantResult> apply_binary_weights(nn::Network& net);
std::vector<BaselineQuantResult> apply_ternary_weights(nn::Network& net);
std::vector<BaselineQuantResult> apply_power_of_two_weights(nn::Network& net,
                                                            int levels);

}  // namespace qsnc::core
