// Neuron Convergence (paper Sec 3.1): the signal regularizer of Eq 2/3 that
// trains inter-layer signals to be sparse AND confined to the uniform range
// [0, 2^{M-1}], so that post-training integer rounding loses almost nothing.
//
// Also provides the comparison regularizer forms of Fig 3 / Fig 4:
// l1-norm and truncated l1-norm.
#pragma once

#include "core/fixed_point.h"
#include "nn/signal.h"

namespace qsnc::core {

/// The proposed regularizer (Eq 3):
///   rg(o) = alpha*|o|                     for |o| <  2^{M-1}
///   rg(o) = (|o| - 2^{M-1}) + alpha*|o|   for |o| >= 2^{M-1}
/// alpha = 0.1 empirically in the paper.
class NeuronConvergenceRegularizer final : public nn::SignalRegularizer {
 public:
  /// `bits` is the target signal bit width M; `lambda` the loss weight
  /// (applied mean-normalized per layer, see nn::ReLU).
  NeuronConvergenceRegularizer(int bits, float lambda, float alpha = 0.1f);

  float penalty(float o) const override;
  float grad(float o) const override;
  float lambda() const override { return lambda_; }

  int bits() const { return bits_; }
  float alpha() const { return alpha_; }
  float threshold() const { return threshold_; }

 private:
  int bits_;
  float lambda_;
  float alpha_;
  float threshold_;  // 2^{M-1}
};

/// Plain l1-norm regularizer (Fig 3b / Fig 4b): rg(o) = |o|.
class L1SignalRegularizer final : public nn::SignalRegularizer {
 public:
  explicit L1SignalRegularizer(float lambda);

  float penalty(float o) const override;
  float grad(float o) const override;
  float lambda() const override { return lambda_; }

 private:
  float lambda_;
};

/// Truncated l1-norm regularizer (Fig 3c / Fig 4c): zero inside the range,
/// |o| - 2^{M-1} beyond it. Restricts range without promoting sparsity.
class TruncatedL1Regularizer final : public nn::SignalRegularizer {
 public:
  TruncatedL1Regularizer(int bits, float lambda);

  float penalty(float o) const override;
  float grad(float o) const override;
  float lambda() const override { return lambda_; }

  float threshold() const { return threshold_; }

 private:
  float lambda_;
  float threshold_;
};

}  // namespace qsnc::core
