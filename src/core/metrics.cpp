#include "core/metrics.h"

#include <algorithm>

#include "core/fixed_point.h"

namespace qsnc::core {

double evaluate_accuracy(nn::Network& net,
                         const data::InMemoryDataset& dataset,
                         float input_scale, int input_bits,
                         int64_t batch_size) {
  const int64_t n = dataset.size();
  int64_t correct = 0;
  for (int64_t first = 0; first < n; first += batch_size) {
    const int64_t count = std::min(batch_size, n - first);
    nn::Tensor batch = dataset.batch_images(first, count);
    if (input_scale != 1.0f) {
      batch *= input_scale;
    }
    if (input_bits > 0) {
      for (int64_t i = 0; i < batch.numel(); ++i) {
        batch[i] = quantize_input_signal(batch[i], input_bits);
      }
    }
    const std::vector<int64_t> pred = net.predict(batch);
    for (int64_t i = 0; i < count; ++i) {
      if (pred[static_cast<size_t>(i)] ==
          dataset.labels()[static_cast<size_t>(first + i)]) {
        ++correct;
      }
    }
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

double accuracy_drop_pp(double a, double b) { return (a - b) * 100.0; }

double EvalResult::recall(int64_t cls) const {
  int64_t total = 0;
  for (int64_t p = 0; p < num_classes; ++p) total += at(cls, p);
  return total > 0 ? static_cast<double>(at(cls, cls)) /
                         static_cast<double>(total)
                   : 0.0;
}

EvalResult evaluate_detailed(nn::Network& net,
                             const data::InMemoryDataset& dataset,
                             float input_scale, int input_bits,
                             int64_t batch_size) {
  EvalResult result;
  result.num_classes = dataset.num_classes();
  result.confusion.assign(
      static_cast<size_t>(result.num_classes * result.num_classes), 0);

  const int64_t n = dataset.size();
  int64_t correct = 0;
  for (int64_t first = 0; first < n; first += batch_size) {
    const int64_t count = std::min(batch_size, n - first);
    nn::Tensor batch = dataset.batch_images(first, count);
    if (input_scale != 1.0f) batch *= input_scale;
    if (input_bits > 0) {
      for (int64_t i = 0; i < batch.numel(); ++i) {
        batch[i] = quantize_input_signal(batch[i], input_bits);
      }
    }
    const std::vector<int64_t> pred = net.predict(batch);
    for (int64_t i = 0; i < count; ++i) {
      const int64_t truth = dataset.labels()[static_cast<size_t>(first + i)];
      const int64_t p = pred[static_cast<size_t>(i)];
      ++result.confusion[static_cast<size_t>(truth * result.num_classes + p)];
      if (p == truth) ++correct;
    }
  }
  result.accuracy =
      n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
  return result;
}

}  // namespace qsnc::core
