#include "core/neuron_convergence.h"

#include <cmath>
#include <stdexcept>

namespace qsnc::core {

namespace {
float sign(float v) { return v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f); }
}  // namespace

NeuronConvergenceRegularizer::NeuronConvergenceRegularizer(int bits,
                                                           float lambda,
                                                           float alpha)
    : bits_(bits),
      lambda_(lambda),
      alpha_(alpha),
      threshold_(signal_range_threshold(bits)) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("NeuronConvergenceRegularizer: bad bits");
  }
  if (lambda < 0.0f || alpha < 0.0f) {
    throw std::invalid_argument(
        "NeuronConvergenceRegularizer: negative lambda/alpha");
  }
}

float NeuronConvergenceRegularizer::penalty(float o) const {
  const float a = std::fabs(o);
  if (a >= threshold_) return (a - threshold_) + alpha_ * a;
  return alpha_ * a;
}

float NeuronConvergenceRegularizer::grad(float o) const {
  const float a = std::fabs(o);
  const float s = sign(o);
  if (a >= threshold_) return s * (1.0f + alpha_);
  return s * alpha_;
}

L1SignalRegularizer::L1SignalRegularizer(float lambda) : lambda_(lambda) {
  if (lambda < 0.0f) {
    throw std::invalid_argument("L1SignalRegularizer: negative lambda");
  }
}

float L1SignalRegularizer::penalty(float o) const { return std::fabs(o); }

float L1SignalRegularizer::grad(float o) const { return sign(o); }

TruncatedL1Regularizer::TruncatedL1Regularizer(int bits, float lambda)
    : lambda_(lambda), threshold_(signal_range_threshold(bits)) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("TruncatedL1Regularizer: bad bits");
  }
  if (lambda < 0.0f) {
    throw std::invalid_argument("TruncatedL1Regularizer: negative lambda");
  }
}

float TruncatedL1Regularizer::penalty(float o) const {
  const float a = std::fabs(o);
  return a >= threshold_ ? a - threshold_ : 0.0f;
}

float TruncatedL1Regularizer::grad(float o) const {
  const float a = std::fabs(o);
  return a >= threshold_ ? sign(o) : 0.0f;
}

}  // namespace qsnc::core
