// True-integer inference engine for the quantized serving path.
//
// The fake-quant path (QuantBackend / evaluate_accuracy) runs fp32 GEMMs
// over values that are all exact fixed-point numbers: M-bit integer signals
// and N-bit weights on a dyadic grid k * 2^-fl. When (a) every weight of a
// crossbar layer is *bitwise* representable as w_int * 2^-fl with w_int in
// int16, and (b) the worst-case dot product satisfies
//
//     signal_max(M) * max|w_int| * k_dim < 2^24,
//
// every fp32 partial sum in the float GEMM is an integer multiple of 2^-fl
// with magnitude below 2^24 grid units — i.e. exactly representable — so
// the float result equals the exact sum regardless of summation order. The
// integer engine computes that exact sum directly in int32 (nn/igemm.h),
// converts once at the end (float(acc) * 2^-fl, both steps exact), and then
// replays the identical float epilogue (bias add, ReLU, M-bit rounding).
// Under those two conditions the engine is therefore provably bit-identical
// to the fake-quant float path while eliminating every fp32 multiply from
// the hot loop.
//
// build() checks the conditions per layer and returns nullptr when any
// layer fails them (e.g. unclustered He-normal float weights) or uses an
// unsupported layer type; callers then keep the float path unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fixed_point.h"
#include "nn/igemm.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "util/aligned.h"

namespace qsnc::core {

class IntQuantEngine {
 public:
  /// Attempts to compile `net` for integer execution at M = `signal_bits`.
  /// Returns nullptr unless every layer is supported (Conv2d, Dense, ReLU,
  /// MaxPool2d, Flatten, Dropout, exact-identity BatchNorm2d) and every
  /// crossbar layer passes the dyadic-representability and 2^24 exactness
  /// checks above. Weights are snapshotted at build time; rebuild after
  /// mutating the network.
  static std::unique_ptr<IntQuantEngine> build(nn::Network& net,
                                               const nn::Shape& input_chw,
                                               int signal_bits);

  /// Float logits for a batch of *encoded* inputs: [N, C, H, W] whose
  /// elements are integers in [0, 2^M - 1] (the output of
  /// quantize_input_signal). Bit-identical to Network::forward with an
  /// attached IntegerSignalQuantizer on the same inputs.
  nn::Tensor forward(const nn::Tensor& encoded) const;

  /// Per-sample argmax over forward(), first index winning ties —
  /// bit-compatible with Network::predict.
  std::vector<int64_t> predict(const nn::Tensor& encoded) const;

  int signal_bits() const { return signal_bits_; }

  /// Number of integer crossbar (Conv2d / Dense) layers compiled in.
  size_t crossbar_layers() const { return crossbar_layers_; }

 private:
  enum class OpKind { kConv, kDense, kReLU, kMaxPool, kFlatten };

  struct Op {
    OpKind kind;
    // Conv / pool geometry (per image).
    int64_t in_c = 0, in_h = 0, in_w = 0;
    int64_t out_c = 0, out_h = 0, out_w = 0;
    int64_t kernel = 0, stride = 0, pad = 0;
    // Dense extents.
    int64_t in_features = 0, out_features = 0;
    // Integer weights: conv keeps the row-major [out_c x patch] matrix,
    // dense a prepacked W^T [in x out] panel.
    util::aligned_vector<int16_t> wq;
    nn::IGemmPackedB wq_packed;
    std::vector<float> bias;
    bool use_bias = false;
    float step = 1.0f;  // 2^-fl of this layer's weight grid
  };

  IntQuantEngine(int signal_bits, std::vector<Op> ops, size_t crossbars);

  int signal_bits_;
  IntegerSignalQuantizer quantizer_;
  std::vector<Op> ops_;
  size_t crossbar_layers_;
};

}  // namespace qsnc::core
