#include "core/int_quant_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "core/dynamic_fixed_point.h"
#include "nn/im2col.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/dropout.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "util/thread_pool.h"

namespace qsnc::core {

namespace {

// Per-thread scratch for the conv hot loop, mirroring Conv2d::forward's
// reuse pattern (never allocates inside the batch loop after warm-up).
thread_local std::vector<float> tl_cols;
thread_local util::aligned_vector<int16_t> tl_icols;
thread_local util::aligned_vector<int32_t> tl_iacc;

// Recovers the integer representation w = w_int * 2^-fl of a weight tensor,
// choosing fl with the dynamic-fixed-point rule (choose_fraction_bits) at
// the smallest total width whose grid reproduces every weight *exactly*
// (checked per element: w_int * step == w in fp32). Returns false when no
// width up to 16 bits is exact — i.e. the weights are not on a dyadic grid
// and the integer engine cannot be bit-faithful.
bool quantize_weights_exact(const float* w, int64_t count, int16_t* wq,
                            float* step_out, int32_t* abs_max_int_out) {
  float abs_max = 0.0f;
  for (int64_t i = 0; i < count; ++i) {
    abs_max = std::max(abs_max, std::fabs(w[i]));
  }
  if (abs_max == 0.0f) {
    std::fill(wq, wq + count, int16_t{0});
    *step_out = 1.0f;
    *abs_max_int_out = 0;
    return true;
  }
  for (int total_bits = 2; total_bits <= 16; ++total_bits) {
    const int fl = choose_fraction_bits(abs_max, total_bits);
    const float step = std::ldexp(1.0f, -fl);
    bool exact = true;
    int32_t max_int = 0;
    for (int64_t i = 0; i < count; ++i) {
      // Division and multiplication by a power of two are exact in fp32,
      // so `r * step == w[i]` holds iff w[i] sits on the 2^-fl grid.
      const float r = std::round(w[i] / step);
      if (!(std::fabs(r) <= 32767.0f) || r * step != w[i]) {
        exact = false;
        break;
      }
      wq[i] = static_cast<int16_t>(r);
      max_int = std::max(max_int, std::abs(static_cast<int32_t>(r)));
    }
    if (exact) {
      *step_out = step;
      *abs_max_int_out = max_int;
      return true;
    }
  }
  return false;
}

// The fp32-exactness budget: every partial sum of the float GEMM must stay
// an exactly representable integer multiple of the weight grid step.
bool dot_product_exact(int64_t signal_peak, int32_t abs_max_int,
                       int64_t k_dim) {
  return signal_peak * int64_t{abs_max_int} * k_dim < (int64_t{1} << 24);
}

}  // namespace

IntQuantEngine::IntQuantEngine(int signal_bits, std::vector<Op> ops,
                               size_t crossbars)
    : signal_bits_(signal_bits),
      quantizer_(signal_bits),
      ops_(std::move(ops)),
      crossbar_layers_(crossbars) {}

std::unique_ptr<IntQuantEngine> IntQuantEngine::build(
    nn::Network& net, const nn::Shape& input_chw, int signal_bits) {
  if (signal_bits < 1 || signal_bits > 15) return nullptr;  // int16 signals
  if (input_chw.size() != 3) return nullptr;
  const int64_t signal_peak = signal_max(signal_bits);

  // Signals are integer-valued at the network input and after every
  // quantized ReLU; between a crossbar layer and the next ReLU they are
  // arbitrary floats. Crossbar layers are only compilable on the integer
  // side of that boundary.
  enum class Domain { kInt, kFloat };
  Domain domain = Domain::kInt;
  nn::Shape shape = input_chw;  // per-image activation shape

  std::vector<Op> ops;
  size_t crossbars = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      if (domain != Domain::kInt || shape.size() != 3 ||
          shape[0] != conv->in_channels()) {
        return nullptr;
      }
      Op op;
      op.kind = OpKind::kConv;
      op.in_c = shape[0];
      op.in_h = shape[1];
      op.in_w = shape[2];
      op.kernel = conv->kernel();
      op.stride = conv->stride();
      op.pad = conv->pad();
      op.out_c = conv->out_channels();
      op.out_h = nn::conv_out_extent(op.in_h, op.kernel, op.stride, op.pad);
      op.out_w = nn::conv_out_extent(op.in_w, op.kernel, op.stride, op.pad);
      if (op.out_h <= 0 || op.out_w <= 0) return nullptr;
      const int64_t patch = op.in_c * op.kernel * op.kernel;
      const nn::Tensor& w = conv->weight().value;  // OIHW == [out_c x patch]
      op.wq.resize(static_cast<size_t>(w.numel()));
      int32_t max_int = 0;
      if (!quantize_weights_exact(w.data(), w.numel(), op.wq.data(), &op.step,
                                  &max_int) ||
          !dot_product_exact(signal_peak, max_int, patch)) {
        return nullptr;
      }
      op.use_bias = conv->uses_bias();
      const nn::Tensor& b = conv->bias().value;
      op.bias.assign(b.data(), b.data() + b.numel());
      shape = {op.out_c, op.out_h, op.out_w};
      domain = Domain::kFloat;
      ops.push_back(std::move(op));
      ++crossbars;
    } else if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      if (domain != Domain::kInt || shape.size() != 1 ||
          shape[0] != dense->in_features()) {
        return nullptr;
      }
      Op op;
      op.kind = OpKind::kDense;
      op.in_features = dense->in_features();
      op.out_features = dense->out_features();
      const nn::Tensor& w = dense->weight().value;  // [out x in]
      util::aligned_vector<int16_t> wq(static_cast<size_t>(w.numel()));
      int32_t max_int = 0;
      if (!quantize_weights_exact(w.data(), w.numel(), wq.data(), &op.step,
                                  &max_int) ||
          !dot_product_exact(signal_peak, max_int, op.in_features)) {
        return nullptr;
      }
      // igemm_prepacked computes x * B, so pack B = W^T [in x out].
      util::aligned_vector<int16_t> wt(
          static_cast<size_t>(op.in_features * op.out_features));
      for (int64_t kk = 0; kk < op.in_features; ++kk) {
        for (int64_t j = 0; j < op.out_features; ++j) {
          wt[static_cast<size_t>(kk * op.out_features + j)] =
              wq[static_cast<size_t>(j * op.in_features + kk)];
        }
      }
      op.wq_packed =
          nn::IGemmPackedB(wt.data(), op.in_features, op.out_features);
      op.use_bias = dense->params().size() == 2;  // bias listed iff enabled
      const nn::Tensor& b = dense->bias().value;
      op.bias.assign(b.data(), b.data() + b.numel());
      shape = {op.out_features};
      domain = Domain::kFloat;
      ops.push_back(std::move(op));
      ++crossbars;
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      Op op;
      op.kind = OpKind::kReLU;
      ops.push_back(std::move(op));
      domain = Domain::kInt;  // ReLU + M-bit rounding restores integers
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
      if (shape.size() != 3) return nullptr;
      Op op;
      op.kind = OpKind::kMaxPool;
      op.in_c = shape[0];
      op.in_h = shape[1];
      op.in_w = shape[2];
      op.kernel = pool->kernel();
      op.stride = pool->stride();
      op.out_h = nn::conv_out_extent(op.in_h, op.kernel, op.stride, 0);
      op.out_w = nn::conv_out_extent(op.in_w, op.kernel, op.stride, 0);
      if (op.out_h <= 0 || op.out_w <= 0) return nullptr;
      shape = {op.in_c, op.out_h, op.out_w};
      ops.push_back(std::move(op));
    } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      if (shape.size() != 3) return nullptr;
      Op op;
      op.kind = OpKind::kFlatten;
      op.in_features = shape[0] * shape[1] * shape[2];
      shape = {op.in_features};
      ops.push_back(std::move(op));
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      // Inference dropout returns its input unchanged; no op needed.
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
      // Only the exact inference identity (scale 1, shift 0 bitwise, e.g.
      // after BN folding's reset_to_identity) is bit-transparent.
      if (shape.size() != 3 || shape[0] != bn->channels()) return nullptr;
      for (int64_t c = 0; c < bn->channels(); ++c) {
        float scale = 0.0f, shift = 0.0f;
        bn->inference_affine(c, &scale, &shift);
        if (scale != 1.0f || shift != 0.0f) return nullptr;
      }
    } else {
      return nullptr;  // unsupported layer type
    }
  }
  if (crossbars == 0) return nullptr;  // nothing to accelerate
  return std::unique_ptr<IntQuantEngine>(
      new IntQuantEngine(signal_bits, std::move(ops), crossbars));
}

nn::Tensor IntQuantEngine::forward(const nn::Tensor& encoded) const {
  if (encoded.rank() != 4) {
    throw std::invalid_argument(
        "IntQuantEngine::forward: expected [N, C, H, W], got " +
        nn::shape_to_string(encoded.shape()));
  }
  const int64_t n = encoded.dim(0);
  nn::Tensor act = encoded;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kConv: {
        const int64_t patch = op.in_c * op.kernel * op.kernel;
        const int64_t out_hw = op.out_h * op.out_w;
        const int64_t image_numel = op.in_c * op.in_h * op.in_w;
        nn::Tensor out({n, op.out_c, op.out_h, op.out_w});
        util::parallel_for(0, n, 1, [&](int64_t n0, int64_t n1) {
          std::vector<float>& cols = tl_cols;
          util::aligned_vector<int16_t>& icols = tl_icols;
          util::aligned_vector<int32_t>& iacc = tl_iacc;
          cols.resize(static_cast<size_t>(patch * out_hw));
          icols.resize(static_cast<size_t>(patch * out_hw));
          iacc.resize(static_cast<size_t>(op.out_c * out_hw));
          for (int64_t img = n0; img < n1; ++img) {
            nn::im2col(act.data() + img * image_numel, op.in_c, op.in_h,
                       op.in_w, op.kernel, op.kernel, op.stride, op.pad,
                       cols.data());
            for (size_t i = 0; i < icols.size(); ++i) {
              icols[i] = static_cast<int16_t>(cols[i]);
            }
            nn::igemm(op.wq.data(), icols.data(), iacc.data(), op.out_c,
                      patch, out_hw);
            float* out_img = out.data() + img * op.out_c * out_hw;
            for (int64_t oc = 0; oc < op.out_c; ++oc) {
              const float b = op.bias[static_cast<size_t>(oc)];
              const int32_t* acc_row = iacc.data() + oc * out_hw;
              float* out_row = out_img + oc * out_hw;
              for (int64_t i = 0; i < out_hw; ++i) {
                float y = static_cast<float>(acc_row[i]) * op.step;
                if (op.use_bias) y += b;
                out_row[i] = y;
              }
            }
          }
        });
        act = std::move(out);
        break;
      }
      case OpKind::kDense: {
        const int64_t in = op.in_features;
        const int64_t out_f = op.out_features;
        util::aligned_vector<int16_t> ix(static_cast<size_t>(n * in));
        for (size_t i = 0; i < ix.size(); ++i) {
          ix[i] = static_cast<int16_t>(act[static_cast<int64_t>(i)]);
        }
        util::aligned_vector<int32_t> iacc(static_cast<size_t>(n * out_f));
        nn::igemm_prepacked(ix.data(), op.wq_packed, iacc.data(), n);
        nn::Tensor out({n, out_f});
        for (int64_t row = 0; row < n; ++row) {
          const int32_t* acc_row = iacc.data() + row * out_f;
          float* out_row = out.data() + row * out_f;
          for (int64_t j = 0; j < out_f; ++j) {
            float y = static_cast<float>(acc_row[j]) * op.step;
            if (op.use_bias) y += op.bias[static_cast<size_t>(j)];
            out_row[j] = y;
          }
        }
        act = std::move(out);
        break;
      }
      case OpKind::kReLU: {
        for (int64_t i = 0; i < act.numel(); ++i) {
          const float v = act[i] > 0.0f ? act[i] : 0.0f;
          act[i] = quantizer_.apply(v);
        }
        break;
      }
      case OpKind::kMaxPool: {
        // Same loop structure and comparison as MaxPool2d::forward so
        // results (including tie handling) are bit-identical.
        nn::Tensor out({n, op.in_c, op.out_h, op.out_w});
        int64_t out_idx = 0;
        for (int64_t img = 0; img < n; ++img) {
          for (int64_t c = 0; c < op.in_c; ++c) {
            const float* plane =
                act.data() + (img * op.in_c + c) * op.in_h * op.in_w;
            for (int64_t oy = 0; oy < op.out_h; ++oy) {
              for (int64_t ox = 0; ox < op.out_w; ++ox, ++out_idx) {
                float best = -std::numeric_limits<float>::infinity();
                for (int64_t ky = 0; ky < op.kernel; ++ky) {
                  const int64_t iy = oy * op.stride + ky;
                  if (iy >= op.in_h) break;
                  for (int64_t kx = 0; kx < op.kernel; ++kx) {
                    const int64_t ix2 = ox * op.stride + kx;
                    if (ix2 >= op.in_w) break;
                    const float v = plane[iy * op.in_w + ix2];
                    if (v > best) best = v;
                  }
                }
                out[out_idx] = best;
              }
            }
          }
        }
        act = std::move(out);
        break;
      }
      case OpKind::kFlatten: {
        act = act.reshape({n, op.in_features});
        break;
      }
    }
  }
  return act;
}

std::vector<int64_t> IntQuantEngine::predict(const nn::Tensor& encoded) const {
  const nn::Tensor logits = forward(encoded);
  const int64_t n = logits.dim(0);
  const int64_t k = logits.dim(1);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int64_t best = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    labels[static_cast<size_t>(i)] = best;
  }
  return labels;
}

}  // namespace qsnc::core
