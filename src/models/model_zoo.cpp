#include "models/model_zoo.h"

#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"

namespace qsnc::models {

using nn::AvgPool2d;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::MaxPool2d;
using nn::Network;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Rng;

namespace {

// Damps the classifier head so initial logits start near zero. With the
// signal-unit input convention (pixels scaled into the integer spike
// range) a He-initialized head produces O(30) logits, a saturated softmax,
// and seed-dependent early-training collapse.
Network with_small_head(Network net) {
  // The final rank-2 tensor in parameter order is the classifier weight.
  nn::Param* head = nullptr;
  for (nn::Param* p : net.params()) {
    if (p->value.rank() == 2) head = p;
  }
  if (head != nullptr) head->value *= 0.1f;
  return net;
}

}  // namespace

Network make_lenet(Rng& rng) {
  // 28x28x1 -> conv5x5(6) -> pool -> conv5x5(12) -> pool -> fc16 -> fc10.
  // ~6.9e3 weights, matching Table 1's 7e3.
  Network net;
  net.emplace<Conv2d>(1, 6, 5, 1, 2, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Conv2d>(6, 12, 5, 1, 0, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Flatten>();
  net.emplace<Dense>(12 * 5 * 5, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 10, rng);
  return with_small_head(std::move(net));
}

Network make_lenet_mini(Rng& rng) {
  // LeNet is already single-core friendly; the mini variant is identical.
  return make_lenet(rng);
}

Network make_alexnet(Rng& rng) {
  // 32x32x3, Table 1: 1 conv 5x5 + 4 conv 3x3 + 3 FC, ~3.4e5 weights.
  Network net;
  net.emplace<Conv2d>(3, 32, 5, 1, 2, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(32, 32, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);  // 16x16
  net.emplace<Conv2d>(32, 64, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(64, 64, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);  // 8x8
  net.emplace<Conv2d>(64, 64, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);  // 4x4
  net.emplace<Flatten>();
  net.emplace<Dense>(64 * 4 * 4, 200, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(200, 64, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(64, 10, rng);
  return with_small_head(std::move(net));
}

Network make_alexnet_mini(Rng& rng) {
  // Same 5-conv / 3-FC structure, reduced widths for 1-core training.
  Network net;
  net.emplace<Conv2d>(3, 12, 5, 1, 2, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(12, 12, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Conv2d>(12, 16, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(16, 16, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Conv2d>(16, 16, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Flatten>();
  net.emplace<Dense>(16 * 4 * 4, 48, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(48, 24, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(24, 10, rng);
  return with_small_head(std::move(net));
}

namespace {

Network make_resnet_impl(Rng& rng, int64_t base_width) {
  // CIFAR ResNet-18 shape: conv1 + 4 stages x 2 basic blocks (16 convs)
  // = 17 conv layers + 1 FC, matching Table 1. At base_width 64 this is
  // ~1.1e7 weights (Table 1 lists 1.2e7).
  const int64_t w1 = base_width;
  const int64_t w2 = base_width * 2;
  const int64_t w3 = base_width * 4;
  const int64_t w4 = base_width * 8;

  Network net;
  net.emplace<Conv2d>(3, w1, 3, 1, 1, rng, /*use_bias=*/false);
  net.emplace<BatchNorm2d>(w1);
  net.emplace<ReLU>();
  net.emplace<ResidualBlock>(w1, w1, 1, rng);
  net.emplace<ResidualBlock>(w1, w1, 1, rng);
  net.emplace<ResidualBlock>(w1, w2, 2, rng);  // 16x16
  net.emplace<ResidualBlock>(w2, w2, 1, rng);
  net.emplace<ResidualBlock>(w2, w3, 2, rng);  // 8x8
  net.emplace<ResidualBlock>(w3, w3, 1, rng);
  net.emplace<ResidualBlock>(w3, w4, 2, rng);  // 4x4
  net.emplace<ResidualBlock>(w4, w4, 1, rng);
  net.emplace<GlobalAvgPool>();
  net.emplace<Dense>(w4, 10, rng);
  return with_small_head(std::move(net));
}

}  // namespace

Network make_resnet(Rng& rng) { return make_resnet_impl(rng, 64); }

Network make_resnet_mini(Rng& rng) { return make_resnet_impl(rng, 4); }

ModelSpec lenet_spec() {
  return {"Lenet", "MNIST", {1, 28, 28}, 2, 2};
}

ModelSpec alexnet_spec() {
  return {"Alexnet", "CIFAR10", {3, 32, 32}, 5, 3};
}

ModelSpec resnet_spec() {
  return {"Resnet", "CIFAR10", {3, 32, 32}, 17, 1};
}

}  // namespace qsnc::models
