// The paper's Table 1 model zoo: LeNet (MNIST), AlexNet and ResNet
// (CIFAR-10) — full-spec builders matching the table's layer structure,
// plus *mini* variants with reduced channel widths used by the in-bench
// training experiments (this reproduction runs on one CPU core; the mini
// variants keep identical layer types and depth structure).
#pragma once

#include <cstdint>
#include <string>

#include "nn/network.h"
#include "nn/rng.h"

namespace qsnc::models {

/// Table 1 metadata for reporting.
struct ModelSpec {
  std::string name;
  std::string dataset;
  nn::Shape input_shape;  // [C, H, W]
  int conv_layers = 0;
  int fc_layers = 0;
};

/// LeNet for 28x28x1: 2 conv (5x5) + 2 FC (Table 1: ~7e3 weights at full
/// spec is met with channel widths 6/12 and a 10-wide hidden FC).
nn::Network make_lenet(nn::Rng& rng);

/// AlexNet-style CIFAR model: 1 conv 5x5 + 4 conv 3x3 + 3 FC.
nn::Network make_alexnet(nn::Rng& rng);

/// CIFAR ResNet: initial conv + 8 basic residual blocks (16 convs) = 17
/// conv layers + 1 FC, stages {16, 32, 64} with stride-2 transitions.
nn::Network make_resnet(nn::Rng& rng);

/// Mini variants (identical structure, smaller widths) for 1-core training.
nn::Network make_lenet_mini(nn::Rng& rng);
nn::Network make_alexnet_mini(nn::Rng& rng);
nn::Network make_resnet_mini(nn::Rng& rng);

ModelSpec lenet_spec();
ModelSpec alexnet_spec();
ModelSpec resnet_spec();

}  // namespace qsnc::models
