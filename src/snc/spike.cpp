#include "snc/spike.h"

#include <algorithm>
#include <stdexcept>

namespace qsnc::snc {

void rate_encode_into(int64_t value, int bits, uint8_t* train) {
  const int64_t slots = window_slots(bits);
  const int64_t n = std::clamp<int64_t>(value, 0, slots);
  std::fill(train, train + slots, uint8_t{0});
  if (n == 0) return;
  // Evenly spread spikes: slot k fires when floor((k+1)*n/T) increments.
  int64_t fired = 0;
  for (int64_t k = 0; k < slots; ++k) {
    const int64_t target = (k + 1) * n / slots;
    if (target > fired) {
      train[k] = 1;
      fired = target;
    }
  }
}

void rate_encode_stochastic_into(int64_t value, int bits, nn::Rng& rng,
                                 uint8_t* train) {
  const int64_t slots = window_slots(bits);
  const int64_t n = std::clamp<int64_t>(value, 0, slots);
  const double p = static_cast<double>(n) / static_cast<double>(slots);
  for (int64_t k = 0; k < slots; ++k) train[k] = rng.bernoulli(p) ? 1 : 0;
}

std::vector<uint8_t> rate_encode(int64_t value, int bits) {
  std::vector<uint8_t> train(static_cast<size_t>(window_slots(bits)));
  rate_encode_into(value, bits, train.data());
  return train;
}

std::vector<uint8_t> rate_encode_stochastic(int64_t value, int bits,
                                            nn::Rng& rng) {
  std::vector<uint8_t> train(static_cast<size_t>(window_slots(bits)));
  rate_encode_stochastic_into(value, bits, rng, train.data());
  return train;
}

int64_t rate_decode(const std::vector<uint8_t>& spikes) {
  int64_t n = 0;
  for (uint8_t s : spikes) n += s != 0 ? 1 : 0;
  return n;
}

IntegrateFire::IntegrateFire(double threshold_charge)
    : threshold_(threshold_charge) {
  if (threshold_charge <= 0.0) {
    throw std::invalid_argument("IntegrateFire: threshold must be positive");
  }
}

int64_t IntegrateFire::integrate(double charge) {
  membrane_ += charge;
  int64_t spikes = 0;
  while (membrane_ >= threshold_) {
    membrane_ -= threshold_;
    ++spikes;
  }
  return spikes;
}

SpikeCounter::SpikeCounter(int bits)
    : ceiling_((int64_t{1} << bits) - 1) {
  if (bits < 1 || bits > 30) {
    throw std::invalid_argument("SpikeCounter: bits out of range");
  }
}

void SpikeCounter::count(int64_t spikes) {
  value_ = std::min(value_ + spikes, ceiling_);
}

}  // namespace qsnc::snc
