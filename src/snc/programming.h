// Crossbar programming (write) cost model.
//
// The paper's motivation for <= 4-bit devices (Sec 1): although memristors
// can afford 6-bit conductance levels (HP Labs, ref [16]), "the heavy
// programming cost in speed and circuit design are not acceptable".
// Programming a cell to one of 2^N levels uses write-verify iterations:
// each pulse nudges the conductance, a read verifies, and the loop repeats
// until the level tolerance is met. Empirically the iteration count grows
// with level resolution — tighter tolerance windows take more pulses — so
// per-cell cost scales superlinearly with N.
//
// Model:
//   pulses(cell)   = pulses_base * 2^(N - 1) / tolerance_factor
//   (expected write-verify pulses to land in a 1/2^N-wide window from a
//   random starting state; the 2^(N-1) factor is the standard
//   binary-search-free pessimistic bound used in programming studies)
//   time(model)    = cells * pulses * (t_pulse + t_verify)   (serial/row)
//   energy(model)  = cells * pulses * e_pulse
//
// Programming happens once per deployment, but matters for reconfigurable
// systems and for the 8-bit baseline's 2x cell count.
#pragma once

#include <cstdint>

#include "snc/mapper.h"

namespace qsnc::snc {

struct ProgrammingParams {
  double pulses_base = 2.0;    // pulses for a 1-bit cell
  double t_pulse_ns = 50.0;    // one SET/RESET pulse
  double t_verify_ns = 20.0;   // one verify read
  double e_pulse_pj = 8.0;     // energy per pulse
  /// Rows programmed in parallel per crossbar (write drivers per array).
  int64_t parallel_rows = 1;
  int device_bits = 4;         // native device precision per slice
};

struct ProgrammingCost {
  double total_pulses = 0.0;
  double time_ms = 0.0;
  double energy_uj = 0.0;
  int64_t cells = 0;  // differential cells programmed (2 per weight)
};

/// Expected write-verify pulses per cell at N-bit target precision.
double pulses_per_cell(int weight_bits, const ProgrammingParams& params);

/// Programming cost of deploying a mapped model at `weight_bits` weights
/// (bit-sliced over `params.device_bits` devices like the run-time cost
/// model).
ProgrammingCost evaluate_programming(const ModelMapping& mapping,
                                     int weight_bits,
                                     const ProgrammingParams& params = {});

}  // namespace qsnc::snc
