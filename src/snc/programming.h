// Crossbar programming (write) cost model.
//
// The paper's motivation for <= 4-bit devices (Sec 1): although memristors
// can afford 6-bit conductance levels (HP Labs, ref [16]), "the heavy
// programming cost in speed and circuit design are not acceptable".
// Programming a cell to one of 2^N levels uses write-verify iterations:
// each pulse nudges the conductance, a read verifies, and the loop repeats
// until the level tolerance is met. Empirically the iteration count grows
// with level resolution — tighter tolerance windows take more pulses — so
// per-cell cost scales superlinearly with N.
//
// Model:
//   pulses(cell)   = pulses_base * 2^(N - 1) / tolerance_factor
//   (expected write-verify pulses to land in a 1/2^N-wide window from a
//   random starting state; the 2^(N-1) factor is the standard
//   binary-search-free pessimistic bound used in programming studies)
//   time(model)    = cells * pulses * (t_pulse + t_verify)   (serial/row)
//   energy(model)  = cells * pulses * e_pulse
//
// Programming happens once per deployment, but matters for reconfigurable
// systems and for the 8-bit baseline's 2x cell count.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "snc/crossbar.h"
#include "snc/mapper.h"

namespace qsnc::snc {

struct ProgrammingParams {
  double pulses_base = 2.0;    // pulses for a 1-bit cell
  double t_pulse_ns = 50.0;    // one SET/RESET pulse
  double t_verify_ns = 20.0;   // one verify read
  double e_pulse_pj = 8.0;     // energy per pulse
  /// Rows programmed in parallel per crossbar (write drivers per array).
  int64_t parallel_rows = 1;
  int device_bits = 4;         // native device precision per slice
};

struct ProgrammingCost {
  double total_pulses = 0.0;
  double time_ms = 0.0;
  double energy_uj = 0.0;
  int64_t cells = 0;  // differential cells programmed (2 per weight)
};

/// Expected write-verify pulses per cell at N-bit target precision.
double pulses_per_cell(int weight_bits, const ProgrammingParams& params);

/// Programming cost of deploying a mapped model at `weight_bits` weights
/// (bit-sliced over `params.device_bits` devices like the run-time cost
/// model).
ProgrammingCost evaluate_programming(const ModelMapping& mapping,
                                     int weight_bits,
                                     const ProgrammingParams& params = {});

// ---------------------------------------------------------------------------
// Closed-loop write-verify programming.
//
// The analytic model above prices the *expected* write-verify loop; the
// controller below actually runs it against a DifferentialCrossbar: program,
// read back the effective conductance, retry while the differential level
// error exceeds the tolerance. Cells that exhaust the retry budget are
// faults; the controller first tries *differential compensation* (reprogram
// the healthy partner cell so the pair's difference still lands on the
// target level — a stuck-on plus cell at level p is cancelled by minus at
// clamp(round(p) - k)), and columns whose residual fault count still
// exceeds a threshold are remapped onto spare physical columns.

struct WriteVerifyConfig {
  /// Accept a cell when |achieved - target| differential level error is at
  /// most this (0.45 ~ "reads back to the right level with margin").
  double tolerance_levels = 0.45;
  /// Extra program attempts per array cell after the first write.
  int max_retries = 3;
  /// Remap a logical column onto a spare when its residual (uncompensated)
  /// fault count reaches this. 0 disables remapping.
  int remap_fault_threshold = 1;
};

/// Counters from one programming pass (aggregate with add()). residual
/// faults describe the final state; the other counters describe activity,
/// so a remapped column's pre-remap faults stay counted as detected.
struct FaultReport {
  int64_t cells = 0;             // differential pairs programmed
  int64_t write_retries = 0;     // extra program attempts beyond the first
  int64_t faults_detected = 0;   // pairs that exhausted the retry budget
  int64_t faults_compensated = 0;  // ...recovered by partner compensation
  int64_t residual_faults = 0;   // pairs still off-target after recovery
  int64_t remapped_cols = 0;     // logical columns rerouted onto spares
  int64_t spare_cols_left = 0;   // unclaimed spares after the pass
  int64_t refreshes = 0;         // drift-refresh reprogram passes

  void add(const FaultReport& other);
};

/// Verified programming of one logical column (signed levels[rows]) at its
/// current physical mapping. Used for initial programming and for drift
/// refresh (which must reprogram *through* the existing remap table).
FaultReport program_column_verified(DifferentialCrossbar& xbar,
                                    int64_t logical_col,
                                    const int64_t* levels, int64_t max_level,
                                    const WriteVerifyConfig& wv,
                                    nn::Rng& rng);

/// Verified programming of a full signed level matrix
/// (levels[col * rows + r], the SncSystem weight layout), followed by a
/// remap pass: columns with >= remap_fault_threshold residual faults are
/// trial-programmed onto spares (worst column first) and rebound when the
/// spare is cleaner. Deterministic given the rng state.
FaultReport program_verified(DifferentialCrossbar& xbar,
                             const std::vector<int64_t>& levels,
                             int64_t max_level, const WriteVerifyConfig& wv,
                             nn::Rng& rng);

/// Worst |achieved - target| differential level error over the logical
/// cells of `xbar` (levels[col * rows + r]) — the refresh scheduler's
/// drift monitor read.
double worst_level_error(const DifferentialCrossbar& xbar,
                         const std::vector<int64_t>& levels,
                         int64_t max_level);

}  // namespace qsnc::snc
