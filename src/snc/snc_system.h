// Behavioural simulator of the memristor-based SNC executing a deployed,
// quantized network.
//
// Deployment contract: the source network's weights must already lie on the
// N-bit cluster grid (core::apply_weight_clustering) — program_network()
// maps each weight to its signed grid level and programs a differential
// crossbar pair per layer. Inference then runs entirely in the spiking
// domain: integer signals are rate-coded into windows of T = 2^M - 1 slots,
// crossbar column currents are integrated by IFCs, and counters reconstruct
// the next layer's integer signals.
//
// Supported topologies: sequential Conv2d / ReLU / MaxPool2d / AvgPool2d /
// GlobalAvgPool / Flatten / Dense networks plus pad-identity ResidualBlock
// composites — i.e. all three model-zoo networks. Batch norms must be
// folded into their convolutions first (core::fold_batchnorm); the
// constructor verifies every remaining BN is the exact identity and
// rejects unfolded networks loudly. Residual shortcuts execute as digital
// adds on the counter outputs (subsample + zero-channel-pad), with the
// block's output rectification applied after the add.
//
// Integration modes:
//  * kIdealIntegration — the IFC defers firing to the window end, so the
//    spike count equals clamp(round(column_sum + bias), 0, T). This is
//    bit-exact with the quantized network (tests assert equality) and fast
//    (no slot loop).
//  * kOnline — physical IFC semantics: the membrane integrates slot by
//    slot and fires whenever it crosses threshold (subtractive reset).
//    With mixed-sign weights an early fire cannot be revoked, so results
//    can deviate by a spike — the coding ablation bench measures how much
//    accuracy this costs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/network.h"
#include "snc/crossbar.h"
#include "snc/mapper.h"
#include "snc/programming.h"
#include "snc/spike.h"

namespace qsnc::snc {

enum class IntegrationMode { kIdealIntegration, kOnline };

/// Inference engine selection.
///  * kEventDriven — the production hot path: each stage's differential
///    effective conductances are baked into a packed panel at programming
///    time, receptive fields are gathered as sparse (row, value) event
///    lists through precomputed im2col tap tables, and column sums
///    accumulate only over nonzero rows — O(nnz x cols) per position
///    instead of O(rows x cols), with zero allocations in the loop. In
///    hardware terms: a zero signal emits zero spikes and draws no
///    crossbar current (Eq 3's convergence is what makes signals sparse).
///  * kDenseReference — the pre-event-engine simulator, kept as the
///    bit-identical reference the equivalence tests and benches compare
///    against: every row of every crossbar is driven at every position.
/// Both engines produce bit-identical outputs, logits, and activity
/// statistics for any config (the accumulation order per column is the
/// same ascending-row order; zero rows contribute nothing either way) —
/// except under `integer_row_drives`, an event-engine-only fast path
/// whose final float conversion can differ from the analog read by
/// double-precision epsilon (predictions and stats still match; see the
/// flag's comment below).
enum class SncEngine { kEventDriven, kDenseReference };

/// Closed-loop fault-recovery knobs. All off by default: the legacy
/// passive-injection deployment (per-write defect draws, no verify) is
/// byte-identical when enabled() is false. When any knob is on, each
/// crossbar draws a *static* per-cell defect map at construction (stuck
/// faults persist across retries and refreshes, as on real hardware) and
/// keeps its programmed level matrix so drift refresh can reprogram.
struct FaultRecoveryConfig {
  /// Closed-loop write-verify programming with differential compensation
  /// and (when spare_cols > 0) fault-aware column remapping.
  bool write_verify = false;
  double tolerance_levels = 0.45;  // accept |err| <= this many levels
  int max_write_retries = 3;       // extra attempts per array cell
  /// Spare physical columns per crossbar reserved for remapping.
  int64_t spare_cols = 0;
  /// Remap a column once it holds this many residual faults (0 = never).
  int remap_fault_threshold = 1;

  /// Retention drift: nominal conductance decay rate per inference window
  /// (lognormal per-cell spread drift_sigma), applied by advance_time().
  double drift_rate_per_window = 0.0;
  double drift_sigma = 0.0;
  /// Auto-refresh cadence in windows (0 = only explicit refresh() calls).
  double refresh_interval_windows = 0.0;
  /// A refresh pass reprograms a crossbar only when its worst readback
  /// error exceeds this many levels.
  double refresh_tolerance_levels = 0.45;

  bool enabled() const {
    return write_verify || spare_cols > 0 || drift_rate_per_window > 0.0;
  }
};

struct SncConfig {
  int signal_bits = 4;  // M
  int weight_bits = 4;  // N
  /// Cluster grid scales from weight clustering: one entry per
  /// crossbar-backed layer (conv/dense, in network order) for per-layer
  /// clustering, or a single shared entry for per-network clustering. Each
  /// layer's scale fixes its conductance-to-weight conversion factor (the
  /// per-layer IFC threshold in hardware).
  std::vector<float> weight_scales{1.0f};
  float input_scale = 16.0f;  // pixel -> signal-unit scale before encoding
  IntegrationMode mode = IntegrationMode::kIdealIntegration;
  bool stochastic_coding = false;  // Bernoulli instead of deterministic
  SncEngine engine = SncEngine::kEventDriven;
  /// Integer row drives (event engine only): when the device model is
  /// ideal — no programming variation, no stuck cells, ideal wires, no
  /// retention drift — a collapsed ideal read per column is exactly
  /// sum(signal * level), so the engine accumulates spike counts against
  /// the signed int16 level panel with nn::iaccumulate_rows instead of
  /// driving the double-precision conductance panel, skipping the analog
  /// round trip entirely. The integer sum is exact; only the final
  /// y = step * sum + bias float rounding can differ from the analog
  /// reconstruction by double-precision epsilon, so predictions match and
  /// logits agree to ~1e-9 relative. Ignored (analog path kept) when the
  /// device is non-ideal, under drift recovery, or when a stage's
  /// worst-case dot product could overflow int32.
  bool integer_row_drives = false;
  MemristorConfig device;
  FaultRecoveryConfig recovery;
  uint64_t seed = 7;  // programming variation + stochastic coding draws
};

/// Per-crossbar-stage activity counters for one inference. These are
/// properties of the *signals*, not of the engine that executed them, so
/// both engines report identical numbers (pinned by the equivalence
/// tests); the event engine's work is proportional to `input_events`,
/// the dense engine's to `dense_row_drives()`.
struct SncStageStats {
  int64_t rows = 0;       // crossbar rows (receptive-field taps)
  int64_t cols = 0;       // crossbar columns (output channels)
  int64_t positions = 0;  // spatial evaluations (out_h * out_w, 1 for FC)
  /// Nonzero-signal row drives gathered across all positions — the rows
  /// that actually emit spikes / draw crossbar current.
  int64_t input_events = 0;
  /// Output spikes leaving the stage (post skip-add for residual tails).
  int64_t spikes = 0;
  /// (position, slot) pairs in which at least one row spiked; only
  /// counted by the slot-by-slot paths (online mode or stochastic
  /// coding), 0 in collapsed ideal reads.
  int64_t occupied_slots = 0;

  // Fault-tolerance counters. These are programming-time facts about the
  // stage's crossbar (engine-independent, identical for both engines);
  // all zero when FaultRecoveryConfig is disabled.
  int64_t write_retries = 0;      // extra write-verify attempts
  int64_t faults_detected = 0;    // pairs that exhausted the retry budget
  int64_t faults_compensated = 0;  // recovered via partner compensation
  int64_t residual_faults = 0;    // still off-target after recovery
  int64_t remapped_cols = 0;      // logical columns routed onto spares
  int64_t refreshes = 0;          // drift-refresh reprogram passes

  /// Row drives a dense engine performs for this stage.
  int64_t dense_row_drives() const { return rows * positions; }
  /// Fraction of row drives skipped by the event engine: zero signals in
  /// the receptive fields (1.0 = all-zero input, 0.0 = fully dense).
  double input_sparsity() const {
    const int64_t dense = dense_row_drives();
    return dense > 0
               ? 1.0 - static_cast<double>(input_events) /
                           static_cast<double>(dense)
               : 0.0;
  }
};

/// Per-inference activity statistics.
struct SncStats {
  int64_t total_spikes = 0;   // spikes transported across all boundaries
  int64_t window_slots = 0;   // T
  int64_t layers = 0;         // crossbar-backed stages executed
  /// Per-stage activity, one entry per crossbar-backed stage in network
  /// order (filled whenever stats are requested, by either engine).
  std::vector<SncStageStats> stage;

  /// Totals over all crossbar stages.
  int64_t input_events() const;
  int64_t dense_row_drives() const;
  /// Overall fraction of row drives the event engine skips.
  double input_sparsity() const;
};

class SncSystem {
 public:
  /// Programs the crossbars from `net` (throws std::invalid_argument on an
  /// unsupported topology or weights off the grid beyond tolerance).
  SncSystem(nn::Network& net, const nn::Shape& input_chw,
            const SncConfig& config);
  ~SncSystem();  // out of line: Stage is an implementation detail

  /// Spike-level inference of one [C, H, W] image with pixels in [0, 1].
  /// Returns the predicted class. Hidden layers communicate through M-bit
  /// counters; the output layer is read with an analog winner-take-all
  /// (column charge comparison, as in the paper's substrate [12]), so
  /// sub-spike logit differences still resolve the argmax.
  int64_t infer(const nn::Tensor& image, SncStats* stats = nullptr);

  /// Batch-native inference of a [B, C, H, W] image stack. Per crossbar
  /// stage the engine builds the union event-row set across the batch and
  /// makes ONE pass over each active row's packed conductance panel,
  /// accumulating a B-wide rank-1 update into per-image column
  /// accumulators — so the panel is streamed from memory once per batch
  /// instead of once per image. Per-image spike trains, IFC state, slot
  /// occupancy, stochastic-coding RNG streams, and stats are exactly what
  /// B consecutive infer() calls produce: logits, predictions, and
  /// per-image SncStats are bit-identical at every batch size, on both
  /// engines and on the integer_row_drives path. Returns one predicted
  /// class per image; `stats`, when non-null, is resized to B.
  std::vector<int64_t> infer_batch(const nn::Tensor& batch,
                                   std::vector<SncStats>* stats = nullptr);

  /// Output-layer analog charges (weight units) of the last infer() call.
  const std::vector<double>& last_logits() const { return last_logits_; }

  /// Per-image output-layer charges of the last infer_batch() call.
  const std::vector<std::vector<double>>& last_batch_logits() const {
    return last_batch_logits_;
  }

  /// Cumulative conductance-panel bytes streamed by crossbar reads since
  /// construction: each analog row pass counts 2*cols doubles, each
  /// integer-level row pass cols int16s, identically in every engine (the
  /// metric describes signal-driven panel traffic, like SncStageStats).
  /// Batched inference streams each union event row once for the whole
  /// batch, so bytes-per-image shrinking with batch size is exactly the
  /// amortization the batch sweep bench reports.
  int64_t panel_bytes_streamed() const {
    return panel_bytes_.load(std::memory_order_relaxed);
  }

  /// Reads a programmed weight back through the conductance domain
  /// (crossbar `layer`, logical row/col) — used by round-trip tests.
  float read_back_weight(size_t layer, int64_t row, int64_t col) const;

  size_t stage_count() const { return stages_.size(); }
  const SncConfig& config() const { return config_; }

  /// Number of crossbar stages holding an integer level panel — nonzero
  /// only when SncConfig::integer_row_drives is on and the stage passed
  /// the ideal-device and int32-overflow eligibility checks.
  size_t integer_drive_stage_count() const;

  /// Aggregate fault-tolerance counters over all crossbar stages (all
  /// zero when recovery is disabled).
  FaultReport fault_report() const;

  /// Advances simulated retention time by `windows` inference windows:
  /// applies conductance drift to every crossbar and, when an auto-refresh
  /// interval is configured, runs due refresh passes. No-op without a
  /// drift rate. Deterministic given SncConfig::seed and the call
  /// sequence.
  void advance_time(double windows);

  /// Drift refresh: reprograms every crossbar stage whose worst readback
  /// level error exceeds recovery.refresh_tolerance_levels (write-verify
  /// reprogramming through the existing remap table when enabled).
  /// Returns the number of stages reprogrammed.
  int64_t refresh();

  /// Simulated windows elapsed via advance_time().
  double elapsed_windows() const { return elapsed_windows_; }

 private:
  struct Stage;

  /// Stochastic coding draws from a per-inference stream: image k of the
  /// system's lifetime (counting across infer() and infer_batch() calls
  /// in order) draws from stream_seed(config.seed, kCodingStreamBase + k)
  /// in both engines. Stream-per-image seeding is what keeps stochastic
  /// results bit-identical regardless of how images are grouped into
  /// batches. The base tag keeps coding streams disjoint from the drift
  /// streams (0xD21F7000 + stage) and the raw programming seed.
  static constexpr uint64_t kCodingStreamBase = uint64_t{1} << 40;
  nn::Rng next_coding_rng();

  std::vector<int64_t> run_crossbar_stage(const Stage& stage,
                                          const std::vector<int64_t>& input,
                                          SncStageStats* stats,
                                          nn::Rng& coding_rng);
  /// The pre-event-engine simulator (SncEngine::kDenseReference).
  std::vector<int64_t> run_crossbar_stage_dense(
      const Stage& stage, const std::vector<int64_t>& input,
      SncStageStats* stats, nn::Rng& coding_rng);
  /// The event-driven engine (SncEngine::kEventDriven).
  std::vector<int64_t> run_crossbar_stage_event(
      const Stage& stage, const std::vector<int64_t>& input,
      SncStageStats* stats, nn::Rng& coding_rng);
  /// Batch-native runner for both engines: union event gather, one panel
  /// pass per active row, per-image accumulators/IFCs/trains. Fills
  /// outputs[b] and stats[b] (entries may be null); coding_rngs[b] is
  /// image b's stochastic stream. Dense-reference configs drive every
  /// row (the union is all rows); the event engine drives the union of
  /// nonzero rows. Either way each image's per-column arithmetic is the
  /// exact single-image sequence, so results are bit-identical.
  void run_crossbar_stage_batch(const Stage& stage,
                                const std::vector<std::vector<int64_t>>& inputs,
                                std::vector<std::vector<int64_t>>& outputs,
                                const std::vector<SncStageStats*>& stats,
                                std::vector<nn::Rng>& coding_rngs);

  /// Digital pool stages (shared verbatim by infer and infer_batch).
  std::vector<int64_t> run_pool_stage(const Stage& stage,
                                      const std::vector<int64_t>& input) const;
  /// Digital pad-identity skip add in place; returns post-add spikes.
  int64_t apply_skip_add(const Stage& stage, std::vector<int64_t>& signal,
                         const std::vector<int64_t>& skip) const;
  /// Pixel -> M-bit spike-count encoder for one image; adds the input
  /// spikes to *total_spikes when non-null.
  std::vector<int64_t> encode_image(const float* pixels, int64_t n,
                                    int64_t* total_spikes) const;

  SncConfig config_;
  nn::Shape input_chw_;
  std::vector<std::unique_ptr<Stage>> stages_;
  size_t crossbar_stage_count_ = 0;
  std::vector<double> last_logits_;
  std::vector<std::vector<double>> last_batch_logits_;
  std::vector<double> analog_readout_;  // filled by the final stage
  /// Per-image final-stage charges of a batched run.
  std::vector<std::vector<double>> batch_readout_;
  std::atomic<int64_t> panel_bytes_{0};
  uint64_t coding_streams_issued_ = 0;
  double elapsed_windows_ = 0.0;
  double windows_since_refresh_ = 0.0;
  nn::Rng rng_;
};

}  // namespace qsnc::snc
