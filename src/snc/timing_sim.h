// Discrete-event timing simulator of the SNC's spike-window execution.
//
// The analytic cost model (cost_model.h) *asserts* the period formula
// period = T*L*t_prop + L*t_setup; this module derives the period by
// actually scheduling the (slot, stage) grid as a discrete-event system,
// which both cross-validates the formula (tests assert agreement) and lets
// us ask questions the closed form cannot, e.g. what slot-level pipelining
// would buy (ablation_pipelining).
//
// Disciplines:
//  * kSequentialWave — the paper's system: one spike wave fully drains
//    through all L stages before the next slot is issued (the IFC membrane
//    of layer l+1 must have settled on slot s before slot s+1 currents
//    arrive). Period = T*L*t_prop + L*t_setup.
//  * kSlotPipelined — hypothetical streaming IFCs: stage l processes slot
//    s while stage l+1 processes slot s-1. Period ~ (T+L-1)*t_prop +
//    L*t_setup, i.e. ~L-fold faster for long windows.
#pragma once

#include <cstdint>
#include <vector>

namespace qsnc::snc {

enum class PipelineDiscipline { kSequentialWave, kSlotPipelined };

struct TimingConfig {
  double t_prop_ns = 1.51;   // per-stage per-slot propagation
  double t_setup_ns = 5.35;  // per-stage per-window setup / readout
  PipelineDiscipline discipline = PipelineDiscipline::kSequentialWave;
};

struct TimingResult {
  double period_ns = 0.0;   // one inference window, start to last drain
  double speed_mhz = 0.0;   // 1e3 / period_ns
  int64_t events = 0;       // scheduled (slot, stage) events
  /// Per-stage busy time over the window (ns).
  std::vector<double> stage_busy_ns;
  /// Mean stage utilization: busy / period.
  double utilization = 0.0;
};

/// Simulates one spike window of `window_slots` slots through `layers`
/// pipeline stages under the given discipline.
///
/// `active_slots` models an event-driven sequencer: only slots in which at
/// least one input row actually spikes are issued through the pipeline;
/// empty slots are skipped for free (no propagation, no IFC settle). Pass
/// -1 (default) for a dense sequencer that issues every slot, or the
/// measured `SncStageStats::occupied_slots` fraction of the window to ask
/// what slot-skipping buys. Values are clamped to [0, window_slots]; an
/// all-quiet window (0) still pays the per-stage setup/readout time.
TimingResult simulate_window(int64_t layers, int64_t window_slots,
                             const TimingConfig& config = {},
                             int64_t active_slots = -1);

/// Like simulate_window, but with a periodic refresh pause amortized into
/// the period: every `windows_between_refresh` windows the pipeline stalls
/// for `refresh_pause_ns` while drifted cells are reprogrammed, so each
/// window pays refresh_pause_ns / windows_between_refresh on average.
/// Utilization is rescaled to the stretched period (stages are idle during
/// a refresh). Non-positive pause or interval degenerates to
/// simulate_window.
TimingResult simulate_window_with_refresh(int64_t layers,
                                          int64_t window_slots,
                                          const TimingConfig& config,
                                          int64_t active_slots,
                                          double windows_between_refresh,
                                          double refresh_pause_ns);

/// One independent window simulation in a batch (e.g. a per-crossbar or
/// per-model sweep point).
struct WindowSpec {
  int64_t layers = 1;
  int64_t window_slots = 1;
  int64_t active_slots = -1;  // -1: dense sequencer (all slots issued)
  TimingConfig config;
};

/// Simulates a batch of independent windows on the thread pool. A single
/// window's event schedule is inherently sequential (each event's start
/// time depends on its predecessors), but crossbars/windows are mutually
/// independent under the Eq-1 mapping, so sweeps parallelize across specs.
/// results[i] is bit-identical to simulate_window(specs[i]) run serially.
std::vector<TimingResult> simulate_windows(const std::vector<WindowSpec>& specs);

}  // namespace qsnc::snc
