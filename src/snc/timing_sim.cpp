#include "snc/timing_sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.h"

namespace qsnc::snc {

namespace {

// One (slot, stage) processing event in the schedule.
struct Event {
  double start_ns;
  int64_t slot;
  int64_t stage;

  bool operator>(const Event& other) const {
    return start_ns > other.start_ns;
  }
};

}  // namespace

TimingResult simulate_window(int64_t layers, int64_t window_slots,
                             const TimingConfig& config,
                             int64_t active_slots) {
  if (layers <= 0 || window_slots <= 0) {
    throw std::invalid_argument("simulate_window: non-positive extent");
  }
  // Event-driven sequencer: skipped (all-quiet) slots never enter the
  // schedule, so the grid shrinks to the active slots; the wave order of
  // the remaining slots is unchanged.
  if (active_slots >= 0) {
    window_slots = std::min(active_slots, window_slots);
  }

  TimingResult result;
  result.stage_busy_ns.assign(static_cast<size_t>(layers), 0.0);
  if (window_slots == 0) {
    // Nothing spiked: the window is pure setup/readout.
    result.period_ns = static_cast<double>(layers) * config.t_setup_ns;
    result.speed_mhz = 1e3 / result.period_ns;
    return result;
  }

  // stage_free[l]: earliest time stage l can accept new work.
  // slot_done[s]:  time slot s drained from the last stage.
  std::vector<double> stage_free(static_cast<size_t>(layers), 0.0);
  std::vector<double> slot_arrival(static_cast<size_t>(window_slots), 0.0);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  queue.push({0.0, 0, 0});

  double last_drain = 0.0;
  double prev_slot_drain = 0.0;
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    ++result.events;

    const size_t stage = static_cast<size_t>(ev.stage);
    const double begin = std::max(ev.start_ns, stage_free[stage]);
    const double end = begin + config.t_prop_ns;
    stage_free[stage] = end;
    result.stage_busy_ns[stage] += config.t_prop_ns;

    if (ev.stage + 1 < layers) {
      // Wave moves to the next stage.
      queue.push({end, ev.slot, ev.stage + 1});
    } else {
      // Slot drained from the pipeline. Under the sequential-wave
      // discipline the successor slot is issued only now.
      last_drain = std::max(last_drain, end);
      prev_slot_drain = end;
      if (config.discipline == PipelineDiscipline::kSequentialWave &&
          ev.slot + 1 < window_slots) {
        queue.push({prev_slot_drain, ev.slot + 1, 0});
      }
    }

    // Under the pipelined discipline the successor slot enters stage 0 as
    // soon as stage 0 frees up.
    if (config.discipline == PipelineDiscipline::kSlotPipelined &&
        ev.stage == 0 && ev.slot + 1 < window_slots) {
      queue.push({end, ev.slot + 1, 0});
    }
  }

  result.period_ns =
      last_drain + static_cast<double>(layers) * config.t_setup_ns;
  result.speed_mhz = 1e3 / result.period_ns;
  double busy = 0.0;
  for (double b : result.stage_busy_ns) busy += b;
  result.utilization =
      busy / (result.period_ns * static_cast<double>(layers));
  return result;
}

TimingResult simulate_window_with_refresh(int64_t layers,
                                          int64_t window_slots,
                                          const TimingConfig& config,
                                          int64_t active_slots,
                                          double windows_between_refresh,
                                          double refresh_pause_ns) {
  TimingResult result =
      simulate_window(layers, window_slots, config, active_slots);
  if (windows_between_refresh <= 0.0 || refresh_pause_ns <= 0.0) {
    return result;
  }
  const double inference_ns = result.period_ns;
  result.period_ns += refresh_pause_ns / windows_between_refresh;
  result.speed_mhz = 1e3 / result.period_ns;
  // Busy time is unchanged; stages idle through the amortized pause.
  result.utilization *= inference_ns / result.period_ns;
  return result;
}

std::vector<TimingResult> simulate_windows(
    const std::vector<WindowSpec>& specs) {
  std::vector<TimingResult> results(specs.size());
  util::parallel_for(
      0, static_cast<int64_t>(specs.size()), 1,
      [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          const WindowSpec& spec = specs[static_cast<size_t>(s)];
          results[static_cast<size_t>(s)] =
              simulate_window(spec.layers, spec.window_slots, spec.config,
                              spec.active_slots);
        }
      });
  return results;
}

}  // namespace qsnc::snc
