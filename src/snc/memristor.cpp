#include "snc/memristor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::snc {

double g_min(const MemristorConfig& config) { return 1.0 / config.r_off_ohm; }
double g_max(const MemristorConfig& config) { return 1.0 / config.r_on_ohm; }

Memristor::Memristor(const MemristorConfig& config)
    : config_(config), conductance_(g_min(config)) {
  if (config.r_on_ohm <= 0 || config.r_off_ohm <= config.r_on_ohm) {
    throw std::invalid_argument("Memristor: need 0 < R_on < R_off");
  }
}

double level_conductance(int64_t level, int64_t max_level,
                         const MemristorConfig& config) {
  if (max_level <= 0 || level < 0 || level > max_level) {
    throw std::invalid_argument("level_conductance: bad level");
  }
  const double lo = g_min(config);
  const double hi = g_max(config);
  return lo + (hi - lo) * static_cast<double>(level) /
                  static_cast<double>(max_level);
}

int64_t nearest_level(double g, int64_t max_level,
                      const MemristorConfig& config) {
  const double lo = g_min(config);
  const double hi = g_max(config);
  const double t = (g - lo) / (hi - lo) * static_cast<double>(max_level);
  const int64_t k = static_cast<int64_t>(std::llround(t));
  return std::clamp<int64_t>(k, 0, max_level);
}

double fractional_level(double g, int64_t max_level,
                        const MemristorConfig& config) {
  const double lo = g_min(config);
  const double hi = g_max(config);
  const double t = (g - lo) / (hi - lo) * static_cast<double>(max_level);
  return std::clamp(t, 0.0, static_cast<double>(max_level));
}

double drift_conductance(double g, double lambda, double dt,
                         const MemristorConfig& config) {
  const double lo = g_min(config);
  return lo + (g - lo) * std::exp(-lambda * dt);
}

void Memristor::program(int64_t level, int64_t max_level, nn::Rng* rng) {
  double g = level_conductance(level, max_level, config_);
  if (config_.variation_sigma > 0.0 && rng != nullptr) {
    const double eps =
        rng->normal(0.0f, static_cast<float>(config_.variation_sigma));
    g *= std::exp(eps);
    g = std::clamp(g, g_min(config_), g_max(config_));
  }
  conductance_ = g;
}

}  // namespace qsnc::snc
