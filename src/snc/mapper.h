// Layer-to-crossbar mapping (paper Sec 2.2, Eq 1).
//
// A convolutional layer i with J^i filters of size s_i x s_i x d_i maps its
// filters column-by-column: filter j occupies bit line j, so the layer
// needs s_i^2 * d_i rows and J^i columns, tiled over t x t crossbars:
//
//   L_i = ceil(J^i / t) * ceil(s_i^2 * J^{i-1} / t)          (Eq 1)
//
// A fully connected layer is the degenerate case s=1 (in-features rows,
// out-features columns).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.h"

namespace qsnc::snc {

enum class LayerKind { kConv, kFullyConnected };

/// Geometry of one weight-bearing layer as seen by the mapper.
struct LayerDesc {
  LayerKind kind = LayerKind::kConv;
  std::string label;
  int64_t filters = 0;      // J^i (conv) or out-features (FC)
  int64_t kernel = 0;       // s_i (1 for FC)
  int64_t in_channels = 0;  // d_i (conv) or in-features (FC)
  int64_t out_h = 0;        // output spatial extent (conv; 1 for FC)
  int64_t out_w = 0;
};

/// Crossbar tiling of one layer.
struct LayerMapping {
  LayerDesc desc;
  int64_t rows = 0;       // logical rows required
  int64_t cols = 0;       // logical columns required
  int64_t crossbars = 0;  // Eq 1 tile count (per slice)
};

/// Whole-model mapping.
struct ModelMapping {
  std::string model;
  int64_t crossbar_size = 32;  // t
  /// Spare columns reserved per tile for fault remapping (0 = none).
  int64_t spare_cols = 0;
  std::vector<LayerMapping> layers;

  int64_t total_crossbars() const;
  int64_t total_rows() const;
  int64_t total_cols() const;
  int64_t layer_count() const { return static_cast<int64_t>(layers.size()); }
};

/// Eq 1 for one layer. `spare_cols` columns per tile are reserved for
/// fault remapping, shrinking the usable column extent to t - spare_cols
/// (the area overhead of sparing; must leave at least one usable column).
int64_t crossbars_for(int64_t rows, int64_t cols, int64_t t,
                      int64_t spare_cols = 0);

/// Extracts the weight-bearing layers (Conv2d at any nesting depth, Dense)
/// of `net` in forward order and tiles each onto t x t crossbars. The
/// input image shape [C, H, W] is needed to track conv output extents.
/// `spare_cols` reserves fault-remapping spares per tile (see
/// crossbars_for).
ModelMapping map_network(nn::Network& net, const std::string& model_name,
                         const nn::Shape& input_chw, int64_t crossbar_size,
                         int64_t spare_cols = 0);

}  // namespace qsnc::snc
