// Memristor device model.
//
// A memristor cell stores one synaptic magnitude as a programmable
// conductance in [1/R_off, 1/R_on]. Following the paper's deployment
// substrate (C. Liu et al., DAC'15 [12]) the resistance range is
// [50 kOhm, 1 MOhm]; an N-bit weight grid maps its magnitude levels
// 0..2^{N-1} linearly onto that conductance range. Signed weights use a
// differential pair of cells (positive and negative bit lines).
//
// Device variation: real devices land near, not on, the programmed level.
// program() optionally draws a lognormal multiplicative error, which the
// defect-injection extension benches use to study accuracy-vs-variation.
#pragma once

#include <cstdint>

#include "nn/rng.h"

namespace qsnc::snc {

struct MemristorConfig {
  double r_on_ohm = 50e3;    // lowest resistance (highest conductance)
  double r_off_ohm = 1e6;    // highest resistance (lowest conductance)
  double variation_sigma = 0.0;  // lognormal sigma of programming error

  // Fabrication defects (cf. C. Liu et al., DAC'17 — the paper's ref [16]):
  // a stuck-at-off cell reads g_min regardless of programming, a
  // stuck-at-on cell reads g_max. Rates are per-cell probabilities drawn
  // once at programming time (the defect map is static per array).
  double stuck_off_rate = 0.0;
  double stuck_on_rate = 0.0;

  // First-order IR-drop model: each word/bit line segment adds
  // `wire_resistance_ohm` in series, so the cell at (r, c) sees an
  // effective conductance g / (1 + g * R_wire * (r + c + 2)). Zero
  // disables the effect (ideal wires). Larger crossbars suffer more —
  // one reason the paper's substrate stops at 32x32 (Eq 1).
  double wire_resistance_ohm = 0.0;
};

/// Conductance bounds implied by a config (siemens).
double g_min(const MemristorConfig& config);
double g_max(const MemristorConfig& config);

/// One programmable device.
class Memristor {
 public:
  explicit Memristor(const MemristorConfig& config);

  /// Programs magnitude level k of an N-bit grid (k in [0, 2^{N-1}]);
  /// level 0 maps to g_min (the off state still leaks), the top level to
  /// g_max. When the config has variation, `rng` supplies the error draw.
  void program(int64_t level, int64_t max_level, nn::Rng* rng = nullptr);

  /// Present conductance in siemens.
  double conductance() const { return conductance_; }

  /// Current for a read voltage (amperes).
  double read_current(double volts) const { return conductance_ * volts; }

 private:
  MemristorConfig config_;
  double conductance_;
};

/// The ideal (variation-free) conductance of a grid level; exposed so the
/// crossbar can build dense arrays without one object per cell.
double level_conductance(int64_t level, int64_t max_level,
                         const MemristorConfig& config);

/// Inverse mapping: the magnitude level whose ideal conductance is nearest
/// to `g` (used to read back weights from a programmed array).
int64_t nearest_level(double g, int64_t max_level,
                      const MemristorConfig& config);

/// Real-valued inverse mapping: the fractional grid level whose ideal
/// conductance equals `g`, clamped to [0, max_level]. The write-verify
/// controller measures programming error in these units (a cell within
/// +/-0.5 of its target level reads back correctly).
double fractional_level(double g, int64_t max_level,
                        const MemristorConfig& config);

/// Retention drift: a programmed conductance relaxes toward g_min as
/// g(t) = g_min + (g0 - g_min) * exp(-lambda * dt)  (lambda in 1/window,
/// dt in inference windows). Per-cell lambda draws are lognormal around a
/// nominal rate, mirroring published retention spreads.
double drift_conductance(double g, double lambda, double dt,
                         const MemristorConfig& config);

}  // namespace qsnc::snc
