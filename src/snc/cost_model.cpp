#include "snc/cost_model.h"

#include <stdexcept>

#include "snc/spike.h"

namespace qsnc::snc {

int weight_slices(int weight_bits, int device_bits) {
  if (weight_bits < 1 || device_bits < 1) {
    throw std::invalid_argument("weight_slices: non-positive bits");
  }
  return (weight_bits + device_bits - 1) / device_bits;
}

SystemCost evaluate_cost(const ModelMapping& mapping, int signal_bits,
                         int weight_bits, const CostParams& params) {
  if (mapping.layers.empty()) {
    throw std::invalid_argument("evaluate_cost: empty mapping");
  }
  const int64_t T = window_slots(signal_bits);
  const int64_t L = mapping.layer_count();
  const int slices = weight_slices(weight_bits, params.device_bits);
  const double tile_cells = static_cast<double>(params.crossbar_size) *
                            static_cast<double>(params.crossbar_size);

  SystemCost cost;
  cost.layers = L;
  cost.window_slots = T;

  // Speed: one spike wave crosses all L stages per slot; a window of T
  // slots plus per-layer setup forms one inference period.
  const double period_ns =
      static_cast<double>(T) * static_cast<double>(L) * params.t_prop_ns +
      static_cast<double>(L) * params.t_setup_ns;
  cost.speed_mhz = 1e3 / period_ns;  // ns -> MHz

  double e_slot_pj = 0.0;   // energy of one slot across all layers
  double e_fixed_pj = 0.0;  // per-window energy (counters)
  double area_um2 = 0.0;
  for (const LayerMapping& l : mapping.layers) {
    const double rows = static_cast<double>(l.rows);
    const double cols = static_cast<double>(l.cols);
    const double tiles = static_cast<double>(l.crossbars * slices);
    const double positions =
        static_cast<double>(l.desc.out_h * l.desc.out_w);
    cost.crossbars += l.crossbars * slices;

    e_slot_pj += positions * (rows * params.e_driver_pj +
                              tiles * params.e_xbar_pj +
                              cols * params.e_ifc_pj);
    e_fixed_pj += positions * cols * static_cast<double>(signal_bits) *
                  params.e_cnt_bit_pj;

    area_um2 += tiles * tile_cells * params.a_cell_um2 +
                rows * params.a_driver_um2 + cols * params.a_ifc_um2 +
                cols * static_cast<double>(signal_bits) * params.a_perbit_um2;
  }

  cost.energy_uj = (static_cast<double>(T) * e_slot_pj + e_fixed_pj) * 1e-6;
  cost.area_mm2 = area_um2 * 1e-6;
  return cost;
}

RefreshOverhead evaluate_refresh(const ModelMapping& mapping, int signal_bits,
                                 int weight_bits, double interval_windows,
                                 const CostParams& cost_params,
                                 const ProgrammingParams& prog_params) {
  if (interval_windows <= 0.0) {
    throw std::invalid_argument(
        "evaluate_refresh: non-positive refresh interval");
  }
  const SystemCost cost =
      evaluate_cost(mapping, signal_bits, weight_bits, cost_params);
  const ProgrammingCost prog =
      evaluate_programming(mapping, weight_bits, prog_params);

  RefreshOverhead o;
  o.refresh_time_ms = prog.time_ms;
  // One window period in ms: speed_mhz = 1e3 / period_ns.
  const double period_ms = 1e-3 / cost.speed_mhz;
  o.interval_ms = interval_windows * period_ms;
  o.duty = o.refresh_time_ms / (o.refresh_time_ms + o.interval_ms);
  o.effective_speed_mhz = cost.speed_mhz * (1.0 - o.duty);
  return o;
}

CostComparison compare_cost(const SystemCost& baseline,
                            const SystemCost& proposed) {
  CostComparison cmp;
  cmp.speedup = proposed.speed_mhz / baseline.speed_mhz;
  cmp.energy_saving_pct =
      (1.0 - proposed.energy_uj / baseline.energy_uj) * 100.0;
  cmp.area_saving_pct = (1.0 - proposed.area_mm2 / baseline.area_mm2) * 100.0;
  return cmp;
}

}  // namespace qsnc::snc
