#include "snc/mapper.h"

#include <stdexcept>

#include "nn/im2col.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"

namespace qsnc::snc {

int64_t ModelMapping::total_crossbars() const {
  int64_t n = 0;
  for (const LayerMapping& l : layers) n += l.crossbars;
  return n;
}

int64_t ModelMapping::total_rows() const {
  int64_t n = 0;
  for (const LayerMapping& l : layers) n += l.rows;
  return n;
}

int64_t ModelMapping::total_cols() const {
  int64_t n = 0;
  for (const LayerMapping& l : layers) n += l.cols;
  return n;
}

int64_t crossbars_for(int64_t rows, int64_t cols, int64_t t,
                      int64_t spare_cols) {
  if (rows <= 0 || cols <= 0 || t <= 0) {
    throw std::invalid_argument("crossbars_for: non-positive extent");
  }
  if (spare_cols < 0 || spare_cols >= t) {
    throw std::invalid_argument(
        "crossbars_for: spare_cols must leave a usable column");
  }
  const auto ceil_div = [](int64_t a, int64_t b) { return (a + b - 1) / b; };
  // Spares eat into each tile's column extent, so a faulty-column budget
  // shows up as extra tiles along the column axis.
  return ceil_div(cols, t - spare_cols) * ceil_div(rows, t);  // Eq 1
}

ModelMapping map_network(nn::Network& net, const std::string& model_name,
                         const nn::Shape& input_chw, int64_t crossbar_size,
                         int64_t spare_cols) {
  if (input_chw.size() != 3) {
    throw std::invalid_argument("map_network: input shape must be [C,H,W]");
  }
  // A single training-mode forward pass makes every Conv2d cache its input,
  // from which the mapper recovers spatial extents.
  nn::Tensor probe({1, input_chw[0], input_chw[1], input_chw[2]});
  net.forward(probe, /*train=*/true);

  ModelMapping mapping;
  mapping.model = model_name;
  mapping.crossbar_size = crossbar_size;
  mapping.spare_cols = spare_cols;

  int conv_index = 0;
  int fc_index = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    nn::visit_layers(&net.layer(i), [&](nn::Layer* l) {
      if (auto* conv = dynamic_cast<nn::Conv2d*>(l)) {
        const nn::Tensor& in = conv->input_cache();
        LayerDesc desc;
        desc.kind = LayerKind::kConv;
        desc.label = "conv" + std::to_string(++conv_index);
        desc.filters = conv->out_channels();
        desc.kernel = conv->kernel();
        desc.in_channels = conv->in_channels();
        desc.out_h = nn::conv_out_extent(in.dim(2), conv->kernel(),
                                         conv->stride(), conv->pad());
        desc.out_w = nn::conv_out_extent(in.dim(3), conv->kernel(),
                                         conv->stride(), conv->pad());
        LayerMapping lm;
        lm.desc = desc;
        lm.rows = desc.kernel * desc.kernel * desc.in_channels;
        lm.cols = desc.filters;
        lm.crossbars =
            crossbars_for(lm.rows, lm.cols, crossbar_size, spare_cols);
        mapping.layers.push_back(lm);
      } else if (auto* fc = dynamic_cast<nn::Dense*>(l)) {
        LayerDesc desc;
        desc.kind = LayerKind::kFullyConnected;
        desc.label = "fc" + std::to_string(++fc_index);
        desc.filters = fc->out_features();
        desc.kernel = 1;
        desc.in_channels = fc->in_features();
        desc.out_h = 1;
        desc.out_w = 1;
        LayerMapping lm;
        lm.desc = desc;
        lm.rows = desc.in_channels;
        lm.cols = desc.filters;
        lm.crossbars =
            crossbars_for(lm.rows, lm.cols, crossbar_size, spare_cols);
        mapping.layers.push_back(lm);
      }
    });
  }
  return mapping;
}

}  // namespace qsnc::snc
