#include "snc/crossbar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::snc {

namespace {
size_t checked_cells(int64_t rows, int64_t cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("Crossbar: non-positive extent");
  }
  return static_cast<size_t>(rows * cols);
}
}  // namespace

Crossbar::Crossbar(int64_t rows, int64_t cols, const MemristorConfig& config)
    : rows_(rows),
      cols_(cols),
      config_(config),
      g_(checked_cells(rows, cols), g_min(config)) {
  if (config_.wire_resistance_ohm > 0.0) {
    geff_.resize(g_.size());
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t c = 0; c < cols_; ++c) bake_effective(r, c);
    }
  }
}

void Crossbar::bake_effective(int64_t r, int64_t c) {
  if (geff_.empty()) return;
  geff_[static_cast<size_t>(index(r, c))] = effective_conductance(r, c);
}

void Crossbar::program_cell(int64_t r, int64_t c, int64_t level,
                            int64_t max_level, nn::Rng* rng) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::program_cell: cell out of range");
  }
  if (!defects_.empty()) {
    // Static-map mode: the fault is a property of the cell, not the write.
    const DefectKind kind = defects_[static_cast<size_t>(index(r, c))];
    if (kind == DefectKind::kStuckOff) {
      g_[static_cast<size_t>(index(r, c))] = g_min(config_);
      bake_effective(r, c);
      return;
    }
    if (kind == DefectKind::kStuckOn) {
      g_[static_cast<size_t>(index(r, c))] = g_max(config_);
      bake_effective(r, c);
      return;
    }
  } else if (rng != nullptr) {
    // Fabrication defects override programming entirely.
    if (config_.stuck_off_rate > 0.0 && rng->bernoulli(config_.stuck_off_rate)) {
      g_[static_cast<size_t>(index(r, c))] = g_min(config_);
      bake_effective(r, c);
      return;
    }
    if (config_.stuck_on_rate > 0.0 && rng->bernoulli(config_.stuck_on_rate)) {
      g_[static_cast<size_t>(index(r, c))] = g_max(config_);
      bake_effective(r, c);
      return;
    }
  }
  double g = level_conductance(level, max_level, config_);
  if (config_.variation_sigma > 0.0 && rng != nullptr) {
    g *= std::exp(rng->normal(0.0f,
                              static_cast<float>(config_.variation_sigma)));
    g = std::clamp(g, g_min(config_), g_max(config_));
  }
  g_[static_cast<size_t>(index(r, c))] = g;
  bake_effective(r, c);
}

void Crossbar::draw_defect_map(nn::Rng& rng) {
  defects_.assign(g_.size(), DefectKind::kNone);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      DefectKind kind = DefectKind::kNone;
      if (config_.stuck_off_rate > 0.0 &&
          rng.bernoulli(config_.stuck_off_rate)) {
        kind = DefectKind::kStuckOff;
      } else if (config_.stuck_on_rate > 0.0 &&
                 rng.bernoulli(config_.stuck_on_rate)) {
        kind = DefectKind::kStuckOn;
      }
      if (kind != DefectKind::kNone) set_defect(r, c, kind);
    }
  }
}

void Crossbar::set_defect(int64_t r, int64_t c, DefectKind kind) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::set_defect: cell out of range");
  }
  if (defects_.empty()) defects_.assign(g_.size(), DefectKind::kNone);
  defects_[static_cast<size_t>(index(r, c))] = kind;
  if (kind == DefectKind::kStuckOff) {
    g_[static_cast<size_t>(index(r, c))] = g_min(config_);
  } else if (kind == DefectKind::kStuckOn) {
    g_[static_cast<size_t>(index(r, c))] = g_max(config_);
  }
  bake_effective(r, c);
}

DefectKind Crossbar::defect(int64_t r, int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::defect: cell out of range");
  }
  if (defects_.empty()) return DefectKind::kNone;
  return defects_[static_cast<size_t>(index(r, c))];
}

int64_t Crossbar::defect_count() const {
  int64_t n = 0;
  for (const DefectKind kind : defects_) {
    if (kind != DefectKind::kNone) ++n;
  }
  return n;
}

void Crossbar::apply_drift(double dt, double rate, double sigma,
                           uint64_t seed) {
  if (dt <= 0.0 || rate <= 0.0) return;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      const size_t i = static_cast<size_t>(index(r, c));
      if (!defects_.empty() && defects_[i] != DefectKind::kNone) continue;
      double lambda = rate;
      if (sigma > 0.0) {
        nn::Rng cell_rng(nn::Rng::stream_seed(seed, static_cast<uint64_t>(i)));
        lambda *= std::exp(sigma * cell_rng.normal(0.0f, 1.0f));
      }
      g_[i] = drift_conductance(g_[i], lambda, dt, config_);
      bake_effective(r, c);
    }
  }
}

double Crossbar::conductance(int64_t r, int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::conductance: cell out of range");
  }
  return g_[static_cast<size_t>(index(r, c))];
}

double Crossbar::effective_conductance(int64_t r, int64_t c) const {
  const double g = g_[static_cast<size_t>(index(r, c))];
  if (config_.wire_resistance_ohm <= 0.0) return g;
  // First-order IR drop: (r + c + 2) wire segments in series with the cell.
  const double segments = static_cast<double>(r + c + 2);
  return g / (1.0 + g * config_.wire_resistance_ohm * segments);
}

void Crossbar::read_columns_into(const double* volts,
                                 double* currents) const {
  std::fill(currents, currents + cols_, 0.0);
  const double* panel = effective_panel();
  for (int64_t r = 0; r < rows_; ++r) {
    const double v = volts[static_cast<size_t>(r)];
    if (v == 0.0) continue;
    const double* row = panel + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      currents[static_cast<size_t>(c)] += v * row[c];
    }
  }
}

void Crossbar::read_columns_spiking_into(const uint8_t* spikes, double v_read,
                                         double* currents) const {
  std::fill(currents, currents + cols_, 0.0);
  const double* panel = effective_panel();
  for (int64_t r = 0; r < rows_; ++r) {
    if (spikes[static_cast<size_t>(r)] == 0) continue;
    const double* row = panel + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      currents[static_cast<size_t>(c)] += v_read * row[c];
    }
  }
}

std::vector<double> Crossbar::read_columns(
    const std::vector<double>& volts) const {
  if (static_cast<int64_t>(volts.size()) != rows_) {
    throw std::invalid_argument("Crossbar::read_columns: bad voltage count");
  }
  std::vector<double> currents(static_cast<size_t>(cols_));
  read_columns_into(volts.data(), currents.data());
  return currents;
}

std::vector<double> Crossbar::read_columns_spiking(
    const std::vector<uint8_t>& spikes, double v_read) const {
  if (static_cast<int64_t>(spikes.size()) != rows_) {
    throw std::invalid_argument(
        "Crossbar::read_columns_spiking: bad spike count");
  }
  std::vector<double> currents(static_cast<size_t>(cols_));
  read_columns_spiking_into(spikes.data(), v_read, currents.data());
  return currents;
}

DifferentialCrossbar::DifferentialCrossbar(int64_t rows, int64_t cols,
                                           const MemristorConfig& config,
                                           int64_t spare_cols)
    : rows_(rows),
      cols_(cols),
      spare_cols_(spare_cols),
      config_(config),
      plus_(rows, cols + spare_cols, config),
      minus_(rows, cols + spare_cols, config),
      panel_(checked_cells(rows, cols) * 2),
      col_map_(static_cast<size_t>(cols)) {
  if (spare_cols < 0) {
    throw std::invalid_argument("DifferentialCrossbar: negative spare_cols");
  }
  for (int64_t c = 0; c < cols_; ++c) col_map_[static_cast<size_t>(c)] = c;
  for (int64_t c = 0; c < cols_; ++c) sync_panel_column(c);
}

int64_t DifferentialCrossbar::physical_column(int64_t c) const {
  if (c < 0 || c >= cols_) {
    throw std::out_of_range("DifferentialCrossbar: logical column OOR");
  }
  return col_map_[static_cast<size_t>(c)];
}

void DifferentialCrossbar::sync_panel_column(int64_t c) {
  const int64_t pc = physical_column(c);
  for (int64_t r = 0; r < rows_; ++r) {
    panel_[static_cast<size_t>((r * cols_ + c) * 2)] =
        plus_.effective_conductance(r, pc);
    panel_[static_cast<size_t>((r * cols_ + c) * 2 + 1)] =
        minus_.effective_conductance(r, pc);
  }
}

int64_t DifferentialCrossbar::claim_spare() {
  if (spares_used_ >= spare_cols_) return -1;
  return cols_ + spares_used_++;
}

void DifferentialCrossbar::bind_column(int64_t c, int64_t phys_c) {
  if (c < 0 || c >= cols_) {
    throw std::out_of_range("DifferentialCrossbar: logical column OOR");
  }
  if (phys_c < 0 || phys_c >= cols_ + spare_cols_) {
    throw std::out_of_range("DifferentialCrossbar: physical column OOR");
  }
  col_map_[static_cast<size_t>(c)] = phys_c;
  sync_panel_column(c);
}

int64_t DifferentialCrossbar::remapped_cols() const {
  int64_t n = 0;
  for (int64_t c = 0; c < cols_; ++c) {
    if (col_map_[static_cast<size_t>(c)] != c) ++n;
  }
  return n;
}

void DifferentialCrossbar::program_cell(int64_t r, int64_t c,
                                        int64_t signed_level,
                                        int64_t max_level, nn::Rng* rng) {
  const int64_t magnitude = signed_level >= 0 ? signed_level : -signed_level;
  const int64_t pc = physical_column(c);
  if (signed_level >= 0) {
    plus_.program_cell(r, pc, magnitude, max_level, rng);
    minus_.program_cell(r, pc, 0, max_level, rng);
  } else {
    plus_.program_cell(r, pc, 0, max_level, rng);
    minus_.program_cell(r, pc, magnitude, max_level, rng);
  }
  panel_[static_cast<size_t>((r * cols_ + c) * 2)] =
      plus_.effective_conductance(r, pc);
  panel_[static_cast<size_t>((r * cols_ + c) * 2 + 1)] =
      minus_.effective_conductance(r, pc);
}

void DifferentialCrossbar::program_array_cell(bool minus_array, int64_t r,
                                              int64_t phys_c, int64_t level,
                                              int64_t max_level,
                                              nn::Rng* rng) {
  Crossbar& array = minus_array ? minus_ : plus_;
  array.program_cell(r, phys_c, level, max_level, rng);
}

double DifferentialCrossbar::array_effective(bool minus_array, int64_t r,
                                             int64_t phys_c) const {
  const Crossbar& array = minus_array ? minus_ : plus_;
  return array.effective_conductance(r, phys_c);
}

void DifferentialCrossbar::draw_defect_maps(nn::Rng& rng) {
  plus_.draw_defect_map(rng);
  minus_.draw_defect_map(rng);
  for (int64_t c = 0; c < cols_; ++c) sync_panel_column(c);
}

void DifferentialCrossbar::set_defect(int64_t r, int64_t c, bool minus_array,
                                      DefectKind kind) {
  const int64_t pc = physical_column(c);
  if (minus_array) {
    minus_.set_defect(r, pc, kind);
  } else {
    plus_.set_defect(r, pc, kind);
  }
  sync_panel_column(c);
}

void DifferentialCrossbar::apply_drift(double dt, double rate, double sigma,
                                       uint64_t seed) {
  plus_.apply_drift(dt, rate, sigma, nn::Rng::stream_seed(seed, 1));
  minus_.apply_drift(dt, rate, sigma, nn::Rng::stream_seed(seed, 2));
  for (int64_t c = 0; c < cols_; ++c) sync_panel_column(c);
}

void DifferentialCrossbar::accumulate_rows(const int32_t* rows,
                                           const double* drives, int64_t n,
                                           double* acc) const {
  const int64_t width = 2 * cols_;
  for (int64_t i = 0; i < n; ++i) {
    const double v = drives[i];
    const double* row = panel_.data() + static_cast<int64_t>(rows[i]) * width;
    for (int64_t c = 0; c < width; ++c) acc[c] += v * row[c];
  }
}

void DifferentialCrossbar::accumulate_rows_batch(const int32_t* rows,
                                                 const double* drives,
                                                 int64_t n, int64_t batch,
                                                 double* acc) const {
  const int64_t width = 2 * cols_;
  for (int64_t i = 0; i < n; ++i) {
    const double* row = panel_.data() + static_cast<int64_t>(rows[i]) * width;
    const double* dv = drives + i * batch;
    // Two images per pass: the panel row is loaded once per register strip
    // instead of once per image. The per-image update keeps the exact
    // expression shape of accumulate_rows, so each (image, column) sum
    // goes through the same arithmetic and stays bit-identical.
    int64_t b = 0;
    for (; b + 2 <= batch; b += 2) {
      const double v0 = dv[b];
      const double v1 = dv[b + 1];
      double* a0 = acc + b * width;
      double* a1 = a0 + width;
      if (v0 != 0.0 && v1 != 0.0) {
        for (int64_t c = 0; c < width; ++c) {
          const double g = row[c];
          a0[c] += v0 * g;
          a1[c] += v1 * g;
        }
      } else if (v0 != 0.0) {
        for (int64_t c = 0; c < width; ++c) a0[c] += v0 * row[c];
      } else if (v1 != 0.0) {
        for (int64_t c = 0; c < width; ++c) a1[c] += v1 * row[c];
      }
    }
    if (b < batch && dv[b] != 0.0) {
      const double v = dv[b];
      double* a = acc + b * width;
      for (int64_t c = 0; c < width; ++c) a[c] += v * row[c];
    }
  }
}

void DifferentialCrossbar::read_logical_columns(
    const std::vector<double>& volts, std::vector<double>& plus_out,
    std::vector<double>& minus_out) const {
  if (static_cast<int64_t>(volts.size()) != rows_) {
    throw std::invalid_argument(
        "DifferentialCrossbar::read_logical_columns: bad voltage count");
  }
  plus_out.assign(static_cast<size_t>(cols_), 0.0);
  minus_out.assign(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const double v = volts[static_cast<size_t>(r)];
    if (v == 0.0) continue;
    const double* row = panel_.data() + r * 2 * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      plus_out[static_cast<size_t>(c)] += v * row[2 * c];
      minus_out[static_cast<size_t>(c)] += v * row[2 * c + 1];
    }
  }
}

void DifferentialCrossbar::read_logical_columns_spiking(
    const std::vector<uint8_t>& spikes, double v_read,
    std::vector<double>& plus_out, std::vector<double>& minus_out) const {
  if (static_cast<int64_t>(spikes.size()) != rows_) {
    throw std::invalid_argument(
        "DifferentialCrossbar::read_logical_columns_spiking: bad spike "
        "count");
  }
  plus_out.assign(static_cast<size_t>(cols_), 0.0);
  minus_out.assign(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    if (spikes[static_cast<size_t>(r)] == 0) continue;
    const double* row = panel_.data() + r * 2 * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      plus_out[static_cast<size_t>(c)] += v_read * row[2 * c];
      minus_out[static_cast<size_t>(c)] += v_read * row[2 * c + 1];
    }
  }
}

std::vector<double> DifferentialCrossbar::read_columns_spiking(
    const std::vector<uint8_t>& spikes, double v_read) const {
  if (static_cast<int64_t>(spikes.size()) != rows_) {
    throw std::invalid_argument(
        "DifferentialCrossbar::read_columns_spiking: bad spike count");
  }
  // Reads through the logical panel so remapped columns see their spare;
  // per-array sums keep the ascending-row accumulation order.
  std::vector<double> ip(static_cast<size_t>(cols_), 0.0);
  std::vector<double> im(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    if (spikes[static_cast<size_t>(r)] == 0) continue;
    const double* row = panel_.data() + r * 2 * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      ip[static_cast<size_t>(c)] += v_read * row[2 * c];
      im[static_cast<size_t>(c)] += v_read * row[2 * c + 1];
    }
  }
  for (size_t c = 0; c < ip.size(); ++c) ip[c] -= im[c];
  return ip;
}

int64_t DifferentialCrossbar::read_level(int64_t r, int64_t c,
                                         int64_t max_level) const {
  const int64_t pc = physical_column(c);
  const int64_t kp = nearest_level(plus_.conductance(r, pc), max_level,
                                   config_);
  const int64_t km = nearest_level(minus_.conductance(r, pc), max_level,
                                   config_);
  return kp - km;
}

}  // namespace qsnc::snc
