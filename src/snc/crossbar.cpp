#include "snc/crossbar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::snc {

namespace {
size_t checked_cells(int64_t rows, int64_t cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("Crossbar: non-positive extent");
  }
  return static_cast<size_t>(rows * cols);
}
}  // namespace

Crossbar::Crossbar(int64_t rows, int64_t cols, const MemristorConfig& config)
    : rows_(rows),
      cols_(cols),
      config_(config),
      g_(checked_cells(rows, cols), g_min(config)) {
  if (config_.wire_resistance_ohm > 0.0) {
    geff_.resize(g_.size());
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t c = 0; c < cols_; ++c) bake_effective(r, c);
    }
  }
}

void Crossbar::bake_effective(int64_t r, int64_t c) {
  if (geff_.empty()) return;
  geff_[static_cast<size_t>(index(r, c))] = effective_conductance(r, c);
}

void Crossbar::program_cell(int64_t r, int64_t c, int64_t level,
                            int64_t max_level, nn::Rng* rng) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::program_cell: cell out of range");
  }
  if (rng != nullptr) {
    // Fabrication defects override programming entirely.
    if (config_.stuck_off_rate > 0.0 && rng->bernoulli(config_.stuck_off_rate)) {
      g_[static_cast<size_t>(index(r, c))] = g_min(config_);
      bake_effective(r, c);
      return;
    }
    if (config_.stuck_on_rate > 0.0 && rng->bernoulli(config_.stuck_on_rate)) {
      g_[static_cast<size_t>(index(r, c))] = g_max(config_);
      bake_effective(r, c);
      return;
    }
  }
  double g = level_conductance(level, max_level, config_);
  if (config_.variation_sigma > 0.0 && rng != nullptr) {
    g *= std::exp(rng->normal(0.0f,
                              static_cast<float>(config_.variation_sigma)));
    g = std::clamp(g, g_min(config_), g_max(config_));
  }
  g_[static_cast<size_t>(index(r, c))] = g;
  bake_effective(r, c);
}

double Crossbar::conductance(int64_t r, int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("Crossbar::conductance: cell out of range");
  }
  return g_[static_cast<size_t>(index(r, c))];
}

double Crossbar::effective_conductance(int64_t r, int64_t c) const {
  const double g = g_[static_cast<size_t>(index(r, c))];
  if (config_.wire_resistance_ohm <= 0.0) return g;
  // First-order IR drop: (r + c + 2) wire segments in series with the cell.
  const double segments = static_cast<double>(r + c + 2);
  return g / (1.0 + g * config_.wire_resistance_ohm * segments);
}

void Crossbar::read_columns_into(const double* volts,
                                 double* currents) const {
  std::fill(currents, currents + cols_, 0.0);
  const double* panel = effective_panel();
  for (int64_t r = 0; r < rows_; ++r) {
    const double v = volts[static_cast<size_t>(r)];
    if (v == 0.0) continue;
    const double* row = panel + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      currents[static_cast<size_t>(c)] += v * row[c];
    }
  }
}

void Crossbar::read_columns_spiking_into(const uint8_t* spikes, double v_read,
                                         double* currents) const {
  std::fill(currents, currents + cols_, 0.0);
  const double* panel = effective_panel();
  for (int64_t r = 0; r < rows_; ++r) {
    if (spikes[static_cast<size_t>(r)] == 0) continue;
    const double* row = panel + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      currents[static_cast<size_t>(c)] += v_read * row[c];
    }
  }
}

std::vector<double> Crossbar::read_columns(
    const std::vector<double>& volts) const {
  if (static_cast<int64_t>(volts.size()) != rows_) {
    throw std::invalid_argument("Crossbar::read_columns: bad voltage count");
  }
  std::vector<double> currents(static_cast<size_t>(cols_));
  read_columns_into(volts.data(), currents.data());
  return currents;
}

std::vector<double> Crossbar::read_columns_spiking(
    const std::vector<uint8_t>& spikes, double v_read) const {
  if (static_cast<int64_t>(spikes.size()) != rows_) {
    throw std::invalid_argument(
        "Crossbar::read_columns_spiking: bad spike count");
  }
  std::vector<double> currents(static_cast<size_t>(cols_));
  read_columns_spiking_into(spikes.data(), v_read, currents.data());
  return currents;
}

DifferentialCrossbar::DifferentialCrossbar(int64_t rows, int64_t cols,
                                           const MemristorConfig& config)
    : rows_(rows),
      cols_(cols),
      config_(config),
      plus_(rows, cols, config),
      minus_(rows, cols, config),
      panel_(checked_cells(rows, cols) * 2) {
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      panel_[static_cast<size_t>((r * cols_ + c) * 2)] =
          plus_.effective_conductance(r, c);
      panel_[static_cast<size_t>((r * cols_ + c) * 2 + 1)] =
          minus_.effective_conductance(r, c);
    }
  }
}

void DifferentialCrossbar::program_cell(int64_t r, int64_t c,
                                        int64_t signed_level,
                                        int64_t max_level, nn::Rng* rng) {
  const int64_t magnitude = signed_level >= 0 ? signed_level : -signed_level;
  if (signed_level >= 0) {
    plus_.program_cell(r, c, magnitude, max_level, rng);
    minus_.program_cell(r, c, 0, max_level, rng);
  } else {
    plus_.program_cell(r, c, 0, max_level, rng);
    minus_.program_cell(r, c, magnitude, max_level, rng);
  }
  panel_[static_cast<size_t>((r * cols_ + c) * 2)] =
      plus_.effective_conductance(r, c);
  panel_[static_cast<size_t>((r * cols_ + c) * 2 + 1)] =
      minus_.effective_conductance(r, c);
}

void DifferentialCrossbar::accumulate_rows(const int32_t* rows,
                                           const double* drives, int64_t n,
                                           double* acc) const {
  const int64_t width = 2 * cols_;
  for (int64_t i = 0; i < n; ++i) {
    const double v = drives[i];
    const double* row = panel_.data() + static_cast<int64_t>(rows[i]) * width;
    for (int64_t c = 0; c < width; ++c) acc[c] += v * row[c];
  }
}

std::vector<double> DifferentialCrossbar::read_columns_spiking(
    const std::vector<uint8_t>& spikes, double v_read) const {
  std::vector<double> ip = plus_.read_columns_spiking(spikes, v_read);
  const std::vector<double> im = minus_.read_columns_spiking(spikes, v_read);
  for (size_t c = 0; c < ip.size(); ++c) ip[c] -= im[c];
  return ip;
}

int64_t DifferentialCrossbar::read_level(int64_t r, int64_t c,
                                         int64_t max_level) const {
  const int64_t kp = nearest_level(plus_.conductance(r, c), max_level,
                                   config_);
  const int64_t km = nearest_level(minus_.conductance(r, c), max_level,
                                   config_);
  return kp - km;
}

}  // namespace qsnc::snc
