// Rate coding and the integrate-and-fire conversion chain.
//
// In the paper's SNC an M-bit signal value n in [0, 2^M - 1] is carried as
// n spikes inside a time window of T = 2^M - 1 slots. Crossbar column
// currents are converted back to spikes by integrate-and-fire circuits
// (IFCs); digital counters tally the spikes to reconstruct the M-bit value
// for the next layer.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"

namespace qsnc::snc {

/// Spike window length for an M-bit signal.
constexpr int64_t window_slots(int bits) { return (int64_t{1} << bits) - 1; }

/// Encodes an integer value into a deterministic spike train of
/// `window_slots(bits)` slots with evenly spread spikes (values are clamped
/// to [0, 2^M - 1]). Deterministic coding keeps the behavioural simulator
/// bit-exact with the quantized network; Bernoulli coding is available for
/// the stochastic-coding ablation.
std::vector<uint8_t> rate_encode(int64_t value, int bits);

/// Stochastic variant: each slot fires with probability value / T.
std::vector<uint8_t> rate_encode_stochastic(int64_t value, int bits,
                                            nn::Rng& rng);

/// Allocation-free encoders for the inference hot loop: write the train
/// into caller-owned storage of `window_slots(bits)` slots. The vector
/// variants above are thin wrappers. The stochastic form consumes exactly
/// `window_slots(bits)` RNG draws for every value — including zero — so a
/// caller that encodes only the rows it needs keeps the stream aligned
/// with one that encodes everything.
void rate_encode_into(int64_t value, int bits, uint8_t* train);
void rate_encode_stochastic_into(int64_t value, int bits, nn::Rng& rng,
                                 uint8_t* train);

/// Counts spikes back into an integer (the Counter block).
int64_t rate_decode(const std::vector<uint8_t>& spikes);

/// Integrate-and-fire circuit: accumulates charge each slot and emits a spike
/// each time the membrane crosses the firing threshold (subtractive reset).
class IntegrateFire {
 public:
  /// `threshold_charge` is the charge equivalent of one output spike.
  explicit IntegrateFire(double threshold_charge);

  /// Integrates one slot's current*dt worth of charge; returns the number
  /// of spikes emitted in this slot (can exceed 1 for large inputs).
  int64_t integrate(double charge);

  /// Remaining sub-threshold membrane charge.
  double membrane() const { return membrane_; }

  void reset() { membrane_ = 0.0; }

 private:
  double threshold_;
  double membrane_ = 0.0;
};

/// Saturating digital spike counter with an M-bit ceiling.
class SpikeCounter {
 public:
  explicit SpikeCounter(int bits);

  void count(int64_t spikes);
  int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  int64_t ceiling_;
  int64_t value_ = 0;
};

}  // namespace qsnc::snc
