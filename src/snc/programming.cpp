#include "snc/programming.h"

#include <cmath>
#include <stdexcept>

#include "snc/cost_model.h"

namespace qsnc::snc {

double pulses_per_cell(int weight_bits, const ProgrammingParams& params) {
  if (weight_bits < 1 || weight_bits > 16) {
    throw std::invalid_argument("pulses_per_cell: bits out of range");
  }
  const int per_device = std::min(weight_bits, params.device_bits);
  return params.pulses_base *
         std::ldexp(1.0, per_device - 1);  // pulses_base * 2^(bits-1)
}

ProgrammingCost evaluate_programming(const ModelMapping& mapping,
                                     int weight_bits,
                                     const ProgrammingParams& params) {
  if (mapping.layers.empty()) {
    throw std::invalid_argument("evaluate_programming: empty mapping");
  }
  const int slices = weight_slices(weight_bits, params.device_bits);
  const double pulses = pulses_per_cell(weight_bits, params);

  ProgrammingCost cost;
  double serial_time_ns = 0.0;
  for (const LayerMapping& l : mapping.layers) {
    // Differential pair: two physical cells per logical weight, per slice.
    const int64_t layer_cells = 2 * l.rows * l.cols * slices;
    cost.cells += layer_cells;

    // Rows program in parallel groups; columns within a row are written
    // together by the bit-line drivers.
    const int64_t row_groups =
        (l.rows + params.parallel_rows - 1) / params.parallel_rows;
    serial_time_ns += static_cast<double>(row_groups) * 2.0 *
                      static_cast<double>(slices) * pulses *
                      (params.t_pulse_ns + params.t_verify_ns);
  }
  cost.total_pulses = static_cast<double>(cost.cells) * pulses;
  cost.time_ms = serial_time_ns * 1e-6;
  cost.energy_uj = cost.total_pulses * params.e_pulse_pj * 1e-6;
  return cost;
}

}  // namespace qsnc::snc
