#include "snc/programming.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "snc/cost_model.h"

namespace qsnc::snc {

double pulses_per_cell(int weight_bits, const ProgrammingParams& params) {
  if (weight_bits < 1 || weight_bits > 16) {
    throw std::invalid_argument("pulses_per_cell: bits out of range");
  }
  const int per_device = std::min(weight_bits, params.device_bits);
  return params.pulses_base *
         std::ldexp(1.0, per_device - 1);  // pulses_base * 2^(bits-1)
}

ProgrammingCost evaluate_programming(const ModelMapping& mapping,
                                     int weight_bits,
                                     const ProgrammingParams& params) {
  if (mapping.layers.empty()) {
    throw std::invalid_argument("evaluate_programming: empty mapping");
  }
  const int slices = weight_slices(weight_bits, params.device_bits);
  const double pulses = pulses_per_cell(weight_bits, params);

  ProgrammingCost cost;
  double serial_time_ns = 0.0;
  for (const LayerMapping& l : mapping.layers) {
    // Differential pair: two physical cells per logical weight, per slice.
    const int64_t layer_cells = 2 * l.rows * l.cols * slices;
    cost.cells += layer_cells;

    // Rows program in parallel groups; columns within a row are written
    // together by the bit-line drivers.
    const int64_t row_groups =
        (l.rows + params.parallel_rows - 1) / params.parallel_rows;
    serial_time_ns += static_cast<double>(row_groups) * 2.0 *
                      static_cast<double>(slices) * pulses *
                      (params.t_pulse_ns + params.t_verify_ns);
  }
  cost.total_pulses = static_cast<double>(cost.cells) * pulses;
  cost.time_ms = serial_time_ns * 1e-6;
  cost.energy_uj = cost.total_pulses * params.e_pulse_pj * 1e-6;
  return cost;
}

void FaultReport::add(const FaultReport& other) {
  cells += other.cells;
  write_retries += other.write_retries;
  faults_detected += other.faults_detected;
  faults_compensated += other.faults_compensated;
  residual_faults += other.residual_faults;
  remapped_cols += other.remapped_cols;
  spare_cols_left += other.spare_cols_left;
  refreshes += other.refreshes;
}

namespace {

/// Differential level the pair at (r, phys_c) actually realizes, measured
/// through the effective (wire-model) conductance — the verify read.
double achieved_level(const DifferentialCrossbar& xbar, int64_t r,
                      int64_t phys_c, int64_t max_level) {
  const double p = fractional_level(xbar.array_effective(false, r, phys_c),
                                    max_level, xbar.device());
  const double m = fractional_level(xbar.array_effective(true, r, phys_c),
                                    max_level, xbar.device());
  return p - m;
}

/// Write-verify loop for one differential pair at a physical column.
/// Residual (still off-target after compensation) is reported through
/// `col_residual`; the caller folds per-column residuals into the report
/// after any remapping so abandoned columns stop counting.
void program_pair_verified(DifferentialCrossbar& xbar, int64_t r,
                           int64_t phys_c, int64_t k, int64_t max_level,
                           const WriteVerifyConfig& wv, nn::Rng& rng,
                           FaultReport& report, int64_t* col_residual) {
  const int64_t plus_target = k >= 0 ? k : 0;
  const int64_t minus_target = k >= 0 ? 0 : -k;
  ++report.cells;
  for (int attempt = 0;; ++attempt) {
    xbar.program_array_cell(false, r, phys_c, plus_target, max_level, &rng);
    xbar.program_array_cell(true, r, phys_c, minus_target, max_level, &rng);
    const double err =
        achieved_level(xbar, r, phys_c, max_level) - static_cast<double>(k);
    if (std::fabs(err) <= wv.tolerance_levels) return;
    if (attempt >= wv.max_retries) break;
    ++report.write_retries;
  }
  ++report.faults_detected;

  // Differential compensation: re-aim the partner of the more deviant
  // array so the *pair* lands on k even though one cell is pinned. A plus
  // cell stuck at level p is cancelled by minus = clamp(round(p - k));
  // the clamp is what leaves a (small) residual when round(p - k) falls
  // off the grid.
  const double p = fractional_level(xbar.array_effective(false, r, phys_c),
                                    max_level, xbar.device());
  const double m = fractional_level(xbar.array_effective(true, r, phys_c),
                                    max_level, xbar.device());
  const bool plus_deviant = std::fabs(p - static_cast<double>(plus_target)) >=
                            std::fabs(m - static_cast<double>(minus_target));
  const bool tune_minus = plus_deviant;
  const double real_target = tune_minus ? p - static_cast<double>(k)
                                        : m + static_cast<double>(k);
  const int64_t target = std::clamp<int64_t>(
      std::llround(real_target), 0, max_level);
  for (int attempt = 0;; ++attempt) {
    xbar.program_array_cell(tune_minus, r, phys_c, target, max_level, &rng);
    const double err =
        achieved_level(xbar, r, phys_c, max_level) - static_cast<double>(k);
    if (std::fabs(err) <= wv.tolerance_levels) {
      ++report.faults_compensated;
      return;
    }
    if (attempt >= wv.max_retries) break;
    ++report.write_retries;
  }
  if (col_residual != nullptr) ++*col_residual;
}

/// Programs every pair of one *physical* column (levels indexed by row).
int64_t program_physical_column(DifferentialCrossbar& xbar, int64_t phys_c,
                                const int64_t* levels, int64_t max_level,
                                const WriteVerifyConfig& wv, nn::Rng& rng,
                                FaultReport& report) {
  int64_t residual = 0;
  for (int64_t r = 0; r < xbar.rows(); ++r) {
    program_pair_verified(xbar, r, phys_c, levels[r], max_level, wv, rng,
                          report, &residual);
  }
  return residual;
}

}  // namespace

FaultReport program_column_verified(DifferentialCrossbar& xbar,
                                    int64_t logical_col,
                                    const int64_t* levels, int64_t max_level,
                                    const WriteVerifyConfig& wv,
                                    nn::Rng& rng) {
  FaultReport report;
  report.residual_faults = program_physical_column(
      xbar, xbar.physical_column(logical_col), levels, max_level, wv, rng,
      report);
  xbar.sync_panel_column(logical_col);
  report.spare_cols_left = xbar.spare_cols_left();
  return report;
}

FaultReport program_verified(DifferentialCrossbar& xbar,
                             const std::vector<int64_t>& levels,
                             int64_t max_level, const WriteVerifyConfig& wv,
                             nn::Rng& rng) {
  const int64_t rows = xbar.rows();
  const int64_t cols = xbar.cols();
  if (static_cast<int64_t>(levels.size()) != rows * cols) {
    throw std::invalid_argument("program_verified: bad level matrix size");
  }
  FaultReport report;
  std::vector<int64_t> col_residual(static_cast<size_t>(cols), 0);
  for (int64_t c = 0; c < cols; ++c) {
    col_residual[static_cast<size_t>(c)] = program_physical_column(
        xbar, xbar.physical_column(c), levels.data() + c * rows, max_level,
        wv, rng, report);
    xbar.sync_panel_column(c);
  }

  // Remap pass: worst columns claim spares first (stable sort keeps the
  // tie-break on column index deterministic). A trial-programmed spare is
  // only bound when it is strictly cleaner than the home column.
  if (wv.remap_fault_threshold > 0 && xbar.spare_cols() > 0) {
    std::vector<int64_t> order;
    for (int64_t c = 0; c < cols; ++c) {
      if (col_residual[static_cast<size_t>(c)] >=
          wv.remap_fault_threshold) {
        order.push_back(c);
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](int64_t a, int64_t b) {
                       return col_residual[static_cast<size_t>(a)] >
                              col_residual[static_cast<size_t>(b)];
                     });
    for (const int64_t c : order) {
      const int64_t spare = xbar.claim_spare();
      if (spare < 0) break;
      const int64_t spare_residual = program_physical_column(
          xbar, spare, levels.data() + c * rows, max_level, wv, rng, report);
      if (spare_residual < col_residual[static_cast<size_t>(c)]) {
        xbar.bind_column(c, spare);
        col_residual[static_cast<size_t>(c)] = spare_residual;
        ++report.remapped_cols;
      }
    }
  }

  report.residual_faults = std::accumulate(col_residual.begin(),
                                           col_residual.end(), int64_t{0});
  report.spare_cols_left = xbar.spare_cols_left();
  return report;
}

double worst_level_error(const DifferentialCrossbar& xbar,
                         const std::vector<int64_t>& levels,
                         int64_t max_level) {
  const int64_t rows = xbar.rows();
  const int64_t cols = xbar.cols();
  if (static_cast<int64_t>(levels.size()) != rows * cols) {
    throw std::invalid_argument("worst_level_error: bad level matrix size");
  }
  double worst = 0.0;
  for (int64_t c = 0; c < cols; ++c) {
    const int64_t pc = xbar.physical_column(c);
    for (int64_t r = 0; r < rows; ++r) {
      const double err =
          achieved_level(xbar, r, pc, max_level) -
          static_cast<double>(levels[static_cast<size_t>(c * rows + r)]);
      worst = std::max(worst, std::fabs(err));
    }
  }
  return worst;
}

}  // namespace qsnc::snc
