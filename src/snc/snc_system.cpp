#include "snc/snc_system.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "nn/igemm.h"
#include "nn/im2col.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dense.h"
#include "nn/layers/flatten.h"
#include "nn/layers/pool.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/relu.h"
#include "nn/layers/residual.h"
#include "util/thread_pool.h"

namespace qsnc::snc {

struct SncSystem::Stage {
  enum class Kind {
    kConv,
    kDense,
    kMaxPool,
    kAvgPool,
    kGlobalAvgPool,
  };
  Kind kind = Kind::kConv;

  // Geometry (all stages).
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t out_c = 0, out_h = 0, out_w = 0;
  int64_t kernel = 0, stride = 0, pad = 0;

  // Crossbar-backed stages.
  std::unique_ptr<DifferentialCrossbar> xbar;  // [rows x cols] logical
  std::vector<float> bias;                     // per output column
  float step = 0.0f;     // weight units per grid level (scale / 2^N)
  bool rectify = false;  // followed by ReLU: clamp + M-bit counter ceiling

  // Fault-recovery state (only populated when recovery is enabled): the
  // programming pass counters and the signed level matrix
  // (levels[col * rows + r]) kept so drift refresh can reprogram.
  FaultReport fault;
  std::vector<int64_t> levels;

  // Integer row drives (SncConfig::integer_row_drives on an ideal device):
  // the signed level matrix transposed to the packed-panel orientation
  // (ilevels[r * cols + c]) so nn::iaccumulate_rows can replace the analog
  // conductance read. Empty when the stage runs the analog path.
  util::aligned_vector<int16_t> ilevels;

  // Event-engine im2col tap table (conv stages): taps[pos * rows + r] is
  // the flat input index of receptive-field tap r at output position pos,
  // or -1 where the tap falls in the zero padding. Precomputed once at
  // construction so the gather is a table walk with no bounds arithmetic.
  std::vector<int32_t> taps;

  // Residual plumbing (pad-identity shortcuts). A save_skip stage latches
  // its *input* signal into the skip register before executing; an
  // add_skip stage adds the (subsampled, zero-channel-padded) register to
  // its raw counter outputs and then rectifies.
  bool save_skip = false;
  bool add_skip = false;
  int64_t skip_in_c = 0;    // channels of the latched signal
  int64_t skip_stride = 1;  // spatial subsample factor of the shortcut

  // Output layer: read with an analog winner-take-all instead of an M-bit
  // counter, so sub-spike logit differences survive.
  bool final_readout = false;
};

int64_t SncStats::input_events() const {
  int64_t total = 0;
  for (const SncStageStats& s : stage) total += s.input_events;
  return total;
}

int64_t SncStats::dense_row_drives() const {
  int64_t total = 0;
  for (const SncStageStats& s : stage) total += s.dense_row_drives();
  return total;
}

double SncStats::input_sparsity() const {
  const int64_t dense = dense_row_drives();
  return dense > 0 ? 1.0 - static_cast<double>(input_events()) /
                               static_cast<double>(dense)
                   : 0.0;
}

SncSystem::~SncSystem() = default;

SncSystem::SncSystem(nn::Network& net, const nn::Shape& input_chw,
                     const SncConfig& config)
    : config_(config), input_chw_(input_chw), rng_(config.seed) {
  if (input_chw.size() != 3) {
    throw std::invalid_argument("SncSystem: input shape must be [C,H,W]");
  }
  const int64_t kmax = int64_t{1} << (config.weight_bits - 1);
  if (config.weight_scales.empty()) {
    throw std::invalid_argument("SncSystem: weight_scales must not be empty");
  }

  int64_t c = input_chw[0], h = input_chw[1], w = input_chw[2];
  bool flattened = false;
  size_t xbar_index = 0;

  // Integer row drives are only exact on an ideal device with no retention
  // drift (see SncConfig::integer_row_drives); levels must also fit int16.
  const bool integer_drives =
      config.integer_row_drives && config.device.variation_sigma == 0.0 &&
      config.device.stuck_off_rate == 0.0 &&
      config.device.stuck_on_rate == 0.0 &&
      config.device.wire_resistance_ohm == 0.0 &&
      config.recovery.drift_rate_per_window == 0.0 && kmax <= 32767;

  auto scale_for_stage = [&](size_t idx) {
    if (config_.weight_scales.size() == 1) return config_.weight_scales[0];
    if (idx >= config_.weight_scales.size()) {
      throw std::invalid_argument(
          "SncSystem: fewer weight_scales than crossbar layers");
    }
    return config_.weight_scales[idx];
  };

  auto program_matrix = [&](const nn::Tensor& weights, int64_t rows,
                            int64_t cols, Stage& stage) {
    const float step =
        scale_for_stage(xbar_index++) /
        static_cast<float>(int64_t{1} << config_.weight_bits);
    stage.step = step;
    const FaultRecoveryConfig& rec = config_.recovery;
    stage.xbar = std::make_unique<DifferentialCrossbar>(
        rows, cols, config_.device, rec.enabled() ? rec.spare_cols : 0);
    const bool nonideal = config_.device.variation_sigma > 0.0 ||
                          config_.device.stuck_off_rate > 0.0 ||
                          config_.device.stuck_on_rate > 0.0;
    std::vector<int64_t> levels(static_cast<size_t>(rows * cols));
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t col = 0; col < cols; ++col) {
        // Weight layout: conv OIHW / dense [out, in] both expose
        // weight(col-th output, r-th input tap) at flat index col*rows + r.
        const float wv = weights[col * rows + r];
        const double level = wv / step;
        const int64_t k = std::llround(level);
        if (std::fabs(level - static_cast<double>(k)) > 1e-3 ||
            std::llabs(k) > kmax) {
          throw std::invalid_argument(
              "SncSystem: weight off the cluster grid; run "
              "apply_weight_clustering first");
        }
        levels[static_cast<size_t>(col * rows + r)] = k;
      }
    }
    // Bake the int16 level panel for integer row drives, unless the
    // worst-case column sum (every row firing T spikes at the extreme
    // level) could overflow the int32 accumulator.
    if (integer_drives &&
        (int64_t{1} << config_.signal_bits) * kmax * rows <
            std::numeric_limits<int32_t>::max()) {
      stage.ilevels.resize(static_cast<size_t>(rows * cols));
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t col = 0; col < cols; ++col) {
          stage.ilevels[static_cast<size_t>(r * cols + col)] =
              static_cast<int16_t>(
                  levels[static_cast<size_t>(col * rows + r)]);
        }
      }
    }
    if (!rec.enabled()) {
      // Legacy passive-injection path: per-write defect draws from the
      // shared rng stream, byte-identical to the pre-recovery simulator.
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t col = 0; col < cols; ++col) {
          stage.xbar->program_cell(r, col,
                                   levels[static_cast<size_t>(col * rows + r)],
                                   kmax, nonideal ? &rng_ : nullptr);
        }
      }
      return;
    }
    // Recovery mode: faults become a static per-cell property first, then
    // programming runs against the persistent map.
    stage.xbar->draw_defect_maps(rng_);
    if (rec.write_verify) {
      WriteVerifyConfig wv;
      wv.tolerance_levels = rec.tolerance_levels;
      wv.max_retries = rec.max_write_retries;
      wv.remap_fault_threshold = rec.remap_fault_threshold;
      stage.fault = program_verified(*stage.xbar, levels, kmax, wv, rng_);
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t col = 0; col < cols; ++col) {
          stage.xbar->program_cell(r, col,
                                   levels[static_cast<size_t>(col * rows + r)],
                                   kmax, nonideal ? &rng_ : nullptr);
        }
      }
      stage.fault.cells = rows * cols;
      stage.fault.spare_cols_left = stage.xbar->spare_cols_left();
    }
    stage.levels = std::move(levels);
  };

  // Bakes the im2col tap index table for a conv stage's current geometry.
  auto build_tap_table = [](Stage& stage) {
    const int64_t rows = stage.in_c * stage.kernel * stage.kernel;
    const int64_t positions = stage.out_h * stage.out_w;
    stage.taps.assign(static_cast<size_t>(positions * rows), -1);
    for (int64_t pos = 0; pos < positions; ++pos) {
      const int64_t oy = pos / stage.out_w;
      const int64_t ox = pos % stage.out_w;
      int32_t* row = stage.taps.data() + pos * rows;
      int64_t r = 0;
      for (int64_t ic = 0; ic < stage.in_c; ++ic) {
        for (int64_t ky = 0; ky < stage.kernel; ++ky) {
          for (int64_t kx = 0; kx < stage.kernel; ++kx, ++r) {
            const int64_t iy = oy * stage.stride - stage.pad + ky;
            const int64_t ix = ox * stage.stride - stage.pad + kx;
            if (iy >= 0 && iy < stage.in_h && ix >= 0 && ix < stage.in_w) {
              row[r] = static_cast<int32_t>((ic * stage.in_h + iy) *
                                                stage.in_w +
                                            ix);
            }
          }
        }
      }
    }
  };

  // Emits a crossbar stage for one convolution given the running geometry.
  auto make_conv_stage = [&](nn::Conv2d& conv) {
    auto stage = std::make_unique<Stage>();
    stage->kind = Stage::Kind::kConv;
    stage->in_c = c;
    stage->in_h = h;
    stage->in_w = w;
    stage->out_c = conv.out_channels();
    stage->kernel = conv.kernel();
    stage->stride = conv.stride();
    stage->pad = conv.pad();
    stage->out_h =
        nn::conv_out_extent(h, conv.kernel(), conv.stride(), conv.pad());
    stage->out_w =
        nn::conv_out_extent(w, conv.kernel(), conv.stride(), conv.pad());
    const int64_t rows = conv.in_channels() * conv.kernel() * conv.kernel();
    program_matrix(conv.weight().value, rows, conv.out_channels(), *stage);
    build_tap_table(*stage);
    stage->bias.assign(static_cast<size_t>(conv.out_channels()), 0.0f);
    if (conv.uses_bias()) {
      for (int64_t j = 0; j < conv.out_channels(); ++j) {
        stage->bias[static_cast<size_t>(j)] = conv.bias().value[j];
      }
    }
    c = stage->out_c;
    h = stage->out_h;
    w = stage->out_w;
    return stage;
  };

  for (size_t i = 0; i < net.size(); ++i) {
    nn::Layer* layer = &net.layer(i);
    if (auto* block = dynamic_cast<nn::ResidualBlock*>(layer)) {
      // Pad-identity basic block, batch-norm already folded:
      //   y = clamp(conv2(relu_q(conv1(x))) + pad_subsample(x)).
      if (block->has_projection()) {
        throw std::invalid_argument(
            "SncSystem: projection shortcuts unsupported; build the model "
            "with ShortcutKind::kPadIdentity");
      }
      if (!core::is_identity_batchnorm(block->bn1()) ||
          !core::is_identity_batchnorm(block->bn2())) {
        throw std::invalid_argument(
            "SncSystem: residual block has unfolded batch norm; run "
            "core::fold_batchnorm(net) before deployment");
      }
      const int64_t skip_in_c = c;
      auto stage1 = make_conv_stage(block->conv1());
      stage1->rectify = true;  // relu1: mid-block IFC + counter
      stage1->save_skip = true;
      stages_.push_back(std::move(stage1));

      auto stage2 = make_conv_stage(block->conv2());
      stage2->rectify = false;  // raw counts; rectify after the skip add
      stage2->add_skip = true;
      stage2->skip_in_c = skip_in_c;
      stage2->skip_stride = block->stride();
      stages_.push_back(std::move(stage2));
      continue;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(layer)) {
      if (!core::is_identity_batchnorm(*bn)) {
        throw std::invalid_argument(
            "SncSystem: unfolded BatchNorm2d; run core::fold_batchnorm(net) "
            "before deployment");
      }
      continue;  // exact identity: nothing to execute
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(layer)) {
      stages_.push_back(make_conv_stage(*conv));
    } else if (auto* fc = dynamic_cast<nn::Dense*>(layer)) {
      auto stage = std::make_unique<Stage>();
      stage->kind = Stage::Kind::kDense;
      stage->in_c = flattened ? c * h * w : c;
      if (!flattened && (h != 1 || w != 1)) {
        throw std::invalid_argument("SncSystem: Dense before Flatten");
      }
      if (stage->in_c != fc->in_features()) {
        throw std::invalid_argument("SncSystem: Dense fan-in mismatch");
      }
      stage->out_c = fc->out_features();
      stage->out_h = stage->out_w = stage->in_h = stage->in_w = 1;
      program_matrix(fc->weight().value, fc->in_features(), fc->out_features(),
                     *stage);
      stage->bias.assign(static_cast<size_t>(fc->out_features()), 0.0f);
      for (int64_t j = 0; j < fc->out_features(); ++j) {
        stage->bias[static_cast<size_t>(j)] = fc->bias().value[j];
      }
      c = stage->out_c;
      h = w = 1;
      flattened = true;
      stages_.push_back(std::move(stage));
    } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(layer)) {
      auto stage = std::make_unique<Stage>();
      stage->kind = Stage::Kind::kMaxPool;
      stage->in_c = stage->out_c = c;
      stage->in_h = h;
      stage->in_w = w;
      stage->kernel = mp->kernel();
      stage->stride = mp->stride();
      stage->out_h = nn::conv_out_extent(h, mp->kernel(), mp->stride(), 0);
      stage->out_w = nn::conv_out_extent(w, mp->kernel(), mp->stride(), 0);
      h = stage->out_h;
      w = stage->out_w;
      stages_.push_back(std::move(stage));
    } else if (auto* ap = dynamic_cast<nn::AvgPool2d*>(layer)) {
      auto stage = std::make_unique<Stage>();
      stage->kind = Stage::Kind::kAvgPool;
      stage->in_c = stage->out_c = c;
      stage->in_h = h;
      stage->in_w = w;
      stage->kernel = ap->kernel();
      stage->stride = ap->stride();
      stage->out_h = nn::conv_out_extent(h, ap->kernel(), ap->stride(), 0);
      stage->out_w = nn::conv_out_extent(w, ap->kernel(), ap->stride(), 0);
      h = stage->out_h;
      w = stage->out_w;
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<nn::GlobalAvgPool*>(layer) != nullptr) {
      auto stage = std::make_unique<Stage>();
      stage->kind = Stage::Kind::kGlobalAvgPool;
      stage->in_c = stage->out_c = c;
      stage->in_h = h;
      stage->in_w = w;
      stage->out_h = stage->out_w = 1;
      h = w = 1;
      flattened = true;
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<nn::ReLU*>(layer) != nullptr) {
      if (stages_.empty() || (stages_.back()->kind != Stage::Kind::kConv &&
                              stages_.back()->kind != Stage::Kind::kDense)) {
        throw std::invalid_argument("SncSystem: ReLU without crossbar stage");
      }
      stages_.back()->rectify = true;
    } else if (dynamic_cast<nn::Flatten*>(layer) != nullptr) {
      // CHW-major integer buffers make flatten the identity.
      flattened = true;
    } else {
      throw std::invalid_argument("SncSystem: unsupported layer '" +
                                  layer->name() +
                                  "' (sequential conv/pool/fc nets only)");
    }
  }

  for (const auto& stage : stages_) {
    if (stage->kind == Stage::Kind::kConv ||
        stage->kind == Stage::Kind::kDense) {
      ++crossbar_stage_count_;
    }
  }

  // The network's last crossbar stage carries the classification logits:
  // if it is unrectified (no trailing ReLU), read it out analog.
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    Stage& s = **it;
    if (s.kind == Stage::Kind::kConv || s.kind == Stage::Kind::kDense) {
      if (&s == stages_.back().get() && !s.rectify && !s.add_skip) {
        s.final_readout = true;
      }
      break;
    }
  }
}

namespace {
// Fills the engine-independent dispatcher stats: geometry plus the
// programming-time fault counters (programming happened once, before any
// engine ran), identically for the single-image and batched paths.
void fill_stage_header(const FaultReport& fault, int64_t rows, int64_t cols,
                       int64_t positions, SncStageStats* stats) {
  if (stats == nullptr) return;
  stats->rows = rows;
  stats->cols = cols;
  stats->positions = positions;
  stats->write_retries = fault.write_retries;
  stats->faults_detected = fault.faults_detected;
  stats->faults_compensated = fault.faults_compensated;
  stats->residual_faults = fault.residual_faults;
  stats->remapped_cols = fault.remapped_cols;
  stats->refreshes = fault.refreshes;
}
}  // namespace

nn::Rng SncSystem::next_coding_rng() {
  return nn::Rng(
      nn::Rng::stream_seed(config_.seed,
                           kCodingStreamBase + coding_streams_issued_++));
}

std::vector<int64_t> SncSystem::run_crossbar_stage(
    const Stage& stage, const std::vector<int64_t>& input,
    SncStageStats* stats, nn::Rng& coding_rng) {
  const bool is_conv = stage.kind == Stage::Kind::kConv;
  fill_stage_header(stage.fault, stage.xbar->rows(), stage.xbar->cols(),
                    is_conv ? stage.out_h * stage.out_w : 1, stats);
  return config_.engine == SncEngine::kDenseReference
             ? run_crossbar_stage_dense(stage, input, stats, coding_rng)
             : run_crossbar_stage_event(stage, input, stats, coding_rng);
}

// The pre-event-engine simulator, preserved verbatim as the bit-identical
// reference: every row of every crossbar is driven at every position
// through the allocating vector read APIs. Activity statistics are
// counted the same way as in the event engine (they describe the signals,
// not the execution strategy).
std::vector<int64_t> SncSystem::run_crossbar_stage_dense(
    const Stage& stage, const std::vector<int64_t>& input,
    SncStageStats* stats, nn::Rng& coding_rng) {
  const int64_t T = window_slots(config_.signal_bits);
  const int64_t kmax = int64_t{1} << (config_.weight_bits - 1);
  const float step = stage.step;
  // Differential conductance of one grid level: converts column currents
  // (per unit read voltage) back to level units.
  const double dg = (g_max(config_.device) - g_min(config_.device)) /
                    static_cast<double>(kmax);

  const int64_t rows = stage.xbar->rows();
  const int64_t cols = stage.xbar->cols();
  const bool is_conv = stage.kind == Stage::Kind::kConv;
  const int64_t positions = is_conv ? stage.out_h * stage.out_w : 1;
  if (stage.final_readout) {
    analog_readout_.assign(static_cast<size_t>(cols), 0.0);
  }

  std::vector<int64_t> output(
      static_cast<size_t>(stage.out_c * positions), 0);
  std::atomic<int64_t> event_count{0};
  std::atomic<int64_t> occupied_count{0};
  const int64_t width_bytes_analog =
      2 * cols * static_cast<int64_t>(sizeof(double));

  // Each position is one independent crossbar evaluation of the Eq-1
  // mapped layer: crossbar state is read-only during inference and every
  // position writes its own output stride, so positions fan out across
  // the thread pool. Two cases must stay serial: stochastic coding (draws
  // from the shared rng_ stream in position order) and the final analog
  // readout (positions overwrite the shared readout register).
  auto run_positions = [&](int64_t p0, int64_t p1) {
    std::vector<double> volts(static_cast<size_t>(rows));
    std::vector<int64_t> field(static_cast<size_t>(rows));
    int64_t chunk_events = 0;
    int64_t chunk_occupied = 0;
    int64_t chunk_panel = 0;
    const int64_t row_bytes =
        width_bytes_analog;  // dense reference never runs integer drives
    for (int64_t pos = p0; pos < p1; ++pos) {
    // Gather the integer receptive field (im2col order: c, ky, kx).
    if (is_conv) {
      const int64_t oy = pos / stage.out_w;
      const int64_t ox = pos % stage.out_w;
      int64_t r = 0;
      for (int64_t ic = 0; ic < stage.in_c; ++ic) {
        for (int64_t ky = 0; ky < stage.kernel; ++ky) {
          for (int64_t kx = 0; kx < stage.kernel; ++kx, ++r) {
            const int64_t iy = oy * stage.stride - stage.pad + ky;
            const int64_t ix = ox * stage.stride - stage.pad + kx;
            field[static_cast<size_t>(r)] =
                (iy >= 0 && iy < stage.in_h && ix >= 0 && ix < stage.in_w)
                    ? input[static_cast<size_t>(
                          (ic * stage.in_h + iy) * stage.in_w + ix)]
                    : 0;
          }
        }
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        field[static_cast<size_t>(r)] = input[static_cast<size_t>(r)];
      }
    }
    int64_t pos_nnz = 0;
    for (int64_t r = 0; r < rows; ++r) {
      if (field[static_cast<size_t>(r)] != 0) ++pos_nnz;
    }
    chunk_events += pos_nnz;

    if (config_.mode == IntegrationMode::kIdealIntegration &&
        !config_.stochastic_coding) {
      // Linear synapses let the whole window collapse into one read with
      // value-weighted word-line drive (mathematically identical to the
      // slot-by-slot sum of deterministic trains).
      for (int64_t r = 0; r < rows; ++r) {
        volts[static_cast<size_t>(r)] =
            static_cast<double>(field[static_cast<size_t>(r)]);
      }
      std::vector<double> plus;
      std::vector<double> minus;
      stage.xbar->read_logical_columns(volts, plus, minus);
      chunk_panel += pos_nnz * row_bytes;
      for (int64_t col = 0; col < cols; ++col) {
        const double level_sum =
            (plus[static_cast<size_t>(col)] - minus[static_cast<size_t>(col)]) /
            dg;
        const double y = static_cast<double>(step) * level_sum +
                         static_cast<double>(stage.bias[static_cast<size_t>(col)]);
        int64_t count = core::round_half_up(y);
        if (stage.rectify) count = std::clamp<int64_t>(count, 0, T);
        output[static_cast<size_t>(col * positions + pos)] = count;
        if (stage.final_readout) {
          analog_readout_[static_cast<size_t>(col)] = y;
        }
      }
    } else {
      // Slot-by-slot spiking execution with physical IFC semantics.
      std::vector<std::vector<uint8_t>> trains(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        trains[static_cast<size_t>(r)] =
            config_.stochastic_coding
                ? rate_encode_stochastic(field[static_cast<size_t>(r)],
                                         config_.signal_bits, coding_rng)
                : rate_encode(field[static_cast<size_t>(r)],
                              config_.signal_bits);
      }
      // IFCs work in output-level units (threshold = charge of one output
      // level); the bias plus the 0.5 rounding offset preloads each
      // membrane. Spikes fired by the preload itself count toward the
      // window total.
      std::vector<IntegrateFire> units;
      std::vector<SpikeCounter> counters;
      units.reserve(static_cast<size_t>(cols));
      counters.reserve(static_cast<size_t>(cols));
      for (int64_t col = 0; col < cols; ++col) {
        IntegrateFire u(1.0);
        counters.emplace_back(config_.signal_bits);
        const int64_t preload_fires = u.integrate(
            static_cast<double>(stage.bias[static_cast<size_t>(col)]) + 0.5);
        counters.back().count(preload_fires);
        units.push_back(u);
      }
      std::vector<uint8_t> slot_spikes(static_cast<size_t>(rows));
      for (int64_t t = 0; t < T; ++t) {
        bool any_spike = false;
        int64_t slot_fired = 0;
        for (int64_t r = 0; r < rows; ++r) {
          slot_spikes[static_cast<size_t>(r)] =
              trains[static_cast<size_t>(r)][static_cast<size_t>(t)];
          if (slot_spikes[static_cast<size_t>(r)] != 0) {
            any_spike = true;
            ++slot_fired;
          }
        }
        if (any_spike) ++chunk_occupied;
        chunk_panel += slot_fired * row_bytes;
        std::vector<double> plus;
        std::vector<double> minus;
        stage.xbar->read_logical_columns_spiking(slot_spikes, 1.0, plus,
                                                 minus);
        for (int64_t col = 0; col < cols; ++col) {
          const double level_sum = (plus[static_cast<size_t>(col)] -
                                    minus[static_cast<size_t>(col)]) /
                                   dg;
          const int64_t fired = units[static_cast<size_t>(col)].integrate(
              static_cast<double>(step) * level_sum);
          counters[static_cast<size_t>(col)].count(fired);
        }
      }
      for (int64_t col = 0; col < cols; ++col) {
        int64_t count = counters[static_cast<size_t>(col)].value();
        // The initial bias preload may already cross threshold; fires from
        // integrate() at preload time were not counted, so re-derive: the
        // counter has everything integrate() returned during the window.
        if (!stage.rectify) {
          // Final readout uses a wide digital counter: reconstruct the raw
          // (possibly negative / above-T) sum from the ideal path instead.
          for (int64_t r = 0; r < rows; ++r) {
            volts[static_cast<size_t>(r)] =
                static_cast<double>(field[static_cast<size_t>(r)]);
          }
          std::vector<double> p2;
          std::vector<double> m2;
          stage.xbar->read_logical_columns(volts, p2, m2);
          const double y =
              static_cast<double>(step) *
                  ((p2[static_cast<size_t>(col)] -
                    m2[static_cast<size_t>(col)]) /
                   dg) +
              static_cast<double>(stage.bias[static_cast<size_t>(col)]);
          count = core::round_half_up(y);
          if (stage.final_readout) {
            analog_readout_[static_cast<size_t>(col)] = y;
          }
        }
        output[static_cast<size_t>(col * positions + pos)] = count;
      }
      if (!stage.rectify) chunk_panel += pos_nnz * row_bytes;
    }
    }
    event_count.fetch_add(chunk_events, std::memory_order_relaxed);
    occupied_count.fetch_add(chunk_occupied, std::memory_order_relaxed);
    panel_bytes_.fetch_add(chunk_panel, std::memory_order_relaxed);
  };
  if (!config_.stochastic_coding && !stage.final_readout) {
    util::parallel_for(0, positions, 0, run_positions);
  } else {
    run_positions(0, positions);
  }

  if (stats != nullptr) {
    stats->input_events = event_count.load(std::memory_order_relaxed);
    stats->occupied_slots = occupied_count.load(std::memory_order_relaxed);
    // add_skip stages report spikes after the digital skip add (see
    // infer); raw pre-add counts are not what crosses the boundary.
    if (!stage.add_skip) {
      for (int64_t v : output) stats->spikes += std::max<int64_t>(v, 0);
    }
  }
  return output;
}

// The event-driven engine. Per position it gathers the receptive field as
// a sparse (row, value) event list through the precomputed tap table,
// folds the events into interleaved plus/minus column sums straight out
// of the crossbar's packed effective-conductance panel, and — in slot
// modes — encodes spike trains only for the rows that can fire. Work is
// O(nnz x cols) per read instead of O(rows x cols), and the loop performs
// no allocations (scratch lives per parallel chunk). Every accumulation
// order matches the dense reference, so results are bit-identical.
std::vector<int64_t> SncSystem::run_crossbar_stage_event(
    const Stage& stage, const std::vector<int64_t>& input,
    SncStageStats* stats, nn::Rng& coding_rng) {
  const int64_t T = window_slots(config_.signal_bits);
  const int64_t kmax = int64_t{1} << (config_.weight_bits - 1);
  const float step = stage.step;
  const double dg = (g_max(config_.device) - g_min(config_.device)) /
                    static_cast<double>(kmax);

  const int64_t rows = stage.xbar->rows();
  const int64_t cols = stage.xbar->cols();
  const bool is_conv = stage.kind == Stage::Kind::kConv;
  const int64_t positions = is_conv ? stage.out_h * stage.out_w : 1;
  const bool slot_mode = config_.mode != IntegrationMode::kIdealIntegration ||
                         config_.stochastic_coding;
  if (stage.final_readout) {
    analog_readout_.assign(static_cast<size_t>(cols), 0.0);
  }

  std::vector<int64_t> output(
      static_cast<size_t>(stage.out_c * positions), 0);
  std::atomic<int64_t> event_count{0};
  std::atomic<int64_t> occupied_count{0};
  const double* panel = stage.xbar->packed_panel();
  const int64_t width = 2 * cols;

  // Same fan-out contract as the dense reference: positions parallelize
  // on deterministic non-readout stages; chunk boundaries are shape-only.
  // Integer row drives: exact spike-count x level accumulation in int32
  // via the packed int16 level panel (see SncConfig::integer_row_drives).
  const bool integer_drives = !stage.ilevels.empty();
  const int64_t row_bytes =
      integer_drives ? cols * static_cast<int64_t>(sizeof(int16_t))
                     : width * static_cast<int64_t>(sizeof(double));
  const int64_t slot_row_bytes = width * static_cast<int64_t>(sizeof(double));

  auto run_positions = [&](int64_t p0, int64_t p1) {
    // Per-chunk scratch: the position/slot loops below never allocate.
    std::vector<int32_t> event_rows(static_cast<size_t>(rows));
    std::vector<double> event_vals(static_cast<size_t>(rows));
    std::vector<int32_t> event_ivals(
        integer_drives ? static_cast<size_t>(rows) : 0);
    std::vector<int32_t> iacc(integer_drives ? static_cast<size_t>(cols) : 0);
    std::vector<double> acc(static_cast<size_t>(width));
    std::vector<uint8_t> trains;     // event-major [nnz x T], slot modes
    std::vector<IntegrateFire> units;
    std::vector<SpikeCounter> counters;
    if (slot_mode) {
      trains.resize(static_cast<size_t>(rows * T));
      units.assign(static_cast<size_t>(cols), IntegrateFire(1.0));
      counters.assign(static_cast<size_t>(cols),
                      SpikeCounter(config_.signal_bits));
    }
    int64_t chunk_events = 0;
    int64_t chunk_occupied = 0;
    int64_t chunk_panel = 0;

    for (int64_t pos = p0; pos < p1; ++pos) {
      // Gather nonzero receptive-field taps as (row, value) events. In
      // slot modes the spike train of each event row is encoded in the
      // same pass; stochastic coding still consumes a full window of
      // draws for zero rows so the shared RNG stream stays aligned with
      // the dense reference (which encodes every row).
      const int32_t* taps =
          is_conv ? stage.taps.data() + pos * rows : nullptr;
      int64_t nnz = 0;
      for (int64_t r = 0; r < rows; ++r) {
        int64_t v;
        if (is_conv) {
          const int32_t tap = taps[r];
          v = tap >= 0 ? input[static_cast<size_t>(tap)] : 0;
        } else {
          v = input[static_cast<size_t>(r)];
        }
        if (slot_mode && config_.stochastic_coding) {
          rate_encode_stochastic_into(v, config_.signal_bits, coding_rng,
                                      trains.data() + nnz * T);
        } else if (slot_mode && v != 0) {
          rate_encode_into(v, config_.signal_bits, trains.data() + nnz * T);
        }
        if (v != 0) {
          event_rows[static_cast<size_t>(nnz)] = static_cast<int32_t>(r);
          event_vals[static_cast<size_t>(nnz)] = static_cast<double>(v);
          if (integer_drives) {
            event_ivals[static_cast<size_t>(nnz)] = static_cast<int32_t>(v);
          }
          ++nnz;
        }
      }
      chunk_events += nnz;

      if (!slot_mode) {
        // Collapsed ideal read: one value-weighted accumulate over the
        // event rows (ascending), interleaved plus/minus. With integer
        // drives the spike-count x level sum is computed exactly in int32
        // instead of reconstructing it from conductances.
        if (integer_drives) {
          std::fill(iacc.begin(), iacc.end(), 0);
          nn::iaccumulate_rows(event_rows.data(), event_ivals.data(), nnz,
                               stage.ilevels.data(), cols, iacc.data());
        } else {
          std::fill(acc.begin(), acc.end(), 0.0);
          stage.xbar->accumulate_rows(event_rows.data(), event_vals.data(),
                                      nnz, acc.data());
        }
        chunk_panel += nnz * row_bytes;
        for (int64_t col = 0; col < cols; ++col) {
          const double level_sum =
              integer_drives
                  ? static_cast<double>(iacc[static_cast<size_t>(col)])
                  : (acc[static_cast<size_t>(2 * col)] -
                     acc[static_cast<size_t>(2 * col + 1)]) /
                        dg;
          const double y =
              static_cast<double>(step) * level_sum +
              static_cast<double>(stage.bias[static_cast<size_t>(col)]);
          int64_t count = core::round_half_up(y);
          if (stage.rectify) count = std::clamp<int64_t>(count, 0, T);
          output[static_cast<size_t>(col * positions + pos)] = count;
          if (stage.final_readout) {
            analog_readout_[static_cast<size_t>(col)] = y;
          }
        }
        continue;
      }

      // Slot-by-slot spiking execution. Membrane preload as in the dense
      // reference; each slot reduces to the event rows whose train fires
      // in that slot. A slot in which no event fires deposits exactly
      // zero charge in every IFC, so it is skipped outright.
      for (int64_t col = 0; col < cols; ++col) {
        units[static_cast<size_t>(col)].reset();
        counters[static_cast<size_t>(col)].reset();
        const int64_t preload_fires =
            units[static_cast<size_t>(col)].integrate(
                static_cast<double>(stage.bias[static_cast<size_t>(col)]) +
                0.5);
        counters[static_cast<size_t>(col)].count(preload_fires);
      }
      for (int64_t t = 0; t < T; ++t) {
        std::fill(acc.begin(), acc.end(), 0.0);
        bool any_spike = false;
        for (int64_t e = 0; e < nnz; ++e) {
          if (trains[static_cast<size_t>(e * T + t)] == 0) continue;
          any_spike = true;
          chunk_panel += slot_row_bytes;
          const double* row =
              panel + static_cast<int64_t>(
                          event_rows[static_cast<size_t>(e)]) *
                          width;
          for (int64_t k = 0; k < width; ++k) {
            acc[static_cast<size_t>(k)] += row[k];
          }
        }
        if (!any_spike) continue;
        ++chunk_occupied;
        for (int64_t col = 0; col < cols; ++col) {
          const double level_sum =
              (acc[static_cast<size_t>(2 * col)] -
               acc[static_cast<size_t>(2 * col + 1)]) /
              dg;
          const int64_t fired = units[static_cast<size_t>(col)].integrate(
              static_cast<double>(step) * level_sum);
          counters[static_cast<size_t>(col)].count(fired);
        }
      }
      if (!stage.rectify) {
        // Non-rectified stages (final readout / pre-skip-add raw counts)
        // re-derive the wide digital count from the collapsed ideal read,
        // exactly like the dense reference — but with one event
        // accumulate for all columns instead of a dense read per column.
        if (integer_drives) {
          std::fill(iacc.begin(), iacc.end(), 0);
          nn::iaccumulate_rows(event_rows.data(), event_ivals.data(), nnz,
                               stage.ilevels.data(), cols, iacc.data());
        } else {
          std::fill(acc.begin(), acc.end(), 0.0);
          stage.xbar->accumulate_rows(event_rows.data(), event_vals.data(),
                                      nnz, acc.data());
        }
        chunk_panel += nnz * row_bytes;
        for (int64_t col = 0; col < cols; ++col) {
          const double level_sum =
              integer_drives
                  ? static_cast<double>(iacc[static_cast<size_t>(col)])
                  : (acc[static_cast<size_t>(2 * col)] -
                     acc[static_cast<size_t>(2 * col + 1)]) /
                        dg;
          const double y =
              static_cast<double>(step) * level_sum +
              static_cast<double>(stage.bias[static_cast<size_t>(col)]);
          output[static_cast<size_t>(col * positions + pos)] =
              core::round_half_up(y);
          if (stage.final_readout) {
            analog_readout_[static_cast<size_t>(col)] = y;
          }
        }
      } else {
        for (int64_t col = 0; col < cols; ++col) {
          output[static_cast<size_t>(col * positions + pos)] =
              counters[static_cast<size_t>(col)].value();
        }
      }
    }
    event_count.fetch_add(chunk_events, std::memory_order_relaxed);
    occupied_count.fetch_add(chunk_occupied, std::memory_order_relaxed);
    panel_bytes_.fetch_add(chunk_panel, std::memory_order_relaxed);
  };
  if (!config_.stochastic_coding && !stage.final_readout) {
    util::parallel_for(0, positions, 0, run_positions);
  } else {
    run_positions(0, positions);
  }

  if (stats != nullptr) {
    stats->input_events = event_count.load(std::memory_order_relaxed);
    stats->occupied_slots = occupied_count.load(std::memory_order_relaxed);
    if (!stage.add_skip) {
      for (int64_t v : output) stats->spikes += std::max<int64_t>(v, 0);
    }
  }
  return output;
}

std::vector<int64_t> SncSystem::run_pool_stage(
    const Stage& stage, const std::vector<int64_t>& signal) const {
  switch (stage.kind) {
    case Stage::Kind::kMaxPool: {
      std::vector<int64_t> out(
          static_cast<size_t>(stage.out_c * stage.out_h * stage.out_w));
      for (int64_t ch = 0; ch < stage.in_c; ++ch) {
        for (int64_t oy = 0; oy < stage.out_h; ++oy) {
          for (int64_t ox = 0; ox < stage.out_w; ++ox) {
            int64_t best = 0;
            for (int64_t ky = 0; ky < stage.kernel; ++ky) {
              for (int64_t kx = 0; kx < stage.kernel; ++kx) {
                const int64_t iy = oy * stage.stride + ky;
                const int64_t ix = ox * stage.stride + kx;
                if (iy >= stage.in_h || ix >= stage.in_w) continue;
                best = std::max(
                    best, signal[static_cast<size_t>(
                              (ch * stage.in_h + iy) * stage.in_w + ix)]);
              }
            }
            out[static_cast<size_t>(
                (ch * stage.out_h + oy) * stage.out_w + ox)] = best;
          }
        }
      }
      return out;
    }
    case Stage::Kind::kAvgPool: {
      std::vector<int64_t> out(
          static_cast<size_t>(stage.out_c * stage.out_h * stage.out_w));
      const int64_t window = stage.kernel * stage.kernel;
      for (int64_t ch = 0; ch < stage.in_c; ++ch) {
        for (int64_t oy = 0; oy < stage.out_h; ++oy) {
          for (int64_t ox = 0; ox < stage.out_w; ++ox) {
            int64_t acc = 0;
            for (int64_t ky = 0; ky < stage.kernel; ++ky) {
              for (int64_t kx = 0; kx < stage.kernel; ++kx) {
                const int64_t iy = oy * stage.stride + ky;
                const int64_t ix = ox * stage.stride + kx;
                if (iy >= stage.in_h || ix >= stage.in_w) continue;
                acc += signal[static_cast<size_t>(
                    (ch * stage.in_h + iy) * stage.in_w + ix)];
              }
            }
            out[static_cast<size_t>(
                (ch * stage.out_h + oy) * stage.out_w + ox)] =
                (acc + window / 2) / window;  // digital rounded divide
          }
        }
      }
      return out;
    }
    case Stage::Kind::kGlobalAvgPool: {
      std::vector<int64_t> out(static_cast<size_t>(stage.in_c));
      const int64_t hw = stage.in_h * stage.in_w;
      for (int64_t ch = 0; ch < stage.in_c; ++ch) {
        int64_t acc = 0;
        for (int64_t i = 0; i < hw; ++i) {
          acc += signal[static_cast<size_t>(ch * hw + i)];
        }
        out[static_cast<size_t>(ch)] = (acc + hw / 2) / hw;
      }
      return out;
    }
    default:
      throw std::logic_error("SncSystem::run_pool_stage: not a pool stage");
  }
}

// Digital skip add (pad-identity shortcut): subsample spatially, zero-pad
// new channels, then rectify to the counter ceiling.
int64_t SncSystem::apply_skip_add(const Stage& stage,
                                  std::vector<int64_t>& signal,
                                  const std::vector<int64_t>& skip) const {
  const int64_t T = window_slots(config_.signal_bits);
  const int64_t in_h = stage.out_h * stage.skip_stride;
  const int64_t in_w = stage.out_w * stage.skip_stride;
  int64_t post_add_spikes = 0;
  for (int64_t oc = 0; oc < stage.out_c; ++oc) {
    for (int64_t y = 0; y < stage.out_h; ++y) {
      for (int64_t x = 0; x < stage.out_w; ++x) {
        int64_t v = signal[static_cast<size_t>(
            (oc * stage.out_h + y) * stage.out_w + x)];
        if (oc < stage.skip_in_c) {
          v += skip[static_cast<size_t>(
              (oc * in_h + y * stage.skip_stride) * in_w +
              x * stage.skip_stride)];
        }
        v = std::clamp<int64_t>(v, 0, T);
        signal[static_cast<size_t>(
            (oc * stage.out_h + y) * stage.out_w + x)] = v;
        post_add_spikes += v;
      }
    }
  }
  return post_add_spikes;
}

// Input encoder: pixel -> signal units -> M-bit spike count.
std::vector<int64_t> SncSystem::encode_image(const float* pixels, int64_t n,
                                             int64_t* total_spikes) const {
  const int64_t T = window_slots(config_.signal_bits);
  std::vector<int64_t> signal(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float scaled = pixels[i] * config_.input_scale;
    signal[static_cast<size_t>(i)] = std::clamp<int64_t>(
        static_cast<int64_t>(std::llround(scaled)), 0, T);
    if (total_spikes != nullptr) {
      *total_spikes += signal[static_cast<size_t>(i)];
    }
  }
  return signal;
}

int64_t SncSystem::infer(const nn::Tensor& image, SncStats* stats) {
  if (image.rank() != 3 || image.dim(0) != input_chw_[0] ||
      image.dim(1) != input_chw_[1] || image.dim(2) != input_chw_[2]) {
    throw std::invalid_argument("SncSystem::infer: image shape mismatch");
  }
  const int64_t T = window_slots(config_.signal_bits);
  analog_readout_.clear();
  if (stats != nullptr) {
    *stats = SncStats{};
    stats->window_slots = T;
    stats->stage.assign(crossbar_stage_count_, SncStageStats{});
  }
  nn::Rng coding_rng = next_coding_rng();

  std::vector<int64_t> signal =
      encode_image(image.data(), image.numel(),
                   stats != nullptr ? &stats->total_spikes : nullptr);

  std::vector<int64_t> skip;  // residual shortcut register
  size_t xbar_idx = 0;
  for (const auto& stage : stages_) {
    if (stage->kind == Stage::Kind::kConv ||
        stage->kind == Stage::Kind::kDense) {
      SncStageStats* st = stats != nullptr ? &stats->stage[xbar_idx] : nullptr;
      ++xbar_idx;
      if (stage->save_skip) skip = signal;
      signal = run_crossbar_stage(*stage, signal, st, coding_rng);
      if (stats != nullptr) {
        ++stats->layers;
        if (!stage->add_skip) stats->total_spikes += st->spikes;
      }
      if (stage->add_skip) {
        const int64_t post_add_spikes = apply_skip_add(*stage, signal, skip);
        if (stats != nullptr) {
          st->spikes = post_add_spikes;
          stats->total_spikes += post_add_spikes;
        }
      }
    } else {
      signal = run_pool_stage(*stage, signal);
    }
  }

  if (!analog_readout_.empty()) {
    last_logits_ = analog_readout_;
  } else {
    last_logits_.assign(signal.begin(), signal.end());
  }
  int64_t best = 0;
  for (size_t j = 1; j < last_logits_.size(); ++j) {
    if (last_logits_[j] > last_logits_[static_cast<size_t>(best)]) {
      best = static_cast<int64_t>(j);
    }
  }
  return best;
}

// The batch-native runner: one union event gather and one panel pass per
// active row serve every image in the batch (a B-wide rank-1 update per
// event row). Per-image accumulators, spike trains, IFC state, and
// counters evolve exactly as in the single-image runners — each image's
// per-column arithmetic is the identical sequence of identical operations
// (zero drives are skipped per image; conductances are non-negative, so
// skipping a zero contribution is bit-exact) — which makes logits,
// predictions, and per-image stats bit-identical at every batch size.
void SncSystem::run_crossbar_stage_batch(
    const Stage& stage, const std::vector<std::vector<int64_t>>& inputs,
    std::vector<std::vector<int64_t>>& outputs,
    const std::vector<SncStageStats*>& stats,
    std::vector<nn::Rng>& coding_rngs) {
  const int64_t B = static_cast<int64_t>(inputs.size());
  const int64_t T = window_slots(config_.signal_bits);
  const int64_t kmax = int64_t{1} << (config_.weight_bits - 1);
  const float step = stage.step;
  const double dg = (g_max(config_.device) - g_min(config_.device)) /
                    static_cast<double>(kmax);

  const int64_t rows = stage.xbar->rows();
  const int64_t cols = stage.xbar->cols();
  const bool is_conv = stage.kind == Stage::Kind::kConv;
  const int64_t positions = is_conv ? stage.out_h * stage.out_w : 1;
  const bool slot_mode = config_.mode != IntegrationMode::kIdealIntegration ||
                         config_.stochastic_coding;
  // The dense reference drives every row at every position, the event
  // engine only the union of nonzero rows; zero drives contribute nothing
  // per image either way, so both reduce to the single-image sequences.
  const bool dense_drive = config_.engine == SncEngine::kDenseReference;
  // Integer drives are an event-engine path: the dense reference always
  // reads the analog panel, so its batched form must as well.
  const bool integer_drives = !stage.ilevels.empty() && !dense_drive;
  const int64_t width = 2 * cols;
  const double* panel = stage.xbar->packed_panel();
  const int64_t row_bytes =
      integer_drives ? cols * static_cast<int64_t>(sizeof(int16_t))
                     : width * static_cast<int64_t>(sizeof(double));
  const int64_t slot_row_bytes =
      width * static_cast<int64_t>(sizeof(double));

  for (int64_t b = 0; b < B; ++b) {
    fill_stage_header(stage.fault, rows, cols, positions, stats[b]);
    outputs[static_cast<size_t>(b)].assign(
        static_cast<size_t>(stage.out_c * positions), 0);
  }
  if (stage.final_readout) {
    batch_readout_.assign(static_cast<size_t>(B),
                          std::vector<double>(static_cast<size_t>(cols), 0.0));
  }

  std::vector<std::atomic<int64_t>> event_count(static_cast<size_t>(B));
  std::vector<std::atomic<int64_t>> occupied_count(static_cast<size_t>(B));
  for (int64_t b = 0; b < B; ++b) {
    event_count[static_cast<size_t>(b)].store(0, std::memory_order_relaxed);
    occupied_count[static_cast<size_t>(b)].store(0, std::memory_order_relaxed);
  }

  auto run_positions = [&](int64_t p0, int64_t p1) {
    // Per-chunk scratch sized once for the whole batch; the position and
    // slot loops below never allocate.
    std::vector<int32_t> event_rows(static_cast<size_t>(rows));
    std::vector<double> event_vals(static_cast<size_t>(rows * B));
    std::vector<int32_t> event_ivals(
        integer_drives ? static_cast<size_t>(rows * B) : 0);
    std::vector<int64_t> vrow(static_cast<size_t>(B));
    std::vector<int32_t> iacc(integer_drives ? static_cast<size_t>(B * cols)
                                             : 0);
    std::vector<double> acc(static_cast<size_t>(B * width));
    std::vector<uint8_t> trains;  // event-major [(u * B + b) x T]
    std::vector<uint8_t> drain;   // discarded zero-row stochastic trains
    std::vector<IntegrateFire> units;     // [b * cols + col]
    std::vector<SpikeCounter> counters;   // [b * cols + col]
    std::vector<uint8_t> img_any;
    if (slot_mode) {
      trains.resize(static_cast<size_t>(rows * B * T));
      drain.resize(static_cast<size_t>(T));
      units.assign(static_cast<size_t>(B * cols), IntegrateFire(1.0));
      counters.assign(static_cast<size_t>(B * cols),
                      SpikeCounter(config_.signal_bits));
      img_any.resize(static_cast<size_t>(B));
    }
    std::vector<int64_t> chunk_events(static_cast<size_t>(B), 0);
    std::vector<int64_t> chunk_occupied(static_cast<size_t>(B), 0);
    int64_t chunk_panel = 0;

    for (int64_t pos = p0; pos < p1; ++pos) {
      // Union gather: the tap table is walked once per row for the whole
      // batch. Stochastic coding consumes a full window of draws from
      // every image's stream for every row (zero or not, driven or not),
      // exactly like the single-image engines, so stream-per-image
      // alignment holds regardless of batch composition.
      const int32_t* taps =
          is_conv ? stage.taps.data() + pos * rows : nullptr;
      int64_t nu = 0;      // union rows driven this position
      int64_t active = 0;  // union rows with at least one nonzero drive
      for (int64_t r = 0; r < rows; ++r) {
        const int32_t tap = is_conv ? taps[r] : static_cast<int32_t>(r);
        bool any = false;
        for (int64_t b = 0; b < B; ++b) {
          const int64_t v =
              tap >= 0 ? inputs[static_cast<size_t>(b)]
                               [static_cast<size_t>(tap)]
                       : 0;
          vrow[static_cast<size_t>(b)] = v;
          if (v != 0) {
            any = true;
            ++chunk_events[static_cast<size_t>(b)];
          }
        }
        const bool drive = dense_drive || any;
        if (any) ++active;
        if (drive) {
          event_rows[static_cast<size_t>(nu)] = static_cast<int32_t>(r);
          double* dv = event_vals.data() + nu * B;
          for (int64_t b = 0; b < B; ++b) {
            dv[b] = static_cast<double>(vrow[static_cast<size_t>(b)]);
          }
          if (integer_drives) {
            int32_t* iv = event_ivals.data() + nu * B;
            for (int64_t b = 0; b < B; ++b) {
              iv[b] = static_cast<int32_t>(vrow[static_cast<size_t>(b)]);
            }
          }
        }
        if (slot_mode) {
          uint8_t* tr = drive ? trains.data() + nu * B * T : nullptr;
          for (int64_t b = 0; b < B; ++b) {
            if (config_.stochastic_coding) {
              rate_encode_stochastic_into(
                  vrow[static_cast<size_t>(b)], config_.signal_bits,
                  coding_rngs[static_cast<size_t>(b)],
                  drive ? tr + b * T : drain.data());
            } else if (drive) {
              rate_encode_into(vrow[static_cast<size_t>(b)],
                               config_.signal_bits, tr + b * T);
            }
          }
        }
        if (drive) ++nu;
      }

      if (!slot_mode) {
        // Collapsed ideal read: one B-wide value-weighted accumulate over
        // the union rows (ascending), each panel row streamed once.
        if (integer_drives) {
          std::fill(iacc.begin(), iacc.end(), 0);
          nn::iaccumulate_rows_batch(event_rows.data(), event_ivals.data(),
                                     nu, B, stage.ilevels.data(), cols,
                                     iacc.data());
        } else {
          std::fill(acc.begin(), acc.end(), 0.0);
          stage.xbar->accumulate_rows_batch(event_rows.data(),
                                            event_vals.data(), nu, B,
                                            acc.data());
        }
        chunk_panel += active * row_bytes;
        for (int64_t b = 0; b < B; ++b) {
          const double* a = acc.data() + b * width;
          const int32_t* ia =
              integer_drives ? iacc.data() + b * cols : nullptr;
          for (int64_t col = 0; col < cols; ++col) {
            const double level_sum =
                integer_drives ? static_cast<double>(ia[col])
                               : (a[2 * col] - a[2 * col + 1]) / dg;
            const double y =
                static_cast<double>(step) * level_sum +
                static_cast<double>(stage.bias[static_cast<size_t>(col)]);
            int64_t count = core::round_half_up(y);
            if (stage.rectify) count = std::clamp<int64_t>(count, 0, T);
            outputs[static_cast<size_t>(b)]
                   [static_cast<size_t>(col * positions + pos)] = count;
            if (stage.final_readout) {
              batch_readout_[static_cast<size_t>(b)]
                            [static_cast<size_t>(col)] = y;
            }
          }
        }
        continue;
      }

      // Slot-by-slot spiking execution: per-image IFC banks, shared panel
      // passes. A union row firing in slot t is streamed once and folded
      // into every image whose train fires; an image with no firing event
      // in a slot deposits zero charge and is skipped, exactly like the
      // single-image engines.
      for (int64_t b = 0; b < B; ++b) {
        for (int64_t col = 0; col < cols; ++col) {
          IntegrateFire& u = units[static_cast<size_t>(b * cols + col)];
          SpikeCounter& cnt = counters[static_cast<size_t>(b * cols + col)];
          u.reset();
          cnt.reset();
          const int64_t preload_fires = u.integrate(
              static_cast<double>(stage.bias[static_cast<size_t>(col)]) +
              0.5);
          cnt.count(preload_fires);
        }
      }
      for (int64_t t = 0; t < T; ++t) {
        std::fill(acc.begin(), acc.end(), 0.0);
        std::fill(img_any.begin(), img_any.end(), uint8_t{0});
        bool any_spike = false;
        for (int64_t e = 0; e < nu; ++e) {
          const uint8_t* tr = trains.data() + e * B * T;
          const double* row = nullptr;
          for (int64_t b = 0; b < B; ++b) {
            if (tr[b * T + t] == 0) continue;
            if (row == nullptr) {
              row = panel +
                    static_cast<int64_t>(
                        event_rows[static_cast<size_t>(e)]) *
                        width;
              chunk_panel += slot_row_bytes;
              any_spike = true;
            }
            img_any[static_cast<size_t>(b)] = 1;
            double* a = acc.data() + b * width;
            for (int64_t k = 0; k < width; ++k) {
              a[k] += row[k];
            }
          }
        }
        if (!any_spike) continue;
        for (int64_t b = 0; b < B; ++b) {
          if (img_any[static_cast<size_t>(b)] == 0) continue;
          ++chunk_occupied[static_cast<size_t>(b)];
          const double* a = acc.data() + b * width;
          for (int64_t col = 0; col < cols; ++col) {
            const double level_sum = (a[2 * col] - a[2 * col + 1]) / dg;
            const int64_t fired =
                units[static_cast<size_t>(b * cols + col)].integrate(
                    static_cast<double>(step) * level_sum);
            counters[static_cast<size_t>(b * cols + col)].count(fired);
          }
        }
      }
      if (!stage.rectify) {
        // Re-derive the wide digital count from the collapsed ideal read,
        // B-wide like the ideal path above.
        if (integer_drives) {
          std::fill(iacc.begin(), iacc.end(), 0);
          nn::iaccumulate_rows_batch(event_rows.data(), event_ivals.data(),
                                     nu, B, stage.ilevels.data(), cols,
                                     iacc.data());
        } else {
          std::fill(acc.begin(), acc.end(), 0.0);
          stage.xbar->accumulate_rows_batch(event_rows.data(),
                                            event_vals.data(), nu, B,
                                            acc.data());
        }
        chunk_panel += active * row_bytes;
        for (int64_t b = 0; b < B; ++b) {
          const double* a = acc.data() + b * width;
          const int32_t* ia =
              integer_drives ? iacc.data() + b * cols : nullptr;
          for (int64_t col = 0; col < cols; ++col) {
            const double level_sum =
                integer_drives ? static_cast<double>(ia[col])
                               : (a[2 * col] - a[2 * col + 1]) / dg;
            const double y =
                static_cast<double>(step) * level_sum +
                static_cast<double>(stage.bias[static_cast<size_t>(col)]);
            outputs[static_cast<size_t>(b)]
                   [static_cast<size_t>(col * positions + pos)] =
                core::round_half_up(y);
            if (stage.final_readout) {
              batch_readout_[static_cast<size_t>(b)]
                            [static_cast<size_t>(col)] = y;
            }
          }
        }
      } else {
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t col = 0; col < cols; ++col) {
            outputs[static_cast<size_t>(b)]
                   [static_cast<size_t>(col * positions + pos)] =
                counters[static_cast<size_t>(b * cols + col)].value();
          }
        }
      }
    }
    for (int64_t b = 0; b < B; ++b) {
      event_count[static_cast<size_t>(b)].fetch_add(
          chunk_events[static_cast<size_t>(b)], std::memory_order_relaxed);
      occupied_count[static_cast<size_t>(b)].fetch_add(
          chunk_occupied[static_cast<size_t>(b)], std::memory_order_relaxed);
    }
    panel_bytes_.fetch_add(chunk_panel, std::memory_order_relaxed);
  };
  // Same fan-out contract as the single-image runners: positions
  // parallelize on deterministic non-readout stages, chunk boundaries are
  // shape-only, so the parallel schedule never affects results.
  if (!config_.stochastic_coding && !stage.final_readout) {
    util::parallel_for(0, positions, 0, run_positions);
  } else {
    run_positions(0, positions);
  }

  for (int64_t b = 0; b < B; ++b) {
    SncStageStats* st = stats[static_cast<size_t>(b)];
    if (st == nullptr) continue;
    st->input_events =
        event_count[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    st->occupied_slots = occupied_count[static_cast<size_t>(b)].load(
        std::memory_order_relaxed);
    if (!stage.add_skip) {
      for (int64_t v : outputs[static_cast<size_t>(b)]) {
        st->spikes += std::max<int64_t>(v, 0);
      }
    }
  }
}

std::vector<int64_t> SncSystem::infer_batch(const nn::Tensor& batch,
                                            std::vector<SncStats>* stats) {
  if (batch.rank() != 4 || batch.dim(1) != input_chw_[0] ||
      batch.dim(2) != input_chw_[1] || batch.dim(3) != input_chw_[2]) {
    throw std::invalid_argument(
        "SncSystem::infer_batch: batch shape must be [B, C, H, W]");
  }
  const int64_t B = batch.dim(0);
  const int64_t T = window_slots(config_.signal_bits);
  last_batch_logits_.assign(static_cast<size_t>(B), {});
  batch_readout_.clear();
  if (stats != nullptr) {
    stats->assign(static_cast<size_t>(B), SncStats{});
    for (SncStats& s : *stats) {
      s.window_slots = T;
      s.stage.assign(crossbar_stage_count_, SncStageStats{});
    }
  }
  std::vector<int64_t> preds;
  if (B == 0) return preds;

  // One coding stream per image, issued in image order — exactly the
  // streams B consecutive infer() calls would draw.
  std::vector<nn::Rng> coding_rngs;
  coding_rngs.reserve(static_cast<size_t>(B));
  for (int64_t b = 0; b < B; ++b) coding_rngs.push_back(next_coding_rng());

  const int64_t chw = input_chw_[0] * input_chw_[1] * input_chw_[2];
  std::vector<std::vector<int64_t>> signals(static_cast<size_t>(B));
  for (int64_t b = 0; b < B; ++b) {
    signals[static_cast<size_t>(b)] = encode_image(
        batch.data() + b * chw, chw,
        stats != nullptr ? &(*stats)[static_cast<size_t>(b)].total_spikes
                         : nullptr);
  }

  std::vector<std::vector<int64_t>> skips(static_cast<size_t>(B));
  size_t xbar_idx = 0;
  for (const auto& stage : stages_) {
    if (stage->kind == Stage::Kind::kConv ||
        stage->kind == Stage::Kind::kDense) {
      std::vector<SncStageStats*> st(static_cast<size_t>(B), nullptr);
      if (stats != nullptr) {
        for (int64_t b = 0; b < B; ++b) {
          st[static_cast<size_t>(b)] =
              &(*stats)[static_cast<size_t>(b)].stage[xbar_idx];
        }
      }
      ++xbar_idx;
      if (stage->save_skip) skips = signals;
      std::vector<std::vector<int64_t>> outs(static_cast<size_t>(B));
      run_crossbar_stage_batch(*stage, signals, outs, st, coding_rngs);
      signals = std::move(outs);
      for (int64_t b = 0; b < B && stats != nullptr; ++b) {
        SncStats& s = (*stats)[static_cast<size_t>(b)];
        ++s.layers;
        if (!stage->add_skip) {
          s.total_spikes += st[static_cast<size_t>(b)]->spikes;
        }
      }
      if (stage->add_skip) {
        for (int64_t b = 0; b < B; ++b) {
          const int64_t post_add_spikes =
              apply_skip_add(*stage, signals[static_cast<size_t>(b)],
                             skips[static_cast<size_t>(b)]);
          if (stats != nullptr) {
            st[static_cast<size_t>(b)]->spikes = post_add_spikes;
            (*stats)[static_cast<size_t>(b)].total_spikes += post_add_spikes;
          }
        }
      }
    } else {
      for (int64_t b = 0; b < B; ++b) {
        signals[static_cast<size_t>(b)] =
            run_pool_stage(*stage, signals[static_cast<size_t>(b)]);
      }
    }
  }

  preds.assign(static_cast<size_t>(B), 0);
  for (int64_t b = 0; b < B; ++b) {
    std::vector<double>& logits = last_batch_logits_[static_cast<size_t>(b)];
    if (!batch_readout_.empty()) {
      logits = std::move(batch_readout_[static_cast<size_t>(b)]);
    } else {
      logits.assign(signals[static_cast<size_t>(b)].begin(),
                    signals[static_cast<size_t>(b)].end());
    }
    int64_t best = 0;
    for (size_t j = 1; j < logits.size(); ++j) {
      if (logits[j] > logits[static_cast<size_t>(best)]) {
        best = static_cast<int64_t>(j);
      }
    }
    preds[static_cast<size_t>(b)] = best;
  }
  // Mirror what B sequential infer() calls leave behind for last_logits().
  last_logits_ = last_batch_logits_.back();
  batch_readout_.clear();
  return preds;
}

float SncSystem::read_back_weight(size_t layer, int64_t row,
                                  int64_t col) const {
  size_t idx = 0;
  for (const auto& stage : stages_) {
    if (stage->kind != Stage::Kind::kConv &&
        stage->kind != Stage::Kind::kDense) {
      continue;
    }
    if (idx == layer) {
      const int64_t kmax = int64_t{1} << (config_.weight_bits - 1);
      return static_cast<float>(stage->xbar->read_level(row, col, kmax)) *
             stage->step;
    }
    ++idx;
  }
  throw std::out_of_range("SncSystem::read_back_weight: no such layer");
}

size_t SncSystem::integer_drive_stage_count() const {
  size_t count = 0;
  for (const auto& stage : stages_) {
    if (!stage->ilevels.empty()) ++count;
  }
  return count;
}

FaultReport SncSystem::fault_report() const {
  FaultReport total;
  for (const auto& stage : stages_) {
    if (stage->xbar) total.add(stage->fault);
  }
  return total;
}

void SncSystem::advance_time(double windows) {
  if (windows <= 0.0) return;
  const FaultRecoveryConfig& rec = config_.recovery;
  elapsed_windows_ += windows;
  if (rec.drift_rate_per_window <= 0.0) return;
  size_t xbar_index = 0;
  for (auto& stage : stages_) {
    if (!stage->xbar) continue;
    // Per-stage drift stream: re-derivable from the config seed so the
    // same cells always carry the same decay rates.
    stage->xbar->apply_drift(
        windows, rec.drift_rate_per_window, rec.drift_sigma,
        nn::Rng::stream_seed(config_.seed,
                             0xD21F7000u + static_cast<uint64_t>(xbar_index)));
    ++xbar_index;
  }
  windows_since_refresh_ += windows;
  if (rec.refresh_interval_windows > 0.0 &&
      windows_since_refresh_ >= rec.refresh_interval_windows) {
    refresh();
    windows_since_refresh_ = 0.0;
  }
}

int64_t SncSystem::refresh() {
  const FaultRecoveryConfig& rec = config_.recovery;
  const int64_t kmax = int64_t{1} << (config_.weight_bits - 1);
  const bool nonideal = config_.device.variation_sigma > 0.0 ||
                        config_.device.stuck_off_rate > 0.0 ||
                        config_.device.stuck_on_rate > 0.0;
  WriteVerifyConfig wv;
  wv.tolerance_levels = rec.tolerance_levels;
  wv.max_retries = rec.max_write_retries;
  wv.remap_fault_threshold = rec.remap_fault_threshold;
  int64_t refreshed = 0;
  for (auto& stage : stages_) {
    if (!stage->xbar || stage->levels.empty()) continue;
    if (worst_level_error(*stage->xbar, stage->levels, kmax) <=
        rec.refresh_tolerance_levels) {
      continue;
    }
    ++refreshed;
    ++stage->fault.refreshes;
    const int64_t rows = stage->xbar->rows();
    const int64_t cols = stage->xbar->cols();
    if (rec.write_verify) {
      // Reprogram through the existing remap table (column granularity so
      // already-assigned spares keep their bindings).
      int64_t residual = 0;
      for (int64_t c = 0; c < cols; ++c) {
        const FaultReport pass = program_column_verified(
            *stage->xbar, c, stage->levels.data() + c * rows, kmax, wv,
            rng_);
        stage->fault.cells += pass.cells;
        stage->fault.write_retries += pass.write_retries;
        stage->fault.faults_detected += pass.faults_detected;
        stage->fault.faults_compensated += pass.faults_compensated;
        residual += pass.residual_faults;
      }
      stage->fault.residual_faults = residual;
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          stage->xbar->program_cell(
              r, c, stage->levels[static_cast<size_t>(c * rows + r)], kmax,
              nonideal ? &rng_ : nullptr);
        }
      }
    }
  }
  return refreshed;
}

}  // namespace qsnc::snc
