// Memristor crossbar array: the analog vector-matrix multiply primitive.
//
// A crossbar of R rows x C columns computes, in one read cycle, the column
// currents  I_c = sum_r V_r * G[r][c]  for the word-line voltages V_r. A
// *signed* weight matrix uses two physical arrays (positive and negative
// cells); the differential column current is what the IFC integrates.
//
// Read-side performance model: inference never re-evaluates the wire
// model. Every program_cell() bakes the cell's *effective* conductance
// (IR-drop applied once) into a packed row-major panel, and the `_into`
// read APIs accumulate straight out of that panel into caller-owned
// buffers — no allocation, no per-access conductance math. The
// vector-returning reads remain as thin wrappers for tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "snc/memristor.h"

namespace qsnc::snc {

/// One physical conductance array.
class Crossbar {
 public:
  Crossbar(int64_t rows, int64_t cols, const MemristorConfig& config);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Programs the cell at (r, c) to the given magnitude level of an N-bit
  /// grid. Pass `rng` to draw programming variation per the device config.
  void program_cell(int64_t r, int64_t c, int64_t level, int64_t max_level,
                    nn::Rng* rng = nullptr);

  double conductance(int64_t r, int64_t c) const;

  /// Conductance as seen through the wire-resistance model (equals
  /// conductance() when the config has ideal wires).
  double effective_conductance(int64_t r, int64_t c) const;

  /// Packed row-major [rows x cols] panel of effective conductances,
  /// baked at program time. With ideal wires this aliases the raw
  /// conductance array (no extra memory).
  const double* effective_panel() const {
    return geff_.empty() ? g_.data() : geff_.data();
  }

  /// Column currents accumulated into `currents` (size cols(), caller
  /// allocated; overwritten). Rows with zero voltage draw no current and
  /// are skipped, in ascending row order — the accumulation order every
  /// other read path reproduces.
  void read_columns_into(const double* volts, double* currents) const;

  /// Spiking-read variant: rows with spike[r] != 0 are driven at `v_read`,
  /// the rest are grounded.
  void read_columns_spiking_into(const uint8_t* spikes, double v_read,
                                 double* currents) const;

  /// Column currents (amps) for word-line voltages `volts` (size rows()).
  /// Allocating wrapper over read_columns_into.
  std::vector<double> read_columns(const std::vector<double>& volts) const;

  /// Column currents when word lines carry binary spikes at `v_read`:
  /// allocating wrapper over read_columns_spiking_into.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

 private:
  int64_t index(int64_t r, int64_t c) const { return r * cols_ + c; }
  void bake_effective(int64_t r, int64_t c);

  int64_t rows_;
  int64_t cols_;
  MemristorConfig config_;
  std::vector<double> g_;     // row-major conductances
  std::vector<double> geff_;  // wire-model panel; empty when wires ideal
};

/// A differential pair of crossbars realizing a signed weight block.
/// Weight levels k in [-max_level, +max_level]: positive k programs the
/// plus array, negative k the minus array; the other cell stays at level 0
/// (g_min leakage), and the differential current cancels the common leak.
class DifferentialCrossbar {
 public:
  DifferentialCrossbar(int64_t rows, int64_t cols,
                       const MemristorConfig& config);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  void program_cell(int64_t r, int64_t c, int64_t signed_level,
                    int64_t max_level, nn::Rng* rng = nullptr);

  /// Packed interleaved effective-conductance panel [rows x 2*cols]: the
  /// plus cell of logical column c at 2c, the minus cell at 2c+1. One
  /// cache-friendly row pass feeds both accumulators while preserving the
  /// per-array accumulation order (plus and minus sums each see rows in
  /// ascending order, exactly like separate reads of plus()/minus()).
  const double* packed_panel() const { return panel_.data(); }

  /// Accumulates `n` row drives (strictly ascending row indices, voltage
  /// per row) into `acc`, an interleaved buffer of 2*cols() entries
  /// (plus current at 2c, minus at 2c+1). `acc` is NOT zeroed here, so
  /// callers can fold multiple event lists into one read. Allocation-free:
  /// this is the event-driven inference engine's only crossbar access.
  void accumulate_rows(const int32_t* rows, const double* drives, int64_t n,
                       double* acc) const;

  /// Differential column currents I_plus - I_minus for binary spikes.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

  /// Signed level read back from the pair (ideal devices round-trip
  /// exactly; with variation this is the nearest level).
  int64_t read_level(int64_t r, int64_t c, int64_t max_level) const;

  const Crossbar& plus() const { return plus_; }
  const Crossbar& minus() const { return minus_; }

 private:
  int64_t rows_;
  int64_t cols_;
  MemristorConfig config_;
  Crossbar plus_;
  Crossbar minus_;
  std::vector<double> panel_;  // interleaved plus/minus effective panel
};

}  // namespace qsnc::snc
