// Memristor crossbar array: the analog vector-matrix multiply primitive.
//
// A crossbar of R rows x C columns computes, in one read cycle, the column
// currents  I_c = sum_r V_r * G[r][c]  for the word-line voltages V_r. A
// *signed* weight matrix uses two physical arrays (positive and negative
// cells); the differential column current is what the IFC integrates.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "snc/memristor.h"

namespace qsnc::snc {

/// One physical conductance array.
class Crossbar {
 public:
  Crossbar(int64_t rows, int64_t cols, const MemristorConfig& config);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Programs the cell at (r, c) to the given magnitude level of an N-bit
  /// grid. Pass `rng` to draw programming variation per the device config.
  void program_cell(int64_t r, int64_t c, int64_t level, int64_t max_level,
                    nn::Rng* rng = nullptr);

  double conductance(int64_t r, int64_t c) const;

  /// Conductance as seen through the wire-resistance model (equals
  /// conductance() when the config has ideal wires).
  double effective_conductance(int64_t r, int64_t c) const;

  /// Column currents (amps) for word-line voltages `volts` (size rows()).
  std::vector<double> read_columns(const std::vector<double>& volts) const;

  /// Column currents when word lines carry binary spikes at `v_read`:
  /// rows with spike[r] != 0 are driven, the rest are grounded.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

 private:
  int64_t index(int64_t r, int64_t c) const { return r * cols_ + c; }

  int64_t rows_;
  int64_t cols_;
  MemristorConfig config_;
  std::vector<double> g_;  // row-major conductances
};

/// A differential pair of crossbars realizing a signed weight block.
/// Weight levels k in [-max_level, +max_level]: positive k programs the
/// plus array, negative k the minus array; the other cell stays at level 0
/// (g_min leakage), and the differential current cancels the common leak.
class DifferentialCrossbar {
 public:
  DifferentialCrossbar(int64_t rows, int64_t cols,
                       const MemristorConfig& config);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  void program_cell(int64_t r, int64_t c, int64_t signed_level,
                    int64_t max_level, nn::Rng* rng = nullptr);

  /// Differential column currents I_plus - I_minus for binary spikes.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

  /// Signed level read back from the pair (ideal devices round-trip
  /// exactly; with variation this is the nearest level).
  int64_t read_level(int64_t r, int64_t c, int64_t max_level) const;

  const Crossbar& plus() const { return plus_; }
  const Crossbar& minus() const { return minus_; }

 private:
  int64_t rows_;
  int64_t cols_;
  MemristorConfig config_;
  Crossbar plus_;
  Crossbar minus_;
};

}  // namespace qsnc::snc
