// Memristor crossbar array: the analog vector-matrix multiply primitive.
//
// A crossbar of R rows x C columns computes, in one read cycle, the column
// currents  I_c = sum_r V_r * G[r][c]  for the word-line voltages V_r. A
// *signed* weight matrix uses two physical arrays (positive and negative
// cells); the differential column current is what the IFC integrates.
//
// Read-side performance model: inference never re-evaluates the wire
// model. Every program_cell() bakes the cell's *effective* conductance
// (IR-drop applied once) into a packed row-major panel, and the `_into`
// read APIs accumulate straight out of that panel into caller-owned
// buffers — no allocation, no per-access conductance math. The
// vector-returning reads remain as thin wrappers for tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/rng.h"
#include "snc/memristor.h"

namespace qsnc::snc {

/// Static per-cell fabrication state. kStuckOff cells read g_min and
/// kStuckOn cells read g_max no matter what is programmed.
enum class DefectKind : uint8_t { kNone = 0, kStuckOff = 1, kStuckOn = 2 };

/// One physical conductance array.
class Crossbar {
 public:
  Crossbar(int64_t rows, int64_t cols, const MemristorConfig& config);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  const MemristorConfig& device() const { return config_; }

  /// Programs the cell at (r, c) to the given magnitude level of an N-bit
  /// grid. Pass `rng` to draw programming variation per the device config.
  ///
  /// Defect semantics: without a defect map (legacy passive-injection
  /// mode), stuck-cell outcomes are drawn per call from `rng` at the
  /// config rates. Once draw_defect_map()/set_defect() has installed a
  /// static map, stuck cells are pinned by the map, no defect draws are
  /// made, and retries against the same cell see the same fault — the
  /// property closed-loop write-verify depends on.
  void program_cell(int64_t r, int64_t c, int64_t level, int64_t max_level,
                    nn::Rng* rng = nullptr);

  /// Draws the static defect map from the config rates, one bernoulli pair
  /// per cell in row-major order (deterministic given the rng state), and
  /// pins already-stuck cells to their defect conductance.
  void draw_defect_map(nn::Rng& rng);

  /// Test/faultsim hook: forces one cell's defect (installs an all-kNone
  /// map first when absent).
  void set_defect(int64_t r, int64_t c, DefectKind kind);

  DefectKind defect(int64_t r, int64_t c) const;
  bool has_defect_map() const { return !defects_.empty(); }
  int64_t defect_count() const;

  /// Retention drift: every non-stuck cell decays toward g_min over `dt`
  /// inference windows with a per-cell lognormal rate
  /// lambda_i = rate * exp(sigma * z_i), where z_i is re-derived from
  /// nn::Rng::stream(seed, i) — repeated calls with the same seed drift
  /// the same cells at the same rates (determinism across refresh cycles).
  void apply_drift(double dt, double rate, double sigma, uint64_t seed);

  double conductance(int64_t r, int64_t c) const;

  /// Conductance as seen through the wire-resistance model (equals
  /// conductance() when the config has ideal wires).
  double effective_conductance(int64_t r, int64_t c) const;

  /// Packed row-major [rows x cols] panel of effective conductances,
  /// baked at program time. With ideal wires this aliases the raw
  /// conductance array (no extra memory).
  const double* effective_panel() const {
    return geff_.empty() ? g_.data() : geff_.data();
  }

  /// Column currents accumulated into `currents` (size cols(), caller
  /// allocated; overwritten). Rows with zero voltage draw no current and
  /// are skipped, in ascending row order — the accumulation order every
  /// other read path reproduces.
  void read_columns_into(const double* volts, double* currents) const;

  /// Spiking-read variant: rows with spike[r] != 0 are driven at `v_read`,
  /// the rest are grounded.
  void read_columns_spiking_into(const uint8_t* spikes, double v_read,
                                 double* currents) const;

  /// Column currents (amps) for word-line voltages `volts` (size rows()).
  /// Allocating wrapper over read_columns_into.
  std::vector<double> read_columns(const std::vector<double>& volts) const;

  /// Column currents when word lines carry binary spikes at `v_read`:
  /// allocating wrapper over read_columns_spiking_into.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

 private:
  int64_t index(int64_t r, int64_t c) const { return r * cols_ + c; }
  void bake_effective(int64_t r, int64_t c);

  int64_t rows_;
  int64_t cols_;
  MemristorConfig config_;
  std::vector<double> g_;     // row-major conductances
  std::vector<double> geff_;  // wire-model panel; empty when wires ideal
  std::vector<DefectKind> defects_;  // static map; empty = legacy draws
};

/// A differential pair of crossbars realizing a signed weight block.
/// Weight levels k in [-max_level, +max_level]: positive k programs the
/// plus array, negative k the minus array; the other cell stays at level 0
/// (g_min leakage), and the differential current cancels the common leak.
///
/// Fault-aware remapping: the pair may reserve `spare_cols` extra physical
/// columns. Logical columns route to physical columns through an output
/// mux (col_map); rebinding a faulty logical column onto a spare only
/// rewrites panel entries, so the event-engine hot path (accumulate_rows
/// over the logical panel) is untouched by remapping.
class DifferentialCrossbar {
 public:
  DifferentialCrossbar(int64_t rows, int64_t cols,
                       const MemristorConfig& config, int64_t spare_cols = 0);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t spare_cols() const { return spare_cols_; }
  int64_t spare_cols_left() const { return spare_cols_ - spares_used_; }
  const MemristorConfig& device() const { return config_; }

  void program_cell(int64_t r, int64_t c, int64_t signed_level,
                    int64_t max_level, nn::Rng* rng = nullptr);

  /// Programs one array's cell at a *physical* column without touching the
  /// logical panel (used by the write-verify controller to retry a single
  /// deviant cell or pre-program an unbound spare). Call
  /// sync_panel_column() when the owning logical column is bound.
  void program_array_cell(bool minus_array, int64_t r, int64_t phys_c,
                          int64_t level, int64_t max_level,
                          nn::Rng* rng = nullptr);

  /// Effective conductance of one array's cell at a physical column — the
  /// verify read of the write-verify loop.
  double array_effective(bool minus_array, int64_t r, int64_t phys_c) const;

  /// Draws static defect maps for both arrays (plus first, then minus).
  void draw_defect_maps(nn::Rng& rng);

  /// Test/faultsim hook: forces the defect of one array's cell at the
  /// physical column currently backing logical column c.
  void set_defect(int64_t r, int64_t c, bool minus_array, DefectKind kind);

  int64_t defect_count() const {
    return plus_.defect_count() + minus_.defect_count();
  }

  /// Physical column currently backing logical column c.
  int64_t physical_column(int64_t c) const;

  /// Claims the next unused spare physical column (ascending order);
  /// returns -1 when the budget is exhausted. The claim is permanent even
  /// if the caller decides not to bind it (a trial-programmed spare has
  /// been written and is no longer pristine).
  int64_t claim_spare();

  /// Routes logical column c to physical column phys_c and refreshes the
  /// panel entries from it.
  void bind_column(int64_t c, int64_t phys_c);

  /// Number of logical columns not on their home physical column.
  int64_t remapped_cols() const;

  /// Re-reads both panel entries of logical column c (all rows) from its
  /// mapped physical column.
  void sync_panel_column(int64_t c);

  /// Retention drift over `dt` windows on both arrays (independent
  /// per-array streams derived from `seed`), then a full panel resync.
  void apply_drift(double dt, double rate, double sigma, uint64_t seed);

  /// Packed interleaved effective-conductance panel [rows x 2*cols]: the
  /// plus cell of logical column c at 2c, the minus cell at 2c+1. One
  /// cache-friendly row pass feeds both accumulators while preserving the
  /// per-array accumulation order (plus and minus sums each see rows in
  /// ascending order, exactly like separate reads of plus()/minus()).
  const double* packed_panel() const { return panel_.data(); }

  /// Accumulates `n` row drives (strictly ascending row indices, voltage
  /// per row) into `acc`, an interleaved buffer of 2*cols() entries
  /// (plus current at 2c, minus at 2c+1). `acc` is NOT zeroed here, so
  /// callers can fold multiple event lists into one read. Allocation-free:
  /// this is the event-driven inference engine's only crossbar access.
  void accumulate_rows(const int32_t* rows, const double* drives, int64_t n,
                       double* acc) const;

  /// Batched form of accumulate_rows: one pass over each driven row's
  /// panel serves `batch` images (a B-wide rank-1 update per event row).
  /// `drives` is event-major [n x batch] (image b of event i at
  /// i*batch + b), `acc` image-major [batch x 2*cols]. Zero drives are
  /// skipped per image, so each image's per-column accumulation reduces
  /// to exactly the sequence accumulate_rows would perform over that
  /// image's own nonzero-event list — bit-identical, while the panel row
  /// is streamed from memory once for the whole batch.
  void accumulate_rows_batch(const int32_t* rows, const double* drives,
                             int64_t n, int64_t batch, double* acc) const;

  /// Differential column currents I_plus - I_minus for binary spikes.
  std::vector<double> read_columns_spiking(const std::vector<uint8_t>& spikes,
                                           double v_read) const;

  /// Per-array logical-column currents through the column map (panel
  /// reads, so remapped columns see their spare). Each output holds
  /// cols() entries; accumulation is the same ascending-row order as
  /// reading the plus()/minus() arrays directly — bit-identical to the
  /// historical dense-reference reads for an identity mapping.
  void read_logical_columns(const std::vector<double>& volts,
                            std::vector<double>& plus_out,
                            std::vector<double>& minus_out) const;
  void read_logical_columns_spiking(const std::vector<uint8_t>& spikes,
                                    double v_read,
                                    std::vector<double>& plus_out,
                                    std::vector<double>& minus_out) const;

  /// Signed level read back from the pair (ideal devices round-trip
  /// exactly; with variation this is the nearest level).
  int64_t read_level(int64_t r, int64_t c, int64_t max_level) const;

  const Crossbar& plus() const { return plus_; }
  const Crossbar& minus() const { return minus_; }

 private:
  int64_t rows_;
  int64_t cols_;        // logical columns (panel width / 2)
  int64_t spare_cols_;  // extra physical columns reserved for remapping
  int64_t spares_used_ = 0;
  MemristorConfig config_;
  Crossbar plus_;
  Crossbar minus_;
  std::vector<double> panel_;    // interleaved plus/minus effective panel
  std::vector<int64_t> col_map_;  // logical -> physical column
};

}  // namespace qsnc::snc
