// Analytic speed / energy / area model of the memristor-based SNC
// (paper Sec 4.5, Table 5).
//
// Structure. Each network layer is one pipeline stage built from four
// components (paper Sec 4.5): word-line drivers (one per crossbar row),
// the memristor crossbars themselves, IFCs (one per column), and M-bit
// spike counters (one per column). An inference processes a spike window of
// T = 2^M - 1 slots; in each slot a spike wave traverses every stage.
//
//   period  = T * L * t_prop + L * t_setup                      (speed)
//   energy  = T * sum_l P_l * E_slot(l) + sum_l P_l * E_cnt(l)  (energy)
//   area    = sum_l [A_fixed(l) + M * A_per_bit(l)]             (area)
//
// where E_slot covers driver + crossbar-read + IFC activity per slot,
// E_cnt covers counter/readout work per window, A_fixed covers crossbars
// and drivers, and A_per_bit covers the bit-width-sized peripherals
// (counter flip-flops, IFC precision sizing). P_l is the number of output
// spatial positions of layer l (out_h * out_w; 1 for FC): a convolution
// crossbar is *activated once per output position*, so inference energy
// scales with spatial extent even though the silicon (area) is reused —
// this is what makes the paper's per-model energies grow superlinearly
// from LeNet to ResNet.
//
// Weight bit slicing: weights wider than the device's native precision are
// split over ceil(N_w / device_bits) crossbar slices — this is how the
// 8-bit dynamic-fixed-point baseline pays ~2x crossbar cost on a 4-bit
// device substrate.
//
// Calibration. The per-component constants below are IBM-130nm-flavoured
// values fitted once so the 8-bit LeNet baseline row reproduces Table 5
// (0.64 MHz, 4.7 uJ, 1.48 mm^2); every other (model, bit-width) point is
// *predicted* by the model. See EXPERIMENTS.md for paper-vs-model deltas.
#pragma once

#include <cstdint>

#include "snc/mapper.h"
#include "snc/programming.h"

namespace qsnc::snc {

struct CostParams {
  // Timing (nanoseconds).
  double t_prop_ns = 1.51;   // per-layer per-slot propagation
  double t_setup_ns = 5.35;  // per-layer window setup / readout

  // Energy (picojoules).
  double e_driver_pj = 0.32;  // one word-line driver, one slot
  double e_xbar_pj = 1.3;     // one crossbar tile read, one slot
  double e_ifc_pj = 0.46;     // one IFC column, one slot
  double e_cnt_bit_pj = 5.9;  // one counter bit over a full window

  // Area (square micrometers).
  double a_cell_um2 = 1.69;      // one differential memristor cell pair
  double a_driver_um2 = 1000.0;  // one word-line driver
  double a_ifc_um2 = 960.0;      // one IFC (fixed part)
  double a_perbit_um2 = 2523.0;  // per column: counter bit + IFC sizing

  int64_t crossbar_size = 32;  // t of Eq 1
  int device_bits = 4;         // native memristor precision (HP labs: 4-6)
};

struct SystemCost {
  double speed_mhz = 0.0;   // inference throughput
  double energy_uj = 0.0;   // energy per inference
  double area_mm2 = 0.0;    // total silicon + crossbar area
  int64_t layers = 0;
  int64_t crossbars = 0;    // physical tiles including slices
  int64_t window_slots = 0; // T
};

/// Number of crossbar slices needed to hold `weight_bits`-bit weights on
/// `device_bits`-bit devices.
int weight_slices(int weight_bits, int device_bits);

/// Evaluates the full system cost of a mapped model at the given signal
/// (M) and weight (N) bit widths.
SystemCost evaluate_cost(const ModelMapping& mapping, int signal_bits,
                         int weight_bits, const CostParams& params = {});

/// Duty-cycle cost of periodic conductance-refresh (retention-drift
/// mitigation). Every `interval_windows` inference windows the system
/// pauses to reprogram drifted cells; the refresh itself is priced by the
/// programming model (full reprogram — a worst-case bound, since the
/// scheduler skips in-tolerance stages).
struct RefreshOverhead {
  double refresh_time_ms = 0.0;       // one refresh pass
  double interval_ms = 0.0;           // inference time between refreshes
  double duty = 0.0;                  // refresh / (refresh + interval)
  double effective_speed_mhz = 0.0;   // speed * (1 - duty)
};

/// Prices a refresh-every-`interval_windows` schedule against the mapped
/// model's inference speed at the given bit widths.
RefreshOverhead evaluate_refresh(const ModelMapping& mapping, int signal_bits,
                                 int weight_bits, double interval_windows,
                                 const CostParams& cost_params = {},
                                 const ProgrammingParams& prog_params = {});

/// Convenience: speedup / saving percentages between a baseline and a
/// proposed design point.
struct CostComparison {
  double speedup = 0.0;          // proposed speed / baseline speed
  double energy_saving_pct = 0.0;
  double area_saving_pct = 0.0;
};
CostComparison compare_cost(const SystemCost& baseline,
                            const SystemCost& proposed);

}  // namespace qsnc::snc
