// Minimal command-line flag parsing for the qsnc tool and examples.
// Supports "--key value", "--key=value", and bare boolean "--key" forms,
// plus positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qsnc::util {

class Flags {
 public:
  /// Parses argv[1..). Throws std::invalid_argument on a malformed flag
  /// (anything starting with "-" that is not "--key[=value]").
  ///
  /// `boolean_keys` declares flags that never consume a following
  /// positional token as their value: "--verbose mymodel" keeps "mymodel"
  /// positional when "verbose" is declared boolean. The boolean spellings
  /// true/false/1/0 are still consumed ("--verbose false mymodel"), so
  /// explicit values keep working. Undeclared flags keep the greedy
  /// historical behavior: any following non-flag token is the value.
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& boolean_keys = {});

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;

  /// String value; returns `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Integer value; throws std::invalid_argument when present but not an
  /// integer.
  int64_t get_int(const std::string& key, int64_t fallback) const;

  /// Double value; throws std::invalid_argument when present but not a
  /// number.
  double get_double(const std::string& key, double fallback) const;

  /// Boolean: "--key" alone, or --key=true/false/1/0.
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were parsed but never read by any get*/has call — a typo
  /// guard for tools (call after all lookups).
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace qsnc::util
