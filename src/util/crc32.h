// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used for checkpoint integrity in nn/serialize: the v2 on-disk format
// stores crc32(payload) in its header so truncation and bit flips are
// detected before any tensor data is trusted.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qsnc::util {

/// Incremental CRC-32. Feed any number of chunks via update(), then read
/// the digest with value(). A default-constructed instance over zero
/// bytes yields 0.
class Crc32 {
 public:
  void update(const void* data, size_t size);
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience: CRC-32 of a single buffer.
uint32_t crc32(const void* data, size_t size);

}  // namespace qsnc::util
