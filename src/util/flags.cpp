#include "util/flags.h"

#include <algorithm>
#include <stdexcept>

namespace qsnc::util {

namespace {

bool is_boolean_spelling(const std::string& v) {
  return v == "true" || v == "false" || v == "1" || v == "0";
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& boolean_keys) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (!arg.empty() && arg[0] == '-') {
        throw std::invalid_argument("Flags: malformed flag '" + arg +
                                    "' (use --key[=value])");
      }
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("Flags: empty flag name");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    const bool declared_boolean =
        std::find(boolean_keys.begin(), boolean_keys.end(), body) !=
        boolean_keys.end();
    const bool next_is_value =
        i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
        (!declared_boolean || is_boolean_spelling(argv[i + 1]));
    if (next_is_value) {
      // "--key value"; a following token is the value unless it is itself
      // a --flag, or `key` is a declared boolean and the token is not a
      // boolean spelling ("--verbose mymodel" must not eat the
      // positional). Negative numbers ("-0.5") are fine as values.
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const {
  touched_[key] = true;
  return values_.count(key) > 0;
}

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::get_int(const std::string& key, int64_t fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("Flags: --" + key + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (touched_.find(key) == touched_.end()) out.push_back(key);
  }
  return out;
}

}  // namespace qsnc::util
