#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qsnc::util {

namespace {
// Depth of parallel_for tasks running on this thread; nested calls at
// depth > 0 execute inline so a task can never block on the pool it
// occupies (deadlock freedom).
thread_local int tl_depth = 0;
}  // namespace

struct ThreadPool::Impl {
  // One fork-join invocation. Tasks reference the job; the job outlives
  // them because parallel_for does not return until remaining hits zero.
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    std::atomic<int64_t> remaining{0};
    std::mutex mu;                 // guards error, pairs with done
    std::condition_variable done;  // signalled when remaining drops to 0
    std::exception_ptr error;
  };

  struct Task {
    int64_t begin = 0;
    int64_t end = 0;
    Job* job = nullptr;
  };

  // Per-worker deque: the owner pops from the front, thieves (including
  // the submitting caller) pop from the back.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;
  std::mutex wake_mu;            // guards pending + stop
  std::condition_variable wake_cv;
  int64_t pending = 0;           // tasks sitting in deques
  bool stop = false;
  std::atomic<uint64_t> deal_cursor{0};  // round-robin push start

  static void run_task(const Task& task) {
    ++tl_depth;
    try {
      (*task.job->fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(task.job->mu);
      if (!task.job->error) task.job->error = std::current_exception();
    }
    --tl_depth;
    if (task.job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(task.job->mu);
      task.job->done.notify_all();
    }
  }

  // Pops one task, preferring queue `home` (front) and stealing from the
  // others (back). Returns false when every deque is empty.
  bool take_task(size_t home, Task* out) {
    const size_t n = queues.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t q = (home + i) % n;
      WorkerQueue& wq = *queues[q];
      std::lock_guard<std::mutex> lk(wq.mu);
      if (wq.tasks.empty()) continue;
      if (i == 0) {
        *out = wq.tasks.front();
        wq.tasks.pop_front();
      } else {
        *out = wq.tasks.back();
        wq.tasks.pop_back();
      }
      {
        std::lock_guard<std::mutex> wlk(wake_mu);
        --pending;
      }
      return true;
    }
    return false;
  }

  void worker_loop(size_t index) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait(lk, [&] { return stop || pending > 0; });
        if (stop) return;
      }
      Task task;
      if (take_task(index, &task)) run_task(task);
    }
  }

  explicit Impl(int worker_count) {
    queues.reserve(static_cast<size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      queues.push_back(std::make_unique<WorkerQueue>());
    }
    workers.reserve(static_cast<size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      workers.emplace_back([this, i] { worker_loop(static_cast<size_t>(i)); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(wake_mu);
      stop = true;
    }
    wake_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }
};

ThreadPool::ThreadPool(int threads) {
  threads_ = std::clamp(threads, 1, 512);
  impl_ = new Impl(threads_ - 1);
}

ThreadPool::~ThreadPool() { delete impl_; }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_threads());
  return pool;
}

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("QSNC_THREADS")) {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && v >= 1) {
      return static_cast<int>(std::min<long>(v, 512));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::in_parallel_region() { return tl_depth > 0; }

void ThreadPool::set_threads(int n) {
  n = std::clamp(n, 1, 512);
  if (n == threads_) return;
  delete impl_;
  threads_ = n;
  impl_ = new Impl(threads_ - 1);
}

void ThreadPool::parallel_for(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (threads_ <= 1 || tl_depth > 0) {
    // Serial / nested fallback: the whole range as one chunk is a valid
    // partition under the determinism contract.
    fn(begin, end);
    return;
  }
  int64_t g = grain;
  if (g <= 0) {
    // Auto grain: ~8 chunks per thread. Only safe for kernels whose chunks
    // write disjoint outputs (boundaries depend on the pool size).
    g = std::max<int64_t>(
        1, (end - begin + threads_ * 8 - 1) / (threads_ * 8));
  }
  if (end - begin <= g) {
    fn(begin, end);
    return;
  }

  Impl::Job job;
  job.fn = &fn;
  const int64_t chunks = (end - begin + g - 1) / g;
  job.remaining.store(chunks, std::memory_order_relaxed);

  const size_t nq = impl_->queues.size();
  size_t q = static_cast<size_t>(
      impl_->deal_cursor.fetch_add(1, std::memory_order_relaxed) % nq);
  for (int64_t b = begin; b < end; b += g) {
    const Impl::Task task{b, std::min(b + g, end), &job};
    {
      std::lock_guard<std::mutex> lk(impl_->queues[q]->mu);
      impl_->queues[q]->tasks.push_back(task);
    }
    q = (q + 1) % nq;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->wake_mu);
    impl_->pending += chunks;
  }
  impl_->wake_cv.notify_all();

  // The caller works alongside the pool until the deques drain, then
  // parks until in-flight tasks (on workers) retire.
  Impl::Task task;
  while (impl_->take_task(0, &task)) Impl::run_task(task);
  {
    std::unique_lock<std::mutex> lk(job.mu);
    job.done.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0;
    });
    if (job.error) std::rethrow_exception(job.error);
  }
}

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

int num_threads() { return ThreadPool::instance().threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_threads(n); }

}  // namespace qsnc::util
