// Persistent work-stealing thread pool behind a fork-join parallel_for.
//
// Design (pthreadpool-style, cf. NNPACK): one process-wide pool of worker
// threads, each owning a mutex-guarded deque of range tasks. parallel_for
// splits [begin, end) into grain-sized chunks, deals them round-robin
// across the worker deques, and the calling thread then works alongside
// the pool — popping its victims' deques from the back (steal) while
// workers pop their own from the front — until the job drains. Idle
// workers park on a condition variable; there is no spinning.
//
// Determinism contract: chunk boundaries depend only on (begin, end,
// grain) — never on the thread count — so a kernel whose chunks write
// disjoint outputs (or that reduces per-chunk partials in fixed order)
// produces bit-identical results at 1, 2, or N threads. When `grain <= 0`
// an automatic grain is chosen from the pool size; use that only for
// kernels with disjoint writes.
//
// Serial guarantees: a pool of <= 1 thread, a range that fits one grain
// chunk, and any parallel_for issued from inside a running task (nesting)
// all execute inline on the caller with zero synchronization.
//
// Sizing: the pool starts lazily with QSNC_THREADS (env) threads when set,
// else std::thread::hardware_concurrency(); tools expose the same knob as
// a --threads flag via set_num_threads().
#pragma once

#include <cstdint>
#include <functional>

namespace qsnc::util {

class ThreadPool {
 public:
  /// Process-wide pool, created on first use.
  static ThreadPool& instance();

  /// Pool size from the environment: QSNC_THREADS when set (clamped to
  /// [1, 512]), else hardware_concurrency(), else 1.
  static int default_threads();

  /// True while the calling thread is executing a parallel_for task (used
  /// to run nested parallelism inline).
  static bool in_parallel_region();

  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current logical thread count (caller + workers).
  int threads() const { return threads_; }

  /// Re-sizes the pool (joins workers, restarts). Must not be called from
  /// inside a task or while another thread has a parallel_for in flight.
  void set_threads(int n);

  /// Invokes fn(chunk_begin, chunk_end) over a partition of [begin, end)
  /// into chunks of at most `grain` indices (last chunk may be short).
  /// Blocks until every chunk ran; the first exception thrown by any chunk
  /// is rethrown here after the job drains. fn must tolerate any
  /// interleaving of chunks across threads.
  void parallel_for(int64_t begin, int64_t end, int64_t grain,
                    const std::function<void(int64_t, int64_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// parallel_for on the global pool (see ThreadPool::parallel_for).
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

/// Size of the global pool.
int num_threads();

/// Re-sizes the global pool (see ThreadPool::set_threads).
void set_num_threads(int n);

}  // namespace qsnc::util
