// 64-byte-aligned allocation for tensors and packed kernel panels.
//
// The SIMD micro-kernels load packed A/B panels with aligned 256-bit moves
// and the tensors they read from should never straddle a cache line at
// element 0, so every bulk float buffer in qsnc allocates on a cache-line
// boundary. The allocator wraps the C++17 aligned operator new, which the
// sanitizer builds instrument like any other allocation.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace qsnc::util {

/// Cache line / packed-panel alignment used by the kernel layer.
inline constexpr std::size_t kPanelAlignment = 64;

/// Minimal C++17 allocator handing out storage aligned to `Alignment`.
template <typename T, std::size_t Alignment = kPanelAlignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T),
                "alignment must not be weaker than the natural one");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qsnc::util
