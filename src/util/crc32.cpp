#include "util/crc32.h"

#include <array>

namespace qsnc::util {

namespace {

std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& table() {
  static const std::array<uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

void Crc32::update(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& t = table();
  uint32_t c = state_;
  for (size_t i = 0; i < size; ++i) {
    c = t[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t crc32(const void* data, size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace qsnc::util
