#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qsnc::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto emit = [&f](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      // Quote fields containing commas or quotes.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : row[c]) {
          if (ch == '"') quoted += "\"\"";
          else quoted += ch;
        }
        quoted += '"';
        f << quoted;
      } else {
        f << row[c];
      }
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string ascii_histogram(const std::vector<float>& values, float lo,
                            float hi, int bins, int width) {
  if (bins <= 0 || hi <= lo) {
    throw std::invalid_argument("ascii_histogram: bad range/bins");
  }
  std::vector<int64_t> counts(static_cast<size_t>(bins), 0);
  const float inv_step = static_cast<float>(bins) / (hi - lo);
  for (float v : values) {
    int b = static_cast<int>((v - lo) * inv_step);
    b = std::clamp(b, 0, bins - 1);
    ++counts[static_cast<size_t>(b)];
  }
  const int64_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  for (int b = 0; b < bins; ++b) {
    const float left = lo + (hi - lo) * static_cast<float>(b) /
                                static_cast<float>(bins);
    const int64_t count = counts[static_cast<size_t>(b)];
    const int bar = peak > 0 ? static_cast<int>(std::llround(
                                   static_cast<double>(count) * width /
                                   static_cast<double>(peak)))
                             : 0;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << '[' << left << ") " << std::string(static_cast<size_t>(bar), '#')
       << ' ' << count << '\n';
  }
  return os.str();
}

}  // namespace qsnc::report
