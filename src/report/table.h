// Plain-text report emitters: aligned tables, ASCII histograms, CSV dumps.
// Every bench binary renders the paper's tables/figures through these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qsnc::report {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header rule and 2-space column gaps.
  std::string to_string() const;

  /// Writes the table as CSV to `path` (throws on I/O failure).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string fmt(double v, int decimals = 2);

/// Formats an accuracy in percent ("98.14%").
std::string pct(double fraction, int decimals = 2);

/// ASCII histogram of `values` over [lo, hi] with `bins` bars; bar length
/// is normalized to `width` characters. Out-of-range values clamp to the
/// edge bins.
std::string ascii_histogram(const std::vector<float>& values, float lo,
                            float hi, int bins, int width = 50);

}  // namespace qsnc::report
