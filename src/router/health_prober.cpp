#include "router/health_prober.h"

#include <chrono>

namespace qsnc::router {

using serve::Frame;
using serve::MsgType;

HealthProber::HealthProber(BackendPool& pool, const RouterOptions& options)
    : pool_(pool), options_(options) {
  thread_ = std::thread([this] { loop(); });
}

HealthProber::~HealthProber() { stop(); }

void HealthProber::stop() {
  {
    // stopping_ flips under mu_ — the same mutex the loop's wait holds
    // while checking its predicate — so the notify cannot slip into the
    // gap between the predicate check and the sleep and get lost.
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true);
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> lock(join_mu_);  // serialize concurrent stop()s
  if (thread_.joinable()) thread_.join();
}

void HealthProber::loop() {
  while (!stopping_.load()) {
    for (size_t i = 0; i < pool_.size() && !stopping_.load(); ++i) {
      bool ok = false;
      try {
        ok = probe_one(i);
      } catch (const std::exception&) {
        ok = false;
      }
      // probe_one records successes itself (it has the queue depth);
      // only failures are recorded here.
      if (!ok && !stopping_.load()) {
        pool_.record_probe(i, false, 0);
      }
    }
    ++sweeps_;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock,
                 std::chrono::milliseconds(options_.probe_interval_ms),
                 [this] { return stopping_.load(); });
  }
}

bool HealthProber::probe_one(size_t i) {
  auto conn = pool_.checkout(i);
  if (conn == nullptr) return false;
  serve::HealthProbe probe;
  probe.nonce = next_nonce_.fetch_add(1);
  if (!serve::write_with_deadline(conn->fd,
                                  serve::encode_health_probe(probe),
                                  options_.probe_timeout_ms)) {
    return false;  // conn dies with scope
  }
  const std::optional<Frame> frame = serve::read_frame_with_deadline(
      conn->fd, conn->reader, options_.probe_timeout_ms);
  if (!frame || frame->type != MsgType::kHealthAck) return false;
  const serve::HealthAck ack = serve::decode_health_ack(frame->body);
  if (ack.nonce != probe.nonce || !ack.healthy) return false;
  pool_.record_probe(i, true, ack.queue_depth, ack.versions);
  pool_.checkin(i, std::move(conn));
  return true;
}

}  // namespace qsnc::router
