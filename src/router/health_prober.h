// Background health prober of the router tier.
//
// One thread sweeps every backend each probe_interval_ms: checkout a
// pooled connection, send kHealthProbe with a fresh nonce, wait up to
// probe_timeout_ms for the matching kHealthAck. A good ack records the
// backend's reported queue depth and (re)marks it up; a miss, nonce
// mismatch, or transport failure counts one probe failure and the pool
// flips the backend down after probe_down_after consecutive misses.
// Probes share the forwarding connection pool, so a probe doubles as a
// connection-warming touch on an idle backend.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "router/backend_pool.h"
#include "router/router_config.h"

namespace qsnc::router {

class HealthProber {
 public:
  /// Starts the probe thread. `pool` must outlive the prober.
  HealthProber(BackendPool& pool, const RouterOptions& options);
  ~HealthProber();  // stops
  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  /// Stops and joins the probe thread. Idempotent.
  void stop();

  /// Completed full sweeps (test synchronization: wait for the verdict
  /// after killing a backend by watching this advance).
  uint64_t sweeps() const { return sweeps_.load(); }

 private:
  void loop();
  bool probe_one(size_t i);

  BackendPool& pool_;
  RouterOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> next_nonce_{1};
  std::mutex mu_;        // guards the stop wakeup (cv_ waits under it)
  std::mutex join_mu_;   // serializes concurrent stop()/join
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace qsnc::router
