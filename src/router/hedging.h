// Hedged-request policy and the first-response-wins race primitive.
//
// Hedging trades duplicate backend work for tail latency: when an
// interactive request has no response after hedge_after_us, the router
// sends a duplicate to the next ring candidate and takes whichever
// response lands first. Inference is idempotent and side-effect free, so
// the only cost is the duplicated compute — which is why the policy
// restricts hedging to the interactive class (batch traffic cares about
// throughput, and hedging it would double load exactly when the fleet is
// busiest).
#pragma once

#include <cstdint>
#include <optional>

#include "router/backend_pool.h"
#include "serve/micro_batcher.h"
#include "serve/protocol.h"

namespace qsnc::router {

/// Should this request hedge? Requires hedging enabled
/// (hedge_after_us > 0), interactive priority, and a distinct second
/// candidate to hedge to.
bool should_hedge(int64_t hedge_after_us, serve::Priority priority,
                  size_t distinct_candidates);

/// Outcome of racing two in-flight responses.
struct RaceResult {
  std::optional<serve::Frame> frame;
  int winner = -1;  // 0 = a, 1 = b, -1 = neither answered in time
};

/// Polls both connections until either yields one complete frame or
/// `timeout_ms` elapses. A side that EOFs, errors, or sends a malformed
/// frame is dropped from the race; the other keeps running. Feeds each
/// connection's FrameReader, so the loser's stream state is undefined
/// afterwards — the caller must invalidate the losing connection.
RaceResult race_frames(BackendPool::Conn& a, BackendPool::Conn& b,
                       int64_t timeout_ms);

}  // namespace qsnc::router
