#include "router/hedging.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>

namespace qsnc::router {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollTickMs = 10;

/// Drains readable bytes into the connection's reader and returns a
/// complete frame if one formed. Sets `dead` on EOF/error/bad framing.
std::optional<serve::Frame> pump(BackendPool::Conn& conn, bool& dead) {
  uint8_t buf[64 * 1024];
  const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
  if (n == 0) {
    dead = true;
    return std::nullopt;
  }
  if (n < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      dead = true;
    }
    return std::nullopt;
  }
  try {
    conn.reader.feed(buf, static_cast<size_t>(n));
    return conn.reader.next();
  } catch (const serve::ProtocolError&) {
    dead = true;
    return std::nullopt;
  }
}

}  // namespace

bool should_hedge(int64_t hedge_after_us, serve::Priority priority,
                  size_t distinct_candidates) {
  return hedge_after_us > 0 &&
         priority == serve::Priority::kInteractive &&
         distinct_candidates >= 2;
}

RaceResult race_frames(BackendPool::Conn& a, BackendPool::Conn& b,
                       int64_t timeout_ms) {
  const Clock::time_point started = Clock::now();
  bool a_dead = false;
  bool b_dead = false;
  // A frame may already be buffered from the pre-hedge wait.
  try {
    if (auto f = a.reader.next()) return {std::move(f), 0};
  } catch (const serve::ProtocolError&) {
    a_dead = true;
  }
  for (;;) {
    if (a_dead && b_dead) return {};
    if (timeout_ms > 0 &&
        Clock::now() - started >= std::chrono::milliseconds(timeout_ms)) {
      return {};
    }
    pollfd pfds[2] = {{a.fd, POLLIN, 0}, {b.fd, POLLIN, 0}};
    if (a_dead) pfds[0].fd = -1;  // poll ignores negative fds
    if (b_dead) pfds[1].fd = -1;
    const int ready = ::poll(pfds, 2, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return {};
    }
    if (ready == 0) continue;
    if (!a_dead && (pfds[0].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (auto f = pump(a, a_dead)) return {std::move(f), 0};
    }
    if (!b_dead && (pfds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (auto f = pump(b, b_dead)) return {std::move(f), 1};
    }
  }
}

}  // namespace qsnc::router
