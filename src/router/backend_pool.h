// Endpoint registry + per-backend runtime state of the router tier.
//
// For every configured backend the pool tracks:
//
//   * a free-list of pooled connections (each a handshaken fd + its
//     FrameReader) — connections are checked out for one forward or
//     probe, checked back in on clean completion, and invalidated
//     (closed) on any failure or deadline so a stale half-read response
//     can never be attributed to a later request;
//   * a CircuitBreaker (serve/admission.h) fed by forward outcomes, so a
//     backend failing requests is skipped for breaker_open_ms at a time
//     with deterministic half-open re-probes;
//   * the health-prober verdict (up/down with a consecutive-failure
//     counter) — see health_prober.h;
//   * counters for the health table (forwards, failures, reroutes away,
//     hedges, probe outcomes, last reported queue depth).
//
// Thread model: checkout/checkin/invalidate and all record_*/note_*
// calls are thread-safe (connection handler threads + the prober call
// in concurrently). A checked-out connection is owned exclusively by the
// caller until checkin/invalidate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "router/router_config.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace qsnc::router {

/// One backend row of the router health table.
struct BackendSnapshot {
  std::string endpoint;
  bool up = true;
  serve::CircuitBreaker::State breaker =
      serve::CircuitBreaker::State::kClosed;
  uint64_t forwards = 0;        // requests sent (incl. hedge duplicates)
  uint64_t failures = 0;        // forward attempts that failed/timed out
  uint64_t reroutes_away = 0;   // requests moved off this backend
  uint64_t hedges = 0;          // hedge duplicates sent here
  uint64_t probes_ok = 0;
  uint64_t probes_failed = 0;
  uint64_t retry_sheds = 0;     // reroutes refused by a dry retry budget
  int consecutive_probe_failures = 0;
  uint32_t last_queue_depth = 0;  // from the latest successful probe
  /// Per-base active-version labels from the latest successful probe
  /// (protocol v5 health acks) — which version answers bare-name traffic
  /// on this backend. Kept across probe failures (last-known).
  std::vector<serve::ModelVersionLabel> versions;
};

class BackendPool {
 public:
  /// A pooled, handshaken connection to one backend.
  struct Conn {
    int fd = -1;
    serve::FrameReader reader;
    ~Conn();
    Conn() = default;
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;
  };

  explicit BackendPool(const RouterOptions& options);
  ~BackendPool();
  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  size_t size() const { return backends_.size(); }
  const serve::Endpoint& endpoint(size_t i) const;
  /// Endpoint spellings, in order — the hash-ring labels.
  std::vector<std::string> labels() const;

  /// A connection to backend `i`: pooled if available, else freshly
  /// connected + kHello-handshaken as PeerRole::kRouter. Returns nullptr
  /// when connecting or handshaking fails (counts as a forward failure).
  std::unique_ptr<Conn> checkout(size_t i);
  /// Returns a cleanly-finished connection to the free list.
  void checkin(size_t i, std::unique_ptr<Conn> conn);
  /// Drops a connection whose stream state is unknown (failure, timeout,
  /// mid-response abandon). The fd is closed by ~Conn.
  static void invalidate(std::unique_ptr<Conn> conn) { conn.reset(); }

  /// Is `i` worth trying now: prober says up AND its breaker would
  /// admit. Non-mutating (breaker state and the half-open probe slot are
  /// untouched), so it is safe to call for every candidate while ordering
  /// without owing the breaker an outcome.
  bool usable(size_t i, int64_t now_us) const;
  bool up(size_t i) const;

  /// Drives `i`'s breaker state machine for one real forward attempt
  /// (CircuitBreaker::allow — may consume the half-open probe slot). Call
  /// exactly once immediately before forwarding, and always resolve it
  /// with record_success/record_failure. The return value is advisory:
  /// the router still attempts open-breaker backends as a last resort.
  bool admit(size_t i, int64_t now_us);

  void record_success(size_t i);
  void record_failure(size_t i, int64_t now_us);

  /// Spends one of `i`'s retry-budget tokens (the cost of rerouting a
  /// request away from it after a failed attempt). True when the budget
  /// admits the reroute; false when the bucket is dry — the caller sheds
  /// instead, and `*retry_after_us` (when non-null) is set to the time
  /// until the next token accrues. Always true when retry_tokens_per_sec
  /// is 0 (budget off). Thread-safe; time is injected for testability.
  bool take_retry_token(size_t i, int64_t now_us,
                        int64_t* retry_after_us = nullptr);
  /// Prober verdict; flips up/down per probe_down_after. The long form
  /// also stores the backend's per-model active-version labels from the
  /// health ack (the short form keeps the last-known labels).
  void record_probe(size_t i, bool ok, uint32_t queue_depth);
  void record_probe(size_t i, bool ok, uint32_t queue_depth,
                    const std::vector<serve::ModelVersionLabel>& versions);
  void note_forward(size_t i);
  void note_reroute_away(size_t i);
  void note_hedge(size_t i);

  std::vector<BackendSnapshot> stats() const;

 private:
  struct Backend {
    serve::Endpoint endpoint;
    serve::CircuitBreaker breaker;
    std::mutex free_mu;
    std::vector<std::unique_ptr<Conn>> free;
    std::atomic<bool> up{true};  // optimistic until the prober says no
    std::atomic<int> consecutive_probe_failures{0};
    std::atomic<uint64_t> forwards{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> reroutes_away{0};
    std::atomic<uint64_t> hedges{0};
    std::atomic<uint64_t> probes_ok{0};
    std::atomic<uint64_t> probes_failed{0};
    std::atomic<uint64_t> retry_sheds{0};
    std::atomic<uint32_t> last_queue_depth{0};
    std::mutex retry_mu;
    double retry_tokens = 0.0;       // filled to burst at construction
    int64_t retry_refill_us = -1;    // last refill time (-1 = never)
    mutable std::mutex versions_mu;
    std::vector<serve::ModelVersionLabel> versions;

    Backend(const serve::Endpoint& ep, int threshold, int64_t open_us)
        : endpoint(ep), breaker(threshold, open_us) {}
  };

  Backend& backend(size_t i) const;

  RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace qsnc::router
