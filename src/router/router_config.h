// Configuration of the router front tier (see router_server.h for the
// architecture). Everything here is knobs; the defaults are tuned for a
// small same-host fleet (the CI smoke topology) and err toward fast
// failure detection over probe economy.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.h"
#include "serve/transport.h"

namespace qsnc::router {

struct RouterOptions {
  /// Backend serving processes to balance over (any endpoint kind).
  std::vector<serve::Endpoint> backends;

  /// Virtual nodes per backend on the consistent-hash ring. More vnodes
  /// = flatter load split and smaller remap steps on membership change,
  /// at O(vnodes * backends * log) ring size.
  int vnodes = 64;

  // --- health probing ----------------------------------------------------
  /// Cadence of the background kHealthProbe round over all backends.
  int64_t probe_interval_ms = 200;
  /// Per-probe response deadline; a probe that misses it counts failed.
  int64_t probe_timeout_ms = 500;
  /// Consecutive failed probes before a backend is marked down (routed
  /// around until a probe succeeds again).
  int probe_down_after = 2;

  // --- forwarding --------------------------------------------------------
  /// Per-attempt deadline on one backend answering one forwarded request.
  /// A miss invalidates the pooled connection, feeds the backend's
  /// breaker, and moves on to the next ring candidate.
  int64_t forward_timeout_ms = 5000;

  /// Hedging (interactive traffic only): when a forwarded request has no
  /// response after this long, a duplicate is sent to the next ring
  /// candidate and the first response wins. 0 disables hedging.
  int64_t hedge_after_us = 0;

  /// Per-backend circuit breaker (serve/admission.h): this many
  /// consecutive forward failures open it for breaker_open_ms, during
  /// which the backend is skipped except for the half-open probe.
  int breaker_threshold = 3;
  int64_t breaker_open_ms = 500;

  /// Per-backend retry budget (token bucket): every reroute *away from* a
  /// failed backend spends one of that backend's tokens, which refill
  /// continuously at this rate. When a failing backend's bucket is dry
  /// the request is shed (kShedded + retry_after_us = time to the next
  /// token) instead of rerouted — bounding the traffic amplification a
  /// flapping backend can impose on its neighbors to burst + rate extra
  /// attempts per second. 0 disables the budget (every failure reroutes,
  /// the historical behavior).
  double retry_tokens_per_sec = 0.0;
  /// Bucket capacity: how many reroutes may happen back-to-back before
  /// the rate limit bites.
  double retry_burst = 10.0;

  /// Endpoint the router itself listens on.
  serve::Endpoint listen;
  /// Slow-client defenses of the router's own front listener.
  serve::SocketServerOptions front;
};

}  // namespace qsnc::router
