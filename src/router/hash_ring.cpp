#include "router/hash_ring.h"

#include <algorithm>
#include <stdexcept>

namespace qsnc::router {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// SplitMix64 finalizer: spreads FNV's weak low bits over the ring.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t route_hash(const std::string& model, const std::string& key) {
  uint64_t h = fnv1a(kFnvOffset, model);
  h ^= kFnvPrime;  // separator so ("ab","c") != ("a","bc")
  h = fnv1a(h, key);
  return mix(h);
}

HashRing::HashRing(const std::vector<std::string>& labels, int vnodes)
    : num_nodes_(labels.size()) {
  if (labels.empty()) {
    throw std::invalid_argument("HashRing: empty node set");
  }
  if (vnodes < 1) {
    throw std::invalid_argument("HashRing: vnodes must be >= 1");
  }
  ring_.reserve(labels.size() * static_cast<size_t>(vnodes));
  for (size_t node = 0; node < labels.size(); ++node) {
    uint64_t h = fnv1a(kFnvOffset, labels[node]);
    for (int replica = 0; replica < vnodes; ++replica) {
      // Chain the point positions off the label hash, never the index,
      // so the same label always contributes the same points.
      ring_.push_back({mix(h + static_cast<uint64_t>(replica)), node});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on node so equal positions (vanishingly rare)
              // still order deterministically.
              return a.position != b.position ? a.position < b.position
                                              : a.node < b.node;
            });
}

size_t HashRing::pick(uint64_t hash) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const Point& p, uint64_t h) { return p.position < h; });
  return it == ring_.end() ? ring_.front().node : it->node;
}

std::vector<size_t> HashRing::pick_n(uint64_t hash, size_t n) const {
  n = std::min(n, num_nodes_);
  std::vector<size_t> out;
  std::vector<bool> seen(num_nodes_, false);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const Point& p, uint64_t h) { return p.position < h; });
  for (size_t steps = 0; steps < ring_.size() && out.size() < n; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->node]) {
      seen[it->node] = true;
      out.push_back(it->node);
    }
    ++it;
  }
  return out;
}

}  // namespace qsnc::router
