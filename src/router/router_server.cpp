#include "router/router_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "router/hedging.h"
#include "serve/model_registry.h"

namespace qsnc::router {

using serve::Frame;
using serve::MsgType;

namespace {

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Router::Router(BackendPool& pool, const RouterOptions& options)
    : pool_(pool), ring_(pool.labels(), options.vnodes), options_(options) {}

bool Router::handle(const Frame& frame, serve::FrameSink& sink) {
  switch (frame.type) {
    case MsgType::kInferRequest:
      return handle_infer(serve::decode_infer_request(frame.body), sink);
    case MsgType::kForwardInfer:
      // A router behind a router: re-route by the request alone.
      return handle_infer(
          serve::decode_forward_infer(frame.body).request, sink);
    case MsgType::kStatsRequest:
      return sink.send(serve::encode_stats_response(stats_report()));
    case MsgType::kHello: {
      const serve::Hello hello = serve::decode_hello(frame.body);
      serve::HelloAck ack;
      ack.version = serve::kProtocolVersion;
      ack.accepted = hello.version == serve::kProtocolVersion;
      return sink.send(serve::encode_hello_ack(ack));
    }
    case MsgType::kHealthProbe: {
      const serve::HealthProbe probe =
          serve::decode_health_probe(frame.body);
      serve::HealthAck ack;
      ack.nonce = probe.nonce;
      ack.healthy = true;
      ack.queue_depth = 0;  // the router holds no queue; backends do
      return sink.send(serve::encode_health_ack(ack));
    }
    default:
      throw serve::ProtocolError("unexpected message type");
  }
}

bool Router::handle_infer(serve::InferRequest request,
                          serve::FrameSink& sink) {
  ++requests_;
  const int64_t arrival_us = now_us();
  // Sticky sessions pin to hash(base model, session); hashing the *base*
  // (not the possibly-versioned spelling) means "lenet" and "lenet@v2"
  // land on the same backend, and a version flip during a rollout never
  // moves a sticky session. Sessionless requests spray over the ring
  // with a counter so one hot model still uses the whole fleet.
  const std::string base = serve::base_model_name(request.model);
  const uint64_t rh =
      request.session.empty()
          ? route_hash(base,
                       "\x01" + std::to_string(spread_.fetch_add(1)))
          : route_hash(base, request.session);
  const std::vector<size_t> candidates = ring_.pick_n(rh, pool_.size());

  serve::ForwardedInfer forward;
  forward.route_hash = rh;
  forward.request = std::move(request);
  // The request's deadline_us is its latency budget from enqueue; the
  // backend restarts that budget when it enqueues, so the router must
  // hand over only what is left after its own elapsed time (encoded per
  // attempt below). Deadline-less requests encode once here.
  const uint64_t total_deadline_us = forward.request.deadline_us;
  std::vector<uint8_t> wire;
  if (total_deadline_us == 0) {
    wire = serve::encode_forward_infer(forward);
  }

  // Usable candidates first (ring order preserved); the rest still get a
  // last-resort attempt in case the prober's verdict is stale.
  std::vector<size_t> ordered;
  ordered.reserve(candidates.size());
  for (const size_t c : candidates) {
    if (pool_.usable(c, now_us())) ordered.push_back(c);
  }
  const size_t usable = ordered.size();
  for (const size_t c : candidates) {
    if (std::find(ordered.begin(), ordered.end(), c) == ordered.end()) {
      ordered.push_back(c);
    }
  }

  const bool hedge = should_hedge(options_.hedge_after_us,
                                  forward.request.priority, usable);
  serve::InferResponse response;
  for (size_t attempt = 0; attempt < ordered.size(); ++attempt) {
    const size_t target = ordered[attempt];
    int64_t attempt_timeout_ms = options_.forward_timeout_ms;
    if (total_deadline_us > 0) {
      // Cross-hop deadline: decrement the router's own elapsed time from
      // the budget before forwarding, so hops cannot stack full budgets.
      // A spent budget answers kDeadlineExceeded instead of burning a
      // backend slot on an answer the client has given up on.
      const int64_t elapsed_us = now_us() - arrival_us;
      const int64_t remaining_us =
          static_cast<int64_t>(total_deadline_us) - elapsed_us;
      if (remaining_us <= 0) {
        ++deadline_exceeded_;
        response.id = forward.request.id;
        response.response = serve::Response{};
        response.response.status = serve::Status::kDeadlineExceeded;
        response.response.error = "router: deadline exhausted after " +
                                  std::to_string(elapsed_us) + "us";
        return sink.send(serve::encode_infer_response(response));
      }
      forward.request.deadline_us = static_cast<uint64_t>(remaining_us);
      wire = serve::encode_forward_infer(forward);
      attempt_timeout_ms = std::max<int64_t>(
          1, std::min<int64_t>(attempt_timeout_ms, remaining_us / 1000));
    }
    // Hedge partner: the next usable candidate after this attempt.
    const int partner =
        hedge && attempt + 1 < usable ? static_cast<int>(ordered[attempt + 1])
                                      : -1;
    if (forward_attempt(target, partner, forward.request, wire,
                        attempt_timeout_ms, response)) {
      if (attempt > 0) ++rerouted_;
      return sink.send(serve::encode_infer_response(response));
    }
    pool_.note_reroute_away(target);
    if (attempt + 1 < ordered.size()) {
      // Moving on costs one of the *failing* backend's retry tokens: a
      // flapping backend spends its own budget, and when it is dry the
      // request sheds instead of amplifying load onto its neighbors.
      int64_t retry_after_us = 0;
      if (!pool_.take_retry_token(target, now_us(), &retry_after_us)) {
        ++budget_shed_;
        response.id = forward.request.id;
        response.response = serve::Response{};
        response.response.status = serve::Status::kShedded;
        response.response.retry_after_us =
            static_cast<uint64_t>(retry_after_us);
        response.response.error = "router: retry budget exhausted for " +
                                  pool_.endpoint(target).str();
        return sink.send(serve::encode_infer_response(response));
      }
    }
  }

  // Every backend failed: a structured error beats a hung client.
  ++exhausted_;
  response.id = forward.request.id;
  response.response = serve::Response{};
  response.response.status = serve::Status::kError;
  response.response.error = "router: no backend available";
  return sink.send(serve::encode_infer_response(response));
}

bool Router::forward_attempt(size_t backend, int hedge_backend,
                             const serve::InferRequest& request,
                             const std::vector<uint8_t>& wire,
                             int64_t attempt_timeout_ms,
                             serve::InferResponse& response) {
  auto validate = [&](const Frame& frame) -> bool {
    if (frame.type != MsgType::kInferResponse) return false;
    try {
      serve::InferResponse decoded =
          serve::decode_infer_response(frame.body);
      if (decoded.id != request.id) return false;
      response = std::move(decoded);
      return true;
    } catch (const serve::ProtocolError&) {
      return false;
    }
  };

  // Ordering used the non-mutating usable(); only a real attempt drives
  // the breaker state machine. admit() may consume the half-open probe
  // slot, and every path below resolves it via record_success/
  // record_failure, so the slot can never leak. Its verdict is advisory:
  // this backend was already chosen (usable or last-resort).
  (void)pool_.admit(backend, now_us());
  auto conn = pool_.checkout(backend);
  if (conn == nullptr) {
    pool_.record_failure(backend, now_us());
    return false;
  }
  pool_.note_forward(backend);
  if (!serve::write_with_deadline(conn->fd, wire, attempt_timeout_ms)) {
    pool_.record_failure(backend, now_us());
    return false;  // conn closed with scope
  }

  // First wait: the full budget without hedging, else the hedge trigger
  // (never beyond the attempt budget).
  const int64_t first_wait_ms =
      hedge_backend < 0
          ? attempt_timeout_ms
          : std::max<int64_t>(
                1, std::min<int64_t>(options_.hedge_after_us / 1000,
                                     attempt_timeout_ms));
  std::optional<Frame> frame;
  try {
    frame = serve::read_frame_with_deadline(conn->fd, conn->reader,
                                            first_wait_ms);
  } catch (const serve::ProtocolError&) {
    pool_.record_failure(backend, now_us());
    return false;
  }
  if (frame) {
    if (!validate(*frame)) {
      pool_.record_failure(backend, now_us());
      return false;
    }
    pool_.record_success(backend);
    pool_.checkin(backend, std::move(conn));
    return true;
  }
  if (hedge_backend < 0) {
    pool_.record_failure(backend, now_us());  // full-budget timeout
    return false;
  }

  // Primary is quiet past the hedge trigger: duplicate to the partner and
  // race the two responses.
  const size_t hb = static_cast<size_t>(hedge_backend);
  auto hedge_conn = pool_.checkout(hb);
  if (hedge_conn != nullptr) {
    pool_.note_forward(hb);
    pool_.note_hedge(hb);
    ++hedged_;
    if (!serve::write_with_deadline(hedge_conn->fd, wire,
                                    attempt_timeout_ms)) {
      // The duplicate never reached the hedge backend: charge its breaker
      // and failure counter before falling back to the primary alone.
      pool_.record_failure(hb, now_us());
      hedge_conn.reset();
    }
  }
  if (hedge_conn == nullptr) {
    // Could not hedge after all: keep waiting on the primary alone.
    try {
      frame = serve::read_frame_with_deadline(conn->fd, conn->reader,
                                              attempt_timeout_ms);
    } catch (const serve::ProtocolError&) {
      frame.reset();
    }
    if (frame && validate(*frame)) {
      pool_.record_success(backend);
      pool_.checkin(backend, std::move(conn));
      return true;
    }
    pool_.record_failure(backend, now_us());
    return false;
  }

  const RaceResult race =
      race_frames(*conn, *hedge_conn, attempt_timeout_ms);
  if (race.frame && validate(*race.frame)) {
    const size_t winner = race.winner == 0 ? backend : hb;
    if (race.winner == 1) ++hedge_wins_;
    pool_.record_success(winner);
    // The winner's connection is clean only if its reader is empty; the
    // loser is mid-response and must be dropped either way.
    if (race.winner == 0) {
      pool_.checkin(backend, std::move(conn));
    } else {
      pool_.checkin(hb, std::move(hedge_conn));
    }
    return true;
  }
  // Neither answered in time.
  pool_.record_failure(backend, now_us());
  pool_.record_failure(hb, now_us());
  return false;
}

std::string Router::stats_report() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "router: %llu requests, %llu rerouted, %llu hedged "
                "(%llu hedge wins), %llu exhausted, %llu deadline, "
                "%llu budget-shed\n",
                static_cast<unsigned long long>(requests_.load()),
                static_cast<unsigned long long>(rerouted_.load()),
                static_cast<unsigned long long>(hedged_.load()),
                static_cast<unsigned long long>(hedge_wins_.load()),
                static_cast<unsigned long long>(exhausted_.load()),
                static_cast<unsigned long long>(deadline_exceeded_.load()),
                static_cast<unsigned long long>(budget_shed_.load()));
  std::string out = line;
  std::snprintf(line, sizeof(line),
                "%-28s %-4s %-8s %8s %6s %6s %6s %7s %7s %6s %6s\n",
                "backend", "up", "breaker", "fwd", "fail", "away",
                "hedge", "p_ok", "p_fail", "rshed", "depth");
  out += line;
  for (const BackendSnapshot& s : pool_.stats()) {
    const char* breaker =
        s.breaker == serve::CircuitBreaker::State::kClosed     ? "closed"
        : s.breaker == serve::CircuitBreaker::State::kOpen     ? "open"
                                                               : "half";
    std::snprintf(
        line, sizeof(line),
        "%-28s %-4s %-8s %8llu %6llu %6llu %6llu %7llu %7llu %6llu %6u",
        s.endpoint.c_str(), s.up ? "yes" : "NO", breaker,
        static_cast<unsigned long long>(s.forwards),
        static_cast<unsigned long long>(s.failures),
        static_cast<unsigned long long>(s.reroutes_away),
        static_cast<unsigned long long>(s.hedges),
        static_cast<unsigned long long>(s.probes_ok),
        static_cast<unsigned long long>(s.probes_failed),
        static_cast<unsigned long long>(s.retry_sheds),
        s.last_queue_depth);
    out += line;
    // Active-version labels from the latest health ack, e.g.
    // "lenet-mini@v2" (bare bases print without the @).
    for (const serve::ModelVersionLabel& label : s.versions) {
      out += " " + label.model +
             (label.version.empty() ? std::string() : "@" + label.version);
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// RouterServer
// ---------------------------------------------------------------------------

RouterServer::RouterServer(const RouterOptions& options)
    : pool_(options),
      router_(pool_, options),
      prober_(pool_, options) {
  server_ = std::make_unique<serve::SocketServer>(router_, options.listen,
                                                  options.front);
}

RouterServer::~RouterServer() { stop(); }

void RouterServer::stop() {
  if (server_ != nullptr) server_->stop();
  prober_.stop();
}

void RouterServer::run_until_signal() {
  server_->run_until_signal();
  prober_.stop();
}

}  // namespace qsnc::router
