// The `qsnc router` front tier: one process that load-balances the wire
// protocol over a fleet of backend serving processes.
//
//   clients ──> RouterServer ──> backend qsnc serve processes
//
// Routing: each kInferRequest hashes (model, session) onto a
// consistent-hash ring over the configured backends — requests sharing a
// session key stick to one backend; sessionless requests spread via a
// per-router counter. The ring's clockwise walk gives every key a stable
// fallback order: when the chosen backend is down (health prober), has
// an open breaker, or fails/times out the forward, the router reroutes
// to the next candidate — the client sees one response either way, so a
// SIGKILLed backend costs latency, never an accepted-request drop. Only
// when every backend fails does the client get a structured kError.
//
// Hedging (router_config.h hedge_after_us): interactive requests with a
// quiet primary are duplicated to the next candidate and the first
// response wins, cutting p99 when one backend is slow but alive.
//
// The router speaks the same protocol on both sides: clients need no
// changes beyond the endpoint (SocketClient works unchanged), and
// backends see kForwardInfer frames they execute exactly like direct
// kInferRequests — responses are byte-identical to direct serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "router/backend_pool.h"
#include "router/hash_ring.h"
#include "router/health_prober.h"
#include "router/router_config.h"
#include "serve/server.h"

namespace qsnc::router {

/// The routing FrameHandler: plug into a serve::SocketServer for the
/// listening front. Thread-safe (called from connection handler threads).
class Router : public serve::FrameHandler {
 public:
  /// `pool` must outlive the router.
  Router(BackendPool& pool, const RouterOptions& options);

  bool handle(const serve::Frame& frame, serve::FrameSink& sink) override;

  /// Health table: per-backend up/breaker/forward/probe counters plus
  /// router totals (answers kStatsRequest on the front socket).
  std::string stats_report() const;

  uint64_t requests() const { return requests_.load(); }
  uint64_t rerouted() const { return rerouted_.load(); }
  uint64_t hedged() const { return hedged_.load(); }
  uint64_t hedge_wins() const { return hedge_wins_.load(); }
  uint64_t exhausted() const { return exhausted_.load(); }
  /// Requests answered kDeadlineExceeded because the cross-hop budget
  /// was spent before (or between) forward attempts.
  uint64_t deadline_exceeded() const { return deadline_exceeded_.load(); }
  /// Requests shed because the failing backend's retry budget was dry.
  uint64_t budget_shed() const { return budget_shed_.load(); }

 private:
  bool handle_infer(serve::InferRequest request, serve::FrameSink& sink);
  /// One forward attempt against `backend` (hedging to `hedge_backend`
  /// when >= 0) under `attempt_timeout_ms` (the forward timeout, already
  /// clamped to the request's remaining cross-hop deadline). Fills
  /// `response` and returns true on a valid response.
  bool forward_attempt(size_t backend, int hedge_backend,
                       const serve::InferRequest& request,
                       const std::vector<uint8_t>& wire,
                       int64_t attempt_timeout_ms,
                       serve::InferResponse& response);

  BackendPool& pool_;
  HashRing ring_;
  RouterOptions options_;
  std::atomic<uint64_t> spread_{0};  // sessionless spray counter
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rerouted_{0};
  std::atomic<uint64_t> hedged_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> budget_shed_{0};
};

/// Process-level bundle: backend pool + prober + router + front listener.
class RouterServer {
 public:
  /// Binds the front listener and starts probing. Throws on bind failure
  /// or an empty backend list.
  explicit RouterServer(const RouterOptions& options);
  ~RouterServer();  // stops

  /// Front endpoint actually bound (ephemeral tcp port resolved).
  const serve::Endpoint& endpoint() const { return server_->endpoint(); }

  Router& router() { return router_; }
  BackendPool& pool() { return pool_; }
  HealthProber& prober() { return prober_; }

  void stop();
  void run_until_signal();

 private:
  BackendPool pool_;
  Router router_;
  HealthProber prober_;
  std::unique_ptr<serve::SocketServer> server_;
};

}  // namespace qsnc::router
