// Consistent-hash ring for backend selection.
//
// Each node (a backend, identified by its endpoint spelling) contributes
// `vnodes` points on a 64-bit ring; a request hashes to a point and is
// owned by the first node point at or clockwise of it. Properties the
// router relies on:
//
//   * Determinism — the ring is a pure function of (labels, vnodes), so
//     every router instance over the same fleet routes identically.
//   * Minimal remap — removing a node only moves the keys that node
//     owned; all other (model, session) pins survive membership churn.
//   * Fallback order — pick_n() walks clockwise collecting distinct
//     nodes, giving each key a stable candidate order: the router tries
//     candidate 0, reroutes to 1 on failure, hedges to 1, and so on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qsnc::router {

/// Routing hash of a (model, key) pair — FNV-1a over both strings with a
/// SplitMix64 finalizer so nearby keys land far apart on the ring.
uint64_t route_hash(const std::string& model, const std::string& key);

class HashRing {
 public:
  /// `labels` identify the nodes (backend endpoint spellings); ring
  /// points hash the label, not the index, so reordering or removing
  /// entries never remaps keys owned by surviving nodes. Throws
  /// std::invalid_argument on an empty label set or vnodes < 1.
  HashRing(const std::vector<std::string>& labels, int vnodes);

  /// Index (into the constructor's label vector) owning `hash`.
  size_t pick(uint64_t hash) const;

  /// Up to `n` distinct node indices in clockwise fallback order,
  /// starting with the owner. n >= node count returns every node.
  std::vector<size_t> pick_n(uint64_t hash, size_t n) const;

  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Point {
    uint64_t position;
    size_t node;
  };
  std::vector<Point> ring_;  // sorted by position
  size_t num_nodes_;
};

}  // namespace qsnc::router
