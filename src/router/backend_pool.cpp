#include "router/backend_pool.h"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>

namespace qsnc::router {

using serve::Frame;
using serve::MsgType;

BackendPool::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

BackendPool::BackendPool(const RouterOptions& options) : options_(options) {
  if (options.backends.empty()) {
    throw std::invalid_argument("BackendPool: no backends configured");
  }
  for (const serve::Endpoint& ep : options.backends) {
    backends_.push_back(std::make_unique<Backend>(
        ep, options.breaker_threshold, options.breaker_open_ms * 1000));
  }
}

BackendPool::~BackendPool() = default;

BackendPool::Backend& BackendPool::backend(size_t i) const {
  if (i >= backends_.size()) {
    throw std::out_of_range("BackendPool: bad backend index");
  }
  return *backends_[i];
}

const serve::Endpoint& BackendPool::endpoint(size_t i) const {
  return backend(i).endpoint;
}

std::vector<std::string> BackendPool::labels() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->endpoint.str());
  return out;
}

std::unique_ptr<BackendPool::Conn> BackendPool::checkout(size_t i) {
  Backend& b = backend(i);
  {
    std::lock_guard<std::mutex> lock(b.free_mu);
    if (!b.free.empty()) {
      auto conn = std::move(b.free.back());
      b.free.pop_back();
      return conn;
    }
  }
  // Fresh connection: connect + version handshake as the router role, so
  // a mixed-version fleet fails fast here instead of mis-decoding later.
  auto conn = std::make_unique<Conn>();
  try {
    conn->fd = serve::connect_to(b.endpoint);
  } catch (const std::exception&) {
    return nullptr;
  }
  serve::Hello hello;
  hello.role = serve::PeerRole::kRouter;
  if (!serve::write_with_deadline(conn->fd, serve::encode_hello(hello),
                                  options_.forward_timeout_ms)) {
    return nullptr;
  }
  try {
    const std::optional<Frame> ack = serve::read_frame_with_deadline(
        conn->fd, conn->reader, options_.forward_timeout_ms);
    if (!ack || ack->type != MsgType::kHelloAck) return nullptr;
    const serve::HelloAck decoded = serve::decode_hello_ack(ack->body);
    if (!decoded.accepted || decoded.version != serve::kProtocolVersion) {
      return nullptr;
    }
  } catch (const serve::ProtocolError&) {
    return nullptr;
  }
  return conn;
}

void BackendPool::checkin(size_t i, std::unique_ptr<Conn> conn) {
  if (conn == nullptr || conn->fd < 0) return;
  if (conn->reader.buffered() > 0) {
    // Unconsumed bytes mean the stream state is suspect; don't pool it.
    return;
  }
  Backend& b = backend(i);
  std::lock_guard<std::mutex> lock(b.free_mu);
  b.free.push_back(std::move(conn));
}

bool BackendPool::usable(size_t i, int64_t now_us) const {
  Backend& b = backend(i);
  return b.up.load(std::memory_order_relaxed) &&
         b.breaker.would_allow(now_us);
}

bool BackendPool::admit(size_t i, int64_t now_us) {
  return backend(i).breaker.allow(now_us);
}

bool BackendPool::up(size_t i) const {
  return backend(i).up.load(std::memory_order_relaxed);
}

void BackendPool::record_success(size_t i) {
  backend(i).breaker.on_success();
}

void BackendPool::record_failure(size_t i, int64_t now_us) {
  Backend& b = backend(i);
  ++b.failures;
  b.breaker.on_failure(now_us);
}

bool BackendPool::take_retry_token(size_t i, int64_t now_us,
                                   int64_t* retry_after_us) {
  const double rate = options_.retry_tokens_per_sec;
  if (rate <= 0.0) return true;  // budget off
  Backend& b = backend(i);
  std::lock_guard<std::mutex> lock(b.retry_mu);
  if (b.retry_refill_us < 0) {
    // First touch: start with a full bucket so a cold router is not
    // stingier than a warm one.
    b.retry_tokens = options_.retry_burst;
    b.retry_refill_us = now_us;
  } else if (now_us > b.retry_refill_us) {
    const double accrued =
        static_cast<double>(now_us - b.retry_refill_us) * rate / 1e6;
    b.retry_tokens = std::min(options_.retry_burst, b.retry_tokens + accrued);
    b.retry_refill_us = now_us;
  }
  if (b.retry_tokens >= 1.0) {
    b.retry_tokens -= 1.0;
    return true;
  }
  b.retry_sheds.fetch_add(1, std::memory_order_relaxed);
  if (retry_after_us != nullptr) {
    *retry_after_us =
        static_cast<int64_t>((1.0 - b.retry_tokens) / rate * 1e6) + 1;
  }
  return false;
}

void BackendPool::record_probe(size_t i, bool ok, uint32_t queue_depth) {
  record_probe(i, ok, queue_depth, {});
}

void BackendPool::record_probe(
    size_t i, bool ok, uint32_t queue_depth,
    const std::vector<serve::ModelVersionLabel>& versions) {
  Backend& b = backend(i);
  if (ok && !versions.empty()) {
    std::lock_guard<std::mutex> lock(b.versions_mu);
    b.versions = versions;
  }
  if (ok) {
    ++b.probes_ok;
    b.consecutive_probe_failures.store(0, std::memory_order_relaxed);
    b.last_queue_depth.store(queue_depth, std::memory_order_relaxed);
    if (!b.up.exchange(true, std::memory_order_relaxed)) {
      // Revived: drop pooled connections from before the outage, and
      // reset the breaker — a successful probe is positive evidence the
      // backend serves again, so holding it open for the remainder of
      // its timer would only fast-fail live traffic.
      b.breaker.reset();
      std::lock_guard<std::mutex> lock(b.free_mu);
      b.free.clear();
    }
  } else {
    ++b.probes_failed;
    const int consecutive =
        b.consecutive_probe_failures.fetch_add(1, std::memory_order_relaxed) +
        1;
    if (consecutive >= options_.probe_down_after) {
      b.up.store(false, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(b.free_mu);
      b.free.clear();
    }
  }
}

void BackendPool::note_forward(size_t i) { ++backend(i).forwards; }
void BackendPool::note_reroute_away(size_t i) {
  ++backend(i).reroutes_away;
}
void BackendPool::note_hedge(size_t i) { ++backend(i).hedges; }

std::vector<BackendSnapshot> BackendPool::stats() const {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) {
    BackendSnapshot s;
    s.endpoint = b->endpoint.str();
    s.up = b->up.load(std::memory_order_relaxed);
    s.breaker = b->breaker.state();
    s.forwards = b->forwards.load(std::memory_order_relaxed);
    s.failures = b->failures.load(std::memory_order_relaxed);
    s.reroutes_away = b->reroutes_away.load(std::memory_order_relaxed);
    s.hedges = b->hedges.load(std::memory_order_relaxed);
    s.probes_ok = b->probes_ok.load(std::memory_order_relaxed);
    s.probes_failed = b->probes_failed.load(std::memory_order_relaxed);
    s.retry_sheds = b->retry_sheds.load(std::memory_order_relaxed);
    s.consecutive_probe_failures =
        b->consecutive_probe_failures.load(std::memory_order_relaxed);
    s.last_queue_depth = b->last_queue_depth.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(b->versions_mu);
      s.versions = b->versions;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace qsnc::router
