#include "serve/rollout.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "nn/rng.h"
#include "serve/server.h"

namespace qsnc::serve {

namespace {

std::string percent(uint64_t part, uint64_t whole) {
  if (whole == 0) return "-";
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << (100.0 * static_cast<double>(part) /
                        static_cast<double>(whole))
      << '%';
  return out.str();
}

}  // namespace

const char* rollout_state_name(RolloutState state) {
  switch (state) {
    case RolloutState::kIdle: return "idle";
    case RolloutState::kShadow: return "shadow";
    case RolloutState::kPromoted: return "promoted";
    case RolloutState::kRolledBack: return "rolled-back";
  }
  return "?";
}

RolloutController::RolloutController(ServeCore& core,
                                     const RolloutOptions& options)
    : core_(core), options_(options) {
  if (options_.compare_queue_capacity < 1) options_.compare_queue_capacity = 1;
  if (options_.canary_images < 1) options_.canary_images = 1;
  if (options_.canary_interval_ms < 1) options_.canary_interval_ms = 1;
  worker_ = std::thread([this] { loop(); });
}

RolloutController::~RolloutController() { drain(); }

RolloutReply RolloutController::begin(const std::string& green_key) {
  const ModelRegistry& registry = core_.registry();
  const std::string resolved = registry.resolve(green_key);
  if (resolved.empty()) {
    return {false, "rollout: unknown version '" + green_key + "'"};
  }
  const auto [base, version] = split_versioned_name(resolved);
  (void)version;
  const std::string blue = registry.active_key(base);
  if (blue.empty()) {
    return {false, "rollout: base '" + base + "' has no active version"};
  }
  if (blue == resolved) {
    return {false, "rollout: '" + resolved +
                       "' is already the active version of '" + base + "'"};
  }
  VersionState state = registry.state(resolved);
  if (state == VersionState::kQuarantined) {
    return {false, "rollout: '" + resolved +
                       "' is quarantined; load a new version instead"};
  }
  if (!(registry.input_shape(resolved) == registry.input_shape(blue))) {
    return {false, "rollout: input shape of '" + resolved +
                       "' does not match active '" + blue + "'"};
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == RolloutState::kShadow) {
    return {false, "rollout: '" + green_key + "' rejected; rollout of '" +
                       green_ +
                       "' is still in progress (promote or rollback first)"};
  }
  base_ = base;
  blue_ = blue;
  green_ = resolved;
  reason_.clear();
  compared_ = agreed_ = diverged_ = incomparable_ = 0;
  shadow_skipped_ = canary_rounds_ok_ = canary_diverged_ = 0;
  state_ = RolloutState::kShadow;
  core_.registry().set_state(resolved, VersionState::kShadow);
  shadow_active_.store(true, std::memory_order_release);
  cv_.notify_all();  // wake the worker into its canary cadence
  return {true, "rollout: shadowing " + resolved + " against " + blue};
}

RolloutReply RolloutController::promote(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!name.empty() && name != green_ && name != base_ && name != blue_) {
    return {false, "rollout: no rollout for '" + name + "'"};
  }
  switch (state_) {
    case RolloutState::kIdle:
      return {false, "rollout: nothing to promote (no rollout started)"};
    case RolloutState::kPromoted:
      return {false, "rollout: '" + green_ +
                         "' is already promoted (double-promote rejected)"};
    case RolloutState::kRolledBack:
      return {false, "rollout: '" + green_ + "' was rolled back (" + reason_ +
                         "); load a new version instead"};
    case RolloutState::kShadow: break;
  }
  promote_locked("operator promote");
  return {true, "rollout: promoted " + green_ + " (now active for '" + base_ +
                    "'); " + blue_ + " demoted to standby"};
}

RolloutReply RolloutController::rollback(const std::string& name,
                                         const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!name.empty() && name != green_ && name != base_ && name != blue_) {
    return {false, "rollout: no rollout for '" + name + "'"};
  }
  switch (state_) {
    case RolloutState::kIdle:
      return {false, "rollout: nothing to roll back (no rollout started)"};
    case RolloutState::kPromoted:
      return {false,
              "rollout: '" + green_ +
                  "' was already promoted; rollback-after-promote is "
                  "rejected — load a new version to roll forward"};
    case RolloutState::kRolledBack:
      return {false, "rollout: '" + green_ + "' is already rolled back (" +
                         reason_ + ")"};
    case RolloutState::kShadow: break;
  }
  rollback_locked(reason.empty() ? "operator rollback" : reason);
  return {true, "rollout: rolled back " + green_ + " (" + reason_ +
                    "); quarantined, " + blue_ + " keeps serving"};
}

std::optional<std::future<Response>> RolloutController::maybe_shadow(
    const std::string& resolved_key, nn::Tensor& image, uint64_t deadline_us,
    Priority priority) {
  if (!shadow_active_.load(std::memory_order_acquire)) return std::nullopt;

  std::string blue;
  std::string green;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != RolloutState::kShadow || resolved_key != blue_) {
      return std::nullopt;
    }
    if (!sample_shadow(priority)) {
      ++shadow_skipped_;
      return std::nullopt;
    }
    blue = blue_;
    green = green_;
  }

  CompareJob job;
  std::future<Response> client = job.client.get_future();
  // Green gets its copy first so the move below cannot race the copy.
  nn::Tensor copy = image;
  job.blue = core_.submit_to(blue, std::move(image), deadline_us, priority);
  job.green =
      core_.submit_to(green, std::move(copy), deadline_us, priority);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_ ||
        queue_.size() >=
            static_cast<size_t>(options_.compare_queue_capacity)) {
      // Comparator saturated: answer from blue directly, skip the compare.
      std::lock_guard<std::mutex> lk2(mu_);
      ++shadow_skipped_;
      return std::optional<std::future<Response>>(std::move(job.blue));
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return std::optional<std::future<Response>>(std::move(client));
}

RolloutReport RolloutController::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return report_locked();
}

RolloutReport RolloutController::report_locked() const {
  RolloutReport r;
  r.state = state_;
  r.base = base_;
  r.blue = blue_;
  r.green = green_;
  r.compared = compared_;
  r.agreed = agreed_;
  r.diverged = diverged_;
  r.incomparable = incomparable_;
  r.shadow_skipped = shadow_skipped_;
  r.canary_rounds_ok = canary_rounds_ok_;
  r.canary_diverged = canary_diverged_;
  r.reason = reason_;
  return r;
}

std::string RolloutController::status_text(const std::string& name) const {
  const RolloutReport r = report();
  if (r.state == RolloutState::kIdle) return "";
  if (!name.empty() && name != r.base && name != r.green && name != r.blue) {
    return "";
  }
  std::ostringstream out;
  out << "rollout " << r.base << ": " << rollout_state_name(r.state)
      << " blue=" << r.blue << " green=" << r.green << "\n"
      << "  shadow: compared " << r.compared << " (agreed " << r.agreed
      << ", diverged " << r.diverged << " = "
      << percent(r.diverged, r.compared) << ", incomparable "
      << r.incomparable << ", skipped " << r.shadow_skipped << ")\n"
      << "  canary: " << r.canary_rounds_ok << " clean rounds, "
      << r.canary_diverged << " diverged\n"
      << "  reason: " << (r.reason.empty() ? "-" : r.reason) << "\n";
  return out.str();
}

void RolloutController::drain() {
  std::lock_guard<std::mutex> join(join_mu_);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  shadow_active_.store(false, std::memory_order_release);
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Flush whatever the worker left: every queued client still gets blue's
  // answer (the batchers resolve all accepted futures on drain).
  std::deque<CompareJob> leftover;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    leftover.swap(queue_);
  }
  for (CompareJob& job : leftover) {
    job.client.set_value(job.blue.get());
  }
}

void RolloutController::loop() {
  const auto interval = std::chrono::milliseconds(options_.canary_interval_ms);
  auto next_canary = std::chrono::steady_clock::now() + interval;
  for (;;) {
    std::deque<CompareJob> batch;
    bool shadowing = false;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      {
        std::lock_guard<std::mutex> state_lk(mu_);
        shadowing = state_ == RolloutState::kShadow;
      }
      if (shadowing) {
        cv_.wait_until(lk, next_canary,
                       [this] { return stopping_ || !queue_.empty(); });
      } else {
        cv_.wait(lk, [this, &shadowing] {
          if (stopping_ || !queue_.empty()) return true;
          std::lock_guard<std::mutex> state_lk(mu_);
          shadowing = state_ == RolloutState::kShadow;
          return shadowing;
        });
        next_canary = std::chrono::steady_clock::now() + interval;
      }
      if (stopping_) return;
      batch.swap(queue_);
    }
    for (CompareJob& job : batch) process_job(job);

    if (shadowing && std::chrono::steady_clock::now() >= next_canary) {
      std::string blue;
      std::string green;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (state_ == RolloutState::kShadow) {
          blue = blue_;
          green = green_;
        }
      }
      if (!blue.empty()) run_canary_round(blue, green);
      next_canary = std::chrono::steady_clock::now() + interval;
    }
  }
}

void RolloutController::process_job(CompareJob& job) {
  const Response blue = job.blue.get();
  // The client is answered the instant blue lands; green's (possibly
  // slower) result only feeds the comparison.
  job.client.set_value(blue);
  const Response green = job.green.get();

  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != RolloutState::kShadow) return;  // decision already made
  if (blue.status == Status::kOk && green.status == Status::kOk) {
    ++compared_;
    if (blue.prediction == green.prediction) {
      ++agreed_;
    } else {
      ++diverged_;
    }
  } else {
    ++incomparable_;
  }
  evaluate_locked();
}

void RolloutController::run_canary_round(const std::string& blue_key,
                                         const std::string& green_key) {
  // The replica-health idiom one level up: a fixed battery of
  // deterministic images (same seed every round) asked of both versions
  // at kCanary priority, off the client path entirely.
  nn::Shape shape;
  try {
    shape = core_.registry().input_shape(blue_key);
  } catch (const std::exception&) {
    return;  // registry changed under us; next round re-reads
  }
  nn::Rng rng(options_.canary_seed);
  std::vector<std::pair<std::future<Response>, std::future<Response>>> pairs;
  pairs.reserve(static_cast<size_t>(options_.canary_images));
  for (int i = 0; i < options_.canary_images; ++i) {
    nn::Tensor image(shape);
    for (int64_t j = 0; j < image.numel(); ++j) image[j] = rng.uniform();
    nn::Tensor copy = image;
    auto fb = core_.submit_to(blue_key, std::move(image), /*deadline_us=*/0,
                              Priority::kCanary);
    auto fg = core_.submit_to(green_key, std::move(copy), /*deadline_us=*/0,
                              Priority::kCanary);
    pairs.emplace_back(std::move(fb), std::move(fg));
  }
  uint64_t round_compared = 0;
  uint64_t round_diverged = 0;
  uint64_t round_incomparable = 0;
  for (auto& [fb, fg] : pairs) {
    const Response blue = fb.get();
    const Response green = fg.get();
    if (blue.status == Status::kOk && green.status == Status::kOk) {
      ++round_compared;
      if (blue.prediction != green.prediction) ++round_diverged;
    } else {
      ++round_incomparable;
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != RolloutState::kShadow) return;
  canary_diverged_ += round_diverged;
  // A round only counts as clean when every image compared and agreed —
  // a shed or deadline-hit battery tells us nothing about green.
  if (round_diverged == 0 && round_incomparable == 0 && round_compared > 0) {
    ++canary_rounds_ok_;
  }
  evaluate_locked();
}

void RolloutController::evaluate_locked() {
  if (!options_.auto_decide || state_ != RolloutState::kShadow) return;
  if (canary_diverged_ > 0) {
    rollback_locked("canary battery diverged (" +
                    std::to_string(canary_diverged_) +
                    " image(s) predicted differently on " + green_ + ")");
    return;
  }
  const double ratio =
      compared_ == 0 ? 0.0
                     : static_cast<double>(diverged_) /
                           static_cast<double>(compared_);
  if (compared_ >= static_cast<uint64_t>(options_.min_compared_for_rollback) &&
      ratio > options_.max_divergence) {
    rollback_locked("shadow divergence " + std::to_string(diverged_) + "/" +
                    std::to_string(compared_) + " above threshold");
    return;
  }
  if (compared_ >= static_cast<uint64_t>(options_.observe_requests) &&
      canary_rounds_ok_ >= static_cast<uint64_t>(options_.canary_rounds) &&
      ratio <= options_.max_divergence) {
    promote_locked("auto-promoted: " + std::to_string(agreed_) + "/" +
                   std::to_string(compared_) + " agreed, " +
                   std::to_string(canary_rounds_ok_) +
                   " clean canary round(s)");
  }
}

void RolloutController::promote_locked(const std::string& reason) {
  core_.registry().set_active(base_, green_);  // demotes blue to standby
  core_.journal_promote(base_, green_);
  state_ = RolloutState::kPromoted;
  reason_ = reason;
  shadow_active_.store(false, std::memory_order_release);
}

void RolloutController::rollback_locked(const std::string& reason) {
  core_.registry().set_state(green_, VersionState::kQuarantined);
  core_.journal_rollback(green_, reason);
  state_ = RolloutState::kRolledBack;
  reason_ = reason;
  shadow_active_.store(false, std::memory_order_release);
}

bool RolloutController::sample_shadow(Priority priority) {
  if (options_.shadow_all_canary && priority == Priority::kCanary) {
    return true;
  }
  const double f = options_.shadow_fraction;
  if (f <= 0.0) return false;
  if (f >= 1.0) return true;
  // Deterministic fixed-point sampling: request n is taken exactly when
  // floor((n+1)*f) advances past floor(n*f) — no RNG, exact long-run rate.
  const uint64_t n = sample_counter_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<uint64_t>(static_cast<double>(n + 1) * f) !=
         static_cast<uint64_t>(static_cast<double>(n) * f);
}

}  // namespace qsnc::serve
