// Listener/connector abstraction under the serving socket layer: the same
// length-prefixed protocol (protocol.h) runs over either an AF_UNIX
// stream socket or a TCP socket. Endpoints are spelled
//
//   unix:/path/to.sock     — AF_UNIX stream socket at that path
//   tcp:host:port          — TCP on host:port (port 0 = ephemeral; read
//                            the bound port back with local_endpoint())
//   /bare/path             — shorthand for unix:/bare/path (historical
//                            --socket flag compatibility)
//
// listen_on()/connect_to() hide the address-family differences (stale
// unix socket unlink, SO_REUSEADDR, TCP_NODELAY for the small
// request/response frames) and return plain fds, so SocketServer,
// SocketClient, and the router tier all share one code path. The
// deadline-bounded frame I/O helpers at the bottom are what the router
// uses to talk to backends without ever blocking a handler thread
// forever on a dead peer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace qsnc::serve {

enum class EndpointKind : uint8_t { kUnix = 0, kTcp = 1 };

struct Endpoint {
  EndpointKind kind = EndpointKind::kUnix;
  std::string path;    // unix socket path (kUnix)
  std::string host;    // numeric or resolvable host (kTcp)
  uint16_t port = 0;   // kTcp; 0 asks the kernel for an ephemeral port

  /// Canonical spelling ("unix:/x" | "tcp:host:port").
  std::string str() const;

  bool operator==(const Endpoint& other) const {
    return kind == other.kind && path == other.path &&
           host == other.host && port == other.port;
  }
};

/// Parses "unix:/path", "tcp:host:port", or a bare "/path" (treated as
/// unix). Throws std::invalid_argument on anything else (bad port,
/// missing host, unknown scheme).
Endpoint parse_endpoint(const std::string& spec);

/// Parses a comma-separated endpoint list ("tcp:a:1,unix:/b"). Throws on
/// an empty list or any malformed element.
std::vector<Endpoint> parse_endpoint_list(const std::string& csv);

/// Binds + listens. Unlinks a stale unix socket file first; sets
/// SO_REUSEADDR for tcp. Throws std::runtime_error on failure.
int listen_on(const Endpoint& endpoint, int backlog);

/// The endpoint a listening fd is actually bound to — resolves an
/// ephemeral tcp port (port 0) to the kernel-assigned one.
Endpoint local_endpoint(int listen_fd, const Endpoint& requested);

/// Blocking connect. Sets TCP_NODELAY on tcp sockets (the protocol is
/// small request/response frames; Nagle only adds latency). Throws
/// std::runtime_error on failure.
int connect_to(const Endpoint& endpoint);

// ---------------------------------------------------------------------------
// Deadline-bounded frame I/O (router <-> backend plumbing)
// ---------------------------------------------------------------------------

/// Writes all of `bytes` within `timeout_ms` (0 = no deadline), polling
/// for writability instead of blocking. Returns false on a hit deadline
/// or a dead peer.
bool write_with_deadline(int fd, const std::vector<uint8_t>& bytes,
                         int64_t timeout_ms);

/// Reads until `reader` yields one complete frame or `timeout_ms`
/// elapses (0 = no deadline). Returns nullopt on deadline, EOF, or a
/// socket error; throws ProtocolError on malformed framing (caller
/// decides whether that drops the connection).
std::optional<Frame> read_frame_with_deadline(int fd, FrameReader& reader,
                                              int64_t timeout_ms);

}  // namespace qsnc::serve
