// Serving front-ends: the in-process core/client and the unix-domain-
// socket server.
//
//   ServeCore     — registry + one MicroBatcher per model + aggregated
//                   stats. This is the whole serving data plane; both
//                   front-ends are thin shells around it.
//   ServeClient   — in-process client facade (tests, benches, loadgen
//                   --in-process) with sync and async submission.
//   SocketServer  — AF_UNIX/SOCK_STREAM listener speaking the protocol.h
//                   framing. One handler thread per connection; each
//                   connection is a synchronous request/response stream,
//                   so client-side concurrency = number of connections.
//   SocketClient  — blocking client for one connection (loadgen threads
//                   each own one).
//
// Shutdown discipline (the "zero dropped on shutdown" contract):
// SocketServer::stop() first closes the listener (no new connections),
// then half-closes every connection for reading — a handler mid-request
// still writes its response — joins the handlers, and finally drains the
// batchers, which completes every accepted request before the threads
// exit. run_until_signal() wires SIGINT/SIGTERM to exactly this sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace qsnc::serve {

class ServeCore {
 public:
  /// Creates one MicroBatcher per model currently in `registry` (register
  /// models first). `registry` must outlive the core.
  ServeCore(const ModelRegistry& registry, const BatchOptions& options);
  ~ServeCore();  // drains

  /// Never blocks; unknown models resolve immediately with kError.
  /// `deadline_us` > 0 is a per-request latency budget (see
  /// MicroBatcher::submit); 0 means no deadline.
  std::future<Response> infer_async(const std::string& model,
                                    nn::Tensor image,
                                    uint64_t deadline_us = 0);
  /// Blocking convenience around infer_async.
  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0);

  /// Stops admission and completes all accepted requests. Idempotent.
  void drain();

  const ModelRegistry& registry() const { return registry_; }
  MicroBatcher& batcher(const std::string& model);

  std::vector<ModelStatsSnapshot> stats() const;
  std::string stats_report() const;

 private:
  const ModelRegistry& registry_;
  std::map<std::string, std::unique_ptr<MicroBatcher>> batchers_;
};

/// In-process client used by tests and the load generator.
class ServeClient {
 public:
  explicit ServeClient(ServeCore& core) : core_(core) {}

  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0) {
    return core_.infer(model, std::move(image), deadline_us);
  }
  std::future<Response> infer_async(const std::string& model,
                                    nn::Tensor image,
                                    uint64_t deadline_us = 0) {
    return core_.infer_async(model, std::move(image), deadline_us);
  }
  std::string stats() const { return core_.stats_report(); }

 private:
  ServeCore& core_;
};

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking a stale socket file
  /// first) and starts the accept thread. Throws std::runtime_error on
  /// bind/listen failure.
  SocketServer(ServeCore& core, std::string socket_path);
  ~SocketServer();  // stops

  const std::string& socket_path() const { return socket_path_; }

  /// Graceful shutdown; see the header comment. Idempotent.
  void stop();

  /// Serves until SIGINT/SIGTERM, then stop()s. Installs its handlers for
  /// the call's duration; only one instance may run this at a time.
  void run_until_signal();

  /// Connections accepted so far (diagnostics).
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  struct Connection;
  void accept_loop();
  void handle_connection(Connection* connection);
  void reap_finished();

  ServeCore& core_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes concurrent stop() calls
  bool stopped_ = false;
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

class SocketClient {
 public:
  /// Connects to a SocketServer. Throws std::runtime_error on failure.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Blocking request/response. Throws std::runtime_error if the server
  /// closes the connection mid-request. `deadline_us` > 0 bounds how long
  /// the request may wait server-side before a structured
  /// kDeadlineExceeded rejection.
  Response infer(const std::string& model, const nn::Tensor& image,
                 uint64_t deadline_us = 0);

  /// Server-rendered stats table.
  std::string stats();

 private:
  Frame roundtrip(const std::vector<uint8_t>& frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace qsnc::serve
