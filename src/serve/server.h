// Serving front-ends: the in-process core/client and the socket server.
//
//   ServeCore     — registry + per-model shard pools (N MicroBatcher
//                   lanes per model, each over its own identically-built
//                   backend) + aggregated stats. This is the whole
//                   serving data plane; both front-ends are thin shells
//                   around it.
//   ServeClient   — in-process client facade (tests, benches, loadgen
//                   --in-process) with sync and async submission.
//   FrameHandler  — what a front-end does with each decoded frame. The
//                   SocketServer owns transport concerns (framing,
//                   deadlines, chaos, shutdown); the handler owns
//                   semantics. ServeFrameHandler answers infer/stats/
//                   hello/health against a ServeCore; the router tier
//                   (src/router) plugs in its forwarding handler here.
//   SocketServer  — listener speaking the protocol.h framing over a
//                   unix or TCP endpoint (serve/transport.h). One
//                   handler thread per connection; each connection is a
//                   synchronous request/response stream, so client-side
//                   concurrency = number of connections.
//   SocketClient  — blocking client for one connection (loadgen threads
//                   each own one), over either transport.
//
// Shard pools: ModelConfig::shards > 1 gives a model N batcher+backend
// lanes. Every lane is built from the same seed/checkpoint, so
// predictions are bit-identical regardless of which lane serves a
// request; ServeCore spreads submissions with deterministic
// power-of-two-choices (round-robin candidate vs its successor, shorter
// queue wins, tie -> lower index). The admission ladder (breaker,
// concurrency cap, CoDel shedding) applies per lane with the same
// options — the shared-ladder idiom generalized from the snc backend's
// replica pool so fp32/quant backends shard too.
//
// Slow-client defense (SocketServerOptions): every connection runs under
// read/write deadlines so one stalled or malicious peer can never wedge a
// handler thread — a peer that stalls mid-frame is reaped at
// read_timeout_ms, a connection with no traffic at idle_timeout_ms, and a
// peer that stops reading its responses is cut off at write_timeout_ms
// (sends are non-blocking + poll, never an unbounded blocking send). The
// FrameReader additionally bounds per-connection buffered bytes
// (protocol.h kMaxBufferedBytes), and max_connections caps handler
// threads: excess connections are accepted and immediately closed. The
// chaos injector (when set) perturbs this path with torn frames, stalls,
// and mid-frame disconnects — see serve/chaos.h.
//
// Shutdown discipline (the "zero dropped on shutdown" contract):
// SocketServer::stop() first closes the listener (no new connections),
// then half-closes every connection for reading — a handler mid-request
// still writes its response (bounded by write_timeout_ms) — joins the
// handlers, and finally tells the frame handler to stop (ServeCore
// drains its batchers, completing every accepted request before the
// threads exit). run_until_signal() wires SIGINT/SIGTERM to exactly this
// sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/chaos.h"
#include "serve/journal.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/rollout.h"
#include "serve/transport.h"

namespace qsnc::serve {

/// What attach_journal recovered and reconciled from a prior life of this
/// node (see serve/journal.h for the file format).
struct JournalReconcileReport {
  uint64_t records_replayed = 0;
  uint64_t applied = 0;   // transitions re-applied against the registry
  uint64_t skipped = 0;   // already satisfied (e.g. boot-registered keys)
  bool tail_dropped = false;
  std::string tail_reason;
  /// Per-record apply failures (bad architecture, corrupt checkpoint
  /// image, ...) — reported, never fatal: the node serves what it can.
  std::vector<std::string> errors;

  std::string to_string() const;
};

class ServeCore {
 public:
  /// Creates one MicroBatcher lane per model shard currently in
  /// `registry` (register models first; hot-loaded versions join via
  /// load_version/add_model). `registry` must outlive the core; so must
  /// `options.chaos` when set. `rollout_options` tunes the blue/green
  /// controller behind load_version (see serve/rollout.h).
  ServeCore(ModelRegistry& registry, const BatchOptions& options,
            const RolloutOptions& rollout_options = {});
  ~ServeCore();  // drains

  /// Never blocks; unknown models resolve immediately with kError, as do
  /// explicit requests for a quarantined version. Bare names serve the
  /// base's active version (resolved per request, so a promote flips new
  /// traffic while admitted requests finish on their version).
  /// `deadline_us` > 0 is a per-request latency budget (see
  /// MicroBatcher::submit); 0 means no deadline. `priority` orders both
  /// service and overload shedding (serve/admission.h). Sharded models
  /// spread over their lanes (power-of-two-choices, see header comment).
  std::future<Response> infer_async(
      const std::string& model, nn::Tensor image, uint64_t deadline_us = 0,
      Priority priority = Priority::kInteractive);
  /// Blocking convenience around infer_async.
  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive);

  /// Direct-to-version submission: `key` must be a registered registry
  /// key; no resolve, no shadow hook (this is what the rollout controller
  /// itself uses to reach blue and green).
  std::future<Response> submit_to(const std::string& key, nn::Tensor image,
                                  uint64_t deadline_us, Priority priority);

  /// Builds batcher lanes for a version registered after construction
  /// (the hot-load path). Idempotent for keys that already have lanes.
  void add_model(const std::string& key);

  /// The whole kLoadVersion apply step: registers the version from its
  /// in-memory checkpoint (validated; a corrupt image fails structurally
  /// with the registry untouched), builds its lanes, then either
  /// activates it (first version of a new base) or starts a shadow
  /// rollout against the base's active version.
  RolloutReply load_version(const LoadVersionRequest& request);

  /// Attaches the durable state journal at `path`: replays existing
  /// records — reconciling the registry to its pre-crash active versions
  /// (hot-loaded entries rebuilt from their journaled checkpoint images,
  /// promote/rollback transitions re-applied; torn tails dropped) — then
  /// compacts the file and journals every subsequent state transition.
  /// Call once, before traffic flows; boot-registered models are not
  /// journaled (the boot flags recreate them). `chaos` (may be null, must
  /// outlive the core) supplies the seeded torn-append fault. Throws
  /// std::runtime_error when `path` exists but is not a journal.
  JournalReconcileReport attach_journal(const std::string& path,
                                        ChaosInjector* chaos = nullptr);

  /// The attached journal (null when attach_journal was never called).
  const Journal* journal() const { return journal_.get(); }

  /// Journal hooks — no-ops without an attached journal. The rollout
  /// controller calls the first two under its own lock; the snc replica
  /// health monitor drives the third via its quarantine hook.
  void journal_promote(const std::string& base, const std::string& key);
  void journal_rollback(const std::string& key, const std::string& reason);
  void journal_replica_quarantine(const std::string& model, uint32_t replica,
                                  const std::string& reason);

  /// Stops admission and completes all accepted requests (rollout
  /// comparator first, then every lane). Idempotent.
  void drain();

  const ModelRegistry& registry() const { return registry_; }
  ModelRegistry& registry() { return registry_; }
  RolloutController& rollout() { return *rollout_; }

  /// Lane accessors; the single-argument form is lane 0 (compatible with
  /// the pre-shard API).
  MicroBatcher& batcher(const std::string& model) {
    return batcher(model, 0);
  }
  MicroBatcher& batcher(const std::string& model, size_t lane);
  size_t num_lanes(const std::string& model) const;

  /// Total queued requests across every model and lane (the load figure
  /// reported in health acks).
  size_t total_queue_depth() const;

  std::vector<ModelStatsSnapshot> stats() const;
  std::string stats_report() const;

 private:
  struct ModelLanes {
    std::vector<std::unique_ptr<MicroBatcher>> lanes;
    std::atomic<uint64_t> rr{0};  // power-of-two-choices cursor
  };

  void add_model_locked(const std::string& key);  // callers hold models_mu_
  ModelLanes* find_lanes(const std::string& key) const;
  /// Registers + builds lanes for a hot-load request (shared by the live
  /// load_version path and journal replay). Returns "" on success, the
  /// structured failure otherwise; the registry is untouched on failure.
  std::string register_version(const LoadVersionRequest& request);
  /// Records a successful hot-load in the journal (callers: load_version
  /// and replay). No-op without a journal.
  void journal_load(const LoadVersionRequest& request, bool append);
  /// Installs the replica-quarantine journal hook on `key`'s snc shards.
  void install_quarantine_hooks(const std::string& key);
  /// Canonical snapshot of journaled state for compaction: every
  /// journaled load in order, then the promotes/rollbacks that reproduce
  /// the current active/quarantined pointers. Callers hold journal_mu_.
  std::vector<JournalRecord> journal_snapshot_locked() const;

  ModelRegistry& registry_;
  BatchOptions batch_options_;
  /// Guards the models_ map shape (hot-loads add entries); lane pointers
  /// are stable once inserted, so the submit path only holds this shared.
  mutable std::shared_mutex models_mu_;
  std::map<std::string, std::unique_ptr<ModelLanes>> models_;
  std::unique_ptr<RolloutController> rollout_;

  /// Durable state journal (null until attach_journal). journal_mu_
  /// guards the journaled-load list and quarantine-reason map; the
  /// Journal serializes its own appends.
  std::unique_ptr<Journal> journal_;
  mutable std::mutex journal_mu_;
  std::vector<std::pair<std::string, LoadVersionRequest>> journal_loads_;
  std::map<std::string, std::string> journal_quarantine_reasons_;
};

/// In-process client used by tests and the load generator.
class ServeClient {
 public:
  explicit ServeClient(ServeCore& core) : core_(core) {}

  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive) {
    return core_.infer(model, std::move(image), deadline_us, priority);
  }
  std::future<Response> infer_async(
      const std::string& model, nn::Tensor image, uint64_t deadline_us = 0,
      Priority priority = Priority::kInteractive) {
    return core_.infer_async(model, std::move(image), deadline_us,
                             priority);
  }
  std::string stats() const { return core_.stats_report(); }

 private:
  ServeCore& core_;
};

/// Per-connection send interface handed to FrameHandler::handle. send()
/// returns false when the connection should be dropped (write deadline
/// hit, peer gone, or injected mid-frame disconnect).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual bool send(const std::vector<uint8_t>& frame) = 0;
};

/// Semantics behind a SocketServer: one call per decoded frame. Return
/// false (or let a ProtocolError escape) to drop the connection. Called
/// concurrently from connection handler threads — implementations must
/// be thread-safe.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual bool handle(const Frame& frame, FrameSink& sink) = 0;
  /// Called exactly once from SocketServer::stop() after every
  /// connection handler has been joined (the drain hook).
  virtual void on_stop() {}
};

/// The serving-node handler: kInferRequest / kForwardInfer execute
/// against the core, kStatsRequest renders the stats table, kHello
/// negotiates the protocol version, kHealthProbe reports liveness,
/// total queue depth, and per-base active-version labels. The v5
/// control frames (kLoadVersion / kPromote / kRollback /
/// kRolloutStatus) drive the model lifecycle and always answer with a
/// kRolloutReply — ok=0 carries the structured failure and means core
/// state was untouched.
class ServeFrameHandler : public FrameHandler {
 public:
  explicit ServeFrameHandler(ServeCore& core) : core_(core) {}
  bool handle(const Frame& frame, FrameSink& sink) override;
  void on_stop() override { core_.drain(); }

 private:
  ServeCore& core_;
};

struct SocketServerOptions {
  /// Reap a connection stalled mid-frame (partial frame buffered, no new
  /// bytes) after this long. 0 = never.
  int64_t read_timeout_ms = 5000;
  /// Reap a connection with no buffered partial frame and no traffic
  /// after this long. 0 = never.
  int64_t idle_timeout_ms = 60000;
  /// Abort a response write that cannot make progress (peer not reading)
  /// after this long. 0 = never (not recommended: an unbounded send can
  /// stall shutdown on one dead peer).
  int64_t write_timeout_ms = 5000;
  /// Max simultaneous connections; excess ones are accepted and
  /// immediately closed. 0 = unlimited.
  int max_connections = 256;
  /// Socket-level fault injector (torn frames, stalls, mid-frame
  /// disconnects); not owned, may be null. Must outlive the server.
  ChaosInjector* chaos = nullptr;
};

class SocketServer {
 public:
  /// Serve-node convenience: listens on `endpoint_spec` (any
  /// parse_endpoint spelling) and answers with an internal
  /// ServeFrameHandler over `core`. Throws std::runtime_error on
  /// bind/listen failure.
  SocketServer(ServeCore& core, const std::string& endpoint_spec,
               const SocketServerOptions& options = {});

  /// Generic front-end: `handler` supplies the semantics (the router
  /// tier uses this). `handler` must outlive the server.
  SocketServer(FrameHandler& handler, const Endpoint& endpoint,
               const SocketServerOptions& options = {});

  ~SocketServer();  // stops

  /// The endpoint actually bound — an ephemeral tcp port (port 0) is
  /// resolved to the kernel-assigned one.
  const Endpoint& endpoint() const { return endpoint_; }
  /// Endpoint spelling (kept for the historical unix-path accessor).
  std::string socket_path() const { return endpoint_.str(); }

  /// Graceful shutdown; see the header comment. Idempotent.
  void stop();

  /// Serves until SIGINT/SIGTERM, then stop()s. Installs its handlers for
  /// the call's duration; only one instance may run this at a time.
  void run_until_signal();

  /// Connections accepted so far (diagnostics).
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  /// Connections reaped by a read/idle/write deadline (diagnostics).
  uint64_t connections_reaped() const { return connections_reaped_.load(); }
  /// Connections refused because max_connections was reached.
  uint64_t connections_rejected() const {
    return connections_rejected_.load();
  }

 private:
  struct Connection;
  void start();
  void accept_loop();
  void handle_connection(Connection* connection);
  void reap_finished();
  /// Sends one encoded frame under the write deadline and the chaos write
  /// plan. Returns false when the connection should be dropped (write
  /// deadline hit, peer gone, or injected mid-frame disconnect).
  bool send_frame(Connection* connection,
                  const std::vector<uint8_t>& bytes);

  std::unique_ptr<ServeFrameHandler> owned_handler_;  // core-ctor only
  FrameHandler& handler_;
  Endpoint endpoint_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes concurrent stop() calls
  bool stopped_ = false;
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

class SocketClient {
 public:
  /// Connects to a server at `endpoint_spec` (any parse_endpoint
  /// spelling). Throws std::runtime_error on failure.
  explicit SocketClient(const std::string& endpoint_spec);
  explicit SocketClient(const Endpoint& endpoint);
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Blocking request/response. Throws std::runtime_error if the server
  /// closes the connection mid-request. `deadline_us` > 0 bounds how long
  /// the request may wait server-side before a structured
  /// kDeadlineExceeded rejection; `priority` is the request's admission
  /// class. `session` is the optional router affinity key (ignored by a
  /// directly-addressed serving node). Performs the kHello handshake
  /// before the first request (servers reject un-handshaken infer
  /// frames); throws std::runtime_error if the server refuses the
  /// version.
  Response infer(const std::string& model, const nn::Tensor& image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive,
                 const std::string& session = std::string());

  /// Protocol version handshake: true when the server accepted this
  /// client's kProtocolVersion. infer() runs it implicitly on first use;
  /// call it directly to probe version compatibility without inferring.
  bool handshake(PeerRole role = PeerRole::kClient);

  /// Liveness probe; throws on transport failure or a nonce mismatch.
  HealthAck probe();

  /// Server-rendered stats table.
  std::string stats();

  /// Model-lifecycle control requests (protocol v5). Each performs the
  /// kHello handshake first if needed, and returns the server's
  /// kRolloutReply verbatim — ok=false carries the structured failure
  /// reason (corrupt checkpoint, unknown version, bad transition) and
  /// means server state was left untouched. Throws std::runtime_error
  /// only on transport failures.
  RolloutReply load_version(const LoadVersionRequest& request);
  RolloutReply promote(const std::string& name);
  RolloutReply rollback(const std::string& name,
                        const std::string& reason = std::string());
  RolloutReply rollout_status(const std::string& name = std::string());

  /// Supervisor control request (protocol v6): sends kSuperviseCommand
  /// ("status" | "release <lane>") and returns the kSuperviseReply.
  /// Handshake-gated like the other control frames.
  RolloutReply supervise(const std::string& verb,
                         const std::string& lane = std::string());

 private:
  Frame roundtrip(const std::vector<uint8_t>& frame);
  RolloutReply control_roundtrip(const std::vector<uint8_t>& bytes);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint64_t next_nonce_ = 1;
  bool handshaken_ = false;
  FrameReader reader_;
};

}  // namespace qsnc::serve
