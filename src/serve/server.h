// Serving front-ends: the in-process core/client and the unix-domain-
// socket server.
//
//   ServeCore     — registry + one MicroBatcher per model + aggregated
//                   stats. This is the whole serving data plane; both
//                   front-ends are thin shells around it.
//   ServeClient   — in-process client facade (tests, benches, loadgen
//                   --in-process) with sync and async submission.
//   SocketServer  — AF_UNIX/SOCK_STREAM listener speaking the protocol.h
//                   framing. One handler thread per connection; each
//                   connection is a synchronous request/response stream,
//                   so client-side concurrency = number of connections.
//   SocketClient  — blocking client for one connection (loadgen threads
//                   each own one).
//
// Slow-client defense (SocketServerOptions): every connection runs under
// read/write deadlines so one stalled or malicious peer can never wedge a
// handler thread — a peer that stalls mid-frame is reaped at
// read_timeout_ms, a connection with no traffic at idle_timeout_ms, and a
// peer that stops reading its responses is cut off at write_timeout_ms
// (sends are non-blocking + poll, never an unbounded blocking send). The
// FrameReader additionally bounds per-connection buffered bytes
// (protocol.h kMaxBufferedBytes), and max_connections caps handler
// threads: excess connections are accepted and immediately closed. The
// chaos injector (when set) perturbs this path with torn frames, stalls,
// and mid-frame disconnects — see serve/chaos.h.
//
// Shutdown discipline (the "zero dropped on shutdown" contract):
// SocketServer::stop() first closes the listener (no new connections),
// then half-closes every connection for reading — a handler mid-request
// still writes its response (bounded by write_timeout_ms) — joins the
// handlers, and finally drains the batchers, which completes every
// accepted request before the threads exit. run_until_signal() wires
// SIGINT/SIGTERM to exactly this sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/chaos.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace qsnc::serve {

class ServeCore {
 public:
  /// Creates one MicroBatcher per model currently in `registry` (register
  /// models first). `registry` must outlive the core; so must
  /// `options.chaos` when set.
  ServeCore(const ModelRegistry& registry, const BatchOptions& options);
  ~ServeCore();  // drains

  /// Never blocks; unknown models resolve immediately with kError.
  /// `deadline_us` > 0 is a per-request latency budget (see
  /// MicroBatcher::submit); 0 means no deadline. `priority` orders both
  /// service and overload shedding (serve/admission.h).
  std::future<Response> infer_async(
      const std::string& model, nn::Tensor image, uint64_t deadline_us = 0,
      Priority priority = Priority::kInteractive);
  /// Blocking convenience around infer_async.
  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive);

  /// Stops admission and completes all accepted requests. Idempotent.
  void drain();

  const ModelRegistry& registry() const { return registry_; }
  MicroBatcher& batcher(const std::string& model);

  std::vector<ModelStatsSnapshot> stats() const;
  std::string stats_report() const;

 private:
  const ModelRegistry& registry_;
  std::map<std::string, std::unique_ptr<MicroBatcher>> batchers_;
};

/// In-process client used by tests and the load generator.
class ServeClient {
 public:
  explicit ServeClient(ServeCore& core) : core_(core) {}

  Response infer(const std::string& model, nn::Tensor image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive) {
    return core_.infer(model, std::move(image), deadline_us, priority);
  }
  std::future<Response> infer_async(
      const std::string& model, nn::Tensor image, uint64_t deadline_us = 0,
      Priority priority = Priority::kInteractive) {
    return core_.infer_async(model, std::move(image), deadline_us,
                             priority);
  }
  std::string stats() const { return core_.stats_report(); }

 private:
  ServeCore& core_;
};

struct SocketServerOptions {
  /// Reap a connection stalled mid-frame (partial frame buffered, no new
  /// bytes) after this long. 0 = never.
  int64_t read_timeout_ms = 5000;
  /// Reap a connection with no buffered partial frame and no traffic
  /// after this long. 0 = never.
  int64_t idle_timeout_ms = 60000;
  /// Abort a response write that cannot make progress (peer not reading)
  /// after this long. 0 = never (not recommended: an unbounded send can
  /// stall shutdown on one dead peer).
  int64_t write_timeout_ms = 5000;
  /// Max simultaneous connections; excess ones are accepted and
  /// immediately closed. 0 = unlimited.
  int max_connections = 256;
  /// Socket-level fault injector (torn frames, stalls, mid-frame
  /// disconnects); not owned, may be null. Must outlive the server.
  ChaosInjector* chaos = nullptr;
};

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking a stale socket file
  /// first) and starts the accept thread. Throws std::runtime_error on
  /// bind/listen failure.
  SocketServer(ServeCore& core, std::string socket_path,
               const SocketServerOptions& options = {});
  ~SocketServer();  // stops

  const std::string& socket_path() const { return socket_path_; }

  /// Graceful shutdown; see the header comment. Idempotent.
  void stop();

  /// Serves until SIGINT/SIGTERM, then stop()s. Installs its handlers for
  /// the call's duration; only one instance may run this at a time.
  void run_until_signal();

  /// Connections accepted so far (diagnostics).
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  /// Connections reaped by a read/idle/write deadline (diagnostics).
  uint64_t connections_reaped() const { return connections_reaped_.load(); }
  /// Connections refused because max_connections was reached.
  uint64_t connections_rejected() const {
    return connections_rejected_.load();
  }

 private:
  struct Connection;
  void accept_loop();
  void handle_connection(Connection* connection);
  void reap_finished();
  /// Sends one encoded frame under the write deadline and the chaos write
  /// plan. Returns false when the connection should be dropped (write
  /// deadline hit, peer gone, or injected mid-frame disconnect).
  bool send_frame(Connection* connection,
                  const std::vector<uint8_t>& bytes);

  ServeCore& core_;
  std::string socket_path_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes concurrent stop() calls
  bool stopped_ = false;
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

class SocketClient {
 public:
  /// Connects to a SocketServer. Throws std::runtime_error on failure.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Blocking request/response. Throws std::runtime_error if the server
  /// closes the connection mid-request. `deadline_us` > 0 bounds how long
  /// the request may wait server-side before a structured
  /// kDeadlineExceeded rejection; `priority` is the request's admission
  /// class.
  Response infer(const std::string& model, const nn::Tensor& image,
                 uint64_t deadline_us = 0,
                 Priority priority = Priority::kInteractive);

  /// Server-rendered stats table.
  std::string stats();

 private:
  Frame roundtrip(const std::vector<uint8_t>& frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace qsnc::serve
