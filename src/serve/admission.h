// Overload protection for the serving data plane: priority classes,
// CoDel-style queue-delay shedding, and a per-backend circuit breaker.
//
// Priority ladder (shed lowest first):
//
//   kBatch       (0) — offline/bulk traffic; first to go under overload.
//   kCanary      (1) — monitoring probes; kept over batch so operators
//                      retain visibility into a loaded server, but shed
//                      before any user-facing request.
//   kInteractive (2) — user traffic; shed only when nothing lower is left.
//
// Shedding (CoDel-style): the MicroBatcher observes the batch-formation
// delay of the oldest queued request. When that delay exceeds
// `delay_target_us` continuously for `delay_window_us`, the batcher enters
// shed mode and trims the queue to `allowed_depth()` — the number of
// requests serveable within one target at the observed batch cadence —
// resolving the trimmed requests with Status::kShedded and a
// retry_after_us hint. Requests are trimmed strictly lowest-priority-first
// (oldest first within a class), which makes the shed set a pure function
// of the queue contents: bit-deterministic, and pinned by
// tests/serve/admission_test.cpp.
//
// Circuit breaker: `breaker_threshold` consecutive backend failures open
// the breaker; while open, submits fail fast with kShedded instead of
// queueing work a broken backend cannot serve. After `breaker_open_us` the
// breaker goes half-open and admits exactly one probe request; the probe's
// batch outcome closes the breaker or re-opens it for another full timer.
// Time is passed in as microseconds so the schedule is a deterministic
// function of (failures, clock) and unit-testable with synthetic clocks.
//
// All knobs default to "off" (0), so a MicroBatcher built with default
// AdmissionOptions behaves exactly like the pre-overload-protection one.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace qsnc::serve {

enum class Priority : uint8_t {
  kBatch = 0,
  kCanary = 1,
  kInteractive = 2,
};

constexpr int kNumPriorities = 3;

const char* priority_name(Priority priority);

/// Parses "batch" | "canary" | "interactive"; throws std::invalid_argument
/// otherwise.
Priority parse_priority(const std::string& name);

struct AdmissionOptions {
  /// Max requests in flight (queued + executing) per model; further
  /// submits are shed. 0 = unlimited.
  int max_concurrency = 0;
  /// CoDel delay target: sustained batch-formation delay above this for
  /// `delay_window_us` triggers shedding. 0 = shedding off.
  int64_t delay_target_us = 0;
  /// How long the delay must stay above target before shedding starts.
  int64_t delay_window_us = 100000;
  /// Consecutive backend failures that open the circuit breaker.
  /// 0 = breaker off.
  int breaker_threshold = 0;
  /// How long the breaker stays open before the half-open probe.
  int64_t breaker_open_us = 200000;
};

/// Consecutive-failure circuit breaker with a deterministic reopen timer.
/// Thread-safe: submit paths call allow(), the batcher thread reports
/// outcomes.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  /// threshold <= 0 disables the breaker (allow() is always true).
  CircuitBreaker(int threshold, int64_t open_us);

  /// True when a request may be admitted at `now_us` (any monotonic
  /// microsecond clock). An open breaker whose timer has elapsed
  /// transitions to half-open and admits exactly one probe. Every
  /// admitted call MUST be resolved by on_success/on_failure (or
  /// release_probe), else a consumed half-open probe slot wedges the
  /// breaker; callers that only want to rank or filter candidates must
  /// use would_allow() instead.
  bool allow(int64_t now_us);

  /// Non-mutating preview of allow(): true when a call to allow() at
  /// `now_us` would admit. Never transitions state or consumes the
  /// half-open probe slot, so it is safe to call any number of times
  /// (e.g. for candidate ordering) without reporting an outcome.
  bool would_allow(int64_t now_us) const;

  /// Backend served a batch successfully: closes from any state.
  void on_success();

  /// Backend failed a batch at `now_us`: counts toward the threshold; a
  /// half-open probe failure re-opens immediately.
  void on_failure(int64_t now_us);

  /// Frees the half-open probe slot without reporting an outcome. The
  /// batcher calls this when a round resolves requests without executing
  /// any batch (all shed or deadline-expired), so a probe that was itself
  /// shed can never wedge the breaker in half-open forever.
  void release_probe();

  /// Returns the breaker to kClosed and forgets the failure history, as
  /// if freshly constructed. The router calls this when an out-of-band
  /// health signal (a successful HealthProber probe) revives a backend:
  /// an open breaker would otherwise keep fast-failing a node that is
  /// demonstrably serving again until its own timer elapsed.
  void reset();

  State state() const;

  /// Microseconds until the next half-open probe (0 when not open) — the
  /// retry_after_us hint for fast-failed requests.
  int64_t retry_after_us(int64_t now_us) const;

 private:
  const int threshold_;
  const int64_t open_us_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int64_t opened_at_us_ = 0;
  bool probe_inflight_ = false;
};

/// Pure shed-set selection: given per-class queue depths and the allowed
/// total depth, returns how many requests to shed from each class,
/// lowest-priority-first. Exposed for the property test; the MicroBatcher
/// applies the same function to its live queues.
///
/// `depths[c]` is the number of queued requests of priority class c;
/// writes the per-class shed counts into `sheds[c]`.
void select_sheds(const int64_t depths[kNumPriorities], int64_t allowed,
                  int64_t sheds[kNumPriorities]);

}  // namespace qsnc::serve
