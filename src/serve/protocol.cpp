#include "serve/protocol.h"

#include <cstring>
#include <type_traits>

namespace qsnc::serve {

namespace {

// Little-endian scalar writers/readers over a byte vector. The repo's
// serializer (nn/serialize) makes the same host-is-little-endian
// assumption; a cursor-based reader keeps every decode bounds-checked.

template <typename T>
void put(std::vector<uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

struct Cursor {
  const std::vector<uint8_t>& buf;
  size_t at = 0;

  template <typename T>
  T take(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf.size() - at < sizeof(T)) {
      throw ProtocolError(std::string("protocol: truncated frame at ") +
                          what);
    }
    T v;
    std::memcpy(&v, buf.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
  }

  std::string take_string(size_t n, const char* what) {
    if (buf.size() - at < n) {
      throw ProtocolError(std::string("protocol: truncated frame at ") +
                          what);
    }
    std::string s(reinterpret_cast<const char*>(buf.data() + at), n);
    at += n;
    return s;
  }

  void done(const char* what) {
    if (at != buf.size()) {
      throw ProtocolError(std::string("protocol: ") +
                          std::to_string(buf.size() - at) +
                          " trailing bytes in " + what);
    }
  }
};

std::vector<uint8_t> finish_frame(MsgType type,
                                  std::vector<uint8_t> body) {
  const uint64_t payload = body.size() + 1;  // + type tag
  if (payload > kMaxFrameBytes) {
    throw ProtocolError("protocol: frame exceeds kMaxFrameBytes");
  }
  std::vector<uint8_t> out;
  out.reserve(4 + payload);
  put<uint32_t>(out, static_cast<uint32_t>(payload));
  put<uint8_t>(out, static_cast<uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

namespace {

/// Shared body writer for kInferRequest and the payload of kForwardInfer.
void put_infer_request(std::vector<uint8_t>& body,
                       const InferRequest& request) {
  if (request.model.size() > UINT16_MAX) {
    throw ProtocolError("protocol: model name too long");
  }
  if (request.session.size() > UINT16_MAX) {
    throw ProtocolError("protocol: session key too long");
  }
  const nn::Shape& shape = request.image.shape();
  if (shape.size() > kMaxTensorRank) {
    throw ProtocolError("protocol: tensor rank > kMaxTensorRank");
  }
  put<uint64_t>(body, request.id);
  put<uint64_t>(body, request.deadline_us);
  put<uint8_t>(body, static_cast<uint8_t>(request.priority));
  put<uint16_t>(body, static_cast<uint16_t>(request.session.size()));
  body.insert(body.end(), request.session.begin(), request.session.end());
  put<uint16_t>(body, static_cast<uint16_t>(request.model.size()));
  body.insert(body.end(), request.model.begin(), request.model.end());
  put<uint8_t>(body, static_cast<uint8_t>(shape.size()));
  for (int64_t d : shape) {
    if (d < 0 || d > UINT32_MAX) {
      throw ProtocolError("protocol: dimension out of range");
    }
    put<uint32_t>(body, static_cast<uint32_t>(d));
  }
  const int64_t numel = request.image.numel();
  const size_t at = body.size();
  body.resize(at + static_cast<size_t>(numel) * sizeof(float));
  std::memcpy(body.data() + at, request.image.data(),
              static_cast<size_t>(numel) * sizeof(float));
}

/// Shared body reader; the caller owns the trailing-bytes check so
/// kForwardInfer can prepend its route hash.
InferRequest take_infer_request(Cursor& c) {
  InferRequest request;
  request.id = c.take<uint64_t>("id");
  request.deadline_us = c.take<uint64_t>("deadline_us");
  const uint8_t priority = c.take<uint8_t>("priority");
  if (priority >= kNumPriorities) {
    throw ProtocolError("protocol: unknown priority class");
  }
  request.priority = static_cast<Priority>(priority);
  const uint16_t session_len = c.take<uint16_t>("session_len");
  request.session = c.take_string(session_len, "session");
  const uint16_t model_len = c.take<uint16_t>("model_len");
  request.model = c.take_string(model_len, "model");
  const uint8_t rank = c.take<uint8_t>("rank");
  if (rank > kMaxTensorRank) {
    throw ProtocolError("protocol: tensor rank > kMaxTensorRank");
  }
  nn::Shape shape;
  uint64_t numel = 1;
  for (int i = 0; i < rank; ++i) {
    const uint32_t d = c.take<uint32_t>("dim");
    shape.push_back(static_cast<int64_t>(d));
    numel *= d;
    // Bound every partial product: numel stays <= 16M before each multiply
    // by a <= 2^32 dim, so the u64 product cannot wrap and sneak a huge
    // allocation past this check.
    if (numel > kMaxFrameBytes / sizeof(float)) {
      throw ProtocolError("protocol: tensor larger than frame limit");
    }
  }
  std::vector<float> data(static_cast<size_t>(numel));
  if (c.buf.size() - c.at < numel * sizeof(float)) {
    throw ProtocolError("protocol: truncated frame at tensor data");
  }
  std::memcpy(data.data(), c.buf.data() + c.at, numel * sizeof(float));
  c.at += numel * sizeof(float);
  request.image = nn::Tensor(std::move(shape), std::move(data));
  return request;
}

}  // namespace

std::vector<uint8_t> encode_infer_request(const InferRequest& request) {
  std::vector<uint8_t> body;
  put_infer_request(body, request);
  return finish_frame(MsgType::kInferRequest, std::move(body));
}

InferRequest decode_infer_request(const std::vector<uint8_t>& body) {
  Cursor c{body};
  InferRequest request = take_infer_request(c);
  c.done("InferRequest");
  return request;
}

std::vector<uint8_t> encode_infer_response(const InferResponse& response) {
  const Response& r = response.response;
  if (r.error.size() > UINT16_MAX) {
    throw ProtocolError("protocol: error string too long");
  }
  std::vector<uint8_t> body;
  put<uint64_t>(body, response.id);
  put<uint8_t>(body, static_cast<uint8_t>(r.status));
  put<uint8_t>(body, r.degraded ? 1 : 0);
  put<int64_t>(body, r.prediction);
  put<uint64_t>(body, r.latency_us);
  put<uint64_t>(body, r.retry_after_us);
  put<uint32_t>(body, r.batch_size);
  put<uint16_t>(body, static_cast<uint16_t>(r.error.size()));
  body.insert(body.end(), r.error.begin(), r.error.end());
  return finish_frame(MsgType::kInferResponse, std::move(body));
}

InferResponse decode_infer_response(const std::vector<uint8_t>& body) {
  Cursor c{body};
  InferResponse response;
  response.id = c.take<uint64_t>("id");
  const uint8_t status = c.take<uint8_t>("status");
  if (status > static_cast<uint8_t>(Status::kShedded)) {
    throw ProtocolError("protocol: unknown status code");
  }
  response.response.status = static_cast<Status>(status);
  response.response.degraded = c.take<uint8_t>("degraded") != 0;
  response.response.prediction = c.take<int64_t>("prediction");
  response.response.latency_us = c.take<uint64_t>("latency_us");
  response.response.retry_after_us = c.take<uint64_t>("retry_after_us");
  response.response.batch_size = c.take<uint32_t>("batch_size");
  const uint16_t error_len = c.take<uint16_t>("error_len");
  response.response.error = c.take_string(error_len, "error");
  c.done("InferResponse");
  return response;
}

std::vector<uint8_t> encode_stats_request() {
  return finish_frame(MsgType::kStatsRequest, {});
}

std::vector<uint8_t> encode_stats_response(const std::string& text) {
  std::vector<uint8_t> body;
  put<uint32_t>(body, static_cast<uint32_t>(text.size()));
  body.insert(body.end(), text.begin(), text.end());
  return finish_frame(MsgType::kStatsResponse, std::move(body));
}

std::string decode_stats_response(const std::vector<uint8_t>& body) {
  Cursor c{body};
  const uint32_t len = c.take<uint32_t>("text_len");
  std::string text = c.take_string(len, "text");
  c.done("StatsResponse");
  return text;
}

std::vector<uint8_t> encode_hello(const Hello& hello) {
  std::vector<uint8_t> body;
  put<uint16_t>(body, hello.version);
  put<uint8_t>(body, static_cast<uint8_t>(hello.role));
  return finish_frame(MsgType::kHello, std::move(body));
}

Hello decode_hello(const std::vector<uint8_t>& body) {
  Cursor c{body};
  Hello hello;
  hello.version = c.take<uint16_t>("version");
  const uint8_t role = c.take<uint8_t>("role");
  if (role > static_cast<uint8_t>(PeerRole::kRouter)) {
    throw ProtocolError("protocol: unknown peer role");
  }
  hello.role = static_cast<PeerRole>(role);
  c.done("Hello");
  return hello;
}

std::vector<uint8_t> encode_hello_ack(const HelloAck& ack) {
  std::vector<uint8_t> body;
  put<uint16_t>(body, ack.version);
  put<uint8_t>(body, ack.accepted ? 1 : 0);
  return finish_frame(MsgType::kHelloAck, std::move(body));
}

HelloAck decode_hello_ack(const std::vector<uint8_t>& body) {
  Cursor c{body};
  HelloAck ack;
  ack.version = c.take<uint16_t>("version");
  const uint8_t accepted = c.take<uint8_t>("accepted");
  if (accepted > 1) {
    throw ProtocolError("protocol: accepted flag out of range");
  }
  ack.accepted = accepted != 0;
  c.done("HelloAck");
  return ack;
}

std::vector<uint8_t> encode_health_probe(const HealthProbe& probe) {
  std::vector<uint8_t> body;
  put<uint64_t>(body, probe.nonce);
  return finish_frame(MsgType::kHealthProbe, std::move(body));
}

HealthProbe decode_health_probe(const std::vector<uint8_t>& body) {
  Cursor c{body};
  HealthProbe probe;
  probe.nonce = c.take<uint64_t>("nonce");
  c.done("HealthProbe");
  return probe;
}

std::vector<uint8_t> encode_health_ack(const HealthAck& ack) {
  if (ack.versions.size() > UINT16_MAX) {
    throw ProtocolError("protocol: too many version labels");
  }
  std::vector<uint8_t> body;
  put<uint64_t>(body, ack.nonce);
  put<uint8_t>(body, ack.healthy ? 1 : 0);
  put<uint32_t>(body, ack.queue_depth);
  put<uint16_t>(body, static_cast<uint16_t>(ack.versions.size()));
  for (const ModelVersionLabel& v : ack.versions) {
    if (v.model.size() > UINT16_MAX || v.version.size() > UINT16_MAX) {
      throw ProtocolError("protocol: version label too long");
    }
    put<uint16_t>(body, static_cast<uint16_t>(v.model.size()));
    body.insert(body.end(), v.model.begin(), v.model.end());
    put<uint16_t>(body, static_cast<uint16_t>(v.version.size()));
    body.insert(body.end(), v.version.begin(), v.version.end());
  }
  return finish_frame(MsgType::kHealthAck, std::move(body));
}

HealthAck decode_health_ack(const std::vector<uint8_t>& body) {
  Cursor c{body};
  HealthAck ack;
  ack.nonce = c.take<uint64_t>("nonce");
  const uint8_t healthy = c.take<uint8_t>("healthy");
  if (healthy > 1) {
    throw ProtocolError("protocol: healthy flag out of range");
  }
  ack.healthy = healthy != 0;
  ack.queue_depth = c.take<uint32_t>("queue_depth");
  // v4 acks end here; the v5 version-label list is optional so mixed
  // fleets interoperate during an upgrade.
  if (c.at < c.buf.size()) {
    const uint16_t count = c.take<uint16_t>("version_count");
    ack.versions.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      ModelVersionLabel v;
      const uint16_t model_len = c.take<uint16_t>("label_model_len");
      v.model = c.take_string(model_len, "label_model");
      const uint16_t version_len = c.take<uint16_t>("label_version_len");
      v.version = c.take_string(version_len, "label_version");
      ack.versions.push_back(std::move(v));
    }
  }
  c.done("HealthAck");
  return ack;
}

std::vector<uint8_t> encode_forward_infer(const ForwardedInfer& forward) {
  std::vector<uint8_t> body;
  put<uint64_t>(body, forward.route_hash);
  put_infer_request(body, forward.request);
  return finish_frame(MsgType::kForwardInfer, std::move(body));
}

ForwardedInfer decode_forward_infer(const std::vector<uint8_t>& body) {
  Cursor c{body};
  ForwardedInfer forward;
  forward.route_hash = c.take<uint64_t>("route_hash");
  forward.request = take_infer_request(c);
  c.done("ForwardInfer");
  return forward;
}

namespace {

/// Shared u16-length-prefixed string writer for the small control-frame
/// fields (names, reasons, backend spellings).
void put_short_string(std::vector<uint8_t>& body, const std::string& s,
                      const char* what) {
  if (s.size() > UINT16_MAX) {
    throw ProtocolError(std::string("protocol: ") + what + " too long");
  }
  put<uint16_t>(body, static_cast<uint16_t>(s.size()));
  body.insert(body.end(), s.begin(), s.end());
}

std::string take_short_string(Cursor& c, const char* what) {
  const uint16_t len = c.take<uint16_t>(what);
  return c.take_string(len, what);
}

}  // namespace

std::vector<uint8_t> encode_load_version(const LoadVersionRequest& request) {
  std::vector<uint8_t> body;
  put_short_string(body, request.name, "name");
  put_short_string(body, request.architecture, "architecture");
  put_short_string(body, request.backend_kind, "backend");
  put<uint8_t>(body, request.bits);
  put<uint64_t>(body, request.init_seed);
  put<uint64_t>(body, static_cast<uint64_t>(request.state.size()));
  body.insert(body.end(), request.state.begin(), request.state.end());
  return finish_frame(MsgType::kLoadVersion, std::move(body));
}

LoadVersionRequest decode_load_version(const std::vector<uint8_t>& body) {
  Cursor c{body};
  LoadVersionRequest request;
  request.name = take_short_string(c, "name");
  request.architecture = take_short_string(c, "architecture");
  request.backend_kind = take_short_string(c, "backend");
  request.bits = c.take<uint8_t>("bits");
  request.init_seed = c.take<uint64_t>("init_seed");
  const uint64_t state_len = c.take<uint64_t>("state_len");
  // The frame itself is already bounded at kMaxFrameBytes; this check
  // rejects a corrupt inner length before it can drive a huge resize.
  if (state_len > c.buf.size() - c.at) {
    throw ProtocolError("protocol: truncated frame at state");
  }
  request.state.assign(c.buf.begin() + static_cast<ptrdiff_t>(c.at),
                       c.buf.begin() +
                           static_cast<ptrdiff_t>(c.at + state_len));
  c.at += static_cast<size_t>(state_len);
  c.done("LoadVersion");
  return request;
}

std::vector<uint8_t> encode_promote(const RolloutCommand& command) {
  std::vector<uint8_t> body;
  put_short_string(body, command.name, "name");
  return finish_frame(MsgType::kPromote, std::move(body));
}

RolloutCommand decode_promote(const std::vector<uint8_t>& body) {
  Cursor c{body};
  RolloutCommand command;
  command.name = take_short_string(c, "name");
  c.done("Promote");
  return command;
}

std::vector<uint8_t> encode_rollback(const RolloutCommand& command) {
  std::vector<uint8_t> body;
  put_short_string(body, command.name, "name");
  put_short_string(body, command.reason, "reason");
  return finish_frame(MsgType::kRollback, std::move(body));
}

RolloutCommand decode_rollback(const std::vector<uint8_t>& body) {
  Cursor c{body};
  RolloutCommand command;
  command.name = take_short_string(c, "name");
  command.reason = take_short_string(c, "reason");
  c.done("Rollback");
  return command;
}

std::vector<uint8_t> encode_rollout_status(const RolloutCommand& command) {
  std::vector<uint8_t> body;
  put_short_string(body, command.name, "name");
  return finish_frame(MsgType::kRolloutStatus, std::move(body));
}

RolloutCommand decode_rollout_status(const std::vector<uint8_t>& body) {
  Cursor c{body};
  RolloutCommand command;
  command.name = take_short_string(c, "name");
  c.done("RolloutStatus");
  return command;
}

std::vector<uint8_t> encode_rollout_reply(const RolloutReply& reply) {
  if (reply.message.size() > UINT32_MAX) {
    throw ProtocolError("protocol: reply message too long");
  }
  std::vector<uint8_t> body;
  put<uint8_t>(body, reply.ok ? 1 : 0);
  put<uint32_t>(body, static_cast<uint32_t>(reply.message.size()));
  body.insert(body.end(), reply.message.begin(), reply.message.end());
  return finish_frame(MsgType::kRolloutReply, std::move(body));
}

RolloutReply decode_rollout_reply(const std::vector<uint8_t>& body) {
  Cursor c{body};
  RolloutReply reply;
  const uint8_t ok = c.take<uint8_t>("ok");
  if (ok > 1) {
    throw ProtocolError("protocol: ok flag out of range");
  }
  reply.ok = ok != 0;
  const uint32_t message_len = c.take<uint32_t>("message_len");
  reply.message = c.take_string(message_len, "message");
  c.done("RolloutReply");
  return reply;
}

std::vector<uint8_t> encode_supervise_command(
    const SuperviseCommand& command) {
  std::vector<uint8_t> body;
  put_short_string(body, command.verb, "verb");
  put_short_string(body, command.lane, "lane");
  return finish_frame(MsgType::kSuperviseCommand, std::move(body));
}

SuperviseCommand decode_supervise_command(const std::vector<uint8_t>& body) {
  Cursor c{body};
  SuperviseCommand command;
  command.verb = take_short_string(c, "verb");
  command.lane = take_short_string(c, "lane");
  c.done("SuperviseCommand");
  return command;
}

std::vector<uint8_t> encode_supervise_reply(const RolloutReply& reply) {
  if (reply.message.size() > UINT32_MAX) {
    throw ProtocolError("protocol: reply message too long");
  }
  std::vector<uint8_t> body;
  put<uint8_t>(body, reply.ok ? 1 : 0);
  put<uint32_t>(body, static_cast<uint32_t>(reply.message.size()));
  body.insert(body.end(), reply.message.begin(), reply.message.end());
  return finish_frame(MsgType::kSuperviseReply, std::move(body));
}

RolloutReply decode_supervise_reply(const std::vector<uint8_t>& body) {
  Cursor c{body};
  RolloutReply reply;
  const uint8_t ok = c.take<uint8_t>("ok");
  if (ok > 1) {
    throw ProtocolError("protocol: ok flag out of range");
  }
  reply.ok = ok != 0;
  const uint32_t message_len = c.take<uint32_t>("message_len");
  reply.message = c.take_string(message_len, "message");
  c.done("SuperviseReply");
  return reply;
}

void FrameReader::feed(const uint8_t* data, size_t n) {
  // Compact the buffer once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  if (buf_.size() - consumed_ + n > kMaxBufferedBytes) {
    throw ProtocolError(
        "protocol: peer exceeded the frame buffer limit "
        "(pipelined frames faster than they were consumed)");
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameReader::next() {
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  uint32_t payload = 0;
  std::memcpy(&payload, buf_.data() + consumed_, 4);
  if (payload == 0) throw ProtocolError("protocol: zero-length frame");
  if (payload > kMaxFrameBytes) {
    throw ProtocolError("protocol: frame length " +
                        std::to_string(payload) + " exceeds limit");
  }
  if (avail < 4 + static_cast<size_t>(payload)) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(buf_[consumed_ + 4]);
  frame.body.assign(buf_.begin() + static_cast<ptrdiff_t>(consumed_ + 5),
                    buf_.begin() +
                        static_cast<ptrdiff_t>(consumed_ + 4 + payload));
  consumed_ += 4 + payload;
  return frame;
}

}  // namespace qsnc::serve
