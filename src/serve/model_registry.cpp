#include "serve/model_registry.h"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/bn_folding.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/rng.h"
#include "nn/serialize.h"

namespace qsnc::serve {

namespace {

struct Architecture {
  nn::Network (*factory)(nn::Rng&);
  nn::Shape input_chw;
};

Architecture resolve_architecture(const std::string& name) {
  if (name == "lenet") return {models::make_lenet, {1, 28, 28}};
  if (name == "lenet-mini") return {models::make_lenet_mini, {1, 28, 28}};
  if (name == "alexnet") return {models::make_alexnet, {3, 32, 32}};
  if (name == "alexnet-mini") {
    return {models::make_alexnet_mini, {3, 32, 32}};
  }
  if (name == "resnet") return {models::make_resnet, {3, 32, 32}};
  if (name == "resnet-mini") return {models::make_resnet_mini, {3, 32, 32}};
  throw std::invalid_argument(
      "ModelRegistry: unknown architecture '" + name +
      "' (lenet[-mini]|alexnet[-mini]|resnet[-mini])");
}

/// Registered names are "base[@version]": non-empty base, at most one
/// '@', non-empty version when the '@' is present.
void validate_name(const std::string& name) {
  const auto [base, version] = split_versioned_name(name);
  if (base.empty()) {
    throw std::invalid_argument("ModelRegistry: empty model name");
  }
  if (name.find('@') != std::string::npos && version.empty()) {
    throw std::invalid_argument("ModelRegistry: name '" + name +
                                "' has an empty version");
  }
  if (version.find('@') != std::string::npos) {
    throw std::invalid_argument("ModelRegistry: name '" + name +
                                "' has more than one '@'");
  }
}

}  // namespace

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "fp32") return BackendKind::kFp32;
  if (name == "quant") return BackendKind::kQuant;
  if (name == "snc") return BackendKind::kSnc;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (fp32|quant|snc)");
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kFp32: return "fp32";
    case BackendKind::kQuant: return "quant";
    case BackendKind::kSnc: return "snc";
  }
  return "?";
}

nn::Shape architecture_input_shape(const std::string& architecture) {
  return resolve_architecture(architecture).input_chw;
}

std::pair<std::string, std::string> split_versioned_name(
    const std::string& name) {
  const size_t at = name.find('@');
  if (at == std::string::npos) return {name, std::string()};
  return {name.substr(0, at), name.substr(at + 1)};
}

std::string base_model_name(const std::string& name) {
  return split_versioned_name(name).first;
}

const char* version_state_name(VersionState state) {
  switch (state) {
    case VersionState::kActive: return "active";
    case VersionState::kStandby: return "standby";
    case VersionState::kShadow: return "shadow";
    case VersionState::kQuarantined: return "quarantined";
  }
  return "?";
}

struct ModelRegistry::Entry {
  ModelConfig config;
  nn::Shape input_chw;
  VersionState state = VersionState::kStandby;
  // One network+backend pair per shard, all built from the same
  // seed/checkpoint (Network caches forward state, so lanes cannot share
  // one instance). nets[i] is the network behind backends[i].
  std::vector<std::unique_ptr<nn::Network>> nets;
  std::vector<std::unique_ptr<Backend>> backends;
};

ModelRegistry::ModelRegistry() = default;
ModelRegistry::~ModelRegistry() = default;

std::unique_ptr<ModelRegistry::Entry> ModelRegistry::build_entry(
    const std::string& name, const ModelConfig& config,
    const std::vector<uint8_t>* state_bytes) {
  if (config.shards < 1) {
    throw std::invalid_argument("ModelRegistry: model '" + name +
                                "' needs shards >= 1");
  }
  const Architecture arch = resolve_architecture(config.architecture);

  auto entry = std::make_unique<Entry>();
  entry->config = config;
  entry->input_chw = arch.input_chw;

  // Every shard rebuilds from the same seed/checkpoint, so the pool is
  // bit-identical by construction: which shard serves a request is
  // unobservable in the prediction.
  for (int shard = 0; shard < config.shards; ++shard) {
    nn::Rng rng(config.init_seed);
    auto net = std::make_unique<nn::Network>(arch.factory(rng));
    if (state_bytes != nullptr) {
      nn::load_state_bytes(*net, *state_bytes,
                           "checkpoint for '" + name + "'");
    } else if (!config.state_path.empty()) {
      nn::load_state(*net, config.state_path);
    }

    std::unique_ptr<Backend> backend;
    switch (config.backend) {
      case BackendKind::kFp32:
        backend = std::make_unique<Fp32Backend>(*net, entry->input_chw);
        break;
      case BackendKind::kQuant:
        backend = std::make_unique<QuantBackend>(*net, entry->input_chw,
                                                 config.bits);
        break;
      case BackendKind::kSnc: {
        // Deployment order (see core/bn_folding.h): fold, cluster, program.
        core::fold_batchnorm(*net);
        core::WeightClusterConfig wc;
        wc.bits = config.bits;
        const auto results = core::apply_weight_clustering(*net, wc);
        snc::SncConfig snc_cfg;
        snc_cfg.signal_bits = config.bits;
        snc_cfg.weight_bits = config.bits;
        snc_cfg.weight_scales.clear();
        for (const auto& r : results) {
          snc_cfg.weight_scales.push_back(r.scale);
        }
        snc_cfg.input_scale = std::min(
            16.0f, static_cast<float>(core::signal_max(config.bits)));
        snc_cfg.engine = config.snc_dense_reference
                             ? snc::SncEngine::kDenseReference
                             : snc::SncEngine::kEventDriven;
        snc_cfg.seed = config.snc_seed;
        snc_cfg.device.variation_sigma = config.snc_variation_sigma;
        snc_cfg.device.stuck_on_rate = config.snc_stuck_on_rate;
        snc_cfg.device.stuck_off_rate = config.snc_stuck_off_rate;
        snc_cfg.recovery.write_verify = config.snc_write_verify;
        snc_cfg.recovery.spare_cols = config.snc_spare_cols;
        backend = std::make_unique<SncBackend>(
            *net, entry->input_chw, snc_cfg, config.snc_replicas,
            config.snc_health, config.snc_batch_native);
        break;
      }
    }
    entry->nets.push_back(std::move(net));
    entry->backends.push_back(std::move(backend));
  }
  return entry;
}

Backend& ModelRegistry::insert_entry(const std::string& name,
                                     std::unique_ptr<Entry> entry) {
  const std::string base = base_model_name(name);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) > 0) {
    throw std::invalid_argument("ModelRegistry: duplicate model '" + name +
                                "' (versions are immutable; register a "
                                "new version instead)");
  }
  // The first version of a base answers bare-name traffic; later ones
  // register standby until a rollout promotes them.
  if (active_.count(base) == 0) {
    entry->state = VersionState::kActive;
    active_[base] = name;
  } else {
    entry->state = VersionState::kStandby;
  }
  Backend& backend = *entry->backends.front();
  entries_[name] = std::move(entry);
  return backend;
}

Backend& ModelRegistry::add(const std::string& name,
                            const ModelConfig& config) {
  validate_name(name);
  {
    // Cheap duplicate pre-check before the expensive build; insert_entry
    // re-checks under the same lock that inserts.
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (entries_.count(name) > 0) {
      throw std::invalid_argument("ModelRegistry: duplicate model '" +
                                  name + "'");
    }
  }
  return insert_entry(name, build_entry(name, config, nullptr));
}

Backend& ModelRegistry::add_from_bytes(
    const std::string& name, const ModelConfig& config,
    const std::vector<uint8_t>& state_bytes) {
  validate_name(name);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (entries_.count(name) > 0) {
      throw std::invalid_argument("ModelRegistry: duplicate model '" +
                                  name + "'");
    }
  }
  // build_entry validates the checkpoint image (magic/version/CRC, then
  // per-tensor decode) while constructing a free-standing entry: any
  // failure throws here, before the registry is touched.
  return insert_entry(name, build_entry(name, config, &state_bytes));
}

std::string ModelRegistry::resolve_locked(const std::string& name) const {
  if (name.find('@') != std::string::npos) {
    return entries_.count(name) > 0 ? name : std::string();
  }
  const auto it = active_.find(name);
  return it != active_.end() ? it->second : std::string();
}

std::string ModelRegistry::resolve(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return resolve_locked(name);
}

void ModelRegistry::set_active(const std::string& base,
                               const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown version '" + key +
                                "'");
  }
  if (base_model_name(key) != base) {
    throw std::invalid_argument("ModelRegistry: version '" + key +
                                "' does not belong to base '" + base + "'");
  }
  if (it->second->state == VersionState::kQuarantined) {
    throw std::invalid_argument("ModelRegistry: version '" + key +
                                "' is quarantined");
  }
  const auto active_it = active_.find(base);
  if (active_it != active_.end() && active_it->second != key) {
    entries_.at(active_it->second)->state = VersionState::kStandby;
  }
  it->second->state = VersionState::kActive;
  active_[base] = key;
}

VersionState ModelRegistry::state(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(key).state;
}

void ModelRegistry::set_state(const std::string& key, VersionState state) {
  if (state == VersionState::kActive) {
    throw std::invalid_argument(
        "ModelRegistry: use set_active to promote a version");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown version '" + key +
                                "'");
  }
  if (it->second->state == VersionState::kActive) {
    throw std::invalid_argument("ModelRegistry: version '" + key +
                                "' is active; promote a replacement first");
  }
  it->second->state = state;
}

std::string ModelRegistry::active_key(const std::string& base) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = active_.find(base);
  return it != active_.end() ? it->second : std::string();
}

std::vector<ModelVersionLabel> ModelRegistry::active_versions() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ModelVersionLabel> out;
  out.reserve(active_.size());
  for (const auto& [base, key] : active_) {
    ModelVersionLabel label;
    label.model = base;
    label.version = split_versioned_name(key).second;
    out.push_back(std::move(label));
  }
  return out;
}

bool ModelRegistry::contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return !resolve_locked(name).empty();
}

const ModelRegistry::Entry& ModelRegistry::entry(
    const std::string& name) const {
  const std::string key = resolve_locked(name);
  const auto it = entries_.find(key.empty() ? name : key);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown model '" + name +
                                "'");
  }
  return *it->second;
}

Backend& ModelRegistry::backend(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return *entry(name).backends.front();
}

Backend& ModelRegistry::backend(const std::string& name,
                                size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Entry& e = entry(name);
  if (shard >= e.backends.size()) {
    throw std::invalid_argument("ModelRegistry: model '" + name +
                                "' has no shard " + std::to_string(shard));
  }
  return *e.backends[shard];
}

size_t ModelRegistry::num_shards(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(name).backends.size();
}

const ModelConfig& ModelRegistry::config(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(name).config;
}

const nn::Shape& ModelRegistry::input_shape(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(name).input_chw;
}

std::vector<std::string> ModelRegistry::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    (void)e;
    out.push_back(name);
  }
  return out;
}

}  // namespace qsnc::serve
