#include "serve/model_registry.h"

#include <stdexcept>
#include <utility>

#include "core/bn_folding.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/rng.h"
#include "nn/serialize.h"

namespace qsnc::serve {

namespace {

struct Architecture {
  nn::Network (*factory)(nn::Rng&);
  nn::Shape input_chw;
};

Architecture resolve_architecture(const std::string& name) {
  if (name == "lenet") return {models::make_lenet, {1, 28, 28}};
  if (name == "lenet-mini") return {models::make_lenet_mini, {1, 28, 28}};
  if (name == "alexnet") return {models::make_alexnet, {3, 32, 32}};
  if (name == "alexnet-mini") {
    return {models::make_alexnet_mini, {3, 32, 32}};
  }
  if (name == "resnet") return {models::make_resnet, {3, 32, 32}};
  if (name == "resnet-mini") return {models::make_resnet_mini, {3, 32, 32}};
  throw std::invalid_argument(
      "ModelRegistry: unknown architecture '" + name +
      "' (lenet[-mini]|alexnet[-mini]|resnet[-mini])");
}

}  // namespace

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "fp32") return BackendKind::kFp32;
  if (name == "quant") return BackendKind::kQuant;
  if (name == "snc") return BackendKind::kSnc;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (fp32|quant|snc)");
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kFp32: return "fp32";
    case BackendKind::kQuant: return "quant";
    case BackendKind::kSnc: return "snc";
  }
  return "?";
}

nn::Shape architecture_input_shape(const std::string& architecture) {
  return resolve_architecture(architecture).input_chw;
}

struct ModelRegistry::Entry {
  ModelConfig config;
  nn::Shape input_chw;
  // One network+backend pair per shard, all built from the same
  // seed/checkpoint (Network caches forward state, so lanes cannot share
  // one instance). nets[i] is the network behind backends[i].
  std::vector<std::unique_ptr<nn::Network>> nets;
  std::vector<std::unique_ptr<Backend>> backends;
};

ModelRegistry::ModelRegistry() = default;
ModelRegistry::~ModelRegistry() = default;

Backend& ModelRegistry::add(const std::string& name,
                            const ModelConfig& config) {
  if (entries_.count(name) > 0) {
    throw std::invalid_argument("ModelRegistry: duplicate model '" + name +
                                "'");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("ModelRegistry: model '" + name +
                                "' needs shards >= 1");
  }
  const Architecture arch = resolve_architecture(config.architecture);

  auto entry = std::make_unique<Entry>();
  entry->config = config;
  entry->input_chw = arch.input_chw;

  // Every shard rebuilds from the same seed/checkpoint, so the pool is
  // bit-identical by construction: which shard serves a request is
  // unobservable in the prediction.
  for (int shard = 0; shard < config.shards; ++shard) {
    nn::Rng rng(config.init_seed);
    auto net = std::make_unique<nn::Network>(arch.factory(rng));
    if (!config.state_path.empty()) {
      nn::load_state(*net, config.state_path);
    }

    std::unique_ptr<Backend> backend;
    switch (config.backend) {
      case BackendKind::kFp32:
        backend = std::make_unique<Fp32Backend>(*net, entry->input_chw);
        break;
      case BackendKind::kQuant:
        backend = std::make_unique<QuantBackend>(*net, entry->input_chw,
                                                 config.bits);
        break;
      case BackendKind::kSnc: {
        // Deployment order (see core/bn_folding.h): fold, cluster, program.
        core::fold_batchnorm(*net);
        core::WeightClusterConfig wc;
        wc.bits = config.bits;
        const auto results = core::apply_weight_clustering(*net, wc);
        snc::SncConfig snc_cfg;
        snc_cfg.signal_bits = config.bits;
        snc_cfg.weight_bits = config.bits;
        snc_cfg.weight_scales.clear();
        for (const auto& r : results) {
          snc_cfg.weight_scales.push_back(r.scale);
        }
        snc_cfg.input_scale = std::min(
            16.0f, static_cast<float>(core::signal_max(config.bits)));
        snc_cfg.engine = config.snc_dense_reference
                             ? snc::SncEngine::kDenseReference
                             : snc::SncEngine::kEventDriven;
        snc_cfg.seed = config.snc_seed;
        snc_cfg.device.variation_sigma = config.snc_variation_sigma;
        snc_cfg.device.stuck_on_rate = config.snc_stuck_on_rate;
        snc_cfg.device.stuck_off_rate = config.snc_stuck_off_rate;
        snc_cfg.recovery.write_verify = config.snc_write_verify;
        snc_cfg.recovery.spare_cols = config.snc_spare_cols;
        backend = std::make_unique<SncBackend>(
            *net, entry->input_chw, snc_cfg, config.snc_replicas,
            config.snc_health, config.snc_batch_native);
        break;
      }
    }
    entry->nets.push_back(std::move(net));
    entry->backends.push_back(std::move(backend));
  }

  Backend& backend = *entry->backends.front();
  entries_[name] = std::move(entry);
  return backend;
}

bool ModelRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const ModelRegistry::Entry& ModelRegistry::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown model '" + name +
                                "'");
  }
  return *it->second;
}

Backend& ModelRegistry::backend(const std::string& name) const {
  return *entry(name).backends.front();
}

Backend& ModelRegistry::backend(const std::string& name,
                                size_t shard) const {
  const Entry& e = entry(name);
  if (shard >= e.backends.size()) {
    throw std::invalid_argument("ModelRegistry: model '" + name +
                                "' has no shard " + std::to_string(shard));
  }
  return *e.backends[shard];
}

size_t ModelRegistry::num_shards(const std::string& name) const {
  return entry(name).backends.size();
}

const ModelConfig& ModelRegistry::config(const std::string& name) const {
  return entry(name).config;
}

const nn::Shape& ModelRegistry::input_shape(const std::string& name) const {
  return entry(name).input_chw;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    (void)e;
    out.push_back(name);
  }
  return out;
}

}  // namespace qsnc::serve
