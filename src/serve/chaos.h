// Deterministic chaos injection for the serving stack.
//
// A ChaosInjector is a seeded fault source with one SplitMix64 stream per
// hook site (like the per-crossbar fault maps of src/snc: same seed, same
// fault sequence). Hook points:
//
//   socket read   — injected stalls before recv (slow-network emulation).
//   socket write  — torn frames (responses split into small chunks with
//                   stalls between them), plus mid-frame disconnects
//                   (connection closed after a partial write).
//   queue         — latency spikes in the batcher loop before execution.
//   backend       — injected infer_batch errors (which drive the circuit
//                   breaker) and latency spikes.
//   journal       — crash-during-append: a state-journal record is cut
//                   mid-write (partial CRC / partial body), emulating a
//                   process dying while holding a half-written record.
//
// Each site draws from its own counter-mode stream
// splitmix64(stream_seed(seed, site) ^ counter++), so the decision
// sequence at a site is a pure function of (seed, draw index) — two runs
// with the same seed and the same per-site draw order inject the same
// faults. Sites never share a stream, so adding draws at one site cannot
// shift another site's sequence.
//
// Everything is off at rate 0; a null ChaosInjector* everywhere means no
// chaos code runs on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qsnc::serve {

struct ChaosConfig {
  uint64_t seed = 42;
  // Socket I/O.
  double read_stall_rate = 0.0;    ///< P(stall before a server-side recv)
  double write_torn_rate = 0.0;    ///< P(response write torn into chunks)
  double write_stall_rate = 0.0;   ///< P(stall between torn chunks)
  double disconnect_rate = 0.0;    ///< P(close connection mid-frame write)
  uint64_t io_stall_us = 2000;     ///< duration of injected I/O stalls
  // Queue.
  double queue_spike_rate = 0.0;   ///< P(batcher sleeps before a batch)
  uint64_t queue_spike_us = 5000;
  // Backend.
  double backend_error_rate = 0.0;   ///< P(infer_batch fails, injected)
  double backend_latency_rate = 0.0; ///< P(extra latency before the call)
  uint64_t backend_latency_us = 5000;
  // Journal.
  double journal_torn_rate = 0.0;  ///< P(crash mid-append: torn record)

  bool any_enabled() const {
    return read_stall_rate > 0 || write_torn_rate > 0 ||
           write_stall_rate > 0 || disconnect_rate > 0 ||
           queue_spike_rate > 0 || backend_error_rate > 0 ||
           backend_latency_rate > 0 || journal_torn_rate > 0;
  }
};

/// Named presets for `qsnc serve --chaos-profile`:
///   "none"    — all rates zero.
///   "torn"    — torn frames + read/write stalls + rare disconnects.
///   "backend" — injected backend errors + latency spikes.
///   "queue"   — batcher latency spikes.
///   "soak"    — everything at moderate rates (the CI soak profile).
/// Throws std::invalid_argument on an unknown name.
ChaosConfig chaos_profile(const std::string& name, uint64_t seed);

/// Per-site injected-fault counters (diagnostics; printed after a soak).
struct ChaosStats {
  uint64_t read_stalls = 0;
  uint64_t torn_writes = 0;
  uint64_t write_stalls = 0;
  uint64_t disconnects = 0;
  uint64_t queue_spikes = 0;
  uint64_t backend_errors = 0;
  uint64_t backend_latency = 0;
  uint64_t journal_torn = 0;
};

/// How a server-side write should be delivered.
struct WritePlan {
  /// Chunk sizes summing to the full write (a single chunk when the frame
  /// is not torn).
  std::vector<size_t> chunks;
  /// Sleep this long before each chunk after the first (torn frames only).
  uint64_t inter_chunk_stall_us = 0;
  /// Close the connection after sending `chunks[0]` (mid-frame
  /// disconnect). The remaining chunks are not sent.
  bool disconnect_after_first = false;
};

class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosConfig& config);

  const ChaosConfig& config() const { return config_; }

  /// Stall duration (us) to sleep before a server-side recv; 0 = none.
  uint64_t read_stall_us();

  /// Delivery plan for an `n`-byte server-side write.
  WritePlan plan_write(size_t n);

  /// Stall duration (us) to sleep before executing a batch; 0 = none.
  uint64_t queue_spike_us();

  /// Extra latency (us) to sleep before calling the backend; 0 = none.
  uint64_t backend_latency_us();

  /// True when this batch's backend call should fail with an injected
  /// error instead of running.
  bool backend_error();

  /// Crash-during-journal-append site: for an `n`-byte record write,
  /// returns how many bytes actually land before the injected "crash"
  /// (a value in [1, n-1], so the tail record is always torn, never
  /// cleanly absent or cleanly present); 0 = no fault, write all of it.
  size_t journal_torn_len(size_t n);

  ChaosStats stats() const;
  std::string report() const;

 private:
  enum Site : uint64_t {
    kReadStall = 0,
    kWriteTorn,
    kWriteStall,
    kDisconnect,
    kQueueSpike,
    kBackendError,
    kBackendLatency,
    kChunkSize,
    // New sites append here so earlier sites' per-site stream seeds (a
    // pure function of the enum value) never shift across revisions.
    kJournalTorn,
    kNumSites,
  };

  /// Uniform [0, 1) draw from `site`'s stream.
  double draw(Site site);
  /// Uniform integer in [1, bound] from `site`'s stream.
  uint64_t draw_int(Site site, uint64_t bound);

  ChaosConfig config_;
  uint64_t site_seed_[kNumSites];
  std::atomic<uint64_t> site_counter_[kNumSites];

  std::atomic<uint64_t> read_stalls_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> disconnects_{0};
  std::atomic<uint64_t> queue_spikes_{0};
  std::atomic<uint64_t> backend_errors_{0};
  std::atomic<uint64_t> backend_latency_{0};
  std::atomic<uint64_t> journal_torn_{0};
};

}  // namespace qsnc::serve
