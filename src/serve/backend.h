// Pluggable inference backends for the serving runtime.
//
// A Backend answers one question — "class predictions for this image
// batch" — behind which the three execution paths of the reproduction sit:
//
//  * fp32  — plain float Network::forward at the training input scale.
//  * quant — the paper's deployed M-bit path: inputs are encoded like the
//            SNC input encoder would (scale, round, clamp) and inter-layer
//            signals run through the attached IntegerSignalQuantizer.
//  * snc   — full spike-level execution on SncSystem. infer() is per-image
//            and stateful, so the backend keeps a pool of identically
//            programmed replica systems and fans a batch out over the
//            process thread pool, one replica per in-flight image.
//
// Contracts: infer_batch takes [N, C, H, W] pixels in [0, 1] and returns N
// predictions in order. A Backend instance is driven by one batcher thread
// at a time (the MicroBatcher is its only caller); it may parallelize
// internally. Backends never mutate their Network between calls, so
// results are deterministic for a given checkpoint.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fixed_point.h"
#include "core/int_quant_engine.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "snc/snc_system.h"

namespace qsnc::serve {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Backend kind name ("fp32" | "quant" | "snc"), for reports.
  virtual const std::string& kind() const = 0;

  /// Per-image input shape [C, H, W] this backend expects.
  virtual const nn::Shape& input_shape() const = 0;

  /// Class predictions for a [N, C, H, W] batch with pixels in [0, 1].
  /// Throws std::invalid_argument on a shape mismatch.
  virtual std::vector<int64_t> infer_batch(const nn::Tensor& batch) = 0;

  /// Optional backend-specific activity report appended to the serving
  /// stats table (e.g. the snc backend's per-stage spike/sparsity
  /// counters). Empty when the backend has nothing to add.
  virtual std::string activity_report() const { return std::string(); }

  /// True when the most recent infer_batch was served in a degraded mode
  /// (e.g. the snc backend falling back to its quant path because too many
  /// replicas are quarantined). Only meaningful between infer_batch calls
  /// from the single batcher thread that drives this backend.
  virtual bool last_batch_degraded() const { return false; }
};

/// Float forward pass at a fixed input scale (the signal-unit convention —
/// see core/qat_pipeline.h).
class Fp32Backend final : public Backend {
 public:
  Fp32Backend(nn::Network& net, nn::Shape input_chw,
              float input_scale = 16.0f);

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

 private:
  std::string kind_ = "fp32";
  nn::Network& net_;
  nn::Shape input_chw_;
  float input_scale_;
};

/// Fake-quant integer path: attaches an M-bit IntegerSignalQuantizer to
/// the network for its lifetime and encodes inputs to the same grid.
/// Matches `qsnc eval --bits M` / core::evaluate_accuracy(..., bits).
///
/// When the deployed weights sit exactly on a dyadic fixed-point grid
/// (e.g. after weight clustering), the backend compiles the network into a
/// core::IntQuantEngine at construction and serves batches through the
/// true-integer GEMM path instead of fp32 — provably bit-identical
/// predictions (see int_quant_engine.h), no float multiplies in the hot
/// loop. Networks that fail the engine's exactness checks keep the float
/// path unchanged. Set QSNC_QUANT_INT=0 to force the float path.
class QuantBackend final : public Backend {
 public:
  QuantBackend(nn::Network& net, nn::Shape input_chw, int bits);
  ~QuantBackend() override;

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

  int bits() const { return bits_; }

  /// True when batches are served by the integer engine.
  bool integer_engine_active() const { return engine_ != nullptr; }

 private:
  std::string kind_ = "quant";
  nn::Network& net_;
  nn::Shape input_chw_;
  int bits_;
  float input_scale_;
  std::unique_ptr<core::IntegerSignalQuantizer> quantizer_;
  std::unique_ptr<core::IntQuantEngine> engine_;
};

/// Replica health monitoring knobs for the snc backend. Disabled by
/// default; when enabled, infer_batch periodically runs a deterministic
/// canary batch through every replica and compares predictions against an
/// ideal-device reference system. A deviating replica is reprogrammed (up
/// to max_reprogram_attempts) and quarantined — removed from the free list,
/// so no request is ever served from it — when it keeps deviating. When
/// the healthy fraction drops below min_healthy_fraction the backend
/// degrades gracefully: batches run on the quant fallback path and
/// last_batch_degraded() turns true.
struct ReplicaHealthConfig {
  bool enabled = false;
  int check_interval_batches = 16;  // canary every N infer_batch calls
  int canary_images = 2;            // canary batch size
  uint64_t canary_seed = 12345;     // deterministic canary pixels
  double min_healthy_fraction = 0.5;
  int max_reprogram_attempts = 1;   // reprograms before quarantine
  /// Derive replica i's SncConfig::seed as stream_seed(seed, i) so
  /// replicas draw *independent* device faults (fault diversity). Off by
  /// default: identical seeds keep every replica bit-identical, so which
  /// replica serves an image never changes the prediction.
  bool per_replica_seeds = false;
};

/// Point-in-time view of the snc backend's replica-health counters.
struct ReplicaHealthSnapshot {
  bool enabled = false;
  int64_t replicas = 0;
  int64_t healthy = 0;
  int64_t quarantined = 0;
  int64_t canary_runs = 0;          // per-replica canary evaluations
  int64_t quarantine_events = 0;
  int64_t reprogram_attempts = 0;
  int64_t recoveries = 0;           // reprograms that restored health
  int64_t degraded_batches = 0;     // batches served on the fallback
};

/// Spike-level execution on a pool of identically programmed SncSystem
/// replicas. Single-image inferences fan out over util::parallel_for; each
/// in-flight image checks a replica out of a free list (blocking until one
/// frees when the pool is oversubscribed — never deadlocks, since every
/// checkout is returned at the end of its chunk).
class SncBackend final : public Backend {
 public:
  /// Builds `replicas` systems programmed from `net` (replicas <= 0 picks
  /// the thread-pool size). `net` must already be BN-folded and weight-
  /// clustered per `config` (see ModelRegistry, which prepares it).
  /// `batch_native` (the default) serves each micro-batch window through
  /// SncSystem::infer_batch on one replica — bit-identical predictions,
  /// panels streamed once per batch. Turning it off restores the
  /// per-image replica fan-out; fault-diversity deployments
  /// (health.per_replica_seeds) always fan out, since routing a window to
  /// one replica would defeat the per-replica seed diversity.
  SncBackend(nn::Network& net, nn::Shape input_chw,
             const snc::SncConfig& config, int replicas = 0,
             const ReplicaHealthConfig& health = {},
             bool batch_native = true);

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

  /// Per-stage spike / input-sparsity table aggregated over every image
  /// served so far (empty before the first inference), plus the replica
  /// health and fault-recovery counters when health monitoring is on.
  std::string activity_report() const override;
  bool last_batch_degraded() const override { return last_degraded_; }

  /// Aggregate activity over all served images (stage entries summed
  /// elementwise); `images` is the number of inferences folded in.
  snc::SncStats activity_totals(int64_t* images = nullptr) const;

  size_t replica_count() const { return replicas_.size(); }
  ReplicaHealthSnapshot health_snapshot() const;

  /// Invoked (from the batcher thread) whenever a replica is quarantined,
  /// with the replica index and the structured reason — the serving
  /// layer's durable state journal hooks here. Install before traffic
  /// flows; at most one hook.
  void set_quarantine_hook(
      std::function<void(size_t, const std::string&)> hook) {
    quarantine_hook_ = std::move(hook);
  }

  /// Direct replica access for tests (fault injection via advance_time /
  /// set_defect). Do not call while a batch is in flight.
  snc::SncSystem& replica(size_t i) { return *replicas_.at(i); }

 private:
  snc::SncSystem* acquire();
  void release(snc::SncSystem* system);
  void fold_stats(const snc::SncStats& stats);
  std::vector<int64_t> canary_predictions(snc::SncSystem& system) const;
  void run_health_check();
  void rebuild_free_list();
  std::vector<int64_t> infer_fallback(const nn::Tensor& batch);

  std::string kind_ = "snc";
  nn::Network& net_;
  nn::Shape input_chw_;
  std::vector<snc::SncConfig> replica_configs_;
  std::vector<std::unique_ptr<snc::SncSystem>> replicas_;
  std::vector<snc::SncSystem*> free_;
  std::mutex mu_;
  std::condition_variable cv_;

  // Health state. Mutated only from the single batcher thread while every
  // replica is idle (infer_batch entry), so no extra locking beyond mu_
  // for the free-list swap.
  ReplicaHealthConfig health_;
  bool batch_native_ = true;
  std::vector<nn::Tensor> canary_;
  std::vector<int64_t> canary_reference_;
  std::vector<bool> quarantined_;
  std::vector<int> reprogram_attempts_;
  int batches_since_check_ = 0;
  bool last_degraded_ = false;
  std::function<void(size_t, const std::string&)> quarantine_hook_;
  std::unique_ptr<QuantBackend> fallback_;
  mutable std::mutex health_mu_;
  ReplicaHealthSnapshot health_counters_;

  mutable std::mutex stats_mu_;
  snc::SncStats totals_;      // stage-wise sums over all served images
  int64_t stat_images_ = 0;
};

/// Throws std::invalid_argument unless `batch` is [N, C, H, W] matching
/// the per-image shape. Returns N.
int64_t check_batch_shape(const nn::Tensor& batch, const nn::Shape& chw);

}  // namespace qsnc::serve
